(** The multicluster processor model (paper §2 and §4.1).

    One implementation covers both machines of the evaluation: the
    single-cluster 8-issue processor is the configuration whose
    {!Assignment.t} maps every register to cluster 0, and the dual-cluster
    machine is the 2-cluster even/odd assignment with per-cluster Table-1
    row-2 issue limits.

    The machine is trace-driven: it consumes an array of committed dynamic
    instructions ({!Mcsim_isa.Instr.dynamic}). Speculation is modelled by
    its timing effects — a mispredicted conditional branch stalls fetch
    from the moment it is fetched until it executes, plus a redirect
    penalty (the trace then resumes down the correct path, as in the
    paper's ATOM-based methodology).

    Pipeline per cycle: retire (up to [retire_width] instructions, in
    order, when all copies are complete) — issue (per cluster: greedy
    oldest-first over the dispatch queue under the Table-1 budget) —
    dispatch (in order, up to [dispatch_width]; stalls when a dispatch
    queue entry or physical register is unavailable) — fetch (up to
    [fetch_width] from the i-cache).

    Dual-distributed instructions follow §2.1's five scenarios: the slave
    forwards operands through the master cluster's operand transfer buffer
    and/or receives the result through its own cluster's result transfer
    buffer, with the paper's timing rules generalized to a modeled
    interconnect ({!Interconnect}): a transfer from cluster [src] to
    cluster [dst] takes [hop_latency topology ~src ~dst] cycles, so the
    master is issuable [hop] cycles after an operand-forwarding slave
    issues, and a result-receiving slave is issuable at
    [master_finish - 2 + hop]. At one hop — every pair of the
    point-to-point dual machine — these are the paper's rules exactly
    (master issuable the cycle after the slave; the slave issuable at
    [master_finish - 1], i.e. one cycle after the master for one-cycle
    operations; freed buffer entries reusable the next cycle). An
    issue deadlock on transfer-buffer entries is broken by an
    instruction-replay exception: the blocked instruction and everything
    younger is squashed and refetched after [replay_penalty] cycles. *)

(** Issue-logic implementation. Both engines are cycle-exact models of
    the {e same} machine and produce bit-identical results and counters;
    they differ only in simulator data structures and speed.

    - [`Wakeup] (the default): dependence-driven. Each cluster keeps a
      wakeup index from physical register to the copies waiting on it;
      when a producer issues, exactly the newly-ready consumers move
      (via a cycle-indexed event wheel) onto a per-queue ready list kept
      in age order, and the per-cycle issue scan touches only that list.
      Suspended scenario-5 slaves wake from a second event wheel keyed
      by the master's result-arrival cycle instead of a ROB walk.
    - [`Scan]: the reference implementation — every dispatch-queue entry
      and every ROB entry is rescanned every cycle. Kept for
      differential testing and bisection. *)
type engine = [ `Scan | `Wakeup ]

val profile_counters : unit -> Mcsim_util.Profile_counters.t
(** A counter set with the machine's pipeline stages (fetch, dispatch,
    issue, wake, retire, train), to pass as [?profile]. Per cycle each
    stage records one visit plus the items it examined — for the issue
    and wake stages that is queue/ROB entries scanned, the quantity the
    wakeup engine exists to shrink. *)

type queue_split =
  | Unified  (** one dispatch queue per cluster — the paper's design *)
  | Per_class
      (** separate integer / floating-point / memory queues per cluster,
          as in the R10000 and 21264 the paper contrasts itself with; the
          integer queue gets half the entries, fp and memory a quarter
          each *)

type config = {
  assignment : Assignment.t;
  topology : Interconnect.topology;
      (** inter-cluster transfer latencies; {!Interconnect.Point_to_point}
          is the paper's one-cycle model *)
  steering : Steering.policy;
      (** dispatch-time cluster choice; {!Steering.Static} (every stock
          config) follows the compile-time partition exactly and is
          bit-identical to the pre-steering machine, while a dynamic
          policy forces each instruction's executing cluster at dispatch
          ({!Distribution.plan_steered}) in both engines *)
  dq_entries : int;  (** dispatch-queue entries per cluster (all queues) *)
  phys_per_bank : int;  (** physical registers per bank per cluster *)
  fetch_width : int;
  dispatch_width : int;
  retire_width : int;
  issue_limits : Mcsim_isa.Issue_rules.limits;  (** per cluster *)
  queue_split : queue_split;
  operand_buffer_entries : int;  (** per cluster *)
  result_buffer_entries : int;  (** per cluster *)
  icache : Mcsim_cache.Cache.config;
  dcache : Mcsim_cache.Cache.config;
  predictor : Mcsim_branch.Mcfarling.config;
  redirect_penalty : int;
      (** cycles between a mispredicted branch's execution and the first
          fetch down the right path *)
  replay_threshold : int;  (** stalled cycles before a replay exception *)
  replay_penalty : int;  (** cycles before fetch resumes after a replay *)
}

val single_cluster : unit -> config
(** The paper's baseline: one cluster, 128-entry dispatch queue, 128+128
    physical registers, 8-issue (Table 1 row 1), fetch 12, retire 8,
    64 KB 2-way caches, 16-cycle memory. *)

val dual_cluster : unit -> config
(** The paper's dual-cluster machine: even/odd assignment with sp/gp
    global, two 64-entry dispatch queues, 64+64 physical registers per
    cluster, 4-issue per cluster (Table 1 row 2), eight operand- and eight
    result-buffer entries per cluster. *)

val quad_cluster : unit -> config
(** A four-cluster multicluster machine with the same total resources as
    the 8-issue baseline: four 2-issue clusters, 32-entry dispatch queues
    and 32+32 physical registers each, registers assigned by index modulo
    four (sp/gp global), four operand- and four result-buffer entries per
    cluster. The paper develops two clusters "without loss of
    generality"; this is the generalization it implies. *)

val octa_cluster : unit -> config
(** An eight-cluster machine, same split discipline continued: eight
    1-issue clusters, 16-entry dispatch queues, 32+32 physical registers
    each (the register-file floor), registers assigned by index modulo
    eight (sp/gp global), two operand- and two result-buffer entries per
    cluster. *)

val config_for_clusters : ?topology:Interconnect.topology -> int -> config
(** The stock configuration for 1, 2, 4 or 8 clusters
    ({!single_cluster} … {!octa_cluster}) with the given interconnect
    topology (default {!Interconnect.Point_to_point}).
    @raise Invalid_argument on any other cluster count. *)

val single_cluster_4 : unit -> config
(** The four-way-issue baseline the paper also evaluated (§4): one
    cluster, 64-entry dispatch queue, 64+64 physical registers,
    4-issue, fetch 6, retire 4. *)

val dual_cluster_2x2 : unit -> config
(** The four-way dual machine: two 2-issue clusters with 32-entry
    dispatch queues and 32+32 physical registers each, four operand- and
    four result-buffer entries per cluster. *)

val validate_config : config -> unit
(** @raise Invalid_argument on out-of-range fields. *)

type role = Single_copy | Master_copy | Slave_copy

val role_to_string : role -> string

(** Observable pipeline events, for the Figures 2–5 walkthroughs and for
    tests. [seq] is the dynamic instruction's trace position. *)
type event =
  | Ev_fetch of { cycle : int; seq : int }
  | Ev_dispatch of { cycle : int; seq : int; cluster : int; role : role; scenario : int }
  | Ev_issue of { cycle : int; seq : int; cluster : int; role : role }
  | Ev_operand_forward of { cycle : int; seq : int; from_cluster : int; to_cluster : int }
      (** an operand-forwarding slave wrote into the master cluster's
          operand transfer buffer (at slave issue) *)
  | Ev_result_forward of { cycle : int; seq : int; from_cluster : int; to_cluster : int }
      (** the master wrote into the slave cluster's result transfer buffer
          (at master completion) *)
  | Ev_suspend of { cycle : int; seq : int; cluster : int }
  | Ev_wakeup of { cycle : int; seq : int; cluster : int }
  | Ev_writeback of { cycle : int; seq : int; cluster : int; role : role }
  | Ev_retire of { cycle : int; seq : int }
  | Ev_replay of { cycle : int; seq : int }

val pp_event : Format.formatter -> event -> unit

(** A periodic snapshot of the machine's queue state, for occupancy
    tracking over time (counter tracks in {!Mcsim_obs.Trace_export}).
    Arrays are indexed by cluster. *)
type occupancy = {
  oc_cycle : int;
  oc_rob : int;  (** groups in flight (all clusters share one ROB) *)
  oc_dispatch_queues : int array;  (** waiting entries, all queues of the cluster *)
  oc_operand_buffers : int array;  (** in-use operand transfer-buffer entries *)
  oc_result_buffers : int array;  (** in-use result transfer-buffer entries *)
}

type result = {
  cycles : int;
  retired : int;
  ipc : float;
  single_distributed : int;
  dual_distributed : int;
  replays : int;
  branch_accuracy : float;
  icache_miss_rate : float;
  dcache_miss_rate : float;
  counters : (string * int) list;
      (** detailed named counters (stall reasons, per-scenario counts,
          per-class issues, buffer high-water marks, ...), sorted by
          name *)
  counter_lookup : Mcsim_util.Stats.lookup;
      (** the same counters as a binary-searchable snapshot — what
          {!counter} queries *)
}

val counter : result -> string -> int
(** 0 when absent; O(log n) over the counter snapshot. *)

val run_flat :
  ?engine:engine ->
  ?profile:Mcsim_util.Profile_counters.t ->
  ?on_event:(event -> unit) ->
  ?on_occupancy:(occupancy -> unit) ->
  ?occupancy_period:int ->
  ?max_cycles:int ->
  config ->
  Mcsim_isa.Flat_trace.t ->
  result
(** Simulate the full trace — the native entry point: the machine reads
    the packed arrays directly (see {!Mcsim_isa.Flat_trace}), interns one
    static instruction per pc, and memoizes {!Distribution.plan} per
    (pc, preferred cluster). [engine] defaults to [`Wakeup]; results are
    identical either way. [profile] accumulates per-stage counters (see
    {!profile_counters}). When no [on_event] sink is attached, event
    records are never constructed. [on_occupancy] receives an
    {!occupancy} snapshot every [occupancy_period] cycles (default 16;
    must be >= 1); with no sink, snapshots are never built.
    @raise Failure if [max_cycles] (default 200_000_000) elapses first —
    a model bug, not a user error. *)

val run :
  ?engine:engine ->
  ?profile:Mcsim_util.Profile_counters.t ->
  ?on_event:(event -> unit) ->
  ?on_occupancy:(occupancy -> unit) ->
  ?occupancy_period:int ->
  ?max_cycles:int ->
  config ->
  Mcsim_isa.Instr.dynamic array ->
  result
(** {!run_flat} over [Flat_trace.of_dynamic_array trace]. The trace must
    satisfy [trace.(i).seq = i]. *)

val run_phased_flat :
  ?engine:engine ->
  ?profile:Mcsim_util.Profile_counters.t ->
  ?on_event:(event -> unit) ->
  ?on_occupancy:(occupancy -> unit) ->
  ?occupancy_period:int ->
  ?max_cycles:int ->
  config ->
  (Assignment.t * Mcsim_isa.Flat_trace.t) list ->
  result
(** {!run_phased} on packed traces (the native entry point). *)

val run_phased :
  ?engine:engine ->
  ?profile:Mcsim_util.Profile_counters.t ->
  ?on_event:(event -> unit) ->
  ?on_occupancy:(occupancy -> unit) ->
  ?occupancy_period:int ->
  ?max_cycles:int ->
  config ->
  (Assignment.t * Mcsim_isa.Instr.dynamic array) list ->
  result
(** Dynamic reassignment of the architectural registers (paper §2.1's
    "simple hardware mechanism" and §6): run the phases back to back on
    one machine (caches and predictor stay warm). Between phases the
    pipeline drains and, if the assignment change moved any register
    (see {!moved_registers}), the machine pays a resynchronization
    overhead of 4 cycles plus one cycle per two architectural registers
    whose cluster placement moved (their values must be copied between
    the register files); a switch that moves nothing is free. Counters
    ["reassignments"] and ["reassigned_registers"] record the activity.
    All phases must keep the cluster count of [config].
    @raise Invalid_argument if a phase changes the cluster count. *)

val moved_registers : Assignment.t -> Assignment.t -> Mcsim_isa.Reg.t list
(** The registers whose cluster placement differs — what the reassignment
    hardware must copy. *)

(** {2 Resumable-state API}

    The building blocks of sampled simulation ({!Mcsim_sampling}): one
    machine state is driven through an alternation of {e functional
    warming} (caches and branch predictor advance over skipped
    instructions, no pipeline model) and {e detailed intervals} (the full
    model on a trace slice, with a warmup prefix whose cycles are
    measured separately). [run] and [run_phased] are themselves thin
    wrappers over this state. *)

type state
(** A machine mid-simulation: configuration, caches, predictor,
    pipeline, and counters. *)

val init_state :
  ?engine:engine ->
  ?profile:Mcsim_util.Profile_counters.t ->
  ?on_event:(event -> unit) ->
  ?on_occupancy:(occupancy -> unit) ->
  ?occupancy_period:int ->
  config ->
  state
(** A fresh machine at cycle 0. [engine] defaults to [`Wakeup].
    @raise Invalid_argument as {!validate_config}, or if
    [occupancy_period < 1]. *)

val warm_flat : state -> Mcsim_isa.Flat_trace.t -> lo:int -> hi:int -> unit
(** Functional warming over [trace.(lo) .. trace.(hi - 1)]: the i-cache
    is accessed at line granularity exactly as fetch would, loads and
    stores access the d-cache, and conditional branches run the full
    predict/train sequence — one cycle per instruction, no pipeline.
    The pipeline must be drained (as it is after [init_state] and after
    every completed interval). Counter ["warmed_instructions"]
    accumulates [hi - lo].
    @raise Invalid_argument unless [0 <= lo <= hi <= length trace]. *)

val warm : state -> Mcsim_isa.Instr.dynamic array -> lo:int -> hi:int -> unit
(** {!warm_flat} over a record trace (packs the array first — prefer
    {!warm_flat} when warming repeatedly over the same trace). *)

(** Timing of one detailed interval: the warmup prefix's cycles are
    reported separately so the caller can discard them. *)
type interval = {
  iv_warmup_cycles : int;  (** cycles until the warmup prefix retired *)
  iv_cycles : int;  (** cycles of the measured region *)
  iv_retired : int;  (** instructions retired in the measured region *)
}

val run_interval_flat :
  ?max_cycles:int ->
  state ->
  Mcsim_isa.Flat_trace.t ->
  lo:int ->
  hi:int ->
  measure_from:int ->
  interval
(** Detailed simulation of [trace.(lo) .. trace.(hi - 1)] on a drained
    pipeline (caches and predictor stay warm), running until the
    pipeline drains again. Cycles up to and including the one in which
    the instruction count [measure_from - lo] retired are warmup; the
    rest are the measured region. Counter ["detailed_intervals"] counts
    calls.
    @raise Invalid_argument unless [0 <= lo < hi <= length trace] and
    [lo <= measure_from < hi].
    @raise Failure as {!run} when [max_cycles] elapses. *)

val run_interval :
  ?max_cycles:int ->
  state ->
  Mcsim_isa.Instr.dynamic array ->
  lo:int ->
  hi:int ->
  measure_from:int ->
  interval
(** {!run_interval_flat} over a record trace (packs the array first). *)

val pool_stats : state -> int * int * int * int
(** [(copy_live, copy_built, group_live, group_built)] for the state's
    record pools. Built counts are high-water marks: once the pipeline
    reaches steady state they stop growing (records are recycled, not
    re-allocated), which tests assert. Live counts include squashed
    copies parked in limbo until their flush watermark passes. *)

val state_result : state -> result
(** Harvest the aggregate counters of everything the state has run.
    [cycles] (and hence [ipc]) counts warming at one cycle per
    instruction — for a sampled {e estimate} of full-run IPC see
    {!Mcsim_sampling}. Call at most once: harvesting folds per-component
    totals into the counter set. *)
