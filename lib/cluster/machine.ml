module Reg = Mcsim_isa.Reg
module Op_class = Mcsim_isa.Op_class
module Instr = Mcsim_isa.Instr
module Flat_trace = Mcsim_isa.Flat_trace
module Issue_rules = Mcsim_isa.Issue_rules
module Regfile = Mcsim_cpu.Regfile
module Fu = Mcsim_cpu.Fu
module Cache = Mcsim_cache.Cache
module Mcfarling = Mcsim_branch.Mcfarling
module Deque = Mcsim_util.Deque
module Fixed_queue = Mcsim_util.Fixed_queue
module Freelist = Mcsim_util.Freelist
module Stats = Mcsim_util.Stats
module Vec = Mcsim_util.Vec
module Bucket_queue = Mcsim_util.Bucket_queue
module Profile_counters = Mcsim_util.Profile_counters

type queue_split = Unified | Per_class

(* Queue index under Per_class: 0 = integer (and control), 1 = floating
   point, 2 = memory - the R10000/21264 arrangement the paper contrasts
   its single queue with. *)
let queue_of_class (op : Op_class.t) split =
  match split with
  | Unified -> 0
  | Per_class -> (
    match op with
    | Int_multiply | Int_other | Control -> 0
    | Fp_divide _ | Fp_other -> 1
    | Load | Store -> 2)

let num_queues = function Unified -> 1 | Per_class -> 3

(* Per-queue capacity: the integer queue gets half the entries, fp and
   memory a quarter each (rounded up). *)
let queue_capacity split dq_entries q =
  match split with
  | Unified -> dq_entries
  | Per_class -> if q = 0 then (dq_entries + 1) / 2 else (dq_entries + 3) / 4

type engine = [ `Scan | `Wakeup ]

type config = {
  assignment : Assignment.t;
  topology : Interconnect.topology;
  steering : Steering.policy;
  dq_entries : int;
  phys_per_bank : int;
  fetch_width : int;
  dispatch_width : int;
  retire_width : int;
  issue_limits : Issue_rules.limits;
  queue_split : queue_split;
  operand_buffer_entries : int;
  result_buffer_entries : int;
  icache : Cache.config;
  dcache : Cache.config;
  predictor : Mcfarling.config;
  redirect_penalty : int;
  replay_threshold : int;
  replay_penalty : int;
}

let single_cluster () =
  { assignment = Assignment.single;
    topology = Interconnect.Point_to_point;
    steering = Steering.Static;
    dq_entries = 128;
    phys_per_bank = 128;
    fetch_width = 12;
    dispatch_width = 12;
    retire_width = 8;
    issue_limits = Issue_rules.single_cluster;
    queue_split = Unified;
    operand_buffer_entries = 8;
    result_buffer_entries = 8;
    icache = Cache.default_config;
    dcache = Cache.default_config;
    predictor = Mcfarling.default_config;
    redirect_penalty = 1;
    replay_threshold = 8;
    replay_penalty = 6 }

let dual_cluster () =
  { (single_cluster ()) with
    assignment = Assignment.create ~num_clusters:2 ();
    dq_entries = 64;
    phys_per_bank = 64;
    issue_limits = Issue_rules.dual_per_cluster }

let quad_cluster () =
  { (single_cluster ()) with
    assignment = Assignment.create ~num_clusters:4 ();
    dq_entries = 32;
    phys_per_bank = 32;
    issue_limits = Issue_rules.four_way_dual_per_cluster;
    operand_buffer_entries = 4;
    result_buffer_entries = 4 }

let octa_cluster () =
  { (single_cluster ()) with
    assignment = Assignment.create ~num_clusters:8 ();
    dq_entries = 16;
    phys_per_bank = 32;
    issue_limits = Issue_rules.octa_per_cluster;
    operand_buffer_entries = 2;
    result_buffer_entries = 2 }

let single_cluster_4 () =
  { (single_cluster ()) with
    dq_entries = 64;
    phys_per_bank = 64;
    fetch_width = 6;
    dispatch_width = 6;
    retire_width = 4;
    issue_limits = Issue_rules.four_way_single }

let dual_cluster_2x2 () =
  { (single_cluster_4 ()) with
    assignment = Assignment.create ~num_clusters:2 ();
    dq_entries = 32;
    phys_per_bank = 32;
    issue_limits = Issue_rules.four_way_dual_per_cluster;
    operand_buffer_entries = 4;
    result_buffer_entries = 4 }

let config_for_clusters ?(topology = Interconnect.Point_to_point) clusters =
  let base =
    match clusters with
    | 1 -> single_cluster ()
    | 2 -> dual_cluster ()
    | 4 -> quad_cluster ()
    | 8 -> octa_cluster ()
    | n ->
      invalid_arg (Printf.sprintf "Machine.config_for_clusters: %d (want 1, 2, 4 or 8)" n)
  in
  { base with topology }

let validate_config c =
  if Assignment.num_clusters c.assignment < 1 || Assignment.num_clusters c.assignment > 8 then
    invalid_arg "Machine: 1 to 8 clusters";
  if c.dq_entries < 1 then invalid_arg "Machine: dq_entries < 1";
  if c.phys_per_bank < 32 then invalid_arg "Machine: phys_per_bank < 32";
  if c.fetch_width < 1 || c.dispatch_width < 1 || c.retire_width < 1 then
    invalid_arg "Machine: widths must be >= 1";
  if c.operand_buffer_entries < 1 || c.result_buffer_entries < 1 then
    invalid_arg "Machine: buffer entries must be >= 1";
  if c.redirect_penalty < 0 || c.replay_penalty < 0 then
    invalid_arg "Machine: penalties must be >= 0";
  if c.replay_threshold < 1 then invalid_arg "Machine: replay_threshold < 1";
  Cache.validate_config c.icache;
  Cache.validate_config c.dcache

type role = Single_copy | Master_copy | Slave_copy

let role_to_string = function
  | Single_copy -> "single"
  | Master_copy -> "master"
  | Slave_copy -> "slave"

type event =
  | Ev_fetch of { cycle : int; seq : int }
  | Ev_dispatch of { cycle : int; seq : int; cluster : int; role : role; scenario : int }
  | Ev_issue of { cycle : int; seq : int; cluster : int; role : role }
  | Ev_operand_forward of { cycle : int; seq : int; from_cluster : int; to_cluster : int }
  | Ev_result_forward of { cycle : int; seq : int; from_cluster : int; to_cluster : int }
  | Ev_suspend of { cycle : int; seq : int; cluster : int }
  | Ev_wakeup of { cycle : int; seq : int; cluster : int }
  | Ev_writeback of { cycle : int; seq : int; cluster : int; role : role }
  | Ev_retire of { cycle : int; seq : int }
  | Ev_replay of { cycle : int; seq : int }

let pp_event fmt = function
  | Ev_fetch { cycle; seq } -> Format.fprintf fmt "[%4d] fetch #%d" cycle seq
  | Ev_dispatch { cycle; seq; cluster; role; scenario } ->
    Format.fprintf fmt "[%4d] dispatch #%d C%d %s (scenario %d)" cycle seq cluster
      (role_to_string role) scenario
  | Ev_issue { cycle; seq; cluster; role } ->
    Format.fprintf fmt "[%4d] issue #%d C%d %s" cycle seq cluster (role_to_string role)
  | Ev_operand_forward { cycle; seq; from_cluster; to_cluster } ->
    Format.fprintf fmt "[%4d] operand #%d C%d -> operand buffer of C%d" cycle seq from_cluster
      to_cluster
  | Ev_result_forward { cycle; seq; from_cluster; to_cluster } ->
    Format.fprintf fmt "[%4d] result #%d C%d -> result buffer of C%d" cycle seq from_cluster
      to_cluster
  | Ev_suspend { cycle; seq; cluster } ->
    Format.fprintf fmt "[%4d] suspend #%d C%d" cycle seq cluster
  | Ev_wakeup { cycle; seq; cluster } ->
    Format.fprintf fmt "[%4d] wakeup #%d C%d" cycle seq cluster
  | Ev_writeback { cycle; seq; cluster; role } ->
    Format.fprintf fmt "[%4d] writeback #%d C%d %s" cycle seq cluster (role_to_string role)
  | Ev_retire { cycle; seq } -> Format.fprintf fmt "[%4d] retire #%d" cycle seq
  | Ev_replay { cycle; seq } -> Format.fprintf fmt "[%4d] replay from #%d" cycle seq

type cstate = C_waiting | C_issued | C_suspended | C_squashed

(* Local physical sources are packed into an int, [(phys lsl 1) lor bank]
   with bank 0 = integer and 1 = floating point, so a copy's source array
   carries no per-element tuple boxes. *)
let src_code (b : Regfile.bank) phys =
  (phys lsl 1) lor (match b with Regfile.B_int -> 0 | Regfile.B_fp -> 1)

let src_bank code : Regfile.bank = if code land 1 = 0 then Regfile.B_int else Regfile.B_fp
let src_phys code = code lsr 1
let bank_bit (b : Regfile.bank) = match b with Regfile.B_int -> 0 | Regfile.B_fp -> 1

(* An instruction may source at most two registers (Instr.make enforces
   it), so per-copy source and operand-entry storage is a fixed two-slot
   array owned by the pooled record. *)
let max_srcs = 2

(* validate_config caps the machine at 8 clusters: a group has at most
   7 slave copies, so the slave array is fixed too. *)
let max_slaves = 7

(* Copies and groups live in per-state slab pools (see
   [Freelist.Slab]): dispatch recycles a record and overwrites every
   field instead of allocating, retire and squash return records to the
   pool. All fields are therefore mutable; [c_slot]/[g_slot] are the
   pool indices. The old [dst_alloc] option-of-record is flattened into
   the (reg, bank, new, prev) fields, with [c_dst_new = -1] for "no
   destination". *)
type copy = {
  c_slot : int;
  mutable c_seq : int;
  mutable c_cluster : int;
  mutable c_role : role;
  mutable c_op : Op_class.t;  (** architectural operation (master/single) *)
  mutable c_issue_class : Op_class.t;  (** issue-slot class this copy consumes *)
  c_srcs : int array;  (** local physical sources, see {!src_code}; first [c_nsrcs] valid *)
  mutable c_nsrcs : int;
  mutable c_dst_reg : Reg.t;  (** meaningful only when [c_dst_new >= 0] *)
  mutable c_dst_bank : Regfile.bank;
  mutable c_dst_new : int;  (** renamed physical destination; -1 = none *)
  mutable c_dst_prev : int;  (** previous mapping (freed at retire) *)
  mutable c_forwards : bool;
  mutable c_receives_result : bool;
  mutable c_result_forward : bool;  (** master must allocate a result entry *)
  mutable c_has_slave_operand : bool;  (** master waits for the slave's operand *)
  mutable c_num_operand_entries : int;  (** entries a forwarding slave needs *)
  mutable c_state : cstate;
  mutable c_issue : int;
  mutable c_finish : int;
  mutable c_wait_srcs : int;
      (** wakeup engine: source events still outstanding before every
          operand of this copy is ready *)
  c_operand_ents : int array;  (** first [c_operand_live] valid *)
  mutable c_operand_live : int;
  mutable c_result_entry : int;
      (** on a receiving slave: the entry (in its own cluster's result
          buffer) reserved by the master; -1 when none *)
  mutable c_master_cluster : int;  (** the master copy's cluster *)
  mutable c_group : group;
}

and group = {
  g_slot : int;
  mutable g_seq : int;
      (** position in the current trace — all dynamic payloads (memory
          address, branch outcome) are read back from the flat trace at
          this index *)
  mutable g_scenario : int;
  mutable g_master : copy;
      (** the executing copy (single or master); [dummy_copy] only
          transiently inside [try_dispatch_one] *)
  g_slaves : copy array;  (** first [g_nslaves] valid, one per participating other cluster *)
  mutable g_nslaves : int;
  mutable g_token : Mcfarling.token option;
  mutable g_mispred : bool;
}

(* Shared read-only sentinels for freshly built pool records. Never
   mutated and never simulated (dummy state is [C_squashed], which every
   consumer filters out), so sharing them across states and domains is
   safe. *)
let rec dummy_group =
  { g_slot = -1; g_seq = -1; g_scenario = 0; g_master = dummy_copy; g_slaves = [||];
    g_nslaves = 0; g_token = None; g_mispred = false }

and dummy_copy =
  { c_slot = -1; c_seq = -1; c_cluster = 0; c_role = Single_copy;
    c_op = Op_class.Int_other; c_issue_class = Op_class.Int_other;
    c_srcs = [||]; c_nsrcs = 0;
    c_dst_reg = Reg.Int_reg 0; c_dst_bank = Regfile.B_int; c_dst_new = -1; c_dst_prev = -1;
    c_forwards = false; c_receives_result = false; c_result_forward = false;
    c_has_slave_operand = false; c_num_operand_entries = 0;
    c_state = C_squashed; c_issue = -1; c_finish = max_int; c_wait_srcs = 0;
    c_operand_ents = [||]; c_operand_live = 0; c_result_entry = -1;
    c_master_cluster = 0; c_group = dummy_group }

let make_pool_copy slot =
  { c_slot = slot; c_seq = -1; c_cluster = 0; c_role = Single_copy;
    c_op = Op_class.Int_other; c_issue_class = Op_class.Int_other;
    c_srcs = Array.make max_srcs 0; c_nsrcs = 0;
    c_dst_reg = Reg.Int_reg 0; c_dst_bank = Regfile.B_int; c_dst_new = -1; c_dst_prev = -1;
    c_forwards = false; c_receives_result = false; c_result_forward = false;
    c_has_slave_operand = false; c_num_operand_entries = 0;
    c_state = C_squashed; c_issue = -1; c_finish = max_int; c_wait_srcs = 0;
    c_operand_ents = Array.make max_srcs (-1); c_operand_live = 0; c_result_entry = -1;
    c_master_cluster = 0; c_group = dummy_group }

let copy_slot (c : copy) = c.c_slot

let make_pool_group slot =
  { g_slot = slot; g_seq = -1; g_scenario = 0; g_master = dummy_copy;
    g_slaves = Array.make max_slaves dummy_copy; g_nslaves = 0;
    g_token = None; g_mispred = false }

let group_slot (g : group) = g.g_slot

type cluster_state = {
  cl_id : int;
  rf : Regfile.t;
  fu : Fu.t;
  dqs : copy Deque.t array;
      (** scan engine: one queue ([Unified]) or int/fp/mem ([Per_class]) *)
  dq_waiting : int array;  (** per queue: entries occupied by waiting copies *)
  mutable cl_waiting : int;
      (** running total of [dq_waiting] — updated at enqueue, issue and
          squash so dispatch steering reads it in O(1) instead of
          rescanning every queue per attempt; [occupancy_snapshot]
          asserts agreement with the scan *)
  wait_regs : copy Vec.t array array;
      (** wakeup engine: per bank bit, per physical register, the waiting
          copies indexed under that not-yet-written source *)
  ready_qs : copy Vec.t array;
      (** wakeup engine: per-queue list of copies whose sources are all
          ready (possibly still structurally blocked) *)
  ready_dirty : bool array;  (** ready list needs re-sorting by seq *)
  operand_buf : Transfer_buffer.t;  (** written by slaves in the other cluster *)
  result_buf : Transfer_buffer.t;  (** written by masters in the other cluster *)
}

let total_waiting cl = Array.fold_left ( + ) 0 cl.dq_waiting

type result = {
  cycles : int;
  retired : int;
  ipc : float;
  single_distributed : int;
  dual_distributed : int;
  replays : int;
  branch_accuracy : float;
  icache_miss_rate : float;
  dcache_miss_rate : float;
  counters : (string * int) list;
  counter_lookup : Stats.lookup;
}

let counter r name = Stats.lookup_get r.counter_lookup name

type fetched = {
  f_idx : int;  (** trace position (= seq) *)
  f_token : Mcfarling.token option;
  f_mispred : bool;
}

type occupancy = {
  oc_cycle : int;
  oc_rob : int;
  oc_dispatch_queues : int array;
  oc_operand_buffers : int array;
  oc_result_buffers : int array;
}

(* The counters bumped once (or more) per instruction, interned as live
   cells at [init_state] so the hot path pays a plain [incr] instead of a
   string hash per event. They remain ordinary members of [ctrs]. *)
type hot_counters = {
  k_retired : int ref;
  k_single_distributed : int ref;
  k_dual_distributed : int ref;
  k_slave_issues : int ref;
  k_scenarios : int ref array;  (* scenario_0 .. scenario_5 *)
  k_stall_rob_full : int ref;
  k_stall_dq_full : int ref;
  k_stall_phys : int ref;
  k_ooo_issues : int ref;
  k_ooo_issue_distance : int ref;
  k_issue_active : int ref;
  k_both_active : int ref;
  k_fetch_stall : int ref;
  k_icache_fetch_misses : int ref;
  k_mispredicted_fetches : int ref;
  k_redirects : int ref;
  k_squashed_copies : int ref;
}

type state = {
  cfg : config;
  engine : engine;
  n_clust : int;
  hops : int array;
      (** interconnect hop latencies, flattened [src * n_clust + dst]
          ({!Interconnect.matrix}); the dual machine's point-to-point
          table is all ones, the scalar "+1" the transfer paths used to
          hard-code *)
  mutable assignment : Assignment.t;  (* current phase's register assignment *)
  mutable trace : Flat_trace.t;
  mutable clusters : cluster_state array;
  mutable plan_memo : Distribution.plan option array;
      (** distribution plans memoized per [(pc lsl 3) lor prefer]
          ([validate_config] caps clusters at 8, so [prefer] fits three
          bits): [Distribution.plan] is pure in (assignment, prefer,
          instr), so each static instruction is planned at most once per
          preferred cluster per assignment. Cleared on [load_phase]. *)
  mutable plan_instrs : Instr.t array;
      (** the interned instruction each memo slot was planned for
          (physical identity is the validity check); [plan_dummy] marks
          an empty slot *)
  mutable splan_memo : Distribution.plan option array;
      (** {!Distribution.plan_steered} memoized per
          [(pc lsl 3) lor master], mirroring [plan_memo]
          ([plan_steered] is pure in (assignment, master, instr));
          only populated under a dynamic steering policy *)
  mutable splan_instrs : Instr.t array;
  plan_dummy : Instr.t;
  steer_dynamic : bool;
      (** a dynamic steering policy is active and the machine has more
          than one cluster — the one test the dispatch hot path pays *)
  steer_train : bool;  (** policy is [Ineffectual]: train at retire *)
  mutable steer_rr : int;  (** [Modulo]: next cluster, advanced per dispatch *)
  mutable steer_kind : int;
      (** classification of the latest dynamic decision: 0 = policy hit,
          1 = fell back to least-loaded, 2 = predicted-dead exile —
          promoted to the [steer_*] counters only when the dispatch
          attempt succeeds *)
  mutable steer_hits : int;
  mutable steer_fallbacks : int;
  mutable steer_dead_exiles : int;
  ineff : Steering.Ineff_table.t;
      (** per-pc dead-result predictor ([Ineffectual] only; empty-trained
          otherwise) *)
  arch_last_pc : int array;
      (** per architectural register ({!Reg.flat_index}): pc of the
          youngest retired writer, -1 when none this phase — the
          instruction the next overwrite's verdict trains *)
  arch_read : bool array;
      (** whether the youngest retired writer's value has been read *)
  icache : Cache.t;
  dcache : Cache.t;
  predictor : Mcfarling.t;
  rob : group Deque.t;
  fetch_buffer : fetched Fixed_queue.t;
  ctrs : Stats.counter_set;
  hot : hot_counters;
  emit : event -> unit;
  observed : bool;
      (** an event sink is attached; [Ev_*] records are only constructed
          when this is set, so unobserved runs allocate no events *)
  on_occupancy : (occupancy -> unit) option;
  occupancy_period : int;  (** cycles between occupancy samples *)
  prof : Profile_counters.t option;
  src_wheel : copy Bucket_queue.t;
      (** wakeup engine: copies scheduled at the cycle one of their
          pending sources becomes ready (drained at issue) *)
  wake_wheel : copy Bucket_queue.t;
      (** wakeup engine: suspended scenario-5 slaves, keyed by the cycle
          the master's result reaches their cluster *)
  wake_scratch : copy Vec.t;  (** wake-phase staging, sorted by seq *)
  copy_pool : copy Freelist.Slab.t;
  group_pool : group Freelist.Slab.t;
  limbo : copy Vec.t;
      (** squashed copies awaiting recycling: stale references to them
          may persist in the wheels until every pre-squash source event
          has fired, so they re-enter the pool only once
          [limbo_flush_at] passes (see [squash_copy]/[replay]) *)
  mutable limbo_flush_at : int;
  mutable src_drain : copy -> unit;  (** preallocated drain callbacks: *)
  mutable wake_drain : copy -> unit;
      (** [Bucket_queue.drain_upto] takes a closure; capturing [st] fresh
          each cycle would put two minor-heap blocks back on the issue
          and wake paths, so both callbacks are built once per state *)
  mutable scratch_work : int;  (** per-phase examined-entry accumulator *)
  mutable cycle : int;
  mutable trace_idx : int;
  mutable fetch_resume : int;  (** first cycle fetch may proceed *)
  mutable redirect_pending : bool;  (** mispredicted branch fetched, not yet executed *)
  mutable last_fetch_line : int;
  mutable max_finish : int;  (** latest known completion among issued copies *)
  mutable stall_cycles : int;  (** consecutive no-progress cycles *)
  pending_train : (int * int * Mcfarling.token * bool) Deque.t;
      (** (train_cycle, seq, token, taken), pushed at the back in
          nondecreasing train-cycle order (branches issue at
          nondecreasing cycles and [Control] latency is constant), so
          everything due sits at the front *)
  mutable max_issued_seq : int;
      (** youngest instruction issued so far (issue-disorder metric) *)
  mutable head_blocked_seq : int;
  mutable head_blocked_age : int;
      (** seq and consecutive cycles the oldest in-flight instruction has
          been issue-blocked on a transfer buffer — replay trigger even
          when younger instructions keep the machine busy (two plain ints
          rather than a tuple: the tracker updates every blocked cycle) *)
  mutable last_replay_seq : int;
  mutable last_replay_retired : int;
      (** victim seq and retired count at the most recent replay, to
          detect a replay that changed nothing (same victim again with no
          instruction retired in between) *)
  mutable starving_seq : int;
      (** anti-livelock freeze: while >= 0, groups younger than this seq
          may not claim transfer-buffer entries (see [buffer_frozen]) *)
}

let rob_capacity = 16384

let bank_of_op_for_slot (b : Regfile.bank) : Op_class.t =
  match b with Regfile.B_int -> Op_class.Int_other | Regfile.B_fp -> Op_class.Fp_other

(* ------------------------------------------------------------------ *)
(* Profiling                                                           *)
(* ------------------------------------------------------------------ *)

let stage_fetch = 0
let stage_dispatch = 1
let stage_issue = 2
let stage_wake = 3
let stage_retire = 4
let stage_train = 5
let profile_stages = [ "fetch"; "dispatch"; "issue"; "wake"; "retire"; "train" ]
let profile_counters () = Profile_counters.create ~stages:profile_stages

let prof_add st stage work =
  match st.prof with Some p -> Profile_counters.add p stage ~work | None -> ()

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Returns the instruction's own [dst] option (no fresh [Some] box). *)
let effective_dst (i : Instr.t) =
  match i.dst with Some d when not (Reg.is_zero d) -> i.dst | Some _ | None -> None

let rec reg_forwarded r (regs : Reg.t list) =
  match regs with [] -> false | r' :: rest -> Reg.equal r r' || reg_forwarded r rest

let rec reg_forwarded_by_any r (slaves : Distribution.slave list) =
  match slaves with
  | [] -> false
  | sl :: rest -> reg_forwarded r sl.Distribution.s_forward_srcs || reg_forwarded_by_any r rest

(* Write the local physical sources of [regs] (at most two) into the
   pooled copy's own source array: hardwired zeros and registers
   forwarded by one of [slaves] ([] keeps everything) are dropped. A
   top-level recursion over the memoized plan — the old [collect_srcs]
   built a fresh array (plus a [keep] closure on the Multi path) per
   copy. *)
let rec fill_srcs rf (c : copy) slaves regs n =
  match regs with
  | [] -> c.c_nsrcs <- n
  | r :: rest ->
    if (not (Reg.is_zero r)) && not (reg_forwarded_by_any r slaves) then begin
      c.c_srcs.(n) <- src_code (Regfile.bank_of_reg r) (Regfile.lookup rf r);
      fill_srcs rf c slaves rest (n + 1)
    end
    else fill_srcs rf c slaves rest n

(* Rename the destination into the copy's (reg, bank, new, prev) fields.
   Callers check freelist headroom first, so the packed rename cannot
   fail here. *)
let set_copy_dst (c : copy) rf dst =
  match dst with
  | None -> ()
  | Some d ->
    let packed = Regfile.rename_packed rf d in
    assert (packed >= 0);
    c.c_dst_reg <- d;
    c.c_dst_bank <- Regfile.bank_of_reg d;
    c.c_dst_new <- packed lsr 16;
    c.c_dst_prev <- packed land 0xffff

(* Fetch a recycled copy record and reinitialize every mutable field to
   dispatch state; role-specific fields are overwritten by the caller
   before the copy is enqueued. *)
let acquire_copy st (g : group) cluster role op issue_class =
  let c = Freelist.Slab.alloc st.copy_pool in
  c.c_seq <- g.g_seq;
  c.c_cluster <- cluster;
  c.c_role <- role;
  c.c_op <- op;
  c.c_issue_class <- issue_class;
  c.c_nsrcs <- 0;
  c.c_dst_new <- -1;
  c.c_forwards <- false;
  c.c_receives_result <- false;
  c.c_result_forward <- false;
  c.c_has_slave_operand <- false;
  c.c_num_operand_entries <- 0;
  c.c_state <- C_waiting;
  c.c_issue <- -1;
  c.c_finish <- max_int;
  c.c_wait_srcs <- 0;
  c.c_operand_live <- 0;
  c.c_result_entry <- -1;
  c.c_master_cluster <- cluster;
  c.c_group <- g;
  c

(* Scenario counter names, preallocated (indexed by Distribution.scenario,
   1-5; 0 is never produced). *)
let scenario_counters =
  [| "scenario_0"; "scenario_1"; "scenario_2"; "scenario_3"; "scenario_4"; "scenario_5" |]

let by_seq (a : copy) (b : copy) = compare a.c_seq b.c_seq

(* Append to the copy's per-queue ready list. The list is kept in seq
   order (the scan engine issues oldest-first within a queue); an
   out-of-order append just marks it for re-sorting at the next issue. *)
let ready_push st (c : copy) =
  let cl = st.clusters.(c.c_cluster) in
  let q = queue_of_class c.c_issue_class st.cfg.queue_split in
  let rq = cl.ready_qs.(q) in
  let n = Vec.length rq in
  if n > 0 && (Vec.get rq (n - 1)).c_seq > c.c_seq then cl.ready_dirty.(q) <- true;
  Vec.push rq c

(* Wakeup-engine dispatch: index the copy under each not-yet-ready
   source. A source already written goes unrecorded; one with a known
   future ready cycle schedules the copy on the source wheel; a truly
   pending one parks the copy in the producer register's wait list (moved
   to the wheel when the producer issues and calls [set_dst_ready]). A
   copy with no outstanding sources goes straight to the ready list. *)
let rec register_srcs st cl (c : copy) i pending =
  if i >= c.c_nsrcs then pending
  else begin
    let code = c.c_srcs.(i) in
    let ready = Regfile.ready_at cl.rf (src_bank code) (src_phys code) in
    let pending =
      if ready = max_int then begin
        Vec.push cl.wait_regs.(code land 1).(code lsr 1) c;
        pending + 1
      end
      else if ready > st.cycle then begin
        Bucket_queue.add st.src_wheel ~key:ready c;
        pending + 1
      end
      else pending
    in
    register_srcs st cl c (i + 1) pending
  end

let register_copy st (c : copy) =
  let cl = st.clusters.(c.c_cluster) in
  let pending = register_srcs st cl c 0 0 in
  c.c_wait_srcs <- pending;
  if pending = 0 then ready_push st c

let enqueue_copy st cl q (c : copy) =
  match st.engine with
  | `Scan -> Deque.push_back cl.dqs.(q) c
  | `Wakeup -> register_copy st c

let acquire_group st (f : fetched) scenario =
  let g = Freelist.Slab.alloc st.group_pool in
  g.g_seq <- f.f_idx;
  g.g_scenario <- scenario;
  g.g_master <- dummy_copy;
  g.g_nslaves <- 0;
  g.g_token <- f.f_token;
  g.g_mispred <- f.f_mispred;
  Deque.push_back st.rob g;
  g

(* Memoized [Distribution.plan]: one slot per (pc, preferred cluster),
   validated by physical identity of the interned static instruction the
   slot was planned for. A fresh (non-interned) instruction — only
   possible on hand-built traces that reuse a pc — recomputes without
   caching. *)
let plan_for st ~pc ~prefer instr =
  let key = (pc lsl 3) lor prefer in
  if key >= Array.length st.plan_memo then begin
    let cap = max (key + 1) (max 128 (2 * Array.length st.plan_memo)) in
    let memo = Array.make cap None in
    let instrs = Array.make cap st.plan_dummy in
    Array.blit st.plan_memo 0 memo 0 (Array.length st.plan_memo);
    Array.blit st.plan_instrs 0 instrs 0 (Array.length st.plan_instrs);
    st.plan_memo <- memo;
    st.plan_instrs <- instrs
  end;
  if st.plan_instrs.(key) == instr then
    match st.plan_memo.(key) with Some p -> p | None -> assert false
  else begin
    let p = Distribution.plan st.assignment ~prefer instr in
    st.plan_instrs.(key) <- instr;
    st.plan_memo.(key) <- Some p;
    p
  end

(* Queue and class per slave copy. A slave that forwards nothing must
   receive the result, so [dst_bank]'s filler value (passed when the
   instruction has no destination) is never consulted. *)
let slave_issue_class dst_bank (sl : Distribution.slave) =
  match sl.Distribution.s_forward_srcs with
  | r :: _ -> bank_of_op_for_slot (Regfile.bank_of_reg r)
  | [] -> bank_of_op_for_slot dst_bank

(* The Multi-path admission checks and attribute scans below are
   top-level recursions over the memoized plan's slave list: the old
   [List.for_all]/[List.exists] chains captured dispatch locals in a
   fresh closure per attempt. *)
let rec multi_room_ok st dst_bank (slaves : Distribution.slave list) =
  match slaves with
  | [] -> true
  | sl :: rest ->
    let scl = st.clusters.(sl.Distribution.s_cluster) in
    let sq = queue_of_class (slave_issue_class dst_bank sl) st.cfg.queue_split in
    scl.dq_waiting.(sq) < queue_capacity st.cfg.queue_split st.cfg.dq_entries sq
    && multi_room_ok st dst_bank rest

let rec multi_phys_ok st bank (slaves : Distribution.slave list) =
  match slaves with
  | [] -> true
  | sl :: rest ->
    ((not sl.Distribution.s_receives_result)
    || Regfile.free_count st.clusters.(sl.Distribution.s_cluster).rf bank > 0)
    && multi_phys_ok st bank rest

let rec any_slave_forwards (slaves : Distribution.slave list) =
  match slaves with
  | [] -> false
  | sl :: rest -> sl.Distribution.s_forward_srcs <> [] || any_slave_forwards rest

let rec any_slave_receives (slaves : Distribution.slave list) =
  match slaves with
  | [] -> false
  | sl :: rest -> sl.Distribution.s_receives_result || any_slave_receives rest

let rec dispatch_slaves st (g : group) (instr : Instr.t) dst dst_bank master scenario
    (slaves : Distribution.slave list) =
  match slaves with
  | [] -> ()
  | sl :: rest ->
    let scl = st.clusters.(sl.Distribution.s_cluster) in
    let cls = slave_issue_class dst_bank sl in
    let sq = queue_of_class cls st.cfg.queue_split in
    let sc = acquire_copy st g sl.Distribution.s_cluster Slave_copy instr.Instr.op cls in
    (* Forwarded sources look up the pre-rename map, like every other
       source. A steered plan can make one slave both forward a register
       and receive the result into it (impossible under static masters,
       where the source+destination cluster always wins the majority);
       renaming first would have the slave forward its own pending
       result — a dispatch-time deadlock cycle. *)
    fill_srcs scl.rf sc [] sl.Distribution.s_forward_srcs 0;
    if sl.Distribution.s_receives_result then set_copy_dst sc scl.rf dst;
    sc.c_forwards <- sl.Distribution.s_forward_srcs <> [];
    sc.c_receives_result <- sl.Distribution.s_receives_result;
    sc.c_num_operand_entries <- List.length sl.Distribution.s_forward_srcs;
    sc.c_master_cluster <- master;
    g.g_slaves.(g.g_nslaves) <- sc;
    g.g_nslaves <- g.g_nslaves + 1;
    enqueue_copy st scl sq sc;
    scl.dq_waiting.(sq) <- scl.dq_waiting.(sq) + 1;
    scl.cl_waiting <- scl.cl_waiting + 1;
    if st.observed then
      st.emit (Ev_dispatch { cycle = st.cycle; seq = g.g_seq;
                             cluster = sl.Distribution.s_cluster; role = Slave_copy;
                             scenario });
    dispatch_slaves st g instr dst dst_bank master scenario rest

(* Occupancy-based steering: the least-loaded cluster by the running
   [cl_waiting] totals, lowest index winning ties (strict [<], so two
   clusters reproduce the historical [<=] comparison exactly). A
   top-level recursion — a closure or ref pair here would put dispatch
   allocation back on the hot path. *)
let rec steer_argmin (clusters : cluster_state array) i n best best_w =
  if i >= n then best
  else begin
    let w = clusters.(i).cl_waiting in
    if w < best_w then steer_argmin clusters (i + 1) n i w
    else steer_argmin clusters (i + 1) n best best_w
  end

(* Memoized [Distribution.plan_steered], mirroring [plan_for] but keyed
   by the forced master instead of the tie-break preference. Only dynamic
   policies reach it, so one state never mixes the two memo families. *)
let plan_steered_for st ~pc ~master instr =
  let key = (pc lsl 3) lor master in
  if key >= Array.length st.splan_memo then begin
    let cap = max (key + 1) (max 128 (2 * Array.length st.splan_memo)) in
    let memo = Array.make cap None in
    let instrs = Array.make cap st.plan_dummy in
    Array.blit st.splan_memo 0 memo 0 (Array.length st.splan_memo);
    Array.blit st.splan_instrs 0 instrs 0 (Array.length st.splan_instrs);
    st.splan_memo <- memo;
    st.splan_instrs <- instrs
  end;
  if st.splan_instrs.(key) == instr then
    match st.splan_memo.(key) with Some p -> p | None -> assert false
  else begin
    let p = Distribution.plan_steered st.assignment ~master instr in
    st.splan_instrs.(key) <- instr;
    st.splan_memo.(key) <- Some p;
    p
  end

(* Dependence steering: the cluster owning the producer of the first
   not-yet-ready (or never-written) non-zero local source, in operand
   order. Global sources are readable everywhere and pin nothing; -1
   when every source is ready, global or zero. A top-level recursion for
   the same reason as [steer_argmin]. *)
let rec steer_dependence st (srcs : Reg.t list) =
  match srcs with
  | [] -> -1
  | r :: rest ->
    if Reg.is_zero r then steer_dependence st rest
    else begin
      match Assignment.placement st.assignment r with
      | Assignment.Global -> steer_dependence st rest
      | Assignment.Local c ->
        let rf = st.clusters.(c).rf in
        let bank = Regfile.bank_of_reg r in
        if Regfile.ready_at rf bank (Regfile.lookup rf r) > st.cycle then c
        else steer_dependence st rest
    end

(* The dynamic policy's cluster choice for this dispatch attempt; also
   records the decision's classification in [steer_kind] so a successful
   dispatch can promote it to the right counter. Never called under
   [Static] or with one cluster. *)
let steer_cluster st policy (instr : Instr.t) ~pc n =
  let fallback () =
    st.steer_kind <- 1;
    steer_argmin st.clusters 1 n 0 st.clusters.(0).cl_waiting
  in
  st.steer_kind <- 0;
  match (policy : Steering.policy) with
  | Steering.Static -> assert false
  | Steering.Modulo -> st.steer_rr
  | Steering.Load -> steer_argmin st.clusters 1 n 0 st.clusters.(0).cl_waiting
  | Steering.Dependence ->
    let c = steer_dependence st instr.Instr.srcs in
    if c >= 0 then c else fallback ()
  | Steering.Ineffectual ->
    if Steering.Ineff_table.predict_dead st.ineff ~pc then begin
      st.steer_kind <- 2;
      n - 1
    end
    else begin
      let c = steer_dependence st instr.Instr.srcs in
      if c >= 0 then c else fallback ()
    end

let try_dispatch_one st (f : fetched) =
  let cfg = st.cfg in
  let instr = Flat_trace.instr st.trace f.f_idx in
  let pc = Flat_trace.pc st.trace f.f_idx in
  let plan =
    if st.steer_dynamic then
      let master = steer_cluster st cfg.steering instr ~pc (Array.length st.clusters) in
      plan_steered_for st ~pc ~master instr
    else begin
      let prefer =
        let n = Array.length st.clusters in
        if n = 1 then 0 else steer_argmin st.clusters 1 n 0 st.clusters.(0).cl_waiting
      in
      plan_for st ~pc ~prefer instr
    end
  in
  let scenario = Distribution.scenario plan in
  if Deque.length st.rob >= rob_capacity then begin
    incr st.hot.k_stall_rob_full;
    false
  end
  else
    match plan with
    | Distribution.Single { cluster } ->
      let cl = st.clusters.(cluster) in
      let dst = effective_dst instr in
      let q = queue_of_class instr.Instr.op cfg.queue_split in
      if cl.dq_waiting.(q) >= queue_capacity cfg.queue_split cfg.dq_entries q then begin
        incr st.hot.k_stall_dq_full;
        false
      end
      else if
        match dst with
        | Some d -> Regfile.free_count cl.rf (Regfile.bank_of_reg d) = 0
        | None -> false
      then begin
        incr st.hot.k_stall_phys;
        false
      end
      else begin
        let g = acquire_group st f scenario in
        let c = acquire_copy st g cluster Single_copy instr.Instr.op instr.Instr.op in
        (* Sources look up the pre-rename map, so fill before renaming
           (the destination may also be a source). *)
        fill_srcs cl.rf c [] instr.Instr.srcs 0;
        set_copy_dst c cl.rf dst;
        g.g_master <- c;
        enqueue_copy st cl q c;
        cl.dq_waiting.(q) <- cl.dq_waiting.(q) + 1;
        cl.cl_waiting <- cl.cl_waiting + 1;
        incr st.hot.k_single_distributed;
        incr st.hot.k_scenarios.(scenario);
        if st.observed then
          st.emit (Ev_dispatch { cycle = st.cycle; seq = g.g_seq; cluster; role = Single_copy;
                                 scenario });
        true
      end
    | Distribution.Multi { master; slaves; master_writes_reg } ->
      let mcl = st.clusters.(master) in
      let dst = effective_dst instr in
      let dst_bank =
        match dst with Some d -> Regfile.bank_of_reg d | None -> Regfile.B_int
      in
      let mq = queue_of_class instr.Instr.op cfg.queue_split in
      let room_ok =
        mcl.dq_waiting.(mq) < queue_capacity cfg.queue_split cfg.dq_entries mq
        && multi_room_ok st dst_bank slaves
      in
      let phys_ok =
        match dst with
        | None -> true
        | Some _ ->
          ((not master_writes_reg) || Regfile.free_count mcl.rf dst_bank > 0)
          && multi_phys_ok st dst_bank slaves
      in
      if not room_ok then begin
        incr st.hot.k_stall_dq_full;
        false
      end
      else if not phys_ok then begin
        incr st.hot.k_stall_phys;
        false
      end
      else begin
        let g = acquire_group st f scenario in
        let mc = acquire_copy st g master Master_copy instr.Instr.op instr.Instr.op in
        fill_srcs mcl.rf mc slaves instr.Instr.srcs 0;
        if master_writes_reg then set_copy_dst mc mcl.rf dst;
        mc.c_has_slave_operand <- any_slave_forwards slaves;
        mc.c_result_forward <- any_slave_receives slaves;
        g.g_master <- mc;
        enqueue_copy st mcl mq mc;
        mcl.dq_waiting.(mq) <- mcl.dq_waiting.(mq) + 1;
        mcl.cl_waiting <- mcl.cl_waiting + 1;
        if st.observed then
          st.emit (Ev_dispatch { cycle = st.cycle; seq = g.g_seq; cluster = master;
                                 role = Master_copy; scenario });
        dispatch_slaves st g instr dst dst_bank master scenario slaves;
        incr st.hot.k_dual_distributed;
        incr st.hot.k_scenarios.(scenario);
        true
      end

(* Bookkeeping for a successful dynamically steered dispatch: promote
   the decision classification recorded by [steer_cluster] and advance
   the round-robin counter (per dispatched instruction, so a stalled
   attempt retries the same cluster). *)
let note_steered_dispatch st =
  (match st.steer_kind with
  | 0 -> st.steer_hits <- st.steer_hits + 1
  | 1 -> st.steer_fallbacks <- st.steer_fallbacks + 1
  | _ -> st.steer_dead_exiles <- st.steer_dead_exiles + 1);
  if st.cfg.steering = Steering.Modulo then
    st.steer_rr <- (st.steer_rr + 1) mod st.n_clust

let dispatch_phase st =
  let n = ref 0 in
  let blocked = ref false in
  while (not !blocked) && !n < st.cfg.dispatch_width do
    match Fixed_queue.peek st.fetch_buffer with
    | None -> blocked := true
    | Some f ->
      if try_dispatch_one st f then begin
        if st.steer_dynamic then note_steered_dispatch st;
        ignore (Fixed_queue.pop st.fetch_buffer);
        incr n
      end
      else blocked := true
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Issue                                                               *)
(* ------------------------------------------------------------------ *)

(* Checked once per issue candidate per cycle: plain recursion instead of
   [Array.iter]/[List.for_all] closures keeps the scan allocation-free. *)
(* The per-candidate readiness predicates below are written as top-level
   recursions rather than [Array.iter]/[List.for_all] closures: without
   flambda each closure capturing locals costs a minor-heap block per
   candidate examined, which dominated the issue-phase allocation. *)
let rec srcs_ready_from st cl (c : copy) i n =
  i >= n
  ||
  let code = c.c_srcs.(i) in
  Regfile.ready_at cl.rf (src_bank code) (src_phys code) <= st.cycle
  && srcs_ready_from st cl c (i + 1) n

let srcs_ready st (c : copy) =
  srcs_ready_from st st.clusters.(c.c_cluster) c 0 c.c_nsrcs

(* Interconnect hop latency from cluster [src] to cluster [dst]; the
   table is precomputed at [init_state], so the issue-path checks below
   pay one array read. Point-to-point at any cluster count (and every
   topology at two clusters except the crossbar) reads 1 — the transfer
   cost the dual machine used to hard-code. *)
let hop st ~src ~dst = st.hops.((src * st.n_clust) + dst)

let rec slaves_can_feed st (g : group) i =
  i >= g.g_nslaves
  ||
  let s = g.g_slaves.(i) in
  ((not s.c_forwards)
  || (s.c_state <> C_waiting
     && st.cycle >= s.c_issue + hop st ~src:s.c_cluster ~dst:s.c_master_cluster))
  && slaves_can_feed st g (i + 1)

let rec result_slots_free st (g : group) i =
  i >= g.g_nslaves
  ||
  let s = g.g_slaves.(i) in
  ((not s.c_receives_result)
  || Transfer_buffer.can_alloc st.clusters.(s.c_cluster).result_buf ~cycle:st.cycle)
  && result_slots_free st g (i + 1)

(* Anti-livelock freeze: a head-starvation replay recovers from a
   transfer-buffer deadlock by squashing and re-executing, but the replay
   is deterministic — if the head instruction starves again, re-execution
   would recreate the identical wedge forever (younger slaves refill the
   buffer before the head's slave reaches it, e.g. from a
   scanned-earlier per-class queue). Once the same head starves through a
   replay, groups younger than it are barred from claiming new
   transfer-buffer entries until it drains. *)
let buffer_frozen st (c : copy) =
  st.starving_seq >= 0
  && c.c_group.g_seq > st.starving_seq
  &&
  match c.c_role with
  | Slave_copy -> c.c_forwards
  | Master_copy -> c.c_result_forward
  | Single_copy -> false

(* Readiness beyond source operands and issue slots. *)
let structurally_ready st (c : copy) =
  (not (buffer_frozen st c))
  &&
  match c.c_role with
  | Single_copy -> true
  | Master_copy ->
    ((not c.c_has_slave_operand) || slaves_can_feed st c.c_group 0)
    && ((not c.c_result_forward) || result_slots_free st c.c_group 0)
  | Slave_copy ->
    if c.c_forwards then
      let master_cl = st.clusters.(c.c_master_cluster) in
      Transfer_buffer.available master_cl.operand_buf ~cycle:st.cycle
      >= c.c_num_operand_entries
    else begin
      (* Pure result-receiving slave: wait for the master's result to
         cross the interconnect. At one hop this is the paper's rule —
         issuable at [master_finish - 1], but never before the cycle
         after the master issues. *)
      let m = c.c_group.g_master in
      let h = hop st ~src:m.c_cluster ~dst:c.c_cluster in
      m.c_state = C_issued && st.cycle >= max (m.c_issue + h) (m.c_finish - 2 + h)
    end

let finish_of_issue st (c : copy) =
  let issue = st.cycle in
  match c.c_op with
  | Op_class.Load ->
    let addr = Flat_trace.mem_addr st.trace c.c_group.g_seq in
    let ready = Cache.access st.dcache ~cycle:(issue + 1) ~addr ~write:false in
    max (issue + 2) (ready + 1)
  | Op_class.Store ->
    let addr = Flat_trace.mem_addr st.trace c.c_group.g_seq in
    ignore (Cache.access st.dcache ~cycle:(issue + 1) ~addr ~write:true);
    issue + 1
  | Op_class.Int_multiply | Op_class.Int_other | Op_class.Fp_divide _ | Op_class.Fp_other
  | Op_class.Control -> issue + Op_class.latency c.c_op

let set_dst_ready st (c : copy) cycle =
  if c.c_dst_new >= 0 then begin
    let cl = st.clusters.(c.c_cluster) in
    Regfile.set_ready cl.rf c.c_dst_bank c.c_dst_new cycle;
    match st.engine with
    | `Scan -> ()
    | `Wakeup ->
      (* Move every copy waiting on this register onto the source wheel
         at its ready cycle. Stale (squashed) waiters are dropped here;
         live waiters of a squashed producer cannot exist, because a
         squash always covers all younger instructions. *)
      let wv = cl.wait_regs.(bank_bit c.c_dst_bank).(c.c_dst_new) in
      let nw = Vec.length wv in
      if nw > 0 then begin
        for i = 0 to nw - 1 do
          let w = Vec.get wv i in
          if w.c_state = C_waiting then Bucket_queue.add st.src_wheel ~key:cycle w
        done;
        Vec.clear wv
      end
  end

let note_finish st f = if f < max_int && f > st.max_finish then st.max_finish <- f

(* Consume the forwarded operands: free every slave's operand entries
   (they live in [cl], the master's cluster's, buffer). Entries are
   released newest-first, matching the order of the historical
   prepend-built entry list. *)
let rec consume_slave_operands st cl (g : group) i =
  if i < g.g_nslaves then begin
    let s = g.g_slaves.(i) in
    (if s.c_operand_live > 0 then begin
       for j = s.c_operand_live - 1 downto 0 do
         Transfer_buffer.free cl.operand_buf ~cycle:st.cycle s.c_operand_ents.(j)
       done;
       s.c_operand_live <- 0
     end);
    consume_slave_operands st cl g (i + 1)
  end

(* Reserve a result-transfer entry in every receiving slave's cluster. *)
let rec forward_results st (c : copy) (g : group) i =
  if i < g.g_nslaves then begin
    let s = g.g_slaves.(i) in
    (if s.c_receives_result then begin
       let other = st.clusters.(s.c_cluster) in
       let h = hop st ~src:c.c_cluster ~dst:s.c_cluster in
       s.c_result_entry <- Transfer_buffer.alloc other.result_buf ~cycle:st.cycle;
       if st.observed then
         st.emit
           (Ev_result_forward
              { cycle = c.c_finish + h - 1; seq = c.c_seq; from_cluster = c.c_cluster;
                to_cluster = s.c_cluster });
       (* A suspended scenario-5 slave wakes when the result reaches its
          cluster: schedule it on the wake wheel now that the wake cycle
          is known. *)
       match st.engine with
       | `Wakeup when s.c_state = C_suspended ->
         Bucket_queue.add st.wake_wheel ~key:(max (st.cycle + h) (c.c_finish - 2 + h)) s
       | `Wakeup | `Scan -> ()
     end);
    forward_results st c g (i + 1)
  end

let issue_executing_copy st (c : copy) =
  (* Single copy or master copy: runs the real operation. *)
  let cl = st.clusters.(c.c_cluster) in
  Fu.issue cl.fu ~cycle:st.cycle c.c_issue_class;
  c.c_state <- C_issued;
  c.c_issue <- st.cycle;
  c.c_finish <- finish_of_issue st c;
  note_finish st c.c_finish;
  set_dst_ready st c c.c_finish;
  if st.observed then begin
    st.emit
      (Ev_issue { cycle = st.cycle; seq = c.c_seq; cluster = c.c_cluster; role = c.c_role });
    st.emit
      (Ev_writeback { cycle = c.c_finish; seq = c.c_seq; cluster = c.c_cluster; role = c.c_role })
  end;
  if c.c_has_slave_operand then consume_slave_operands st cl c.c_group 0;
  if c.c_result_forward then forward_results st c c.c_group 0;
  (* Branch bookkeeping: redirect and deferred predictor training. *)
  match c.c_op with
  | Op_class.Control ->
    let g = c.c_group in
    (match g.g_token with
    | Some tok ->
      let taken = Flat_trace.branch_taken st.trace g.g_seq in
      Deque.push_back st.pending_train (c.c_finish, c.c_seq, tok, taken)
    | None -> ());
    if g.g_mispred then begin
      st.redirect_pending <- false;
      st.fetch_resume <- max st.fetch_resume (c.c_finish + st.cfg.redirect_penalty);
      incr st.hot.k_redirects
    end
  | Op_class.Int_multiply | Op_class.Int_other | Op_class.Fp_divide _ | Op_class.Fp_other
  | Op_class.Load | Op_class.Store -> ()

let issue_slave_copy st (c : copy) =
  let cl = st.clusters.(c.c_cluster) in
  Fu.issue cl.fu ~cycle:st.cycle c.c_issue_class;
  c.c_issue <- st.cycle;
  if st.observed then
    st.emit
      (Ev_issue { cycle = st.cycle; seq = c.c_seq; cluster = c.c_cluster; role = Slave_copy });
  incr st.hot.k_slave_issues;
  if c.c_forwards then begin
    (* Write the operand(s) into the master cluster's operand buffer. The
       historical prepend-built list held the entries newest-first; the
       scratch array keeps allocation order, so index [n-1] is the newest
       and frees walk the array backwards. *)
    let master_cl = st.clusters.(c.c_master_cluster) in
    let h = hop st ~src:c.c_cluster ~dst:c.c_master_cluster in
    let n = c.c_num_operand_entries in
    for k = 0 to n - 1 do
      c.c_operand_ents.(k) <- Transfer_buffer.alloc master_cl.operand_buf ~cycle:st.cycle
    done;
    c.c_operand_live <- n;
    if st.observed then
      st.emit
        (Ev_operand_forward
           { cycle = st.cycle + h; seq = c.c_seq; from_cluster = c.c_cluster;
             to_cluster = c.c_master_cluster });
    if c.c_receives_result then begin
      (* Scenario 5: wait (without re-issuing) for the master's result. *)
      c.c_state <- C_suspended;
      if st.observed then
        st.emit (Ev_suspend { cycle = st.cycle + h; seq = c.c_seq; cluster = c.c_cluster })
    end
    else begin
      c.c_state <- C_issued;
      c.c_finish <- st.cycle + h;
      note_finish st c.c_finish
    end
  end
  else begin
    (* Scenarios 3/4: read the forwarded result, write the register. *)
    assert (c.c_result_entry >= 0);
    Transfer_buffer.free cl.result_buf ~cycle:st.cycle c.c_result_entry;
    c.c_result_entry <- -1;
    c.c_state <- C_issued;
    c.c_finish <- st.cycle + 1;
    note_finish st c.c_finish;
    set_dst_ready st c c.c_finish;
    if st.observed then
      st.emit
        (Ev_writeback { cycle = c.c_finish; seq = c.c_seq; cluster = c.c_cluster;
                        role = Slave_copy })
  end

(* Shared per-candidate issue step: returns true if the copy issued. *)
let try_issue st cl qi (c : copy) =
  if
    c.c_state = C_waiting
    && Fu.can_issue cl.fu ~cycle:st.cycle c.c_issue_class
    && srcs_ready st c
    && structurally_ready st c
  then begin
    (match c.c_role with
    | Single_copy | Master_copy -> issue_executing_copy st c
    | Slave_copy -> issue_slave_copy st c);
    (* The paper's issue-disorder metric: issues younger than an
       already-issued instruction. *)
    if c.c_seq < st.max_issued_seq then begin
      incr st.hot.k_ooo_issues;
      st.hot.k_ooo_issue_distance := !(st.hot.k_ooo_issue_distance) + (st.max_issued_seq - c.c_seq)
    end
    else st.max_issued_seq <- c.c_seq;
    cl.dq_waiting.(qi) <- cl.dq_waiting.(qi) - 1;
    cl.cl_waiting <- cl.cl_waiting - 1;
    true
  end
  else false

(* The per-cycle issue walk must not build closures or refs (OCaml
   without flambda heap-allocates both), so the loops below are top-level
   recursions threading accumulators as arguments; [st.scratch_work]
   accumulates the examined-entries profile count for the cycle. The
   issued and clusters-active totals travel packed into one immediate int
   ([issued lsl 4 lor active]; validate_config caps clusters at 8). *)

(* Compact one dispatch queue: drop copies that left it. *)
let rec compact_dq dq n =
  if n > 0 then begin
    (match Deque.pop_front dq with
    | Some c -> if c.c_state = C_waiting then Deque.push_back dq c
    | None -> assert false);
    compact_dq dq (n - 1)
  end

(* Greedy oldest-first scan under the shared per-cycle budget. *)
let rec scan_dq st cl qi dq i n issued =
  if i >= n || Fu.issued_this_cycle cl.fu >= st.cfg.issue_limits.Issue_rules.total then
    issued
  else begin
    st.scratch_work <- st.scratch_work + 1;
    let issued = if try_issue st cl qi (Deque.get dq i) then issued + 1 else issued in
    scan_dq st cl qi dq (i + 1) n issued
  end

let rec scan_cluster_queues st cl qi issued =
  if qi >= Array.length cl.dqs then issued
  else begin
    let dq = cl.dqs.(qi) in
    let n = Deque.length dq in
    st.scratch_work <- st.scratch_work + n;
    compact_dq dq n;
    let issued = scan_dq st cl qi dq 0 (Deque.length dq) issued in
    scan_cluster_queues st cl (qi + 1) issued
  end

let rec issue_scan_clusters st ci issued active =
  if ci >= Array.length st.clusters then (issued lsl 4) lor active
  else begin
    let cl = st.clusters.(ci) in
    let before = Fu.total_issued cl.fu in
    Fu.new_cycle cl.fu;
    let issued = scan_cluster_queues st cl 0 issued in
    let active = if Fu.total_issued cl.fu > before then active + 1 else active in
    issue_scan_clusters st (ci + 1) issued active
  end

(* Reference engine: rescan every dispatch-queue entry every cycle. *)
let issue_phase_scan st =
  st.scratch_work <- 0;
  let packed = issue_scan_clusters st 0 0 0 in
  let issued = packed lsr 4 in
  prof_add st stage_issue st.scratch_work;
  if issued > 0 then incr st.hot.k_issue_active;
  if packed land 0xf >= 2 then incr st.hot.k_both_active;
  issued

(* Dependence-driven engine: only copies whose sources are all ready sit
   on the per-queue ready lists; the scan below touches just those (the
   structurally-blocked residue plus this cycle's newly-ready copies),
   not the whole queue. Issue order — and therefore every downstream
   statistic — is identical to the scan engine because the lists are kept
   in seq order and the same budget and readiness checks apply. *)
let copy_is_waiting c = c.c_state = C_waiting

(* A source event due this cycle makes its copy ready; installed once as
   [st.src_drain] so the per-cycle drain passes a preallocated callback. *)
let src_wakeup st c =
  if c.c_state = C_waiting then begin
    c.c_wait_srcs <- c.c_wait_srcs - 1;
    if c.c_wait_srcs = 0 then ready_push st c
  end

let rec issue_ready_q st cl qi rq i n issued =
  if i >= n || Fu.issued_this_cycle cl.fu >= st.cfg.issue_limits.Issue_rules.total then
    issued
  else begin
    st.scratch_work <- st.scratch_work + 1;
    let issued = if try_issue st cl qi (Vec.get rq i) then issued + 1 else issued in
    issue_ready_q st cl qi rq (i + 1) n issued
  end

let rec issue_wakeup_queues st cl qi issued =
  if qi >= Array.length cl.ready_qs then issued
  else begin
    let rq = cl.ready_qs.(qi) in
    (* Drop copies that issued or were squashed, then restore seq order
       if out-of-order wakeups appended behind younger copies. *)
    st.scratch_work <- st.scratch_work + Vec.length rq;
    Vec.filter_in_place copy_is_waiting rq;
    if cl.ready_dirty.(qi) then begin
      Vec.sort ~cmp:by_seq rq;
      cl.ready_dirty.(qi) <- false
    end;
    let issued = issue_ready_q st cl qi rq 0 (Vec.length rq) issued in
    issue_wakeup_queues st cl (qi + 1) issued
  end

let rec issue_wakeup_clusters st ci issued active =
  if ci >= Array.length st.clusters then (issued lsl 4) lor active
  else begin
    let cl = st.clusters.(ci) in
    let before = Fu.total_issued cl.fu in
    Fu.new_cycle cl.fu;
    let issued = issue_wakeup_queues st cl 0 issued in
    let active = if Fu.total_issued cl.fu > before then active + 1 else active in
    issue_wakeup_clusters st (ci + 1) issued active
  end

let issue_phase_wakeup st =
  st.scratch_work <- 0;
  Bucket_queue.drain_upto st.src_wheel ~key:st.cycle st.src_drain;
  let packed = issue_wakeup_clusters st 0 0 0 in
  let issued = packed lsr 4 in
  prof_add st stage_issue st.scratch_work;
  if issued > 0 then incr st.hot.k_issue_active;
  if packed land 0xf >= 2 then incr st.hot.k_both_active;
  issued

let issue_phase st =
  match st.engine with `Scan -> issue_phase_scan st | `Wakeup -> issue_phase_wakeup st

(* Scenario-5 slaves wake when the master's result reaches their cluster. *)
let wake_slave st (s : copy) =
  let cl = st.clusters.(s.c_cluster) in
  Transfer_buffer.free cl.result_buf ~cycle:st.cycle s.c_result_entry;
  s.c_result_entry <- -1;
  s.c_state <- C_issued;
  s.c_finish <- st.cycle + 1;
  note_finish st s.c_finish;
  set_dst_ready st s s.c_finish;
  if st.observed then begin
    st.emit (Ev_wakeup { cycle = st.cycle; seq = s.c_seq; cluster = s.c_cluster });
    st.emit
      (Ev_writeback { cycle = s.c_finish; seq = s.c_seq; cluster = s.c_cluster;
                      role = Slave_copy })
  end

(* Reference engine: rescan the whole ROB for suspended slaves. *)
let wake_phase_scan st =
  let woke = ref 0 in
  let seen = ref 0 in
  Deque.iter
    (fun g ->
      incr seen;
      let m = g.g_master in
      for i = 0 to g.g_nslaves - 1 do
        let s = g.g_slaves.(i) in
        incr seen;
        if s.c_state = C_suspended && m.c_state = C_issued then begin
          let h = hop st ~src:m.c_cluster ~dst:s.c_cluster in
          let wake_at = max (m.c_issue + h) (m.c_finish - 2 + h) in
          if st.cycle >= wake_at && s.c_result_entry >= 0 then begin
            wake_slave st s;
            incr woke
          end
        end
      done)
    st.rob;
  prof_add st stage_wake !seen;
  !woke

(* Drain callback for the wake wheel, installed once as [st.wake_drain]. *)
let wake_collect st s =
  st.scratch_work <- st.scratch_work + 1;
  if s.c_state = C_suspended && s.c_result_entry >= 0 then Vec.push st.wake_scratch s

let rec wake_scratch_from st i =
  if i < Vec.length st.wake_scratch then begin
    wake_slave st (Vec.get st.wake_scratch i);
    wake_scratch_from st (i + 1)
  end

(* Event-driven engine: slaves were scheduled on the wake wheel at master
   issue (the wake cycle is known then); drain the due bucket and wake in
   seq order, matching the scan engine's ROB-order walk. Squashed slaves
   are filtered by state. *)
let wake_phase_wakeup st =
  st.scratch_work <- 0;
  Vec.clear st.wake_scratch;
  Bucket_queue.drain_upto st.wake_wheel ~key:st.cycle st.wake_drain;
  if Vec.length st.wake_scratch > 1 then Vec.sort ~cmp:by_seq st.wake_scratch;
  wake_scratch_from st 0;
  prof_add st stage_wake st.scratch_work;
  Vec.length st.wake_scratch

let wake_phase st =
  match st.engine with `Scan -> wake_phase_scan st | `Wakeup -> wake_phase_wakeup st

(* ------------------------------------------------------------------ *)
(* Retire                                                              *)
(* ------------------------------------------------------------------ *)

let copy_done st c = c.c_state = C_issued && c.c_finish <= st.cycle

let rec slaves_done st g i =
  i >= g.g_nslaves || (copy_done st g.g_slaves.(i) && slaves_done st g (i + 1))

let group_done st g =
  g.g_master != dummy_copy && copy_done st g.g_master && slaves_done st g 0

let retire_copy st (c : copy) =
  if c.c_dst_new >= 0 then
    Regfile.release st.clusters.(c.c_cluster).rf c.c_dst_bank c.c_dst_prev

(* Retiring a group hands its records back to the pools. This is safe
   mid-flight: the issue phase compacts the dispatch/ready queues (on
   [c_state]) before the next dispatch can recycle a record, the wheels
   were drained for every cycle up to the finish times already reached,
   and wait lists are cleared when the producer issues — so no stale
   reference to a retired record is ever dereferenced. *)
let retire_group st g =
  retire_copy st g.g_master;
  Freelist.Slab.free st.copy_pool g.g_master;
  for i = 0 to g.g_nslaves - 1 do
    let s = g.g_slaves.(i) in
    retire_copy st s;
    Freelist.Slab.free st.copy_pool s;
    g.g_slaves.(i) <- dummy_copy
  done;
  g.g_master <- dummy_copy;
  g.g_nslaves <- 0;
  Freelist.Slab.free st.group_pool g

(* Ineffectuality training ([Steering.Ineffectual] only), performed at
   retire because groups leave the ROB in program order on both engines:
   mark every architectural source register as read, then — when the
   instruction overwrites a register — the previous writer's verdict is
   in: its result was dead iff nothing read the register in between.
   Sources are marked first so an instruction that reads and rewrites
   the same register vindicates the previous writer. *)
let rec mark_arch_reads st (srcs : Reg.t list) =
  match srcs with
  | [] -> ()
  | r :: rest ->
    if not (Reg.is_zero r) then st.arch_read.(Reg.flat_index r) <- true;
    mark_arch_reads st rest

let train_ineffectuality st seq =
  let instr = Flat_trace.instr st.trace seq in
  mark_arch_reads st instr.Instr.srcs;
  match instr.Instr.dst with
  | Some d when not (Reg.is_zero d) ->
    let i = Reg.flat_index d in
    let prev = st.arch_last_pc.(i) in
    if prev >= 0 then
      Steering.Ineff_table.train st.ineff ~pc:prev ~dead:(not st.arch_read.(i));
    st.arch_last_pc.(i) <- Flat_trace.pc st.trace seq;
    st.arch_read.(i) <- false
  | Some _ | None -> ()

let retire_phase st =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < st.cfg.retire_width do
    match Deque.peek_front st.rob with
    | Some g when group_done st g ->
      ignore (Deque.pop_front st.rob);
      incr st.hot.k_retired;
      if st.observed then st.emit (Ev_retire { cycle = st.cycle; seq = g.g_seq });
      if g.g_seq = st.starving_seq then st.starving_seq <- -1;
      if st.steer_train then train_ineffectuality st g.g_seq;
      retire_group st g;
      incr n
    | Some _ | None -> continue_ := false
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Fetch                                                               *)
(* ------------------------------------------------------------------ *)

let fetch_phase st =
  if st.redirect_pending || st.cycle < st.fetch_resume then begin
    if Deque.length st.rob > 0 || st.trace_idx < Flat_trace.length st.trace then
      incr st.hot.k_fetch_stall;
    0
  end
  else begin
    let fetched = ref 0 in
    let blocked = ref false in
    while
      (not !blocked)
      && !fetched < st.cfg.fetch_width
      && (not (Fixed_queue.is_full st.fetch_buffer))
      && st.trace_idx < Flat_trace.length st.trace
    do
      let idx = st.trace_idx in
      let pc = Flat_trace.pc st.trace idx in
      let addr = pc * 4 in
      let line = addr / st.cfg.icache.Cache.line_bytes in
      let icache_ok =
        if line = st.last_fetch_line then true
        else begin
          let ready = Cache.access st.icache ~cycle:st.cycle ~addr ~write:false in
          st.last_fetch_line <- line;
          if ready > st.cycle then begin
            st.fetch_resume <- ready;
            incr st.hot.k_icache_fetch_misses;
            false
          end
          else true
        end
      in
      if not icache_ok then blocked := true
      else begin
        let token, mispred =
          if Flat_trace.is_cond_branch st.trace idx then begin
            let taken = Flat_trace.branch_taken st.trace idx in
            let pred, tok = Mcfarling.predict st.predictor ~pc in
            Mcfarling.note_outcome st.predictor ~taken;
            (Some tok, pred <> taken)
          end
          else (None, false)
        in
        Fixed_queue.push st.fetch_buffer { f_idx = idx; f_token = token; f_mispred = mispred };
        if st.observed then st.emit (Ev_fetch { cycle = st.cycle; seq = idx });
        st.trace_idx <- st.trace_idx + 1;
        incr fetched;
        if mispred then begin
          st.redirect_pending <- true;
          incr st.hot.k_mispredicted_fetches;
          blocked := true
        end
      end
    done;
    !fetched
  end

(* ------------------------------------------------------------------ *)
(* Replay (squash)                                                     *)
(* ------------------------------------------------------------------ *)

(* Is this waiting copy blocked purely by transfer-buffer unavailability? *)
let blocked_on_buffer st (c : copy) =
  c.c_state = C_waiting
  && srcs_ready st c
  &&
  match c.c_role with
  | Single_copy -> false
  | Master_copy ->
    ((not c.c_has_slave_operand) || slaves_can_feed st c.c_group 0)
    && c.c_result_forward
    && not (result_slots_free st c.c_group 0)
  | Slave_copy ->
    c.c_forwards
    && Transfer_buffer.available st.clusters.(c.c_master_cluster).operand_buf ~cycle:st.cycle
       < c.c_num_operand_entries

let rec find_blocked_slave st (g : group) i =
  i < g.g_nslaves && (blocked_on_buffer st g.g_slaves.(i) || find_blocked_slave st g (i + 1))

let group_blocked_on_buffer st g =
  (g.g_master != dummy_copy && blocked_on_buffer st g.g_master)
  || find_blocked_slave st g 0

let rec find_victim_from st n i =
  if i >= n then None
  else
    match Deque.get st.rob i with
    | g when group_blocked_on_buffer st g -> Some g
    | _ -> find_victim_from st n (i + 1)

let find_replay_victim st =
  match find_victim_from st (Deque.length st.rob) 0 with
  | Some _ as v -> v
  | None -> (
    (* Fall back to the oldest group that is not finished. *)
    match Deque.peek_front st.rob with Some g when not (group_done st g) -> Some g | _ -> None)

(* Remove a squashed waiter from the wait lists of its source registers.
   Required once records are pooled: the producer was squashed with it and
   will never issue, so nothing else would ever clear the reference, and a
   recycled record must not be reachable from a stale list. (Rare path —
   the closure below is the only allocation on a squash.) *)
let purge_wait_regs st (c : copy) =
  let cl = st.clusters.(c.c_cluster) in
  for i = 0 to c.c_nsrcs - 1 do
    let code = c.c_srcs.(i) in
    let wv = cl.wait_regs.(code land 1).(code lsr 1) in
    if Vec.length wv > 0 then Vec.filter_in_place (fun w -> w != c) wv
  done

let squash_copy st (c : copy) =
  (* Return transfer-buffer entries: forwarded operands live in the master
     cluster's operand buffer; a reserved result entry lives in this
     (receiving slave's) cluster's result buffer. *)
  (if c.c_operand_live > 0 then begin
     let master_cl = st.clusters.(c.c_master_cluster) in
     for j = c.c_operand_live - 1 downto 0 do
       Transfer_buffer.free master_cl.operand_buf ~cycle:st.cycle c.c_operand_ents.(j)
     done;
     c.c_operand_live <- 0
   end);
  if c.c_result_entry >= 0 then begin
    Transfer_buffer.free st.clusters.(c.c_cluster).result_buf ~cycle:st.cycle c.c_result_entry;
    c.c_result_entry <- -1
  end;
  (* Undo renaming (reverse dispatch order is guaranteed by the caller). *)
  if c.c_dst_new >= 0 then begin
    Regfile.undo_rename st.clusters.(c.c_cluster).rf c.c_dst_reg ~new_phys:c.c_dst_new
      ~prev_phys:c.c_dst_prev;
    c.c_dst_new <- -1
  end;
  (match c.c_op with
  | Op_class.Fp_divide _ when c.c_state = C_issued && c.c_finish > st.cycle ->
    Fu.clear_divider st.clusters.(c.c_cluster).fu
  | _ -> ());
  if c.c_state = C_waiting then begin
    let cl = st.clusters.(c.c_cluster) in
    let q = queue_of_class c.c_issue_class st.cfg.queue_split in
    cl.dq_waiting.(q) <- cl.dq_waiting.(q) - 1;
    cl.cl_waiting <- cl.cl_waiting - 1;
    match st.engine with
    | `Wakeup when c.c_wait_srcs > 0 -> purge_wait_regs st c
    | `Wakeup | `Scan -> ()
  end;
  (* Squashed copies may still be referenced from dispatch/ready queues
     and the wheels; every consumer filters on [c_state], so flipping the
     state hides the record. It cannot be recycled until those stale
     references have drained — park it in limbo; [replay] sets the flush
     watermark past the last possible stale wheel key. *)
  c.c_state <- C_squashed;
  Vec.push st.limbo c;
  incr st.hot.k_squashed_copies

let rec squash_slaves_rev st (g : group) i =
  if i >= 0 then begin
    squash_copy st g.g_slaves.(i);
    g.g_slaves.(i) <- dummy_copy;
    squash_slaves_rev st g (i - 1)
  end

let replay st =
  match find_replay_victim st with
  | None -> ()
  | Some victim ->
    let vseq = victim.g_seq in
    if st.observed then st.emit (Ev_replay { cycle = st.cycle; seq = vseq });
    Stats.incr st.ctrs "replays";
    (* A replay that squashes the same victim with no instruction retired
       since the previous replay changed nothing: deterministic
       re-execution will recreate the identical wedge. Escalate to the
       younger-group buffer freeze (see [buffer_frozen]). *)
    if vseq = st.last_replay_seq && !(st.hot.k_retired) = st.last_replay_retired
    then begin
      st.starving_seq <- vseq;
      Stats.incr st.ctrs "starvation_freezes"
    end;
    st.last_replay_seq <- vseq;
    st.last_replay_retired <- !(st.hot.k_retired);
    (* Squash from youngest down to the victim, inclusive. *)
    let continue_ = ref true in
    while !continue_ do
      match Deque.peek_back st.rob with
      | Some g when g.g_seq >= vseq ->
        ignore (Deque.pop_back st.rob);
        (* Slaves were dispatched after the master within the group. *)
        squash_slaves_rev st g (g.g_nslaves - 1);
        if g.g_master != dummy_copy then squash_copy st g.g_master;
        g.g_master <- dummy_copy;
        g.g_nslaves <- 0;
        Freelist.Slab.free st.group_pool g;
        Stats.incr st.ctrs "squashed_groups"
      | Some _ | None -> continue_ := false
    done;
    (* Copies squashed above sit in limbo until every structure that may
       still reference them has been walked (queues compact next issue
       phase) or drained (wheel keys never exceed the last finish time
       scheduled so far). *)
    st.limbo_flush_at <- max st.limbo_flush_at (max (st.cycle + 2) (st.max_finish + 1));
    (* The dispatch queues still hold squashed copies; compaction in the
       next issue phase removes them. Refetch from the victim. *)
    Fixed_queue.clear st.fetch_buffer;
    st.trace_idx <- vseq;
    st.redirect_pending <- false;
    st.fetch_resume <- st.cycle + st.cfg.replay_penalty;
    st.last_fetch_line <- -1;
    (* Drop squashed branches from the training queue, keeping order. *)
    let entries = ref [] in
    Deque.iter (fun e -> entries := e :: !entries) st.pending_train;
    Deque.clear st.pending_train;
    List.iter
      (fun ((_, seq, _, _) as e) -> if seq < vseq then Deque.push_back st.pending_train e)
      (List.rev !entries);
    st.max_issued_seq <- min st.max_issued_seq (vseq - 1);
    st.stall_cycles <- 0

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

(* Due entries are popped from the front (oldest first) and trained
   newest-first, matching the order the old prepend-and-partition list
   walked them in. *)
let train_phase st =
  let due = ref [] in
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Deque.peek_front st.pending_train with
    | Some (c, _, _, _) when c <= st.cycle ->
      (match Deque.pop_front st.pending_train with
      | Some e ->
        due := e :: !due;
        incr n
      | None -> assert false)
    | Some _ | None -> continue_ := false
  done;
  List.iter (fun (_, _, tok, taken) -> Mcfarling.train st.predictor tok ~taken) !due;
  !n

(* Cluster state for a given architectural-register assignment: a cluster
   holds physical copies only of the registers assigned to it; the rest of
   the initial mappings go back to the freelist. *)
let build_clusters cfg assignment =
  let n_clusters = Assignment.num_clusters assignment in
  let nq = num_queues cfg.queue_split in
  let make_regfile cl_id =
    let rf = Regfile.create ~num_phys:cfg.phys_per_bank in
    List.iter
      (fun r ->
        if (not (Reg.is_zero r)) && not (Assignment.readable_in assignment r cl_id) then
          Regfile.release rf (Regfile.bank_of_reg r) (Regfile.lookup rf r))
      Reg.all;
    rf
  in
  Array.init n_clusters (fun cl_id ->
      { cl_id;
        rf = make_regfile cl_id;
        fu = Fu.create cfg.issue_limits;
        dqs = Array.init nq (fun _ -> Deque.create ());
        dq_waiting = Array.make nq 0;
        cl_waiting = 0;
        wait_regs =
          Array.init 2 (fun _ -> Array.init cfg.phys_per_bank (fun _ -> Vec.create ()));
        ready_qs = Array.init nq (fun _ -> Vec.create ());
        ready_dirty = Array.make nq false;
        operand_buf = Transfer_buffer.create ~entries:cfg.operand_buffer_entries;
        result_buf = Transfer_buffer.create ~entries:cfg.result_buffer_entries })

let init_state ?(engine = `Wakeup) ?profile ?on_event ?on_occupancy ?(occupancy_period = 16)
    cfg =
  validate_config cfg;
  if occupancy_period < 1 then invalid_arg "Machine: occupancy_period < 1";
  let observed, emit =
    match on_event with Some f -> (true, f) | None -> (false, fun (_ : event) -> ())
  in
  let ctrs = Stats.counters_create () in
  let k = Stats.counter ctrs in
  let hot =
    { k_retired = k "retired";
      k_single_distributed = k "single_distributed";
      k_dual_distributed = k "dual_distributed";
      k_slave_issues = k "slave_issues";
      k_scenarios = Array.map k scenario_counters;
      k_stall_rob_full = k "stall_rob_full";
      k_stall_dq_full = k "stall_dq_full";
      k_stall_phys = k "stall_phys";
      k_ooo_issues = k "ooo_issues";
      k_ooo_issue_distance = k "ooo_issue_distance";
      k_issue_active = k "issue_active_cycles";
      k_both_active = k "both_clusters_active_cycles";
      k_fetch_stall = k "fetch_stall_cycles";
      k_icache_fetch_misses = k "icache_fetch_misses";
      k_mispredicted_fetches = k "mispredicted_fetches";
      k_redirects = k "redirects";
      k_squashed_copies = k "squashed_copies" }
  in
  let n_clust = Assignment.num_clusters cfg.assignment in
  { cfg;
    engine;
    n_clust;
    hops = Interconnect.matrix cfg.topology ~clusters:n_clust;
    assignment = cfg.assignment;
    trace = Flat_trace.of_dynamic_array [||];
    clusters = build_clusters cfg cfg.assignment;
    plan_memo = [||];
    plan_instrs = [||];
    splan_memo = [||];
    splan_instrs = [||];
    plan_dummy = Instr.make ~op:Op_class.Int_other ~srcs:[] ~dst:None;
    steer_dynamic = Steering.is_dynamic cfg.steering && n_clust > 1;
    steer_train = cfg.steering = Steering.Ineffectual && n_clust > 1;
    steer_rr = 0;
    steer_kind = 0;
    steer_hits = 0;
    steer_fallbacks = 0;
    steer_dead_exiles = 0;
    ineff = Steering.Ineff_table.create ();
    arch_last_pc = Array.make (Reg.num_int + Reg.num_fp) (-1);
    arch_read = Array.make (Reg.num_int + Reg.num_fp) false;
    icache = Cache.create cfg.icache;
    dcache = Cache.create cfg.dcache;
    predictor = Mcfarling.create ~config:cfg.predictor ();
    rob = Deque.create ();
    fetch_buffer = Fixed_queue.create ~capacity:(2 * cfg.fetch_width);
    ctrs;
    hot;
    emit;
    observed;
    on_occupancy;
    occupancy_period;
    prof = profile;
    src_wheel = Bucket_queue.create ~capacity:256 ();
    wake_wheel = Bucket_queue.create ~capacity:64 ();
    wake_scratch = Vec.create ();
    copy_pool = Freelist.Slab.create ~initial:256 ~make:make_pool_copy ~slot:copy_slot ();
    group_pool = Freelist.Slab.create ~initial:128 ~make:make_pool_group ~slot:group_slot ();
    limbo = Vec.create ();
    limbo_flush_at = 0;
    (* Placeholders; the real drain callbacks close over the state record
       and are installed right below, once. *)
    src_drain = ignore;
    wake_drain = ignore;
    scratch_work = 0;
    cycle = 0; trace_idx = 0; fetch_resume = 0; redirect_pending = false;
    last_fetch_line = -1; max_finish = 0; stall_cycles = 0; pending_train = Deque.create ();
    max_issued_seq = -1; head_blocked_seq = -1; head_blocked_age = 0;
    last_replay_seq = -1; last_replay_retired = 0; starving_seq = -1 }

let init_state ?engine ?profile ?on_event ?on_occupancy ?occupancy_period cfg =
  let st = init_state ?engine ?profile ?on_event ?on_occupancy ?occupancy_period cfg in
  st.src_drain <- src_wakeup st;
  st.wake_drain <- wake_collect st;
  st

(* Registers whose cluster placement changes between two assignments: the
   values the reassignment hardware must copy between register files. *)
let moved_registers old_asg new_asg =
  List.filter
    (fun r ->
      (not (Reg.is_zero r))
      && Assignment.clusters_of old_asg r <> Assignment.clusters_of new_asg r)
    Reg.all

(* The count alone, for the emptiness test in [load_phase]: no list is
   materialised. *)
let moved_register_count old_asg new_asg =
  List.fold_left
    (fun n r ->
      if
        (not (Reg.is_zero r))
        && Assignment.clusters_of old_asg r <> Assignment.clusters_of new_asg r
      then n + 1
      else n)
    0 Reg.all

(* Switch to a new phase. The pipeline must be drained (rob empty). The
   reassignment overhead models draining the write buffers and copying
   the moved architectural values across clusters at two registers per
   cycle, plus a fixed resynchronization cost. *)
let load_phase st assignment trace =
  assert (Deque.is_empty st.rob);
  if Assignment.num_clusters assignment <> Assignment.num_clusters st.assignment then
    invalid_arg "Machine.load_phase: cluster count cannot change";
  (* A switch that moves no registers (the same value, or a structurally
     equal one) costs nothing and keeps the clusters' state untouched. *)
  let overhead =
    if assignment == st.assignment then 0
    else
      match moved_register_count st.assignment assignment with
      | 0 -> 0
      | moved ->
        Stats.add st.ctrs "reassigned_registers" moved;
        Stats.incr st.ctrs "reassignments";
        st.assignment <- assignment;
        st.clusters <- build_clusters st.cfg assignment;
        4 + ((moved + 1) / 2)
  in
  st.trace <- trace;
  st.trace_idx <- 0;
  (* Plans may depend on the (possibly new) assignment, and interned
     instructions belong to the incoming trace: drop every memo slot. *)
  Array.fill st.plan_memo 0 (Array.length st.plan_memo) None;
  Array.fill st.plan_instrs 0 (Array.length st.plan_instrs) st.plan_dummy;
  Array.fill st.splan_memo 0 (Array.length st.splan_memo) None;
  Array.fill st.splan_instrs 0 (Array.length st.splan_instrs) st.plan_dummy;
  (* Whether a value from the outgoing phase gets read can no longer be
     observed; drop the per-register training state (the ineffectuality
     table itself persists, like the branch predictor). *)
  Array.fill st.arch_last_pc 0 (Array.length st.arch_last_pc) (-1);
  Array.fill st.arch_read 0 (Array.length st.arch_read) false;
  Fixed_queue.clear st.fetch_buffer;
  st.redirect_pending <- false;
  st.fetch_resume <- st.cycle + overhead;
  st.last_fetch_line <- -1;
  Deque.clear st.pending_train;
  st.max_issued_seq <- -1;
  st.stall_cycles <- 0;
  (* Seqs are positions in the incoming trace: stale starvation tracking
     from the previous phase must not freeze the new one. *)
  st.head_blocked_seq <- -1;
  st.head_blocked_age <- 0;
  st.last_replay_seq <- -1;
  st.last_replay_retired <- !(st.hot.k_retired);
  st.starving_seq <- -1

(* The thesis's starvation rule: young slaves can keep recycling the
   transfer-buffer entries while the oldest instruction starves behind a
   full buffer. When the head of the window has been buffer-blocked for
   long enough - even though the machine as a whole is making progress -
   an instruction-replay exception frees the entries. *)
let head_starvation_check st =
  let blocked_head =
    match Deque.peek_front st.rob with
    | Some g when group_blocked_on_buffer st g -> g.g_seq
    | Some _ | None -> -1
  in
  if blocked_head < 0 then begin
    st.head_blocked_seq <- -1;
    st.head_blocked_age <- 0
  end
  else if blocked_head = st.head_blocked_seq then
    st.head_blocked_age <- st.head_blocked_age + 1
  else begin
    st.head_blocked_seq <- blocked_head;
    st.head_blocked_age <- 1
  end;
  if st.head_blocked_age >= 8 * st.cfg.replay_threshold then begin
    Stats.incr st.ctrs "head_starvation_replays";
    replay st;
    st.head_blocked_seq <- -1;
    st.head_blocked_age <- 0
  end

(* Occupancy snapshot for the sampling sink: ROB entries, waiting
   dispatch-queue entries and in-use transfer-buffer entries per cluster.
   Only built when a sink is attached, so unobserved runs allocate
   nothing here. *)
(* Snapshots rescan the queues and cross-check the running [cl_waiting]
   totals the dispatch-steering hot path trusts. *)
let cluster_waiting cl =
  let scan = total_waiting cl in
  assert (scan = cl.cl_waiting);
  scan

(* The steering argmin the dispatch hot path computes from the running
   totals must match one recomputed from a full queue rescan. *)
let steering_cross_check st =
  let n = Array.length st.clusters in
  if n > 1 then begin
    let rec rescan_argmin i best best_w =
      if i >= n then best
      else begin
        let w = total_waiting st.clusters.(i) in
        if w < best_w then rescan_argmin (i + 1) i w else rescan_argmin (i + 1) best best_w
      end
    in
    let fast = steer_argmin st.clusters 1 n 0 st.clusters.(0).cl_waiting in
    assert (fast = rescan_argmin 1 0 (total_waiting st.clusters.(0)))
  end

let occupancy_snapshot st =
  steering_cross_check st;
  let in_use buf = Transfer_buffer.entries buf - Transfer_buffer.available buf ~cycle:st.cycle in
  { oc_cycle = st.cycle;
    oc_rob = Deque.length st.rob;
    oc_dispatch_queues = Array.map cluster_waiting st.clusters;
    oc_operand_buffers = Array.map (fun cl -> in_use cl.operand_buf) st.clusters;
    oc_result_buffers = Array.map (fun cl -> in_use cl.result_buf) st.clusters }

(* Recycle squashed copies once the flush watermark has passed (every
   stale queue/wheel reference has been compacted or drained by then). *)
let rec flush_limbo_from st i =
  if i < Vec.length st.limbo then begin
    Freelist.Slab.free st.copy_pool (Vec.get st.limbo i);
    flush_limbo_from st (i + 1)
  end

let run_loop ?(on_cycle = fun () -> ()) st ~max_cycles =
  let finished () =
    st.trace_idx >= Flat_trace.length st.trace
    && Fixed_queue.is_empty st.fetch_buffer
    && Deque.is_empty st.rob
  in
  (* When profiling, bracket each phase with [Gc.minor_words] so the
     allocation summary names the allocating stage. [phase_alloc] takes
     top-level functions only, so the profiled loop itself stays
     allocation-free apart from the boxed floats [Gc.minor_words]
     returns. (Hoisted out of the cycle loop: a per-iteration closure
     would itself show up in every stage's numbers.) *)
  let phase_alloc stage f =
    match st.prof with
    | None -> f st
    | Some p ->
      let m0 = Gc.minor_words () in
      let r = f st in
      Profile_counters.add_alloc p stage ~words:(Gc.minor_words () -. m0);
      r
  in
  while not (finished ()) do
    if st.cycle > max_cycles then
      failwith
        (Printf.sprintf
           "Machine.run: cycle limit exceeded (model bug): %d cycles elapsed (max_cycles \
            %d), %d instructions retired, trace position %d of %d, %d groups in flight"
           st.cycle max_cycles (Stats.get st.ctrs "retired") st.trace_idx
           (Flat_trace.length st.trace) (Deque.length st.rob));
    if Vec.length st.limbo > 0 && st.cycle >= st.limbo_flush_at then begin
      flush_limbo_from st 0;
      Vec.clear st.limbo
    end;
    let woke = phase_alloc stage_wake wake_phase in
    let retired = phase_alloc stage_retire retire_phase in
    let trained = phase_alloc stage_train train_phase in
    let issued = phase_alloc stage_issue issue_phase in
    let dispatched = phase_alloc stage_dispatch dispatch_phase in
    let fetched = phase_alloc stage_fetch fetch_phase in
    (match st.prof with
    | Some p ->
      Profile_counters.note_cycle p;
      Profile_counters.add p stage_retire ~work:retired;
      Profile_counters.add p stage_train ~work:trained;
      Profile_counters.add p stage_dispatch ~work:dispatched;
      Profile_counters.add p stage_fetch ~work:fetched
    | None -> ());
    let in_flight_exec = st.max_finish > st.cycle in
    let progress =
      retired > 0 || issued > 0 || dispatched > 0 || woke > 0 || fetched > 0 || in_flight_exec
    in
    if (not progress) && not (Deque.is_empty st.rob) then begin
      st.stall_cycles <- st.stall_cycles + 1;
      if st.stall_cycles >= st.cfg.replay_threshold then replay st
    end
    else st.stall_cycles <- 0;
    head_starvation_check st;
    (match st.on_occupancy with
    | Some f when st.cycle mod st.occupancy_period = 0 -> f (occupancy_snapshot st)
    | Some _ | None -> ());
    on_cycle ();
    st.cycle <- st.cycle + 1
  done

let finish_result st =
  let cycles = st.cycle in
  let retired = Stats.get st.ctrs "retired" in
  Array.iteri
    (fun i cl ->
      Stats.add st.ctrs (Printf.sprintf "issued_c%d" i) (Fu.total_issued cl.fu);
      Stats.add st.ctrs
        (Printf.sprintf "operand_buf_hw_c%d" i)
        (Transfer_buffer.high_water cl.operand_buf);
      Stats.add st.ctrs
        (Printf.sprintf "result_buf_hw_c%d" i)
        (Transfer_buffer.high_water cl.result_buf))
    st.clusters;
  Stats.add st.ctrs "branch_predictions" (Mcfarling.predictions st.predictor);
  Stats.add st.ctrs "branch_mispredictions" (Mcfarling.mispredictions st.predictor);
  Stats.add st.ctrs "dcache_accesses" (Cache.accesses st.dcache);
  Stats.add st.ctrs "dcache_misses"
    (Cache.primary_misses st.dcache + Cache.secondary_misses st.dcache);
  Stats.add st.ctrs "icache_accesses" (Cache.accesses st.icache);
  Stats.add st.ctrs "icache_misses"
    (Cache.primary_misses st.icache + Cache.secondary_misses st.icache);
  (* Steering statistics exist only under a dynamic policy, so a [Static]
     machine's counter list — and every golden diffed against it — is
     exactly the pre-steering one. *)
  if Steering.is_dynamic st.cfg.steering then begin
    Stats.add st.ctrs "steer_hits" st.steer_hits;
    Stats.add st.ctrs "steer_fallbacks" st.steer_fallbacks;
    Stats.add st.ctrs "steer_dead_exiles" st.steer_dead_exiles;
    Stats.add st.ctrs "ineff_trainings" (Steering.Ineff_table.trainings st.ineff);
    Stats.add st.ctrs "ineff_dead_trainings" (Steering.Ineff_table.dead_trainings st.ineff)
  end;
  Stats.add st.ctrs "cycles" cycles;
  let counter_lookup = Stats.lookup_of_counters st.ctrs in
  { cycles;
    retired;
    ipc = Stats.ratio retired cycles;
    single_distributed = Stats.get st.ctrs "single_distributed";
    dual_distributed = Stats.get st.ctrs "dual_distributed";
    replays = Stats.get st.ctrs "replays";
    branch_accuracy = Mcfarling.accuracy st.predictor;
    icache_miss_rate = Cache.miss_rate st.icache;
    dcache_miss_rate = Cache.miss_rate st.dcache;
    counters = Stats.lookup_to_alist counter_lookup;
    counter_lookup }

let run_phased_flat ?engine ?profile ?on_event ?on_occupancy ?occupancy_period
    ?(max_cycles = 200_000_000) cfg phases =
  let st = init_state ?engine ?profile ?on_event ?on_occupancy ?occupancy_period cfg in
  List.iter
    (fun (assignment, trace) ->
      load_phase st assignment trace;
      run_loop st ~max_cycles)
    phases;
  finish_result st

let run_flat ?engine ?profile ?on_event ?on_occupancy ?occupancy_period ?max_cycles cfg trace =
  run_phased_flat ?engine ?profile ?on_event ?on_occupancy ?occupancy_period ?max_cycles cfg
    [ (cfg.assignment, trace) ]

let run_phased ?engine ?profile ?on_event ?on_occupancy ?occupancy_period ?max_cycles cfg
    phases =
  run_phased_flat ?engine ?profile ?on_event ?on_occupancy ?occupancy_period ?max_cycles cfg
    (List.map (fun (asg, tr) -> (asg, Flat_trace.of_dynamic_array tr)) phases)

let run ?engine ?profile ?on_event ?on_occupancy ?occupancy_period ?max_cycles cfg trace =
  run_phased ?engine ?profile ?on_event ?on_occupancy ?occupancy_period ?max_cycles cfg
    [ (cfg.assignment, trace) ]

(* ------------------------------------------------------------------ *)
(* Resumable-state API: functional warming and detailed intervals      *)
(* ------------------------------------------------------------------ *)

(* Functional warming (SMARTS-style): advance the long-history
   microarchitectural state - i-cache, d-cache, branch predictor - over
   skipped instructions at one cycle per instruction, without modeling
   the pipeline. The i-cache is touched at line granularity exactly as
   fetch would, and conditional branches run the full
   predict/note/train sequence (training is immediate; the detailed
   model's dispatch-to-execute training lag only matters over the
   handful of in-flight branches, which the detailed warmup prefix of
   the next interval re-establishes). *)
let warm_flat st trace ~lo ~hi =
  if lo < 0 || hi > Flat_trace.length trace || lo > hi then
    invalid_arg "Machine.warm: bad interval";
  for i = lo to hi - 1 do
    st.cycle <- st.cycle + 1;
    let addr = Flat_trace.pc trace i * 4 in
    let line = addr / st.cfg.icache.Cache.line_bytes in
    if line <> st.last_fetch_line then begin
      ignore (Cache.access st.icache ~cycle:st.cycle ~addr ~write:false);
      st.last_fetch_line <- line
    end;
    if Flat_trace.is_memory trace i then
      ignore
        (Cache.access st.dcache ~cycle:st.cycle ~addr:(Flat_trace.mem_addr trace i)
           ~write:(Flat_trace.is_store trace i));
    if Flat_trace.is_cond_branch trace i then begin
      let taken = Flat_trace.branch_taken trace i in
      let _, tok = Mcfarling.predict st.predictor ~pc:(Flat_trace.pc trace i) in
      Mcfarling.note_outcome st.predictor ~taken;
      Mcfarling.train st.predictor tok ~taken
    end
  done;
  Stats.add st.ctrs "warmed_instructions" (hi - lo)

let warm st trace ~lo ~hi =
  if lo < 0 || hi > Array.length trace || lo > hi then
    invalid_arg "Machine.warm: bad interval";
  warm_flat st (Flat_trace.of_dynamic_array trace) ~lo ~hi

type interval = { iv_warmup_cycles : int; iv_cycles : int; iv_retired : int }

let run_interval_flat ?(max_cycles = 200_000_000) st trace ~lo ~hi ~measure_from =
  if lo < 0 || hi > Flat_trace.length trace || lo >= hi then
    invalid_arg "Machine.run_interval: bad interval";
  if measure_from < lo || measure_from >= hi then
    invalid_arg "Machine.run_interval: measure_from outside [lo, hi)";
  (* The detailed model requires seq = trace position (replay refetches by
     position); a flat sub-trace re-bases positions at 0 for free. *)
  let sub = Flat_trace.sub trace ~pos:lo ~len:(hi - lo) in
  load_phase st st.assignment sub;
  let start = st.cycle in
  let retired0 = Stats.get st.ctrs "retired" in
  let threshold = measure_from - lo in
  let boundary = ref start in
  let seen = ref (threshold <= 0) in
  run_loop st ~max_cycles
    ~on_cycle:(fun () ->
      if (not !seen) && Stats.get st.ctrs "retired" - retired0 >= threshold then begin
        seen := true;
        boundary := st.cycle + 1
      end);
  Stats.incr st.ctrs "detailed_intervals";
  { iv_warmup_cycles = !boundary - start;
    iv_cycles = st.cycle - !boundary;
    iv_retired = hi - measure_from }

let run_interval ?max_cycles st trace ~lo ~hi ~measure_from =
  if lo < 0 || hi > Array.length trace || lo >= hi then
    invalid_arg "Machine.run_interval: bad interval";
  run_interval_flat ?max_cycles st (Flat_trace.of_dynamic_array trace) ~lo ~hi ~measure_from

let state_result st = finish_result st

(* Test hook: (copy live, copy built, group live, group built). Live
   counts include limbo residents not yet flushed back to the pool. *)
let pool_stats st =
  ( Mcsim_util.Freelist.Slab.live st.copy_pool,
    Mcsim_util.Freelist.Slab.built st.copy_pool,
    Mcsim_util.Freelist.Slab.live st.group_pool,
    Mcsim_util.Freelist.Slab.built st.group_pool )
