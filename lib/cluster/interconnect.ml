type topology = Point_to_point | Ring | Crossbar

let all = [ Point_to_point; Ring; Crossbar ]

let to_string = function Point_to_point -> "p2p" | Ring -> "ring" | Crossbar -> "xbar"

let of_string = function
  | "p2p" | "point-to-point" -> Point_to_point
  | "ring" -> Ring
  | "xbar" | "crossbar" -> Crossbar
  | s -> invalid_arg (Printf.sprintf "Interconnect.of_string: %s (want p2p, ring or xbar)" s)

let describe = function
  | Point_to_point -> "dedicated link per cluster pair, one cycle per transfer"
  | Ring -> "neighbor links only, one cycle per hop of ring distance"
  | Crossbar -> "shared switch, arbitration plus traversal (two cycles)"

let hop_latency topology ~clusters ~src ~dst =
  if clusters < 1 then invalid_arg "Interconnect.hop_latency: clusters < 1";
  if src < 0 || src >= clusters || dst < 0 || dst >= clusters then
    invalid_arg "Interconnect.hop_latency: cluster out of range";
  if src = dst then 1
  else
    match topology with
    | Point_to_point -> 1
    | Ring ->
      let d = abs (src - dst) in
      max 1 (min d (clusters - d))
    | Crossbar -> 2

let max_hop topology ~clusters =
  if clusters < 1 then invalid_arg "Interconnect.max_hop: clusters < 1";
  match topology with
  | Point_to_point -> 1
  | Ring -> max 1 (clusters / 2)
  | Crossbar -> if clusters > 1 then 2 else 1

let matrix topology ~clusters =
  Array.init (clusters * clusters) (fun k ->
      hop_latency topology ~clusters ~src:(k / clusters) ~dst:(k mod clusters))
