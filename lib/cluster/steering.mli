(** Dynamic dispatch-time instruction steering.

    The paper decides cluster assignment statically, at compile time,
    through the local/global schedulers, and closes (§6) by asking
    whether a dynamic scheme — hardware picking the cluster at dispatch
    — would do better. This module names the rival policy family the
    machine implements; {!Machine.config}[.steering] selects one and the
    dispatch stage of both engines consults it.

    [Static] is not a policy so much as the absence of one: dispatch
    follows the compile-time partition exactly as it always has, and a
    machine configured with it is bit-identical to the pre-steering
    machine (cycles, IPC, every counter). The dynamic policies instead
    {e force} the executing (master) cluster per instruction; the
    register-home plan ({!Distribution.plan_steered}) then builds
    whatever slave copies the forced choice requires. *)

type policy =
  | Static
      (** Compile-time partitioning only — today's machine, unchanged. *)
  | Modulo
      (** Round-robin over the clusters, advancing once per dispatched
          instruction — the cheapest hardware (a log2(N)-bit counter)
          and the paper's §6 strawman for dynamic distribution. *)
  | Dependence
      (** Send the instruction to the cluster that owns the producer of
          its first not-yet-ready source register, so the consumer waits
          next to the value instead of paying an operand transfer;
          falls back to the least-loaded cluster when every source is
          ready or global. *)
  | Load
      (** Argmin over the clusters' running dispatch-queue occupancy
          (the [cl_waiting] totals the machine already maintains) —
          pure load balancing with no locality term. *)
  | Ineffectual
      (** Kalayappan-style (arXiv 2304.12762): instructions whose
          results are predicted {e dead} — overwritten before any read —
          are exiled to the highest-numbered cluster, keeping the
          effectual program resident in the low clusters; effectual
          instructions steer as [Dependence]. The prediction comes from
          a small per-pc table of saturating counters trained at
          retire. *)

val all : policy list
(** In declaration order, [Static] first. *)

val to_string : policy -> string
(** ["static"], ["modulo"], ["dependence"], ["load"], ["ineffectual"] —
    the names the [--steering] flag and the wire protocol use. *)

val of_string : string -> (policy, string) result
(** Inverse of {!to_string}; [Error] names the unknown policy. *)

val describe : policy -> string
(** One-line decision rule, for tables and [--help] text. *)

val is_dynamic : policy -> bool
(** Every policy but [Static]. *)

val require_clustered : what:string -> policy -> clusters:int -> unit
(** A dynamic policy on a machine with nowhere to steer to is a usage
    error, not a silent no-op. No-op when [policy] is [Static] or
    [clusters >= 2]; otherwise raises [Failure] with the one-line
    message the CLI and the sweep service both report, prefixed by
    [what] (the command name). *)

(** Per-pc ineffectuality predictor: a direct-mapped table of 2-bit
    saturating counters indexed by instruction address. An instruction's
    result is {e dead} when the architectural register it writes is
    overwritten before any instruction reads it; the table is trained at
    retire, when the overwrite (and hence the verdict on the previous
    writer) is architecturally certain. Prediction is the counter's top
    bit, so two consecutive dead retirements are needed before a pc is
    steered as ineffectual. *)
module Ineff_table : sig
  type t

  val create : ?bits:int -> unit -> t
  (** [2^bits] entries, default [12] (4096 counters, one byte each).
      @raise Invalid_argument when [bits] is outside [\[4, 24\]]. *)

  val predict_dead : t -> pc:int -> bool
  (** Counter at [pc]'s slot has reached the predict-dead half. *)

  val train : t -> pc:int -> dead:bool -> unit
  (** Saturating increment when the result proved dead, decrement when
      it was read. *)

  val trainings : t -> int
  (** Total {!train} calls since {!create}/{!reset}. *)

  val dead_trainings : t -> int
  (** {!train} calls with [dead:true]. *)

  val reset : t -> unit
  (** Clear every counter and statistic. *)
end
