type policy = Static | Modulo | Dependence | Load | Ineffectual

let all = [ Static; Modulo; Dependence; Load; Ineffectual ]

let to_string = function
  | Static -> "static"
  | Modulo -> "modulo"
  | Dependence -> "dependence"
  | Load -> "load"
  | Ineffectual -> "ineffectual"

let of_string = function
  | "static" -> Ok Static
  | "modulo" | "round-robin" | "rr" -> Ok Modulo
  | "dependence" | "dep" -> Ok Dependence
  | "load" -> Ok Load
  | "ineffectual" | "ineff" -> Ok Ineffectual
  | s -> Error (Printf.sprintf "unknown steering policy %S" s)

let describe = function
  | Static -> "compile-time partition only (the paper's machine, unchanged)"
  | Modulo -> "round-robin over clusters, one step per dispatched instruction"
  | Dependence -> "cluster owning the producer of the first unready source, else least-loaded"
  | Load -> "least-loaded cluster by running dispatch-queue occupancy"
  | Ineffectual -> "predicted-dead results exiled to the last cluster, rest as dependence"

let is_dynamic = function Static -> false | _ -> true

let require_clustered ~what policy ~clusters =
  if is_dynamic policy && clusters < 2 then
    failwith
      (Printf.sprintf "%s: --steering %s needs a clustered machine (use --clusters 2, 4 or 8)"
         what (to_string policy))

module Ineff_table = struct
  (* One byte per counter; only the low two bits are used. *)
  type t = {
    counters : Bytes.t;
    mask : int;
    mutable trainings : int;
    mutable dead_trainings : int;
  }

  let create ?(bits = 12) () =
    if bits < 4 || bits > 24 then invalid_arg "Steering.Ineff_table.create: bits outside [4, 24]";
    { counters = Bytes.make (1 lsl bits) '\000';
      mask = (1 lsl bits) - 1;
      trainings = 0;
      dead_trainings = 0 }

  let slot t pc = pc land t.mask

  let predict_dead t ~pc = Char.code (Bytes.unsafe_get t.counters (slot t pc)) >= 2

  let train t ~pc ~dead =
    let i = slot t pc in
    let c = Char.code (Bytes.unsafe_get t.counters i) in
    let c' = if dead then min 3 (c + 1) else max 0 (c - 1) in
    Bytes.unsafe_set t.counters i (Char.unsafe_chr c');
    t.trainings <- t.trainings + 1;
    if dead then t.dead_trainings <- t.dead_trainings + 1

  let trainings t = t.trainings
  let dead_trainings t = t.dead_trainings

  let reset t =
    Bytes.fill t.counters 0 (Bytes.length t.counters) '\000';
    t.trainings <- 0;
    t.dead_trainings <- 0
end
