(** Instruction distribution (paper §2.1): deciding, from the architectural
    registers an instruction names and their cluster assignment, whether
    the instruction executes in one cluster or is distributed to several —
    a {e master} copy that performs the operation plus one {e slave} copy
    per other cluster that must forward a source operand to the master
    and/or receive the result.

    The paper develops the mechanism for two clusters ("without loss of
    generality"); this implementation generalizes it: with more clusters,
    a slave is created in every cluster that exclusively holds a needed
    source, and in every cluster that holds a copy of the destination
    (all other clusters, for a global destination).

    For a two-cluster assignment the plans coincide with the paper's five
    execution scenarios, recovered by {!scenario}:

    - 1: all registers reachable in one cluster, local destination;
    - 2: a source must be forwarded from the other cluster, destination
      local to the master;
    - 3: sources in one cluster, destination local to the other — result
      forwarded to the slave;
    - 4: sources in one cluster, global destination — master writes its
      copy, result also forwarded to the slave's copy;
    - 5: operand forwarded {e and} result forwarded to the same slave,
      which issues, suspends, and wakes. *)

type slave = {
  s_cluster : int;
  s_forward_srcs : Mcsim_isa.Reg.t list;
      (** sources this slave reads from its own register file and writes
          into the master cluster's operand transfer buffer *)
  s_receives_result : bool;
      (** the slave writes the destination's copy in its cluster, reading
          the master's result out of its cluster's result transfer
          buffer *)
}

type plan =
  | Single of { cluster : int }
  | Multi of {
      master : int;
      slaves : slave list;  (** ordered by cluster id; non-empty *)
      master_writes_reg : bool;
          (** master allocates a physical destination register
              (destination local to master, or global) *)
    }

val plan : Assignment.t -> ?prefer:int -> Mcsim_isa.Instr.t -> plan
(** [prefer] (default 0) breaks ties when the named registers do not pin a
    cluster (e.g., an instruction naming only global registers); real
    hardware could round-robin this.

    Master selection: the cluster named by the majority of the
    instruction's {e local} registers; ties prefer the destination's
    cluster when the destination is local, then [prefer], then the lowest
    tied cluster. *)

val plan_steered : Assignment.t -> master:int -> Mcsim_isa.Instr.t -> plan
(** The plan when a dynamic steering policy ({!Steering.policy}) has
    already {e forced} the executing cluster: [Single] in [master] when
    the instruction's registers allow it (every source readable there and
    the destination local to it or absent), otherwise [Multi] with
    [master] as given and the slave copies the forced choice requires —
    the same construction {!plan} uses, minus the majority vote.

    @raise Invalid_argument when [master] is not a cluster id. *)

val copies : plan -> int
(** 1 for [Single]; 1 + number of slaves otherwise. *)

val scenario : plan -> int
(** 1 for [Single]; 2–5 as in §2.1 judged per the master/first-slave pair
    (multi-distributed instructions without a destination report 2). *)

val describe : plan -> string
