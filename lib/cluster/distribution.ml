type slave = {
  s_cluster : int;
  s_forward_srcs : Mcsim_isa.Reg.t list;
  s_receives_result : bool;
}

type plan =
  | Single of { cluster : int }
  | Multi of {
      master : int;
      slaves : slave list;
      master_writes_reg : bool;
    }

let dedupe regs =
  List.fold_left
    (fun acc r -> if List.exists (Mcsim_isa.Reg.equal r) acc then acc else r :: acc)
    [] regs
  |> List.rev

(* Closure-free helpers for the dispatch hot path: top-level recursions
   so no per-instruction closure blocks are allocated. *)
let rec count_locals asg counts = function
  | [] -> ()
  | r :: rest ->
    (match Assignment.placement asg r with
    | Assignment.Local c -> counts.(c) <- counts.(c) + 1
    | Assignment.Global -> ());
    count_locals asg counts rest

let rec all_readable_in asg c = function
  | [] -> true
  | r :: rest -> Assignment.readable_in asg r c && all_readable_in asg c rest

let not_zero r = not (Mcsim_isa.Reg.is_zero r)

(* Deduped non-zero sources in first-occurrence order; the common
   arities are unrolled so the dispatch hot path builds at most the
   final two-element list. *)
let effective_srcs (instr : Mcsim_isa.Instr.t) =
  match instr.srcs with
  | [] -> []
  | [ a ] -> if not_zero a then instr.srcs else []
  | [ a; b ] ->
    if not_zero a then
      if not_zero b && not (Mcsim_isa.Reg.equal a b) then instr.srcs else [ a ]
    else if not_zero b then [ b ]
    else []
  | _ -> dedupe (List.filter not_zero instr.srcs)

let effective_dst (instr : Mcsim_isa.Instr.t) =
  match instr.dst with Some d when not_zero d -> Some d | Some _ | None -> None

(* The bitmask of clusters allowed to host a single-copy execution as far
   as the destination is concerned: any cluster when there is no
   (non-zero) destination, the home cluster when it is local, none when
   it is global (a global write must reach every cluster). *)
let dst_home_mask asg dst =
  match dst with
  | None -> -1 (* all clusters allowed *)
  | Some d -> (
    match Assignment.placement asg d with
    | Assignment.Local c' -> 1 lsl c'
    | Assignment.Global -> 0)

(* The Multi plan for a given master: a slave in every cluster that must
   forward a source the master cannot read, and/or receive a copy of the
   result. Shared by the static planner (majority-chosen master) and the
   steered planner (forced master). *)
let multi_of asg ~n ~master ~srcs ~dst =
  let clusters = List.init n Fun.id in
  let forward_srcs_of c =
    List.filter
      (fun r ->
        (not (Assignment.readable_in asg r master))
        && Assignment.placement asg r = Assignment.Local c)
      srcs
  in
  let receives c =
    match dst with
    | None -> false
    | Some d -> (
      match Assignment.placement asg d with
      | Assignment.Local c' -> c = c' && c <> master
      | Assignment.Global -> c <> master)
  in
  let master_writes_reg =
    match dst with
    | None -> false
    | Some d -> (
      match Assignment.placement asg d with
      | Assignment.Local c' -> c' = master
      | Assignment.Global -> true)
  in
  let slaves =
    List.filter_map
      (fun c ->
        if c = master then None
        else begin
          let fwd = forward_srcs_of c in
          let rcv = receives c in
          if fwd = [] && not rcv then None
          else Some { s_cluster = c; s_forward_srcs = fwd; s_receives_result = rcv }
        end)
      clusters
  in
  (* At least one slave exists whenever the master cannot single-execute:
     an unreadable source names its owner cluster, and an unhosted
     destination names its home (or, global, every other cluster). *)
  assert (slaves <> []);
  Multi { master; slaves; master_writes_reg }

let plan asg ?(prefer = 0) (instr : Mcsim_isa.Instr.t) =
  let n = Assignment.num_clusters asg in
  if n = 1 then Single { cluster = 0 }
  else begin
    let srcs = effective_srcs instr in
    let dst = effective_dst instr in
    (* Count the local registers named per cluster (the master-selection
       majority of §2.1; globals do not vote). *)
    let counts = Array.make n 0 in
    count_locals asg counts srcs;
    (match dst with
    | Some d -> (
      match Assignment.placement asg d with
      | Assignment.Local c -> counts.(c) <- counts.(c) + 1
      | Assignment.Global -> ())
    | None -> ());
    (* Cluster sets are bitmasks over the (at most a handful of) cluster
       ids, so candidate selection allocates nothing. A single-copy home
       must read every source and hold the destination locally. *)
    let dst_mask = dst_home_mask asg dst in
    let candidates = ref 0 in
    for c = 0 to n - 1 do
      if dst_mask land (1 lsl c) <> 0 && all_readable_in asg c srcs then
        candidates := !candidates lor (1 lsl c)
    done;
    let best_of mask =
      (* Highest local-register count; ties prefer the destination's home,
         then [prefer], then the lowest id. *)
      let max_count = ref 0 in
      for c = 0 to n - 1 do
        if mask land (1 lsl c) <> 0 && counts.(c) > !max_count then max_count := counts.(c)
      done;
      let tied = ref 0 in
      let ntied = ref 0 in
      let lowest = ref (-1) in
      for c = n - 1 downto 0 do
        if mask land (1 lsl c) <> 0 && counts.(c) = !max_count then begin
          tied := !tied lor (1 lsl c);
          incr ntied;
          lowest := c
        end
      done;
      if !ntied = 1 then !lowest
      else begin
        let dst_home =
          match dst with
          | Some d -> (
            match Assignment.placement asg d with
            | Assignment.Local c when !tied land (1 lsl c) <> 0 -> c
            | Assignment.Local _ | Assignment.Global -> -1)
          | None -> -1
        in
        if dst_home >= 0 then dst_home
        else if !tied land (1 lsl prefer) <> 0 then prefer
        else !lowest
      end
    in
    if !candidates <> 0 then Single { cluster = best_of !candidates }
    else multi_of asg ~n ~master:(best_of ((1 lsl n) - 1)) ~srcs ~dst
  end

let plan_steered asg ~master (instr : Mcsim_isa.Instr.t) =
  let n = Assignment.num_clusters asg in
  if n = 1 then Single { cluster = 0 }
  else begin
    if master < 0 || master >= n then
      invalid_arg
        (Printf.sprintf "Distribution.plan_steered: master %d outside [0, %d)" master n);
    let srcs = effective_srcs instr in
    let dst = effective_dst instr in
    if dst_home_mask asg dst land (1 lsl master) <> 0 && all_readable_in asg master srcs
    then Single { cluster = master }
    else multi_of asg ~n ~master ~srcs ~dst
  end

let copies = function Single _ -> 1 | Multi { slaves; _ } -> 1 + List.length slaves

let scenario = function
  | Single _ -> 1
  | Multi { slaves; master_writes_reg; _ } -> (
    let fwd = List.exists (fun s -> s.s_forward_srcs <> []) slaves in
    let rf = List.exists (fun s -> s.s_receives_result) slaves in
    match (fwd, rf) with
    | true, true -> 5
    | true, false -> 2
    | false, true -> if master_writes_reg then 4 else 3
    | false, false -> 2 (* unreachable: a slave always forwards or receives *))

let describe = function
  | Single { cluster } -> Printf.sprintf "single(C%d)" cluster
  | Multi { master; slaves; master_writes_reg } ->
    let slave_str s =
      Printf.sprintf "C%d[%s%s]" s.s_cluster
        (String.concat "," (List.map Mcsim_isa.Reg.to_string s.s_forward_srcs))
        (if s.s_receives_result then " result" else "")
    in
    Printf.sprintf "multi(master=C%d slaves=%s%s)" master
      (String.concat " " (List.map slave_str slaves))
      (if master_writes_reg then " m-writes" else "")
