(** Inter-cluster interconnect model.

    The paper's dual-cluster machine wires its two clusters
    point-to-point: a forwarded operand or result is visible in the
    other cluster one cycle after the producing copy issues. With more
    clusters the wiring discipline matters, so the transfer latency
    between a master and a slave cluster becomes a function of (src,
    dst, topology) rather than the scalar "+1" baked into the dual
    machine:

    - {!Point_to_point}: a dedicated link per cluster pair. Every
      transfer takes one cycle, the paper's model — but the wiring
      grows quadratically, which the cycle-time model
      ({!Mcsim_timing.Net_performance}) charges against the clock.
    - {!Ring}: only neighbor links; a transfer pays one cycle per hop
      of minimal ring distance. Cheap wires, distance-dependent
      latency.
    - {!Crossbar}: a shared switch; every distinct-cluster transfer
      pays two cycles (arbitration + traversal) regardless of
      distance.

    All three degenerate to the paper's one-cycle transfer at two
    clusters except the crossbar, whose arbitration stage is modeled
    even then. *)

type topology = Point_to_point | Ring | Crossbar

val all : topology list
(** [[Point_to_point; Ring; Crossbar]]. *)

val to_string : topology -> string
(** ["p2p"], ["ring"], ["xbar"] — the CLI spelling. *)

val of_string : string -> topology
(** Inverse of {!to_string} (also accepts ["point-to-point"] and
    ["crossbar"]). Raises [Invalid_argument] on anything else. *)

val describe : topology -> string
(** One-line human description. *)

val hop_latency : topology -> clusters:int -> src:int -> dst:int -> int
(** Cycles for a transfer written in cluster [src] to become visible in
    cluster [dst]; always >= 1, and 1 when [src = dst] (the local
    write-back cost). Raises [Invalid_argument] if a cluster index is
    out of range. *)

val max_hop : topology -> clusters:int -> int
(** The worst-case {!hop_latency} over all cluster pairs. *)

val matrix : topology -> clusters:int -> int array
(** The full latency table, flattened row-major:
    [(matrix t ~clusters).(src * clusters + dst) =
     hop_latency t ~clusters ~src ~dst]. *)
