(** Sampled simulation: systematic interval sampling with functional
    warming (SMARTS [Wunderlich et al., ISCA'03] applied to the
    multicluster model).

    Instead of running the detailed machine model over every committed
    instruction, the trace is covered by an alternation of {e functional
    warming} (caches and branch predictor advance, no pipeline —
    {!Mcsim_cluster.Machine.warm}) and evenly spaced {e detailed
    intervals}. Each detailed interval simulates [warmup + detail]
    instructions on the full model; the warmup prefix re-establishes
    pipeline and in-flight-miss state and its cycles are discarded, and
    the [detail] suffix contributes one IPC observation. The per-interval
    observations aggregate into a mean IPC with a Student-t confidence
    interval ({!Mcsim_util.Stats.confidence_interval}).

    Determinism: the whole run is a pure function of
    [(policy, config, trace)] — the only randomness is the systematic
    sampling offset, drawn from a generator seeded by [policy.seed] — so
    equal inputs give bit-for-bit equal results, in particular
    independently of any surrounding parallel fan-out. *)

type policy = {
  interval : int;  (** instructions from one detailed-unit start to the next *)
  warmup : int;  (** detailed instructions whose cycles are discarded *)
  detail : int;  (** detailed instructions measured per unit *)
  seed : int;  (** drives the systematic sampling offset *)
}

val default_policy : policy
(** [{ interval = 25_000; warmup = 2_000; detail = 2_000; seed = 1 }] —
    a 16% detailed fraction; on the seed workloads this lands within a
    few percent of full-run IPC at a >5x wall-clock speedup. *)

val validate_policy : policy -> unit
(** @raise Invalid_argument unless [interval >= 1], [warmup >= 0],
    [detail >= 1] and [warmup + detail <= interval]. *)

val policy_to_string : policy -> string
(** ["interval:warmup:detail"], e.g. ["20000:2000:2000"]. *)

val policy_of_string : ?seed:int -> string -> (policy, string) Stdlib.result
(** Parse ["interval:warmup:detail"] and validate; [seed] defaults
    to 1. Errors are one-line human-readable messages. *)

(** One detailed unit's observation. *)
type interval_stat = {
  index : int;  (** unit number, from 0 *)
  start : int;  (** trace position of the unit's first instruction *)
  warmup_cycles : int;
  detail_cycles : int;
  detail_instrs : int;
  ipc : float;  (** [detail_instrs / detail_cycles] *)
}

type t = {
  policy : policy;
  trace_instrs : int;
  intervals : interval_stat list;  (** in trace order *)
  mean_ipc : float;
      (** the reciprocal of mean per-unit CPI — the instruction-weighted
          aggregation a full run computes, not the arithmetic mean of
          per-unit IPCs (which would overweight fast units) *)
  ci_halfwidth : float;
      (** 95% two-sided Student-t halfwidth on the per-unit CPI mean,
          mapped to IPC space by the delta method *)
  detailed_instrs : int;  (** instructions simulated on the full model *)
  warmed_instrs : int;  (** instructions functionally warmed *)
  est_cycles : int;  (** [trace_instrs / mean_ipc], the full-run estimate *)
  machine : Mcsim_cluster.Machine.result;
      (** aggregate counters of all detailed and warming work; its
          [cycles]/[ipc] reflect the sampled run's own bookkeeping (one
          cycle per warmed instruction), not an estimate — use
          {!estimate} for that *)
}

val ci_rel : t -> float
(** [ci_halfwidth /. mean_ipc]; 0 when the mean is 0. *)

val detailed_fraction : t -> float
(** [detailed_instrs /. trace_instrs]. *)

val run_flat :
  ?max_cycles:int ->
  ?engine:Mcsim_cluster.Machine.engine ->
  ?policy:policy ->
  Mcsim_cluster.Machine.config ->
  Mcsim_isa.Flat_trace.t ->
  t
(** Sample-simulate the trace (the native entry point — warming and the
    detailed intervals read the packed arrays directly, and interval
    sub-traces are O(1) views). The first detailed unit starts at a
    seeded offset in [[0, interval - warmup - detail]]; subsequent units
    start every [interval] instructions; instructions between and after
    units are functionally warmed. [engine] selects the detailed-model
    issue logic (default [`Wakeup]); results are identical either way.
    @raise Invalid_argument if the policy is invalid or the trace is too
    short for two complete units (no meaningful confidence interval).
    @raise Failure as {!Mcsim_cluster.Machine.run} on [max_cycles]. *)

val run :
  ?max_cycles:int ->
  ?engine:Mcsim_cluster.Machine.engine ->
  ?policy:policy ->
  Mcsim_cluster.Machine.config ->
  Mcsim_isa.Instr.dynamic array ->
  t
(** {!run_flat} over [Flat_trace.of_dynamic_array trace]. *)

val estimate : t -> Mcsim_cluster.Machine.result
(** The sampled stand-in for a full {!Mcsim_cluster.Machine.run} result:
    [cycles = est_cycles], [retired = trace_instrs], [ipc = mean_ipc],
    rates and counters from the sampled run. This is what
    [Experiment.run_many ~sampling] feeds into the Table-2 arithmetic. *)

val render : t -> string
(** Human-readable summary: policy, coverage, mean IPC ± CI. *)
