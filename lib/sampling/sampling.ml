module Machine = Mcsim_cluster.Machine
module Flat_trace = Mcsim_isa.Flat_trace
module Stats = Mcsim_util.Stats
module Rng = Mcsim_util.Rng

type policy = { interval : int; warmup : int; detail : int; seed : int }

let default_policy = { interval = 25_000; warmup = 2_000; detail = 2_000; seed = 1 }

let validate_policy p =
  if p.interval < 1 then invalid_arg "Sampling: interval < 1";
  if p.warmup < 0 then invalid_arg "Sampling: warmup < 0";
  if p.detail < 1 then invalid_arg "Sampling: detail < 1";
  if p.warmup + p.detail > p.interval then
    invalid_arg "Sampling: warmup + detail must not exceed interval"

let policy_to_string p = Printf.sprintf "%d:%d:%d" p.interval p.warmup p.detail

let policy_of_string ?(seed = 1) s =
  let field what v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | Some _ | None ->
      Error (Printf.sprintf "%s must be a non-negative integer, got %S" what v)
  in
  match String.split_on_char ':' s with
  | [ i; w; d ] -> (
    match (field "interval" i, field "warmup" w, field "detail" d) with
    | Ok interval, Ok warmup, Ok detail ->
      let p = { interval; warmup; detail; seed } in
      (try
         validate_policy p;
         Ok p
       with Invalid_argument m -> Error m)
    | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e) -> e)
  | _ ->
    Error
      (Printf.sprintf "expected INTERVAL:WARMUP:DETAIL (e.g. %s), got %S"
         (policy_to_string default_policy) s)

type interval_stat = {
  index : int;
  start : int;
  warmup_cycles : int;
  detail_cycles : int;
  detail_instrs : int;
  ipc : float;
}

type t = {
  policy : policy;
  trace_instrs : int;
  intervals : interval_stat list;
  mean_ipc : float;
  ci_halfwidth : float;
  detailed_instrs : int;
  warmed_instrs : int;
  est_cycles : int;
  machine : Machine.result;
}

let ci_rel r = if r.mean_ipc = 0.0 then 0.0 else r.ci_halfwidth /. r.mean_ipc
let detailed_fraction r = Stats.ratio r.detailed_instrs r.trace_instrs

let run_flat ?max_cycles ?engine ?(policy = default_policy) cfg trace =
  validate_policy policy;
  let n = Flat_trace.length trace in
  let unit = policy.warmup + policy.detail in
  (* Systematic sampling: one seeded offset places the first unit; every
     later unit starts [interval] instructions after the previous one. *)
  let max_offset = policy.interval - unit in
  let offset =
    if max_offset = 0 then 0 else Rng.int (Rng.create policy.seed) (max_offset + 1)
  in
  let num_units =
    if n < offset + unit then 0 else 1 + ((n - offset - unit) / policy.interval)
  in
  if num_units < 2 then
    invalid_arg
      (Printf.sprintf
         "Sampling.run: trace of %d instructions yields %d complete sampling unit(s) \
          under policy %s (offset %d); need at least 2 for a confidence interval"
         n num_units (policy_to_string policy) offset);
  let st = Machine.init_state ?engine cfg in
  let stats = ref [] in
  let pos = ref 0 in
  for k = 0 to num_units - 1 do
    let start = offset + (k * policy.interval) in
    Machine.warm_flat st trace ~lo:!pos ~hi:start;
    let iv =
      Machine.run_interval_flat ?max_cycles st trace ~lo:start ~hi:(start + unit)
        ~measure_from:(start + policy.warmup)
    in
    let detail_cycles = max 1 iv.Machine.iv_cycles in
    stats :=
      { index = k;
        start;
        warmup_cycles = iv.Machine.iv_warmup_cycles;
        detail_cycles;
        detail_instrs = iv.Machine.iv_retired;
        ipc = Stats.ratio iv.Machine.iv_retired detail_cycles }
      :: !stats;
    pos := start + unit
  done;
  Machine.warm_flat st trace ~lo:!pos ~hi:n;
  let intervals = List.rev !stats in
  (* Aggregate per-unit CPI, not IPC: every unit measures the same
     instruction count, so the full-run cycle total extrapolates
     linearly from mean CPI (the instruction-weighted harmonic mean of
     the unit IPCs). Averaging IPC directly would overweight the fast
     units and systematically overestimate. The IPC-space interval comes
     out of the CPI one by the delta method (1/x is locally linear). *)
  let cpis =
    Array.of_list (List.map (fun s -> Stats.ratio s.detail_cycles s.detail_instrs) intervals)
  in
  let mean_cpi, cpi_halfwidth = Stats.confidence_interval ~confidence:0.95 cpis in
  let mean_ipc = if mean_cpi = 0.0 then 0.0 else 1.0 /. mean_cpi in
  { policy;
    trace_instrs = n;
    intervals;
    mean_ipc;
    ci_halfwidth = cpi_halfwidth *. mean_ipc *. mean_ipc;
    detailed_instrs = num_units * unit;
    warmed_instrs = n - (num_units * unit);
    est_cycles = int_of_float (Float.round (float_of_int n *. mean_cpi));
    machine = Machine.state_result st }

let run ?max_cycles ?engine ?policy cfg trace =
  run_flat ?max_cycles ?engine ?policy cfg (Flat_trace.of_dynamic_array trace)

let estimate r =
  { r.machine with
    Machine.cycles = r.est_cycles;
    retired = r.trace_instrs;
    ipc = r.mean_ipc }

let render r =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "sampled simulation: policy %s (seed %d), %d-instruction trace\n"
    (policy_to_string r.policy) r.policy.seed r.trace_instrs;
  Printf.bprintf b
    "  %d units: %d instructions detailed (%.1f%%), %d functionally warmed\n"
    (List.length r.intervals) r.detailed_instrs
    (100.0 *. detailed_fraction r)
    r.warmed_instrs;
  Printf.bprintf b "  IPC %.4f +/- %.4f (95%% CI, +/-%.2f%%), estimated cycles %d\n"
    r.mean_ipc r.ci_halfwidth
    (100.0 *. ci_rel r)
    r.est_cycles;
  Buffer.contents b
