type bank = B_int | B_fp

let bank_of_reg r = if Mcsim_isa.Reg.is_int r then B_int else B_fp

type bank_state = {
  freelist : Mcsim_util.Freelist.t;
  map : int array;  (* architectural index -> physical register *)
  ready : int array;  (* physical register -> ready cycle; max_int = pending *)
}

type t = {
  int_bank : bank_state;
  fp_bank : bank_state;
  n_phys : int;
}

let make_bank num_phys =
  let freelist = Mcsim_util.Freelist.create ~size:num_phys in
  let map = Array.make 32 (-1) in
  let ready = Array.make num_phys 0 in
  for a = 0 to 31 do
    match Mcsim_util.Freelist.alloc freelist with
    | Some p -> map.(a) <- p
    | None -> assert false
  done;
  { freelist; map; ready }

let create ~num_phys =
  if num_phys < 32 then invalid_arg "Regfile.create: num_phys < 32";
  if num_phys > 0x10000 then invalid_arg "Regfile.create: num_phys > 65536";
  { int_bank = make_bank num_phys; fp_bank = make_bank num_phys; n_phys = num_phys }

let num_phys t = t.n_phys

let bank_state t = function B_int -> t.int_bank | B_fp -> t.fp_bank

let free_count t b = Mcsim_util.Freelist.available (bank_state t b).freelist

let lookup t reg =
  if Mcsim_isa.Reg.is_zero reg then invalid_arg "Regfile.lookup: zero register";
  let bs = bank_state t (bank_of_reg reg) in
  bs.map.(Mcsim_isa.Reg.index reg)

let rename t reg =
  if Mcsim_isa.Reg.is_zero reg then invalid_arg "Regfile.rename: zero register";
  let bs = bank_state t (bank_of_reg reg) in
  match Mcsim_util.Freelist.alloc bs.freelist with
  | None -> None
  | Some p ->
    let a = Mcsim_isa.Reg.index reg in
    let prev = bs.map.(a) in
    bs.map.(a) <- p;
    bs.ready.(p) <- max_int;
    Some (p, prev)

(* Identical to [rename] but writes nothing to the heap: physical ids fit
   in 16 bits ([create] enforces it), so both halves of the result pack
   into one immediate int for the dispatch hot path. *)
let rename_packed t reg =
  if Mcsim_isa.Reg.is_zero reg then invalid_arg "Regfile.rename_packed: zero register";
  let bs = bank_state t (bank_of_reg reg) in
  let p = Mcsim_util.Freelist.take bs.freelist in
  if p < 0 then -1
  else begin
    let a = Mcsim_isa.Reg.index reg in
    let prev = bs.map.(a) in
    bs.map.(a) <- p;
    bs.ready.(p) <- max_int;
    (p lsl 16) lor prev
  end

let undo_rename t reg ~new_phys ~prev_phys =
  let bs = bank_state t (bank_of_reg reg) in
  let a = Mcsim_isa.Reg.index reg in
  assert (bs.map.(a) = new_phys);
  bs.map.(a) <- prev_phys;
  Mcsim_util.Freelist.free bs.freelist new_phys

let release t b phys = Mcsim_util.Freelist.free (bank_state t b).freelist phys

let ready_at t b phys = (bank_state t b).ready.(phys)
let set_ready t b phys cycle = (bank_state t b).ready.(phys) <- cycle
let set_pending t b phys = (bank_state t b).ready.(phys) <- max_int
