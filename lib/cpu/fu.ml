type t = {
  budget : Mcsim_isa.Issue_rules.budget;
  dividers : int array;  (* per-divider first free cycle *)
  mutable n_total : int;
  counts : int array;  (* cumulative issues per class slot, divide widths pooled *)
}

(* One unpipelined divider per fp-divide issue slot, so the single-cluster
   machine and the whole dual-cluster machine hold the same number of
   dividers (the paper's resource-parity rule, §4). *)
let create limits =
  { budget = Mcsim_isa.Issue_rules.budget limits;
    dividers = Array.make (max 1 limits.Mcsim_isa.Issue_rules.fp_divide) 0;
    n_total = 0;
    counts = Array.make 7 0 }

let new_cycle t = Mcsim_isa.Issue_rules.reset t.budget

(* Dense per-class slot; both [Fp_divide] widths share one (they share
   the divider and the Table-1 budget row). *)
let class_slot (op : Mcsim_isa.Op_class.t) =
  match op with
  | Int_multiply -> 0
  | Int_other -> 1
  | Fp_divide _ -> 2
  | Fp_other -> 3
  | Load -> 4
  | Store -> 5
  | Control -> 6

let free_divider t ~cycle =
  let n = Array.length t.dividers in
  let rec find i = if i = n then None else if t.dividers.(i) <= cycle then Some i else find (i + 1) in
  find 0

let can_issue t ~cycle (op : Mcsim_isa.Op_class.t) =
  Mcsim_isa.Issue_rules.can_issue t.budget op
  && match op with Fp_divide _ -> free_divider t ~cycle <> None | _ -> true

let issue t ~cycle op =
  if not (can_issue t ~cycle op) then invalid_arg "Fu.issue: cannot issue";
  Mcsim_isa.Issue_rules.consume t.budget op;
  (match op with
  | Fp_divide _ -> (
    match free_divider t ~cycle with
    | Some i -> t.dividers.(i) <- cycle + Mcsim_isa.Op_class.latency op
    | None -> assert false)
  | Int_multiply | Int_other | Fp_other | Load | Store | Control -> ());
  t.n_total <- t.n_total + 1;
  let slot = class_slot op in
  t.counts.(slot) <- t.counts.(slot) + 1

let issued_this_cycle t = Mcsim_isa.Issue_rules.issued t.budget
let total_issued t = t.n_total

let issued_of_class t op = t.counts.(class_slot op)

let clear_divider t = Array.fill t.dividers 0 (Array.length t.dividers) 0
