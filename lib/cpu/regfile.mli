(** One cluster's register state: per-bank physical register freelists,
    rename maps from architectural to physical registers, and a scoreboard
    of result-ready cycles (explicit renaming, as in the R10000 and the
    paper's machines).

    Each bank (integer / floating point) has [num_phys] physical
    registers. At creation every architectural register is mapped to a
    distinct physical register whose value is ready at cycle 0; the rest
    are free. The rename map covers all 32 architectural indices per bank;
    a multicluster machine simply never looks up registers the cluster
    does not own.

    Renaming an architectural destination returns both the new physical
    register and the previous mapping. The previous mapping is freed when
    the instruction {e retires}; on a squash the caller restores it with
    {!undo_rename} (in reverse dispatch order). *)

type bank = B_int | B_fp

val bank_of_reg : Mcsim_isa.Reg.t -> bank

type t

val create : num_phys:int -> t
(** Requires [num_phys >= 32] (one per architectural register, plus
    headroom for in-flight values). *)

val num_phys : t -> int
val free_count : t -> bank -> int

val lookup : t -> Mcsim_isa.Reg.t -> int
(** Current physical register of an architectural register.
    @raise Invalid_argument on a hardwired-zero register. *)

val rename : t -> Mcsim_isa.Reg.t -> (int * int) option
(** [rename t reg] allocates a fresh physical register for destination
    [reg], updates the map, and returns [(new_phys, prev_phys)] — or
    [None] when the bank's freelist is empty (dispatch must stall). The
    new register is marked not-ready. *)

val rename_packed : t -> Mcsim_isa.Reg.t -> int
(** As {!rename} but allocation-free: returns
    [(new_phys lsl 16) lor prev_phys], or [-1] when the bank's freelist
    is empty. Physical ids fit in 16 bits ({!create} requires
    [num_phys <= 65536]). *)

val undo_rename : t -> Mcsim_isa.Reg.t -> new_phys:int -> prev_phys:int -> unit
(** Squash: restore the previous mapping and free [new_phys]. Must be
    applied in reverse dispatch order. *)

val release : t -> bank -> int -> unit
(** Free a physical register (the previous mapping, at retire). *)

val ready_at : t -> bank -> int -> int
(** Cycle at which the physical register's value is available to
    consumers; [max_int] while the producer has not issued. *)

val set_ready : t -> bank -> int -> int -> unit
(** [set_ready t bank phys cycle]: the producer issued; value available
    from [cycle]. *)

val set_pending : t -> bank -> int -> unit
(** Mark not-ready again (used when a squashed producer's register is
    re-allocated this is automatic; exposed for tests). *)
