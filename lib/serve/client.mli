(** Client side of the sweep service: one blocking connection.

    Each call sends one request and reads frames until its response
    arrives (frames for other request ids are skipped, so a [t] can be
    handed sequentially between calls but is not domain-safe). *)

type t

val connect : socket_path:string -> t
(** @raise Failure (one line) when nothing is listening. *)

val close : t -> unit

val submit :
  ?on_unit:
    (index:int -> total:int -> label:string -> source:string -> data:Mcsim_obs.Json.t ->
     unit) ->
  t ->
  Protocol.sweep ->
  Mcsim_obs.Json.t * Protocol.served
(** Submit a sweep and block until it completes; [on_unit] observes
    each per-unit progress frame as it streams in ([source] is
    ["cache"], ["computed"] or ["coalesced"]). Returns the assembled
    result and the served counters.
    @raise Failure with the server's message on an [error] response,
    or when the connection drops mid-sweep. *)

val stats : t -> Mcsim_obs.Json.t
(** The server's counters as a {!Mcsim_obs.Metrics} snapshot
    (kind ["serve-stats"]). *)

val ping : t -> unit

val stop_server : t -> unit
(** Ask the server to shut down; returns once it acknowledges. *)

val rows_of_result : Mcsim_obs.Json.t -> Mcsim.Table2.row list option
(** Decode a [table2] submit result back into rows ([None] on anything
    the server cannot have produced). *)
