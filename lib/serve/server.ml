module Json = Mcsim_obs.Json
module Manifest = Mcsim_obs.Manifest
module Metrics = Mcsim_obs.Metrics
module Machine = Mcsim_cluster.Machine
module Pipeline = Mcsim_compiler.Pipeline
module Spec92 = Mcsim_workload.Spec92
module Sampling = Mcsim_sampling.Sampling
module Pool = Mcsim_util.Pool
module P = Protocol

type config = {
  socket_path : string;
  jobs : int;
  retries : int;
  backoff : (int -> float) option;
  result_cache : string option;
  trace_cache : string option;
  log : (string -> unit) option;
  before_compute : (string -> unit) option;
  on_ready : (unit -> unit) option;
}

let default ~socket_path =
  { socket_path; jobs = 1; retries = 0; backoff = None; result_cache = None;
    trace_cache = None; log = None; before_compute = None; on_ready = None }

(* ------------------------------------------------------------------ *)
(* Sweep units                                                         *)
(* ------------------------------------------------------------------ *)

(* One independently cacheable piece of a sweep: its store identity
   plus the pure computation that produces its fields. *)
type unit_spec = {
  u_label : string;
  u_manifest : Manifest.t;
  u_key : string;
  u_compute : unit -> (string * Json.t) list;
}

(* Mirrors the CLI's trace path: walk the committed trace (compiled for
   the target cluster count), or map it from the shared trace store. *)
let flat_trace ~trace_cache ~bench ~scheduler ~clusters ~seed ~max_instrs () =
  let walk () =
    let prog = Spec92.program bench in
    let profile = Mcsim_trace.Walker.profile ~seed prog in
    let c = Pipeline.compile ~clusters ~profile ~scheduler prog in
    Mcsim_trace.Walker.trace_flat ~seed ~max_instrs c.Pipeline.mach
  in
  match trace_cache with
  | None -> walk ()
  | Some dir ->
    let store = Mcsim.Trace_store.open_ ~dir in
    let key =
      { Mcsim.Trace_store.benchmark = Spec92.name bench;
        scheduler = Mcsim.Experiment.scheduler_ident_n ~clusters scheduler;
        seed;
        max_instrs }
    in
    fst (Mcsim.Trace_store.load_or_build store key walk)

(* The machine a Run/Sample sweep simulates: --clusters overrides the
   single/dual pair, --topology and --steering apply either way (both
   are part of the config and so of the cache identity). *)
let config_of ~what ~machine ~clusters ~topology ~steering =
  let base =
    match clusters with
    | Some n -> Machine.config_for_clusters ~topology n
    | None ->
      let b =
        match machine with
        | `Single -> Machine.single_cluster ()
        | `Dual -> Machine.dual_cluster ()
      in
      { b with Machine.topology }
  in
  Mcsim_cluster.Steering.require_clustered ~what steering
    ~clusters:(Mcsim_cluster.Assignment.num_clusters base.Machine.assignment);
  { base with Machine.steering }

(* Binaries are compiled for the cluster count of the machine that runs
   them; without --clusters that is the historical default of 2 (even
   for the single-cluster machine, which runs the same native binary the
   dual machine does — the Table-2 methodology). *)
let compile_clusters = function Some n -> n | None -> 2

let units_of_sweep ~trace_cache = function
  | P.Table2
      { benchmarks; max_instrs; seed; engine; sampling; four_way; clusters; topology;
        steering } ->
    if four_way && clusters <> None then
      failwith "table2: --four-way and --clusters are mutually exclusive";
    if clusters = Some 1 then
      Mcsim_cluster.Steering.require_clustered ~what:"table2" steering ~clusters:1;
    (* As in the CLI: the single-issue baseline column stays static (it
       has nowhere to steer), the clustered column gets the policy. *)
    let single_config, dual_config =
      if four_way then
        (Some { (Machine.single_cluster_4 ()) with Machine.topology },
         Some { (Machine.dual_cluster_2x2 ()) with Machine.topology; steering })
      else
        match clusters with
        | Some n -> (None, Some { (Machine.config_for_clusters ~topology n) with Machine.steering })
        | None -> (None, Some { (Machine.dual_cluster ()) with Machine.topology; steering })
    in
    let units =
      List.map
        (fun b ->
          let manifest, key =
            Mcsim.Table2.row_store_unit ~engine ?sampling ?single_config ?dual_config
              ~max_instrs ~seed b
          in
          { u_label = Spec92.name b;
            u_manifest = manifest;
            u_key = key;
            u_compute =
              (fun () ->
                match
                  Mcsim.Table2.run ~jobs:1 ~max_instrs ~seed ~benchmarks:[ b ] ~engine
                    ?sampling ?single_config ?dual_config ?trace_cache ()
                with
                | [ row ] -> [ ("row", Mcsim.Table2.row_json row) ]
                | _ -> failwith "table2 unit produced no row") })
        benchmarks
    in
    let assemble slots =
      let rows =
        Array.to_list slots
        |> List.map (fun fields ->
               match List.assoc_opt "row" fields with Some rj -> rj | None -> Json.Null)
      in
      Json.Obj [ ("rows", Json.List rows) ]
    in
    (units, assemble)
  | P.Run
      { bench; machine; scheduler; max_instrs; seed; engine; clusters; topology; steering }
    ->
    let cfg = config_of ~what:"run" ~machine ~clusters ~topology ~steering in
    let cclusters = compile_clusters clusters in
    let manifest =
      Manifest.make ~engine ~seed ~benchmark:(Spec92.name bench)
        ~scheduler:(Pipeline.scheduler_name scheduler) ~trace_instrs:max_instrs cfg
    in
    let unit =
      { u_label = Spec92.name bench;
        u_manifest = manifest;
        u_key = "run";
        u_compute =
          (fun () ->
            let trace =
              flat_trace ~trace_cache ~bench ~scheduler ~clusters:cclusters ~seed
                ~max_instrs ()
            in
            let n = Mcsim_isa.Flat_trace.length trace in
            let r = Machine.run_flat ~engine cfg trace in
            [ ("result", Metrics.result_json r); ("trace_instrs", Json.Int n) ]) }
    in
    ([ unit ], fun slots -> Json.Obj slots.(0))
  | P.Sample
      { bench; machine; scheduler; max_instrs; seed; engine; policy; clusters; topology;
        steering } ->
    let cfg = config_of ~what:"sample" ~machine ~clusters ~topology ~steering in
    let cclusters = compile_clusters clusters in
    let manifest =
      Manifest.make ~engine ~seed ~benchmark:(Spec92.name bench)
        ~scheduler:(Pipeline.scheduler_name scheduler) ~trace_instrs:max_instrs
        ~sampling:policy cfg
    in
    let unit =
      { u_label = Spec92.name bench;
        u_manifest = manifest;
        u_key = "sample";
        u_compute =
          (fun () ->
            let trace =
              flat_trace ~trace_cache ~bench ~scheduler ~clusters:cclusters ~seed
                ~max_instrs ()
            in
            let s = Sampling.run_flat ~engine ~policy cfg trace in
            [ ("sampling", Metrics.sampling_json s);
              ("result", Metrics.result_json s.Sampling.machine) ]) }
    in
    ([ unit ], fun slots -> Json.Obj slots.(0))

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; rd : P.reader; mutable alive : bool }

type submit = {
  sb_client : client;
  sb_id : int;
  sb_kind : string;
  sb_total : int;
  sb_labels : string array;
  sb_slots : (string * Json.t) list option array;
  sb_assemble : (string * Json.t) list array -> Json.t;
  mutable sb_remaining : int;
  mutable sb_cached : int;
  mutable sb_computed : int;
  mutable sb_coalesced : int;
  mutable sb_failed : bool;
}

(* A submit waiting on an in-flight digest; the waiter that started the
   computation reports [source = "computed"], the rest "coalesced". *)
type waiter = { w_sub : submit; w_index : int; w_source : string }

type job = {
  jb_digest : string;
  jb_label : string;
  jb_manifest : Manifest.t;
  jb_key : string;
  jb_compute : unit -> (string * Json.t) list;
}

type counters = {
  mutable c_requests : int;
  mutable c_submits : int;
  mutable c_units_requested : int;
  mutable c_units_cached : int;
  mutable c_units_computed : int;
  mutable c_units_coalesced : int;
  mutable c_units_failed : int;
  mutable c_connections : int;
}

type state = {
  cfg : config;
  store : Mcsim.Result_store.t option;
  memcache : (string, (string * Json.t) list) Hashtbl.t;
  inflight : (string, waiter list ref) Hashtbl.t;
  clients : (Unix.file_descr, client) Hashtbl.t;
  counters : counters;
  (* worker hand-off: jobs in, completions out (kicked via self-pipe) *)
  qm : Mutex.t;
  qc : Condition.t;
  jobs_q : job Queue.t;
  mutable stopping : bool;
  done_m : Mutex.t;
  done_q : (string * ((string * Json.t) list, string) result) Queue.t;
  pipe_w : Unix.file_descr;
  mutable stop_requested : bool;
}

let log state fmt =
  Printf.ksprintf (fun s -> match state.cfg.log with Some f -> f s | None -> ()) fmt

(* ------------------------------------------------------------------ *)
(* Worker domains                                                      *)
(* ------------------------------------------------------------------ *)

let enqueue_job state jb =
  Mutex.lock state.qm;
  Queue.push jb state.jobs_q;
  Condition.signal state.qc;
  Mutex.unlock state.qm

let take_job state =
  Mutex.lock state.qm;
  while Queue.is_empty state.jobs_q && not state.stopping do
    Condition.wait state.qc state.qm
  done;
  let jb = if Queue.is_empty state.jobs_q then None else Some (Queue.pop state.jobs_q) in
  Mutex.unlock state.qm;
  jb

let push_done state entry =
  Mutex.lock state.done_m;
  Queue.push entry state.done_q;
  Mutex.unlock state.done_m;
  (* Wake the select loop; the pipe never fills because the loop drains
     it every iteration. *)
  try ignore (Unix.write state.pipe_w (Bytes.make 1 '.') 0 1) with Unix.Unix_error _ -> ()

let worker state =
  let rec loop () =
    match take_job state with
    | None -> ()
    | Some jb ->
      (match state.cfg.before_compute with Some f -> f jb.jb_digest | None -> ());
      let res =
        match
          Pool.parallel_map_status ~retries:state.cfg.retries ?backoff:state.cfg.backoff
            ~jobs:1
            (fun () -> jb.jb_compute ())
            [ () ]
        with
        | [ Pool.Done fields ] -> Ok fields
        | [ Pool.Failed f ] -> Error (Pool.failure_message f)
        | _ -> assert false
      in
      (match (res, state.store) with
      | Ok fields, Some store ->
        Mcsim.Result_store.record store ~manifest:jb.jb_manifest ~key:jb.jb_key fields
      | _ -> ());
      push_done state (jb.jb_digest, res);
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)
(* ------------------------------------------------------------------ *)

let drop_client state c =
  if c.alive then begin
    c.alive <- false;
    Hashtbl.remove state.clients c.fd;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    log state "client disconnected (%d left)" (Hashtbl.length state.clients)
  end

let send state c json =
  if c.alive then
    try P.write_frame c.fd json
    with Unix.Unix_error _ | Failure _ -> drop_client state c

let finish state sub =
  let slots =
    Array.map (function Some fields -> fields | None -> assert false) sub.sb_slots
  in
  let served =
    { P.s_units = sub.sb_total;
      s_cached = sub.sb_cached;
      s_computed = sub.sb_computed;
      s_coalesced = sub.sb_coalesced }
  in
  send state sub.sb_client
    (P.done_response ~id:sub.sb_id ~kind:sub.sb_kind ~result:(sub.sb_assemble slots)
       ~served)

let resolve state sub i ~source fields =
  if sub.sb_client.alive && not sub.sb_failed then begin
    sub.sb_slots.(i) <- Some fields;
    sub.sb_remaining <- sub.sb_remaining - 1;
    (match source with
    | "cache" ->
      sub.sb_cached <- sub.sb_cached + 1;
      state.counters.c_units_cached <- state.counters.c_units_cached + 1
    | "computed" ->
      sub.sb_computed <- sub.sb_computed + 1;
      state.counters.c_units_computed <- state.counters.c_units_computed + 1
    | _ ->
      sub.sb_coalesced <- sub.sb_coalesced + 1;
      state.counters.c_units_coalesced <- state.counters.c_units_coalesced + 1);
    send state sub.sb_client
      (P.unit_response ~id:sub.sb_id ~index:i ~total:sub.sb_total
         ~label:sub.sb_labels.(i) ~source ~data:(Json.Obj fields));
    if sub.sb_remaining = 0 then finish state sub
  end

let process_done state (dg, res) =
  match Hashtbl.find_opt state.inflight dg with
  | None -> ()
  | Some waiters ->
    Hashtbl.remove state.inflight dg;
    let ws = List.rev !waiters in
    (match res with
    | Ok fields ->
      Hashtbl.replace state.memcache dg fields;
      List.iter (fun w -> resolve state w.w_sub w.w_index ~source:w.w_source fields) ws
    | Error msg ->
      state.counters.c_units_failed <- state.counters.c_units_failed + 1;
      log state "unit %s failed: %s" (String.sub dg 0 8) msg;
      List.iter
        (fun w ->
          let sub = w.w_sub in
          if sub.sb_client.alive && not sub.sb_failed then begin
            sub.sb_failed <- true;
            send state sub.sb_client
              (P.error_response ~id:sub.sb_id
                 ~message:
                   (Printf.sprintf "unit %s: %s" sub.sb_labels.(w.w_index) msg))
          end)
        ws)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let handle_submit state c ~id sweep =
  state.counters.c_submits <- state.counters.c_submits + 1;
  let units, assemble = units_of_sweep ~trace_cache:state.cfg.trace_cache sweep in
  let units = Array.of_list units in
  let total = Array.length units in
  state.counters.c_units_requested <- state.counters.c_units_requested + total;
  let sub =
    { sb_client = c;
      sb_id = id;
      sb_kind = P.sweep_kind sweep;
      sb_total = total;
      sb_labels = Array.map (fun u -> u.u_label) units;
      sb_slots = Array.make total None;
      sb_assemble = assemble;
      sb_remaining = total;
      sb_cached = 0;
      sb_computed = 0;
      sb_coalesced = 0;
      sb_failed = false }
  in
  log state "submit #%d: %s, %d unit(s)" id sub.sb_kind total;
  Array.iteri
    (fun i u ->
      let dg = Mcsim.Result_store.digest ~manifest:u.u_manifest ~key:u.u_key in
      match Hashtbl.find_opt state.memcache dg with
      | Some fields -> resolve state sub i ~source:"cache" fields
      | None -> (
        let disk =
          match state.store with
          | None -> None
          | Some store -> (
            match Mcsim.Result_store.find store ~manifest:u.u_manifest ~key:u.u_key with
            | Some (Json.Obj fields) ->
              Some (List.filter (fun (k, _) -> k <> "unit_key") fields)
            | Some _ | None -> None)
        in
        match disk with
        | Some fields ->
          Hashtbl.replace state.memcache dg fields;
          resolve state sub i ~source:"cache" fields
        | None -> (
          match Hashtbl.find_opt state.inflight dg with
          | Some waiters ->
            waiters := { w_sub = sub; w_index = i; w_source = "coalesced" } :: !waiters
          | None ->
            Hashtbl.replace state.inflight dg
              (ref [ { w_sub = sub; w_index = i; w_source = "computed" } ]);
            enqueue_job state
              { jb_digest = dg;
                jb_label = u.u_label;
                jb_manifest = u.u_manifest;
                jb_key = u.u_key;
                jb_compute = u.u_compute })))
    units

let stats_json state =
  let c = state.counters in
  let manifest = Manifest.make (Machine.dual_cluster ()) in
  Metrics.snapshot ~manifest ~kind:"serve-stats"
    ~extra:
      [ ("requests", Json.Int c.c_requests);
        ("submits", Json.Int c.c_submits);
        ("units_requested", Json.Int c.c_units_requested);
        ("units_cached", Json.Int c.c_units_cached);
        ("units_computed", Json.Int c.c_units_computed);
        ("units_coalesced", Json.Int c.c_units_coalesced);
        ("units_failed", Json.Int c.c_units_failed);
        ("connections", Json.Int c.c_connections);
        ("in_flight", Json.Int (Hashtbl.length state.inflight));
        ("clients", Json.Int (Hashtbl.length state.clients)) ]
    ()

let handle_frame state c j =
  state.counters.c_requests <- state.counters.c_requests + 1;
  match P.request_of_json j with
  | P.Submit { id; sweep } -> handle_submit state c ~id sweep
  | P.Stats id -> send state c (P.stats_response ~id ~metrics:(stats_json state))
  | P.Ping id -> send state c (P.pong_response ~id)
  | P.Stop id ->
    log state "stop requested";
    send state c (P.stopping_response ~id);
    state.stop_requested <- true
  | exception Failure msg ->
    let id =
      match Option.bind (Json.member "id" j) Json.get_int with Some n -> n | None -> 0
    in
    send state c (P.error_response ~id ~message:msg)

let handle_readable state c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> drop_client state c
  | n -> (
    P.push c.rd (Bytes.sub_string buf 0 n);
    try
      let rec drain () =
        match P.pop c.rd with
        | Some j ->
          handle_frame state c j;
          if c.alive then drain ()
        | None -> ()
      in
      drain ()
    with Failure msg ->
      (* Framing violation: the stream cannot be re-synchronised. *)
      log state "protocol error: %s" msg;
      drop_client state c)
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    drop_client state c

(* ------------------------------------------------------------------ *)
(* Socket lifecycle and main loop                                      *)
(* ------------------------------------------------------------------ *)

let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then failwith (Printf.sprintf "serve: a server is already listening on %s" path);
    (* Stale socket from a crashed server: nobody accepted the probe. *)
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let run cfg =
  if cfg.jobs < 1 then invalid_arg "Server.run: jobs < 1";
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  claim_socket cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 16;
  let pipe_r, pipe_w = Unix.pipe () in
  let state =
    { cfg;
      store = Option.map (fun dir -> Mcsim.Result_store.open_ ~dir) cfg.result_cache;
      memcache = Hashtbl.create 64;
      inflight = Hashtbl.create 16;
      clients = Hashtbl.create 16;
      counters =
        { c_requests = 0; c_submits = 0; c_units_requested = 0; c_units_cached = 0;
          c_units_computed = 0; c_units_coalesced = 0; c_units_failed = 0;
          c_connections = 0 };
      qm = Mutex.create ();
      qc = Condition.create ();
      jobs_q = Queue.create ();
      stopping = false;
      done_m = Mutex.create ();
      done_q = Queue.create ();
      pipe_w;
      stop_requested = false }
  in
  let workers = Array.init cfg.jobs (fun _ -> Domain.spawn (fun () -> worker state)) in
  log state "listening on %s (%d worker domain(s))" cfg.socket_path cfg.jobs;
  (match cfg.on_ready with Some f -> f () | None -> ());
  let drain_buf = Bytes.create 512 in
  while not state.stop_requested do
    let fds =
      listen_fd :: pipe_r :: Hashtbl.fold (fun fd _ acc -> fd :: acc) state.clients []
    in
    match Unix.select fds [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = listen_fd then begin
            let cfd, _ = Unix.accept listen_fd in
            Unix.setsockopt_float cfd Unix.SO_SNDTIMEO 30.0;
            Hashtbl.replace state.clients cfd
              { fd = cfd; rd = P.reader (); alive = true };
            state.counters.c_connections <- state.counters.c_connections + 1;
            log state "client connected (%d now)" (Hashtbl.length state.clients)
          end
          else if fd = pipe_r then begin
            (try ignore (Unix.read pipe_r drain_buf 0 (Bytes.length drain_buf))
             with Unix.Unix_error _ -> ());
            let completed = ref [] in
            Mutex.lock state.done_m;
            while not (Queue.is_empty state.done_q) do
              completed := Queue.pop state.done_q :: !completed
            done;
            Mutex.unlock state.done_m;
            List.iter (process_done state) (List.rev !completed)
          end
          else
            match Hashtbl.find_opt state.clients fd with
            | Some c -> handle_readable state c
            | None -> ())
        readable
  done;
  Mutex.lock state.qm;
  state.stopping <- true;
  Condition.broadcast state.qc;
  Mutex.unlock state.qm;
  Array.iter Domain.join workers;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) state.clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close pipe_w with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  log state "stopped"
