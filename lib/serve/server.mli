(** The sweep-service daemon.

    One process, one Unix-domain listening socket, [jobs] worker
    domains. The main loop ([Unix.select]) owns every connection and
    all bookkeeping; workers only simulate. A submitted sweep is split
    into {e units} — one Table-2 row, one detailed run, one sampled
    estimate — each addressed by its {!Mcsim.Result_store} identity,
    and every unit is answered from the cheapest tier that has it:

    + the in-memory cache (results computed or loaded since startup),
    + the on-disk {!Mcsim.Result_store} (shared with [--result-cache]
      batch runs and previous server lifetimes),
    + an {e in-flight} computation of the same digest started for any
      client — the unit is coalesced onto it, never recomputed,
    + a worker domain, which wraps the simulation in
      {!Mcsim_util.Pool.parallel_map_status} with the configured
      [retries]/[backoff] and records the result in the store.

    Per-unit progress frames stream back as units resolve; a client
    that disconnects mid-sweep is forgotten without disturbing the
    computations it started (their results still land in the caches,
    and coalesced waiters from other clients are still served). *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains (>= 1) *)
  retries : int;  (** per-unit retries, as in the batch CLI *)
  backoff : (int -> float) option;  (** [None] = Pool's default schedule *)
  result_cache : string option;  (** {!Mcsim.Result_store} directory *)
  trace_cache : string option;  (** {!Mcsim.Trace_store} directory *)
  log : (string -> unit) option;  (** one-line event sink; [None] = silent *)
  before_compute : (string -> unit) option;
      (** test hook: runs in the worker domain, with the unit's digest,
          before the computation starts — a test can block here to hold
          a unit in flight deterministically *)
  on_ready : (unit -> unit) option;
      (** called once the socket is listening — tests running the
          server in a [Domain] use it to know when to connect *)
}

val default : socket_path:string -> config
(** [jobs = 1], [retries = 0], everything else off. *)

val run : config -> unit
(** Serve until a [stop] request arrives, then drain the workers,
    close every connection, unlink the socket and return.

    A leftover socket file from a crashed server is detected (nobody
    accepts the probe connection) and replaced; a live one is refused
    with [Failure "... already listening ..."]. *)
