(** The wire protocol of the sweep service.

    Messages are length-prefixed JSON frames on a Unix-domain stream
    socket: a 4-byte big-endian payload length followed by that many
    bytes of minified {!Mcsim_obs.Json} — trivially incremental to
    decode, language-agnostic, and bounded ({!max_frame_bytes}) so a
    hostile peer cannot make the server buffer unbounded input. The
    JSON parser itself bounds nesting depth
    ({!Mcsim_obs.Json.max_depth}), so socket bytes can never overflow
    the stack.

    Requests carry a client-chosen [id] that every response echoes, so
    one connection can hold several outstanding requests. A [submit]
    streams back one [unit] response per sweep unit as it is resolved
    (from cache, computed, or coalesced onto another client's
    computation) and finishes with a [done] carrying the assembled
    result and the per-request served counters — or an [error]. *)

val max_frame_bytes : int
(** Upper bound on a frame payload (16 MiB). *)

(** {2 Framing} *)

val frame_string : Mcsim_obs.Json.t -> string
(** The complete frame (length prefix + minified payload) for one
    message. @raise Failure when the payload exceeds
    {!max_frame_bytes}. *)

val write_frame : Unix.file_descr -> Mcsim_obs.Json.t -> unit
(** Write one frame, handling short writes. Raises [Unix_error] as the
    write does. *)

(** Incremental frame decoder: feed it raw bytes as they arrive, pop
    complete frames. *)
type reader

val reader : unit -> reader

val push : reader -> string -> unit
(** Append received bytes. *)

val pop : reader -> Mcsim_obs.Json.t option
(** The next complete frame, or [None] until more bytes arrive.
    @raise Failure (one line) on an out-of-range length prefix or an
    unparseable payload — the connection cannot be trusted after
    that. *)

val buffered : reader -> int
(** Bytes currently buffered (0 exactly between frames). *)

val read_frame : Unix.file_descr -> reader -> Mcsim_obs.Json.t option
(** Blocking read of the next frame (the client side's loop): [None] on
    a clean EOF between frames.
    @raise Failure on EOF mid-frame or a protocol violation. *)

(** {2 Sweeps} *)

(** [clusters = None] keeps the sweep's historical machine selection
    ([machine], or single-vs-dual for Table2); [Some n] runs the n-way
    partitioned machine wired as [topology] instead, with instructions
    placed at dispatch by [steering]. All three fields are omitted from
    the wire format at their defaults ([None], point-to-point,
    {!Mcsim_cluster.Steering.Static}), so frames from pre-interconnect
    and pre-steering peers decode unchanged. *)
type sweep =
  | Table2 of {
      benchmarks : Mcsim_workload.Spec92.benchmark list;
      max_instrs : int;
      seed : int;
      engine : Mcsim_cluster.Machine.engine;
      sampling : Mcsim_sampling.Sampling.policy option;
      four_way : bool;
      clusters : int option;
      topology : Mcsim_cluster.Interconnect.topology;
      steering : Mcsim_cluster.Steering.policy;
    }
  | Run of {
      bench : Mcsim_workload.Spec92.benchmark;
      machine : [ `Single | `Dual ];
      scheduler : Mcsim_compiler.Pipeline.scheduler;
      max_instrs : int;
      seed : int;
      engine : Mcsim_cluster.Machine.engine;
      clusters : int option;
      topology : Mcsim_cluster.Interconnect.topology;
      steering : Mcsim_cluster.Steering.policy;
    }
  | Sample of {
      bench : Mcsim_workload.Spec92.benchmark;
      machine : [ `Single | `Dual ];
      scheduler : Mcsim_compiler.Pipeline.scheduler;
      max_instrs : int;
      seed : int;
      engine : Mcsim_cluster.Machine.engine;
      policy : Mcsim_sampling.Sampling.policy;
      clusters : int option;
      topology : Mcsim_cluster.Interconnect.topology;
      steering : Mcsim_cluster.Steering.policy;
    }

val sweep_kind : sweep -> string
(** ["table2"], ["run"] or ["sample"]. *)

val sweep_to_json : sweep -> Mcsim_obs.Json.t

val sweep_of_json : Mcsim_obs.Json.t -> sweep
(** @raise Failure (one line) on anything {!sweep_to_json} cannot have
    produced — unknown kinds, benchmarks, schedulers, missing or
    mistyped fields. *)

(** {2 Requests} *)

type request =
  | Submit of { id : int; sweep : sweep }
  | Stats of int
  | Ping of int
  | Stop of int

val request_to_json : request -> Mcsim_obs.Json.t

val request_of_json : Mcsim_obs.Json.t -> request
(** @raise Failure (one line) on a malformed request. *)

(** {2 Responses} *)

(** How a request's units were satisfied; [s_cached + s_computed +
    s_coalesced = s_units]. A resubmitted sweep is fully cache-served
    exactly when [s_computed = 0 && s_coalesced = 0]. *)
type served = { s_units : int; s_cached : int; s_computed : int; s_coalesced : int }

val served_to_json : served -> Mcsim_obs.Json.t
val served_of_json : Mcsim_obs.Json.t -> served option

val unit_response :
  id:int -> index:int -> total:int -> label:string -> source:string ->
  data:Mcsim_obs.Json.t -> Mcsim_obs.Json.t
(** One streamed per-unit progress event; [source] is ["cache"],
    ["computed"] or ["coalesced"]. *)

val done_response :
  id:int -> kind:string -> result:Mcsim_obs.Json.t -> served:served -> Mcsim_obs.Json.t

val error_response : id:int -> message:string -> Mcsim_obs.Json.t
val stats_response : id:int -> metrics:Mcsim_obs.Json.t -> Mcsim_obs.Json.t
val pong_response : id:int -> Mcsim_obs.Json.t
val stopping_response : id:int -> Mcsim_obs.Json.t
