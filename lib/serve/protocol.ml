module Json = Mcsim_obs.Json
module Spec92 = Mcsim_workload.Spec92
module Pipeline = Mcsim_compiler.Pipeline
module Sampling = Mcsim_sampling.Sampling

let max_frame_bytes = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame_string json =
  let payload = Json.to_string ~minify:true json in
  let n = String.length payload in
  if n > max_frame_bytes then
    failwith (Printf.sprintf "protocol: frame of %d bytes exceeds the %d-byte limit" n
                max_frame_bytes);
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let write_frame fd json = write_all fd (frame_string json)

type reader = { mutable pending : string }

let reader () = { pending = "" }
let push r s = if s <> "" then r.pending <- r.pending ^ s
let buffered r = String.length r.pending

let pop r =
  let len = String.length r.pending in
  if len < 4 then None
  else begin
    let n = Int32.to_int (String.get_int32_be r.pending 0) in
    if n < 0 || n > max_frame_bytes then
      failwith
        (Printf.sprintf "protocol: frame length %d out of range (max %d)" n max_frame_bytes);
    if len < 4 + n then None
    else begin
      let payload = String.sub r.pending 4 n in
      r.pending <- String.sub r.pending (4 + n) (len - 4 - n);
      match Json.of_string payload with
      | Ok v -> Some v
      | Error e -> failwith ("protocol: bad frame payload: " ^ e)
    end
  end

let read_frame fd r =
  let buf = Bytes.create 65536 in
  let rec loop () =
    match pop r with
    | Some _ as frame -> frame
    | None ->
      let k = Unix.read fd buf 0 (Bytes.length buf) in
      if k = 0 then
        if buffered r = 0 then None
        else failwith "protocol: connection closed mid-frame"
      else begin
        push r (Bytes.sub_string buf 0 k);
        loop ()
      end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)
(* ------------------------------------------------------------------ *)

(* [clusters = None] keeps the sweep's historical machine selection
   ([machine], or single-vs-dual for Table2); [Some n] partitions into n
   clusters wired as [topology] instead. Both fields are omitted from
   the wire format when at their defaults, so old clients and servers
   interoperate for every sweep they could already express. *)
type sweep =
  | Table2 of {
      benchmarks : Spec92.benchmark list;
      max_instrs : int;
      seed : int;
      engine : Mcsim_cluster.Machine.engine;
      sampling : Sampling.policy option;
      four_way : bool;
      clusters : int option;
      topology : Mcsim_cluster.Interconnect.topology;
      steering : Mcsim_cluster.Steering.policy;
    }
  | Run of {
      bench : Spec92.benchmark;
      machine : [ `Single | `Dual ];
      scheduler : Pipeline.scheduler;
      max_instrs : int;
      seed : int;
      engine : Mcsim_cluster.Machine.engine;
      clusters : int option;
      topology : Mcsim_cluster.Interconnect.topology;
      steering : Mcsim_cluster.Steering.policy;
    }
  | Sample of {
      bench : Spec92.benchmark;
      machine : [ `Single | `Dual ];
      scheduler : Pipeline.scheduler;
      max_instrs : int;
      seed : int;
      engine : Mcsim_cluster.Machine.engine;
      policy : Sampling.policy;
      clusters : int option;
      topology : Mcsim_cluster.Interconnect.topology;
      steering : Mcsim_cluster.Steering.policy;
    }

let sweep_kind = function Table2 _ -> "table2" | Run _ -> "run" | Sample _ -> "sample"

let bench_of_name s =
  match Spec92.of_name s with
  | Some b -> b
  | None -> failwith (Printf.sprintf "protocol: unknown benchmark %S" s)

let machine_name = function `Single -> "single" | `Dual -> "dual"

let machine_of_name = function
  | "single" -> `Single
  | "dual" -> `Dual
  | s -> failwith (Printf.sprintf "protocol: unknown machine %S" s)

(* Parameters travel as {!Pipeline.scheduler_name} strings, so — like
   [mcsim resume] — a tuned scheduler resolves to the stock instance of
   its family. *)
let scheduler_of_name = function
  | "none" -> Pipeline.Sched_none
  | "local" -> Pipeline.default_local
  | "round_robin" | "round-robin" -> Pipeline.Sched_round_robin
  | "random" -> Pipeline.Sched_random 7
  | s -> failwith (Printf.sprintf "protocol: unknown scheduler %S" s)

let engine_of_name = function
  | "scan" -> `Scan
  | "wakeup" -> `Wakeup
  | s -> failwith (Printf.sprintf "protocol: unknown engine %S" s)

let str_field j k =
  match Option.bind (Json.member k j) Json.get_string with
  | Some s -> s
  | None -> failwith (Printf.sprintf "protocol: missing or mistyped field %S" k)

let int_field j k =
  match Option.bind (Json.member k j) Json.get_int with
  | Some n -> n
  | None -> failwith (Printf.sprintf "protocol: missing or mistyped field %S" k)

let bool_field j k =
  match Json.member k j with
  | Some (Json.Bool b) -> b
  | _ -> failwith (Printf.sprintf "protocol: missing or mistyped field %S" k)

(* Absent on frames from pre-interconnect clients. *)
let clusters_field j =
  match Json.member "clusters" j with
  | None | Some Json.Null -> None
  | Some (Json.Int n) -> Some n
  | Some _ -> failwith "protocol: missing or mistyped field \"clusters\""

let topology_field j =
  match Json.member "topology" j with
  | None | Some Json.Null -> Mcsim_cluster.Interconnect.Point_to_point
  | Some (Json.String s) -> (
    match Mcsim_cluster.Interconnect.of_string s with
    | t -> t
    | exception Invalid_argument m -> failwith ("protocol: " ^ m))
  | Some _ -> failwith "protocol: missing or mistyped field \"topology\""

(* Absent on frames from pre-steering clients; absent = static. *)
let steering_field j =
  match Json.member "steering" j with
  | None | Some Json.Null -> Mcsim_cluster.Steering.Static
  | Some (Json.String s) -> (
    match Mcsim_cluster.Steering.of_string s with
    | Ok p -> p
    | Error e -> failwith ("protocol: " ^ e))
  | Some _ -> failwith "protocol: missing or mistyped field \"steering\""

let cluster_fields ~clusters ~topology ~steering =
  (match clusters with Some n -> [ ("clusters", Json.Int n) ] | None -> [])
  @ (match topology with
    | Mcsim_cluster.Interconnect.Point_to_point -> []
    | t -> [ ("topology", Json.String (Mcsim_cluster.Interconnect.to_string t)) ])
  @
  match steering with
  | Mcsim_cluster.Steering.Static -> []
  | p -> [ ("steering", Json.String (Mcsim_cluster.Steering.to_string p)) ]

let policy_field ~seed j k =
  match Json.member k j with
  | Some Json.Null | None -> None
  | Some (Json.String s) -> (
    match Sampling.policy_of_string ~seed s with
    | Ok p -> Some p
    | Error e -> failwith (Printf.sprintf "protocol: bad sampling policy %S: %s" s e))
  | Some _ -> failwith (Printf.sprintf "protocol: missing or mistyped field %S" k)

let sweep_to_json = function
  | Table2
      { benchmarks; max_instrs; seed; engine; sampling; four_way; clusters; topology;
        steering } ->
    Json.Obj
      ([ ("kind", Json.String "table2");
         ("benchmarks", Json.List (List.map (fun b -> Json.String (Spec92.name b)) benchmarks));
         ("max_instrs", Json.Int max_instrs);
         ("seed", Json.Int seed);
         ("engine", Json.String (Mcsim_obs.Manifest.engine_name engine));
         ("sampling",
          match sampling with
          | Some p -> Json.String (Sampling.policy_to_string p)
          | None -> Json.Null);
         ("four_way", Json.Bool four_way) ]
      @ cluster_fields ~clusters ~topology ~steering)
  | Run
      { bench; machine; scheduler; max_instrs; seed; engine; clusters; topology; steering }
    ->
    Json.Obj
      ([ ("kind", Json.String "run");
         ("benchmark", Json.String (Spec92.name bench));
         ("machine", Json.String (machine_name machine));
         ("scheduler", Json.String (Pipeline.scheduler_name scheduler));
         ("max_instrs", Json.Int max_instrs);
         ("seed", Json.Int seed);
         ("engine", Json.String (Mcsim_obs.Manifest.engine_name engine)) ]
      @ cluster_fields ~clusters ~topology ~steering)
  | Sample
      { bench; machine; scheduler; max_instrs; seed; engine; policy; clusters; topology;
        steering } ->
    Json.Obj
      ([ ("kind", Json.String "sample");
         ("benchmark", Json.String (Spec92.name bench));
         ("machine", Json.String (machine_name machine));
         ("scheduler", Json.String (Pipeline.scheduler_name scheduler));
         ("max_instrs", Json.Int max_instrs);
         ("seed", Json.Int seed);
         ("engine", Json.String (Mcsim_obs.Manifest.engine_name engine));
         ("sampling", Json.String (Sampling.policy_to_string policy)) ]
      @ cluster_fields ~clusters ~topology ~steering)

let sweep_of_json j =
  match str_field j "kind" with
  | "table2" ->
    let benchmarks =
      match Json.member "benchmarks" j with
      | Some (Json.List l) when l <> [] ->
        List.map
          (function
            | Json.String s -> bench_of_name s
            | _ -> failwith "protocol: benchmarks must be a list of names")
          l
      | _ -> failwith "protocol: benchmarks must be a non-empty list of names"
    in
    let seed = int_field j "seed" in
    Table2
      { benchmarks;
        max_instrs = int_field j "max_instrs";
        seed;
        engine = engine_of_name (str_field j "engine");
        sampling = policy_field ~seed j "sampling";
        four_way = bool_field j "four_way";
        clusters = clusters_field j;
        topology = topology_field j;
        steering = steering_field j }
  | "run" ->
    Run
      { bench = bench_of_name (str_field j "benchmark");
        machine = machine_of_name (str_field j "machine");
        scheduler = scheduler_of_name (str_field j "scheduler");
        max_instrs = int_field j "max_instrs";
        seed = int_field j "seed";
        engine = engine_of_name (str_field j "engine");
        clusters = clusters_field j;
        topology = topology_field j;
        steering = steering_field j }
  | "sample" ->
    let seed = int_field j "seed" in
    let policy =
      match policy_field ~seed j "sampling" with
      | Some p -> p
      | None -> failwith "protocol: sample sweep lacks a sampling policy"
    in
    Sample
      { bench = bench_of_name (str_field j "benchmark");
        machine = machine_of_name (str_field j "machine");
        scheduler = scheduler_of_name (str_field j "scheduler");
        max_instrs = int_field j "max_instrs";
        seed;
        engine = engine_of_name (str_field j "engine");
        policy;
        clusters = clusters_field j;
        topology = topology_field j;
        steering = steering_field j }
  | k -> failwith (Printf.sprintf "protocol: unknown sweep kind %S" k)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Submit of { id : int; sweep : sweep }
  | Stats of int
  | Ping of int
  | Stop of int

let request_to_json = function
  | Submit { id; sweep } ->
    Json.Obj
      [ ("req", Json.String "submit"); ("id", Json.Int id); ("sweep", sweep_to_json sweep) ]
  | Stats id -> Json.Obj [ ("req", Json.String "stats"); ("id", Json.Int id) ]
  | Ping id -> Json.Obj [ ("req", Json.String "ping"); ("id", Json.Int id) ]
  | Stop id -> Json.Obj [ ("req", Json.String "stop"); ("id", Json.Int id) ]

let request_of_json j =
  let id = int_field j "id" in
  match str_field j "req" with
  | "submit" -> (
    match Json.member "sweep" j with
    | Some s -> Submit { id; sweep = sweep_of_json s }
    | None -> failwith "protocol: submit lacks a sweep")
  | "stats" -> Stats id
  | "ping" -> Ping id
  | "stop" -> Stop id
  | r -> failwith (Printf.sprintf "protocol: unknown request %S" r)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type served = { s_units : int; s_cached : int; s_computed : int; s_coalesced : int }

let served_to_json s =
  Json.Obj
    [ ("units", Json.Int s.s_units);
      ("cached", Json.Int s.s_cached);
      ("computed", Json.Int s.s_computed);
      ("coalesced", Json.Int s.s_coalesced) ]

let served_of_json j =
  let int k = Option.bind (Json.member k j) Json.get_int in
  match (int "units", int "cached", int "computed", int "coalesced") with
  | Some s_units, Some s_cached, Some s_computed, Some s_coalesced ->
    Some { s_units; s_cached; s_computed; s_coalesced }
  | _ -> None

let unit_response ~id ~index ~total ~label ~source ~data =
  Json.Obj
    [ ("resp", Json.String "unit");
      ("id", Json.Int id);
      ("index", Json.Int index);
      ("total", Json.Int total);
      ("unit", Json.String label);
      ("source", Json.String source);
      ("data", data) ]

let done_response ~id ~kind ~result ~served =
  Json.Obj
    [ ("resp", Json.String "done");
      ("id", Json.Int id);
      ("kind", Json.String kind);
      ("result", result);
      ("served", served_to_json served) ]

let error_response ~id ~message =
  Json.Obj
    [ ("resp", Json.String "error"); ("id", Json.Int id); ("message", Json.String message) ]

let stats_response ~id ~metrics =
  Json.Obj [ ("resp", Json.String "stats"); ("id", Json.Int id); ("metrics", metrics) ]

let pong_response ~id = Json.Obj [ ("resp", Json.String "pong"); ("id", Json.Int id) ]

let stopping_response ~id =
  Json.Obj [ ("resp", Json.String "stopping"); ("id", Json.Int id) ]
