module Json = Mcsim_obs.Json
module P = Protocol

type t = { fd : Unix.file_descr; rd : P.reader; mutable next_id : int }

let connect ~socket_path =
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "cannot connect to %s: %s (is 'mcsim serve' running?)" socket_path
          (Unix.error_message e)));
  { fd; rd = P.reader (); next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let str j k = Option.bind (Json.member k j) Json.get_string
let int j k = Option.bind (Json.member k j) Json.get_int

(* Read frames until [handle] accepts one; frames for other ids fall
   through. *)
let rec await t handle =
  match P.read_frame t.fd t.rd with
  | None -> failwith "server closed the connection"
  | Some j -> (
    match handle j with Some v -> v | None -> await t handle)

let submit ?on_unit t sweep =
  let id = fresh_id t in
  P.write_frame t.fd (P.request_to_json (P.Submit { id; sweep }));
  await t (fun j ->
      if int j "id" <> Some id then None
      else
        match str j "resp" with
        | Some "unit" ->
          (match on_unit with
          | Some f -> (
            match
              ( int j "index", int j "total", str j "unit", str j "source",
                Json.member "data" j )
            with
            | Some index, Some total, Some label, Some source, Some data ->
              f ~index ~total ~label ~source ~data
            | _ -> ())
          | None -> ());
          None
        | Some "done" -> (
          match (Json.member "result" j, Option.bind (Json.member "served" j) P.served_of_json)
          with
          | Some result, Some served -> Some (result, served)
          | _ -> failwith "malformed done response")
        | Some "error" ->
          failwith
            (match str j "message" with Some m -> m | None -> "server error")
        | _ -> None)

let stats t =
  let id = fresh_id t in
  P.write_frame t.fd (P.request_to_json (P.Stats id));
  await t (fun j ->
      if int j "id" = Some id && str j "resp" = Some "stats" then Json.member "metrics" j
      else None)

let ping t =
  let id = fresh_id t in
  P.write_frame t.fd (P.request_to_json (P.Ping id));
  await t (fun j ->
      if int j "id" = Some id && str j "resp" = Some "pong" then Some () else None)

let stop_server t =
  let id = fresh_id t in
  P.write_frame t.fd (P.request_to_json (P.Stop id));
  await t (fun j ->
      if int j "id" = Some id && str j "resp" = Some "stopping" then Some () else None)

let rows_of_result j =
  match Json.member "rows" j with
  | Some (Json.List rows) ->
    List.fold_left
      (fun acc rj ->
        match (acc, Mcsim.Table2.row_of_json rj) with
        | Some rows, Some row -> Some (rows @ [ row ])
        | _ -> None)
      (Some []) rows
  | _ -> None
