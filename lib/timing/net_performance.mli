(** Net-performance arithmetic of §4.2 and §5, generalized to N clusters
    with a modeled interconnect.

    The paper's break-even argument: run time = clock cycles × clock
    period, so a partitioned machine that takes [slowdown_pct] percent
    more cycles wins iff its clock period is at least
    [required_clock_reduction_pct slowdown_pct] percent shorter. The
    worked example in §4.2: a 25% cycle slowdown needs a clock 20%
    faster.

    The N-cluster clock is the slower of two constraints: the Palacharla
    per-cluster structures ({!Palacharla.per_cluster_config}) and one
    hop of the inter-cluster interconnect ({!interconnect_delay}) —
    narrower clusters clock faster until the interconnect wiring binds,
    which is what distinguishes the topologies at high cluster counts. *)

val speedup_pct : single_cycles:int -> dual_cycles:int -> float
(** The Table-2 metric: [100 - 100 * dual/single]; negative = slowdown. *)

val required_clock_reduction_pct : float -> float
(** [required_clock_reduction_pct slowdown_pct] — the paper's
    [100 - 100 * 1/(1 + s/100)] (from [100 - 100 * C_single/C_dual]).
    Requires [slowdown_pct > -100]. *)

val interconnect_delay :
  clusters:int -> topology:Mcsim_cluster.Interconnect.topology ->
  Palacharla.feature -> float
(** Picoseconds one interconnect hop takes: wire-dominated, scaling with
    the topology's longest link (point-to-point spans the floorplan,
    [clusters - 1] pitches; ring one pitch; crossbar half the
    floorplan), at 100 ps per cluster pitch. 0 for one cluster. *)

val cluster_cycle_time :
  clusters:int -> topology:Mcsim_cluster.Interconnect.topology ->
  Palacharla.feature -> float
(** Max of the Palacharla per-cluster cycle time and
    {!interconnect_delay} — the clock of the [clusters]-way machine. *)

val clock_ratio :
  clusters:int -> topology:Mcsim_cluster.Interconnect.topology ->
  Palacharla.feature -> float
(** [T_single / T_n]: how much faster the partitioned machine clocks
    than the 8-issue monolith (1.0 at one cluster). *)

val net_runtime_ratio_n :
  single_cycles:int -> cycles:int -> clusters:int ->
  topology:Mcsim_cluster.Interconnect.topology ->
  feature:Palacharla.feature -> float
(** Partitioned run time / single run time when each machine clocks at
    its own cycle time: [(cycles * T_n) / (single_cycles * T_single)].
    Below 1.0 the partitioned machine is net faster. *)

val net_speedup_pct_n :
  single_cycles:int -> cycles:int -> clusters:int ->
  topology:Mcsim_cluster.Interconnect.topology ->
  feature:Palacharla.feature -> float
(** [100 - 100 * net_runtime_ratio_n]; positive = partitioned wins. *)

val net_runtime_ratio :
  single_cycles:int -> dual_cycles:int -> feature:Palacharla.feature -> float
(** The dual-cluster wrapper: {!net_runtime_ratio_n} at two
    point-to-point clusters, where the interconnect never binds —
    [(dual_cycles * T_4issue) / (single_cycles * T_8issue)] exactly as
    before. *)

val net_speedup_pct :
  single_cycles:int -> dual_cycles:int -> feature:Palacharla.feature -> float
(** [100 - 100 * net_runtime_ratio]; positive = dual-cluster wins. *)
