type feature = F0_35 | F0_18

let feature_to_string = function F0_35 -> "0.35um" | F0_18 -> "0.18um"

type config = {
  issue_width : int;
  window_size : int;
  feature : feature;
}

(* Gate-dominated structures scale with the drawn feature size; the
   bypass network is wire-dominated and keeps ~90% of its delay across
   the 0.35 -> 0.18 shrink. *)
let gate_scale = function F0_35 -> 1.0 | F0_18 -> 0.18 /. 0.35
let wire_scale = function F0_35 -> 1.0 | F0_18 -> 0.9

let check c =
  if c.issue_width < 1 then invalid_arg "Palacharla: issue_width < 1";
  if c.window_size < 1 then invalid_arg "Palacharla: window_size < 1"

(* Calibration (at 0.35 um, in ps):
   - wakeup+select: 800 + 48.4*w + 42.4*log2(window); hits 1248 at
     (4, 64) and 1484 at (8, 128) — the published anchor points.
   - bypass: 20.28 * w^2 of wire; 1168/0.9 = 1298 at w=8 so that the
     0.18 um 8-issue bypass (1168 ps) divided by the 0.18 um 4-issue
     wakeup+select (642 ps) gives the published 1.82.
   - rename and regfile grow linearly in width and never bind. *)

let log2 x = log (float_of_int x) /. log 2.0

let rename_delay c =
  check c;
  gate_scale c.feature *. (500.0 +. (50.0 *. float_of_int c.issue_width))

let wakeup_select_delay c =
  check c;
  gate_scale c.feature
  *. (800.0 +. (48.4 *. float_of_int c.issue_width) +. (42.4 *. log2 c.window_size))

let regfile_delay c =
  check c;
  (* Ports grow with issue width: 2 reads + 1 write per slot. *)
  let ports = 3 * c.issue_width in
  gate_scale c.feature *. (550.0 +. (22.0 *. float_of_int ports))

let bypass_delay c =
  check c;
  wire_scale c.feature *. 20.28 *. float_of_int (c.issue_width * c.issue_width)

let structures =
  [ ("rename", rename_delay); ("wakeup+select", wakeup_select_delay);
    ("regfile", regfile_delay); ("bypass", bypass_delay) ]

let cycle_time c =
  List.fold_left (fun acc (_, f) -> max acc (f c)) 0.0 structures

let critical_structure c =
  let name, _ =
    List.fold_left
      (fun ((_, best) as acc) (n, f) ->
        let d = f c in
        if d > best then (n, d) else acc)
      ("none", 0.0) structures
  in
  name

let single_cluster_config feature = { issue_width = 8; window_size = 128; feature }
let dual_cluster_config feature = { issue_width = 4; window_size = 64; feature }

let per_cluster_config ~clusters feature =
  if clusters < 1 || 8 mod clusters <> 0 then
    invalid_arg
      (Printf.sprintf "Palacharla.per_cluster_config: %d clusters (must be >= 1 and divide 8)"
         clusters);
  { issue_width = 8 / clusters; window_size = 128 / clusters; feature }

let eight_vs_four_ratio feature =
  cycle_time (single_cluster_config feature) /. cycle_time (dual_cluster_config feature)
