(** Cycle-time model after Palacharla, Jouppi & Smith,
    "Complexity-Effective Superscalar Processors" (ISCA 1997) — the model
    the paper's §4.2/§5 argument rests on.

    The processor cycle is set by the slowest of four structures: rename,
    dispatch-window wakeup+select, register-file read, and operand bypass.
    Gate-dominated delays shrink with the feature size; the bypass network
    is wire-dominated (its length grows with the square of issue width)
    and barely shrinks — which is why wide issue gets relatively more
    expensive at smaller feature sizes.

    The coefficients are calibrated, not transcribed: they reproduce the
    two aggregate anchor points the paper quotes — in a 0.35 µm process
    the worst-case path grows from 1248 ps (4-issue) to 1484 ps (8-issue),
    about +18%; in a 0.18 µm process the same step costs about +82%. *)

type feature = F0_35 | F0_18  (** process generation, µm *)

val feature_to_string : feature -> string

type config = {
  issue_width : int;  (** >= 1 *)
  window_size : int;  (** dispatch-queue entries visible to wakeup *)
  feature : feature;
}

val gate_scale : feature -> float
(** Shrink factor for gate-dominated delays (1.0 at 0.35 µm). *)

val wire_scale : feature -> float
(** Shrink factor for wire-dominated delays — about 0.9 across the
    0.35 → 0.18 shrink. *)

val rename_delay : config -> float
(** Picoseconds. *)

val wakeup_select_delay : config -> float
val regfile_delay : config -> float
val bypass_delay : config -> float

val cycle_time : config -> float
(** Max of the four structure delays. *)

val critical_structure : config -> string
(** Which structure binds the cycle. *)

val single_cluster_config : feature -> config
(** 8-issue, 128-entry window. *)

val dual_cluster_config : feature -> config
(** 4-issue, 64-entry window — one cluster of the dual machine. *)

val per_cluster_config : clusters:int -> feature -> config
(** One cluster of an [clusters]-way partitioned 8-issue machine:
    [8/clusters]-issue with a [128/clusters]-entry window.
    @raise Invalid_argument unless [clusters >= 1] and [clusters]
    divides 8 — the message names the constraint, so CLI validation can
    surface it as a one-line error. *)

val eight_vs_four_ratio : feature -> float
(** [cycle_time (single_cluster_config f) /. cycle_time
    (dual_cluster_config f)] — about 1.18 at 0.35 µm and 1.82 at
    0.18 µm. *)
