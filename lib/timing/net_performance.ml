module Interconnect = Mcsim_cluster.Interconnect

let speedup_pct ~single_cycles ~dual_cycles =
  100.0 -. (100.0 *. float_of_int dual_cycles /. float_of_int (max 1 single_cycles))

let required_clock_reduction_pct slowdown_pct =
  if slowdown_pct <= -100.0 then invalid_arg "required_clock_reduction_pct";
  100.0 -. (100.0 /. (1.0 +. (slowdown_pct /. 100.0)))

(* The longest single interconnect hop must fit in a cycle (transfers are
   pipelined, so distance is paid in hop *latency*, not clock). The wire
   span one hop covers grows with the topology's longest link, measured
   in cluster pitches at 100 ps each (0.35 µm), wire-scaled like the
   bypass network:
   - point-to-point: dedicated links to every other cluster, the longest
     spanning the floorplan — [clusters - 1] pitches. This is what stops
     pairwise wiring from scaling.
   - ring: neighbor links only, one pitch, independent of cluster count.
   - crossbar: a shared switch reaching half the floorplan. *)
let interconnect_delay ~clusters ~topology feature =
  if clusters <= 1 then 0.0
  else
    let span =
      match (topology : Interconnect.topology) with
      | Point_to_point -> float_of_int (clusters - 1)
      | Ring -> 1.0
      | Crossbar -> float_of_int clusters /. 2.0
    in
    Palacharla.wire_scale feature *. 100.0 *. span

let cluster_cycle_time ~clusters ~topology feature =
  Float.max
    (Palacharla.cycle_time (Palacharla.per_cluster_config ~clusters feature))
    (interconnect_delay ~clusters ~topology feature)

let clock_ratio ~clusters ~topology feature =
  Palacharla.cycle_time (Palacharla.single_cluster_config feature)
  /. cluster_cycle_time ~clusters ~topology feature

let net_runtime_ratio_n ~single_cycles ~cycles ~clusters ~topology ~feature =
  let t_single = Palacharla.cycle_time (Palacharla.single_cluster_config feature) in
  let t_n = cluster_cycle_time ~clusters ~topology feature in
  float_of_int cycles *. t_n /. (float_of_int (max 1 single_cycles) *. t_single)

let net_speedup_pct_n ~single_cycles ~cycles ~clusters ~topology ~feature =
  100.0 -. (100.0 *. net_runtime_ratio_n ~single_cycles ~cycles ~clusters ~topology ~feature)

(* The paper's dual-cluster case, kept as wrappers: two point-to-point
   clusters, where the interconnect hop (one pitch) never binds. *)
let net_runtime_ratio ~single_cycles ~dual_cycles ~feature =
  net_runtime_ratio_n ~single_cycles ~cycles:dual_cycles ~clusters:2
    ~topology:Interconnect.Point_to_point ~feature

let net_speedup_pct ~single_cycles ~dual_cycles ~feature =
  100.0 -. (100.0 *. net_runtime_ratio ~single_cycles ~dual_cycles ~feature)
