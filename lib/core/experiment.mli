(** The paper's experimental flow (§4), end to end.

    For one benchmark program: profile it, produce the {e native} binary
    (cluster-oblivious allocation) and one {e rescheduled} binary per
    requested scheduler, generate the committed traces, and run

    - the native binary on the single-cluster machine (the baseline),
    - each binary on the dual-cluster machine,

    reporting the paper's percentage speedup/slowdown metric
    [100 - 100 * (C_dual / C_single)] per scheduler. *)

type run = {
  scheduler : string;  (** "none", "local", ... *)
  dual : Mcsim_cluster.Machine.result;
  speedup_pct : float;
  static_single : int;  (** static single-distributed machine instructions *)
  static_dual : int;
  spills : int;  (** live ranges spilled to memory *)
}

type comparison = {
  benchmark : string;
  trace_instrs : int;
  single : Mcsim_cluster.Machine.result;  (** native on the single-cluster machine *)
  runs : run list;  (** one per scheduler, in request order *)
}

val default_schedulers : (string * Mcsim_compiler.Pipeline.scheduler) list
(** [("none", Sched_none); ("local", default_local)] — the two columns of
    Table 2. *)

val scheduler_ident : Mcsim_compiler.Pipeline.scheduler -> string
(** The parameter-bearing identity string used as the [scheduler] field
    of a {!Trace_store.key} (e.g. ["local:2:0"]) — unlike
    {!Mcsim_compiler.Pipeline.scheduler_name}, distinct parameters give
    distinct idents, so differently-tuned schedulers never share a
    cached trace. *)

val scheduler_ident_n : clusters:int -> Mcsim_compiler.Pipeline.scheduler -> string
(** {!scheduler_ident} for a binary compiled for [clusters] clusters:
    the cluster count changes the partitioning and the residue-class
    register assignment, hence the trace, so non-default counts carry a
    ["@Ncl"] suffix (e.g. ["local:2:0@4cl"]). [~clusters:2] is exactly
    {!scheduler_ident}, so historical trace-store entries keep their
    keys. *)

val run_many :
  ?jobs:int ->
  ?max_instrs:int ->
  ?seed:int ->
  ?schedulers:(string * Mcsim_compiler.Pipeline.scheduler) list ->
  ?engine:Mcsim_cluster.Machine.engine ->
  ?sampling:Mcsim_sampling.Sampling.policy ->
  ?single_config:Mcsim_cluster.Machine.config ->
  ?dual_config:Mcsim_cluster.Machine.config ->
  ?retries:int ->
  ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) ->
  ?checkpoint:string ->
  ?trace_cache:string ->
  Mcsim_ir.Program.t list ->
  comparison list
(** Run the flow for many benchmarks, fanning the independent
    (benchmark × scheduler × machine-config) simulations out over
    [jobs] domains (default {!Mcsim_util.Pool.default_jobs}; [~jobs:1]
    runs serially). Results are in benchmark order regardless of [jobs].

    With [sampling], every machine simulation (single-cluster baseline
    and each dual run) is the sampled estimate
    ({!Mcsim_sampling.Sampling.estimate}) instead of a full detailed
    run: same [comparison] shape, cycles and IPC are the sampled
    extrapolations. Traces must be long enough for two complete sampling
    units (@raise Invalid_argument otherwise).

    [retries], [backoff] and [inject_fault] are per-unit durability
    knobs, forwarded to {!Mcsim_util.Pool.parallel_map_status}; a
    benchmark whose retries are exhausted raises its last exception
    after the rest of the sweep has finished (use {!run_many_status}
    for graceful degradation instead).

    [checkpoint] names a durable {!Checkpoint} directory: every
    completed unit (per-benchmark preparation metadata, the
    single-cluster baseline, each scheduler's dual run) is recorded
    there as it finishes and skipped on the next call, so an
    interrupted sweep resumes where it died and returns exactly what
    the uninterrupted sweep would have. A directory written by a
    different sweep (config, seed, engine, sampling, schedulers,
    benchmark set or trace budget) is refused with [Failure].

    Determinism: every simulation derives all randomness from [seed]
    (and, under [sampling], the policy's own seed) plus its task
    description, and tasks share only immutable data (the per-benchmark
    profile, native binary and trace), so the output is bit-for-bit
    identical for every [jobs] value — and, because cached units are
    exact recordings, for every interruption point.

    [trace_cache] names a {!Trace_store} directory: every trace the
    sweep needs (the native binary's and each rescheduled binary's) is
    looked up there by [(benchmark name, scheduler, seed, max_instrs)]
    and memory-mapped on a hit instead of being re-walked; misses are
    generated as usual and saved for the next run. Cached traces are
    byte-identical to freshly walked ones, so results are unchanged —
    the store assumes a benchmark name denotes one program. *)

val run_many_status :
  ?jobs:int ->
  ?max_instrs:int ->
  ?seed:int ->
  ?schedulers:(string * Mcsim_compiler.Pipeline.scheduler) list ->
  ?engine:Mcsim_cluster.Machine.engine ->
  ?sampling:Mcsim_sampling.Sampling.policy ->
  ?single_config:Mcsim_cluster.Machine.config ->
  ?dual_config:Mcsim_cluster.Machine.config ->
  ?retries:int ->
  ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) ->
  ?checkpoint:string ->
  ?trace_cache:string ->
  Mcsim_ir.Program.t list ->
  (comparison, string) result list
(** {!run_many}, degrading failure to data: a benchmark with a unit
    that exhausted its retries yields [Error message] (one line, from
    {!Mcsim_util.Pool.failure_message}) instead of aborting the sweep,
    and with [checkpoint] its completed units remain recorded so only
    the failed ones rerun on resume. *)

val run_benchmark :
  ?max_instrs:int ->
  ?seed:int ->
  ?schedulers:(string * Mcsim_compiler.Pipeline.scheduler) list ->
  ?engine:Mcsim_cluster.Machine.engine ->
  ?sampling:Mcsim_sampling.Sampling.policy ->
  ?single_config:Mcsim_cluster.Machine.config ->
  ?dual_config:Mcsim_cluster.Machine.config ->
  ?trace_cache:string ->
  Mcsim_ir.Program.t ->
  comparison
(** [run_many] for a single benchmark, serially. [max_instrs] (default
    120_000) bounds the committed trace length; [seed] (default 1)
    drives the workload's branch outcomes and address streams
    identically across binaries. *)

val speedup_of : comparison -> string -> float option
(** Speedup percentage of a named scheduler's run. *)
