(** Dynamic register reassignment (paper §2.1's hardware mechanism and
    §6's compiler-directed use of it), demonstrated end to end.

    The demo program has two sequential loop phases. In each phase, both
    data-flow strands keep reading one {e phase-specific} shared value —
    a scale factor in phase A, a threshold in phase B. The two shared
    live ranges are live across the whole program, so the register
    allocator must keep them in two different architectural registers,
    and a static assignment can make at most one of them global
    (sp/gp are already taken). With the reassignment hardware, the
    compiler directs the machine to make phase A's register global during
    phase A and phase B's during phase B, paying the drain-and-copy
    overhead at the phase boundary. *)

type outcome = {
  shared_a : Mcsim_isa.Reg.t;  (** register holding phase A's shared value *)
  shared_b : Mcsim_isa.Reg.t;
  static_result : Mcsim_cluster.Machine.result;
      (** the whole trace under the fixed even/odd + sp/gp assignment *)
  phased_result : Mcsim_cluster.Machine.result;
      (** per-phase assignments with the phase's shared register global *)
  moved : int;  (** registers copied at the phase boundary *)
}

val run :
  ?jobs:int -> ?phase_iterations:int ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  unit -> outcome
(** [phase_iterations] (default 4000) controls each phase's loop trip.
    [jobs] (default {!Mcsim_util.Pool.default_jobs}) runs the static and
    phased simulations on separate domains when > 1; the outcome is
    identical for every [jobs] value.

    [retries]/[backoff]/[inject_fault] are forwarded to
    {!Mcsim_util.Pool.parallel_map}; with [checkpoint], each of the two
    simulations is one durable unit in that directory, reloaded instead
    of rerun when the demo is resumed with the same
    [phase_iterations]. *)

val improvement_pct : outcome -> float
(** Cycle reduction of the phased run relative to the static run
    (positive = reassignment helped). *)

val render : outcome -> string
