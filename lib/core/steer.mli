(** The scheduler × steering × clusters sweep behind [mcsim steer] —
    the paper's closing static-vs-dynamic question (§6) measured with
    the {!Mcsim_cluster.Steering} policy family.

    Every cell compiles one benchmark for one compile-time scheduler
    ([none] — cluster-oblivious code — and the paper's [local]
    scheduler), partitions the machine into 2, 4 or 8 clusters, and runs
    the trace under one dispatch-time steering policy. The
    {!Mcsim_cluster.Steering.Static} cell of each (scheduler, cluster
    count) pair is the baseline the dynamic policies are scored against
    ([vs_static_pct]), and is bit-identical to the pre-steering machine.

    The sweep follows the two-stage fan-out of the other experiments:
    one job per benchmark for program + profile, then one deterministic,
    independently checkpointable job per matrix cell. *)

type cell = {
  scheduler : string;  (** {!Mcsim_compiler.Pipeline.scheduler_name} *)
  steering : Mcsim_cluster.Steering.policy;
  clusters : int;
  cycles : int;
  ipc : float;
  multi_fraction : float;  (** multi-distributed instructions / retired *)
  vs_static_pct : float;
      (** cycle improvement over the same (scheduler, clusters) cell
          under static steering; positive = fewer cycles *)
}

type row = {
  benchmark : string;
  cells : cell list;  (** ordered as {!matrix_points} *)
}

val cluster_counts : int list
(** [\[2; 4; 8\]] — steering needs somewhere to steer to. *)

val scheduler_names : string list
(** [\["none"; "local"\]]. *)

val matrix_points :
  (Mcsim_compiler.Pipeline.scheduler * int * Mcsim_cluster.Steering.policy) list
(** Every (scheduler, cluster count, steering policy) cell, schedulers
    outermost, {!Mcsim_cluster.Steering.all} innermost. *)

val run :
  ?jobs:int ->
  ?max_instrs:int ->
  ?seed:int ->
  ?benchmarks:Mcsim_workload.Spec92.benchmark list ->
  ?topology:Mcsim_cluster.Interconnect.topology ->
  ?retries:int ->
  ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) ->
  ?checkpoint:string ->
  unit ->
  row list
(** Defaults: all six benchmarks, 60k instructions, seed 1, the
    point-to-point interconnect, one job per core. [checkpoint] makes
    each cell a durable unit under the given directory (kind ["steer"]),
    skipped when already recorded, exactly as the other sweeps do. *)

val find_cell :
  row ->
  scheduler:string ->
  clusters:int ->
  steering:Mcsim_cluster.Steering.policy ->
  cell option

val render : row list -> string
(** Text matrix: one line per (benchmark, scheduler, cluster count),
    static cycles plus each dynamic policy's [vs_static_pct]. *)

val csv : row list -> string
(** One line per cell:
    [benchmark,scheduler,clusters,steering,cycles,ipc,multi_fraction,vs_static_pct]. *)

val cell_json : cell -> Mcsim_obs.Json.t
val rows_json : row list -> Mcsim_obs.Json.t
