(** One-line CLI error reporting.

    Library code signals expected failures with [Failure] (e.g. the
    machine's cycle-limit guard) and [Invalid_argument] (config
    validation); [Sys_error] covers unreadable/unwritable files. A
    command-line user should see one [mcsim: error: ...] line and exit
    code 1 for these, not a raw exception with a backtrace. Genuinely
    unexpected exceptions still escape unchanged — a backtrace is the
    right output for a bug. *)

val message : exn -> string option
(** The user-facing message for an expected exception ([Failure],
    [Invalid_argument], [Sys_error]); [None] for anything else. *)

val handle : (unit -> 'a) -> ('a, string) result
(** Run a thunk; expected exceptions become [Error "mcsim: error: ..."]
    (one line, no trailing newline), others re-raise. *)

val wrap : (unit -> 'a) -> 'a
(** {!handle}, with [Error] printed to stderr followed by [exit 1].
    Wrap every subcommand body in this. *)
