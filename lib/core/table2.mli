(** Table 2 of the paper: percentage speedup/slowdown of the dual-cluster
    machine relative to the single-cluster machine, for the native
    binaries ("none") and the binaries rescheduled by the local
    scheduler ("local"), over the six SPEC92-like benchmarks. *)

type row = {
  benchmark : string;
  none_pct : float;
  local_pct : float;
  single_cycles : int;
  none_cycles : int;
  local_cycles : int;
  none_replays : int;
  local_replays : int;
}

val paper : (string * float * float) list
(** The published Table-2 numbers: (benchmark, none %, local %). *)

val run :
  ?jobs:int ->
  ?max_instrs:int ->
  ?seed:int ->
  ?benchmarks:Mcsim_workload.Spec92.benchmark list ->
  ?engine:Mcsim_cluster.Machine.engine ->
  ?sampling:Mcsim_sampling.Sampling.policy ->
  ?single_config:Mcsim_cluster.Machine.config ->
  ?dual_config:Mcsim_cluster.Machine.config ->
  ?retries:int ->
  ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) ->
  ?checkpoint:string ->
  ?trace_cache:string ->
  ?result_cache:string ->
  unit ->
  row list
(** Default [max_instrs] 120_000, seed 1, all six benchmarks, the paper's
    8-way machine pair. Pass [Machine.single_cluster_4 ()] /
    [Machine.dual_cluster_2x2 ()] for the four-way evaluation the paper
    also ran. Runs take a few seconds per benchmark.

    [jobs] (default {!Mcsim_util.Pool.default_jobs}) fans the
    independent simulations out over that many domains via
    {!Experiment.run_many}; the rows are bit-for-bit identical for
    every [jobs] value. [engine] selects the detailed-model issue logic
    (default [`Wakeup]); rows are identical either way, so a mismatch
    between [~engine:`Scan] and the default is a simulator bug worth
    bisecting. [sampling] replaces every detailed machine run
    with its sampled estimate — cycle columns become extrapolations
    (see {!Mcsim_sampling.Sampling}).

    [retries]/[backoff]/[inject_fault]/[checkpoint] are the durability
    knobs of {!Experiment.run_many}: with [checkpoint], completed
    units are stored in that directory and an interrupted sweep, rerun
    with the same arguments, resumes and produces identical rows. A
    benchmark that fails all its attempts raises here — use
    {!run_report} to degrade it to a report entry instead.

    [trace_cache] names a {!Trace_store} directory (see
    {!Experiment.run_many}): traces are memory-mapped from there on
    repeat runs instead of being re-walked; rows are unchanged.

    [result_cache] names a {!Result_store} directory — the {e global}
    result cache the [mcsim serve] daemon also answers from. Each row
    is addressed by {!row_store_unit}; cached rows are decoded instead
    of recomputed (and reproduce byte-identical CSV), fresh rows are
    recorded for every later sweep. Unlike [checkpoint], the store is
    not pinned to one sweep identity, so any overlapping sweep anywhere
    reuses the rows. When both are given, the checkpoint governs which
    units run (see the note on {!run_report}) and fresh rows are still
    recorded in the store. *)

type report = {
  rows : row list;  (** in benchmark order, failed benchmarks omitted *)
  failed : (string * string) list;  (** (benchmark, one-line reason) *)
}

val run_report :
  ?jobs:int ->
  ?max_instrs:int ->
  ?seed:int ->
  ?benchmarks:Mcsim_workload.Spec92.benchmark list ->
  ?engine:Mcsim_cluster.Machine.engine ->
  ?sampling:Mcsim_sampling.Sampling.policy ->
  ?single_config:Mcsim_cluster.Machine.config ->
  ?dual_config:Mcsim_cluster.Machine.config ->
  ?retries:int ->
  ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) ->
  ?checkpoint:string ->
  ?trace_cache:string ->
  ?result_cache:string ->
  unit ->
  report
(** {!run}, degrading permanent per-benchmark failure to data: rows
    hold every benchmark that completed, [failed] names the ones that
    exhausted their retries (the sweep itself never aborts). With
    [checkpoint], rerunning finishes only what is missing; combined
    with [result_cache] the store pre-filter is disabled (the
    checkpoint identity pins the benchmark list, so a shrinking
    benchmark set would read as a stale checkpoint) and the store is
    write-through only. *)

(** {2 Row (de)serialization and the global result cache} *)

val row_json : row -> Mcsim_obs.Json.t
(** A row as a JSON object; floats round-trip losslessly
    ({!Mcsim_obs.Json.to_string} prints shortest representations), so
    [row_of_json (row_json r) = Some r]. *)

val row_of_json : Mcsim_obs.Json.t -> row option
(** Inverse of {!row_json}; [None] on anything it cannot have
    produced. *)

val row_store_unit :
  ?engine:Mcsim_cluster.Machine.engine ->
  ?sampling:Mcsim_sampling.Sampling.policy ->
  ?single_config:Mcsim_cluster.Machine.config ->
  ?dual_config:Mcsim_cluster.Machine.config ->
  max_instrs:int ->
  seed:int ->
  Mcsim_workload.Spec92.benchmark ->
  Mcsim_obs.Manifest.t * string
(** The {!Result_store} identity — [(manifest, unit key)] — of one
    Table-2 row: everything the row is a pure function of. The serve
    daemon and the batch [--result-cache] path both use this, which is
    why they share one cache. *)

val render : row list -> string
(** Side-by-side measured-vs-paper table. *)

val shape_holds : row list -> (bool * string) list
(** The qualitative claims the reproduction must preserve, each with a
    pass flag and description: every benchmark except ora improves under
    the local scheduler; ora degrades; the none column is a slowdown for
    every benchmark; the worst local slowdown is within a factor of two
    of the paper's 25%. *)
