module Machine = Mcsim_cluster.Machine
module Pipeline = Mcsim_compiler.Pipeline
module Walker = Mcsim_trace.Walker
module Pool = Mcsim_util.Pool
module Sampling = Mcsim_sampling.Sampling

type run = {
  scheduler : string;
  dual : Machine.result;
  speedup_pct : float;
  static_single : int;
  static_dual : int;
  spills : int;
}

type comparison = {
  benchmark : string;
  trace_instrs : int;
  single : Machine.result;
  runs : run list;
}

let default_schedulers =
  [ ("none", Pipeline.Sched_none); ("local", Pipeline.default_local) ]

(* Per-benchmark preparation shared by all of that benchmark's
   simulations: the profile, the native (cluster-oblivious) binary and
   its committed trace. Everything here is a pure function of
   (program, seed), so recomputing it would be value-identical — it is
   shared only to avoid repeating the work. *)
type prep = {
  p_prog : Mcsim_ir.Program.t;
  p_profile : Mcsim_ir.Profile.t;
  p_native : Pipeline.compiled;
  p_native_trace : Mcsim_isa.Instr.dynamic array;
}

let make_prep ~seed ~max_instrs prog =
  let profile = Walker.profile ~seed prog in
  let native = Pipeline.compile ~profile ~scheduler:Pipeline.Sched_none prog in
  let native_trace = Walker.trace ~seed ~max_instrs native.Pipeline.mach in
  { p_prog = prog; p_profile = profile; p_native = native; p_native_trace = native_trace }

(* One independent simulation: a benchmark's native binary on the
   single-cluster machine, or one (scheduler, dual-config) run. *)
type sim = Sim_single of int | Sim_sched of int * (string * Pipeline.scheduler)

type sim_out =
  | Out_single of Machine.result
  | Out_sched of {
      name : string;
      dual : Machine.result;
      static_single : int;
      static_dual : int;
      spills : int;
    }

(* One machine simulation: the full detailed model, or — when a sampling
   policy is given — the sampled estimate standing in for it. *)
let simulate ~engine ~sampling cfg trace =
  match sampling with
  | None -> Machine.run ?engine cfg trace
  | Some policy -> Sampling.estimate (Sampling.run ?engine ~policy cfg trace)

let run_sim ~seed ~max_instrs ~engine ~sampling ~single_config ~dual_config preps = function
  | Sim_single i ->
    Out_single (simulate ~engine ~sampling single_config preps.(i).p_native_trace)
  | Sim_sched (i, (name, scheduler)) ->
    let prep = preps.(i) in
    let compiled =
      match scheduler with
      | Pipeline.Sched_none -> prep.p_native
      | Pipeline.Sched_local _ | Pipeline.Sched_round_robin | Pipeline.Sched_random _ ->
        Pipeline.compile ~profile:prep.p_profile ~scheduler prep.p_prog
    in
    let trace =
      match scheduler with
      | Pipeline.Sched_none -> prep.p_native_trace
      | Pipeline.Sched_local _ | Pipeline.Sched_round_robin | Pipeline.Sched_random _ ->
        Walker.trace ~seed ~max_instrs compiled.Pipeline.mach
    in
    let dual = simulate ~engine ~sampling dual_config trace in
    let static_single, static_dual =
      Pipeline.dual_distribution_count dual_config.Machine.assignment compiled.Pipeline.mach
    in
    Out_sched
      { name;
        dual;
        static_single;
        static_dual;
        spills = List.length compiled.Pipeline.alloc.Mcsim_compiler.Regalloc.spilled_lrs }

let run_many ?(jobs = Pool.default_jobs ()) ?(max_instrs = 120_000) ?(seed = 1)
    ?(schedulers = default_schedulers) ?engine ?sampling ?single_config ?dual_config progs =
  let single_config =
    match single_config with Some c -> c | None -> Machine.single_cluster ()
  in
  let dual_config = match dual_config with Some c -> c | None -> Machine.dual_cluster () in
  (* Stage 1: per-benchmark preparation, one job per benchmark. *)
  let preps = Array.of_list (Pool.parallel_map ~jobs (make_prep ~seed ~max_instrs) progs) in
  (* Stage 2: every (benchmark x scheduler x machine-config) simulation is
     its own job. Job order fixes result order; which domain runs which
     job is irrelevant because jobs share nothing mutable. *)
  let sims =
    List.concat
      (List.mapi
         (fun i _ -> Sim_single i :: List.map (fun s -> Sim_sched (i, s)) schedulers)
         progs)
  in
  let outs =
    Pool.parallel_map ~jobs
      (run_sim ~seed ~max_instrs ~engine ~sampling ~single_config ~dual_config preps)
      sims
  in
  (* Reassemble: stage-2 results arrive grouped per benchmark, single
     first, then the schedulers in request order. *)
  let per_bench = 1 + List.length schedulers in
  List.mapi
    (fun i prep ->
      let outs = List.filteri (fun j _ -> j / per_bench = i) outs in
      match outs with
      | Out_single single :: sched_outs ->
        let runs =
          List.map
            (function
              | Out_sched { name; dual; static_single; static_dual; spills } ->
                { scheduler = name;
                  dual;
                  speedup_pct =
                    Mcsim_timing.Net_performance.speedup_pct
                      ~single_cycles:single.Machine.cycles ~dual_cycles:dual.Machine.cycles;
                  static_single;
                  static_dual;
                  spills }
              | Out_single _ -> assert false)
            sched_outs
        in
        { benchmark = prep.p_prog.Mcsim_ir.Program.name;
          trace_instrs = Array.length prep.p_native_trace;
          single;
          runs }
      | Out_sched _ :: _ | [] -> assert false)
    (Array.to_list preps)

let run_benchmark ?(max_instrs = 120_000) ?(seed = 1)
    ?(schedulers = default_schedulers) ?engine ?sampling ?single_config ?dual_config prog =
  match
    run_many ~jobs:1 ~max_instrs ~seed ~schedulers ?engine ?sampling ?single_config
      ?dual_config [ prog ]
  with
  | [ c ] -> c
  | _ -> assert false

let speedup_of c name =
  List.find_map (fun r -> if r.scheduler = name then Some r.speedup_pct else None) c.runs
