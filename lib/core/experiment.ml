module Machine = Mcsim_cluster.Machine
module Flat_trace = Mcsim_isa.Flat_trace
module Pipeline = Mcsim_compiler.Pipeline
module Walker = Mcsim_trace.Walker
module Pool = Mcsim_util.Pool
module Sampling = Mcsim_sampling.Sampling

type run = {
  scheduler : string;
  dual : Machine.result;
  speedup_pct : float;
  static_single : int;
  static_dual : int;
  spills : int;
}

type comparison = {
  benchmark : string;
  trace_instrs : int;
  single : Machine.result;
  runs : run list;
}

let default_schedulers =
  [ ("none", Pipeline.Sched_none); ("local", Pipeline.default_local) ]

(* Per-benchmark preparation shared by all of that benchmark's
   simulations: the profile, the native (cluster-oblivious) binary and
   its committed trace. Everything here is a pure function of
   (program, seed), so recomputing it would be value-identical — it is
   shared only to avoid repeating the work. *)
type prep = {
  p_prog : Mcsim_ir.Program.t;
  p_profile : Mcsim_ir.Profile.t;
  p_native : Pipeline.compiled;
  p_native_trace : Flat_trace.t;
}

(* Cache identity of a scheduler, parameters included ([scheduler_name]
   alone would alias differently-tuned local/random schedulers). *)
let scheduler_ident = function
  | Pipeline.Sched_none -> "none"
  | Pipeline.Sched_local { imbalance_threshold; window } ->
    Printf.sprintf "local:%d:%d" imbalance_threshold window
  | Pipeline.Sched_round_robin -> "round_robin"
  | Pipeline.Sched_random s -> Printf.sprintf "random:%d" s

(* The target cluster count changes the compiled binary (partitioning
   and residue-class register assignment), hence the trace. Non-default
   counts get their own trace-store keys; the historical 2-cluster keys
   are unchanged. *)
let scheduler_ident_n ~clusters scheduler =
  if clusters = 2 then scheduler_ident scheduler
  else Printf.sprintf "%s@%dcl" (scheduler_ident scheduler) clusters

(* The committed trace of [prog]'s binary under [scheduler]: from the
   trace store when present there, otherwise walked (and saved). Keyed by
   benchmark name — the store assumes a name identifies one program. *)
let trace_of ~trace_store ~clusters ~seed ~max_instrs ~benchmark ~scheduler walk =
  match trace_store with
  | None -> walk ()
  | Some store ->
    let key =
      { Trace_store.benchmark;
        scheduler = scheduler_ident_n ~clusters scheduler;
        seed;
        max_instrs }
    in
    fst (Trace_store.load_or_build store key walk)

let make_prep ?trace_store ~clusters ~seed ~max_instrs prog =
  let profile = Walker.profile ~seed prog in
  let native = Pipeline.compile ~clusters ~profile ~scheduler:Pipeline.Sched_none prog in
  let native_trace =
    trace_of ~trace_store ~clusters ~seed ~max_instrs
      ~benchmark:prog.Mcsim_ir.Program.name ~scheduler:Pipeline.Sched_none (fun () ->
        Walker.trace_flat ~seed ~max_instrs native.Pipeline.mach)
  in
  { p_prog = prog; p_profile = profile; p_native = native; p_native_trace = native_trace }

(* One independent simulation: a benchmark's native binary on the
   single-cluster machine, or one (scheduler, dual-config) run. *)
type sim = Sim_single of int | Sim_sched of int * (string * Pipeline.scheduler)

type sim_out =
  | Out_single of Machine.result
  | Out_sched of {
      name : string;
      dual : Machine.result;
      static_single : int;
      static_dual : int;
      spills : int;
    }

(* One machine simulation: the full detailed model, or — when a sampling
   policy is given — the sampled estimate standing in for it. *)
let simulate ~engine ~sampling cfg trace =
  match sampling with
  | None -> Machine.run_flat ?engine cfg trace
  | Some policy -> Sampling.estimate (Sampling.run_flat ?engine ~policy cfg trace)

let run_sim ~clusters ~seed ~max_instrs ~engine ~sampling ~single_config ~dual_config
    ~trace_store prep_of = function
  | Sim_single i ->
    Out_single (simulate ~engine ~sampling single_config (prep_of i).p_native_trace)
  | Sim_sched (i, (name, scheduler)) ->
    let prep = prep_of i in
    let compiled =
      match scheduler with
      | Pipeline.Sched_none -> prep.p_native
      | Pipeline.Sched_local _ | Pipeline.Sched_round_robin | Pipeline.Sched_random _ ->
        Pipeline.compile ~clusters ~profile:prep.p_profile ~scheduler prep.p_prog
    in
    let trace =
      match scheduler with
      | Pipeline.Sched_none -> prep.p_native_trace
      | Pipeline.Sched_local _ | Pipeline.Sched_round_robin | Pipeline.Sched_random _ ->
        trace_of ~trace_store ~clusters ~seed ~max_instrs
          ~benchmark:prep.p_prog.Mcsim_ir.Program.name ~scheduler (fun () ->
            Walker.trace_flat ~seed ~max_instrs compiled.Pipeline.mach)
    in
    let dual = simulate ~engine ~sampling dual_config trace in
    let static_single, static_dual =
      Pipeline.dual_distribution_count dual_config.Machine.assignment compiled.Pipeline.mach
    in
    Out_sched
      { name;
        dual;
        static_single;
        static_dual;
        spills = List.length compiled.Pipeline.alloc.Mcsim_compiler.Regalloc.spilled_lrs }

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

module Json = Mcsim_obs.Json
module Metrics = Mcsim_obs.Metrics

let ( let* ) = Option.bind

(* One durable unit per simulation, plus a per-benchmark meta record for
   the value that stage-1 preparation contributes to the output (the
   committed trace length). *)
let key_meta name = name ^ "/meta"
let key_single name = name ^ "/single"
let key_sched name sname = name ^ "/sched/" ^ sname

let open_store ~dir ~seed ~max_instrs ~engine ~sampling ~schedulers ~single_config
    ~dual_config progs =
  let manifest =
    Mcsim_obs.Manifest.make ?engine ~seed ?sampling
      ~benchmark:
        (String.concat "," (List.map (fun p -> p.Mcsim_ir.Program.name) progs))
      ~trace_instrs:max_instrs dual_config
  in
  (* The manifest pins the dual config, seed, engine, sampling policy and
     trace budget; everything else that changes the rows goes in here. *)
  let extra =
    [ ("single_config", Json.String (Mcsim_obs.Manifest.config_description single_config));
      ("schedulers", Json.List (List.map (fun (n, _) -> Json.String n) schedulers));
      ("sampling_seed",
       match sampling with
       | Some p -> Json.Int p.Sampling.seed
       | None -> Json.Null) ]
  in
  Checkpoint.open_ ~dir ~kind:"experiment" ~manifest ~extra ()

let cached_out store name = function
  | Sim_single _ ->
    let* d = Checkpoint.find store (key_single name) in
    let* r = Json.member "result" d in
    let* r = Metrics.result_of_json r in
    Some (Out_single r)
  | Sim_sched (_, (sname, _)) ->
    let* d = Checkpoint.find store (key_sched name sname) in
    let* dual = Json.member "result" d in
    let* dual = Metrics.result_of_json dual in
    let int k = Option.bind (Json.member k d) Json.get_int in
    let* static_single = int "static_single" in
    let* static_dual = int "static_dual" in
    let* spills = int "spills" in
    Some (Out_sched { name = sname; dual; static_single; static_dual; spills })

let record_out store bench out =
  match out with
  | Out_single r ->
    Checkpoint.record store ~key:(key_single bench) [ ("result", Metrics.result_json r) ]
  | Out_sched { name = sname; dual; static_single; static_dual; spills } ->
    Checkpoint.record store ~key:(key_sched bench sname)
      [ ("result", Metrics.result_json dual);
        ("static_single", Json.Int static_single);
        ("static_dual", Json.Int static_dual);
        ("spills", Json.Int spills) ]

(* ------------------------------------------------------------------ *)
(* The fan-out core                                                    *)
(* ------------------------------------------------------------------ *)

(* Like run_many, but durable: failure degrades to a per-benchmark
   [Error] instead of aborting the sweep, and with [checkpoint] every
   completed unit is stored and never recomputed. Cached units are
   decoded serially before any fan-out, so [retries]/[inject_fault]
   only ever apply to units that actually execute. *)
let run_many_core ~jobs ~max_instrs ~seed ~schedulers ~engine ~sampling ~single_config
    ~dual_config ~retries ~backoff ~inject_fault ~checkpoint ~trace_cache progs :
    (comparison, Pool.failure) result list =
  let single_config =
    match single_config with Some c -> c | None -> Machine.single_cluster ()
  in
  let dual_config = match dual_config with Some c -> c | None -> Machine.dual_cluster () in
  (* Binaries are scheduled for the partitioned machine they run on. *)
  let clusters = Mcsim_cluster.Assignment.num_clusters dual_config.Machine.assignment in
  let trace_store = Option.map (fun dir -> Trace_store.open_ ~dir) trace_cache in
  let store =
    Option.map
      (fun dir ->
        open_store ~dir ~seed ~max_instrs ~engine ~sampling ~schedulers ~single_config
          ~dual_config progs)
      checkpoint
  in
  let names = Array.of_list (List.map (fun p -> p.Mcsim_ir.Program.name) progs) in
  let n = Array.length names in
  let unit_specs i = Sim_single i :: List.map (fun s -> Sim_sched (i, s)) schedulers in
  (* Serial pre-pass: what the checkpoint already holds. *)
  let cached =
    Array.init n (fun i ->
        List.map
          (fun spec ->
            let out = Option.bind store (fun st -> cached_out st names.(i) spec) in
            (spec, out))
          (unit_specs i))
  in
  let cached_meta =
    Array.init n (fun i ->
        let* st = store in
        let* d = Checkpoint.find st (key_meta names.(i)) in
        Option.bind (Json.member "trace_instrs" d) Json.get_int)
  in
  let needs_prep i =
    Option.is_none cached_meta.(i)
    || List.exists (fun (_, out) -> Option.is_none out) cached.(i)
  in
  (* Stage 1: per-benchmark preparation, one job per benchmark that
     still has work to do. *)
  let prep_jobs =
    List.filteri (fun i _ -> needs_prep i) (List.mapi (fun i p -> (i, p)) progs)
  in
  let preps : prep option array = Array.make n None in
  let prep_fail : Pool.failure option array = Array.make n None in
  Pool.parallel_map_status ~retries ?backoff ?inject_fault ~jobs
    (fun (i, prog) ->
      let p = make_prep ?trace_store ~clusters ~seed ~max_instrs prog in
      Option.iter
        (fun st ->
          Checkpoint.record st ~key:(key_meta names.(i))
            [ ("trace_instrs", Json.Int (Flat_trace.length p.p_native_trace)) ])
        store;
      (i, p))
    prep_jobs
  |> List.iter2
       (fun (i, _) st ->
         match st with
         | Pool.Done (_, p) -> preps.(i) <- Some p
         | Pool.Failed f -> prep_fail.(i) <- Some f)
       prep_jobs;
  (* Stage 2: every still-missing (benchmark x scheduler x machine-config)
     simulation is its own job, for benchmarks whose preparation
     succeeded. Job order fixes result order; which domain runs which
     job is irrelevant because jobs share nothing mutable. *)
  let exec =
    List.concat
      (List.init n (fun i ->
           if Option.is_none preps.(i) then []
           else
             List.filter_map
               (fun (spec, out) -> if Option.is_none out then Some spec else None)
               cached.(i)))
  in
  let get_prep i = Option.get preps.(i) in
  let exec_statuses =
    Pool.parallel_map_status ~retries ?backoff ?inject_fault ~jobs
      (fun spec ->
        let out =
          run_sim ~clusters ~seed ~max_instrs ~engine ~sampling ~single_config
            ~dual_config ~trace_store get_prep spec
        in
        let bench = match spec with Sim_single i | Sim_sched (i, _) -> names.(i) in
        Option.iter (fun st -> record_out st bench out) store;
        out)
      exec
  in
  (* Reassemble in benchmark order: cached units and freshly computed
     ones interleave exactly as the exec list was built. next_fresh
     consumes the exec statuses positionally, so every consumer below
     sequences its recursion with explicit [let] bindings — OCaml
     evaluates [::] and constructor arguments right-to-left, which
     would otherwise visit the benchmarks backwards. *)
  let fresh = ref exec_statuses in
  let next_fresh () =
    match !fresh with
    | [] -> assert false
    | st :: tl ->
      fresh := tl;
      st
  in
  let assemble i =
    match prep_fail.(i) with
    | Some f ->
      (* A benchmark whose preparation exhausted its retries never ran
         any simulations, so it consumed nothing from the exec list. *)
      Error f
    | None -> (
      let statuses =
        let rec take = function
          | [] -> []
          | (_, Some out) :: tl -> Pool.Done out :: take tl
          | (_, None) :: tl ->
            let st = next_fresh () in
            st :: take tl
        in
        take cached.(i)
      in
      match
        List.find_map (function Pool.Failed f -> Some f | Pool.Done _ -> None) statuses
      with
      | Some f -> Error f
      | None -> (
        let outs =
          List.map (function Pool.Done o -> o | Pool.Failed _ -> assert false) statuses
        in
        match outs with
        | Out_single single :: sched_outs ->
          let runs =
            List.map
              (function
                | Out_sched { name; dual; static_single; static_dual; spills } ->
                  { scheduler = name;
                    dual;
                    speedup_pct =
                      Mcsim_timing.Net_performance.speedup_pct
                        ~single_cycles:single.Machine.cycles
                        ~dual_cycles:dual.Machine.cycles;
                    static_single;
                    static_dual;
                    spills }
                | Out_single _ -> assert false)
              sched_outs
          in
          let trace_instrs =
            match preps.(i) with
            | Some p -> Flat_trace.length p.p_native_trace
            | None -> Option.get cached_meta.(i)
          in
          Ok { benchmark = names.(i); trace_instrs; single; runs }
        | Out_sched _ :: _ | [] -> assert false))
  in
  let rec loop i =
    if i >= n then []
    else
      let c = assemble i in
      c :: loop (i + 1)
  in
  loop 0

let run_many_status ?(jobs = Pool.default_jobs ()) ?(max_instrs = 120_000) ?(seed = 1)
    ?(schedulers = default_schedulers) ?engine ?sampling ?single_config ?dual_config
    ?(retries = 0) ?backoff ?inject_fault ?checkpoint ?trace_cache progs =
  run_many_core ~jobs ~max_instrs ~seed ~schedulers ~engine ~sampling ~single_config
    ~dual_config ~retries ~backoff ~inject_fault ~checkpoint ~trace_cache progs
  |> List.map (Result.map_error Pool.failure_message)

let run_many ?(jobs = Pool.default_jobs ()) ?(max_instrs = 120_000) ?(seed = 1)
    ?(schedulers = default_schedulers) ?engine ?sampling ?single_config ?dual_config
    ?(retries = 0) ?backoff ?inject_fault ?checkpoint ?trace_cache progs =
  let results =
    run_many_core ~jobs ~max_instrs ~seed ~schedulers ~engine ~sampling ~single_config
      ~dual_config ~retries ~backoff ~inject_fault ~checkpoint ~trace_cache progs
  in
  (* As if the sweep had run serially: the first failing benchmark's
     exception propagates with its original backtrace. *)
  match List.find_map (function Error f -> Some f | Ok _ -> None) results with
  | Some f -> Printexc.raise_with_backtrace f.Pool.exn f.Pool.backtrace
  | None -> List.map (function Ok c -> c | Error _ -> assert false) results

let run_benchmark ?(max_instrs = 120_000) ?(seed = 1)
    ?(schedulers = default_schedulers) ?engine ?sampling ?single_config ?dual_config
    ?trace_cache prog =
  match
    run_many ~jobs:1 ~max_instrs ~seed ~schedulers ?engine ?sampling ?single_config
      ?dual_config ?trace_cache [ prog ]
  with
  | [ c ] -> c
  | _ -> assert false

let speedup_of c name =
  List.find_map (fun r -> if r.scheduler = name then Some r.speedup_pct else None) c.runs
