(** Result export: CSV and Markdown renderings of the experiment
    artifacts, for spreadsheets and notebooks. *)

val csv_escape : string -> string
(** RFC-4180 quoting, only when needed: fields containing a comma, a
    double quote, or a CR/LF are wrapped in double quotes with embedded
    quotes doubled; everything else passes through unchanged. *)

val table2_csv : Table2.row list -> string
(** Header + one row per benchmark: measured and paper numbers, cycle
    counts, replay counts. *)

val table2_markdown : Table2.row list -> string

val table2_json : Table2.row list -> Mcsim_obs.Json.t
(** The same columns as {!table2_csv}, one object per benchmark, for the
    [data] section of a {!Mcsim_obs.Metrics} snapshot ([null] paper
    numbers for benchmarks the paper does not report). *)

val ablation_csv : Ablation.sweep -> string

val counters_csv : Mcsim_cluster.Machine.result -> string
(** All named counters of one run, one per line. *)

val sampling_csv : Mcsim_sampling.Sampling.t -> string
(** One sampled run, one row per detailed interval: start position,
    warmup/measured cycles, measured instructions, per-interval IPC. *)

val sampling_summary_csv : (string * Mcsim_sampling.Sampling.t) list -> string
(** One row per (benchmark, sampled run): coverage, mean IPC, CI, and
    the extrapolated cycle count. *)

val net_csv : Cycle_time.net_row list -> string
