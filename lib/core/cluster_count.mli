(** Cluster-count scaling: the generalization the paper's "without loss of
    generality, two clusters" implies.

    For each benchmark, the same total resources (8 issue slots, 128
    dispatch-queue entries, 128+128 physical registers) are split across
    1, 2 or 4 clusters; each partitioned machine runs a binary rescheduled
    by the local scheduler targeting that cluster count. Cycle counts are
    then combined with the Palacharla model, where more clusters mean
    narrower issue and smaller windows — hence a faster clock:
    at 0.18 µm a 2-issue/32-window cluster clocks much faster than the
    8-issue/128-window monolith. *)

type row = {
  benchmark : string;
  cycles : int array;  (** indexed by configuration: 1, 2, 4 clusters *)
  cycles_pct : float array;  (** Table-2 metric vs the 1-cluster machine *)
  multi_fraction : float array;  (** dynamic multi-distributed fraction *)
  net_018_pct : float array;  (** net speedup at 0.18 µm, clock included *)
}

val cluster_counts : int list
(** [1; 2; 4]. *)

val run :
  ?jobs:int -> ?max_instrs:int -> ?seed:int ->
  ?benchmarks:Mcsim_workload.Spec92.benchmark list ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  unit -> row list
(** [jobs] (default {!Mcsim_util.Pool.default_jobs}) fans the
    independent (benchmark × cluster-count) compilations and simulations
    out over that many domains; the rows are identical for every [jobs]
    value.

    [retries]/[backoff]/[inject_fault] are forwarded to
    {!Mcsim_util.Pool.parallel_map}; with [checkpoint], every completed
    (benchmark, cluster-count) cell is durably recorded in that
    directory and skipped on rerun, so an interrupted sweep resumes
    with identical rows. A directory from a different sweep (seed,
    benchmarks, trace budget or machine config) is refused with
    [Failure]. *)

val render : row list -> string
