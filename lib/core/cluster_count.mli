(** Cluster-count × interconnect-topology scaling: the generalization
    the paper's "without loss of generality, two clusters" implies.

    For each benchmark, the same total resources (8 issue slots, 128
    dispatch-queue entries, 128+128 physical registers) are split across
    1, 2, 4 or 8 clusters wired point-to-point, as a ring or through a
    crossbar; each partitioned machine runs a binary rescheduled by the
    local scheduler targeting that cluster count. Cycle counts are then
    combined with the cycle-time model
    ({!Mcsim_timing.Net_performance.cluster_cycle_time}), where more
    clusters mean narrower issue and smaller windows — hence a faster
    clock — until the interconnect's longest hop binds it. *)

type cell = {
  clusters : int;
  topology : Mcsim_cluster.Interconnect.topology;
  cycles : int;
  cycles_pct : float;  (** Table-2 metric vs the 1-cluster machine *)
  multi_fraction : float;  (** dynamic multi-distributed fraction *)
  net_018_pct : float;  (** net speedup at 0.18 µm, clock included *)
}

type row = {
  benchmark : string;
  single_cycles : int;  (** the 1-cluster baseline *)
  cells : cell list;  (** one per {!matrix_points} entry, in order *)
}

val cluster_counts : int list
(** [[1; 2; 4; 8]]. *)

val matrix_points : (int * Mcsim_cluster.Interconnect.topology) list
(** The simulated (clusters, topology) grid: every topology at 2, 4 and
    8 clusters, plus the topology-less 1-cluster baseline. *)

val config_for : ?topology:Mcsim_cluster.Interconnect.topology -> int -> Mcsim_cluster.Machine.config
(** {!Mcsim_cluster.Machine.config_for_clusters}. *)

val run :
  ?jobs:int -> ?max_instrs:int -> ?seed:int ->
  ?benchmarks:Mcsim_workload.Spec92.benchmark list ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  unit -> row list
(** [jobs] (default {!Mcsim_util.Pool.default_jobs}) fans the
    independent (benchmark × clusters × topology) compilations and
    simulations out over that many domains; the rows are identical for
    every [jobs] value.

    [retries]/[backoff]/[inject_fault] are forwarded to
    {!Mcsim_util.Pool.parallel_map}; with [checkpoint], every completed
    (benchmark, clusters, topology) cell is durably recorded in that
    directory and skipped on rerun, so an interrupted sweep resumes
    with identical rows. A directory from a different sweep (seed,
    benchmarks, trace budget or machine config) is refused with
    [Failure]. *)

val find_cell :
  row -> clusters:int -> topology:Mcsim_cluster.Interconnect.topology -> cell option

val render : row list -> string

val rows_json : row list -> Mcsim_obs.Json.t
(** The BENCH_clusters.json payload: one object per benchmark with the
    full cell matrix. *)
