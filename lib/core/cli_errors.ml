let message = function
  | Failure msg -> Some msg
  | Invalid_argument msg -> Some msg
  | Sys_error msg -> Some msg
  | _ -> None

let handle f =
  match f () with
  | v -> Ok v
  | exception e -> (
    match message e with
    | Some msg -> Error (Printf.sprintf "mcsim: error: %s" msg)
    | None -> raise e)

let wrap f =
  match handle f with
  | Ok v -> v
  | Error line ->
    prerr_endline line;
    exit 1
