module Flat_trace = Mcsim_isa.Flat_trace
module BA1 = Bigarray.Array1

type t = { dir : string }

let dir t = t.dir

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  { dir }

type key = {
  benchmark : string;
  scheduler : string;
  seed : int;
  max_instrs : int;
}

let magic = "MCTRACE1"
let format_version = 2
let header_bytes = 32

let key_string k =
  Printf.sprintf "%s|%s|seed=%d|max=%d|v%d" k.benchmark k.scheduler k.seed k.max_instrs
    format_version

let sanitize key =
  let mapped =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c | _ -> '_')
      key
  in
  if String.length mapped <= 60 then mapped else String.sub mapped 0 60

let path t k =
  let key = key_string k in
  let digest = String.sub (Digest.to_hex (Digest.string key)) 0 8 in
  Filename.concat t.dir
    (Printf.sprintf "trace-%s-%s.mctrace" (sanitize (k.benchmark ^ "-" ^ k.scheduler)) digest)

let payload_bytes n = 16 * n

(* FNV-1a over the payload viewed as 64-bit words, through an int-kind
   Bigarray so every read is an unboxed native int — the loop neither
   boxes nor allocates and runs at memory speed, where an MD5 pass over
   the payload would cost more than the mmap'd load it protects.
   Order-sensitive: swapped or flipped words change the sum. The int
   view sees 63 of each word's 64 bits (OCaml ints are 63-bit), so a
   corruption confined to the top bit of a word is the one blind spot —
   truncation, version skew and everything else is caught. *)
let checksum_basis = 0x1403_7907_0462_5a1d
let checksum_prime = 0x100000001b3

let checksum_words (words : (int, Bigarray.int_elt, Bigarray.c_layout) BA1.t) =
  let h = ref checksum_basis in
  for i = 0 to BA1.dim words - 1 do
    h := (!h lxor BA1.unsafe_get words i) * checksum_prime land max_int
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Save                                                                *)
(* ------------------------------------------------------------------ *)

let map_i32 fd ~pos ~len shared =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int32 Bigarray.c_layout shared
       [| len |])

let map_i64 fd ~pos ~len shared =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int64 Bigarray.c_layout shared
       [| len |])

(* The whole 16·n-byte payload as 2·n 64-bit words, for checksumming. *)
let map_words fd ~len shared =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int header_bytes) Bigarray.int Bigarray.c_layout
       shared [| len |])

let save t k trace =
  let n = Flat_trace.length trace in
  let pcs, codes, aux = Flat_trace.unsafe_arrays trace in
  let final = path t k in
  let tmp =
    Printf.sprintf "%s.tmp-%d-%d" final (Unix.getpid ()) ((Domain.self () :> int))
  in
  let total = header_bytes + payload_bytes n in
  let fd = Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd total;
      let hdr = Bytes.make header_bytes '\000' in
      Bytes.blit_string magic 0 hdr 0 8;
      Bytes.set_int32_ne hdr 8 (Int32.of_int format_version);
      Bytes.set_int32_ne hdr 12 (Int32.of_int n);
      ignore (Unix.write fd hdr 0 header_bytes);
      let sum =
        if n = 0 then checksum_basis
        else begin
          (* The payload is blitted straight from the Bigarrays through a
             shared mapping — no per-instruction work, no heap copies —
             then checksummed from the same mapping, exactly as a loader
             will see it. *)
          BA1.blit pcs (map_i32 fd ~pos:header_bytes ~len:n true);
          BA1.blit codes (map_i32 fd ~pos:(header_bytes + (4 * n)) ~len:n true);
          BA1.blit aux (map_i64 fd ~pos:(header_bytes + (8 * n)) ~len:n true);
          checksum_words (map_words fd ~len:(2 * n) true)
        end
      in
      ignore (Unix.lseek fd 16 Unix.SEEK_SET);
      let b = Bytes.create 8 in
      Bytes.set_int64_ne b 0 (Int64.of_int sum);
      ignore (Unix.write fd b 0 8));
  Sys.rename tmp final

(* ------------------------------------------------------------------ *)
(* Load                                                                *)
(* ------------------------------------------------------------------ *)

(* Open, header-check, map copy-on-write and checksum the payload;
   [Some (f pcs codes aux n)] iff the file is a complete, uncorrupted
   current-version trace.  The mappings outlive the fd (and, being
   shared=false, never write back), so [f] may capture them. *)
let with_valid file f =
  match Unix.openfile file [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let hdr = Bytes.create header_bytes in
        let rec read_hdr off =
          if off >= header_bytes then true
          else
            match Unix.read fd hdr off (header_bytes - off) with
            | 0 -> false
            | r -> read_hdr (off + r)
            | exception Unix.Unix_error _ -> false
        in
        if not (read_hdr 0) then None
        else if Bytes.sub_string hdr 0 8 <> magic then None
        else if Int32.to_int (Bytes.get_int32_ne hdr 8) <> format_version then None
        else
          let n = Int32.to_int (Bytes.get_int32_ne hdr 12) in
          if
            n < 0
            || (Unix.fstat fd).Unix.st_size <> header_bytes + payload_bytes n
          then None
          else
            let stored = Int64.to_int (Bytes.get_int64_ne hdr 16) in
            let sum =
              if n = 0 then checksum_basis
              else checksum_words (map_words fd ~len:(2 * n) false)
            in
            if sum <> stored then None
            else if n = 0 then
              Some
                (f
                   (BA1.create Bigarray.int32 Bigarray.c_layout 0)
                   (BA1.create Bigarray.int32 Bigarray.c_layout 0)
                   (BA1.create Bigarray.int64 Bigarray.c_layout 0)
                   0)
            else
              let pcs = map_i32 fd ~pos:header_bytes ~len:n false in
              let codes = map_i32 fd ~pos:(header_bytes + (4 * n)) ~len:n false in
              let aux = map_i64 fd ~pos:(header_bytes + (8 * n)) ~len:n false in
              Some (f pcs codes aux n))

let find t k =
  let file = path t k in
  if not (Sys.file_exists file) then None
  else
    (* Copy-on-write mappings: the pages come from (and stay in) the
       page cache, shared across every process simulating from the same
       store. *)
    with_valid file (fun pcs codes aux _n -> Flat_trace.of_arrays pcs codes aux)

let load_or_build t k build =
  match find t k with
  | Some trace -> (trace, `Hit)
  | None ->
    let trace = build () in
    (try save t k trace with Sys_error _ | Unix.Unix_error _ -> ());
    (trace, `Miss)

(* ------------------------------------------------------------------ *)
(* Listing                                                             *)
(* ------------------------------------------------------------------ *)

type entry = { e_file : string; e_instrs : int; e_bytes : int; e_valid : bool }

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun name -> Filename.check_suffix name ".mctrace")
    |> List.sort String.compare
    |> List.map (fun name ->
           let file = Filename.concat t.dir name in
           let bytes = try (Unix.stat file).Unix.st_size with Unix.Unix_error _ -> 0 in
           match with_valid file (fun _ _ _ n -> n) with
           | Some n -> { e_file = name; e_instrs = n; e_bytes = bytes; e_valid = true }
           | None -> { e_file = name; e_instrs = 0; e_bytes = bytes; e_valid = false })
