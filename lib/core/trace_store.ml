module Flat_trace = Mcsim_isa.Flat_trace
module BA1 = Bigarray.Array1

type t = { dir : string }

let dir t = t.dir

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  { dir }

type key = {
  benchmark : string;
  scheduler : string;
  seed : int;
  max_instrs : int;
}

let magic = "MCTRACE1"
let format_version = 3
let header_bytes = 32

let key_string k =
  Printf.sprintf "%s|%s|seed=%d|max=%d|v%d" k.benchmark k.scheduler k.seed k.max_instrs
    format_version

let sanitize key =
  let mapped =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c | _ -> '_')
      key
  in
  if String.length mapped <= 60 then mapped else String.sub mapped 0 60

let path t k =
  let key = key_string k in
  let digest = String.sub (Digest.to_hex (Digest.string key)) 0 8 in
  Filename.concat t.dir
    (Printf.sprintf "trace-%s-%s.mctrace" (sanitize (k.benchmark ^ "-" ^ k.scheduler)) digest)

let payload_bytes n = 16 * n

(* FNV-1a over the payload viewed as 64-bit words, through an int-kind
   Bigarray so every read is an unboxed native int — the loop neither
   boxes nor allocates and runs at memory speed, where an MD5 pass over
   the payload would cost more than the mmap'd load it protects.
   Order-sensitive: swapped or flipped words change the sum. The int
   view sees 63 of each word's 64 bits (OCaml ints are 63-bit), so a
   corruption confined to the top bit of a word is the one blind spot —
   truncation, version skew and everything else is caught. *)
let checksum_basis = 0x1403_7907_0462_5a1d
let checksum_prime = 0x100000001b3

let checksum_words (words : (int, Bigarray.int_elt, Bigarray.c_layout) BA1.t) =
  let h = ref checksum_basis in
  for i = 0 to BA1.dim words - 1 do
    h := (!h lxor BA1.unsafe_get words i) * checksum_prime land max_int
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Save                                                                *)
(* ------------------------------------------------------------------ *)

let map_i32 fd ~pos ~len shared =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int32 Bigarray.c_layout shared
       [| len |])

let map_i64 fd ~pos ~len shared =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int64 Bigarray.c_layout shared
       [| len |])

(* The whole 16·n-byte payload as 2·n 64-bit words, for checksumming. *)
let map_words fd ~len shared =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int header_bytes) Bigarray.int Bigarray.c_layout
       shared [| len |])

let save t k trace =
  let n = Flat_trace.length trace in
  let pcs, codes, aux = Flat_trace.unsafe_arrays trace in
  let key = key_string k in
  let key_len = String.length key in
  let final = path t k in
  let tmp =
    Printf.sprintf "%s.tmp-%d-%d" final (Unix.getpid ()) ((Domain.self () :> int))
  in
  let total = header_bytes + payload_bytes n + key_len in
  let fd = Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  try
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd total;
        let hdr = Bytes.make header_bytes '\000' in
        Bytes.blit_string magic 0 hdr 0 8;
        Bytes.set_int32_ne hdr 8 (Int32.of_int format_version);
        Bytes.set_int32_ne hdr 12 (Int32.of_int n);
        Bytes.set_int32_ne hdr 24 (Int32.of_int key_len);
        ignore (Unix.write fd hdr 0 header_bytes);
        let sum =
          if n = 0 then checksum_basis
          else begin
            (* The payload is blitted straight from the Bigarrays through a
               shared mapping — no per-instruction work, no heap copies —
               then checksummed from the same mapping, exactly as a loader
               will see it. *)
            BA1.blit pcs (map_i32 fd ~pos:header_bytes ~len:n true);
            BA1.blit codes (map_i32 fd ~pos:(header_bytes + (4 * n)) ~len:n true);
            BA1.blit aux (map_i64 fd ~pos:(header_bytes + (8 * n)) ~len:n true);
            checksum_words (map_words fd ~len:(2 * n) true)
          end
        in
        ignore (Unix.lseek fd 16 Unix.SEEK_SET);
        let b = Bytes.create 8 in
        Bytes.set_int64_ne b 0 (Int64.of_int sum);
        ignore (Unix.write fd b 0 8);
        (* Full key as a trailer: the file name only carries a 32-bit
           digest prefix, so loads compare this string and treat a
           digest-prefix collision between two keys as a miss. *)
        ignore (Unix.lseek fd (header_bytes + payload_bytes n) Unix.SEEK_SET);
        ignore (Unix.write_substring fd key 0 key_len));
    Sys.rename tmp final
  with e ->
    (* Nothing made it to [final]; don't leave the temp file behind. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(* ------------------------------------------------------------------ *)
(* Load                                                                *)
(* ------------------------------------------------------------------ *)

(* Read exactly [len] bytes at [pos] into a fresh string, or [None] on a
   short or failed read. *)
let read_at fd ~pos ~len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> None
      | r -> go (off + r)
      | exception Unix.Unix_error _ -> None
  in
  match Unix.lseek fd pos Unix.SEEK_SET with
  | exception Unix.Unix_error _ -> None
  | _ -> go 0

(* Open, header-check, verify the trailer key against [expect] (when
   given), map copy-on-write and checksum the payload;
   [Some (f pcs codes aux n)] iff the file is a complete, uncorrupted
   current-version trace for the expected key.  The mappings outlive the
   fd (and, being shared=false, never write back), so [f] may capture
   them. *)
let with_valid ?expect file f =
  match Unix.openfile file [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        match read_at fd ~pos:0 ~len:header_bytes with
        | None -> None
        | Some hdr when String.sub hdr 0 8 <> magic -> None
        | Some hdr
          when Int32.to_int (String.get_int32_ne hdr 8) <> format_version -> None
        | Some hdr ->
          let n = Int32.to_int (String.get_int32_ne hdr 12) in
          let key_len = Int32.to_int (String.get_int32_ne hdr 24) in
          if
            n < 0 || key_len < 0
            || (Unix.fstat fd).Unix.st_size
               <> header_bytes + payload_bytes n + key_len
          then None
          else if
            (* The full key stored after the payload must match the key we
               are looking up — the file name's short digest alone could
               collide. *)
            match expect with
            | None -> false
            | Some e ->
              read_at fd ~pos:(header_bytes + payload_bytes n) ~len:key_len
              <> Some e
          then None
          else
            let stored = Int64.to_int (String.get_int64_ne hdr 16) in
            let sum =
              if n = 0 then checksum_basis
              else checksum_words (map_words fd ~len:(2 * n) false)
            in
            if sum <> stored then None
            else if n = 0 then
              Some
                (f
                   (BA1.create Bigarray.int32 Bigarray.c_layout 0)
                   (BA1.create Bigarray.int32 Bigarray.c_layout 0)
                   (BA1.create Bigarray.int64 Bigarray.c_layout 0)
                   0)
            else
              let pcs = map_i32 fd ~pos:header_bytes ~len:n false in
              let codes = map_i32 fd ~pos:(header_bytes + (4 * n)) ~len:n false in
              let aux = map_i64 fd ~pos:(header_bytes + (8 * n)) ~len:n false in
              Some (f pcs codes aux n))

let find t k =
  let file = path t k in
  if not (Sys.file_exists file) then None
  else
    (* Copy-on-write mappings: the pages come from (and stay in) the
       page cache, shared across every process simulating from the same
       store. *)
    with_valid ~expect:(key_string k) file (fun pcs codes aux _n ->
        Flat_trace.of_arrays pcs codes aux)

let load_or_build t k build =
  match find t k with
  | Some trace -> (trace, `Hit)
  | None ->
    let trace = build () in
    (try save t k trace with Sys_error _ | Unix.Unix_error _ -> ());
    (trace, `Miss)

(* ------------------------------------------------------------------ *)
(* Listing                                                             *)
(* ------------------------------------------------------------------ *)

type entry = { e_file : string; e_instrs : int; e_bytes : int; e_valid : bool }

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun name -> Filename.check_suffix name ".mctrace")
    |> List.sort String.compare
    |> List.map (fun name ->
           let file = Filename.concat t.dir name in
           let bytes = try (Unix.stat file).Unix.st_size with Unix.Unix_error _ -> 0 in
           match with_valid file (fun _ _ _ n -> n) with
           | Some n -> { e_file = name; e_instrs = n; e_bytes = bytes; e_valid = true }
           | None -> { e_file = name; e_instrs = 0; e_bytes = bytes; e_valid = false })

let prune_keep_latest t n =
  if n < 0 then invalid_arg "Trace_store.prune_keep_latest: n must be >= 0";
  let stamped =
    (match Sys.readdir t.dir with exception Sys_error _ -> [] | names -> Array.to_list names)
    |> List.filter (fun name -> Filename.check_suffix name ".mctrace")
    |> List.map (fun name ->
           let mtime =
             try (Unix.stat (Filename.concat t.dir name)).Unix.st_mtime
             with Unix.Unix_error _ -> 0.0
           in
           (name, mtime))
  in
  (* Newest first; equal mtimes (a coarse-grained clock) break by name
     so the survivor set is deterministic. *)
  let ordered =
    List.sort
      (fun (n1, t1) (n2, t2) ->
        match compare t2 t1 with 0 -> String.compare n1 n2 | c -> c)
      stamped
  in
  let doomed = List.filteri (fun i _ -> i >= n) ordered |> List.map fst in
  List.iter
    (fun name -> try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
    doomed;
  List.sort String.compare doomed
