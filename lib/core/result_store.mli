(** Content-addressed global cache of per-unit sweep results.

    A {!Checkpoint} directory caches the units of {e one} sweep: its
    [sweep.json] pins a single identity, and unit files are keyed only
    within it. A result store drops that restriction: every entry
    carries its own identity — the {!Mcsim_obs.Manifest} of the run
    that produced it plus a unit-key string — and is stored under the
    MD5 digest of that identity, so one directory serves every sweep
    anywhere (the batch CLI's [--result-cache] and the [mcsim serve]
    daemon share it). A unit is a pure function of its identity, so a
    hit anywhere is a correct answer everywhere.

    Entries use the exact {!Mcsim_obs.Metrics} unit-snapshot schema a
    checkpoint uses ([schema_version]/[kind = "unit"]/[manifest]/[data]
    with [data.unit_key]), and {!find} falls back to the checkpoint
    file naming when the content-addressed name is absent — an old
    [--checkpoint] directory is readable as a result cache for the
    identities it recorded.

    Safety mirrors {!Checkpoint} and {!Trace_store}: writes are atomic
    (temp file + rename in the same directory), reads verify the stored
    identity against the requested one (a digest collision or a file
    copied between stores reads as a miss, never as the wrong result),
    and anything unreadable or corrupt decodes as a miss and is simply
    recomputed and overwritten. A [t] is domain-safe: lookups and
    writes serialize on an internal mutex. *)

type t

val open_ : dir:string -> t
(** Create [dir] (and parents) if needed. *)

val dir : t -> string

val identity : manifest:Mcsim_obs.Manifest.t -> key:string -> string
(** The canonical identity string of a unit: the minified JSON of the
    manifest's identity ({!Mcsim_obs.Manifest.identity_json} — the
    creation timestamp does not participate) paired with [key]. *)

val digest : manifest:Mcsim_obs.Manifest.t -> key:string -> string
(** MD5 hex of {!identity} — the content address; entry files are named
    [res-<digest>.json]. *)

val find : t -> manifest:Mcsim_obs.Manifest.t -> key:string -> Mcsim_obs.Json.t option
(** The [data] object recorded for this identity ([unit_key] included),
    or [None] on a miss. Tries [res-<digest>.json] first, then the
    checkpoint-format basename ({!Checkpoint.unit_basename}); either
    way the stored manifest identity and unit key must equal the
    requested ones. *)

val record :
  t -> manifest:Mcsim_obs.Manifest.t -> key:string -> (string * Mcsim_obs.Json.t) list -> unit
(** Durably store unit [fields] under this identity (atomic write;
    re-recording overwrites). *)

(** One stored entry, as listed by {!entries}. Both content-addressed
    [res-*.json] files and checkpoint-format [unit-*.json] files are
    listed; [sweep.json]/[command.json] are not entries. *)
type entry = {
  e_file : string;  (** basename within the store *)
  e_digest : string;  (** identity digest recomputed from the content; "-" if invalid *)
  e_kind : string;  (** first [/]-segment of the unit key (["table2"], ["run"], ...) *)
  e_benchmark : string;  (** the manifest's benchmark, "-" if unset *)
  e_bytes : int;  (** file size *)
  e_valid : bool;  (** decodes as a unit snapshot with a unit key *)
}

val entries : t -> entry list
(** Every [res-*.json] and [unit-*.json] file, sorted by name. *)

val prune_keep_latest : t -> int -> string list
(** [prune_keep_latest t n] deletes all but the [n] most recently
    modified entry files (ties broken by name; identity records like
    [sweep.json] are never touched) and returns the removed basenames,
    sorted — the knob that bounds on-disk cache growth.
    @raise Invalid_argument when [n < 0]. *)
