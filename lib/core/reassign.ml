module Il = Mcsim_ir.Il
module Builder = Mcsim_ir.Program.Builder
module Op = Mcsim_isa.Op_class
module Reg = Mcsim_isa.Reg
module Machine = Mcsim_cluster.Machine
module Assignment = Mcsim_cluster.Assignment
module Pipeline = Mcsim_compiler.Pipeline

type outcome = {
  shared_a : Reg.t;
  shared_b : Reg.t;
  static_result : Machine.result;
  phased_result : Machine.result;
  moved : int;
}

(* entry -> loop A -> loop B -> tail(halt). Each loop body runs two
   independent strands that both consume the phase's shared value. The
   shared values are initialized at entry and still read in the tail, so
   their live ranges span the program and must get distinct registers. *)
let build ~trip =
  let b = Builder.create ~name:"reassign-demo" in
  let lr n = Builder.fresh_lr b ~name:n Il.Bank_int in
  let shared_a = lr "shared_a" and shared_b = lr "shared_b" in
  let strands_a = List.init 6 (fun i -> lr (Printf.sprintf "a%d" i)) in
  let strands_b = List.init 6 (fun i -> lr (Printf.sprintf "b%d" i)) in
  let final = lr "final" in
  let add dst srcs = Il.instr ~op:Op.Int_other ~srcs ~dst () in
  (* Six parallel one-cycle strands per phase, each reading the shared
     value at every step: the loop saturates the issue bandwidth, so the
     extra issue slots consumed by forwarding slaves are what hurts. *)
  let strand_steps shared strands =
    List.concat_map (fun x -> [ add x [ x; shared ]; add x [ x; shared ] ]) strands
  in
  let exit_blk =
    Builder.add_block b [ add final [ shared_a; shared_b ] ] Il.Halt
  in
  let loop_b = Builder.reserve_block b in
  Builder.define_block b loop_b
    (strand_steps shared_b strands_b)
    (Il.Cond { src = Some (List.hd strands_b); model = Mcsim_ir.Branch_model.Loop { trip };
               taken = loop_b; not_taken = exit_blk });
  let loop_a = Builder.reserve_block b in
  Builder.define_block b loop_a
    (strand_steps shared_a strands_a)
    (Il.Cond { src = Some (List.hd strands_a); model = Mcsim_ir.Branch_model.Loop { trip };
               taken = loop_a; not_taken = loop_b });
  let entry =
    Builder.add_block b
      (add shared_a [] :: add shared_b []
       :: List.map (fun x -> add x []) (strands_a @ strands_b))
      (Il.Jump loop_a)
  in
  (Builder.finish b ~entry, shared_a, shared_b, loop_b)

let run ?jobs ?(phase_iterations = 4000) ?retries ?backoff ?inject_fault ?checkpoint ()
    =
  let prog, sa, sb, loop_b_id = build ~trip:phase_iterations in
  let profile = Mcsim_trace.Walker.profile prog in
  let c = Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog in
  let reg_of lr = Option.get c.Pipeline.alloc.Mcsim_compiler.Regalloc.reg_of.(lr) in
  (* Spill code may have renumbered nothing (no pressure here), but go
     through the allocator's table to stay honest. *)
  let shared_a = reg_of sa and shared_b = reg_of sb in
  let max_instrs = 30 * phase_iterations in
  let trace = Mcsim_trace.Walker.trace ~max_instrs c.Pipeline.mach in
  let cfg = Machine.dual_cluster () in
  (* Split the committed trace at the first instruction of loop B. *)
  let boundary_pc = c.Pipeline.mach.Mcsim_compiler.Mach_prog.block_pc.(loop_b_id) in
  let split =
    let rec find i =
      if i >= Array.length trace then Array.length trace
      else if trace.(i).Mcsim_isa.Instr.pc >= boundary_pc
              && trace.(i).Mcsim_isa.Instr.pc
                 < boundary_pc
                   + Array.length
                       c.Pipeline.mach.Mcsim_compiler.Mach_prog.blocks.(loop_b_id)
                         .Mcsim_compiler.Mach_prog.instrs
                   + 1
      then i
      else find (i + 1)
    in
    find 0
  in
  let reseq arr = Array.mapi (fun i d -> { d with Mcsim_isa.Instr.seq = i }) arr in
  let phase_a = reseq (Array.sub trace 0 split) in
  let phase_b = reseq (Array.sub trace split (Array.length trace - split)) in
  let asg_a =
    Assignment.create ~num_clusters:2 ~globals:[ Reg.sp; Reg.gp; shared_a ] ()
  in
  let asg_b =
    Assignment.create ~num_clusters:2 ~globals:[ Reg.sp; Reg.gp; shared_b ] ()
  in
  (* The static and phased simulations are independent; fan them out.
     With a checkpoint, each is one durable unit — the surrounding
     build/compile/trace work reruns on resume (it is deterministic and
     cheap next to the simulations) while completed runs are reloaded. *)
  let jobs = match jobs with Some j -> j | None -> Mcsim_util.Pool.default_jobs () in
  let module Json = Mcsim_obs.Json in
  let store =
    Option.map
      (fun dir ->
        let manifest = Mcsim_obs.Manifest.make ~trace_instrs:max_instrs cfg in
        let extra = [ ("phase_iterations", Json.Int phase_iterations) ] in
        Checkpoint.open_ ~dir ~kind:"reassign" ~manifest ~extra ())
      checkpoint
  in
  let find key =
    Option.bind store (fun st ->
        Option.bind (Checkpoint.find st key) (fun d ->
            Option.bind (Json.member "result" d) Mcsim_obs.Metrics.result_of_json))
  in
  let cached = List.map (fun (k, sim) -> (k, sim, find k)) [
      ("static", `Static); ("phased", `Phased) ] in
  let exec = List.filter_map (fun (k, sim, hit) -> if hit = None then Some (k, sim) else None) cached in
  let fresh =
    Mcsim_util.Pool.parallel_map ?retries ?backoff ?inject_fault ~jobs
      (fun (key, sim) ->
        let r =
          match sim with
          | `Static -> Machine.run cfg trace
          | `Phased -> Machine.run_phased cfg [ (asg_a, phase_a); (asg_b, phase_b) ]
        in
        Option.iter
          (fun st ->
            Checkpoint.record st ~key [ ("result", Mcsim_obs.Metrics.result_json r) ])
          store;
        r)
      exec
  in
  let rec merge cached fresh =
    match cached with
    | [] -> []
    | (_, _, Some r) :: tl -> r :: merge tl fresh
    | (_, _, None) :: tl -> (
      match fresh with [] -> assert false | r :: rest -> r :: merge tl rest)
  in
  let static_result, phased_result =
    match merge cached fresh with [ s; p ] -> (s, p) | _ -> assert false
  in
  { shared_a; shared_b; static_result; phased_result;
    moved = List.length (Machine.moved_registers asg_a asg_b) }

let improvement_pct o =
  100.0
  -. (100.0 *. float_of_int o.phased_result.Machine.cycles
      /. float_of_int (max 1 o.static_result.Machine.cycles))

let render o =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Dynamic register reassignment (paper sections 2.1 and 6)\n";
  Buffer.add_string buf
    (Printf.sprintf
       "phase A's shared value lives in %s, phase B's in %s; a static assignment\n\
        can make neither global (sp/gp are taken), so every other strand pays an\n\
        inter-cluster operand forward per use.\n"
       (Reg.to_string o.shared_a) (Reg.to_string o.shared_b));
  Buffer.add_string buf
    (Printf.sprintf "  static even/odd + sp,gp:   %7d cycles, %6d dual-distributed\n"
       o.static_result.Machine.cycles o.static_result.Machine.dual_distributed);
  Buffer.add_string buf
    (Printf.sprintf
       "  per-phase reassignment:    %7d cycles, %6d dual-distributed (%d registers \
        copied at the boundary)\n"
       o.phased_result.Machine.cycles o.phased_result.Machine.dual_distributed o.moved);
  Buffer.add_string buf
    (Printf.sprintf "  improvement: %+.1f%% cycles\n" (improvement_pct o));
  Buffer.contents buf
