module Machine = Mcsim_cluster.Machine

(* A row is one copy of one instruction; marks are (cycle, symbol). The
   latest mark wins a cell, except that more "significant" later symbols
   never overwrite (we just append in arrival order and render last). *)
type row = {
  r_seq : int;
  r_role : Machine.role option;  (* None for whole-instruction marks *)
  mutable r_cluster : int;
  mutable r_marks : (int * char) list;
}

type t = {
  rows : (int * Machine.role option, row) Hashtbl.t;
  mutable order : (int * Machine.role option) list;  (* creation order, reversed *)
}

let create () = { rows = Hashtbl.create 64; order = [] }

let row t seq role =
  let key = (seq, role) in
  match Hashtbl.find_opt t.rows key with
  | Some r -> r
  | None ->
    let r = { r_seq = seq; r_role = role; r_cluster = -1; r_marks = [] } in
    Hashtbl.add t.rows key r;
    t.order <- key :: t.order;
    r

let mark ?cluster t seq role cycle symbol =
  let r = row t seq role in
  (match cluster with Some c -> r.r_cluster <- c | None -> ());
  r.r_marks <- (cycle, symbol) :: r.r_marks

let observer t = function
  | Machine.Ev_fetch { cycle; seq } -> mark t seq None cycle 'F'
  | Machine.Ev_dispatch { cycle; seq; cluster; role; _ } ->
    mark ~cluster t seq (Some role) cycle 'D'
  | Machine.Ev_issue { cycle; seq; cluster; role } ->
    mark ~cluster t seq (Some role) cycle 'I'
  | Machine.Ev_operand_forward { cycle; seq; _ } ->
    mark t seq (Some Machine.Slave_copy) cycle 'o'
  | Machine.Ev_result_forward { cycle; seq; _ } ->
    mark t seq (Some Machine.Master_copy) cycle 'r'
  | Machine.Ev_suspend { cycle; seq; _ } -> mark t seq (Some Machine.Slave_copy) cycle 's'
  | Machine.Ev_wakeup { cycle; seq; _ } -> mark t seq (Some Machine.Slave_copy) cycle 'w'
  | Machine.Ev_writeback { cycle; seq; role; _ } -> mark t seq (Some role) cycle 'W'
  | Machine.Ev_retire { cycle; seq } -> mark t seq None cycle 'R'
  | Machine.Ev_replay { cycle; seq } -> mark t seq None cycle 'X'

let record ?max_cycles cfg trace =
  let t = create () in
  let result = Machine.run ~on_event:(observer t) ?max_cycles cfg trace in
  (t, result)

let render ?(first_seq = min_int) ?(last_seq = max_int) ?(max_width = 100) t =
  if max_width <= 0 then
    invalid_arg (Printf.sprintf "Timeline.render: max_width = %d (must be > 0)" max_width);
  let keys =
    List.rev t.order
    |> List.filter (fun (seq, _) -> seq >= first_seq && seq <= last_seq)
    |> List.sort (fun (s1, r1) (s2, r2) -> if s1 <> s2 then compare s1 s2 else compare r1 r2)
  in
  let rows = List.map (Hashtbl.find t.rows) keys in
  let t0 =
    List.fold_left
      (fun acc r -> List.fold_left (fun acc (c, _) -> min acc c) acc r.r_marks)
      max_int rows
  in
  if t0 = max_int then "(no events)\n"
  else begin
    let t1 =
      List.fold_left
        (fun acc r -> List.fold_left (fun acc (c, _) -> max acc c) acc r.r_marks)
        t0 rows
    in
    let width = min max_width (t1 - t0 + 1) in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "cycles %d..%d\n" t0 (t0 + width - 1));
    List.iter
      (fun r ->
        let label =
          match r.r_role with
          | None -> Printf.sprintf "#%-4d %-9s" r.r_seq ""
          | Some role ->
            Printf.sprintf "#%-4d %-6s %s" r.r_seq (Machine.role_to_string role)
              (if r.r_cluster >= 0 then Printf.sprintf "C%d" r.r_cluster else "  ")
        in
        let cells = Bytes.make width '.' in
        List.iter
          (fun (c, sym) ->
            let i = c - t0 in
            if i >= 0 && i < width then Bytes.set cells i sym)
          (List.rev r.r_marks);
        Buffer.add_string buf (Printf.sprintf "%-16s %s\n" label (Bytes.to_string cells)))
      rows;
    Buffer.contents buf
  end
