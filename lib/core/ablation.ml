module Machine = Mcsim_cluster.Machine
module Assignment = Mcsim_cluster.Assignment
module Pipeline = Mcsim_compiler.Pipeline
module Walker = Mcsim_trace.Walker
module Spec92 = Mcsim_workload.Spec92
module Pool = Mcsim_util.Pool

type point = {
  label : string;
  dual_cycles : int;
  speedup_pct : float;
  replays : int;
  dual_distributed : int;
}

type sweep = {
  sweep_name : string;
  benchmark : string;
  points : point list;
}

type ctx = {
  prog : Mcsim_ir.Program.t;
  profile : Mcsim_ir.Profile.t;
  native : Pipeline.compiled;
  native_trace : Mcsim_isa.Instr.dynamic array;
  single_cycles : int;
  max_instrs : int;
  bench_name : string;
  mutable local : (Pipeline.compiled * Mcsim_isa.Instr.dynamic array) option;
      (* memoized local-scheduler binary and trace, compiled on first
         use and shared by every sweep running on this context *)
}

let make_ctx ?(max_instrs = 60_000) bench =
  let prog = Spec92.program bench in
  let profile = Walker.profile prog in
  let native = Pipeline.compile ~profile ~scheduler:Pipeline.Sched_none prog in
  let native_trace = Walker.trace ~max_instrs native.Pipeline.mach in
  let single = Machine.run (Machine.single_cluster ()) native_trace in
  { prog; profile; native; native_trace; single_cycles = single.Machine.cycles;
    max_instrs; bench_name = Spec92.name bench; local = None }

let get_ctx ?ctx ?max_instrs bench =
  match ctx with Some c -> c | None -> make_ctx ?max_instrs bench

let point_of ctx label (r : Machine.result) =
  { label;
    dual_cycles = r.Machine.cycles;
    speedup_pct =
      Mcsim_timing.Net_performance.speedup_pct ~single_cycles:ctx.single_cycles
        ~dual_cycles:r.Machine.cycles;
    replays = r.Machine.replays;
    dual_distributed = r.Machine.dual_distributed }

(* ------------------------------------------------------------------ *)
(* Durable point fan-out                                               *)
(* ------------------------------------------------------------------ *)

module Json = Mcsim_obs.Json

let ( let* ) = Option.bind

let point_json p =
  [ ("label", Json.String p.label);
    ("dual_cycles", Json.Int p.dual_cycles);
    ("speedup_pct", Json.Float p.speedup_pct);
    ("replays", Json.Int p.replays);
    ("dual_distributed", Json.Int p.dual_distributed) ]

let point_of_json d =
  let int k = Option.bind (Json.member k d) Json.get_int in
  let* label = Option.bind (Json.member "label" d) Json.get_string in
  let* dual_cycles = int "dual_cycles" in
  let* speedup_pct = Option.bind (Json.member "speedup_pct" d) Json.get_float in
  let* replays = int "replays" in
  let* dual_distributed = int "dual_distributed" in
  Some { label; dual_cycles; speedup_pct; replays; dual_distributed }

(* Every sweep fans its points out through here: one durable unit per
   point, keyed by label. The checkpoint identity is the sweep name,
   benchmark, trace budget and exact label set (the labels encode the
   swept parameter values), plus the mcsim version via the manifest —
   anything else that could change a point's value changes one of
   those. Cached points are decoded serially before the fan-out, so
   [retries]/[inject_fault] apply only to points that actually run. *)
let run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name ~benchmark
    ~max_instrs labelled =
  let store =
    Option.map
      (fun dir ->
        let manifest =
          Mcsim_obs.Manifest.make ~benchmark ~trace_instrs:max_instrs
            (Machine.dual_cluster ())
        in
        let extra =
          [ ("sweep", Json.String sweep_name);
            ("labels", Json.List (List.map (fun (l, _) -> Json.String l) labelled)) ]
        in
        Checkpoint.open_ ~dir ~kind:"ablation" ~manifest ~extra ())
      checkpoint
  in
  let cached =
    List.map
      (fun (label, thunk) ->
        let hit =
          let* st = store in
          let* d = Checkpoint.find st label in
          point_of_json d
        in
        (label, thunk, hit))
      labelled
  in
  let exec = List.filter_map (fun (l, t, hit) -> if hit = None then Some (l, t) else None) cached in
  let outs =
    Pool.parallel_map ?retries ?backoff ?inject_fault ~jobs
      (fun (label, thunk) ->
        let p = thunk () in
        Option.iter (fun st -> Checkpoint.record st ~key:label (point_json p)) store;
        p)
      exec
  in
  let rec merge cached outs =
    match cached with
    | [] -> []
    | (_, _, Some p) :: tl -> p :: merge tl outs
    | (_, _, None) :: tl -> (
      match outs with
      | [] -> assert false
      | p :: rest -> p :: merge tl rest)
  in
  merge cached outs

(* The local-scheduler binary is compiled and traced at most once per
   context. Callers force it before fanning points out over domains, so
   the memo write never races. *)
let local_compiled ctx =
  match ctx.local with
  | Some c -> c
  | None ->
    let c = Pipeline.compile ~profile:ctx.profile ~scheduler:Pipeline.default_local ctx.prog in
    let trace = Walker.trace ~max_instrs:ctx.max_instrs c.Pipeline.mach in
    ctx.local <- Some (c, trace);
    (c, trace)

let local_trace ctx = snd (local_compiled ctx)

let transfer_buffers ?jobs ?ctx ?max_instrs ?(sizes = [ 2; 4; 8; 16; 32 ]) ?retries
    ?backoff ?inject_fault ?checkpoint bench =
  let ctx = get_ctx ?ctx ?max_instrs bench in
  let trace = local_trace ctx in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let sweep_name = "transfer-buffer entries per cluster (local scheduler)" in
  let points =
    run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
      ~benchmark:ctx.bench_name ~max_instrs:ctx.max_instrs
      (List.map
         (fun n ->
           let label = Printf.sprintf "%d entries" n in
           ( label,
             fun () ->
               let cfg =
                 { (Machine.dual_cluster ()) with
                   Machine.operand_buffer_entries = n;
                   result_buffer_entries = n }
               in
               point_of ctx label (Machine.run cfg trace) ))
         sizes)
  in
  { sweep_name; benchmark = ctx.bench_name; points }

let imbalance_threshold ?jobs ?ctx ?max_instrs ?(thresholds = [ 1; 2; 4; 8; 16; 32 ])
    ?retries ?backoff ?inject_fault ?checkpoint bench =
  let ctx = get_ctx ?ctx ?max_instrs bench in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let sweep_name = "local-scheduler imbalance threshold" in
  let points =
    run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
      ~benchmark:ctx.bench_name ~max_instrs:ctx.max_instrs
      (List.map
         (fun t ->
           let label = Printf.sprintf "threshold %d" t in
           ( label,
             fun () ->
               let c =
                 Pipeline.compile ~profile:ctx.profile
                   ~scheduler:(Pipeline.Sched_local { imbalance_threshold = t; window = 0 })
                   ctx.prog
               in
               let trace = Walker.trace ~max_instrs:ctx.max_instrs c.Pipeline.mach in
               point_of ctx label (Machine.run (Machine.dual_cluster ()) trace) ))
         thresholds)
  in
  { sweep_name; benchmark = ctx.bench_name; points }

let partitioners ?jobs ?ctx ?max_instrs ?retries ?backoff ?inject_fault ?checkpoint bench
    =
  let ctx = get_ctx ?ctx ?max_instrs bench in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  ignore (local_compiled ctx);
  let run_sched scheduler label () =
    let trace =
      match scheduler with
      | Pipeline.Sched_none -> ctx.native_trace
      | Pipeline.Sched_local { imbalance_threshold = 2; window = 0 } -> local_trace ctx
      | Pipeline.Sched_local _ | Pipeline.Sched_round_robin | Pipeline.Sched_random _ ->
        let c = Pipeline.compile ~profile:ctx.profile ~scheduler ctx.prog in
        Walker.trace ~max_instrs:ctx.max_instrs c.Pipeline.mach
    in
    point_of ctx label (Machine.run (Machine.dual_cluster ()) trace)
  in
  let sweep_name = "live-range partitioner" in
  { sweep_name;
    benchmark = ctx.bench_name;
    points =
      run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
        ~benchmark:ctx.bench_name ~max_instrs:ctx.max_instrs
        (List.map
           (fun (name, scheduler) -> (name, run_sched scheduler name))
           [ ("none", Pipeline.Sched_none); ("random", Pipeline.Sched_random 7);
             ("round-robin", Pipeline.Sched_round_robin); ("local", Pipeline.default_local)
           ]) }

let global_registers ?jobs ?ctx ?max_instrs ?retries ?backoff ?inject_fault ?checkpoint
    bench =
  let ctx = get_ctx ?ctx ?max_instrs bench in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let run_assignment globals label () =
    let cfg =
      { (Machine.dual_cluster ()) with
        Machine.assignment = Assignment.create ~num_clusters:2 ~globals () }
    in
    point_of ctx label (Machine.run cfg ctx.native_trace)
  in
  let sweep_name = "global-register designation (native binary)" in
  { sweep_name;
    benchmark = ctx.bench_name;
    points =
      run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
        ~benchmark:ctx.bench_name ~max_instrs:ctx.max_instrs
        (List.map
           (fun (name, globals) -> (name, run_assignment globals name))
           [ ("no globals", []); ("sp only", [ Mcsim_isa.Reg.sp ]);
             ("sp+gp (paper)", [ Mcsim_isa.Reg.sp; Mcsim_isa.Reg.gp ]) ]) }

let dispatch_queue_split ?jobs ?ctx ?max_instrs ?retries ?backoff ?inject_fault
    ?checkpoint bench =
  let ctx = get_ctx ?ctx ?max_instrs bench in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let sweep_name =
    "single-cluster dispatch-queue size (cycles vs the 128-entry baseline)"
  in
  let points =
    run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
      ~benchmark:ctx.bench_name ~max_instrs:ctx.max_instrs
      (List.map
         (fun n ->
           let label = Printf.sprintf "%d entries" n in
           ( label,
             fun () ->
               let cfg = { (Machine.single_cluster ()) with Machine.dq_entries = n } in
               let r = Machine.run cfg ctx.native_trace in
               { label;
                 dual_cycles = r.Machine.cycles;
                 speedup_pct =
                   Mcsim_timing.Net_performance.speedup_pct
                     ~single_cycles:ctx.single_cycles ~dual_cycles:r.Machine.cycles;
                 replays = r.Machine.replays;
                 dual_distributed = r.Machine.dual_distributed } ))
         [ 32; 64; 128; 256 ])
  in
  { sweep_name; benchmark = ctx.bench_name; points }

let unrolling ?jobs ?ctx ?max_instrs ?(factors = [ 1; 2; 4 ]) ?retries ?backoff
    ?inject_fault ?checkpoint bench =
  let ctx = get_ctx ?ctx ?max_instrs bench in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  if List.mem 1 factors then ignore (local_compiled ctx);
  let sweep_name = "loop unrolling before the local scheduler (paper section 6)" in
  let points =
    run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
      ~benchmark:ctx.bench_name ~max_instrs:ctx.max_instrs
      (List.map
         (fun factor ->
           let label =
             if factor = 1 then "no unrolling" else Printf.sprintf "unroll x%d" factor
           in
           ( label,
             fun () ->
               let trace =
                 if factor = 1 then local_trace ctx
                   (* unroll x1 is the identity: this is exactly the
                      local-scheduler binary the context already holds *)
                 else begin
                   let prog = Mcsim_compiler.Unroll.unroll ~factor ctx.prog in
                   let profile = Walker.profile prog in
                   let c =
                     Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog
                   in
                   Walker.trace ~max_instrs:ctx.max_instrs c.Pipeline.mach
                 end
               in
               point_of ctx label (Machine.run (Machine.dual_cluster ()) trace) ))
         factors)
  in
  { sweep_name; benchmark = ctx.bench_name; points }

let memory_latency ?jobs ?ctx ?max_instrs ?(latencies = [ 4; 8; 16; 32; 64 ]) ?retries
    ?backoff ?inject_fault ?checkpoint bench =
  let ctx = get_ctx ?ctx ?max_instrs bench in
  let trace = local_trace ctx in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let sweep_name = "memory fetch latency (local scheduler, matched baselines)" in
  let points =
    run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
      ~benchmark:ctx.bench_name ~max_instrs:ctx.max_instrs
      (List.map
         (fun lat ->
           let label =
             Printf.sprintf "%d-cycle memory%s" lat (if lat = 16 then " (paper)" else "")
           in
           ( label,
             fun () ->
               let cache =
                 { Mcsim_cache.Cache.default_config with Mcsim_cache.Cache.miss_latency = lat }
               in
               let cfg =
                 { (Machine.dual_cluster ()) with Machine.icache = cache; dcache = cache }
               in
               (* Rebase the comparison on a single-cluster machine with the same
                  memory so the sweep isolates the latency, not the baseline. *)
               let scfg =
                 { (Machine.single_cluster ()) with Machine.icache = cache; dcache = cache }
               in
               let single = Machine.run scfg ctx.native_trace in
               let r = Machine.run cfg trace in
               { label;
                 dual_cycles = r.Machine.cycles;
                 speedup_pct =
                   Mcsim_timing.Net_performance.speedup_pct
                     ~single_cycles:single.Machine.cycles ~dual_cycles:r.Machine.cycles;
                 replays = r.Machine.replays;
                 dual_distributed = r.Machine.dual_distributed } ))
         latencies)
  in
  { sweep_name; benchmark = ctx.bench_name; points }

let mshr_entries ?jobs ?ctx ?max_instrs ?retries ?backoff ?inject_fault ?checkpoint bench
    =
  let ctx = get_ctx ?ctx ?max_instrs bench in
  let trace = local_trace ctx in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let sweep_name = "data-cache miss-handling entries (Farkas & Jouppi, ISCA'94)" in
  let points =
    run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
      ~benchmark:ctx.bench_name ~max_instrs:ctx.max_instrs
      (List.map
         (fun (label, mshrs) ->
           ( label,
             fun () ->
               let dcache = { Mcsim_cache.Cache.default_config with Mcsim_cache.Cache.mshrs } in
               let cfg = { (Machine.dual_cluster ()) with Machine.dcache } in
               point_of ctx label (Machine.run cfg trace) ))
         [ ("1 MSHR (blocking-ish)", Some 1); ("2 MSHRs", Some 2); ("4 MSHRs", Some 4);
           ("8 MSHRs", Some 8); ("inverted MSHR (paper)", None) ])
  in
  { sweep_name; benchmark = ctx.bench_name; points }

let queue_organization ?jobs ?ctx ?max_instrs ?retries ?backoff ?inject_fault ?checkpoint
    bench =
  let ctx = get_ctx ?ctx ?max_instrs bench in
  let trace = local_trace ctx in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let sweep_name = "dispatch-queue organization (single queue vs per-class queues)" in
  let points =
    run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
      ~benchmark:ctx.bench_name ~max_instrs:ctx.max_instrs
      (List.map
         (fun (label, split, entries) ->
           ( label,
             fun () ->
               let cfg =
                 { (Machine.dual_cluster ()) with
                   Machine.queue_split = split;
                   dq_entries = entries }
               in
               point_of ctx label (Machine.run cfg trace) ))
         [ ("unified 64 (paper)", Machine.Unified, 64);
           ("split 32/16/16 (R10000-style)", Machine.Per_class, 64);
           ("unified 32", Machine.Unified, 32);
           ("split 16/8/8", Machine.Per_class, 32) ])
  in
  { sweep_name; benchmark = ctx.bench_name; points }

(* A hand-written streaming kernel whose iterations are fully independent
   (only the trivial induction variable is loop-carried): the code shape
   the paper's unrolling proposal assumes - each unrolled iteration can be
   scheduled onto its own cluster, and the split strided streams model the
   duplicated address calculations. *)
let stream_kernel ~trip =
  let module Il = Mcsim_ir.Il in
  let module Builder = Mcsim_ir.Program.Builder in
  let module Op = Mcsim_isa.Op_class in
  let b = Builder.create ~name:"stream" in
  let sp = Builder.sp b in
  let fp n = Builder.fresh_lr b ~name:n Il.Bank_fp in
  let t1 = fp "t1" and t2 = fp "t2" and t3 = fp "t3" and t4 = fp "t4" in
  let t5 = fp "t5" and t6 = fp "t6" and t7 = fp "t7" in
  let i = Builder.fresh_lr b ~name:"i" Il.Bank_int in
  let stride base = Mcsim_ir.Mem_stream.Stride { base; stride = 8; count = 4096 } in
  let exit_blk = Builder.add_block b [] Il.Halt in
  let body = Builder.reserve_block b in
  Builder.define_block b body
    [ Il.instr ~op:Op.Load ~srcs:[ sp ] ~dst:t1 ~mem:(stride 0x10000) ();
      Il.instr ~op:Op.Load ~srcs:[ sp ] ~dst:t2 ~mem:(stride 0x40000) ();
      Il.instr ~op:Op.Fp_other ~srcs:[ t1; t2 ] ~dst:t3 ();
      Il.instr ~op:Op.Fp_other ~srcs:[ t1; t1 ] ~dst:t4 ();
      Il.instr ~op:Op.Fp_other ~srcs:[ t3; t4 ] ~dst:t5 ();
      Il.instr ~op:Op.Fp_other ~srcs:[ t2; t3 ] ~dst:t6 ();
      Il.instr ~op:Op.Fp_other ~srcs:[ t5; t6 ] ~dst:t7 ();
      Il.instr ~op:Op.Store ~srcs:[ t7; sp ] ~mem:(stride 0x70000) ();
      Il.instr ~op:Op.Int_other ~srcs:[ i; i ] ~dst:i () ]
    (Il.Cond { src = Some i; model = Mcsim_ir.Branch_model.Loop { trip };
               taken = body; not_taken = exit_blk });
  let entry =
    Builder.add_block b
      [ Il.instr ~op:Op.Int_other ~srcs:[] ~dst:i () ]
      (Il.Jump body)
  in
  Builder.finish b ~entry

let unrolling_kernel ?jobs ?(max_instrs = 40_000) ?(factors = [ 1; 2; 4 ]) ?retries
    ?backoff ?inject_fault ?checkpoint () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let prog = stream_kernel ~trip:20_000 in
  let profile0 = Walker.profile prog in
  let native = Pipeline.compile ~profile:profile0 ~scheduler:Pipeline.Sched_none prog in
  let native_trace = Walker.trace ~max_instrs native.Pipeline.mach in
  let single = Machine.run (Machine.single_cluster ()) native_trace in
  let ctx_single = single.Machine.cycles in
  let sweep_name = "loop unrolling on an unroll-friendly streaming kernel" in
  let points =
    run_points ?retries ?backoff ?inject_fault ?checkpoint ~jobs ~sweep_name
      ~benchmark:"stream" ~max_instrs
      (List.map
         (fun factor ->
           let label =
             if factor = 1 then "no unrolling" else Printf.sprintf "unroll x%d" factor
           in
           ( label,
             fun () ->
               let prog' = Mcsim_compiler.Unroll.unroll ~factor prog in
               let profile = Walker.profile prog' in
               let c = Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog' in
               let trace = Walker.trace ~max_instrs c.Pipeline.mach in
               let r = Machine.run (Machine.dual_cluster ()) trace in
               { label;
                 dual_cycles = r.Machine.cycles;
                 speedup_pct =
                   Mcsim_timing.Net_performance.speedup_pct ~single_cycles:ctx_single
                     ~dual_cycles:r.Machine.cycles;
                 replays = r.Machine.replays;
                 dual_distributed = r.Machine.dual_distributed } ))
         factors)
  in
  { sweep_name; benchmark = "stream"; points }

let render s =
  let header = [ "point"; "cycles"; "vs single"; "replays"; "dual-dist" ] in
  let body =
    List.map
      (fun p ->
        [ p.label; string_of_int p.dual_cycles; Printf.sprintf "%+.1f%%" p.speedup_pct;
          string_of_int p.replays; string_of_int p.dual_distributed ])
      s.points
  in
  Printf.sprintf "%s - %s\n%s" s.benchmark s.sweep_name
    (Mcsim_util.Text_table.render
       ~aligns:[| Mcsim_util.Text_table.Left; Right; Right; Right; Right |]
       (header :: body))
