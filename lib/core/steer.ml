module Machine = Mcsim_cluster.Machine
module Steering = Mcsim_cluster.Steering
module Interconnect = Mcsim_cluster.Interconnect
module Pipeline = Mcsim_compiler.Pipeline
module Walker = Mcsim_trace.Walker
module Spec92 = Mcsim_workload.Spec92
module Pool = Mcsim_util.Pool

type cell = {
  scheduler : string;
  steering : Steering.policy;
  clusters : int;
  cycles : int;
  ipc : float;
  multi_fraction : float;
  vs_static_pct : float;
}

type row = {
  benchmark : string;
  cells : cell list;
}

let cluster_counts = [ 2; 4; 8 ]

(* The compile-time rivals: no partitioning effort at all (pure hardware
   steering) and the paper's local scheduler (hardware second-guessing a
   static partition). *)
let schedulers = [ Pipeline.Sched_none; Pipeline.default_local ]

(* One cell per (scheduler, cluster count, steering policy); the static
   policy is every (scheduler, count)'s baseline, so it is always
   included even though it adds no new machine behavior. *)
let matrix_points =
  List.concat_map
    (fun sched ->
      List.concat_map
        (fun n -> List.map (fun pol -> (sched, n, pol)) Steering.all)
        cluster_counts)
    schedulers

module Json = Mcsim_obs.Json

let config_for ~topology ~steering n =
  { (Machine.config_for_clusters ~topology n) with Machine.steering }

let run ?jobs ?(max_instrs = 60_000) ?(seed = 1) ?(benchmarks = Spec92.all)
    ?(topology = Interconnect.Point_to_point) ?retries ?backoff ?inject_fault ?checkpoint
    () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let store =
    Option.map
      (fun dir ->
        let manifest =
          Mcsim_obs.Manifest.make ~seed
            ~benchmark:(String.concat "," (List.map Spec92.name benchmarks))
            ~trace_instrs:max_instrs
            (config_for ~topology ~steering:Steering.Static 2)
        in
        let extra =
          [ ("cluster_counts", Json.List (List.map (fun c -> Json.Int c) cluster_counts));
            ( "schedulers",
              Json.List
                (List.map (fun s -> Json.String (Pipeline.scheduler_name s)) schedulers) );
            ( "steerings",
              Json.List
                (List.map (fun p -> Json.String (Steering.to_string p)) Steering.all) ) ]
        in
        Checkpoint.open_ ~dir ~kind:"steer" ~manifest ~extra ())
      checkpoint
  in
  (* Stage 1: one job per benchmark (program + profile). Stage 2: one job
     per matrix cell; each compiles, traces and simulates independently
     from the shared immutable profile, so the rows are the same for
     every [jobs]. *)
  let preps =
    Array.of_list
      (Pool.parallel_map ?retries ?backoff ?inject_fault ~jobs
         (fun b ->
           let prog = Spec92.program b in
           (b, prog, Walker.profile ~seed prog))
         benchmarks)
  in
  let sims =
    List.concat
      (List.mapi (fun i _ -> List.map (fun p -> (i, p)) matrix_points) benchmarks)
  in
  let key (i, (sched, clusters, pol)) =
    let b, _, _ = preps.(i) in
    Printf.sprintf "%s/%s/%d/%s" (Spec92.name b) (Pipeline.scheduler_name sched) clusters
      (Steering.to_string pol)
  in
  let cached =
    List.map
      (fun s ->
        let hit =
          Option.bind store (fun st ->
              Option.bind (Checkpoint.find st (key s)) (fun d ->
                  Option.bind (Json.member "result" d) Mcsim_obs.Metrics.result_of_json))
        in
        (s, hit))
      sims
  in
  let exec = List.filter_map (fun (s, hit) -> if hit = None then Some s else None) cached in
  let fresh =
    Pool.parallel_map ?retries ?backoff ?inject_fault ~jobs
      (fun ((i, (sched, clusters, pol)) as s) ->
        let _, prog, profile = preps.(i) in
        let c = Pipeline.compile ~clusters ~profile ~scheduler:sched prog in
        let trace = Walker.trace ~seed ~max_instrs c.Pipeline.mach in
        let r = Machine.run (config_for ~topology ~steering:pol clusters) trace in
        Option.iter
          (fun st ->
            Checkpoint.record st ~key:(key s)
              [ ("result", Mcsim_obs.Metrics.result_json r) ])
          store;
        r)
      exec
  in
  let rec merge cached fresh =
    match cached with
    | [] -> []
    | (_, Some r) :: tl -> r :: merge tl fresh
    | (_, None) :: tl -> (
      match fresh with [] -> assert false | r :: rest -> r :: merge tl rest)
  in
  let outs = merge cached fresh in
  let per_bench = List.length matrix_points in
  List.mapi
    (fun i (b, _, _) ->
      let results = List.filteri (fun j _ -> j / per_bench = i) outs in
      let paired = List.combine matrix_points results in
      let static_cycles sched clusters =
        match
          List.find_opt
            (fun ((s, n, pol), _) -> s = sched && n = clusters && pol = Steering.Static)
            paired
        with
        | Some (_, (r : Machine.result)) -> r.Machine.cycles
        | None -> assert false
      in
      { benchmark = Spec92.name b;
        cells =
          List.map
            (fun ((sched, clusters, pol), (r : Machine.result)) ->
              let base = static_cycles sched clusters in
              { scheduler = Pipeline.scheduler_name sched;
                steering = pol;
                clusters;
                cycles = r.Machine.cycles;
                ipc = r.Machine.ipc;
                multi_fraction =
                  Mcsim_util.Stats.ratio r.Machine.dual_distributed r.Machine.retired;
                vs_static_pct =
                  100.0 -. (100.0 *. float_of_int r.Machine.cycles /. float_of_int base) })
            paired })
    (Array.to_list preps)

let find_cell row ~scheduler ~clusters ~steering =
  List.find_opt
    (fun c -> c.scheduler = scheduler && c.clusters = clusters && c.steering = steering)
    row.cells

let scheduler_names = List.map Pipeline.scheduler_name schedulers

let render rows =
  let policies = Steering.all in
  let header =
    "benchmark" :: "sched" :: "clusters" :: "static cyc"
    :: List.filter_map
         (fun p ->
           if p = Steering.Static then None else Some (Steering.to_string p ^ " %"))
         policies
  in
  let body =
    List.concat_map
      (fun r ->
        List.concat_map
          (fun sched ->
            List.map
              (fun n ->
                let static =
                  match find_cell r ~scheduler:sched ~clusters:n ~steering:Steering.Static with
                  | Some c -> string_of_int c.cycles
                  | None -> "-"
                in
                r.benchmark :: sched :: string_of_int n :: static
                :: List.filter_map
                     (fun p ->
                       if p = Steering.Static then None
                       else
                         Some
                           (match find_cell r ~scheduler:sched ~clusters:n ~steering:p with
                           | Some c -> Printf.sprintf "%+.1f" c.vs_static_pct
                           | None -> "-"))
                     policies)
              cluster_counts)
          scheduler_names)
      rows
  in
  let aligns =
    Array.of_list
      (Mcsim_util.Text_table.Left :: Left :: Right :: Right
      :: List.filter_map
           (fun p -> if p = Steering.Static then None else Some Mcsim_util.Text_table.Right)
           policies)
  in
  Mcsim_util.Text_table.render ~aligns (header :: body)
  ^ "cycle %% vs static steering under the same compile-time scheduler and cluster\n\
     count (positive = the dynamic policy is faster); 'none' rows steer a program\n\
     compiled with no partitioning effort, 'local' rows second-guess the paper's\n\
     static local scheduler at dispatch\n"

let csv rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "benchmark,scheduler,clusters,steering,cycles,ipc,multi_fraction,vs_static_pct\n";
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          Buffer.add_string b
            (Printf.sprintf "%s,%s,%d,%s,%d,%.4f,%.4f,%.2f\n" r.benchmark c.scheduler
               c.clusters (Steering.to_string c.steering) c.cycles c.ipc c.multi_fraction
               c.vs_static_pct))
        r.cells)
    rows;
  Buffer.contents b

let cell_json (c : cell) =
  Json.Obj
    [ ("scheduler", Json.String c.scheduler);
      ("steering", Json.String (Steering.to_string c.steering));
      ("clusters", Json.Int c.clusters);
      ("cycles", Json.Int c.cycles);
      ("ipc", Json.Float c.ipc);
      ("multi_fraction", Json.Float c.multi_fraction);
      ("vs_static_pct", Json.Float c.vs_static_pct) ]

let rows_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("benchmark", Json.String r.benchmark);
             ("cells", Json.List (List.map cell_json r.cells)) ])
       rows)
