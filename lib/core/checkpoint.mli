(** Durable per-unit result store for long sweeps.

    A checkpoint is a directory holding one small JSON file per
    completed sweep unit (a Table-2 benchmark stage, an ablation point,
    a cluster-count cell, ...), each in the {!Mcsim_obs.Metrics}
    snapshot schema, plus a [sweep.json] identity record. An
    interrupted sweep re-opened on the same directory skips every
    recorded unit and recomputes only the missing ones, so resuming
    produces output identical to an uninterrupted run.

    Safety comes from the identity record: it pins the sweep [kind],
    the full {!Mcsim_obs.Manifest} (machine config digest, seed,
    engine, sampling policy, trace length — everything except the
    creation timestamp) and any sweep-specific parameters. Opening a
    directory whose identity disagrees raises a one-line [Failure]
    ("checkpoint ... was written by a different sweep"), which the CLI
    surfaces as [mcsim: error: ...] — a stale checkpoint is refused,
    never silently reused.

    Unit writes are atomic (write to a temp file in the same directory,
    then rename), so a unit file is either complete and valid or absent;
    a torn write from a killed process decodes as corrupt and is
    recomputed and overwritten on resume. A [t] is safe to share across
    domains: lookups and writes are serialized by an internal mutex. *)

type t

val open_ :
  dir:string ->
  kind:string ->
  manifest:Mcsim_obs.Manifest.t ->
  ?extra:(string * Mcsim_obs.Json.t) list ->
  unit ->
  t
(** Open (creating if needed, including parents) checkpoint directory
    [dir] for a sweep identified by [kind], [manifest] and the
    sweep-specific [extra] parameters. On first open the identity is
    written to [dir/sweep.json]; on re-open it is compared field by
    field ([manifest.created_unix] excepted).

    @raise Failure (one line) when [dir] exists with a different
    identity, or when [dir/sweep.json] is unreadable or corrupt. *)

val find : t -> string -> Mcsim_obs.Json.t option
(** [find t key] is the [data] object recorded for unit [key], or
    [None] when the unit is unrecorded (or its file is corrupt — a
    corrupt unit is treated as missing and will be overwritten by the
    next {!record}). *)

val record : t -> key:string -> (string * Mcsim_obs.Json.t) list -> unit
(** [record t ~key fields] durably stores unit [key]'s results. The
    unit file is a [Metrics]-schema snapshot ([kind = "unit"], the
    sweep's manifest, and [data] holding ["unit_key"] plus [fields]).
    Re-recording a key overwrites its file. *)

val keys : t -> string list
(** The keys of every decodable recorded unit, sorted. *)

val dir : t -> string
(** The directory this checkpoint lives in. *)

val unit_basename : string -> string
(** The file basename a unit [key] is stored under
    ([unit-<sanitized>-<digest8>.json]) — exported so {!Result_store}
    can read checkpoint-format entries and old checkpoint directories
    double as result caches. *)

val write_command : dir:string -> (string * Mcsim_obs.Json.t) list -> unit
(** Write [dir/command.json] — the CLI invocation that started the
    sweep, stored before any unit runs so [mcsim resume] can
    reconstruct and finish it. Creates [dir] if needed. *)

val read_command : dir:string -> (string * Mcsim_obs.Json.t) list
(** Read back {!write_command}'s record.
    @raise Failure (one line) when [dir/command.json] is missing or
    corrupt — e.g. when [dir] is not a checkpoint directory. *)
