module Json = Mcsim_obs.Json
module Manifest = Mcsim_obs.Manifest

type t = { dir : string; mutex : Mutex.t }

let dir t = t.dir

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  { dir; mutex = Mutex.create () }

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)
(* ------------------------------------------------------------------ *)

(* The identity is the minified JSON of (manifest identity, unit key).
   Going through JSON rather than ad-hoc string concatenation makes the
   address injective: no two distinct (manifest, key) pairs can collide
   by delimiter games. *)
let identity_of_parts manifest_json key =
  Json.to_string ~minify:true
    (Json.Obj
       [ ("manifest", Manifest.strip_created manifest_json);
         ("unit_key", Json.String key) ])

let identity ~manifest ~key = identity_of_parts (Manifest.to_json manifest) key
let digest ~manifest ~key = Digest.to_hex (Digest.string (identity ~manifest ~key))

let res_basename dg = "res-" ^ dg ^ ".json"

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let read_json path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (match Json.of_string contents with Ok v -> Some v | Error _ -> None)
  | exception Sys_error _ -> None

let write_json_atomic path v =
  let tmp =
    Filename.concat (Filename.dirname path) (".tmp-" ^ Filename.basename path)
  in
  Json.write_file tmp v "\n";
  Sys.rename tmp path

(* The stored snapshot's own identity — [None] when the file is not a
   unit snapshot. Re-deriving it from the content (rather than trusting
   the file name) is what makes digest collisions and files copied
   between stores read as misses. *)
let stored_identity j =
  match (Json.member "manifest" j, Option.bind (Json.path [ "data"; "unit_key" ] j) Json.get_string)
  with
  | Some mj, Some key -> Some (identity_of_parts mj key, key)
  | _ -> None

let find t ~manifest ~key =
  let want = identity ~manifest ~key in
  let check path =
    match Option.bind (read_json path) (fun j ->
              Option.map (fun id -> (id, j)) (stored_identity j))
    with
    | Some ((id, _), j) when id = want -> Json.member "data" j
    | Some _ | None -> None
  in
  Mutex.protect t.mutex (fun () ->
      let addressed =
        check (Filename.concat t.dir (res_basename (Digest.to_hex (Digest.string want))))
      in
      match addressed with
      | Some _ as hit -> hit
      (* Checkpoint directories name units by key alone (their sweep.json
         pins the manifest); the identity check above still applies, so a
         foreign sweep's unit of the same key reads as a miss. *)
      | None -> check (Filename.concat t.dir (Checkpoint.unit_basename key)))

let record t ~manifest ~key fields =
  let snapshot =
    Json.Obj
      [ ("schema_version", Json.Int Manifest.schema_version);
        ("kind", Json.String "unit");
        ("manifest", Manifest.to_json manifest);
        ("data", Json.Obj (("unit_key", Json.String key) :: fields)) ]
  in
  let path = Filename.concat t.dir (res_basename (digest ~manifest ~key)) in
  Mutex.protect t.mutex (fun () -> write_json_atomic path snapshot)

(* ------------------------------------------------------------------ *)
(* Listing and pruning                                                 *)
(* ------------------------------------------------------------------ *)

type entry = {
  e_file : string;
  e_digest : string;
  e_kind : string;
  e_benchmark : string;
  e_bytes : int;
  e_valid : bool;
}

let is_entry_file name =
  let has_prefix p =
    String.length name > String.length p && String.sub name 0 (String.length p) = p
  in
  Filename.check_suffix name ".json" && (has_prefix "res-" || has_prefix "unit-")

let entry_files t =
  Sys.readdir t.dir |> Array.to_list |> List.filter is_entry_file
  |> List.sort String.compare

let key_kind key =
  match String.index_opt key '/' with
  | Some i -> String.sub key 0 i
  | None -> key

let entries t =
  Mutex.protect t.mutex (fun () ->
      List.map
        (fun name ->
          let path = Filename.concat t.dir name in
          let e_bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
          match Option.bind (read_json path) (fun j ->
                    Option.map (fun id -> (id, j)) (stored_identity j))
          with
          | Some ((id, key), j) ->
            let benchmark =
              match Json.path [ "manifest"; "benchmark" ] j with
              | Some (Json.String b) -> b
              | _ -> "-"
            in
            { e_file = name;
              e_digest = Digest.to_hex (Digest.string id);
              e_kind = key_kind key;
              e_benchmark = benchmark;
              e_bytes;
              e_valid = true }
          | None ->
            { e_file = name;
              e_digest = "-";
              e_kind = "-";
              e_benchmark = "-";
              e_bytes;
              e_valid = false })
        (entry_files t))

let prune_keep_latest t n =
  if n < 0 then invalid_arg "Result_store.prune_keep_latest: n must be >= 0";
  Mutex.protect t.mutex (fun () ->
      let stamped =
        List.map
          (fun name ->
            let mtime =
              try (Unix.stat (Filename.concat t.dir name)).Unix.st_mtime
              with Unix.Unix_error _ -> 0.0
            in
            (name, mtime))
          (entry_files t)
      in
      (* Newest first; equal mtimes (a coarse-grained clock) break by
         name so the survivor set is deterministic. *)
      let ordered =
        List.sort
          (fun (n1, t1) (n2, t2) ->
            match compare t2 t1 with 0 -> String.compare n1 n2 | c -> c)
          stamped
      in
      let doomed = List.filteri (fun i _ -> i >= n) ordered |> List.map fst in
      List.iter
        (fun name -> try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
        doomed;
      List.sort String.compare doomed)
