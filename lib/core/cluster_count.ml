module Machine = Mcsim_cluster.Machine
module Interconnect = Mcsim_cluster.Interconnect
module Pipeline = Mcsim_compiler.Pipeline
module Walker = Mcsim_trace.Walker
module Spec92 = Mcsim_workload.Spec92
module Palacharla = Mcsim_timing.Palacharla
module Net = Mcsim_timing.Net_performance
module Pool = Mcsim_util.Pool

type cell = {
  clusters : int;
  topology : Interconnect.topology;
  cycles : int;
  cycles_pct : float;
  multi_fraction : float;
  net_018_pct : float;
}

type row = {
  benchmark : string;
  single_cycles : int;
  cells : cell list;
}

let cluster_counts = [ 1; 2; 4; 8 ]

(* One cell per (cluster count, topology); the 1-cluster machine has no
   interconnect, so it appears once, as the point-to-point baseline. *)
let matrix_points =
  List.concat_map
    (fun n ->
      if n = 1 then [ (1, Interconnect.Point_to_point) ]
      else List.map (fun t -> (n, t)) Interconnect.all)
    cluster_counts

let config_for ?topology n = Machine.config_for_clusters ?topology n

module Json = Mcsim_obs.Json

let run ?jobs ?(max_instrs = 60_000) ?(seed = 1) ?(benchmarks = Spec92.all) ?retries
    ?backoff ?inject_fault ?checkpoint () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let store =
    Option.map
      (fun dir ->
        let manifest =
          Mcsim_obs.Manifest.make ~seed
            ~benchmark:(String.concat "," (List.map Spec92.name benchmarks))
            ~trace_instrs:max_instrs (config_for 1)
        in
        let extra =
          [ ("cluster_counts", Json.List (List.map (fun c -> Json.Int c) cluster_counts));
            ( "topologies",
              Json.List
                (List.map (fun t -> Json.String (Interconnect.to_string t)) Interconnect.all)
            ) ]
        in
        Checkpoint.open_ ~dir ~kind:"clusters" ~manifest ~extra ())
      checkpoint
  in
  (* Stage 1: one job per benchmark (program + profile). Stage 2: one job
     per (benchmark x cluster count x topology); each compiles, traces
     and simulates independently from the shared immutable profile, so
     the rows are the same for every [jobs]. *)
  let preps =
    Array.of_list
      (Pool.parallel_map ?retries ?backoff ?inject_fault ~jobs
         (fun b ->
           let prog = Spec92.program b in
           (b, prog, Walker.profile ~seed prog))
         benchmarks)
  in
  let sims =
    List.concat
      (List.mapi (fun i _ -> List.map (fun p -> (i, p)) matrix_points) benchmarks)
  in
  (* One durable unit per (benchmark, cluster count, topology); cached
     cells are decoded serially here, before the fan-out. *)
  let key (i, (clusters, topology)) =
    let b, _, _ = preps.(i) in
    Printf.sprintf "%s/%d/%s" (Spec92.name b) clusters (Interconnect.to_string topology)
  in
  let cached =
    List.map
      (fun s ->
        let hit =
          Option.bind store (fun st ->
              Option.bind (Checkpoint.find st (key s)) (fun d ->
                  Option.bind (Json.member "result" d) Mcsim_obs.Metrics.result_of_json))
        in
        (s, hit))
      sims
  in
  let exec = List.filter_map (fun (s, hit) -> if hit = None then Some s else None) cached in
  let fresh =
    Pool.parallel_map ?retries ?backoff ?inject_fault ~jobs
      (fun ((i, (clusters, topology)) as s) ->
        let _, prog, profile = preps.(i) in
        let scheduler =
          if clusters = 1 then Pipeline.Sched_none else Pipeline.default_local
        in
        let c = Pipeline.compile ~clusters ~profile ~scheduler prog in
        let trace = Walker.trace ~seed ~max_instrs c.Pipeline.mach in
        let r = Machine.run (config_for ~topology clusters) trace in
        Option.iter
          (fun st ->
            Checkpoint.record st ~key:(key s)
              [ ("result", Mcsim_obs.Metrics.result_json r) ])
          store;
        r)
      exec
  in
  let rec merge cached fresh =
    match cached with
    | [] -> []
    | (_, Some r) :: tl -> r :: merge tl fresh
    | (_, None) :: tl -> (
      match fresh with [] -> assert false | r :: rest -> r :: merge tl rest)
  in
  let outs = merge cached fresh in
  let per_bench = List.length matrix_points in
  List.mapi
    (fun i (b, _, _) ->
      let results = List.filteri (fun j _ -> j / per_bench = i) outs in
      let single = (List.hd results).Machine.cycles in
      { benchmark = Spec92.name b;
        single_cycles = single;
        cells =
          List.map2
            (fun (clusters, topology) (r : Machine.result) ->
              { clusters;
                topology;
                cycles = r.Machine.cycles;
                cycles_pct =
                  100.0
                  -. (100.0 *. float_of_int r.Machine.cycles /. float_of_int single);
                multi_fraction =
                  Mcsim_util.Stats.ratio r.Machine.dual_distributed r.Machine.retired;
                net_018_pct =
                  Net.net_speedup_pct_n ~single_cycles:single ~cycles:r.Machine.cycles
                    ~clusters ~topology ~feature:Palacharla.F0_18 })
            matrix_points results })
    (Array.to_list preps)

let find_cell row ~clusters ~topology =
  List.find_opt (fun c -> c.clusters = clusters && c.topology = topology) row.cells

let render rows =
  let multi_counts = List.filter (fun n -> n > 1) cluster_counts in
  let header =
    "benchmark" :: "topology" :: "1-cl cyc"
    :: List.map (fun n -> Printf.sprintf "%d-cl %% (net)" n) multi_counts
  in
  let body =
    List.concat_map
      (fun r ->
        List.map
          (fun t ->
            r.benchmark :: Interconnect.to_string t
            :: string_of_int r.single_cycles
            :: List.map
                 (fun n ->
                   match find_cell r ~clusters:n ~topology:t with
                   | Some c -> Printf.sprintf "%+.1f (%+.1f)" c.cycles_pct c.net_018_pct
                   | None -> "-")
                 multi_counts)
          Interconnect.all)
      rows
  in
  let aligns =
    Array.of_list
      (Mcsim_util.Text_table.Left :: Left :: Right
      :: List.map (fun _ -> Mcsim_util.Text_table.Right) multi_counts)
  in
  Mcsim_util.Text_table.render ~aligns (header :: body)
  ^ "cycle %% vs the 8-issue monolith (negative = more cycles); net folds in the\n\
     Palacharla 0.18um clock of each cluster's window capped by one interconnect\n\
     hop (point-to-point wiring stops scaling, ring/crossbar pay cycles instead)\n"

let cell_json (c : cell) =
  Json.Obj
    [ ("clusters", Json.Int c.clusters);
      ("topology", Json.String (Interconnect.to_string c.topology));
      ("cycles", Json.Int c.cycles);
      ("cycles_pct", Json.Float c.cycles_pct);
      ("multi_fraction", Json.Float c.multi_fraction);
      ("net_018_pct", Json.Float c.net_018_pct) ]

let rows_json rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("benchmark", Json.String r.benchmark);
             ("single_cycles", Json.Int r.single_cycles);
             ("cells", Json.List (List.map cell_json r.cells)) ])
       rows)
