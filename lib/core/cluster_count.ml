module Machine = Mcsim_cluster.Machine
module Pipeline = Mcsim_compiler.Pipeline
module Walker = Mcsim_trace.Walker
module Spec92 = Mcsim_workload.Spec92
module Palacharla = Mcsim_timing.Palacharla
module Pool = Mcsim_util.Pool

type row = {
  benchmark : string;
  cycles : int array;
  cycles_pct : float array;
  multi_fraction : float array;
  net_018_pct : float array;
}

let cluster_counts = [ 1; 2; 4 ]

let config_for = function
  | 1 -> Machine.single_cluster ()
  | 2 -> Machine.dual_cluster ()
  | 4 -> Machine.quad_cluster ()
  | n -> invalid_arg (Printf.sprintf "Cluster_count: %d clusters" n)

module Json = Mcsim_obs.Json

let run ?jobs ?(max_instrs = 60_000) ?(seed = 1) ?(benchmarks = Spec92.all) ?retries
    ?backoff ?inject_fault ?checkpoint () =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let store =
    Option.map
      (fun dir ->
        let manifest =
          Mcsim_obs.Manifest.make ~seed
            ~benchmark:(String.concat "," (List.map Spec92.name benchmarks))
            ~trace_instrs:max_instrs (config_for 1)
        in
        let extra =
          [ ("cluster_counts", Json.List (List.map (fun c -> Json.Int c) cluster_counts)) ]
        in
        Checkpoint.open_ ~dir ~kind:"clusters" ~manifest ~extra ())
      checkpoint
  in
  (* Stage 1: one job per benchmark (program + profile). Stage 2: one job
     per (benchmark x cluster count); each compiles, traces and simulates
     independently from the shared immutable profile, so the rows are the
     same for every [jobs]. *)
  let preps =
    Array.of_list
      (Pool.parallel_map ?retries ?backoff ?inject_fault ~jobs
         (fun b ->
           let prog = Spec92.program b in
           (b, prog, Walker.profile ~seed prog))
         benchmarks)
  in
  let sims =
    List.concat
      (List.mapi (fun i _ -> List.map (fun c -> (i, c)) cluster_counts) benchmarks)
  in
  (* One durable unit per (benchmark, cluster count); cached cells are
     decoded serially here, before the fan-out. *)
  let key (i, clusters) =
    let b, _, _ = preps.(i) in
    Spec92.name b ^ "/" ^ string_of_int clusters
  in
  let cached =
    List.map
      (fun s ->
        let hit =
          Option.bind store (fun st ->
              Option.bind (Checkpoint.find st (key s)) (fun d ->
                  Option.bind (Json.member "result" d) Mcsim_obs.Metrics.result_of_json))
        in
        (s, hit))
      sims
  in
  let exec = List.filter_map (fun (s, hit) -> if hit = None then Some s else None) cached in
  let fresh =
    Pool.parallel_map ?retries ?backoff ?inject_fault ~jobs
      (fun ((i, clusters) as s) ->
        let _, prog, profile = preps.(i) in
        let scheduler =
          if clusters = 1 then Pipeline.Sched_none else Pipeline.default_local
        in
        let c = Pipeline.compile ~clusters ~profile ~scheduler prog in
        let trace = Walker.trace ~seed ~max_instrs c.Pipeline.mach in
        let r = Machine.run (config_for clusters) trace in
        Option.iter
          (fun st ->
            Checkpoint.record st ~key:(key s)
              [ ("result", Mcsim_obs.Metrics.result_json r) ])
          store;
        r)
      exec
  in
  let rec merge cached fresh =
    match cached with
    | [] -> []
    | (_, Some r) :: tl -> r :: merge tl fresh
    | (_, None) :: tl -> (
      match fresh with [] -> assert false | r :: rest -> r :: merge tl rest)
  in
  let outs = merge cached fresh in
  let per_bench = List.length cluster_counts in
  List.mapi
    (fun i (b, _, _) ->
      let results = List.filteri (fun j _ -> j / per_bench = i) outs in
      let cycles = Array.of_list (List.map (fun r -> r.Machine.cycles) results) in
      let single = cycles.(0) in
      let t_single =
        Palacharla.cycle_time (Palacharla.per_cluster_config ~clusters:1 Palacharla.F0_18)
      in
      { benchmark = Spec92.name b;
        cycles;
        cycles_pct =
          Array.map
            (fun c -> 100.0 -. (100.0 *. float_of_int c /. float_of_int single))
            cycles;
        multi_fraction =
          Array.of_list
            (List.map
               (fun r ->
                 Mcsim_util.Stats.ratio r.Machine.dual_distributed r.Machine.retired)
               results);
        net_018_pct =
          Array.of_list
            (List.mapi
               (fun i r ->
                 let clusters = List.nth cluster_counts i in
                 let t =
                   Palacharla.cycle_time
                     (Palacharla.per_cluster_config ~clusters Palacharla.F0_18)
                 in
                 100.0
                 -. (100.0 *. float_of_int r.Machine.cycles *. t
                     /. (float_of_int single *. t_single)))
               results) })
    (Array.to_list preps)

let render rows =
  let header =
    [ "benchmark"; "1-cluster cyc"; "2-cluster %"; "4-cluster %"; "multi frac 2/4";
      "net@0.18um 2/4" ]
  in
  let body =
    List.map
      (fun r ->
        [ r.benchmark;
          string_of_int r.cycles.(0);
          Printf.sprintf "%+.1f" r.cycles_pct.(1);
          Printf.sprintf "%+.1f" r.cycles_pct.(2);
          Printf.sprintf "%.2f/%.2f" r.multi_fraction.(1) r.multi_fraction.(2);
          Printf.sprintf "%+.1f/%+.1f" r.net_018_pct.(1) r.net_018_pct.(2) ])
      rows
  in
  Mcsim_util.Text_table.render
    ~aligns:
      [| Mcsim_util.Text_table.Left; Right; Right; Right; Right; Right |]
    (header :: body)
  ^ "cycle %% vs the 8-issue monolith (negative = more cycles); net folds in the\n\
     Palacharla 0.18um clock of each cluster's window (2-issue/32-entry clusters\n\
     clock fastest)\n"
