let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let line cells = String.concat "," (List.map csv_escape cells) ^ "\n"

let paper_of benchmark =
  match List.find_opt (fun (n, _, _) -> n = benchmark) Table2.paper with
  | Some (_, a, b) -> (Printf.sprintf "%.1f" a, Printf.sprintf "%.1f" b)
  | None -> ("", "")

let table2_csv rows =
  let header =
    line
      [ "benchmark"; "none_pct"; "none_pct_paper"; "local_pct"; "local_pct_paper";
        "single_cycles"; "none_cycles"; "local_cycles"; "none_replays"; "local_replays" ]
  in
  header
  ^ String.concat ""
      (List.map
         (fun (r : Table2.row) ->
           let p_none, p_local = paper_of r.Table2.benchmark in
           line
             [ r.Table2.benchmark;
               Printf.sprintf "%.2f" r.Table2.none_pct;
               p_none;
               Printf.sprintf "%.2f" r.Table2.local_pct;
               p_local;
               string_of_int r.Table2.single_cycles;
               string_of_int r.Table2.none_cycles;
               string_of_int r.Table2.local_cycles;
               string_of_int r.Table2.none_replays;
               string_of_int r.Table2.local_replays ])
         rows)

let table2_markdown rows =
  let header =
    "| benchmark | none (measured) | none (paper) | local (measured) | local (paper) |\n\
     |---|---|---|---|---|\n"
  in
  header
  ^ String.concat ""
      (List.map
         (fun (r : Table2.row) ->
           let p_none, p_local = paper_of r.Table2.benchmark in
           Printf.sprintf "| %s | %+.1f | %s | %+.1f | %s |\n" r.Table2.benchmark
             r.Table2.none_pct p_none r.Table2.local_pct p_local)
         rows)

let table2_json rows =
  let module J = Mcsim_obs.Json in
  let paper_num v = J.Float v in
  J.List
    (List.map
       (fun (r : Table2.row) ->
         let p_none, p_local =
           match List.find_opt (fun (n, _, _) -> n = r.Table2.benchmark) Table2.paper with
           | Some (_, a, b) -> (paper_num a, paper_num b)
           | None -> (J.Null, J.Null)
         in
         J.Obj
           [ ("benchmark", J.String r.Table2.benchmark);
             ("none_pct", J.Float r.Table2.none_pct);
             ("none_pct_paper", p_none);
             ("local_pct", J.Float r.Table2.local_pct);
             ("local_pct_paper", p_local);
             ("single_cycles", J.Int r.Table2.single_cycles);
             ("none_cycles", J.Int r.Table2.none_cycles);
             ("local_cycles", J.Int r.Table2.local_cycles);
             ("none_replays", J.Int r.Table2.none_replays);
             ("local_replays", J.Int r.Table2.local_replays) ])
       rows)

let ablation_csv (s : Ablation.sweep) =
  line [ "benchmark"; "sweep"; "point"; "cycles"; "speedup_pct"; "replays"; "dual_distributed" ]
  ^ String.concat ""
      (List.map
         (fun (p : Ablation.point) ->
           line
             [ s.Ablation.benchmark; s.Ablation.sweep_name; p.Ablation.label;
               string_of_int p.Ablation.dual_cycles;
               Printf.sprintf "%.2f" p.Ablation.speedup_pct;
               string_of_int p.Ablation.replays;
               string_of_int p.Ablation.dual_distributed ])
         s.Ablation.points)

let counters_csv (r : Mcsim_cluster.Machine.result) =
  line [ "counter"; "value" ]
  ^ String.concat ""
      (List.map
         (fun (k, v) -> line [ k; string_of_int v ])
         r.Mcsim_cluster.Machine.counters)

let sampling_csv (r : Mcsim_sampling.Sampling.t) =
  line [ "interval"; "start"; "warmup_cycles"; "detail_cycles"; "detail_instrs"; "ipc" ]
  ^ String.concat ""
      (List.map
         (fun (s : Mcsim_sampling.Sampling.interval_stat) ->
           line
             [ string_of_int s.Mcsim_sampling.Sampling.index;
               string_of_int s.Mcsim_sampling.Sampling.start;
               string_of_int s.Mcsim_sampling.Sampling.warmup_cycles;
               string_of_int s.Mcsim_sampling.Sampling.detail_cycles;
               string_of_int s.Mcsim_sampling.Sampling.detail_instrs;
               Printf.sprintf "%.4f" s.Mcsim_sampling.Sampling.ipc ])
         r.Mcsim_sampling.Sampling.intervals)

let sampling_summary_csv results =
  line
    [ "benchmark"; "policy"; "trace_instrs"; "intervals"; "detailed_instrs"; "warmed_instrs";
      "mean_ipc"; "ci_halfwidth"; "ci_rel_pct"; "est_cycles" ]
  ^ String.concat ""
      (List.map
         (fun (name, (r : Mcsim_sampling.Sampling.t)) ->
           line
             [ name;
               Mcsim_sampling.Sampling.policy_to_string r.Mcsim_sampling.Sampling.policy;
               string_of_int r.Mcsim_sampling.Sampling.trace_instrs;
               string_of_int (List.length r.Mcsim_sampling.Sampling.intervals);
               string_of_int r.Mcsim_sampling.Sampling.detailed_instrs;
               string_of_int r.Mcsim_sampling.Sampling.warmed_instrs;
               Printf.sprintf "%.4f" r.Mcsim_sampling.Sampling.mean_ipc;
               Printf.sprintf "%.4f" r.Mcsim_sampling.Sampling.ci_halfwidth;
               Printf.sprintf "%.2f" (100.0 *. Mcsim_sampling.Sampling.ci_rel r);
               string_of_int r.Mcsim_sampling.Sampling.est_cycles ])
         results)

let net_csv rows =
  line [ "benchmark"; "cycles_pct"; "net_035_pct"; "net_018_pct" ]
  ^ String.concat ""
      (List.map
         (fun (r : Cycle_time.net_row) ->
           line
             [ r.Cycle_time.benchmark;
               Printf.sprintf "%.2f" r.Cycle_time.cycles_pct;
               Printf.sprintf "%.2f" r.Cycle_time.net_035_pct;
               Printf.sprintf "%.2f" r.Cycle_time.net_018_pct ])
         rows)
