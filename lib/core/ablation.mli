(** Ablation studies for the design choices DESIGN.md calls out. Each
    sweep runs one benchmark across a one-dimensional design-space slice
    and reports dual-cluster cycles (and the Table-2 metric against the
    shared single-cluster baseline).

    Every sweep takes [?jobs] (default {!Mcsim_util.Pool.default_jobs})
    and fans its points out over that many domains with
    {!Mcsim_util.Pool.parallel_map}; results are bit-for-bit identical
    for every [jobs] value. A sweep also takes [?ctx]: pass the same
    {!ctx} to several sweeps over one benchmark to reuse its profile,
    native binary/trace, single-cluster baseline and (memoized)
    local-scheduler binary instead of recomputing them per sweep. When
    [ctx] is given, [max_instrs] is ignored.

    Every sweep also takes the durability knobs of
    {!Mcsim_util.Pool.parallel_map} ([?retries], [?backoff],
    [?inject_fault]) and [?checkpoint]: with a checkpoint directory,
    each completed point is durably recorded (one {!Checkpoint} unit
    per point, keyed by label) and skipped when the sweep reruns, so an
    interrupted sweep finishes from where it died with identical
    points. A directory holding a different sweep (name, benchmark,
    trace budget or point set) is refused with [Failure]. *)

type point = {
  label : string;
  dual_cycles : int;
  speedup_pct : float;
  replays : int;
  dual_distributed : int;
}

type sweep = {
  sweep_name : string;
  benchmark : string;
  points : point list;
}

type ctx
(** Per-benchmark work shared across sweeps: program, profile, native
    binary and trace, single-cluster baseline cycles, and a lazily
    memoized local-scheduler binary/trace. Safe to share with parallel
    sweeps only after the sweep's own setup has forced the memo (every
    sweep in this module does so before fanning out). *)

val make_ctx : ?max_instrs:int -> Mcsim_workload.Spec92.benchmark -> ctx
(** Profile + native compile + trace + single-cluster baseline run for
    one benchmark ([max_instrs] defaults to 60_000). *)

val transfer_buffers :
  ?jobs:int -> ?ctx:ctx -> ?max_instrs:int -> ?sizes:int list ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  Mcsim_workload.Spec92.benchmark -> sweep
(** Operand/result transfer-buffer entries per cluster (paper: 8).
    Default sizes 2, 4, 8, 16, 32. *)

val imbalance_threshold :
  ?jobs:int -> ?ctx:ctx -> ?max_instrs:int -> ?thresholds:int list ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  Mcsim_workload.Spec92.benchmark -> sweep
(** The local scheduler's compile-time balance constant. *)

val partitioners :
  ?jobs:int -> ?ctx:ctx -> ?max_instrs:int ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  Mcsim_workload.Spec92.benchmark -> sweep
(** none / random / round-robin / local on the dual-cluster machine. *)

val global_registers :
  ?jobs:int -> ?ctx:ctx -> ?max_instrs:int ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  Mcsim_workload.Spec92.benchmark -> sweep
(** Global-register designation: none / sp only / sp+gp (paper) — the
    assignment the hardware uses for the same native binary. *)

val dispatch_queue_split :
  ?jobs:int -> ?ctx:ctx -> ?max_instrs:int ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  Mcsim_workload.Spec92.benchmark -> sweep
(** Single-cluster machine with dispatch queues of 32–256 entries — the
    compress effect's other half (paper §4.2 discussion). *)

val memory_latency :
  ?jobs:int -> ?ctx:ctx -> ?max_instrs:int -> ?latencies:int list ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  Mcsim_workload.Spec92.benchmark -> sweep
(** Sensitivity of the dual-vs-single comparison to the memory interface's
    fetch latency (the paper fixes it at 16 cycles); each point re-runs
    both machines with the same memory. *)

val mshr_entries :
  ?jobs:int -> ?ctx:ctx -> ?max_instrs:int ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  Mcsim_workload.Spec92.benchmark -> sweep
(** Conventional n-entry MSHR files vs the paper's inverted MSHR (its
    reference [12]): how much the unlimited-outstanding-miss assumption is
    worth on a miss-heavy benchmark. *)

val queue_organization :
  ?jobs:int -> ?ctx:ctx -> ?max_instrs:int ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  Mcsim_workload.Spec92.benchmark -> sweep
(** The paper's single dispatch queue per cluster vs the R10000-style
    per-class split it contrasts itself with (§1), at equal total
    entries. *)

val unrolling :
  ?jobs:int -> ?ctx:ctx -> ?max_instrs:int -> ?factors:int list ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  Mcsim_workload.Spec92.benchmark -> sweep
(** The §6 loop-unrolling extension: unroll the benchmark's inner loops
    (factors default 1/2/4), reschedule with the local scheduler, and run
    the dual-cluster machine. The single-cluster baseline stays the
    non-unrolled native binary. Factor 1 reuses the context's memoized
    local-scheduler binary (unrolling by 1 is the identity). *)

val unrolling_kernel :
  ?jobs:int -> ?max_instrs:int -> ?factors:int list ->
  ?retries:int -> ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) -> ?checkpoint:string ->
  unit -> sweep
(** The same sweep on a hand-written reduction kernel whose iterations
    are genuinely independent apart from one accumulator — the code shape
    the paper's unrolling proposal assumes. *)

val render : sweep -> string
