module Json = Mcsim_obs.Json
module Manifest = Mcsim_obs.Manifest

type t = {
  dir : string;
  kind : string;
  manifest : Manifest.t;
  mutex : Mutex.t;
}

let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    (* A concurrent creator between the check and the mkdir is fine. *)
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

let read_json path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (match Json.of_string contents with Ok v -> Some v | Error _ -> None)
  | exception Sys_error _ -> None

(* Write-to-temp-then-rename, so a unit file is never observed torn:
   rename within one directory is atomic on POSIX. *)
let write_json_atomic path v =
  let tmp =
    Filename.concat (Filename.dirname path) (".tmp-" ^ Filename.basename path)
  in
  Json.write_file tmp v "\n";
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)
(* ------------------------------------------------------------------ *)

let sweep_file dir = Filename.concat dir "sweep.json"

(* The manifest minus its creation timestamp: two opens of the same
   sweep at different times must agree. *)
let identity_manifest = Manifest.identity_json

let sweep_json ~kind ~manifest ~extra =
  Json.Obj
    [ ("schema_version", Json.Int Manifest.schema_version);
      ("kind", Json.String kind);
      ("manifest", Manifest.to_json manifest);
      ("data", Json.Obj [ ("sweep", Json.Obj extra) ]) ]

let identity_of_sweep_json j =
  let kind = Option.bind (Json.member "kind" j) Json.get_string in
  let manifest =
    match Json.member "manifest" j with
    | Some (Json.Obj _ as m) -> Some (Mcsim_obs.Manifest.strip_created m)
    | Some _ | None -> None
  in
  let sweep = Json.path [ "data"; "sweep" ] j in
  match (kind, manifest, sweep) with
  | Some kind, Some manifest, Some sweep -> Some (kind, manifest, sweep)
  | _ -> None

let open_ ~dir ~kind ~manifest ?(extra = []) () =
  mkdir_p dir;
  let t = { dir; kind; manifest; mutex = Mutex.create () } in
  let path = sweep_file dir in
  (if Sys.file_exists path then begin
     let stale reason =
       failwith
         (Printf.sprintf
            "checkpoint %s was written by a different sweep (%s); use a fresh \
             directory or rerun with the original configuration"
            dir reason)
     in
     match Option.bind (read_json path) identity_of_sweep_json with
     | None -> failwith (Printf.sprintf "checkpoint %s: unreadable or corrupt sweep.json" dir)
     | Some (kind', manifest', sweep') ->
       if kind' <> kind then
         stale (Printf.sprintf "sweep kind %S, expected %S" kind' kind);
       if manifest' <> identity_manifest manifest then stale "manifest mismatch";
       if sweep' <> Json.Obj extra then stale "sweep parameter mismatch"
   end
   else write_json_atomic path (sweep_json ~kind ~manifest ~extra));
  t

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

let sanitize key =
  let mapped =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' -> c | _ -> '_')
      key
  in
  if String.length mapped <= 60 then mapped else String.sub mapped 0 60

let unit_basename key =
  (* The digest keeps sanitized-collision and truncated keys distinct. *)
  let digest = String.sub (Digest.to_hex (Digest.string key)) 0 8 in
  Printf.sprintf "unit-%s-%s.json" (sanitize key) digest

let unit_file t key = Filename.concat t.dir (unit_basename key)

let unit_key_of_json j =
  Option.bind (Json.path [ "data"; "unit_key" ] j) Json.get_string

let find t key =
  Mutex.protect t.mutex (fun () ->
      match read_json (unit_file t key) with
      | Some j when unit_key_of_json j = Some key -> Json.member "data" j
      | Some _ | None -> None)

let record t ~key fields =
  let snapshot =
    Json.Obj
      [ ("schema_version", Json.Int Manifest.schema_version);
        ("kind", Json.String "unit");
        ("manifest", Manifest.to_json t.manifest);
        ("data", Json.Obj (("unit_key", Json.String key) :: fields)) ]
  in
  Mutex.protect t.mutex (fun () -> write_json_atomic (unit_file t key) snapshot)

let keys t =
  Mutex.protect t.mutex (fun () ->
      Sys.readdir t.dir |> Array.to_list
      |> List.filter_map (fun name ->
             if
               String.length name > 5
               && String.sub name 0 5 = "unit-"
               && Filename.check_suffix name ".json"
             then Option.bind (read_json (Filename.concat t.dir name)) unit_key_of_json
             else None)
      |> List.sort_uniq String.compare)

(* ------------------------------------------------------------------ *)
(* CLI command record                                                  *)
(* ------------------------------------------------------------------ *)

let command_file dir = Filename.concat dir "command.json"

let write_command ~dir fields =
  mkdir_p dir;
  write_json_atomic (command_file dir) (Json.Obj fields)

let read_command ~dir =
  match read_json (command_file dir) with
  | Some (Json.Obj fields) -> fields
  | Some _ -> failwith (Printf.sprintf "checkpoint %s: corrupt command.json" dir)
  | None ->
    failwith
      (Printf.sprintf
         "%s is not a resumable checkpoint directory (missing or unreadable command.json)"
         dir)
