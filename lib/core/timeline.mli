(** ASCII pipeline timelines — the textual analogue of the paper's timing
    diagrams (Figures 2–5).

    A timeline is built from a machine's event stream and rendered as one
    row per instruction copy and one column per cycle:

    {v
    seq  copy       0123456789
    #0   single C0  .DI W     R
    #2   master C0  .D  IW    R
    #2   slave  C1  .DIo      R
    v}

    Symbols: [F] fetch, [D] dispatch, [I] issue, [o] operand written to
    the other cluster's operand buffer, [r] result written to the other
    cluster's result buffer, [s] suspend, [w] wakeup, [W] writeback,
    [R] retire, [X] replay point. *)

type t

val create : unit -> t

val observer : t -> Mcsim_cluster.Machine.event -> unit
(** Feed this as [~on_event] to {!Mcsim_cluster.Machine.run}. *)

val record :
  ?max_cycles:int ->
  Mcsim_cluster.Machine.config ->
  Mcsim_isa.Instr.dynamic array ->
  t * Mcsim_cluster.Machine.result
(** Run the machine with an attached timeline. *)

val render :
  ?first_seq:int -> ?last_seq:int -> ?max_width:int -> t -> string
(** Rows for instructions in [\[first_seq, last_seq\]] (defaults:
    everything recorded); columns clipped to [max_width] (default 100)
    cycles starting at the earliest event of the selected rows. When the
    selection contains no events the result is ["(no events)\n"].
    @raise Invalid_argument if [max_width <= 0]. *)
