(** Content-addressed on-disk cache of flat binary traces.

    Trace generation (profile + compile + walk) is a pure function of
    [(benchmark, scheduler, seed, max_instrs)], so its output can be paid
    once per corpus and memory-mapped back on every later run — the same
    amortize-once discipline {!Checkpoint} applies to experiment units,
    with the same safety properties: files are written to a temp name and
    atomically renamed into place, keys are digest-addressed, and
    anything unreadable, truncated, corrupt, or written under a different
    format version is treated as missing and regenerated.

    {1 File format}

    One file per trace, [trace-<key>-<digest8>.mctrace], a 32-byte header
    followed by the three {!Mcsim_isa.Flat_trace} arrays back to back and
    the full key string as a trailer:

    {v
    offset size  field
    0      8     magic "MCTRACE1"
    8      4     format version (native-endian int32 — doubles as an
                 endianness probe: a foreign-endian file reads as a
                 version mismatch and is regenerated)
    12     4     instruction count n
    16     8     FNV-1a checksum of the payload words (native-endian
                 int64; order-sensitive, computed over the three arrays
                 in file order)
    24     4     key length L (native-endian int32)
    28     4     reserved (zero)
    32     4·n   pcs   (int32)
    32+4n  4·n   codes (int32)
    32+8n  8·n   aux   (int64)
    32+16n L     full key string ({!key_string})
    v}

    Loading maps the three regions copy-on-write and verifies the
    checksum over the mapped words: no per-instruction allocation, no
    streaming re-read (the checksum runs at memory speed, where an MD5
    pass would cost more than the load it protects), and the OS shares
    the pages across concurrent simulator processes. The file name only
    carries a 32-bit digest prefix of the key, so {!find} also compares
    the trailer against the key it is looking up — a digest-prefix
    collision between two keys reads as a miss, never as the wrong
    trace. *)

type t
(** A store rooted at a directory. *)

val open_ : dir:string -> t
(** Create the directory (and parents) if needed. *)

val dir : t -> string

(** What a cached trace is a function of. [scheduler] is the compile
    pipeline's scheduler description (e.g. ["none"], ["local"]) — the
    rescheduled binary of the same benchmark is a different trace. *)
type key = {
  benchmark : string;
  scheduler : string;
  seed : int;
  max_instrs : int;
}

val key_string : key -> string
(** The identity string the file name's digest is derived from; includes
    the format version. *)

val path : t -> key -> string
(** The file this key maps to (whether or not it exists). *)

val find : t -> key -> Mcsim_isa.Flat_trace.t option
(** Memory-map the cached trace, or [None] if absent, corrupt, truncated,
    checksum-mismatched, version-mismatched, or stored under a different
    full key (file-name digest collision). *)

val save : t -> key -> Mcsim_isa.Flat_trace.t -> unit
(** Write atomically (temp file + rename); concurrent writers of the same
    key are safe, last rename wins. A failed write removes its temp file
    before re-raising.
    @raise Sys_error / Unix.Unix_error on I/O failure. *)

val load_or_build :
  t -> key -> (unit -> Mcsim_isa.Flat_trace.t) -> Mcsim_isa.Flat_trace.t * [ `Hit | `Miss ]
(** [find], falling back to building and saving. A failed save (e.g. a
    read-only store) is swallowed — the build result is still returned,
    the cache just stays cold. *)

(** One stored trace, as listed by {!entries}. *)
type entry = {
  e_file : string;  (** basename within the store *)
  e_instrs : int;
  e_bytes : int;  (** file size *)
  e_valid : bool;  (** header and payload checksum check out *)
}

val entries : t -> entry list
(** All [*.mctrace] files in the store, sorted by name. Validation maps
    and checksums each file once. *)

val prune_keep_latest : t -> int -> string list
(** [prune_keep_latest t n] deletes all but the [n] most recently
    modified [*.mctrace] files (ties broken by name) and returns the
    removed basenames, sorted — bounds on-disk cache growth.
    @raise Invalid_argument when [n < 0]. *)
