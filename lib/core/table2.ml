module Spec92 = Mcsim_workload.Spec92
module Machine = Mcsim_cluster.Machine

type row = {
  benchmark : string;
  none_pct : float;
  local_pct : float;
  single_cycles : int;
  none_cycles : int;
  local_cycles : int;
  none_replays : int;
  local_replays : int;
}

let paper =
  [ ("compress", -14.0, 6.0); ("doduc", -21.0, -15.0); ("gcc1", -15.0, -10.0);
    ("ora", -5.0, -22.0); ("su2cor", -36.0, -25.0); ("tomcatv", -41.0, -19.0) ]

type report = {
  rows : row list;  (** in benchmark order, failed benchmarks omitted *)
  failed : (string * string) list;  (** (benchmark, one-line reason) *)
}

let row_of_comparison b (c : Experiment.comparison) =
  let find name =
    match List.find_opt (fun r -> r.Experiment.scheduler = name) c.Experiment.runs with
    | Some r -> r
    | None -> failwith "Table2.run: missing scheduler run"
  in
  let none = find "none" and local = find "local" in
  { benchmark = Spec92.name b;
    none_pct = none.Experiment.speedup_pct;
    local_pct = local.Experiment.speedup_pct;
    single_cycles = c.Experiment.single.Machine.cycles;
    none_cycles = none.Experiment.dual.Machine.cycles;
    local_cycles = local.Experiment.dual.Machine.cycles;
    none_replays = none.Experiment.dual.Machine.replays;
    local_replays = local.Experiment.dual.Machine.replays }

let run ?jobs ?(max_instrs = 120_000) ?(seed = 1) ?(benchmarks = Spec92.all) ?engine
    ?sampling ?single_config ?dual_config ?retries ?backoff ?inject_fault ?checkpoint
    ?trace_cache () =
  let comparisons =
    Experiment.run_many ?jobs ~max_instrs ~seed ?engine ?sampling ?single_config
      ?dual_config ?retries ?backoff ?inject_fault ?checkpoint ?trace_cache
      (List.map Spec92.program benchmarks)
  in
  List.map2 row_of_comparison benchmarks comparisons

let run_report ?jobs ?(max_instrs = 120_000) ?(seed = 1) ?(benchmarks = Spec92.all)
    ?engine ?sampling ?single_config ?dual_config ?retries ?backoff ?inject_fault
    ?checkpoint ?trace_cache () =
  let statuses =
    Experiment.run_many_status ?jobs ~max_instrs ~seed ?engine ?sampling ?single_config
      ?dual_config ?retries ?backoff ?inject_fault ?checkpoint ?trace_cache
      (List.map Spec92.program benchmarks)
  in
  List.fold_right2
    (fun b status report ->
      match status with
      | Ok c -> { report with rows = row_of_comparison b c :: report.rows }
      | Error msg -> { report with failed = (Spec92.name b, msg) :: report.failed })
    benchmarks statuses { rows = []; failed = [] }

let pct v = Printf.sprintf "%+.1f" v

let render rows =
  let header =
    [ "benchmark"; "none (measured)"; "none (paper)"; "local (measured)"; "local (paper)" ]
  in
  let body =
    List.map
      (fun r ->
        let p_none, p_local =
          match List.find_opt (fun (n, _, _) -> n = r.benchmark) paper with
          | Some (_, a, b) -> (pct a, pct b)
          | None -> ("-", "-")
        in
        [ r.benchmark; pct r.none_pct; p_none; pct r.local_pct; p_local ])
      rows
  in
  Mcsim_util.Text_table.render
    ~aligns:[| Mcsim_util.Text_table.Left; Right; Right; Right; Right |]
    (header :: body)
  ^ "positive = dual-cluster machine needs fewer cycles than the single-cluster machine\n"

let shape_holds rows =
  let get name = List.find_opt (fun r -> r.benchmark = name) rows in
  let non_ora = List.filter (fun r -> r.benchmark <> "ora") rows in
  let claims = ref [] in
  let claim ok desc = claims := (ok, desc) :: !claims in
  claim
    (List.for_all (fun r -> r.local_pct > r.none_pct) non_ora)
    "the local scheduler improves every benchmark except ora";
  (match get "ora" with
  | Some ora -> claim (ora.local_pct < ora.none_pct) "the local scheduler degrades ora"
  | None -> ());
  claim
    (List.for_all (fun r -> r.none_pct < 0.0) rows)
    "every native binary is slower on the dual-cluster machine";
  claim
    (List.for_all (fun r -> r.local_pct > -50.0) rows)
    "worst-case local-scheduler slowdown is within 2x of the paper's 25%";
  (match (get "su2cor", get "tomcatv", get "ora") with
  | Some su, Some tv, Some ora ->
    claim
      (min su.none_pct tv.none_pct < ora.none_pct)
      "the vector codes (su2cor, tomcatv) suffer more than ora under 'none'"
  | _, _, _ -> ());
  List.rev !claims
