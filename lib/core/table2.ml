module Spec92 = Mcsim_workload.Spec92
module Machine = Mcsim_cluster.Machine

type row = {
  benchmark : string;
  none_pct : float;
  local_pct : float;
  single_cycles : int;
  none_cycles : int;
  local_cycles : int;
  none_replays : int;
  local_replays : int;
}

let paper =
  [ ("compress", -14.0, 6.0); ("doduc", -21.0, -15.0); ("gcc1", -15.0, -10.0);
    ("ora", -5.0, -22.0); ("su2cor", -36.0, -25.0); ("tomcatv", -41.0, -19.0) ]

type report = {
  rows : row list;  (** in benchmark order, failed benchmarks omitted *)
  failed : (string * string) list;  (** (benchmark, one-line reason) *)
}

let row_of_comparison b (c : Experiment.comparison) =
  let find name =
    match List.find_opt (fun r -> r.Experiment.scheduler = name) c.Experiment.runs with
    | Some r -> r
    | None -> failwith "Table2.run: missing scheduler run"
  in
  let none = find "none" and local = find "local" in
  { benchmark = Spec92.name b;
    none_pct = none.Experiment.speedup_pct;
    local_pct = local.Experiment.speedup_pct;
    single_cycles = c.Experiment.single.Machine.cycles;
    none_cycles = none.Experiment.dual.Machine.cycles;
    local_cycles = local.Experiment.dual.Machine.cycles;
    none_replays = none.Experiment.dual.Machine.replays;
    local_replays = local.Experiment.dual.Machine.replays }

(* ------------------------------------------------------------------ *)
(* Row (de)serialization and the global result cache                    *)
(* ------------------------------------------------------------------ *)

module Json = Mcsim_obs.Json

let row_json r =
  Json.Obj
    [ ("benchmark", Json.String r.benchmark);
      ("none_pct", Json.Float r.none_pct);
      ("local_pct", Json.Float r.local_pct);
      ("single_cycles", Json.Int r.single_cycles);
      ("none_cycles", Json.Int r.none_cycles);
      ("local_cycles", Json.Int r.local_cycles);
      ("none_replays", Json.Int r.none_replays);
      ("local_replays", Json.Int r.local_replays) ]

let ( let* ) = Option.bind

let row_of_json j =
  let int k = Option.bind (Json.member k j) Json.get_int in
  let* benchmark = Option.bind (Json.member "benchmark" j) Json.get_string in
  let* none_pct = Option.bind (Json.member "none_pct" j) Json.get_float in
  let* local_pct = Option.bind (Json.member "local_pct" j) Json.get_float in
  let* single_cycles = int "single_cycles" in
  let* none_cycles = int "none_cycles" in
  let* local_cycles = int "local_cycles" in
  let* none_replays = int "none_replays" in
  let* local_replays = int "local_replays" in
  Some
    { benchmark; none_pct; local_pct; single_cycles; none_cycles; local_cycles;
      none_replays; local_replays }

(* The global-store identity of one Table-2 row. The manifest pins the
   dual config (digest), seed, engine, sampling policy, trace budget and
   benchmark; the key carries what the manifest cannot: the single
   config and the sampling policy's own seed. The serve daemon and the
   batch [--result-cache] path both address rows through this, which is
   what lets them share one cache. *)
let row_store_unit ?engine ?sampling ?single_config ?dual_config ~max_instrs ~seed b =
  let single_config =
    match single_config with Some c -> c | None -> Machine.single_cluster ()
  in
  let dual_config =
    match dual_config with Some c -> c | None -> Machine.dual_cluster ()
  in
  let manifest =
    Mcsim_obs.Manifest.make ?engine ~seed ?sampling ~benchmark:(Spec92.name b)
      ~trace_instrs:max_instrs dual_config
  in
  let key =
    Printf.sprintf "table2/row:single=%s:sampling_seed=%s"
      (Digest.to_hex (Digest.string (Mcsim_obs.Manifest.config_description single_config)))
      (match sampling with
      | Some p -> string_of_int p.Mcsim_sampling.Sampling.seed
      | None -> "-")
  in
  (manifest, key)

let find_cached_row store ~manifest ~key =
  let* d = Result_store.find store ~manifest ~key in
  let* rj = Json.member "row" d in
  row_of_json rj

let record_row store ~manifest ~key row =
  Result_store.record store ~manifest ~key [ ("row", row_json row) ]

(* Pre-filter the benchmark list through the global result store and
   record what the inner run produces. With a [checkpoint] the filter is
   skipped — the checkpoint identity pins the benchmark list, so a
   resume whose cached set grew in the meantime would otherwise be
   refused as a different sweep; the checkpoint already makes reruns
   cheap, and fresh rows still land in the store. *)
let with_result_cache ~result_cache ~checkpoint ~benchmarks
    ~(unit_of : Spec92.benchmark -> Mcsim_obs.Manifest.t * string)
    ~(run_missing : Spec92.benchmark list -> (Spec92.benchmark * (row, string) result) list)
    () : (Spec92.benchmark * (row, string) result) list =
  match result_cache with
  | None -> run_missing benchmarks
  | Some dir ->
    let store = Result_store.open_ ~dir in
    let looked =
      List.map
        (fun b ->
          let manifest, key = unit_of b in
          let cached =
            if checkpoint = None then find_cached_row store ~manifest ~key else None
          in
          (b, manifest, key, cached))
        benchmarks
    in
    let missing =
      List.filter_map (fun (b, _, _, c) -> if c = None then Some b else None) looked
    in
    let fresh = if missing = [] then [] else run_missing missing in
    List.map
      (fun (b, manifest, key, cached) ->
        match cached with
        | Some row -> (b, Ok row)
        | None -> (
          match List.assoc b fresh with
          | Ok row as ok ->
            record_row store ~manifest ~key row;
            (b, ok)
          | Error _ as e -> (b, e)))
      looked

let run ?jobs ?(max_instrs = 120_000) ?(seed = 1) ?(benchmarks = Spec92.all) ?engine
    ?sampling ?single_config ?dual_config ?retries ?backoff ?inject_fault ?checkpoint
    ?trace_cache ?result_cache () =
  let run_missing bs =
    let comparisons =
      Experiment.run_many ?jobs ~max_instrs ~seed ?engine ?sampling ?single_config
        ?dual_config ?retries ?backoff ?inject_fault ?checkpoint ?trace_cache
        (List.map Spec92.program bs)
    in
    List.map2 (fun b c -> (b, Ok (row_of_comparison b c))) bs comparisons
  in
  let unit_of =
    row_store_unit ?engine ?sampling ?single_config ?dual_config ~max_instrs ~seed
  in
  with_result_cache ~result_cache ~checkpoint ~benchmarks ~unit_of ~run_missing ()
  |> List.map (fun (_, r) -> match r with Ok row -> row | Error _ -> assert false)

let run_report ?jobs ?(max_instrs = 120_000) ?(seed = 1) ?(benchmarks = Spec92.all)
    ?engine ?sampling ?single_config ?dual_config ?retries ?backoff ?inject_fault
    ?checkpoint ?trace_cache ?result_cache () =
  let run_missing bs =
    let statuses =
      Experiment.run_many_status ?jobs ~max_instrs ~seed ?engine ?sampling ?single_config
        ?dual_config ?retries ?backoff ?inject_fault ?checkpoint ?trace_cache
        (List.map Spec92.program bs)
    in
    List.map2 (fun b st -> (b, Result.map (row_of_comparison b) st)) bs statuses
  in
  let unit_of =
    row_store_unit ?engine ?sampling ?single_config ?dual_config ~max_instrs ~seed
  in
  with_result_cache ~result_cache ~checkpoint ~benchmarks ~unit_of ~run_missing ()
  |> List.fold_left
       (fun report (b, st) ->
         match st with
         | Ok row -> { report with rows = report.rows @ [ row ] }
         | Error msg -> { report with failed = report.failed @ [ (Spec92.name b, msg) ] })
       { rows = []; failed = [] }

let pct v = Printf.sprintf "%+.1f" v

let render rows =
  let header =
    [ "benchmark"; "none (measured)"; "none (paper)"; "local (measured)"; "local (paper)" ]
  in
  let body =
    List.map
      (fun r ->
        let p_none, p_local =
          match List.find_opt (fun (n, _, _) -> n = r.benchmark) paper with
          | Some (_, a, b) -> (pct a, pct b)
          | None -> ("-", "-")
        in
        [ r.benchmark; pct r.none_pct; p_none; pct r.local_pct; p_local ])
      rows
  in
  Mcsim_util.Text_table.render
    ~aligns:[| Mcsim_util.Text_table.Left; Right; Right; Right; Right |]
    (header :: body)
  ^ "positive = dual-cluster machine needs fewer cycles than the single-cluster machine\n"

let shape_holds rows =
  let get name = List.find_opt (fun r -> r.benchmark = name) rows in
  let non_ora = List.filter (fun r -> r.benchmark <> "ora") rows in
  let claims = ref [] in
  let claim ok desc = claims := (ok, desc) :: !claims in
  claim
    (List.for_all (fun r -> r.local_pct > r.none_pct) non_ora)
    "the local scheduler improves every benchmark except ora";
  (match get "ora" with
  | Some ora -> claim (ora.local_pct < ora.none_pct) "the local scheduler degrades ora"
  | None -> ());
  claim
    (List.for_all (fun r -> r.none_pct < 0.0) rows)
    "every native binary is slower on the dual-cluster machine";
  claim
    (List.for_all (fun r -> r.local_pct > -50.0) rows)
    "worst-case local-scheduler slowdown is within 2x of the paper's 25%";
  (match (get "su2cor", get "tomcatv", get "ora") with
  | Some su, Some tv, Some ora ->
    claim
      (min su.none_pct tv.none_pct < ora.none_pct)
      "the vector codes (su2cor, tomcatv) suffer more than ora under 'none'"
  | _, _, _ -> ());
  List.rev !claims
