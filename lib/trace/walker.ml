module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Profile = Mcsim_ir.Profile
module Branch_model = Mcsim_ir.Branch_model
module Mem_stream = Mcsim_ir.Mem_stream
module Mach_prog = Mcsim_compiler.Mach_prog
module Instr = Mcsim_isa.Instr
module Flat_trace = Mcsim_isa.Flat_trace
module Rng = Mcsim_util.Rng

let split_streams seed =
  let root = Rng.create seed in
  let branch_rng = Rng.split root in
  let mem_rng = Rng.split root in
  (branch_rng, mem_rng)

let profile ?(seed = 1) ?(max_blocks = 1_000_000) prog =
  let branch_rng, _ = split_streams seed in
  let states =
    Array.map
      (fun (b : Program.block) ->
        match b.Program.term with
        | Il.Cond { model; _ } -> Some (Branch_model.init model)
        | Il.Fallthrough _ | Il.Jump _ | Il.Halt -> None)
      prog.Program.blocks
  in
  let p = Profile.create ~num_blocks:(Program.num_blocks prog) in
  let block = ref (Some prog.Program.entry) in
  let visited = ref 0 in
  while Option.is_some !block && !visited < max_blocks do
    let b = Option.get !block in
    Profile.bump p b;
    incr visited;
    block :=
      (match prog.Program.blocks.(b).Program.term with
      | Il.Fallthrough next | Il.Jump next -> Some next
      | Il.Halt -> None
      | Il.Cond { taken; not_taken; _ } ->
        let st = match states.(b) with Some s -> s | None -> assert false in
        Some (if Branch_model.next st branch_rng then taken else not_taken))
  done;
  p

let il_trace_length ?(seed = 1) ?(max_blocks = 1_000_000) prog =
  let p = profile ~seed ~max_blocks prog in
  let total = ref 0 in
  Array.iter
    (fun (b : Program.block) ->
      let slots =
        Array.length b.Program.instrs
        + match b.Program.term with Il.Jump _ | Il.Cond _ -> 1 | Il.Fallthrough _ | Il.Halt -> 0
      in
      total := !total + int_of_float (Profile.count p b.Program.id) * slots)
    prog.Program.blocks;
  !total

let trace_flat ?(seed = 1) ?(max_instrs = 300_000) (m : Mach_prog.t) =
  let branch_rng, mem_rng = split_streams seed in
  let branch_states =
    Array.map
      (fun (b : Mach_prog.block) ->
        match b.Mach_prog.term with
        | Mach_prog.Mt_cond { model; _ } -> Some (Branch_model.init model)
        | Mach_prog.Mt_fallthrough _ | Mach_prog.Mt_jump _ | Mach_prog.Mt_halt -> None)
      m.Mach_prog.blocks
  in
  let mem_states =
    Array.map
      (fun (b : Mach_prog.block) ->
        Array.map
          (fun (mi : Mach_prog.minstr) -> Option.map Mem_stream.init mi.Mach_prog.mi_mem)
          b.Mach_prog.instrs)
      m.Mach_prog.blocks
  in
  (* Emission goes straight into the packed struct-of-arrays encoding: no
     per-instruction records, no option boxes — the walker's only
     allocations are the branch/mem generator state set up above. *)
  let out = Flat_trace.Builder.create ~capacity:(min max_instrs 65_536) () in
  let emit ?mem_addr ?branch pc instr =
    if Flat_trace.Builder.length out < max_instrs then
      Flat_trace.Builder.emit out ~pc ?mem_addr ?branch instr
  in
  let full () = Flat_trace.Builder.length out >= max_instrs in
  let current = ref (Some m.Mach_prog.entry) in
  while Option.is_some !current && not (full ()) do
    let block = Option.get !current in
    let b = m.Mach_prog.blocks.(block) in
    let base_pc = m.Mach_prog.block_pc.(block) in
    Array.iteri
      (fun k (mi : Mach_prog.minstr) ->
        if not (full ()) then begin
          let mem_addr =
            match mem_states.(block).(k) with
            | Some st -> Some (Mem_stream.next st mem_rng)
            | None -> None
          in
          emit ?mem_addr (base_pc + k) mi.Mach_prog.mi
        end)
      b.Mach_prog.instrs;
    if full () then current := None
    else begin
      let term_pc = m.Mach_prog.term_pc.(block) in
      match b.Mach_prog.term with
      | Mach_prog.Mt_fallthrough next -> current := Some next
      | Mach_prog.Mt_halt -> current := None
      | Mach_prog.Mt_jump next ->
        emit term_pc
          ~branch:
            { Instr.conditional = false; taken = true; target = m.Mach_prog.block_pc.(next) }
          (Instr.make ~op:Mcsim_isa.Op_class.Control ~srcs:[] ~dst:None);
        current := Some next
      | Mach_prog.Mt_cond { src; taken; not_taken; _ } ->
        let st = match branch_states.(block) with Some s -> s | None -> assert false in
        let outcome = Branch_model.next st branch_rng in
        let next = if outcome then taken else not_taken in
        emit term_pc
          ~branch:
            { Instr.conditional = true; taken = outcome;
              target = m.Mach_prog.block_pc.(next) }
          (Instr.make ~op:Mcsim_isa.Op_class.Control ~srcs:(Option.to_list src) ~dst:None);
        current := Some next
    end
  done;
  Flat_trace.Builder.finish out

let trace ?seed ?max_instrs m =
  Flat_trace.to_dynamic_array (trace_flat ?seed ?max_instrs m)
