(** Trace generation: the stand-in for the paper's ATOM instrumentation.

    The walker executes a program's control-flow graph with a seeded
    deterministic generator driving conditional-branch outcomes and memory
    addresses, and produces the committed dynamic instruction stream the
    trace-driven machines consume.

    Two independent random streams are derived from the seed: one for
    branch outcomes, one for memory addresses. Because spill code never
    draws from the branch stream, the {e native} and {e rescheduled}
    binaries of the same program follow the identical dynamic path — the
    property the paper gets for free by running the same benchmark input
    through both binaries.

    {!profile} performs the paper's profiling run (footnote 1 of §3.5): a
    walk of the {e IL} program counting basic-block executions. With equal
    seeds, [profile] and [trace] see the same branch outcome sequence. *)

val profile :
  ?seed:int -> ?max_blocks:int -> Mcsim_ir.Program.t -> Mcsim_ir.Profile.t
(** Walk until [Halt] or [max_blocks] (default 1_000_000) block
    executions. *)

val trace_flat :
  ?seed:int ->
  ?max_instrs:int ->
  Mcsim_compiler.Mach_prog.t ->
  Mcsim_isa.Flat_trace.t
(** Emit the dynamic instruction stream in the packed struct-of-arrays
    encoding: one element per executed body instruction, [jump] or
    conditional branch ([Fallthrough]/[Halt] emit nothing). Stops at
    [Halt] or once [max_instrs] (default 300_000) instructions have been
    emitted. Generation allocates no per-instruction records. *)

val trace :
  ?seed:int ->
  ?max_instrs:int ->
  Mcsim_compiler.Mach_prog.t ->
  Mcsim_isa.Instr.dynamic array
(** {!trace_flat} materialised as records — one {!Mcsim_isa.Instr.dynamic}
    per instruction, [seq] equal to the index. *)

val il_trace_length :
  ?seed:int -> ?max_blocks:int -> Mcsim_ir.Program.t -> int
(** Dynamic IL instruction count of the profiling walk (terminator slots
    included) — handy for sizing experiments. *)
