(** A minimal JSON tree: constructor, serializer and parser.

    The observability layer writes Chrome-trace and metrics files and the
    tests read them back; depending on an external JSON package for that
    would be the only third-party runtime dependency of the whole
    simulator, so this ~200-line subset is kept in-tree instead. It
    covers exactly RFC 8259 with two deliberate restrictions: object keys
    are kept in insertion order (serialization is deterministic), and
    numbers parse as [Int] when they look integral ([-?[0-9]+]) and as
    [Float] otherwise, so a serialize/parse round trip is the identity on
    trees the serializer can produce. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Serialize. Two-space indentation unless [minify] (default false).
    Floats print with the shortest precision that parses back to the
    same value (NaN and infinities as [null] — JSON has no spelling for
    them); strings escape double quotes, backslashes, control characters
    and nothing else. *)

val write_file : string -> t -> string -> unit
(** [write_file path json trailer] writes [to_string json ^ trailer]
    (pass ["\n"] for a trailing newline). *)

val max_depth : int
(** Maximum container nesting {!of_string} accepts (512). The parser
    recurses once per level, so the bound turns hostile deeply-nested
    input — the serve protocol parses untrusted socket bytes — into a
    one-line error instead of a stack overflow. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    Errors are one-line messages with a character offset; input nested
    deeper than {!max_depth} is an error, never a crash. *)

(** {2 Tree queries} — conveniences for tests and validators. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on absent fields and non-objects. *)

val path : string list -> t -> t option
(** Nested {!member}. *)

val to_list : t -> t list
(** The elements of a [List]; [] otherwise. *)

val get_int : t -> int option
(** [Int n] (or integral [Float]); [None] otherwise. *)

val get_string : t -> string option

val get_float : t -> float option
(** [Float f] or [Int n] (the serializer prints integral floats without
    a decimal point, so they reparse as [Int]); [None] otherwise. *)
