module Machine = Mcsim_cluster.Machine
module Assignment = Mcsim_cluster.Assignment

type t = {
  num_clusters : int;
  period : int;
  mutable events : Machine.event list;  (* arrival order, reversed *)
  mutable samples : Machine.occupancy list;  (* reversed *)
}

let create ?(counter_period = 8) (cfg : Machine.config) =
  if counter_period < 1 then invalid_arg "Trace_export.create: counter_period < 1";
  { num_clusters = Assignment.num_clusters cfg.Machine.assignment;
    period = counter_period;
    events = [];
    samples = [] }

let counter_period t = t.period
let observer t ev = t.events <- ev :: t.events
let occupancy_observer t oc = t.samples <- oc :: t.samples

let record ?engine ?counter_period ?max_cycles cfg trace =
  let t = create ?counter_period cfg in
  let result =
    Machine.run ?engine ~on_event:(observer t) ~on_occupancy:(occupancy_observer t)
      ~occupancy_period:t.period ?max_cycles cfg trace
  in
  (t, result)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

(* Processes: pid 0 is the shared front end, pid [c + 1] is cluster [c].
   Threads within a process are pipeline stages. *)
let frontend_pid = 0
let cluster_pid c = c + 1
let tid_fetch = 0
let tid_retire = 1
let tid_replay = 2
let tid_dispatch = 0
let tid_issue = 1
let tid_writeback = 2
let tid_transfer = 3

let ev ?(args = []) ~name ~ph ~ts ~pid ~tid extra =
  Json.Obj
    ([ ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid) ]
    @ extra
    @ (if args = [] then [] else [ ("args", Json.Obj args) ]))

let instant ?args ~name ~ts ~pid ~tid () =
  ev ?args ~name ~ph:"i" ~ts ~pid ~tid [ ("s", Json.String "t") ]

let metadata ~name ~pid ~tid ~value =
  ev ~name ~ph:"M" ~ts:0 ~pid ~tid ~args:[ ("name", Json.String value) ] []

let counter ~name ~ts ~pid ~value =
  ev ~name ~ph:"C" ~ts ~pid ~tid:0 ~args:[ ("entries", Json.Int value) ] []

let role_str = Machine.role_to_string

(* One async ("b"/"e") slice per instruction copy, dispatch to last
   pipeline event. Keyed by (seq, role, cluster); a replayed instruction
   redispatches, and [Hashtbl.add]'s shadowing makes updates hit the
   newest incarnation while older rows stay recorded. *)
type row = { r_seq : int; r_role : Machine.role; r_cluster : int;
             r_start : int; mutable r_end : int }

let build_rows events =
  let rows : (int * Machine.role * int, row) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let touch seq role cluster cycle =
    match Hashtbl.find_opt rows (seq, role, cluster) with
    | Some r -> r.r_end <- max r.r_end cycle
    | None -> ()
  in
  List.iter
    (function
      | Machine.Ev_dispatch { cycle; seq; cluster; role; _ } ->
        let r = { r_seq = seq; r_role = role; r_cluster = cluster; r_start = cycle;
                  r_end = cycle }
        in
        Hashtbl.add rows (seq, role, cluster) r;
        order := r :: !order
      | Machine.Ev_issue { cycle; seq; cluster; role } -> touch seq role cluster cycle
      | Machine.Ev_writeback { cycle; seq; cluster; role } -> touch seq role cluster cycle
      | Machine.Ev_suspend { cycle; seq; cluster } ->
        touch seq Machine.Slave_copy cluster cycle
      | Machine.Ev_wakeup { cycle; seq; cluster } ->
        touch seq Machine.Slave_copy cluster cycle
      | Machine.Ev_operand_forward { cycle; seq; from_cluster; _ } ->
        touch seq Machine.Slave_copy from_cluster cycle
      | Machine.Ev_result_forward _ | Machine.Ev_fetch _ | Machine.Ev_retire _
      | Machine.Ev_replay _ -> ())
    events;
  List.rev !order

let event_json acc = function
  | Machine.Ev_fetch { cycle; seq } ->
    instant ~name:(Printf.sprintf "fetch #%d" seq)
      ~args:[ ("seq", Json.Int seq) ]
      ~ts:cycle ~pid:frontend_pid ~tid:tid_fetch ()
    :: acc
  | Machine.Ev_retire { cycle; seq } ->
    instant ~name:(Printf.sprintf "retire #%d" seq)
      ~args:[ ("seq", Json.Int seq) ]
      ~ts:cycle ~pid:frontend_pid ~tid:tid_retire ()
    :: acc
  | Machine.Ev_replay { cycle; seq } ->
    instant ~name:(Printf.sprintf "replay #%d" seq)
      ~args:[ ("seq", Json.Int seq) ]
      ~ts:cycle ~pid:frontend_pid ~tid:tid_replay ()
    :: acc
  | Machine.Ev_dispatch { cycle; seq; cluster; role; scenario } ->
    instant ~name:(Printf.sprintf "dispatch #%d" seq)
      ~args:[ ("seq", Json.Int seq); ("role", Json.String (role_str role));
              ("scenario", Json.Int scenario) ]
      ~ts:cycle ~pid:(cluster_pid cluster) ~tid:tid_dispatch ()
    :: acc
  | Machine.Ev_issue { cycle; seq; cluster; role } ->
    instant ~name:(Printf.sprintf "issue #%d" seq)
      ~args:[ ("seq", Json.Int seq); ("role", Json.String (role_str role)) ]
      ~ts:cycle ~pid:(cluster_pid cluster) ~tid:tid_issue ()
    :: acc
  | Machine.Ev_writeback { cycle; seq; cluster; role } ->
    instant ~name:(Printf.sprintf "writeback #%d" seq)
      ~args:[ ("seq", Json.Int seq); ("role", Json.String (role_str role)) ]
      ~ts:cycle ~pid:(cluster_pid cluster) ~tid:tid_writeback ()
    :: acc
  | Machine.Ev_suspend { cycle; seq; cluster } ->
    instant ~name:(Printf.sprintf "suspend #%d" seq)
      ~args:[ ("seq", Json.Int seq) ]
      ~ts:cycle ~pid:(cluster_pid cluster) ~tid:tid_transfer ()
    :: acc
  | Machine.Ev_wakeup { cycle; seq; cluster } ->
    instant ~name:(Printf.sprintf "wakeup #%d" seq)
      ~args:[ ("seq", Json.Int seq) ]
      ~ts:cycle ~pid:(cluster_pid cluster) ~tid:tid_transfer ()
    :: acc
  | Machine.Ev_operand_forward { cycle; seq; from_cluster; to_cluster } ->
    let slice pid name =
      ev ~name ~ph:"X" ~ts:cycle ~pid ~tid:tid_transfer
        ~args:[ ("seq", Json.Int seq) ]
        [ ("dur", Json.Int 1) ]
    in
    let flow ph pid extra =
      ev
        ~name:(Printf.sprintf "operand #%d" seq)
        ~ph ~ts:cycle ~pid ~tid:tid_transfer
        ([ ("cat", Json.String "flow"); ("id", Json.Int (2 * seq)) ] @ extra)
    in
    flow "f" (cluster_pid to_cluster) [ ("bp", Json.String "e") ]
    :: flow "s" (cluster_pid from_cluster) []
    :: slice (cluster_pid to_cluster)
         (Printf.sprintf "operand #%d from C%d" seq from_cluster)
    :: slice (cluster_pid from_cluster)
         (Printf.sprintf "operand #%d to C%d" seq to_cluster)
    :: acc
  | Machine.Ev_result_forward { cycle; seq; from_cluster; to_cluster } ->
    let slice pid name =
      ev ~name ~ph:"X" ~ts:cycle ~pid ~tid:tid_transfer
        ~args:[ ("seq", Json.Int seq) ]
        [ ("dur", Json.Int 1) ]
    in
    let flow ph pid extra =
      ev
        ~name:(Printf.sprintf "result #%d" seq)
        ~ph ~ts:cycle ~pid ~tid:tid_transfer
        ([ ("cat", Json.String "flow"); ("id", Json.Int ((2 * seq) + 1)) ] @ extra)
    in
    flow "f" (cluster_pid to_cluster) [ ("bp", Json.String "e") ]
    :: flow "s" (cluster_pid from_cluster) []
    :: slice (cluster_pid to_cluster)
         (Printf.sprintf "result #%d from C%d" seq from_cluster)
    :: slice (cluster_pid from_cluster)
         (Printf.sprintf "result #%d to C%d" seq to_cluster)
    :: acc

let row_json acc (r : row) =
  let common ph ts =
    ev
      ~name:(Printf.sprintf "#%d %s" r.r_seq (role_str r.r_role))
      ~ph ~ts ~pid:(cluster_pid r.r_cluster) ~tid:tid_dispatch
      [ ("cat", Json.String "copy"); ("id", Json.Int r.r_seq) ]
  in
  common "e" (max r.r_end (r.r_start + 1)) :: common "b" r.r_start :: acc

let sample_json acc (oc : Machine.occupancy) =
  let ts = oc.Machine.oc_cycle in
  let per_cluster name values acc =
    fst
      (Array.fold_left
         (fun (acc, c) v -> (counter ~name ~ts ~pid:(cluster_pid c) ~value:v :: acc, c + 1))
         (acc, 0) values)
  in
  counter ~name:"ROB" ~ts ~pid:frontend_pid ~value:oc.Machine.oc_rob
  :: per_cluster "dispatch_queue" oc.Machine.oc_dispatch_queues
       (per_cluster "operand_buffer" oc.Machine.oc_operand_buffers
          (per_cluster "result_buffer" oc.Machine.oc_result_buffers acc))

let metadata_events t =
  let frontend =
    [ metadata ~name:"process_name" ~pid:frontend_pid ~tid:0 ~value:"frontend";
      metadata ~name:"thread_name" ~pid:frontend_pid ~tid:tid_fetch ~value:"fetch";
      metadata ~name:"thread_name" ~pid:frontend_pid ~tid:tid_retire ~value:"retire";
      metadata ~name:"thread_name" ~pid:frontend_pid ~tid:tid_replay ~value:"replay" ]
  in
  let clusters =
    List.concat
      (List.init t.num_clusters (fun c ->
           let pid = cluster_pid c in
           [ metadata ~name:"process_name" ~pid ~tid:0
               ~value:(Printf.sprintf "cluster %d" c);
             metadata ~name:"thread_name" ~pid ~tid:tid_dispatch ~value:"dispatch";
             metadata ~name:"thread_name" ~pid ~tid:tid_issue ~value:"issue";
             metadata ~name:"thread_name" ~pid ~tid:tid_writeback ~value:"writeback";
             metadata ~name:"thread_name" ~pid ~tid:tid_transfer ~value:"transfer" ]))
  in
  frontend @ clusters

let ts_of = function
  | Json.Obj fields -> (
    match List.assoc_opt "ts" fields with Some (Json.Int ts) -> ts | _ -> 0)
  | _ -> 0

let to_json ?manifest t =
  let events = List.rev t.events in
  let body = List.fold_left event_json [] events in
  let body = List.fold_left row_json body (build_rows events) in
  let body = List.fold_left sample_json body (List.rev t.samples) in
  let body = List.stable_sort (fun a b -> compare (ts_of a) (ts_of b)) (List.rev body) in
  let other =
    ("clock", Json.String "1 cycle = 1 us")
    ::
    (match manifest with
    | Some m -> [ ("schema_version", Json.Int Manifest.schema_version);
                  ("manifest", Manifest.to_json m) ]
    | None -> [ ("schema_version", Json.Int Manifest.schema_version) ])
  in
  Json.Obj
    [ ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Obj other);
      ("traceEvents", Json.List (metadata_events t @ body)) ]

let to_string ?manifest t = Json.to_string (to_json ?manifest t)
let write_file ?manifest path t = Json.write_file path (to_json ?manifest t) "\n"
