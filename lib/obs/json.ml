type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* Shortest representation that parses back to the same float, so a
       serialize/parse round trip is lossless. *)
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* Keep the float/int distinction through a round trip. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let to_string ?(minify = false) v =
  let buf = Buffer.create 1024 in
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec emit indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          emit (indent + 2) v)
        vs;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          escape_string buf k;
          Buffer.add_string buf (if minify then ":" else ": ");
          emit (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

let write_file path v trailer =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string v);
      Out_channel.output_string oc trailer)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

(* The parser recurses once per nesting level, so unbounded input depth
   would become unbounded stack depth. Now that parse input can arrive
   from a socket (the serve protocol), a hostile "[[[[..." must be a
   one-line error, never a stack overflow. 512 levels is far beyond any
   document the simulator emits. *)
let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some code -> code
    | None -> fail "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let code = parse_hex4 () in
          (* Our own serializer only \u-escapes control characters; for
             foreign input, non-latin-1 code points decode as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
        | _ -> fail "invalid escape");
        loop ())
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let integral = String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9')) lit in
    if integral then
      match int_of_string_opt lit with
      | Some v -> Int v
      | None -> fail "invalid number"
    else
      match float_of_string_opt lit with
      | Some v -> Float v
      | None -> fail "invalid number"
  in
  let rec parse_value depth =
    if depth > max_depth then
      fail (Printf.sprintf "nesting deeper than %d levels" max_depth);
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value (depth + 1) in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error ("Json: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let path keys v =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some v) keys

let to_list = function List vs -> vs | _ -> []

let get_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_string = function String s -> Some s | _ -> None

let get_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
