(** Chrome Trace Event Format export of a machine run — the paper's
    Figures 2–5 timing diagrams as an interactive trace, viewable in
    Perfetto ({:https://ui.perfetto.dev}) or [chrome://tracing].

    The mapping from machine to trace:

    - One {e process} per cluster (plus process 0, the shared front end),
      one {e thread} per pipeline stage, so every cluster×stage pair gets
      its own track. Pipeline events ([dispatch], [issue], [writeback],
      [suspend]/[wakeup]) are instant events on the owning cluster's
      stage track; [fetch]/[retire]/[replay] land on the front end's.
    - One cycle is one microsecond of trace time.
    - Each instruction {e copy} is an async slice (["copy"] category)
      from its dispatch to its last pipeline event, so in-flight copies
      stack up visually per cluster.
    - Master↔slave traffic becomes {e flow events} (arrows): an operand
      forward links the slave's cluster to the master's at slave issue,
      a result forward links the master's cluster to the slave's at
      result arrival.
    - Occupancy samples ({!Mcsim_cluster.Machine.occupancy}) become
      {e counter tracks}: ROB entries on process 0; dispatch-queue,
      operand- and result-transfer-buffer entries per cluster. *)

type t

val create : ?counter_period:int -> Mcsim_cluster.Machine.config -> t
(** An empty trace for a machine of [config]'s shape. [counter_period]
    (default 8) is the cycle stride {!record} samples occupancy at; it
    is also stored so callers driving the machine themselves can pass
    {!counter_period} to [Machine.run]'s [occupancy_period].
    @raise Invalid_argument if [counter_period < 1]. *)

val counter_period : t -> int

val observer : t -> Mcsim_cluster.Machine.event -> unit
(** Feed as [~on_event] to {!Mcsim_cluster.Machine.run}. *)

val occupancy_observer : t -> Mcsim_cluster.Machine.occupancy -> unit
(** Feed as [~on_occupancy] to {!Mcsim_cluster.Machine.run}. *)

val record :
  ?engine:Mcsim_cluster.Machine.engine ->
  ?counter_period:int ->
  ?max_cycles:int ->
  Mcsim_cluster.Machine.config ->
  Mcsim_isa.Instr.dynamic array ->
  t * Mcsim_cluster.Machine.result
(** Run the machine with both observers attached. *)

val to_json : ?manifest:Manifest.t -> t -> Json.t
(** The trace as a Chrome-trace JSON object: [traceEvents] (metadata,
    instant, async, flow and counter events, sorted by timestamp),
    [displayTimeUnit], and [otherData] carrying the manifest. *)

val to_string : ?manifest:Manifest.t -> t -> string

val write_file : ?manifest:Manifest.t -> string -> t -> unit
