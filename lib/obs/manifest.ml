module Machine = Mcsim_cluster.Machine
module Assignment = Mcsim_cluster.Assignment
module Cache = Mcsim_cache.Cache
module Reg = Mcsim_isa.Reg

type t = {
  mcsim_version : string;
  schema_version : int;
  created_unix : float;
  engine : string;
  seed : int option;
  benchmark : string option;
  scheduler : string option;
  trace_instrs : int option;
  sampling : string option;
  config_desc : string;
  config_digest : string;
}

let mcsim_version = Version.v
let schema_version = 1

let engine_name : Machine.engine -> string = function
  | `Scan -> "scan"
  | `Wakeup -> "wakeup"

let cache_description (c : Cache.config) =
  Printf.sprintf "%dB/%dway/%dB-line/%dcyc/%s" c.Cache.size_bytes c.Cache.assoc
    c.Cache.line_bytes c.Cache.miss_latency
    (match c.Cache.mshrs with None -> "inverted" | Some n -> string_of_int n ^ "mshr")

let config_description (cfg : Machine.config) =
  let asg = cfg.Machine.assignment in
  let globals =
    Assignment.globals asg |> List.map Reg.to_string |> String.concat ","
  in
  let p = cfg.Machine.predictor in
  (* Appended only under a dynamic policy: a static machine's description
     — hence its config digest and every cached result keyed by it — is
     byte-identical to the pre-steering one. *)
  let steering =
    match cfg.Machine.steering with
    | Mcsim_cluster.Steering.Static -> ""
    | p -> ";steering=" ^ Mcsim_cluster.Steering.to_string p
  in
  Printf.sprintf
    "clusters=%d;topology=%s;globals=[%s];dq=%d;phys=%d;fetch=%d;dispatch=%d;retire=%d;\
     limits=%s;queues=%s;operand_buf=%d;result_buf=%d;icache=%s;dcache=%s;\
     predictor=%d/%d/%d/%d;redirect=%d;replay=%d:%d%s"
    (Assignment.num_clusters asg)
    (Mcsim_cluster.Interconnect.to_string cfg.Machine.topology)
    globals cfg.Machine.dq_entries cfg.Machine.phys_per_bank cfg.Machine.fetch_width
    cfg.Machine.dispatch_width cfg.Machine.retire_width
    (Format.asprintf "%a" Mcsim_isa.Issue_rules.pp cfg.Machine.issue_limits)
    (match cfg.Machine.queue_split with
    | Machine.Unified -> "unified"
    | Machine.Per_class -> "per-class")
    cfg.Machine.operand_buffer_entries cfg.Machine.result_buffer_entries
    (cache_description cfg.Machine.icache)
    (cache_description cfg.Machine.dcache)
    p.Mcsim_branch.Mcfarling.bimodal_bits p.Mcsim_branch.Mcfarling.global_bits
    p.Mcsim_branch.Mcfarling.choice_bits p.Mcsim_branch.Mcfarling.history_bits
    cfg.Machine.redirect_penalty cfg.Machine.replay_threshold cfg.Machine.replay_penalty
    steering

let make ?(created_unix = 0.0) ?(engine = `Wakeup) ?seed ?benchmark ?scheduler ?trace_instrs
    ?sampling cfg =
  let config_desc = config_description cfg in
  { mcsim_version;
    schema_version;
    created_unix;
    engine = engine_name engine;
    seed;
    benchmark;
    scheduler;
    trace_instrs;
    sampling = Option.map Mcsim_sampling.Sampling.policy_to_string sampling;
    config_desc;
    config_digest = Digest.to_hex (Digest.string config_desc) }

let opt f = function None -> Json.Null | Some v -> f v

let to_json t =
  Json.Obj
    [ ("mcsim_version", Json.String t.mcsim_version);
      ("schema_version", Json.Int t.schema_version);
      ("created_unix", Json.Float t.created_unix);
      ("engine", Json.String t.engine);
      ("seed", opt (fun n -> Json.Int n) t.seed);
      ("benchmark", opt (fun s -> Json.String s) t.benchmark);
      ("scheduler", opt (fun s -> Json.String s) t.scheduler);
      ("trace_instrs", opt (fun n -> Json.Int n) t.trace_instrs);
      ("sampling", opt (fun s -> Json.String s) t.sampling);
      ("config_desc", Json.String t.config_desc);
      ("config_digest", Json.String t.config_digest) ]

let strip_created = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "created_unix") fields)
  | other -> other

let identity_json t = strip_created (to_json t)

let required_keys =
  [ "mcsim_version"; "schema_version"; "created_unix"; "engine"; "seed"; "benchmark";
    "scheduler"; "trace_instrs"; "sampling"; "config_desc"; "config_digest" ]
