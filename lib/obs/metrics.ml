module Machine = Mcsim_cluster.Machine
module Profile_counters = Mcsim_util.Profile_counters
module Sampling = Mcsim_sampling.Sampling

let result_json (r : Machine.result) =
  Json.Obj
    [ ("cycles", Json.Int r.Machine.cycles);
      ("retired", Json.Int r.Machine.retired);
      ("ipc", Json.Float r.Machine.ipc);
      ("single_distributed", Json.Int r.Machine.single_distributed);
      ("dual_distributed", Json.Int r.Machine.dual_distributed);
      ("replays", Json.Int r.Machine.replays);
      ("branch_accuracy", Json.Float r.Machine.branch_accuracy);
      ("icache_miss_rate", Json.Float r.Machine.icache_miss_rate);
      ("dcache_miss_rate", Json.Float r.Machine.dcache_miss_rate);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.Machine.counters)) ]

let profile_json (p : Profile_counters.t) =
  let stages =
    List.init (Profile_counters.n_stages p) (fun i ->
        Json.Obj
          [ ("name", Json.String (Profile_counters.stage_name p i));
            ("visits", Json.Int (Profile_counters.visits p i));
            ("work", Json.Int (Profile_counters.work p i));
            ("alloc_words", Json.Float (Profile_counters.alloc p i)) ])
  in
  Json.Obj
    [ ("cycles", Json.Int (Profile_counters.cycles p));
      ("minor_words", Json.Float (Profile_counters.minor_words p));
      ("stages", Json.List stages) ]

let sampling_json (s : Sampling.t) =
  let interval (iv : Sampling.interval_stat) =
    Json.Obj
      [ ("index", Json.Int iv.Sampling.index);
        ("start", Json.Int iv.Sampling.start);
        ("warmup_cycles", Json.Int iv.Sampling.warmup_cycles);
        ("detail_cycles", Json.Int iv.Sampling.detail_cycles);
        ("detail_instrs", Json.Int iv.Sampling.detail_instrs);
        ("ipc", Json.Float iv.Sampling.ipc) ]
  in
  Json.Obj
    [ ("policy", Json.String (Sampling.policy_to_string s.Sampling.policy));
      ("trace_instrs", Json.Int s.Sampling.trace_instrs);
      ("mean_ipc", Json.Float s.Sampling.mean_ipc);
      ("ci_halfwidth", Json.Float s.Sampling.ci_halfwidth);
      ("ci_rel", Json.Float (Sampling.ci_rel s));
      ("est_cycles", Json.Int s.Sampling.est_cycles);
      ("detailed_instrs", Json.Int s.Sampling.detailed_instrs);
      ("warmed_instrs", Json.Int s.Sampling.warmed_instrs);
      ("detailed_fraction", Json.Float (Sampling.detailed_fraction s));
      ("intervals", Json.List (List.map interval s.Sampling.intervals)) ]

let gc_json () =
  let s = Gc.quick_stat () in
  Json.Obj
    [ ("minor_words", Json.Float s.Gc.minor_words);
      ("promoted_words", Json.Float s.Gc.promoted_words);
      ("major_words", Json.Float s.Gc.major_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("heap_words", Json.Int s.Gc.heap_words) ]

let required_keys = [ "schema_version"; "kind"; "manifest"; "data" ]

let opt f = function None -> Json.Null | Some v -> f v

let snapshot ~manifest ~kind ?result ?profile ?sampling ?wall_seconds ?(gc = true)
    ?(extra = []) () =
  let data =
    [ ("result", opt result_json result);
      ("profile", opt profile_json profile);
      ("sampling", opt sampling_json sampling);
      ("wall_seconds", opt (fun s -> Json.Float s) wall_seconds);
      ("gc", if gc then gc_json () else Json.Null) ]
    @ extra
  in
  Json.Obj
    [ ("schema_version", Json.Int Manifest.schema_version);
      ("kind", Json.String kind);
      ("manifest", Manifest.to_json manifest);
      ("data", Json.Obj data) ]

let write_file path v = Json.write_file path v "\n"

(* ------------------------------------------------------------------ *)
(* Decoders                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Option.bind

let int_field j k = Option.bind (Json.member k j) Json.get_int
let float_field j k = Option.bind (Json.member k j) Json.get_float

let result_of_json j =
  let* cycles = int_field j "cycles" in
  let* retired = int_field j "retired" in
  let* ipc = float_field j "ipc" in
  let* single_distributed = int_field j "single_distributed" in
  let* dual_distributed = int_field j "dual_distributed" in
  let* replays = int_field j "replays" in
  let* branch_accuracy = float_field j "branch_accuracy" in
  let* icache_miss_rate = float_field j "icache_miss_rate" in
  let* dcache_miss_rate = float_field j "dcache_miss_rate" in
  let* counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
      List.fold_right
        (fun (k, v) acc ->
          let* acc = acc in
          let* v = Json.get_int v in
          Some ((k, v) :: acc))
        fields (Some [])
    | Some _ | None -> None
  in
  Some
    { Machine.cycles;
      retired;
      ipc;
      single_distributed;
      dual_distributed;
      replays;
      branch_accuracy;
      icache_miss_rate;
      dcache_miss_rate;
      counters;
      counter_lookup = Mcsim_util.Stats.lookup_of_alist counters }

let interval_of_json j =
  let* index = int_field j "index" in
  let* start = int_field j "start" in
  let* warmup_cycles = int_field j "warmup_cycles" in
  let* detail_cycles = int_field j "detail_cycles" in
  let* detail_instrs = int_field j "detail_instrs" in
  let* ipc = float_field j "ipc" in
  Some { Sampling.index; start; warmup_cycles; detail_cycles; detail_instrs; ipc }

let sampling_of_json ?(seed = 1) ~machine j =
  let* policy_str = Option.bind (Json.member "policy" j) Json.get_string in
  let* policy =
    match Sampling.policy_of_string ~seed policy_str with
    | Ok p -> Some p
    | Error _ -> None
  in
  let* trace_instrs = int_field j "trace_instrs" in
  let* mean_ipc = float_field j "mean_ipc" in
  let* ci_halfwidth = float_field j "ci_halfwidth" in
  let* est_cycles = int_field j "est_cycles" in
  let* detailed_instrs = int_field j "detailed_instrs" in
  let* warmed_instrs = int_field j "warmed_instrs" in
  let* intervals =
    match Json.member "intervals" j with
    | Some (Json.List items) ->
      List.fold_right
        (fun item acc ->
          let* acc = acc in
          let* iv = interval_of_json item in
          Some (iv :: acc))
        items (Some [])
    | Some _ | None -> None
  in
  Some
    { Sampling.policy;
      trace_instrs;
      intervals;
      mean_ipc;
      ci_halfwidth;
      detailed_instrs;
      warmed_instrs;
      est_cycles;
      machine }
