module Machine = Mcsim_cluster.Machine
module Profile_counters = Mcsim_util.Profile_counters
module Sampling = Mcsim_sampling.Sampling

let result_json (r : Machine.result) =
  Json.Obj
    [ ("cycles", Json.Int r.Machine.cycles);
      ("retired", Json.Int r.Machine.retired);
      ("ipc", Json.Float r.Machine.ipc);
      ("single_distributed", Json.Int r.Machine.single_distributed);
      ("dual_distributed", Json.Int r.Machine.dual_distributed);
      ("replays", Json.Int r.Machine.replays);
      ("branch_accuracy", Json.Float r.Machine.branch_accuracy);
      ("icache_miss_rate", Json.Float r.Machine.icache_miss_rate);
      ("dcache_miss_rate", Json.Float r.Machine.dcache_miss_rate);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.Machine.counters)) ]

let profile_json (p : Profile_counters.t) =
  let stages =
    List.init (Profile_counters.n_stages p) (fun i ->
        Json.Obj
          [ ("name", Json.String (Profile_counters.stage_name p i));
            ("visits", Json.Int (Profile_counters.visits p i));
            ("work", Json.Int (Profile_counters.work p i));
            ("alloc_words", Json.Float (Profile_counters.alloc p i)) ])
  in
  Json.Obj
    [ ("cycles", Json.Int (Profile_counters.cycles p));
      ("minor_words", Json.Float (Profile_counters.minor_words p));
      ("stages", Json.List stages) ]

let sampling_json (s : Sampling.t) =
  let interval (iv : Sampling.interval_stat) =
    Json.Obj
      [ ("index", Json.Int iv.Sampling.index);
        ("start", Json.Int iv.Sampling.start);
        ("warmup_cycles", Json.Int iv.Sampling.warmup_cycles);
        ("detail_cycles", Json.Int iv.Sampling.detail_cycles);
        ("detail_instrs", Json.Int iv.Sampling.detail_instrs);
        ("ipc", Json.Float iv.Sampling.ipc) ]
  in
  Json.Obj
    [ ("policy", Json.String (Sampling.policy_to_string s.Sampling.policy));
      ("trace_instrs", Json.Int s.Sampling.trace_instrs);
      ("mean_ipc", Json.Float s.Sampling.mean_ipc);
      ("ci_halfwidth", Json.Float s.Sampling.ci_halfwidth);
      ("ci_rel", Json.Float (Sampling.ci_rel s));
      ("est_cycles", Json.Int s.Sampling.est_cycles);
      ("detailed_instrs", Json.Int s.Sampling.detailed_instrs);
      ("warmed_instrs", Json.Int s.Sampling.warmed_instrs);
      ("detailed_fraction", Json.Float (Sampling.detailed_fraction s));
      ("intervals", Json.List (List.map interval s.Sampling.intervals)) ]

let gc_json () =
  let s = Gc.quick_stat () in
  Json.Obj
    [ ("minor_words", Json.Float s.Gc.minor_words);
      ("promoted_words", Json.Float s.Gc.promoted_words);
      ("major_words", Json.Float s.Gc.major_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("heap_words", Json.Int s.Gc.heap_words) ]

let required_keys = [ "schema_version"; "kind"; "manifest"; "data" ]

let opt f = function None -> Json.Null | Some v -> f v

let snapshot ~manifest ~kind ?result ?profile ?sampling ?wall_seconds ?(gc = true)
    ?(extra = []) () =
  let data =
    [ ("result", opt result_json result);
      ("profile", opt profile_json profile);
      ("sampling", opt sampling_json sampling);
      ("wall_seconds", opt (fun s -> Json.Float s) wall_seconds);
      ("gc", if gc then gc_json () else Json.Null) ]
    @ extra
  in
  Json.Obj
    [ ("schema_version", Json.Int Manifest.schema_version);
      ("kind", Json.String kind);
      ("manifest", Manifest.to_json manifest);
      ("data", Json.Obj data) ]

let write_file path v = Json.write_file path v "\n"
