(** The unified metrics snapshot: one JSON schema for every metrics
    artifact the simulator emits — [--metrics-out] on the CLI, the
    [BENCH_*.json] files of the bench harness, and test fixtures.

    Every snapshot has the same top level:

    {v
    { "schema_version": 1,
      "kind": "run" | "sample" | "table2" | ...,
      "manifest": { ... run provenance, see Manifest ... },
      "data": { "result": ..., "profile": ..., "sampling": ...,
                "wall_seconds": ..., "gc": ..., <kind-specific extras> } }
    v}

    [data] members are [null] when the producing run did not collect
    them; kind-specific extras (e.g. Table-2 rows) ride alongside the
    common ones. *)

val result_json : Mcsim_cluster.Machine.result -> Json.t
(** Cycles, retired, IPC, distribution/replay counts, rates, and every
    named counter (as one [counters] object, sorted by name). *)

val profile_json : Mcsim_util.Profile_counters.t -> Json.t
(** Cycles, total minor words, and per-stage visits/work/alloc. *)

val sampling_json : Mcsim_sampling.Sampling.t -> Json.t
(** Policy, coverage, mean IPC, CI, estimated cycles and per-interval
    observations. *)

val gc_json : unit -> Json.t
(** A [Gc.quick_stat] snapshot of the current process. *)

val snapshot :
  manifest:Manifest.t ->
  kind:string ->
  ?result:Mcsim_cluster.Machine.result ->
  ?profile:Mcsim_util.Profile_counters.t ->
  ?sampling:Mcsim_sampling.Sampling.t ->
  ?wall_seconds:float ->
  ?gc:bool ->
  ?extra:(string * Json.t) list ->
  unit ->
  Json.t
(** Assemble one snapshot. [gc] (default true) includes {!gc_json};
    [extra] fields are appended to [data] in order. *)

val required_keys : string list
(** Top-level keys every snapshot carries:
    [["schema_version"; "kind"; "manifest"; "data"]]. *)

val write_file : string -> Json.t -> unit
(** Write with a trailing newline. *)

(** {2 Decoders} — inverses of the encoders above, used by the durable
    experiment runner to reload checkpointed units. Each returns [None]
    on a tree the matching encoder cannot have produced. *)

val result_of_json : Json.t -> Mcsim_cluster.Machine.result option
(** Inverse of {!result_json}: rebuilds the full result record
    (including the binary-searchable counter snapshot) such that
    [result_of_json (result_json r) = Some r] — the float fields survive
    because {!Json.to_string} prints lossless shortest representations. *)

val sampling_of_json :
  ?seed:int -> machine:Mcsim_cluster.Machine.result -> Json.t -> Mcsim_sampling.Sampling.t option
(** Inverse of {!sampling_json}. The encoder stores the policy as
    ["interval:warmup:detail"], which drops its seed, and does not store
    the aggregate machine counters; pass the run's [seed] (default 1)
    and the separately-stored [machine] result to complete the record. *)
