(** Run provenance, embedded in every trace and metrics file.

    A manifest pins down what produced an artifact: the mcsim version,
    the machine configuration (as a human-readable description plus an
    MD5 digest for cheap equality checks), the seed, the issue engine,
    the sampling policy if any, and a hostname-free creation timestamp.
    Two runs with equal [config_digest], [seed], [engine] and [sampling]
    are reproductions of each other. *)

type t = {
  mcsim_version : string;
  schema_version : int;
  created_unix : float;
      (** seconds since the epoch; 0 when the producer did not stamp the
          run (library-internal runs stay deterministic) *)
  engine : string;  (** ["scan"] or ["wakeup"] *)
  seed : int option;
  benchmark : string option;
  scheduler : string option;
  trace_instrs : int option;
  sampling : string option;  (** policy as ["interval:warmup:detail"] *)
  config_desc : string;  (** canonical one-line machine description *)
  config_digest : string;  (** MD5 hex of [config_desc] *)
}

val mcsim_version : string
val schema_version : int

val engine_name : Mcsim_cluster.Machine.engine -> string

val config_description : Mcsim_cluster.Machine.config -> string
(** Canonical rendering of every timing-relevant config field; equal
    configurations produce equal strings. *)

val make :
  ?created_unix:float ->
  ?engine:Mcsim_cluster.Machine.engine ->
  ?seed:int ->
  ?benchmark:string ->
  ?scheduler:string ->
  ?trace_instrs:int ->
  ?sampling:Mcsim_sampling.Sampling.policy ->
  Mcsim_cluster.Machine.config ->
  t
(** [engine] defaults to [`Wakeup] (the machine's own default);
    [created_unix] to 0 (pass [Unix.time ()] at the CLI). *)

val to_json : t -> Json.t
(** Every field, absent options as [null]. *)

val strip_created : Json.t -> Json.t
(** Remove the [created_unix] field from a manifest JSON object —
    non-objects pass through. Two runs of the same sweep at different
    times agree on everything else, so this is the manifest's {e
    identity}: it is what {!Mcsim.Checkpoint} compares when refusing a
    stale directory and what {!Mcsim.Result_store} digests to address a
    cached unit. *)

val identity_json : t -> Json.t
(** [strip_created (to_json t)]. *)

val required_keys : string list
(** The keys {!to_json} always emits — what validators check. *)
