module BA1 = Bigarray.Array1

type int32_array = (int32, Bigarray.int32_elt, Bigarray.c_layout) BA1.t
type int64_array = (int64, Bigarray.int64_elt, Bigarray.c_layout) BA1.t

(* [codes] word layout — keep in sync with the .mli and the on-disk
   format described in EXPERIMENTS.md:
     bits 0-2   op class          bit 24  has branch payload
     bits 3-9   src0 field        bit 25  branch conditional
     bits 10-16 src1 field        bit 26  branch taken (dynamic)
     bits 17-23 dst field         bit 27  has memory payload
   Register fields are present(1) | bank(1) | index(5). Everything except
   bit 26 is a function of the static instruction at that pc. *)

let op_bits = 0x7
let src0_shift = 3
let src1_shift = 10
let dst_shift = 17
let reg_present = 0x40
let reg_fp = 0x20
let reg_idx = 0x1f
let bit_branch = 1 lsl 24
let bit_cond = 1 lsl 25
let bit_taken = 1 lsl 26
let bit_mem = 1 lsl 27
let static_mask = lnot bit_taken

let encode_op : Op_class.t -> int = function
  | Op_class.Int_multiply -> 0
  | Op_class.Int_other -> 1
  | Op_class.Fp_divide { bits64 = false } -> 2
  | Op_class.Fp_divide { bits64 = true } -> 3
  | Op_class.Fp_other -> 4
  | Op_class.Load -> 5
  | Op_class.Store -> 6
  | Op_class.Control -> 7

let decode_op = function
  | 0 -> Op_class.Int_multiply
  | 1 -> Op_class.Int_other
  | 2 -> Op_class.Fp_divide { bits64 = false }
  | 3 -> Op_class.Fp_divide { bits64 = true }
  | 4 -> Op_class.Fp_other
  | 5 -> Op_class.Load
  | 6 -> Op_class.Store
  | 7 -> Op_class.Control
  | _ -> assert false

let encode_reg = function
  | None -> 0
  | Some r ->
    reg_present
    lor (if Reg.is_fp r then reg_fp else 0)
    lor (Reg.index r land reg_idx)

let decode_reg field =
  if field land reg_present = 0 then None
  else
    let idx = field land reg_idx in
    Some (if field land reg_fp <> 0 then Reg.fp_reg idx else Reg.int_reg idx)

let encode_instr (i : Instr.t) =
  let src0, src1 =
    match i.Instr.srcs with
    | [] -> (None, None)
    | [ a ] -> (Some a, None)
    | [ a; b ] -> (Some a, Some b)
    | _ -> invalid_arg "Flat_trace: more than two sources"
  in
  encode_op i.Instr.op
  lor (encode_reg src0 lsl src0_shift)
  lor (encode_reg src1 lsl src1_shift)
  lor (encode_reg i.Instr.dst lsl dst_shift)

let decode_instr code =
  let srcs =
    Option.to_list (decode_reg ((code lsr src0_shift) land 0x7f))
    @ Option.to_list (decode_reg ((code lsr src1_shift) land 0x7f))
  in
  Instr.make ~op:(decode_op (code land op_bits)) ~srcs
    ~dst:(decode_reg ((code lsr dst_shift) land 0x7f))

(* One interned static instruction per pc, shared between a trace and all
   its {!sub} views. Populated eagerly at construction — one pass over the
   arrays, first occurrence of each pc wins — so readers never write and a
   trace can be decoded from several domains at once (Experiment's sweeps
   simulate one trace on many domains). [tcodes.(pc)] holds the
   static-masked code the cached record was decoded from, so a hand-built
   trace that reuses a pc for a different instruction falls back to a
   fresh decode instead of lying. *)
type intern = {
  tcodes : int array;
  tinstrs : Instr.t option array;
}

type t = {
  pcs : int32_array;
  codes : int32_array;
  aux : int64_array;
  table : intern;
}

let length t = BA1.dim t.pcs
let pc t i = Int32.to_int (BA1.unsafe_get t.pcs i)
let code t i = Int32.to_int (BA1.unsafe_get t.codes i)
let opcode t i = code t i land op_bits
let is_load t i = opcode t i = 5
let is_store t i = opcode t i = 6
let is_memory t i = match opcode t i with 5 | 6 -> true | _ -> false
let has_branch t i = code t i land bit_branch <> 0
let is_cond_branch t i = code t i land bit_cond <> 0
let branch_taken t i = code t i land bit_taken <> 0
let branch_target t i = Int64.to_int (BA1.unsafe_get t.aux i)
let mem_addr t i = Int64.to_int (BA1.unsafe_get t.aux i)

let intern_of_arrays (pcs : int32_array) (codes : int32_array) =
  let n = BA1.dim pcs in
  let max_pc = ref (-1) in
  for i = 0 to n - 1 do
    let pc = Int32.to_int (BA1.unsafe_get pcs i) in
    if pc > !max_pc then max_pc := pc
  done;
  let tcodes = Array.make (!max_pc + 1) (-1) in
  let tinstrs = Array.make (!max_pc + 1) None in
  for i = 0 to n - 1 do
    let pc = Int32.to_int (BA1.unsafe_get pcs i) in
    if tcodes.(pc) < 0 then begin
      let static = Int32.to_int (BA1.unsafe_get codes i) land static_mask in
      tcodes.(pc) <- static;
      tinstrs.(pc) <- Some (decode_instr static)
    end
  done;
  { tcodes; tinstrs }

let instr t i =
  let pc = pc t i in
  let static = code t i land static_mask in
  let tb = t.table in
  if pc < Array.length tb.tcodes && tb.tcodes.(pc) = static then
    match tb.tinstrs.(pc) with Some si -> si | None -> assert false
  else decode_instr static

let dynamic t i =
  let si = instr t i in
  let mem_addr = if is_memory t i then Some (mem_addr t i) else None in
  let branch =
    if has_branch t i then
      Some
        {
          Instr.conditional = is_cond_branch t i;
          taken = branch_taken t i;
          target = branch_target t i;
        }
    else None
  in
  { Instr.seq = i; pc = pc t i; instr = si; mem_addr; branch }

let sub t ~pos ~len =
  {
    pcs = BA1.sub t.pcs pos len;
    codes = BA1.sub t.codes pos len;
    aux = BA1.sub t.aux pos len;
    table = t.table;
  }

let iter_dynamic f t =
  for i = 0 to length t - 1 do
    f (dynamic t i)
  done

let to_dynamic_array t = Array.init (length t) (dynamic t)

module Builder = struct
  type trace = t

  type t = {
    mutable bpcs : int32_array;
    mutable bcodes : int32_array;
    mutable baux : int64_array;
    mutable n : int;
  }

  let alloc32 n = BA1.create Bigarray.int32 Bigarray.c_layout n
  let alloc64 n = BA1.create Bigarray.int64 Bigarray.c_layout n

  let create ?(capacity = 1024) () =
    let capacity = max 1 capacity in
    { bpcs = alloc32 capacity; bcodes = alloc32 capacity; baux = alloc64 capacity; n = 0 }

  let length b = b.n

  let reserve b =
    let cap = BA1.dim b.bpcs in
    if b.n >= cap then begin
      let cap' = 2 * cap in
      let pcs = alloc32 cap' and codes = alloc32 cap' and aux = alloc64 cap' in
      BA1.blit b.bpcs (BA1.sub pcs 0 cap);
      BA1.blit b.bcodes (BA1.sub codes 0 cap);
      BA1.blit b.baux (BA1.sub aux 0 cap);
      b.bpcs <- pcs;
      b.bcodes <- codes;
      b.baux <- aux
    end

  let emit b ~pc ?mem_addr ?branch (i : Instr.t) =
    (match (Op_class.is_memory i.Instr.op, mem_addr) with
    | true, None -> invalid_arg "Flat_trace: memory op without address"
    | false, Some _ -> invalid_arg "Flat_trace: address on non-memory op"
    | true, Some _ | false, None -> ());
    (match (i.Instr.op, branch) with
    | Op_class.Control, None -> invalid_arg "Flat_trace: control op without branch info"
    | Op_class.Control, Some _ -> ()
    | _, Some _ -> invalid_arg "Flat_trace: branch info on non-control op"
    | _, None -> ());
    reserve b;
    let code =
      encode_instr i
      lor (match mem_addr with Some _ -> bit_mem | None -> 0)
      lor
      match branch with
      | None -> 0
      | Some br ->
        bit_branch
        lor (if br.Instr.conditional then bit_cond else 0)
        lor if br.Instr.taken then bit_taken else 0
    in
    let aux =
      match (mem_addr, branch) with
      | Some a, None -> Int64.of_int a
      | None, Some br -> Int64.of_int br.Instr.target
      | None, None -> 0L
      | Some _, Some _ -> assert false
    in
    BA1.unsafe_set b.bpcs b.n (Int32.of_int pc);
    BA1.unsafe_set b.bcodes b.n (Int32.of_int code);
    BA1.unsafe_set b.baux b.n aux;
    b.n <- b.n + 1

  let finish b : trace =
    let pcs = BA1.sub b.bpcs 0 b.n in
    let codes = BA1.sub b.bcodes 0 b.n in
    let aux = BA1.sub b.baux 0 b.n in
    { pcs; codes; aux; table = intern_of_arrays pcs codes }
end

let of_dynamic_array arr =
  let b = Builder.create ~capacity:(max 1 (Array.length arr)) () in
  Array.iter
    (fun (d : Instr.dynamic) ->
      Builder.emit b ~pc:d.Instr.pc ?mem_addr:d.Instr.mem_addr
        ?branch:d.Instr.branch d.Instr.instr)
    arr;
  Builder.finish b

let unsafe_arrays t = (t.pcs, t.codes, t.aux)

let of_arrays pcs codes aux =
  let n = BA1.dim pcs in
  if BA1.dim codes <> n || BA1.dim aux <> n then
    invalid_arg "Flat_trace.of_arrays: length mismatch";
  { pcs; codes; aux; table = intern_of_arrays pcs codes }
