(** Per-cycle instruction-issue limits (paper, Table 1).

    Each machine (or each cluster of the dual-cluster machine) may issue at
    most [total] instructions per cycle, further capped per class. The
    floating-point caps share a combined [fp_all] budget in addition to the
    per-class ones, mirroring the table's "floating point: all" column. *)

type limits = {
  total : int;
  int_multiply : int;
  int_other : int;
  fp_all : int;
  fp_divide : int;
  fp_other : int;
  memory : int;  (** loads and stores combined *)
  control : int;
}

val single_cluster : limits
(** Row 1 of Table 1: 8-issue; 8/8 integer, 4 fp (4 divide, 4 other),
    4 memory, 4 control. *)

val dual_per_cluster : limits
(** Row 2 of Table 1, per cluster: 4-issue; 4/4 integer, 2 fp (2/2),
    2 memory, 2 control. *)

val four_way_single : limits
(** The paper's four-way-issue single-cluster machine (§4 evaluated both
    widths): identical to {!dual_per_cluster}. *)

val four_way_dual_per_cluster : limits
(** One cluster of the four-way dual machine: 2-issue; 2/2 integer,
    1 fp, 1 memory, 1 control. *)

val octa_per_cluster : limits
(** One cluster of the eight-cluster machine: scalar issue, every cap
    at 1 — the Table-1 split discipline taken to its end point. *)

val scale : limits -> int -> limits
(** [scale l k] multiplies every cap by [k] (for what-if configurations);
    caps never drop below 1. Requires [k >= 1]. *)

val pp : Format.formatter -> limits -> unit

val to_rows : limits -> string list
(** Cells in Table-1 column order, for table rendering. *)

(** Mutable per-cycle issue budget. *)
type budget

val budget : limits -> budget
val reset : budget -> unit
(** Call at the start of every cycle. *)

val can_issue : budget -> Op_class.t -> bool
(** True when issuing one instruction of this class now would not exceed
    any applicable cap. *)

val consume : budget -> Op_class.t -> unit
(** Record an issue. @raise Invalid_argument if [can_issue] is false. *)

val issued : budget -> int
(** Instructions issued so far this cycle. *)
