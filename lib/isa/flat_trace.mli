(** Compact struct-of-arrays encoding of a committed dynamic trace.

    A flat trace stores one dynamic instruction per index across three
    parallel Bigarrays — 16 bytes per instruction — instead of one
    {!Instr.dynamic} record (plus option boxes) per instruction:

    - [pcs]  : int32 — static instruction address (word-granular);
    - [codes]: int32 — packed static instruction plus dynamic flags;
    - [aux]  : int64 — memory address (loads/stores) or branch target
      (control), which are mutually exclusive by construction.

    The [codes] word layout (low bit first):

    {v
    bits 0-2   operation class (8 variants; both fp-divide widths)
    bits 3-9   source 0:  present(1) | bank(1) | index(5)
    bits 10-16 source 1:  present(1) | bank(1) | index(5)
    bits 17-23 destination, same field layout
    bit 24     has branch payload (control ops)
    bit 25     branch is conditional
    bit 26     branch taken            (the only per-dynamic-instance bit)
    bit 27     has memory payload (loads/stores)
    v}

    Because everything but bit 26 is a function of the static instruction,
    construction interns one {!Instr.t} per static pc (a single eager pass
    over the arrays): steady-state replay reads plain integers and reuses
    the interned record, so walking a flat trace performs no
    per-instruction decode at all — and because the table is never written
    after construction, one trace can be decoded concurrently from many
    domains. Positions are the [seq] numbers — index [i] always
    decodes with [seq = i], and {!sub} re-bases a window to start at 0,
    which is exactly the renumbering sampled simulation wants.

    The Bigarray representation is what makes the on-disk trace store
    possible: the three arrays are blitted to / memory-mapped from disk
    without touching the OCaml heap (see [Mcsim.Trace_store]). *)

type int32_array =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type int64_array =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val length : t -> int

(** {1 Per-index accessors}

    All of these are allocation-free except {!dynamic}, which materialises
    a record. None of them mutate the trace, so concurrent use from
    multiple domains is safe. Indices are not bounds-checked beyond the
    underlying Bigarray check. *)

val pc : t -> int -> int
val is_load : t -> int -> bool
val is_store : t -> int -> bool
val is_memory : t -> int -> bool
val has_branch : t -> int -> bool
val is_cond_branch : t -> int -> bool
val branch_taken : t -> int -> bool

val branch_target : t -> int -> int
(** Meaningful only when [has_branch]. *)

val mem_addr : t -> int -> int
(** Meaningful only when [is_memory]. *)

val instr : t -> int -> Instr.t
(** The static instruction, interned per pc: repeated calls for the same
    pc return the same physical record (hand-built traces that reuse a pc
    for different instructions decode fresh instead). *)

val dynamic : t -> int -> Instr.dynamic
(** Full dynamic record with [seq = i]; allocates. *)

(** {1 Whole-trace operations} *)

val sub : t -> pos:int -> len:int -> t
(** O(1) window sharing storage and the intern table; index 0 of the
    result is index [pos] of [t], so decoded [seq] numbers restart at 0. *)

val of_dynamic_array : Instr.dynamic array -> t
(** Pack a record trace. [seq] fields are ignored — position is law. *)

val to_dynamic_array : t -> Instr.dynamic array
(** Materialise records ([seq = i]); inverse of {!of_dynamic_array} for
    traces whose [seq] equals the index. *)

val iter_dynamic : (Instr.dynamic -> unit) -> t -> unit

(** {1 Builder} *)

module Builder : sig
  type trace := t
  type t

  val create : ?capacity:int -> unit -> t

  val emit :
    t -> pc:int -> ?mem_addr:int -> ?branch:Instr.branch_info -> Instr.t -> unit
  (** Append one instruction. Payload/class consistency follows
      {!Instr.dynamic}'s rules.
      @raise Invalid_argument on a mismatched payload. *)

  val length : t -> int
  val finish : t -> trace
end

(** {1 Raw storage access — for serialisation only} *)

val unsafe_arrays : t -> int32_array * int32_array * int64_array
(** The live [(pcs, codes, aux)] backing arrays, each of {!length}
    elements. Mutating them invalidates the intern table. *)

val of_arrays : int32_array -> int32_array -> int64_array -> t
(** Adopt [(pcs, codes, aux)] (equal lengths) as a trace, e.g. freshly
    memory-mapped storage. The intern table is built here, so an
    ill-formed code word raises at adoption time.
    @raise Invalid_argument if lengths differ or a code word is
    ill-formed. *)
