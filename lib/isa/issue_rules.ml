type limits = {
  total : int;
  int_multiply : int;
  int_other : int;
  fp_all : int;
  fp_divide : int;
  fp_other : int;
  memory : int;
  control : int;
}

let single_cluster =
  { total = 8; int_multiply = 8; int_other = 8; fp_all = 4; fp_divide = 4; fp_other = 4;
    memory = 4; control = 4 }

let dual_per_cluster =
  { total = 4; int_multiply = 4; int_other = 4; fp_all = 2; fp_divide = 2; fp_other = 2;
    memory = 2; control = 2 }

let four_way_single = dual_per_cluster

let four_way_dual_per_cluster =
  { total = 2; int_multiply = 2; int_other = 2; fp_all = 1; fp_divide = 1; fp_other = 1;
    memory = 1; control = 1 }

let octa_per_cluster =
  { total = 1; int_multiply = 1; int_other = 1; fp_all = 1; fp_divide = 1; fp_other = 1;
    memory = 1; control = 1 }

let scale l k =
  if k < 1 then invalid_arg "Issue_rules.scale";
  let s x = max 1 (x * k) in
  { total = s l.total; int_multiply = s l.int_multiply; int_other = s l.int_other;
    fp_all = s l.fp_all; fp_divide = s l.fp_divide; fp_other = s l.fp_other;
    memory = s l.memory; control = s l.control }

let pp fmt l =
  Format.fprintf fmt
    "total=%d int_mul=%d int_other=%d fp_all=%d fp_div=%d fp_other=%d mem=%d ctl=%d"
    l.total l.int_multiply l.int_other l.fp_all l.fp_divide l.fp_other l.memory l.control

let to_rows l =
  List.map string_of_int
    [ l.total; l.int_multiply; l.int_other; l.fp_all; l.fp_divide; l.fp_other; l.memory;
      l.control ]

type budget = {
  limits : limits;
  mutable n_total : int;
  mutable n_int_multiply : int;
  mutable n_int_other : int;
  mutable n_fp_all : int;
  mutable n_fp_divide : int;
  mutable n_fp_other : int;
  mutable n_memory : int;
  mutable n_control : int;
}

let budget limits =
  { limits; n_total = 0; n_int_multiply = 0; n_int_other = 0; n_fp_all = 0; n_fp_divide = 0;
    n_fp_other = 0; n_memory = 0; n_control = 0 }

let reset b =
  b.n_total <- 0;
  b.n_int_multiply <- 0;
  b.n_int_other <- 0;
  b.n_fp_all <- 0;
  b.n_fp_divide <- 0;
  b.n_fp_other <- 0;
  b.n_memory <- 0;
  b.n_control <- 0

let can_issue b (op : Op_class.t) =
  let l = b.limits in
  b.n_total < l.total
  &&
  match op with
  | Int_multiply -> b.n_int_multiply < l.int_multiply
  | Int_other -> b.n_int_other < l.int_other
  | Fp_divide _ -> b.n_fp_all < l.fp_all && b.n_fp_divide < l.fp_divide
  | Fp_other -> b.n_fp_all < l.fp_all && b.n_fp_other < l.fp_other
  | Load | Store -> b.n_memory < l.memory
  | Control -> b.n_control < l.control

let consume b (op : Op_class.t) =
  if not (can_issue b op) then invalid_arg "Issue_rules.consume: over budget";
  b.n_total <- b.n_total + 1;
  match op with
  | Int_multiply -> b.n_int_multiply <- b.n_int_multiply + 1
  | Int_other -> b.n_int_other <- b.n_int_other + 1
  | Fp_divide _ ->
    b.n_fp_all <- b.n_fp_all + 1;
    b.n_fp_divide <- b.n_fp_divide + 1
  | Fp_other ->
    b.n_fp_all <- b.n_fp_all + 1;
    b.n_fp_other <- b.n_fp_other + 1
  | Load | Store -> b.n_memory <- b.n_memory + 1
  | Control -> b.n_control <- b.n_control + 1

let issued b = b.n_total
