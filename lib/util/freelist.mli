(** Free list of integer resource identifiers in [\[0, size)].

    Models hardware allocators: physical register freelists and transfer
    buffer entry allocators. Allocation order is LIFO (does not matter to
    the model; identifiers are opaque tags). *)

type t

val create : size:int -> t
(** All identifiers initially free. Requires [size >= 0]. *)

val size : t -> int
val available : t -> int
val is_free : t -> int -> bool

val alloc : t -> int option
(** Take a free identifier, or [None] if exhausted. *)

val take : t -> int
(** As {!alloc} but allocation-free: a free identifier, or [-1] if
    exhausted. Hot-path variant (no [option] box). *)

val free : t -> int -> unit
(** Return an identifier. @raise Invalid_argument on double free or out of
    range. *)

val reset : t -> unit
(** Free everything. *)

(** Slab-backed object pool: the record analogue of the identifier
    freelist above. Objects are constructed once (lazily, slot by slot, so
    creating a pool is cheap), carry their slot index in a field the
    caller exposes via [slot], and are recycled through [alloc]/[free]
    instead of being re-allocated on the heap — the steady state performs
    no minor-heap allocation. Backing storage is pre-sized at [create]
    and doubles on demand; the built population is bounded by the
    caller's maximum number of simultaneously live objects (for the
    machine pools, ROB occupancy x copies per group). *)
module Slab : sig
  type 'a t

  val create : ?initial:int -> make:(int -> 'a) -> slot:('a -> int) -> unit -> 'a t
  (** [create ~make ~slot ()]: [make i] builds the object for slot [i]
      (it must store [i] where [slot] can read it back; [make (-1)] is
      used once for an internal filler). [initial] pre-sizes the slab
      (default 64). @raise Invalid_argument when [initial < 1]. *)

  val alloc : 'a t -> 'a
  (** A free object (recycled if possible, freshly built otherwise). The
      caller must reinitialize every mutable field it relies on. *)

  val free : 'a t -> 'a -> unit
  (** Return an object to the pool.
      @raise Invalid_argument on double free or an object from another
      pool. *)

  val reset : 'a t -> unit
  (** Mark every object free. Built objects are retained. *)

  val live : 'a t -> int
  (** Objects currently handed out. *)

  val built : 'a t -> int
  (** Objects constructed so far (the pool's high-water mark). *)

  val capacity : 'a t -> int
  (** Current slab capacity (grows geometrically). *)
end
