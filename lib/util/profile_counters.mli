(** Per-stage profiling counters for the detailed machine model.

    A counter set is created with a fixed list of stage names; each stage
    accumulates [visits] (times the stage ran) and [work] (items it
    examined — queue entries scanned, instructions dispatched, ...), both
    plain [int] increments so the profiled run allocates nothing.
    [alloc_start]/[alloc_stop] bracket a region and accumulate minor-heap
    words allocated inside it (via [Gc.minor_words]). *)

type t

val create : stages:string list -> t
(** Fresh counter set; stage indices follow the list order. *)

val n_stages : t -> int
val stage_name : t -> int -> string

val add : t -> int -> work:int -> unit
(** Record one visit of stage [i] that examined [work] items. *)

val add_alloc : t -> int -> words:float -> unit
(** Attribute [words] minor-heap words to stage [i] (the caller measures
    them, typically as a [Gc.minor_words] delta around the stage). *)

val note_cycle : t -> unit
(** Record one simulated cycle. *)

val alloc_start : t -> unit
(** Mark the start of an allocation-measured region. Nested calls are
    ignored until the matching [alloc_stop]. *)

val alloc_stop : t -> unit
(** Close the region opened by [alloc_start], accumulating the minor
    words allocated since. *)

val visits : t -> int -> int
val work : t -> int -> int

val alloc : t -> int -> float
(** Minor words attributed to stage [i] via {!add_alloc}. *)

val cycles : t -> int

val minor_words : t -> float
(** Total minor-heap words allocated inside measured regions. *)

val reset : t -> unit

val render : ?instrs:int -> t -> string
(** Human-readable table: a summary line (cycles, minor words, words per
    cycle) then one row per stage with visits, work, work/visit,
    work/cycle and alloc/cycle. With [instrs] (the retired-instruction
    count of the profiled run) the summary also reports words/instr and
    every stage row gains an alloc/instr column — allocated words per
    instruction is the figure the optimisation work tracks, since
    cycles per instruction varies with the machine config. *)
