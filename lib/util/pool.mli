(** A fixed-size domain pool for deterministic fan-out of independent
    jobs (OCaml 5 [Domain] + [Mutex]; no dependencies beyond the stdlib
    and the [unix] library shipped with the compiler).

    The experiment layer uses {!parallel_map} to run independent
    (workload, scheduler, machine-config) simulations on separate
    domains. Every job must be a pure function of its input — in
    particular any randomness must come from a generator seeded by the
    job description, never from state shared between jobs — so a
    parallel run is bit-for-bit identical to a serial one.

    For long sweeps the pool also provides {e durability} primitives:
    bounded per-job retry with a deterministic backoff schedule
    ({!parallel_map} with [~retries]), a per-job failure status instead
    of an exception ({!parallel_map_status}), and a seeded
    fault-injection hook ({!seeded_faults}) with which tests and the
    bench harness prove that retry and checkpoint/resume preserve
    results. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the worker count the
    experiment entry points default to. 1 on machines without usable
    parallelism, in which case everything runs on the serial path. *)

exception Injected_fault of { job : int; attempt : int }
(** Raised inside a worker when an [inject_fault] hook fires for
    (zero-based) job index [job] on (zero-based) [attempt]. Behaves like
    any other job failure: it is retried up to [retries] times and then
    either re-raised ({!parallel_map}) or recorded as {!Failed}
    ({!parallel_map_status}). *)

type failure = {
  attempts : int;  (** attempts made, i.e. [retries + 1] on exhaustion *)
  exn : exn;  (** the last attempt's exception *)
  backtrace : Printexc.raw_backtrace;  (** where the last attempt failed *)
}

type 'a status = Done of 'a | Failed of failure
(** Per-job outcome of {!parallel_map_status}: the job's result, or the
    failure that survived every retry. *)

val failure_message : failure -> string
(** One-line human-readable rendering:
    ["failed after N attempt(s): <exn>"]. *)

val default_backoff : int -> float
(** The default retry delay: [default_backoff k] is the seconds slept
    before retry [k] (1-based), doubling from 5 ms and capped at 250 ms
    — a pure function of [k], so the schedule is deterministic. *)

val no_backoff : int -> float
(** Always [0.] — pass as [~backoff] in tests to retry immediately. *)

val seeded_faults : seed:int -> rate:float -> job:int -> attempt:int -> bool
(** A deterministic fault injector: fires with probability [rate],
    decided by a {!Rng} stream seeded from [(seed, job, attempt)] alone
    — independent of domain scheduling, so a faulty run is exactly
    reproducible from [seed]. *)

val parallel_map :
  ?retries:int ->
  ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [parallel_map ~jobs f xs] is [List.map f xs], computed by up to
    [jobs] domains (the calling domain participates, so [jobs - 1] are
    spawned). Results preserve input order regardless of completion
    order.

    Degrades to a serial in-place loop — no domains, no locks — when
    [jobs = 1] or the list has fewer than two elements; never spawns
    more domains than there are jobs to run.

    A job that raises is retried up to [retries] (default 0) further
    times, sleeping [backoff k] seconds (default {!default_backoff})
    before the [k]-th retry. [inject_fault] (for tests and the bench
    harness) is consulted before each attempt and raises
    {!Injected_fault} in the worker when it returns [true].

    If a job fails all its attempts, the last exception (with its
    backtrace) is re-raised in the caller after all workers have
    stopped; when several jobs fail, the one with the smallest input
    index that was observed to fail wins, and no new jobs are started
    after the first exhausted failure.

    @raise Invalid_argument when [jobs < 1] or [retries < 0]. *)

val parallel_map_status :
  ?retries:int ->
  ?backoff:(int -> float) ->
  ?inject_fault:(job:int -> attempt:int -> bool) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b status list
(** {!parallel_map}, degrading failure to data: every job runs to a
    {!status} ([Done] or, once its retries are exhausted, [Failed]), a
    failing job never aborts the others, and the caller decides what a
    permanent failure means (the experiment layer reports it as a failed
    sweep unit instead of losing the whole sweep).

    @raise Invalid_argument when [jobs < 1] or [retries < 0]. *)
