(** A fixed-size domain pool for deterministic fan-out of independent
    jobs (OCaml 5 [Domain] + [Mutex]; no dependencies beyond the stdlib).

    The experiment layer uses {!parallel_map} to run independent
    (workload, scheduler, machine-config) simulations on separate
    domains. Every job must be a pure function of its input — in
    particular any randomness must come from a generator seeded by the
    job description, never from state shared between jobs — so a
    parallel run is bit-for-bit identical to a serial one. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the worker count the
    experiment entry points default to. 1 on machines without usable
    parallelism, in which case everything runs on the serial path. *)

val parallel_map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ~jobs f xs] is [List.map f xs], computed by up to
    [jobs] domains (the calling domain participates, so [jobs - 1] are
    spawned). Results preserve input order regardless of completion
    order.

    Degrades to plain [List.map] — no domains, no locks — when
    [jobs = 1] or the list has fewer than two elements; never spawns
    more domains than there are jobs to run.

    If a job raises, the exception (with its backtrace) is re-raised in
    the caller after all workers have stopped; when several jobs fail,
    the one with the smallest input index that was observed to fail
    wins, and no new jobs are started after the first failure.

    @raise Invalid_argument when [jobs < 1]. *)
