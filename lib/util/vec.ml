type 'a t = { mutable arr : 'a array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.arr.(i)

let push t x =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    (* Grow using [x] as the fill element so no dummy value is needed. *)
    let arr = Array.make (max 8 (2 * cap)) x in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(t.len) <- x;
  t.len <- t.len + 1

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.(i)
  done

let filter_in_place keep t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.arr.(i) in
    if keep x then begin
      if !j < i then t.arr.(!j) <- x;
      incr j
    end
  done;
  t.len <- !j

let sort ~cmp t =
  for i = 1 to t.len - 1 do
    let x = t.arr.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && cmp t.arr.(!j) x > 0 do
      t.arr.(!j + 1) <- t.arr.(!j);
      decr j
    done;
    t.arr.(!j + 1) <- x
  done

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.arr.(i) :: acc) in
  go (t.len - 1) []
