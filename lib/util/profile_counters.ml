type t = {
  names : string array;
  visits : int array;
  work : int array;
  alloc : float array;
  mutable cycles : int;
  mutable minor_mark : float;
  mutable minor_words : float;
  mutable sampling : bool;
}

let create ~stages =
  {
    names = Array.of_list stages;
    visits = Array.make (List.length stages) 0;
    work = Array.make (List.length stages) 0;
    alloc = Array.make (List.length stages) 0.0;
    cycles = 0;
    minor_mark = 0.0;
    minor_words = 0.0;
    sampling = false;
  }

let n_stages t = Array.length t.names
let stage_name t i = t.names.(i)

let add t i ~work =
  t.visits.(i) <- t.visits.(i) + 1;
  t.work.(i) <- t.work.(i) + work

let add_alloc t i ~words = t.alloc.(i) <- t.alloc.(i) +. words

let note_cycle t = t.cycles <- t.cycles + 1

let alloc_start t =
  if not t.sampling then begin
    t.sampling <- true;
    t.minor_mark <- Gc.minor_words ()
  end

let alloc_stop t =
  if t.sampling then begin
    t.sampling <- false;
    t.minor_words <- t.minor_words +. (Gc.minor_words () -. t.minor_mark)
  end

let visits t i = t.visits.(i)
let work t i = t.work.(i)
let alloc t i = t.alloc.(i)
let cycles t = t.cycles
let minor_words t = t.minor_words

let reset t =
  Array.fill t.visits 0 (Array.length t.visits) 0;
  Array.fill t.work 0 (Array.length t.work) 0;
  Array.fill t.alloc 0 (Array.length t.alloc) 0.0;
  t.cycles <- 0;
  t.minor_words <- 0.0;
  t.sampling <- false

let render ?instrs t =
  let buf = Buffer.create 512 in
  let cyc = float_of_int (max 1 t.cycles) in
  let ins = Option.map (fun n -> float_of_int (max 1 n)) instrs in
  Buffer.add_string buf
    (Printf.sprintf "cycles %d, minor words %.0f (%.2f words/cycle%s)\n"
       t.cycles t.minor_words (t.minor_words /. cyc)
       (match ins with
       | Some f -> Printf.sprintf ", %.2f words/instr" (t.minor_words /. f)
       | None -> ""));
  let rows =
    Array.to_list
      (Array.mapi
         (fun i name ->
           [
             name;
             string_of_int t.visits.(i);
             string_of_int t.work.(i);
             (if t.visits.(i) = 0 then "-"
              else
                Printf.sprintf "%.2f"
                  (float_of_int t.work.(i) /. float_of_int t.visits.(i)));
             Printf.sprintf "%.2f" (float_of_int t.work.(i) /. cyc);
             Printf.sprintf "%.1f" (t.alloc.(i) /. cyc);
           ]
           @ match ins with
             | Some f -> [ Printf.sprintf "%.2f" (t.alloc.(i) /. f) ]
             | None -> [])
         t.names)
  in
  let header =
    [ "stage"; "visits"; "work"; "work/visit"; "work/cycle"; "alloc/cycle" ]
    @ match ins with Some _ -> [ "alloc/instr" ] | None -> []
  in
  Buffer.add_string buf
    (Text_table.render
       ~aligns:(Array.make (List.length header) Text_table.Right |> fun a ->
                a.(0) <- Text_table.Left; a)
       (header :: rows));
  Buffer.contents buf
