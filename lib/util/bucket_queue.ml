type 'a t = {
  mutable buckets : 'a Vec.t array; (* length is a power of two *)
  mutable floor : int;
  mutable count : int;
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let create ?(capacity = 64) () =
  let cap = round_pow2 (max 1 capacity) in
  { buckets = Array.init cap (fun _ -> Vec.create ()); floor = 0; count = 0 }

let length t = t.count
let is_empty t = t.count = 0
let floor t = t.floor

(* Pending keys all lie in [floor, floor + old_cap), so each old bucket
   holds entries for exactly one key: relocate whole buckets, no copying. *)
let grow t needed =
  let old_cap = Array.length t.buckets in
  let cap = round_pow2 needed in
  let buckets = Array.make cap (Vec.create ()) in
  let taken = Array.make cap false in
  for k = t.floor to t.floor + old_cap - 1 do
    let slot = k land (cap - 1) in
    buckets.(slot) <- t.buckets.(k land (old_cap - 1));
    taken.(slot) <- true
  done;
  for i = 0 to cap - 1 do
    if not taken.(i) then buckets.(i) <- Vec.create ()
  done;
  t.buckets <- buckets

let add t ~key x =
  if key < t.floor then
    invalid_arg
      (Printf.sprintf "Bucket_queue.add: key %d below floor %d" key t.floor);
  let cap = Array.length t.buckets in
  if key - t.floor >= cap then grow t (key - t.floor + 1);
  Vec.push t.buckets.(key land (Array.length t.buckets - 1)) x;
  t.count <- t.count + 1

let drain_upto t ~key f =
  if t.count = 0 then begin
    if key >= t.floor then t.floor <- key + 1
  end
  else begin
    while t.floor <= key do
      (* Recompute the mask every round: the callback may [add] far enough
         ahead to grow (and thus replace) the bucket array. *)
      let b = t.buckets.(t.floor land (Array.length t.buckets - 1)) in
      (* Index loop: the callback may push into later buckets but not
         into [b], so the live length is fixed. *)
      let n = Vec.length b in
      for i = 0 to n - 1 do
        f (Vec.get b i)
      done;
      t.count <- t.count - n;
      Vec.clear b;
      t.floor <- t.floor + 1;
      if t.count = 0 && t.floor <= key then t.floor <- key + 1
    done
  end
