(* Welford's online algorithm for mean/variance. *)

type dist = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let dist_create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

let dist_add d x =
  d.n <- d.n + 1;
  let delta = x -. d.mean in
  d.mean <- d.mean +. (delta /. float_of_int d.n);
  d.m2 <- d.m2 +. (delta *. (x -. d.mean));
  if x < d.min then d.min <- x;
  if x > d.max then d.max <- x;
  d.total <- d.total +. x

let dist_n d = d.n
let dist_mean d = if d.n = 0 then 0.0 else d.mean
let dist_var d = if d.n < 2 then 0.0 else d.m2 /. float_of_int d.n
let dist_stddev d = sqrt (dist_var d)
let dist_min d = d.min
let dist_max d = d.max
let dist_total d = d.total

type counter_set = (string, int ref) Hashtbl.t

let counters_create () : counter_set = Hashtbl.create 64

let find_ref t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let counter = find_ref
let incr t name = Stdlib.incr (find_ref t name)
let add t name k = find_ref t name := !(find_ref t name) + k
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_alist t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Immutable snapshot of a counter set with O(log n) lookup: names and
   values in two parallel arrays sorted by name. *)
type lookup = { names : string array; values : int array }

let lookup_of_alist alist =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) alist in
  { names = Array.of_list (List.map fst sorted);
    values = Array.of_list (List.map snd sorted) }

let lookup_of_counters t = lookup_of_alist (to_alist t)

let lookup_get { names; values } name =
  let rec search lo hi =
    if lo >= hi then 0
    else
      let mid = (lo + hi) / 2 in
      match String.compare name names.(mid) with
      | 0 -> values.(mid)
      | c when c < 0 -> search lo mid
      | _ -> search (mid + 1) hi
  in
  search 0 (Array.length names)

let lookup_to_alist { names; values } =
  Array.to_list (Array.map2 (fun k v -> (k, v)) names values)

(* ------------------------------------------------------------------ *)
(* Batch statistics over float arrays (sampled-simulation aggregation) *)
(* ------------------------------------------------------------------ *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    ss /. float_of_int (n - 1)
  end

(* Two-sided Student-t critical values. Rows are degrees of freedom
   1..30 then 40, 60, 120; columns are confidence 0.90, 0.95, 0.99.
   For df between tabulated rows the next smaller row is used (its
   critical value is larger, so the interval is conservative); above
   120 the normal limit applies. *)
let t_table =
  [| (1, (6.314, 12.706, 63.657)); (2, (2.920, 4.303, 9.925));
     (3, (2.353, 3.182, 5.841)); (4, (2.132, 2.776, 4.604));
     (5, (2.015, 2.571, 4.032)); (6, (1.943, 2.447, 3.707));
     (7, (1.895, 2.365, 3.499)); (8, (1.860, 2.306, 3.355));
     (9, (1.833, 2.262, 3.250)); (10, (1.812, 2.228, 3.169));
     (11, (1.796, 2.201, 3.106)); (12, (1.782, 2.179, 3.055));
     (13, (1.771, 2.160, 3.012)); (14, (1.761, 2.145, 2.977));
     (15, (1.753, 2.131, 2.947)); (16, (1.746, 2.120, 2.921));
     (17, (1.740, 2.110, 2.898)); (18, (1.734, 2.101, 2.878));
     (19, (1.729, 2.093, 2.861)); (20, (1.725, 2.086, 2.845));
     (21, (1.721, 2.080, 2.831)); (22, (1.717, 2.074, 2.819));
     (23, (1.714, 2.069, 2.807)); (24, (1.711, 2.064, 2.797));
     (25, (1.708, 2.060, 2.787)); (26, (1.706, 2.056, 2.779));
     (27, (1.703, 2.052, 2.771)); (28, (1.701, 2.048, 2.763));
     (29, (1.699, 2.045, 2.756)); (30, (1.697, 2.042, 2.750));
     (40, (1.684, 2.021, 2.704)); (60, (1.671, 2.000, 2.660));
     (120, (1.658, 1.980, 2.617)) |]

let t_normal_limit = (1.645, 1.960, 2.576)

let t_critical ?(confidence = 0.95) ~df () =
  if df < 1 then invalid_arg "Stats.t_critical: df < 1";
  let pick (c90, c95, c99) =
    if confidence = 0.90 then c90
    else if confidence = 0.95 then c95
    else if confidence = 0.99 then c99
    else invalid_arg "Stats.t_critical: confidence must be 0.90, 0.95 or 0.99"
  in
  let max_df, _ = t_table.(Array.length t_table - 1) in
  if df > max_df then pick t_normal_limit
  else begin
    (* Largest tabulated row with df' <= df (rows are sorted). *)
    let row = ref (snd t_table.(0)) in
    (try
       Array.iter
         (fun (df', cs) -> if df' <= df then row := cs else raise Exit)
         t_table
     with Exit -> ());
    pick !row
  end

let confidence_interval ?(confidence = 0.95) xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stats.confidence_interval: need at least 2 samples";
  let m = mean xs in
  let t = t_critical ~confidence ~df:(n - 1) () in
  (m, t *. sqrt (variance xs /. float_of_int n))

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let percent_speedup ~single ~dual =
  100.0 -. (100.0 *. ratio dual single)
