(* Welford's online algorithm for mean/variance. *)

type dist = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let dist_create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

let dist_add d x =
  d.n <- d.n + 1;
  let delta = x -. d.mean in
  d.mean <- d.mean +. (delta /. float_of_int d.n);
  d.m2 <- d.m2 +. (delta *. (x -. d.mean));
  if x < d.min then d.min <- x;
  if x > d.max then d.max <- x;
  d.total <- d.total +. x

let dist_n d = d.n
let dist_mean d = if d.n = 0 then 0.0 else d.mean
let dist_var d = if d.n < 2 then 0.0 else d.m2 /. float_of_int d.n
let dist_stddev d = sqrt (dist_var d)
let dist_min d = d.min
let dist_max d = d.max
let dist_total d = d.total

type counter_set = (string, int ref) Hashtbl.t

let counters_create () : counter_set = Hashtbl.create 64

let find_ref t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let incr t name = Stdlib.incr (find_ref t name)
let add t name k = find_ref t name := !(find_ref t name) + k
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_alist t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Immutable snapshot of a counter set with O(log n) lookup: names and
   values in two parallel arrays sorted by name. *)
type lookup = { names : string array; values : int array }

let lookup_of_alist alist =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) alist in
  { names = Array.of_list (List.map fst sorted);
    values = Array.of_list (List.map snd sorted) }

let lookup_of_counters t = lookup_of_alist (to_alist t)

let lookup_get { names; values } name =
  let rec search lo hi =
    if lo >= hi then 0
    else
      let mid = (lo + hi) / 2 in
      match String.compare name names.(mid) with
      | 0 -> values.(mid)
      | c when c < 0 -> search lo mid
      | _ -> search (mid + 1) hi
  in
  search 0 (Array.length names)

let lookup_to_alist { names; values } =
  Array.to_list (Array.map2 (fun k v -> (k, v)) names values)

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let percent_speedup ~single ~dual =
  100.0 -. (100.0 *. ratio dual single)
