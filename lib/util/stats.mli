(** Streaming statistics accumulators and simple counters.

    The simulator keeps one [counter_set] per machine; benches and tests
    read individual counters by name. Distributions (e.g., issued
    instructions per cycle) use [dist]. *)

type dist
(** A streaming accumulator over float samples: constant space, one
    update per {!dist_add}, no sample retention. *)

val dist_create : unit -> dist
(** Empty accumulator. *)

val dist_add : dist -> float -> unit
(** Fold one sample into the accumulator. *)

val dist_n : dist -> int
(** Samples seen so far. *)

val dist_mean : dist -> float
(** 0 when empty. *)

val dist_var : dist -> float
(** Population variance; 0 when fewer than 2 samples. *)

val dist_stddev : dist -> float
(** Square root of {!dist_var}. *)

val dist_min : dist -> float
(** [infinity] when empty. *)

val dist_max : dist -> float
(** [neg_infinity] when empty. *)

val dist_total : dist -> float
(** Sum of all samples; 0 when empty. *)

type counter_set
(** A mutable bag of named integer counters, created lazily at 0. *)

val counters_create : unit -> counter_set
(** Empty counter set. *)

val incr : counter_set -> string -> unit
(** Add 1 to a named counter, creating it if absent. *)

val add : counter_set -> string -> int -> unit
(** Add an arbitrary amount to a named counter, creating it if absent. *)

val get : counter_set -> string -> int
(** 0 for never-touched counters. *)

val counter : counter_set -> string -> int ref
(** The live cell behind a named counter, creating it at 0 if absent.
    Callers on hot paths intern the cell once and bump it with
    [Stdlib.incr], skipping the per-event string hash of {!incr}; the
    cell stays visible to {!get}/{!to_alist}. *)

val to_alist : counter_set -> (string * int) list
(** Sorted by name. *)

type lookup
(** An immutable snapshot of counters supporting O(log n) queries by
    name — what finished simulations hand out instead of an association
    list walked per query. Structural equality on [lookup] values is
    meaningful (two snapshots are equal iff they hold the same
    counters). *)

val lookup_of_alist : (string * int) list -> lookup
(** Snapshot an association list (need not be sorted; later bindings of
    a duplicate name win). *)

val lookup_of_counters : counter_set -> lookup
(** Snapshot a {!counter_set} at its current values. *)

val lookup_get : lookup -> string -> int
(** 0 for absent names. *)

val lookup_to_alist : lookup -> (string * int) list
(** Sorted by name. *)

val mean : float array -> float
(** Arithmetic mean; 0 when empty. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 when fewer than 2
    samples. (Contrast {!dist_var}, which is the population variance of a
    streaming accumulator.) *)

val t_critical : ?confidence:float -> df:int -> unit -> float
(** Two-sided Student-t critical value at [confidence] (0.90, 0.95 —
    the default — or 0.99) with [df] degrees of freedom. Between
    tabulated rows the next smaller df is used, which errs conservative;
    above 120 df the normal limit applies.
    @raise Invalid_argument on [df < 1] or an untabulated confidence. *)

val confidence_interval : ?confidence:float -> float array -> float * float
(** [(mean, halfwidth)] of the Student-t confidence interval on the mean
    (default 95%): the true mean lies in [mean ± halfwidth] with the
    requested confidence, under the usual independence assumptions.
    @raise Invalid_argument with fewer than 2 samples. *)

val ratio : int -> int -> float
(** [ratio num den] is [num/den] as float, 0 when [den = 0]. *)

val percent_speedup : single:int -> dual:int -> float
(** The paper's Table-2 metric: [100 - 100 * (dual /. single)] — positive
    numbers are speedups of the dual-cluster machine, negative numbers are
    slowdowns. (The paper prints the negation of the slowdown.) *)
