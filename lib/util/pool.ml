(* Work-stealing-free domain pool: jobs are claimed from a shared index
   behind one mutex. That is deliberately simple — the experiment layer's
   jobs are whole simulations (milliseconds to seconds each), so claim
   contention is irrelevant, and a deterministic job -> result mapping is
   the property that matters.

   Retry lives entirely inside the worker that owns the job: attempts,
   backoff and fault injection are pure functions of (job index, attempt
   number), so the outcome of a faulty run is independent of which domain
   ran which job. *)

let default_jobs () = Domain.recommended_domain_count ()

(* OCaml caps the number of live domains (128 on 64-bit); stay far below
   it so nested parallel_map calls cannot hit the runtime limit. *)
let max_spawn = 32

exception Injected_fault of { job : int; attempt : int }

type failure = {
  attempts : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

type 'a status = Done of 'a | Failed of failure

let failure_message f =
  Printf.sprintf "failed after %d attempt(s): %s" f.attempts (Printexc.to_string f.exn)

let default_backoff k = Float.min 0.25 (0.005 *. Float.of_int (1 lsl (k - 1)))

let no_backoff _ = 0.

let seeded_faults ~seed ~rate ~job ~attempt =
  (* One throwaway SplitMix64 stream per (seed, job, attempt): the
     decision depends on nothing else, so it replays identically under
     any domain schedule. *)
  let mix = (seed * 0x9E3779B9) lxor (job * 0x85EBCA6B) lxor (attempt * 0xC2B2AE35) in
  Rng.bernoulli (Rng.create mix) rate

(* One job, run to completion or to retry exhaustion. *)
let run_job ~retries ~backoff ~inject_fault f input i =
  let rec attempt k =
    match
      (match inject_fault with
      | Some p when p ~job:i ~attempt:k -> raise (Injected_fault { job = i; attempt = k })
      | Some _ | None -> ());
      f input
    with
    | y -> Done y
    | exception exn ->
      let backtrace = Printexc.get_raw_backtrace () in
      if k < retries then begin
        let delay = backoff (k + 1) in
        if delay > 0. then Unix.sleepf delay;
        attempt (k + 1)
      end
      else Failed { attempts = k + 1; exn; backtrace }
  in
  attempt 0

let map_core (type a b) ~retries ~backoff ~inject_fault ~stop_on_failure ~jobs (f : a -> b)
    (xs : a list) : b status list =
  if jobs < 1 then invalid_arg "Pool.parallel_map: jobs < 1";
  if retries < 0 then invalid_arg "Pool.parallel_map: retries < 0";
  let n = List.length xs in
  let jobs = min (min jobs n) max_spawn in
  let run_one = run_job ~retries ~backoff ~inject_fault f in
  if jobs <= 1 || n < 2 then List.mapi (fun i x -> run_one x i) xs
  else begin
    let input = Array.of_list xs in
    let results : b status option array = Array.make n None in
    let mutex = Mutex.create () in
    let next = ref 0 in
    (* Index of the lowest job observed to exhaust its retries; in
       stop_on_failure mode no new jobs start once it is set. *)
    let failed_at = ref max_int in
    let claim () =
      Mutex.lock mutex;
      let job =
        if (stop_on_failure && !failed_at < max_int) || !next >= n then None
        else begin
          let i = !next in
          next := i + 1;
          Some i
        end
      in
      Mutex.unlock mutex;
      job
    in
    let note_failure i =
      Mutex.lock mutex;
      if i < !failed_at then failed_at := i;
      Mutex.unlock mutex
    in
    let rec worker () =
      match claim () with
      | None -> ()
      | Some i ->
        let st = run_one input.(i) i in
        results.(i) <- Some st;
        (match st with Failed _ -> note_failure i | Done _ -> ());
        worker ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    List.init n (fun i ->
        match results.(i) with
        | Some st -> st
        | None ->
          (* Only reachable in stop_on_failure mode, for jobs never
             started after the first exhausted failure. *)
          assert (stop_on_failure && !failed_at < max_int);
          (match results.(!failed_at) with
          | Some (Failed _ as st) -> st
          | Some (Done _) | None -> assert false))
  end

let parallel_map ?(retries = 0) ?(backoff = default_backoff) ?inject_fault ~jobs f xs =
  let statuses =
    map_core ~retries ~backoff ~inject_fault ~stop_on_failure:true ~jobs f xs
  in
  (* Re-raise the lowest-index exhausted failure, as if the map had run
     serially up to it. *)
  let first_failure =
    List.find_map (function Failed f -> Some f | Done _ -> None) statuses
  in
  match first_failure with
  | Some f -> Printexc.raise_with_backtrace f.exn f.backtrace
  | None ->
    List.map (function Done y -> y | Failed _ -> assert false) statuses

let parallel_map_status ?(retries = 0) ?(backoff = default_backoff) ?inject_fault ~jobs f xs
    =
  map_core ~retries ~backoff ~inject_fault ~stop_on_failure:false ~jobs f xs
