(* Work-stealing-free domain pool: jobs are claimed from a shared index
   behind one mutex. That is deliberately simple — the experiment layer's
   jobs are whole simulations (milliseconds to seconds each), so claim
   contention is irrelevant, and a deterministic job -> result mapping is
   the property that matters. *)

let default_jobs () = Domain.recommended_domain_count ()

(* OCaml caps the number of live domains (128 on 64-bit); stay far below
   it so nested parallel_map calls cannot hit the runtime limit. *)
let max_spawn = 32

let parallel_map (type a b) ~jobs (f : a -> b) (xs : a list) : b list =
  if jobs < 1 then invalid_arg "Pool.parallel_map: jobs < 1";
  let n = List.length xs in
  let jobs = min (min jobs n) max_spawn in
  if jobs <= 1 || n < 2 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results : b option array = Array.make n None in
    let mutex = Mutex.create () in
    let next = ref 0 in
    let failure : (int * exn * Printexc.raw_backtrace) option ref = ref None in
    let claim () =
      Mutex.lock mutex;
      let job =
        if Option.is_some !failure || !next >= n then None
        else begin
          let i = !next in
          next := i + 1;
          Some i
        end
      in
      Mutex.unlock mutex;
      job
    in
    let fail i exn bt =
      Mutex.lock mutex;
      (match !failure with
      | Some (j, _, _) when j <= i -> ()
      | Some _ | None -> failure := Some (i, exn, bt));
      Mutex.unlock mutex
    in
    let rec worker () =
      match claim () with
      | None -> ()
      | Some i ->
        (match f input.(i) with
        | y ->
          results.(i) <- Some y
        | exception exn ->
          fail i exn (Printexc.get_raw_backtrace ()));
        worker ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    match !failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      List.init n (fun i ->
          match results.(i) with Some y -> y | None -> assert false)
  end
