(** Growable vector with an allocation-free steady state.

    Backing storage doubles on demand and is never shrunk, so once a
    vector has reached its high-water mark, [push]/[clear]/[iter] and the
    in-place [filter_in_place]/[sort] perform no heap allocation. Used on
    the simulator hot path (ready lists, event-wheel buckets) where the
    per-cycle element churn is high but the population is bounded.

    [clear] only resets the length; it does not drop references to the
    stored elements. Fine for short-lived simulation objects, but do not
    use this to hold onto large structures past their useful life. *)

type 'a t

val create : unit -> 'a t
(** Empty vector with no backing storage (first [push] allocates). *)

val length : 'a t -> int
(** Live elements (the pushed-minus-cleared count, not the capacity). *)

val is_empty : 'a t -> bool
(** [length t = 0]. *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument if the index is out of bounds. *)

val push : 'a t -> 'a -> unit
(** Append, growing the backing array (amortised O(1)). *)

val clear : 'a t -> unit
(** Reset length to zero without releasing storage. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Apply to each live element in index order. *)

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order.
    In place: no allocation. *)

val sort : cmp:('a -> 'a -> int) -> 'a t -> unit
(** In-place insertion sort of the live prefix. O(n + inversions): cheap
    for the nearly-sorted inputs produced by append-mostly-in-order use. *)

val to_list : 'a t -> 'a list
(** Live elements in index order (allocates; for tests/reporting). *)
