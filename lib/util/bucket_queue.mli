(** Event wheel: a monotone priority queue indexed by cycle number.

    A ring of buckets (one {!Vec.t} per slot) keyed by an integer cycle.
    Entries may only be added at or above the current floor — the smallest
    key not yet drained — which is exactly the discipline of a cycle-level
    simulator scheduling future events. [drain_upto] visits entries in key
    order and advances the floor; within one key, entries come out in
    insertion order (same-cycle batching).

    The ring wraps modulo its capacity and grows (power of two) when a key
    lands further than one revolution ahead, so arbitrary horizons work.
    Buckets are reused after draining: in steady state the wheel allocates
    nothing. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Empty wheel with floor 0. [capacity] (default 64) is rounded up to a
    power of two and is only the initial horizon; the wheel grows. *)

val length : 'a t -> int
(** Entries added but not yet drained. *)

val is_empty : 'a t -> bool
(** [length t = 0]. *)

val floor : 'a t -> int
(** Smallest key that may still be added or drained. *)

val add : 'a t -> key:int -> 'a -> unit
(** Schedule an entry at [key].
    @raise Invalid_argument if [key] is below the floor. *)

val drain_upto : 'a t -> key:int -> ('a -> unit) -> unit
(** Visit every pending entry with key [<= key] in key order (insertion
    order within a key) and advance the floor to [key + 1]. The callback
    may [add] entries at keys [> key]; it must not add at the key being
    drained or below. When the wheel is empty the floor jumps directly to
    [key + 1] without walking buckets. *)
