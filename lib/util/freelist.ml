type t = {
  free_ids : int array; (* stack of free identifiers; first [top] valid *)
  in_use : bool array;
  mutable top : int;
}

let create ~size =
  assert (size >= 0);
  { free_ids = Array.init size (fun i -> i); in_use = Array.make size false; top = size }

let size t = Array.length t.in_use
let available t = t.top
let is_free t id = not t.in_use.(id)

let take t =
  if t.top = 0 then -1
  else begin
    t.top <- t.top - 1;
    let id = t.free_ids.(t.top) in
    t.in_use.(id) <- true;
    id
  end

let alloc t =
  let id = take t in
  if id < 0 then None else Some id

let free t id =
  if id < 0 || id >= size t then invalid_arg "Freelist.free: out of range";
  if not t.in_use.(id) then invalid_arg "Freelist.free: double free";
  t.in_use.(id) <- false;
  t.free_ids.(t.top) <- id;
  t.top <- t.top + 1

let reset t =
  t.top <- size t;
  for i = 0 to size t - 1 do
    t.free_ids.(i) <- i;
    t.in_use.(i) <- false
  done

(* ------------------------------------------------------------------ *)
(* Slab-backed object pool                                             *)
(* ------------------------------------------------------------------ *)

module Slab = struct
  type 'a t = {
    make : int -> 'a;
    slot : 'a -> int;
    filler : 'a;  (* occupies unbuilt slots; never handed out *)
    mutable objs : 'a array;  (* slot -> object; first [built] constructed *)
    mutable built : int;
    mutable free_ids : int array;  (* stack of recycled slots; first [top] valid *)
    mutable top : int;
    mutable in_use : Bytes.t;  (* '\001' = handed out *)
    mutable live : int;
  }

  let create ?(initial = 64) ~make ~slot () =
    if initial < 1 then invalid_arg "Freelist.Slab.create: initial < 1";
    let filler = make (-1) in
    { make; slot; filler;
      objs = Array.make initial filler;
      built = 0;
      free_ids = Array.make initial 0;
      top = 0;
      in_use = Bytes.make initial '\000';
      live = 0 }

  let live t = t.live
  let built t = t.built
  let capacity t = Array.length t.objs

  let grow t =
    let cap = Array.length t.objs in
    let ncap = 2 * cap in
    let nobjs = Array.make ncap t.filler in
    Array.blit t.objs 0 nobjs 0 cap;
    t.objs <- nobjs;
    let nfree = Array.make ncap 0 in
    Array.blit t.free_ids 0 nfree 0 cap;
    t.free_ids <- nfree;
    let nuse = Bytes.make ncap '\000' in
    Bytes.blit t.in_use 0 nuse 0 cap;
    t.in_use <- nuse

  let alloc t =
    let id =
      if t.top > 0 then begin
        t.top <- t.top - 1;
        t.free_ids.(t.top)
      end
      else begin
        if t.built = Array.length t.objs then grow t;
        let id = t.built in
        t.objs.(id) <- t.make id;
        t.built <- t.built + 1;
        id
      end
    in
    Bytes.set t.in_use id '\001';
    t.live <- t.live + 1;
    t.objs.(id)

  let free t o =
    let id = t.slot o in
    if id < 0 || id >= t.built || not (t.objs.(id) == o) then
      invalid_arg "Freelist.Slab.free: not from this pool";
    if Bytes.get t.in_use id = '\000' then invalid_arg "Freelist.Slab.free: double free";
    Bytes.set t.in_use id '\000';
    t.free_ids.(t.top) <- id;
    t.top <- t.top + 1;
    t.live <- t.live - 1

  let reset t =
    Bytes.fill t.in_use 0 (Bytes.length t.in_use) '\000';
    for i = 0 to t.built - 1 do
      t.free_ids.(i) <- i
    done;
    t.top <- t.built;
    t.live <- 0
end
