lib/trace/walker.ml: Array Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_util Option
