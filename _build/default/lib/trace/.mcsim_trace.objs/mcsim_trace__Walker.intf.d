lib/trace/walker.mli: Mcsim_compiler Mcsim_ir Mcsim_isa
