(** Static assignment of architectural registers to clusters (paper §2.1).

    Each architectural register is either {e local} to one cluster or
    {e global} (a physical copy in every cluster). The paper's evaluation
    assigns even-numbered registers to cluster 0 and odd-numbered ones to
    cluster 1 (§4), with the stack and global pointers global. The
    hardwired-zero registers are readable everywhere and are reported
    global. *)

type placement = Local of int | Global

type t

val create :
  num_clusters:int -> ?globals:Mcsim_isa.Reg.t list -> unit -> t
(** Even/odd parity mapping over [num_clusters] (register [n] is local to
    cluster [n mod num_clusters]), with [globals] (default
    [\[Reg.sp; Reg.gp\]]) global. With [num_clusters = 1] every register is
    local to cluster 0. @raise Invalid_argument if [num_clusters < 1]. *)

val custom :
  num_clusters:int -> (Mcsim_isa.Reg.t -> placement) -> t
(** Arbitrary mapping (for ablations). The function is sampled once per
    register at construction; [Local c] must satisfy
    [0 <= c < num_clusters]. *)

val single : t
(** [create ~num_clusters:1 ~globals:[] ()]. *)

val num_clusters : t -> int

val placement : t -> Mcsim_isa.Reg.t -> placement
(** Zero registers report [Global]. *)

val clusters_of : t -> Mcsim_isa.Reg.t -> int list
(** Clusters holding a copy of the register. *)

val readable_in : t -> Mcsim_isa.Reg.t -> int -> bool

val locals_of : t -> int -> Mcsim_isa.Reg.t list
(** Registers local to a cluster (excludes zeros). *)

val globals : t -> Mcsim_isa.Reg.t list
(** Global registers (excludes zeros). *)
