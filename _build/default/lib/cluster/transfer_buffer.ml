type t = {
  n : int;
  free_at : int array;  (* entry -> first cycle it is allocatable; -1 = in use *)
  mutable n_alloc : int;
  mutable in_use : int;
  mutable high : int;
}

let create ~entries =
  if entries < 1 then invalid_arg "Transfer_buffer.create";
  { n = entries; free_at = Array.make entries 0; n_alloc = 0; in_use = 0; high = 0 }

let entries t = t.n

let available t ~cycle =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if t.free_at.(i) >= 0 && t.free_at.(i) <= cycle then incr c
  done;
  !c

let can_alloc t ~cycle = available t ~cycle > 0

let alloc t ~cycle =
  let rec find i =
    if i = t.n then invalid_arg "Transfer_buffer.alloc: full"
    else if t.free_at.(i) >= 0 && t.free_at.(i) <= cycle then i
    else find (i + 1)
  in
  let i = find 0 in
  t.free_at.(i) <- -1;
  t.n_alloc <- t.n_alloc + 1;
  t.in_use <- t.in_use + 1;
  if t.in_use > t.high then t.high <- t.in_use;
  i

let free t ~cycle i =
  if i < 0 || i >= t.n then invalid_arg "Transfer_buffer.free: bad entry";
  if t.free_at.(i) >= 0 then invalid_arg "Transfer_buffer.free: not in use";
  t.free_at.(i) <- cycle + 1;
  t.in_use <- t.in_use - 1

let clear t =
  for i = 0 to t.n - 1 do
    t.free_at.(i) <- 0
  done;
  t.in_use <- 0

let high_water t = t.high
let allocations t = t.n_alloc
