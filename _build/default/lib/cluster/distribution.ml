type slave = {
  s_cluster : int;
  s_forward_srcs : Mcsim_isa.Reg.t list;
  s_receives_result : bool;
}

type plan =
  | Single of { cluster : int }
  | Multi of {
      master : int;
      slaves : slave list;
      master_writes_reg : bool;
    }

let dedupe regs =
  List.fold_left
    (fun acc r -> if List.exists (Mcsim_isa.Reg.equal r) acc then acc else r :: acc)
    [] regs
  |> List.rev

let plan asg ?(prefer = 0) (instr : Mcsim_isa.Instr.t) =
  let n = Assignment.num_clusters asg in
  if n = 1 then Single { cluster = 0 }
  else begin
    let not_zero r = not (Mcsim_isa.Reg.is_zero r) in
    let srcs = dedupe (List.filter not_zero instr.srcs) in
    let dst = match instr.dst with Some d when not_zero d -> Some d | Some _ | None -> None in
    let named = srcs @ Option.to_list dst in
    (* Count the local registers named per cluster (the master-selection
       majority of §2.1; globals do not vote). *)
    let counts = Array.make n 0 in
    List.iter
      (fun r ->
        match Assignment.placement asg r with
        | Assignment.Local c -> counts.(c) <- counts.(c) + 1
        | Assignment.Global -> ())
      named;
    let srcs_readable_in c = List.for_all (fun r -> Assignment.readable_in asg r c) srcs in
    let dst_allows_single c =
      match dst with
      | None -> true
      | Some d -> (
        match Assignment.placement asg d with
        | Assignment.Local c' -> c = c'
        | Assignment.Global -> false)
    in
    let clusters = List.init n Fun.id in
    let candidates = List.filter (fun c -> srcs_readable_in c && dst_allows_single c) clusters in
    let best_of cands =
      (* Highest local-register count; ties prefer the destination's home,
         then [prefer], then the lowest id. *)
      let max_count = List.fold_left (fun acc c -> max acc counts.(c)) 0 cands in
      let tied = List.filter (fun c -> counts.(c) = max_count) cands in
      match tied with
      | [ c ] -> c
      | _ -> (
        let dst_home =
          match dst with
          | Some d -> (
            match Assignment.placement asg d with
            | Assignment.Local c when List.mem c tied -> Some c
            | Assignment.Local _ | Assignment.Global -> None)
          | None -> None
        in
        match dst_home with
        | Some c -> c
        | None -> if List.mem prefer tied then prefer else List.hd tied)
    in
    match candidates with
    | _ :: _ -> Single { cluster = best_of candidates }
    | [] ->
      let master = best_of clusters in
      let forward_srcs_of c =
        List.filter
          (fun r ->
            (not (Assignment.readable_in asg r master))
            && Assignment.placement asg r = Assignment.Local c)
          srcs
      in
      let receives c =
        match dst with
        | None -> false
        | Some d -> (
          match Assignment.placement asg d with
          | Assignment.Local c' -> c = c' && c <> master
          | Assignment.Global -> c <> master)
      in
      let master_writes_reg =
        match dst with
        | None -> false
        | Some d -> (
          match Assignment.placement asg d with
          | Assignment.Local c' -> c' = master
          | Assignment.Global -> true)
      in
      let slaves =
        List.filter_map
          (fun c ->
            if c = master then None
            else begin
              let fwd = forward_srcs_of c in
              let rcv = receives c in
              if fwd = [] && not rcv then None
              else Some { s_cluster = c; s_forward_srcs = fwd; s_receives_result = rcv }
            end)
          clusters
      in
      (* At least one slave exists, else a single-cluster candidate would
         have been found. *)
      assert (slaves <> []);
      Multi { master; slaves; master_writes_reg }
  end

let copies = function Single _ -> 1 | Multi { slaves; _ } -> 1 + List.length slaves

let scenario = function
  | Single _ -> 1
  | Multi { slaves; master_writes_reg; _ } -> (
    let fwd = List.exists (fun s -> s.s_forward_srcs <> []) slaves in
    let rf = List.exists (fun s -> s.s_receives_result) slaves in
    match (fwd, rf) with
    | true, true -> 5
    | true, false -> 2
    | false, true -> if master_writes_reg then 4 else 3
    | false, false -> 2 (* unreachable: a slave always forwards or receives *))

let describe = function
  | Single { cluster } -> Printf.sprintf "single(C%d)" cluster
  | Multi { master; slaves; master_writes_reg } ->
    let slave_str s =
      Printf.sprintf "C%d[%s%s]" s.s_cluster
        (String.concat "," (List.map Mcsim_isa.Reg.to_string s.s_forward_srcs))
        (if s.s_receives_result then " result" else "")
    in
    Printf.sprintf "multi(master=C%d slaves=%s%s)" master
      (String.concat " " (List.map slave_str slaves))
      (if master_writes_reg then " m-writes" else "")
