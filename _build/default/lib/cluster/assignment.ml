type placement = Local of int | Global

type t = {
  n : int;
  table : placement array;  (* indexed by Reg.flat_index *)
}

let build num_clusters f =
  if num_clusters < 1 then invalid_arg "Assignment: num_clusters < 1";
  let table =
    Array.init 64 (fun i ->
        let r = Mcsim_isa.Reg.of_flat_index i in
        if Mcsim_isa.Reg.is_zero r then Global
        else
          match f r with
          | Global -> Global
          | Local c ->
            if c < 0 || c >= num_clusters then
              invalid_arg "Assignment: Local cluster out of range"
            else Local c)
  in
  { n = num_clusters; table }

let create ~num_clusters ?(globals = [ Mcsim_isa.Reg.sp; Mcsim_isa.Reg.gp ]) () =
  build num_clusters (fun r ->
      if List.exists (Mcsim_isa.Reg.equal r) globals then Global
      else Local (Mcsim_isa.Reg.index r mod num_clusters))

let custom ~num_clusters f = build num_clusters f

let single = create ~num_clusters:1 ~globals:[] ()

let num_clusters t = t.n

let placement t r = t.table.(Mcsim_isa.Reg.flat_index r)

let clusters_of t r =
  match placement t r with
  | Local c -> [ c ]
  | Global -> List.init t.n (fun i -> i)

let readable_in t r c =
  match placement t r with Local c' -> c = c' | Global -> true

let locals_of t c =
  List.filter
    (fun r ->
      (not (Mcsim_isa.Reg.is_zero r))
      && match placement t r with Local c' -> c = c' | Global -> false)
    Mcsim_isa.Reg.all

let globals t =
  List.filter
    (fun r ->
      (not (Mcsim_isa.Reg.is_zero r))
      && match placement t r with Global -> true | Local _ -> false)
    Mcsim_isa.Reg.all
