lib/cluster/transfer_buffer.ml: Array
