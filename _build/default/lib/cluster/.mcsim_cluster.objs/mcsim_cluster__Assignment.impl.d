lib/cluster/assignment.ml: Array List Mcsim_isa
