lib/cluster/machine.ml: Array Assignment Distribution Format List Mcsim_branch Mcsim_cache Mcsim_cpu Mcsim_isa Mcsim_util Option Printf Transfer_buffer
