lib/cluster/machine.mli: Assignment Format Mcsim_branch Mcsim_cache Mcsim_isa
