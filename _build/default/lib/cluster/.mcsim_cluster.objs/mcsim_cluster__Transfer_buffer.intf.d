lib/cluster/transfer_buffer.mli:
