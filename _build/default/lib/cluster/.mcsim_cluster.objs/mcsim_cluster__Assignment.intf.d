lib/cluster/assignment.mli: Mcsim_isa
