lib/cluster/distribution.ml: Array Assignment Fun List Mcsim_isa Option Printf String
