lib/cluster/distribution.mli: Assignment Mcsim_isa
