(** Operand / result transfer buffers (paper §2.1, Figure 1).

    Each cluster owns one operand transfer buffer (slaves in the {e other}
    cluster write forwarded source operands into it) and one result
    transfer buffer (masters in the other cluster write forwarded results
    into it). Entries are identified by small integers; the paper uses
    eight of each per cluster.

    Entries are associatively searched by instruction ID in hardware; in
    the model allocation and lookup are by entry id, and occupancy is what
    matters for timing. A freed entry is reusable from the {e next} cycle
    ("this entry can be used by another instruction in the next cycle"),
    which [free ~cycle] honours. *)

type t

val create : entries:int -> t
val entries : t -> int

val available : t -> cycle:int -> int
(** Entries allocatable at [cycle]. *)

val can_alloc : t -> cycle:int -> bool

val alloc : t -> cycle:int -> int
(** @raise Invalid_argument when full at [cycle]. *)

val free : t -> cycle:int -> int -> unit
(** Entry becomes reusable at [cycle + 1]. *)

val clear : t -> unit
(** Squash support: release everything immediately. *)

val high_water : t -> int
(** Maximum simultaneous occupancy observed. *)

val allocations : t -> int
