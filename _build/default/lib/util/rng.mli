(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulator (branch outcomes, address
    streams, workload generation) draws from an explicit [t] so that runs
    are reproducible from a seed and independent streams can be split off
    without interference. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split rng] advances [rng] and returns a new generator whose stream is
    statistically independent of the remainder of [rng]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int rng n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float rng x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric rng p] counts Bernoulli([p]) failures before the first
    success; mean [(1-p)/p]. Requires [0 < p <= 1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index rng w] samples index [i] with probability proportional
    to [w.(i)]. Requires at least one positive weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
