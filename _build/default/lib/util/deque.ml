type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;
  mutable len : int;
}

let create () = { buf = Array.make 16 None; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let nbuf = Array.make (cap * 2) None in
  for i = 0 to t.len - 1 do
    nbuf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- nbuf;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  t.buf.((t.head + t.len) mod cap) <- Some x;
  t.len <- t.len + 1

let pop_front t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    x
  end

let pop_back t =
  if t.len = 0 then None
  else begin
    let cap = Array.length t.buf in
    let i = (t.head + t.len - 1) mod cap in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.len <- t.len - 1;
    x
  end

let peek_front t = if t.len = 0 then None else t.buf.(t.head)

let peek_back t =
  if t.len = 0 then None else t.buf.((t.head + t.len - 1) mod Array.length t.buf)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Deque.get";
  match t.buf.((t.head + i) mod Array.length t.buf) with
  | Some x -> x
  | None -> assert false

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0
