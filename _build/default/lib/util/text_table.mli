(** Plain-text table rendering for experiment reports.

    Columns are sized to the widest cell; the first row is treated as a
    header and separated by a rule. Alignment is per column. *)

type align = Left | Right

val render : ?aligns:align array -> string list list -> string
(** [render rows] renders [rows] (header first). [aligns] defaults to
    left-aligned; missing entries default to [Left]. Rows may have unequal
    lengths; short rows are padded with empty cells. Returns a string
    ending in a newline. *)

val print : ?aligns:align array -> string list list -> unit
(** [render] to stdout. *)
