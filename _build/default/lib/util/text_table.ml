type align = Left | Right

let render ?(aligns = [||]) rows =
  match rows with
  | [] -> ""
  | _ ->
    let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 rows in
    let cell row j = match List.nth_opt row j with Some c -> c | None -> "" in
    let widths = Array.make ncols 0 in
    let measure row =
      List.iteri (fun j c -> if String.length c > widths.(j) then widths.(j) <- String.length c) row
    in
    List.iter measure rows;
    let align j = if j < Array.length aligns then aligns.(j) else Left in
    let pad j c =
      let w = widths.(j) in
      let fill = String.make (w - String.length c) ' ' in
      match align j with Left -> c ^ fill | Right -> fill ^ c
    in
    let buf = Buffer.create 256 in
    let emit_row row =
      for j = 0 to ncols - 1 do
        if j > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad j (cell row j))
      done;
      (* Trim trailing spaces so output is diff-friendly. *)
      let line = Buffer.contents buf in
      Buffer.clear buf;
      let len = ref (String.length line) in
      while !len > 0 && line.[!len - 1] = ' ' do decr len done;
      String.sub line 0 !len
    in
    let lines = List.map emit_row rows in
    let rule =
      String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
    in
    let body =
      match lines with
      | [] -> []
      | header :: rest -> header :: rule :: rest
    in
    String.concat "\n" body ^ "\n"

let print ?aligns rows = print_string (render ?aligns rows)
