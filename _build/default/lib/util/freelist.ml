type t = {
  free_ids : int array; (* stack of free identifiers; first [top] valid *)
  in_use : bool array;
  mutable top : int;
}

let create ~size =
  assert (size >= 0);
  { free_ids = Array.init size (fun i -> i); in_use = Array.make size false; top = size }

let size t = Array.length t.in_use
let available t = t.top
let is_free t id = not t.in_use.(id)

let alloc t =
  if t.top = 0 then None
  else begin
    t.top <- t.top - 1;
    let id = t.free_ids.(t.top) in
    t.in_use.(id) <- true;
    Some id
  end

let free t id =
  if id < 0 || id >= size t then invalid_arg "Freelist.free: out of range";
  if not t.in_use.(id) then invalid_arg "Freelist.free: double free";
  t.in_use.(id) <- false;
  t.free_ids.(t.top) <- id;
  t.top <- t.top + 1

let reset t =
  t.top <- size t;
  for i = 0 to size t - 1 do
    t.free_ids.(i) <- i;
    t.in_use.(i) <- false
  done
