type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
}

let create ~capacity =
  assert (capacity > 0);
  { buf = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = capacity t
let room t = capacity t - t.len

let push t x =
  if is_full t then failwith "Fixed_queue.push: full";
  let i = (t.head + t.len) mod capacity t in
  t.buf.(i) <- Some x;
  t.len <- t.len + 1

let push_opt t x = if is_full t then false else (push t x; true)

let peek t = if t.len = 0 then None else t.buf.(t.head)

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod capacity t;
    t.len <- t.len - 1;
    x
  end

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let cap = capacity t in
  for k = 0 to t.len - 1 do
    match t.buf.((t.head + k) mod cap) with
    | Some x -> f x
    | None -> assert false
  done

let exists p t =
  let found = ref false in
  iter (fun x -> if (not !found) && p x then found := true) t;
  !found

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let filter_in_place p t =
  let kept = List.filter p (to_list t) in
  clear t;
  List.iter (push t) kept
