(** Free list of integer resource identifiers in [\[0, size)].

    Models hardware allocators: physical register freelists and transfer
    buffer entry allocators. Allocation order is LIFO (does not matter to
    the model; identifiers are opaque tags). *)

type t

val create : size:int -> t
(** All identifiers initially free. Requires [size >= 0]. *)

val size : t -> int
val available : t -> int
val is_free : t -> int -> bool

val alloc : t -> int option
(** Take a free identifier, or [None] if exhausted. *)

val free : t -> int -> unit
(** Return an identifier. @raise Invalid_argument on double free or out of
    range. *)

val reset : t -> unit
(** Free everything. *)
