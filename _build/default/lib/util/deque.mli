(** Growable double-ended queue over a circular buffer.

    Used for the reorder view of in-flight instructions: dispatch pushes at
    the back, retire pops from the front, and a squash walks and pops from
    the back. Random access is by age index (0 = front/oldest). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
val pop_front : 'a t -> 'a option
val pop_back : 'a t -> 'a option
val peek_front : 'a t -> 'a option
val peek_back : 'a t -> 'a option

val get : 'a t -> int -> 'a
(** [get t i] is the i-th oldest element. @raise Invalid_argument when out
    of range. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest to newest. *)

val clear : 'a t -> unit
