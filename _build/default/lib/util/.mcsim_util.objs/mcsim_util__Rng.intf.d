lib/util/rng.mli:
