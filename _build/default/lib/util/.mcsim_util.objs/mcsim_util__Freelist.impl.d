lib/util/freelist.ml: Array
