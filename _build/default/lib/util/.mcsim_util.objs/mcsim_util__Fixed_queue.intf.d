lib/util/fixed_queue.mli:
