lib/util/freelist.mli:
