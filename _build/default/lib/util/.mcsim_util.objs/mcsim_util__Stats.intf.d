lib/util/stats.mli:
