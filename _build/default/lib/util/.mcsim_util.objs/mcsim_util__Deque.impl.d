lib/util/deque.ml: Array
