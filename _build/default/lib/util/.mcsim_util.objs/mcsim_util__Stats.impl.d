lib/util/stats.ml: Hashtbl List Stdlib String
