lib/util/fixed_queue.ml: Array List
