lib/util/deque.mli:
