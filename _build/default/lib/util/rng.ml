(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. Chosen because it is trivially splittable,
   passes BigCrush, and needs only one 64-bit word of state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t n =
  assert (n > 0);
  (* Mask to 62 bits so the conversion to OCaml's 63-bit int stays
     non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod n

let float t x =
  (* 53 random bits into [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  let rec loop n = if bernoulli t p then n else loop (n + 1) in
  loop 0

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let weighted_index t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  assert (total > 0.0);
  let x = float t total in
  let n = Array.length w in
  let rec loop i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else loop (i + 1) acc
  in
  loop 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
