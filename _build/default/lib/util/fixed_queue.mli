(** Bounded FIFO queue over a circular buffer.

    Used for hardware structures with a fixed number of entries (fetch
    buffers, retire windows). All operations are O(1) except [iter],
    [filter_in_place] and [to_list]. *)

type 'a t

val create : capacity:int -> 'a t
(** Requires [capacity > 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val room : 'a t -> int
(** Free entries remaining. *)

val push : 'a t -> 'a -> unit
(** Append at the tail. @raise Failure if full. *)

val push_opt : 'a t -> 'a -> bool
(** Append at the tail; [false] if full (queue unchanged). *)

val peek : 'a t -> 'a option
(** Oldest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the oldest element. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest to newest. *)

val exists : ('a -> bool) -> 'a t -> bool

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)
