lib/isa/op_class.ml: Format
