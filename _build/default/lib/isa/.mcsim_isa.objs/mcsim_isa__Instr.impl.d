lib/isa/instr.ml: Format List Op_class Option Printf Reg String
