lib/isa/instr.mli: Format Op_class Reg
