lib/isa/op_class.mli: Format
