lib/isa/issue_rules.mli: Format Op_class
