lib/isa/issue_rules.ml: Format List Op_class
