type t =
  | Int_multiply
  | Int_other
  | Fp_divide of { bits64 : bool }
  | Fp_other
  | Load
  | Store
  | Control

let latency = function
  | Int_multiply -> 6
  | Int_other -> 1
  | Fp_divide { bits64 } -> if bits64 then 16 else 8
  | Fp_other -> 3
  | Load -> 2
  | Store -> 1
  | Control -> 1

let is_pipelined = function
  | Fp_divide _ -> false
  | Int_multiply | Int_other | Fp_other | Load | Store | Control -> true

let is_fp = function
  | Fp_divide _ | Fp_other -> true
  | Int_multiply | Int_other | Load | Store | Control -> false

let is_memory = function
  | Load | Store -> true
  | Int_multiply | Int_other | Fp_divide _ | Fp_other | Control -> false

let equal a b =
  match (a, b) with
  | Fp_divide { bits64 = x }, Fp_divide { bits64 = y } -> x = y
  | Int_multiply, Int_multiply
  | Int_other, Int_other
  | Fp_other, Fp_other
  | Load, Load
  | Store, Store
  | Control, Control -> true
  | ( (Int_multiply | Int_other | Fp_divide _ | Fp_other | Load | Store | Control),
      (Int_multiply | Int_other | Fp_divide _ | Fp_other | Load | Store | Control) ) -> false

let to_string = function
  | Int_multiply -> "int_multiply"
  | Int_other -> "int_other"
  | Fp_divide { bits64 } -> if bits64 then "fp_divide64" else "fp_divide32"
  | Fp_other -> "fp_other"
  | Load -> "load"
  | Store -> "store"
  | Control -> "control"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all =
  [ Int_multiply; Int_other; Fp_divide { bits64 = false }; Fp_divide { bits64 = true };
    Fp_other; Load; Store; Control ]
