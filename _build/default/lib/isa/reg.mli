(** Architectural registers of the Alpha-like target ISA.

    There are 32 integer registers [r0..r31] and 32 floating-point
    registers [f0..f31]. As on the real Alpha, [r31] and [f31] are
    hardwired to zero: reads carry no dependence and writes are discarded.
    By convention (and as in the paper's evaluation) [r30] is the stack
    pointer and [r29] the global pointer — the two live ranges the paper
    designates as global-register candidates. *)

type t = Int_reg of int | Fp_reg of int

val num_int : int
(** 32. *)

val num_fp : int
(** 32. *)

val int_reg : int -> t
(** @raise Invalid_argument outside [\[0,31\]]. *)

val fp_reg : int -> t
(** @raise Invalid_argument outside [\[0,31\]]. *)

val sp : t
(** Stack pointer, [r30]. *)

val gp : t
(** Global pointer, [r29]. *)

val zero_int : t
(** [r31]. *)

val zero_fp : t
(** [f31]. *)

val is_zero : t -> bool
(** True for the hardwired-zero registers. *)

val is_int : t -> bool
val is_fp : t -> bool

val index : t -> int
(** Register number within its bank, [0..31]. *)

val flat_index : t -> int
(** Unique index in [\[0, 64)]: integer bank first, then fp bank. *)

val of_flat_index : int -> t

val parity : t -> int
(** [index t mod 2] — the paper's even/odd register-to-cluster mapping. *)

val all : t list
(** All 64 registers, integer bank first. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
(** ["r7"], ["f12"]. *)

val pp : Format.formatter -> t -> unit
