(** Machine instructions.

    A static instruction names architectural registers ({!Reg.t}) and an
    operation class ({!Op_class.t}). A {!dynamic} instruction is one
    occurrence of a static instruction in the committed execution trace,
    carrying the information the trace-driven simulator needs: the memory
    address touched (loads/stores) and the branch outcome (control flow).

    Hardwired-zero registers may appear in [srcs]/[dst]; the machines drop
    them during renaming (no dependence, no physical register). *)

type t = {
  op : Op_class.t;
  srcs : Reg.t list;  (** source registers, in operand order; length <= 2 *)
  dst : Reg.t option;
}

val make : op:Op_class.t -> srcs:Reg.t list -> dst:Reg.t option -> t
(** Validates shape: at most two sources; [Store] and [Control] have no
    destination; [Load] has a destination; fp classes name at least one fp
    register operand position sensibly is NOT enforced (the ISA allows
    int<->fp moves).
    @raise Invalid_argument on shape violations. *)

val regs : t -> Reg.t list
(** All registers named (sources then destination), including zeros. *)

val named_regs : t -> Reg.t list
(** [regs] without the hardwired-zero registers — the registers that
    matter for cluster distribution. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Branch outcome attached to a dynamic control-flow instruction. *)
type branch_info = {
  conditional : bool;  (** only conditional branches consult the predictor *)
  taken : bool;
  target : int;  (** static id of the target instruction *)
}

type dynamic = {
  seq : int;  (** position in the committed trace, from 0 *)
  pc : int;  (** static instruction address (word-granular) *)
  instr : t;
  mem_addr : int option;  (** byte address, present iff [op] is memory *)
  branch : branch_info option;  (** present iff [op] is [Control] *)
}

val dynamic :
  seq:int ->
  pc:int ->
  ?mem_addr:int ->
  ?branch:branch_info ->
  t ->
  dynamic
(** @raise Invalid_argument if memory/branch payload does not match the
    instruction class. *)

val pp_dynamic : Format.formatter -> dynamic -> unit
