type t = {
  op : Op_class.t;
  srcs : Reg.t list;
  dst : Reg.t option;
}

let make ~op ~srcs ~dst =
  if List.length srcs > 2 then invalid_arg "Instr.make: more than two sources";
  (match (op, dst) with
  | (Op_class.Store | Op_class.Control), Some _ ->
    invalid_arg "Instr.make: store/control with destination"
  | Op_class.Load, None -> invalid_arg "Instr.make: load without destination"
  | (Op_class.Store | Op_class.Control), None
  | Op_class.Load, Some _
  | (Op_class.Int_multiply | Op_class.Int_other | Op_class.Fp_divide _ | Op_class.Fp_other), _
    -> ());
  { op; srcs; dst }

let regs t = t.srcs @ Option.to_list t.dst

let named_regs t = List.filter (fun r -> not (Reg.is_zero r)) (regs t)

let to_string t =
  let dst = match t.dst with Some d -> Reg.to_string d ^ " <- " | None -> "" in
  let srcs = String.concat ", " (List.map Reg.to_string t.srcs) in
  Printf.sprintf "%s%s %s" dst (Op_class.to_string t.op) srcs

let pp fmt t = Format.pp_print_string fmt (to_string t)

type branch_info = {
  conditional : bool;
  taken : bool;
  target : int;
}

type dynamic = {
  seq : int;
  pc : int;
  instr : t;
  mem_addr : int option;
  branch : branch_info option;
}

let dynamic ~seq ~pc ?mem_addr ?branch instr =
  (match (Op_class.is_memory instr.op, mem_addr) with
  | true, None -> invalid_arg "Instr.dynamic: memory op without address"
  | false, Some _ -> invalid_arg "Instr.dynamic: address on non-memory op"
  | true, Some _ | false, None -> ());
  (match (instr.op, branch) with
  | Op_class.Control, None -> invalid_arg "Instr.dynamic: control op without branch info"
  | ( ( Op_class.Int_multiply | Op_class.Int_other | Op_class.Fp_divide _ | Op_class.Fp_other
      | Op_class.Load | Op_class.Store ),
      Some _ ) -> invalid_arg "Instr.dynamic: branch info on non-control op"
  | Op_class.Control, Some _
  | ( ( Op_class.Int_multiply | Op_class.Int_other | Op_class.Fp_divide _ | Op_class.Fp_other
      | Op_class.Load | Op_class.Store ),
      None ) -> ());
  { seq; pc; instr; mem_addr; branch }

let pp_dynamic fmt d =
  Format.fprintf fmt "#%d pc=%d %s" d.seq d.pc (to_string d.instr);
  (match d.mem_addr with
  | Some a -> Format.fprintf fmt " @0x%x" a
  | None -> ());
  match d.branch with
  | Some b ->
    Format.fprintf fmt " %s->%d"
      (if not b.conditional then "jmp" else if b.taken then "taken" else "not-taken")
      b.target
  | None -> ()
