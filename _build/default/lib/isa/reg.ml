type t = Int_reg of int | Fp_reg of int

let num_int = 32
let num_fp = 32

let check_range bank n =
  if n < 0 || n > 31 then invalid_arg (Printf.sprintf "Reg.%s_reg: %d" bank n)

let int_reg n =
  check_range "int" n;
  Int_reg n

let fp_reg n =
  check_range "fp" n;
  Fp_reg n

let sp = Int_reg 30
let gp = Int_reg 29
let zero_int = Int_reg 31
let zero_fp = Fp_reg 31

let is_zero = function Int_reg 31 | Fp_reg 31 -> true | Int_reg _ | Fp_reg _ -> false
let is_int = function Int_reg _ -> true | Fp_reg _ -> false
let is_fp = function Fp_reg _ -> true | Int_reg _ -> false
let index = function Int_reg n | Fp_reg n -> n

let flat_index = function Int_reg n -> n | Fp_reg n -> num_int + n

let of_flat_index i =
  if i < 0 || i >= num_int + num_fp then invalid_arg "Reg.of_flat_index";
  if i < num_int then Int_reg i else Fp_reg (i - num_int)

let parity t = index t mod 2

let all =
  List.init num_int (fun i -> Int_reg i) @ List.init num_fp (fun i -> Fp_reg i)

let equal a b =
  match (a, b) with
  | Int_reg x, Int_reg y | Fp_reg x, Fp_reg y -> x = y
  | Int_reg _, Fp_reg _ | Fp_reg _, Int_reg _ -> false

let compare a b = Stdlib.compare (flat_index a) (flat_index b)

let to_string = function
  | Int_reg n -> "r" ^ string_of_int n
  | Fp_reg n -> "f" ^ string_of_int n

let pp fmt t = Format.pp_print_string fmt (to_string t)
