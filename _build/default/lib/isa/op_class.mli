(** Instruction classes and functional-unit latencies (paper, Table 1).

    The simulator schedules by class, not by concrete opcode: the paper's
    issue rules and latencies are given per class. All units are fully
    pipelined except the floating-point divider, which is unpipelined with
    an 8-cycle (32-bit) or 16-cycle (64-bit) latency. Loads have a single
    load-delay slot, so the load-to-use latency on a cache hit is 2
    cycles. *)

type t =
  | Int_multiply
  | Int_other
  | Fp_divide of { bits64 : bool }
  | Fp_other
  | Load
  | Store
  | Control  (** conditional and unconditional control flow *)

val latency : t -> int
(** Execution latency in cycles, excluding cache misses: [Int_multiply] 6,
    [Int_other] 1, [Fp_divide] 8 or 16, [Fp_other] 3, [Load] 2 on a hit
    (1 plus the load-delay slot), [Store] 1, [Control] 1. *)

val is_pipelined : t -> bool
(** All classes except [Fp_divide]. *)

val is_fp : t -> bool
(** True for [Fp_divide] and [Fp_other]. *)

val is_memory : t -> bool
(** True for [Load] and [Store]. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list
(** One representative per class (both divide widths included). *)
