module Machine = Mcsim_cluster.Machine
module Distribution = Mcsim_cluster.Distribution
module Instr = Mcsim_isa.Instr
module Reg = Mcsim_isa.Reg
module Op = Mcsim_isa.Op_class

type outcome = {
  scenario : int;
  title : string;
  instr : Instr.t;
  plan : Distribution.plan;
  events : Machine.event list;
  total_cycles : int;
}

let r n = Reg.int_reg n

(* Producers define the add's sources so the scenario's dependences are
   live, as in the figures. *)
let setup_and_add scenario =
  match scenario with
  | 1 ->
    ( "all three registers local to cluster 0",
      [ r 2; r 4 ],
      Instr.make ~op:Op.Int_other ~srcs:[ r 2; r 4 ] ~dst:(Some (r 2)) )
  | 2 ->
    ( "source r1 lives in the other cluster: operand forwarded to the master (Figure 2)",
      [ r 4; r 1 ],
      Instr.make ~op:Op.Int_other ~srcs:[ r 4; r 1 ] ~dst:(Some (r 2)) )
  | 3 ->
    ( "destination lives in the other cluster: result forwarded to the slave (Figure 3)",
      [ r 0; r 2 ],
      Instr.make ~op:Op.Int_other ~srcs:[ r 0; r 2 ] ~dst:(Some (r 1)) )
  | 4 ->
    ( "global destination: master writes its copy, result forwarded to the slave's (Figure 4)",
      [ r 0; r 2 ],
      Instr.make ~op:Op.Int_other ~srcs:[ r 0; r 2 ] ~dst:(Some Reg.sp) )
  | 5 ->
    ( "operand forwarded and global destination: the slave suspends and wakes (Figure 5)",
      [ r 2; r 1 ],
      Instr.make ~op:Op.Int_other ~srcs:[ r 2; r 1 ] ~dst:(Some Reg.gp) )
  | n -> invalid_arg (Printf.sprintf "Scenario.run: %d (want 1-5)" n)

let event_cycle = function
  | Machine.Ev_fetch { cycle; _ }
  | Machine.Ev_dispatch { cycle; _ }
  | Machine.Ev_issue { cycle; _ }
  | Machine.Ev_operand_forward { cycle; _ }
  | Machine.Ev_result_forward { cycle; _ }
  | Machine.Ev_suspend { cycle; _ }
  | Machine.Ev_wakeup { cycle; _ }
  | Machine.Ev_writeback { cycle; _ }
  | Machine.Ev_retire { cycle; _ }
  | Machine.Ev_replay { cycle; _ } -> cycle

let event_seq = function
  | Machine.Ev_fetch { seq; _ }
  | Machine.Ev_dispatch { seq; _ }
  | Machine.Ev_issue { seq; _ }
  | Machine.Ev_operand_forward { seq; _ }
  | Machine.Ev_result_forward { seq; _ }
  | Machine.Ev_suspend { seq; _ }
  | Machine.Ev_wakeup { seq; _ }
  | Machine.Ev_writeback { seq; _ }
  | Machine.Ev_retire { seq; _ }
  | Machine.Ev_replay { seq; _ } -> seq

let run scenario =
  let title, producers, add = setup_and_add scenario in
  let trace =
    Array.of_list
      (List.mapi
         (fun i dst ->
           Instr.dynamic ~seq:i ~pc:i (Instr.make ~op:Op.Int_other ~srcs:[] ~dst:(Some dst)))
         producers
      @ [ Instr.dynamic ~seq:(List.length producers) ~pc:(List.length producers) add ])
  in
  let target_seq = Array.length trace - 1 in
  let events = ref [] in
  let on_event e = if event_seq e = target_seq then events := e :: !events in
  let result = Machine.run ~on_event (Machine.dual_cluster ()) trace in
  let sorted =
    List.stable_sort (fun a b -> compare (event_cycle a) (event_cycle b)) (List.rev !events)
  in
  { scenario; title; instr = add;
    plan = Distribution.plan (Machine.dual_cluster ()).Machine.assignment add;
    events = sorted;
    total_cycles = result.Machine.cycles }

let all () = List.map run [ 1; 2; 3; 4; 5 ]

let render o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Scenario %d: %s\n  instruction: %s\n  distribution: %s\n" o.scenario
       o.title (Instr.to_string o.instr) (Distribution.describe o.plan));
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "  %a\n" Machine.pp_event e))
    o.events;
  Buffer.contents buf

let issue_cycle o role =
  List.find_map
    (function
      | Machine.Ev_issue { cycle; role = r; _ } when r = role -> Some cycle
      | _ -> None)
    o.events

let writeback_cycles o =
  List.filter_map
    (function
      | Machine.Ev_writeback { cycle; role; _ } -> Some (role, cycle)
      | _ -> None)
    o.events
