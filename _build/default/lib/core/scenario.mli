(** The five execution scenarios of §2.1 (Figures 2–5), replayed through
    the real dual-cluster machine.

    Each scenario builds a three-instruction trace whose final instruction
    exercises one scenario of the paper's integer-add example
    [r2 <- r1 + r0], mapped onto the even/odd register assignment
    (cluster 0 owns the even registers, sp/gp are global), runs it on the
    dual-cluster machine, and reports the pipeline events of that
    instruction — the machine-readable version of the paper's timing
    diagrams. *)

type outcome = {
  scenario : int;  (** 1–5 *)
  title : string;
  instr : Mcsim_isa.Instr.t;  (** the instruction of interest *)
  plan : Mcsim_cluster.Distribution.plan;
  events : Mcsim_cluster.Machine.event list;
      (** events of the instruction of interest, sorted by cycle *)
  total_cycles : int;
}

val run : int -> outcome
(** @raise Invalid_argument outside 1–5. *)

val all : unit -> outcome list

val render : outcome -> string
(** Multi-line timeline, one event per line. *)

val issue_cycle : outcome -> Mcsim_cluster.Machine.role -> int option
(** Issue cycle of a given copy of the instruction of interest (test
    hook). *)

val writeback_cycles : outcome -> (Mcsim_cluster.Machine.role * int) list
