lib/core/cycle_time.mli: Table2
