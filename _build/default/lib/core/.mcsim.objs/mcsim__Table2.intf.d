lib/core/table2.mli: Mcsim_cluster Mcsim_workload
