lib/core/timeline.mli: Mcsim_cluster Mcsim_isa
