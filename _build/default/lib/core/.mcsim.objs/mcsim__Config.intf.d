lib/core/config.mli: Mcsim_cluster
