lib/core/reassign.ml: Array Buffer List Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_trace Option Printf
