lib/core/experiment.ml: Array List Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_timing Mcsim_trace
