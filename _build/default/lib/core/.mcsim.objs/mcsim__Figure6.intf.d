lib/core/figure6.mli: Mcsim_compiler Mcsim_ir
