lib/core/scenario.mli: Mcsim_cluster Mcsim_isa
