lib/core/report.ml: Ablation Cycle_time List Mcsim_cluster Printf String Table2
