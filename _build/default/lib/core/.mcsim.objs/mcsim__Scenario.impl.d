lib/core/scenario.ml: Array Buffer Format List Mcsim_cluster Mcsim_isa Printf
