lib/core/cluster_count.mli: Mcsim_workload
