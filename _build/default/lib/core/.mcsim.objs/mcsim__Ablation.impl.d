lib/core/ablation.ml: List Mcsim_cache Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_timing Mcsim_trace Mcsim_util Mcsim_workload Printf
