lib/core/timeline.ml: Buffer Bytes Hashtbl List Mcsim_cluster Printf
