lib/core/report.mli: Ablation Cycle_time Mcsim_cluster Table2
