lib/core/ablation.mli: Mcsim_workload
