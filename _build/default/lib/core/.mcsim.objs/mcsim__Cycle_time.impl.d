lib/core/cycle_time.ml: List Mcsim_timing Mcsim_util Printf Table2
