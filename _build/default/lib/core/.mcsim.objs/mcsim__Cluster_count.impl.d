lib/core/cluster_count.ml: Array List Mcsim_cluster Mcsim_compiler Mcsim_timing Mcsim_trace Mcsim_util Mcsim_workload Printf
