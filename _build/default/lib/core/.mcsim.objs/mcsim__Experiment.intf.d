lib/core/experiment.mli: Mcsim_cluster Mcsim_compiler Mcsim_ir
