lib/core/config.ml: Mcsim_cache Mcsim_cluster Mcsim_isa Mcsim_util Printf
