lib/core/reassign.mli: Mcsim_cluster Mcsim_isa
