lib/core/table2.ml: Experiment List Mcsim_cluster Mcsim_util Mcsim_workload Printf
