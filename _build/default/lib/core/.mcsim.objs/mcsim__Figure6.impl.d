lib/core/figure6.ml: Buffer List Mcsim_compiler Mcsim_ir Mcsim_isa Printf String
