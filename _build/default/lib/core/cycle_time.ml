module Palacharla = Mcsim_timing.Palacharla
module Net = Mcsim_timing.Net_performance

type net_row = {
  benchmark : string;
  cycles_pct : float;
  net_035_pct : float;
  net_018_pct : float;
}

let analyse rows =
  List.map
    (fun (r : Table2.row) ->
      { benchmark = r.Table2.benchmark;
        cycles_pct = r.Table2.local_pct;
        net_035_pct =
          Net.net_speedup_pct ~single_cycles:r.Table2.single_cycles
            ~dual_cycles:r.Table2.local_cycles ~feature:Palacharla.F0_35;
        net_018_pct =
          Net.net_speedup_pct ~single_cycles:r.Table2.single_cycles
            ~dual_cycles:r.Table2.local_cycles ~feature:Palacharla.F0_18 })
    rows

let render rows =
  let header = [ "benchmark"; "cycles %"; "net @0.35um"; "net @0.18um" ] in
  let body =
    List.map
      (fun r ->
        [ r.benchmark; Printf.sprintf "%+.1f" r.cycles_pct;
          Printf.sprintf "%+.1f" r.net_035_pct; Printf.sprintf "%+.1f" r.net_018_pct ])
      rows
  in
  Mcsim_util.Text_table.render
    ~aligns:[| Mcsim_util.Text_table.Left; Right; Right; Right |]
    (header :: body)
  ^ "net = run time advantage of the dual-cluster machine once each machine clocks at its\n\
     Palacharla cycle time (positive = dual-cluster machine is faster end to end)\n"

let break_even_example () =
  let slowdown = 25.0 in
  let needed = Net.required_clock_reduction_pct slowdown in
  Printf.sprintf
    "Worked example (§4.2): a %.0f%% cycle-count slowdown breaks even with a clock period\n\
     %.0f%% shorter (paper: 20%%).\n\
     Model clock ratios, 8-issue/128-window vs 4-issue/64-window:\n\
     \  0.35um: %.2fx (paper: ~1.18x) - partitioning buys a %.1f%% faster clock\n\
     \  0.18um: %.2fx (paper: ~1.82x) - partitioning buys a %.1f%% faster clock\n"
    slowdown needed
    (Palacharla.eight_vs_four_ratio Palacharla.F0_35)
    (100.0 -. (100.0 /. Palacharla.eight_vs_four_ratio Palacharla.F0_35))
    (Palacharla.eight_vs_four_ratio Palacharla.F0_18)
    (100.0 -. (100.0 /. Palacharla.eight_vs_four_ratio Palacharla.F0_18))

let conclusion_holds rows =
  [ ( List.exists (fun r -> r.net_035_pct < 0.0) rows,
      "at 0.35um the cycle-count penalty outweighs the clock gain on at least one benchmark"
    );
    ( List.for_all (fun r -> r.net_018_pct > 0.0) rows,
      "at 0.18um the dual-cluster machine wins on every benchmark" ) ]
