module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Profile = Mcsim_ir.Profile
module Op = Mcsim_isa.Op_class
module Builder = Mcsim_ir.Program.Builder

type outcome = {
  program : Program.t;
  block_visit_order : int list;
  assignment_order : string list;
  partition : Mcsim_compiler.Partition.t;
}

(* Block ids 0..4 are the paper's blocks 1..5; block 5 is the exit. *)
let program () =
  let b = Builder.create ~name:"figure6" in
  let s = Builder.sp b in
  let lr n = Builder.fresh_lr b ~name:n Il.Bank_int in
  let a = lr "A" and bb = lr "B" and c = lr "C" and d = lr "D" in
  let e = lr "E" and g = lr "G" and h = lr "H" in
  let const dst = Il.instr ~op:Op.Int_other ~srcs:[] ~dst () in
  let add dst srcs = Il.instr ~op:Op.Int_other ~srcs ~dst () in
  let mul dst srcs = Il.instr ~op:Op.Int_multiply ~srcs ~dst () in
  let load dst srcs addr = Il.instr ~op:Op.Load ~srcs ~dst ~mem:(Mcsim_ir.Mem_stream.Fixed { addr }) () in
  let b1 = Builder.reserve_block b in
  let b2 = Builder.reserve_block b in
  let b3 = Builder.reserve_block b in
  let b4 = Builder.reserve_block b in
  let b5 = Builder.reserve_block b in
  let exit_blk = Builder.add_block b [] Il.Halt in
  (* 1: C = 0    2: E = 16 *)
  Builder.define_block b b1
    [ const c; const e ]
    (Il.Cond { src = None; model = Mcsim_ir.Branch_model.Taken_prob 0.5; taken = b2;
               not_taken = b3 });
  (* 3: G = [S] + 8    4: H = [S] + 4 *)
  Builder.define_block b b2 [ load g [ s ] 8; load h [ s ] 4 ] (Il.Jump b4);
  (* 5: G = [S] + E    6: H = [S] + 12    7: S = H + E *)
  Builder.define_block b b3
    [ load g [ s; e ] 16; load h [ s ] 12; add s [ h; e ] ]
    (Il.Fallthrough b4);
  (* 8: A = G + 10   9: B = A x A   10: G = B / H   11: C = G + C *)
  Builder.define_block b b4
    [ add a [ g ]; mul bb [ a; a ]; mul g [ bb; h ]; add c [ g; c ] ]
    (Il.Cond { src = None; model = Mcsim_ir.Branch_model.Loop { trip = 5 }; taken = b4;
               not_taken = b5 });
  (* 12: D = C + G *)
  Builder.define_block b b5
    [ add d [ c; g ] ]
    (Il.Cond { src = None; model = Mcsim_ir.Branch_model.Loop { trip = 20 }; taken = b1;
               not_taken = exit_blk });
  Builder.finish b ~entry:b1

let profile () = Profile.of_counts [| 20.0; 10.0; 10.0; 100.0; 20.0; 1.0 |]

let run () =
  let prog = program () in
  let prof = profile () in
  let order = Mcsim_compiler.Local_scheduler.block_order prog prof in
  let partition, lr_order = Mcsim_compiler.Local_scheduler.partition_with_order prog prof in
  let named =
    List.filter_map
      (fun lr ->
        let n = Program.lr_name prog lr in
        if String.length n = 1 then Some n else None)
      lr_order
  in
  { program = prog;
    (* Paper block numbering is 1-based; drop the synthetic exit block. *)
    block_visit_order =
      List.filter_map (fun id -> if id <= 4 then Some (id + 1) else None) order;
    assignment_order = named;
    partition }

let render o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Figure 6: local-scheduler walkthrough\n";
  Buffer.add_string buf
    (Printf.sprintf "block visit order:      %s   (paper: 4 1 5 3 2)\n"
       (String.concat " " (List.map string_of_int o.block_visit_order)));
  Buffer.add_string buf
    (Printf.sprintf "assignment order:       %s   (paper: A B G H C D E)\n"
       (String.concat " " o.assignment_order));
  let cluster_of name =
    let prog = o.program in
    let rec find lr =
      if lr >= Program.num_lrs prog then "?"
      else if Program.lr_name prog lr = name then
        match Mcsim_compiler.Partition.cluster_of o.partition lr with
        | Mcsim_compiler.Partition.Cluster c -> Printf.sprintf "C%d" c
        | Mcsim_compiler.Partition.Unconstrained -> "-"
      else find (lr + 1)
    in
    find 0
  in
  Buffer.add_string buf "clusters:               ";
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "%s=%s " n (cluster_of n)))
    [ "A"; "B"; "C"; "D"; "E"; "G"; "H" ];
  Buffer.add_string buf "(S is a global-register candidate)\n";
  Buffer.contents buf
