module Machine = Mcsim_cluster.Machine
module Pipeline = Mcsim_compiler.Pipeline
module Walker = Mcsim_trace.Walker

type run = {
  scheduler : string;
  dual : Machine.result;
  speedup_pct : float;
  static_single : int;
  static_dual : int;
  spills : int;
}

type comparison = {
  benchmark : string;
  trace_instrs : int;
  single : Machine.result;
  runs : run list;
}

let default_schedulers =
  [ ("none", Pipeline.Sched_none); ("local", Pipeline.default_local) ]

let run_benchmark ?(max_instrs = 120_000) ?(seed = 1)
    ?(schedulers = default_schedulers) ?single_config ?dual_config prog =
  let single_config =
    match single_config with Some c -> c | None -> Machine.single_cluster ()
  in
  let dual_config = match dual_config with Some c -> c | None -> Machine.dual_cluster () in
  let profile = Walker.profile ~seed prog in
  let native = Pipeline.compile ~profile ~scheduler:Pipeline.Sched_none prog in
  let native_trace = Walker.trace ~seed ~max_instrs native.Pipeline.mach in
  let single = Machine.run single_config native_trace in
  let run_one (name, scheduler) =
    let compiled =
      match scheduler with
      | Pipeline.Sched_none -> native
      | Pipeline.Sched_local _ | Pipeline.Sched_round_robin | Pipeline.Sched_random _ ->
        Pipeline.compile ~profile ~scheduler prog
    in
    let trace =
      match scheduler with
      | Pipeline.Sched_none -> native_trace
      | Pipeline.Sched_local _ | Pipeline.Sched_round_robin | Pipeline.Sched_random _ ->
        Walker.trace ~seed ~max_instrs compiled.Pipeline.mach
    in
    let dual = Machine.run dual_config trace in
    let static_single, static_dual =
      Pipeline.dual_distribution_count dual_config.Machine.assignment compiled.Pipeline.mach
    in
    { scheduler = name;
      dual;
      speedup_pct =
        Mcsim_timing.Net_performance.speedup_pct ~single_cycles:single.Machine.cycles
          ~dual_cycles:dual.Machine.cycles;
      static_single;
      static_dual;
      spills = List.length compiled.Pipeline.alloc.Mcsim_compiler.Regalloc.spilled_lrs }
  in
  { benchmark = prog.Mcsim_ir.Program.name;
    trace_instrs = Array.length native_trace;
    single;
    runs = List.map run_one schedulers }

let speedup_of c name =
  List.find_map (fun r -> if r.scheduler = name then Some r.speedup_pct else None) c.runs
