(** The §4.2 / §5 cycle-time argument, mechanized.

    Combines measured cycle counts with the Palacharla delay model: at
    0.35 µm the dual-cluster machine's ~18% clock advantage is outweighed
    by its cycle-count slowdowns, while at 0.18 µm the ~82% advantage
    turns the same slowdowns into large net wins. Also reproduces the
    worked example: a 25% cycle slowdown needs a 20% shorter clock to
    break even. *)

type net_row = {
  benchmark : string;
  cycles_pct : float;  (** Table-2 local-scheduler metric *)
  net_035_pct : float;  (** net speedup at 0.35 µm (clock included) *)
  net_018_pct : float;  (** net speedup at 0.18 µm *)
}

val analyse : Table2.row list -> net_row list
(** Net performance of the dual-cluster machine with local-scheduler
    binaries, per feature size. *)

val render : net_row list -> string

val break_even_example : unit -> string
(** The paper's arithmetic: 25% slowdown ⇒ 20% clock reduction; plus the
    model's 8-vs-4-issue clock ratios at both feature sizes. *)

val conclusion_holds : net_row list -> (bool * string) list
(** At 0.35 µm partitioning should not pay off on (most) benchmarks; at
    0.18 µm it should pay off on all of them. *)
