module Machine = Mcsim_cluster.Machine
module Issue_rules = Mcsim_isa.Issue_rules
module Op = Mcsim_isa.Op_class

let single_cluster = Machine.single_cluster
let dual_cluster = Machine.dual_cluster

let latency_row =
  [ "latency in cycles";
    string_of_int (Op.latency Op.Int_multiply);
    string_of_int (Op.latency Op.Int_other);
    "-";
    Printf.sprintf "%d/%d"
      (Op.latency (Op.Fp_divide { bits64 = false }))
      (Op.latency (Op.Fp_divide { bits64 = true }));
    string_of_int (Op.latency Op.Fp_other);
    Printf.sprintf "%d*" (Op.latency Op.Load);
    string_of_int (Op.latency Op.Control) ]

let rule_row name (l : Issue_rules.limits) =
  [ name;
    string_of_int l.Issue_rules.int_multiply;
    string_of_int l.Issue_rules.int_other;
    string_of_int l.Issue_rules.fp_all;
    string_of_int l.Issue_rules.fp_divide;
    string_of_int l.Issue_rules.fp_other;
    string_of_int l.Issue_rules.memory;
    string_of_int l.Issue_rules.control;
    Printf.sprintf "(total %d)" l.Issue_rules.total ]

let table1 () =
  let header =
    [ "#"; "int mul"; "int other"; "fp all"; "fp div"; "fp other"; "ld/st"; "control"; "" ]
  in
  let rows =
    [ header;
      rule_row "1 single, per cycle" Issue_rules.single_cluster;
      rule_row "2 dual, per cluster" Issue_rules.dual_per_cluster;
      latency_row ]
  in
  Mcsim_util.Text_table.render rows
  ^ "* one load-delay slot: load-to-use latency is 2 cycles on a hit.\n\
     The fp divider is unpipelined (8-cycle 32-bit, 16-cycle 64-bit divides).\n"

let describe (c : Machine.config) =
  let n = Mcsim_cluster.Assignment.num_clusters c.Machine.assignment in
  Printf.sprintf
    "%d cluster(s); %d-entry dispatch queue and %d+%d physical registers per cluster; \
     fetch %d, dispatch %d, retire %d per cycle; %d operand- and %d result-buffer entries \
     per cluster; %d KB %d-way I/D caches, %d-cycle memory; redirect penalty %d, replay \
     threshold %d, replay penalty %d."
    n c.Machine.dq_entries c.Machine.phys_per_bank c.Machine.phys_per_bank
    c.Machine.fetch_width c.Machine.dispatch_width c.Machine.retire_width
    c.Machine.operand_buffer_entries c.Machine.result_buffer_entries
    (c.Machine.icache.Mcsim_cache.Cache.size_bytes / 1024)
    c.Machine.icache.Mcsim_cache.Cache.assoc
    c.Machine.dcache.Mcsim_cache.Cache.miss_latency c.Machine.redirect_penalty
    c.Machine.replay_threshold c.Machine.replay_penalty
