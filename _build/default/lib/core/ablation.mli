(** Ablation studies for the design choices DESIGN.md calls out. Each
    sweep runs one benchmark across a one-dimensional design-space slice
    and reports dual-cluster cycles (and the Table-2 metric against the
    shared single-cluster baseline). *)

type point = {
  label : string;
  dual_cycles : int;
  speedup_pct : float;
  replays : int;
  dual_distributed : int;
}

type sweep = {
  sweep_name : string;
  benchmark : string;
  points : point list;
}

val transfer_buffers :
  ?max_instrs:int -> ?sizes:int list -> Mcsim_workload.Spec92.benchmark -> sweep
(** Operand/result transfer-buffer entries per cluster (paper: 8).
    Default sizes 2, 4, 8, 16, 32. *)

val imbalance_threshold :
  ?max_instrs:int -> ?thresholds:int list -> Mcsim_workload.Spec92.benchmark -> sweep
(** The local scheduler's compile-time balance constant. *)

val partitioners : ?max_instrs:int -> Mcsim_workload.Spec92.benchmark -> sweep
(** none / random / round-robin / local on the dual-cluster machine. *)

val global_registers :
  ?max_instrs:int -> Mcsim_workload.Spec92.benchmark -> sweep
(** Global-register designation: none / sp only / sp+gp (paper) — the
    assignment the hardware uses for the same native binary. *)

val dispatch_queue_split :
  ?max_instrs:int -> Mcsim_workload.Spec92.benchmark -> sweep
(** Single-cluster machine with dispatch queues of 32–256 entries — the
    compress effect's other half (paper §4.2 discussion). *)

val memory_latency :
  ?max_instrs:int -> ?latencies:int list -> Mcsim_workload.Spec92.benchmark -> sweep
(** Sensitivity of the dual-vs-single comparison to the memory interface's
    fetch latency (the paper fixes it at 16 cycles); each point re-runs
    both machines with the same memory. *)

val mshr_entries :
  ?max_instrs:int -> Mcsim_workload.Spec92.benchmark -> sweep
(** Conventional n-entry MSHR files vs the paper's inverted MSHR (its
    reference [12]): how much the unlimited-outstanding-miss assumption is
    worth on a miss-heavy benchmark. *)

val queue_organization :
  ?max_instrs:int -> Mcsim_workload.Spec92.benchmark -> sweep
(** The paper's single dispatch queue per cluster vs the R10000-style
    per-class split it contrasts itself with (§1), at equal total
    entries. *)

val unrolling :
  ?max_instrs:int -> ?factors:int list -> Mcsim_workload.Spec92.benchmark -> sweep
(** The §6 loop-unrolling extension: unroll the benchmark's inner loops
    (factors default 1/2/4), reschedule with the local scheduler, and run
    the dual-cluster machine. The single-cluster baseline stays the
    non-unrolled native binary. *)

val unrolling_kernel :
  ?max_instrs:int -> ?factors:int list -> unit -> sweep
(** The same sweep on a hand-written reduction kernel whose iterations
    are genuinely independent apart from one accumulator — the code shape
    the paper's unrolling proposal assumes. *)

val render : sweep -> string
