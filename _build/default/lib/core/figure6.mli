(** The worked example of the paper's Figure 6: a five-block control-flow
    graph with live ranges A–H and the stack pointer S, annotated with
    dynamic-execution estimates (20, 10, 10, 100, 20).

    The paper states that the local scheduler visits the blocks in the
    order 4, 1, 5, 3, 2 and decides the live ranges' clusters in the
    order A, B, G, H, C, D, E (S is a global-register candidate and is
    never partitioned). {!run} reproduces both orders from the real
    implementation. *)

type outcome = {
  program : Mcsim_ir.Program.t;
  block_visit_order : int list;  (** paper block numbers, 1-based *)
  assignment_order : string list;  (** live-range names, e.g. ["A"; "B"; ...] *)
  partition : Mcsim_compiler.Partition.t;
}

val program : unit -> Mcsim_ir.Program.t
(** The Figure-6 CFG, block ids 0–4 = paper blocks 1–5. *)

val profile : unit -> Mcsim_ir.Profile.t
(** The parenthesized execution estimates: 20, 10, 10, 100, 20. *)

val run : unit -> outcome

val render : outcome -> string
(** Text report of both orders and the final partition. *)
