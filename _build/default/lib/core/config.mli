(** The two machine configurations of the evaluation (§4.1) and the
    Table-1 rendering. *)

val single_cluster : unit -> Mcsim_cluster.Machine.config
(** Alias of {!Mcsim_cluster.Machine.single_cluster}. *)

val dual_cluster : unit -> Mcsim_cluster.Machine.config

val table1 : unit -> string
(** Table 1 regenerated from the live configuration data: issue rules for
    both machines and the functional-unit latencies. *)

val describe : Mcsim_cluster.Machine.config -> string
(** One-paragraph summary of a machine configuration (queues, registers,
    caches, buffers, penalties). *)
