let speedup_pct ~single_cycles ~dual_cycles =
  100.0 -. (100.0 *. float_of_int dual_cycles /. float_of_int (max 1 single_cycles))

let required_clock_reduction_pct slowdown_pct =
  if slowdown_pct <= -100.0 then invalid_arg "required_clock_reduction_pct";
  100.0 -. (100.0 /. (1.0 +. (slowdown_pct /. 100.0)))

let net_runtime_ratio ~single_cycles ~dual_cycles ~feature =
  let t_single = Palacharla.cycle_time (Palacharla.single_cluster_config feature) in
  let t_dual = Palacharla.cycle_time (Palacharla.dual_cluster_config feature) in
  float_of_int dual_cycles *. t_dual /. (float_of_int (max 1 single_cycles) *. t_single)

let net_speedup_pct ~single_cycles ~dual_cycles ~feature =
  100.0 -. (100.0 *. net_runtime_ratio ~single_cycles ~dual_cycles ~feature)
