(** Net-performance arithmetic of §4.2 and §5.

    The paper's break-even argument: run time = clock cycles × clock
    period, so a dual-cluster machine that takes [slowdown_pct] percent
    more cycles wins iff its clock period is at least
    [required_clock_reduction_pct slowdown_pct] percent shorter. The
    worked example in §4.2: a 25% cycle slowdown needs a clock 20%
    faster. *)

val speedup_pct : single_cycles:int -> dual_cycles:int -> float
(** The Table-2 metric: [100 - 100 * dual/single]; negative = slowdown. *)

val required_clock_reduction_pct : float -> float
(** [required_clock_reduction_pct slowdown_pct] — the paper's
    [100 - 100 * 1/(1 + s/100)] (from [100 - 100 * C_single/C_dual]).
    Requires [slowdown_pct > -100]. *)

val net_runtime_ratio :
  single_cycles:int -> dual_cycles:int -> feature:Palacharla.feature -> float
(** dual run time / single run time when both machines clock at their
    Palacharla cycle times: [(dual_cycles * T_4issue) / (single_cycles *
    T_8issue)]. Below 1.0 the dual-cluster machine is net faster. *)

val net_speedup_pct :
  single_cycles:int -> dual_cycles:int -> feature:Palacharla.feature -> float
(** [100 - 100 * net_runtime_ratio]; positive = dual-cluster wins. *)
