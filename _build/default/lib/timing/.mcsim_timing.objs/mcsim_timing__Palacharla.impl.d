lib/timing/palacharla.ml: List
