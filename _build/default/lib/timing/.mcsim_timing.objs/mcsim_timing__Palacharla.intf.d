lib/timing/palacharla.mli:
