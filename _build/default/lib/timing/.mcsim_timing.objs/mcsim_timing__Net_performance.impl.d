lib/timing/net_performance.ml: Palacharla
