lib/timing/net_performance.mli: Palacharla
