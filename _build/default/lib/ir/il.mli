(** The intermediate language.

    IL instructions correspond one-to-one to machine instructions but name
    {e live ranges} rather than architectural registers (paper §3.1,
    step 2). A live range is an integer identifier into the program's
    live-range table; each has a bank (integer or floating point) and an
    optional debug name.

    Terminators are kept separate from the in-block instruction list, as
    in a conventional CFG IR. A [Cond] terminator lowers to one control
    instruction; [Jump] lowers to one; [Fallthrough] and [Halt] lower to
    none. *)

type lr = int
(** Live-range identifier (index into {!Program.t}'s table). *)

type bank = Bank_int | Bank_fp

type lr_info = {
  bank : bank;
  lr_name : string;  (** for diagnostics; not necessarily unique *)
}

type instr = {
  op : Mcsim_isa.Op_class.t;
  srcs : lr list;  (** length <= 2 *)
  dst : lr option;
  mem : Mem_stream.t option;  (** present iff [op] is a memory class *)
}

val instr :
  op:Mcsim_isa.Op_class.t -> srcs:lr list -> ?dst:lr -> ?mem:Mem_stream.t -> unit -> instr
(** @raise Invalid_argument on shape violations (same rules as
    {!Mcsim_isa.Instr.make}, plus the memory-descriptor presence rule). *)

type terminator =
  | Fallthrough of int  (** static successor, no control instruction *)
  | Jump of int  (** unconditional control instruction *)
  | Cond of {
      src : lr option;  (** condition live range, if any *)
      model : Branch_model.t;
      taken : int;  (** target block when taken *)
      not_taken : int;
    }
  | Halt  (** end of (this iteration of) the program *)

val terminator_targets : terminator -> int list

val lrs_of_instr : instr -> lr list
(** Sources then destination. *)

val lrs_read : instr -> lr list
val lrs_written : instr -> lr list

val pp_instr : names:(lr -> string) -> Format.formatter -> instr -> unit
