(** Basic-block execution estimates.

    The paper's local scheduler sorts blocks by how often each block's
    first instruction is estimated to execute, derived from a profiling
    run (§3.5, footnote 1). A [t] is produced by the trace walker's
    profiling pass or supplied directly (as in the Figure-6 example). *)

type t

val of_counts : float array -> t
(** One estimate per block id. *)

val create : num_blocks:int -> t
(** All-zero, mutable via [bump]. *)

val bump : t -> int -> unit
(** Record one execution of a block (profiling pass). *)

val count : t -> int -> float
val num_blocks : t -> int
val total : t -> float
val pp : Format.formatter -> t -> unit
