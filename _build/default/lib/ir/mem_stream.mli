(** Behavioural models for the address stream of a static load or store.

    Each memory instruction in the IL carries one of these descriptors;
    during a trace walk the instruction's successive dynamic instances draw
    addresses from it. The models capture the locality classes the data
    cache distinguishes: a fixed slot (spills, scalars), unit/constant
    stride (array sweeps — mostly hits after the first touch per line),
    uniform random over a region (hash tables — misses when the region
    exceeds the cache), and a hot/cold mixture. *)

type t =
  | Fixed of { addr : int }
  | Stride of { base : int; stride : int; count : int }
      (** address [base + (i mod count) * stride] on the i-th access;
          [count >= 1] *)
  | Uniform of { base : int; size : int }
      (** 8-byte-aligned uniform over [\[base, base + size)] *)
  | Mixed of { hot_base : int; hot_size : int; cold_base : int; cold_size : int; p_hot : float }
      (** uniform over a small hot region with probability [p_hot], else
          uniform over a large cold region *)

val validate : t -> unit
(** @raise Invalid_argument on nonsensical parameters. *)

type state

val init : t -> state
val next : state -> Mcsim_util.Rng.t -> int
(** Next byte address. *)

val reset : state -> unit
val describe : t -> string
