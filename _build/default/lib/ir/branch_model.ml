type t =
  | Taken_prob of float
  | Loop of { trip : int }
  | Pattern of bool array
  | Correlated of { p_repeat : float; p_taken_init : float }

let validate = function
  | Taken_prob p ->
    if p < 0.0 || p > 1.0 then invalid_arg "Branch_model: Taken_prob out of [0,1]"
  | Loop { trip } -> if trip < 1 then invalid_arg "Branch_model: Loop trip < 1"
  | Pattern a -> if Array.length a = 0 then invalid_arg "Branch_model: empty Pattern"
  | Correlated { p_repeat; p_taken_init } ->
    if p_repeat < 0.0 || p_repeat > 1.0 || p_taken_init < 0.0 || p_taken_init > 1.0 then
      invalid_arg "Branch_model: Correlated out of [0,1]"

type state = {
  model : t;
  mutable counter : int;  (* Loop/Pattern position *)
  mutable last : bool;  (* Correlated previous outcome *)
  mutable started : bool;
}

let init model =
  validate model;
  { model; counter = 0; last = false; started = false }

let next st rng =
  match st.model with
  | Taken_prob p -> Mcsim_util.Rng.bernoulli rng p
  | Loop { trip } ->
    let taken = st.counter < trip - 1 in
    st.counter <- (st.counter + 1) mod trip;
    taken
  | Pattern a ->
    let v = a.(st.counter) in
    st.counter <- (st.counter + 1) mod Array.length a;
    v
  | Correlated { p_repeat; p_taken_init } ->
    let outcome =
      if not st.started then Mcsim_util.Rng.bernoulli rng p_taken_init
      else if Mcsim_util.Rng.bernoulli rng p_repeat then st.last
      else not st.last
    in
    st.started <- true;
    st.last <- outcome;
    outcome

let reset st =
  st.counter <- 0;
  st.last <- false;
  st.started <- false

let describe = function
  | Taken_prob p -> Printf.sprintf "bernoulli(%.2f)" p
  | Loop { trip } -> Printf.sprintf "loop(trip=%d)" trip
  | Pattern a ->
    let s = String.concat "" (List.map (fun b -> if b then "T" else "N") (Array.to_list a)) in
    Printf.sprintf "pattern(%s)" s
  | Correlated { p_repeat; _ } -> Printf.sprintf "correlated(repeat=%.2f)" p_repeat
