(** Whole IL programs: the control-flow graph and the live-range table.

    Blocks are identified by their index in [blocks]. A program has a
    distinguished stack-pointer and global-pointer live range (the paper's
    global-register candidates); both are integer-bank and written once at
    entry conceptually (the builder creates them implicitly). *)

type block = {
  id : int;
  instrs : Il.instr array;
  term : Il.terminator;
}

type t = {
  name : string;
  blocks : block array;
  entry : int;
  lrs : Il.lr_info array;
  sp : Il.lr;
  gp : Il.lr;
}

val validate : t -> unit
(** Structural checks: entry and terminator targets in range, live-range
    identifiers in range, operand banks consistent with opcode classes
    (integer ops read/write integer live ranges, fp ops fp live ranges;
    loads/stores use integer address sources and a destination/data
    operand of either bank; control sources of either bank).
    @raise Invalid_argument with a description of the first violation. *)

val num_blocks : t -> int
val num_lrs : t -> int
val num_static_instrs : t -> int
(** IL instructions plus lowered control instructions ([Jump]/[Cond]). *)

val lr_name : t -> Il.lr -> string
val lr_bank : t -> Il.lr -> Il.bank

val successors : t -> int -> int list

val preds : t -> int list array
(** [preds p].(b) are the blocks with an edge into [b]. *)

val reverse_postorder : t -> int list
(** Blocks reachable from entry, in reverse postorder. *)

val reachable : t -> bool array

(** Static code layout: word-granular program counters for every
    instruction slot, as the i-cache and branch predictor see them. *)
type layout = {
  block_pc : int array;  (** pc of the first slot of each block *)
  block_slots : int array;  (** slots in each block, terminator included *)
  term_pc : int array;  (** pc of the lowered control instruction, or -1 *)
}

val layout : t -> layout

val pp : Format.formatter -> t -> unit
(** Multi-line listing for debugging. *)

(** Imperative construction with forward references. *)
module Builder : sig
  type p = t
  type t

  val create : name:string -> t

  val sp : t -> Il.lr
  val gp : t -> Il.lr

  val fresh_lr : t -> ?name:string -> Il.bank -> Il.lr

  val reserve_block : t -> int
  (** Allocate a block id to be defined later. *)

  val define_block : t -> int -> Il.instr list -> Il.terminator -> unit
  (** @raise Invalid_argument if already defined or never reserved. *)

  val add_block : t -> Il.instr list -> Il.terminator -> int
  (** [reserve_block] + [define_block]. *)

  val finish : t -> entry:int -> p
  (** Validates (see {!validate}).
      @raise Invalid_argument if any reserved block is undefined. *)
end
