type t =
  | Fixed of { addr : int }
  | Stride of { base : int; stride : int; count : int }
  | Uniform of { base : int; size : int }
  | Mixed of { hot_base : int; hot_size : int; cold_base : int; cold_size : int; p_hot : float }

let validate = function
  | Fixed { addr } -> if addr < 0 then invalid_arg "Mem_stream: negative address"
  | Stride { base; count; _ } ->
    if base < 0 || count < 1 then invalid_arg "Mem_stream: bad Stride"
  | Uniform { base; size } ->
    if base < 0 || size < 8 then invalid_arg "Mem_stream: bad Uniform"
  | Mixed { hot_base; hot_size; cold_base; cold_size; p_hot } ->
    if hot_base < 0 || cold_base < 0 || hot_size < 8 || cold_size < 8
       || p_hot < 0.0 || p_hot > 1.0
    then invalid_arg "Mem_stream: bad Mixed"

type state = { model : t; mutable i : int }

let init model =
  validate model;
  { model; i = 0 }

let aligned_uniform rng base size =
  let slots = max 1 (size / 8) in
  base + (Mcsim_util.Rng.int rng slots * 8)

let next st rng =
  match st.model with
  | Fixed { addr } -> addr
  | Stride { base; stride; count } ->
    let a = base + (st.i mod count * stride) in
    st.i <- st.i + 1;
    a
  | Uniform { base; size } -> aligned_uniform rng base size
  | Mixed { hot_base; hot_size; cold_base; cold_size; p_hot } ->
    if Mcsim_util.Rng.bernoulli rng p_hot then aligned_uniform rng hot_base hot_size
    else aligned_uniform rng cold_base cold_size

let reset st = st.i <- 0

let describe = function
  | Fixed { addr } -> Printf.sprintf "fixed(0x%x)" addr
  | Stride { base; stride; count } -> Printf.sprintf "stride(0x%x,+%d,%d)" base stride count
  | Uniform { base; size } -> Printf.sprintf "uniform(0x%x,%d)" base size
  | Mixed { hot_size; cold_size; p_hot; _ } ->
    Printf.sprintf "mixed(hot=%d,cold=%d,p=%.2f)" hot_size cold_size p_hot
