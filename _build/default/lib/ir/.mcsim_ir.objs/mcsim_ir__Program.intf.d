lib/ir/program.mli: Format Il
