lib/ir/program.ml: Array Branch_model Format Il List Option Printf
