lib/ir/profile.mli: Format
