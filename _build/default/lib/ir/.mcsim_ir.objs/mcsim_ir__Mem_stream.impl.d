lib/ir/mem_stream.ml: Mcsim_util Printf
