lib/ir/branch_model.ml: Array List Mcsim_util Printf String
