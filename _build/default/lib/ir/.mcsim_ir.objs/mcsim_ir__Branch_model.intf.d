lib/ir/branch_model.mli: Mcsim_util
