lib/ir/il.ml: Branch_model Format List Mcsim_isa Mem_stream Option String
