lib/ir/il.mli: Branch_model Format Mcsim_isa Mem_stream
