lib/ir/profile.ml: Array Format
