lib/ir/mem_stream.mli: Mcsim_util
