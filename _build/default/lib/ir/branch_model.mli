(** Behavioural models for conditional-branch outcomes.

    The paper drives its simulator from traces of real binaries; our trace
    walker instead draws each conditional branch's outcome from one of
    these models (seeded, hence reproducible). The models span the space
    the McFarling predictor cares about: strongly biased branches (bimodal
    wins), periodic patterns (global history wins), and weakly correlated
    data-dependent branches (hard for both). *)

type t =
  | Taken_prob of float  (** independent Bernoulli; [1.0] = always taken *)
  | Loop of { trip : int }
      (** loop back-edge: taken [trip - 1] consecutive times, then
          not-taken once, repeating; [trip >= 1] *)
  | Pattern of bool array  (** periodic outcome sequence; non-empty *)
  | Correlated of { p_repeat : float; p_taken_init : float }
      (** repeats the previous outcome with probability [p_repeat] *)

val validate : t -> unit
(** @raise Invalid_argument on out-of-range parameters. *)

(** Per-branch mutable state used by the trace walker. *)
type state

val init : t -> state
val next : state -> Mcsim_util.Rng.t -> bool
(** Draw the next outcome. *)

val reset : state -> unit
(** Back to the initial state (used between profiling and measured runs —
    both runs then see the same deterministic patterns, as the paper's
    profile-then-measure flow does). *)

val describe : t -> string
