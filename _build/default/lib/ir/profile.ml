type t = { counts : float array }

let of_counts counts = { counts = Array.copy counts }
let create ~num_blocks = { counts = Array.make num_blocks 0.0 }
let bump t b = t.counts.(b) <- t.counts.(b) +. 1.0
let count t b = t.counts.(b)
let num_blocks t = Array.length t.counts
let total t = Array.fold_left ( +. ) 0.0 t.counts

let pp fmt t =
  Array.iteri (fun b c -> Format.fprintf fmt "block %d: %.0f@." b c) t.counts
