type block = {
  id : int;
  instrs : Il.instr array;
  term : Il.terminator;
}

type t = {
  name : string;
  blocks : block array;
  entry : int;
  lrs : Il.lr_info array;
  sp : Il.lr;
  gp : Il.lr;
}

let num_blocks t = Array.length t.blocks
let num_lrs t = Array.length t.lrs

let term_slots = function
  | Il.Jump _ | Il.Cond _ -> 1
  | Il.Fallthrough _ | Il.Halt -> 0

let block_slots b = Array.length b.instrs + term_slots b.term

let num_static_instrs t = Array.fold_left (fun acc b -> acc + block_slots b) 0 t.blocks

let lr_name t lr = t.lrs.(lr).Il.lr_name
let lr_bank t lr = t.lrs.(lr).Il.bank

let successors t b = Il.terminator_targets t.blocks.(b).term

let preds t =
  let p = Array.make (num_blocks t) [] in
  Array.iter
    (fun b -> List.iter (fun s -> p.(s) <- b.id :: p.(s)) (Il.terminator_targets b.term))
    t.blocks;
  Array.map List.rev p

let reachable t =
  let seen = Array.make (num_blocks t) false in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter go (successors t b)
    end
  in
  go t.entry;
  seen

let reverse_postorder t =
  let seen = Array.make (num_blocks t) false in
  let order = ref [] in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter go (successors t b);
      order := b :: !order
    end
  in
  go t.entry;
  !order

type layout = {
  block_pc : int array;
  block_slots : int array;
  term_pc : int array;
}

let layout t =
  let n = num_blocks t in
  let block_pc = Array.make n 0 in
  let slots = Array.make n 0 in
  let term_pc = Array.make n (-1) in
  let pc = ref 0 in
  for i = 0 to n - 1 do
    let b = t.blocks.(i) in
    block_pc.(i) <- !pc;
    slots.(i) <- block_slots b;
    if term_slots b.term = 1 then term_pc.(i) <- !pc + Array.length b.instrs;
    pc := !pc + slots.(i)
  done;
  { block_pc; block_slots = slots; term_pc }

let fail fmt = Printf.ksprintf invalid_arg fmt

let check_block_ref t ~ctx b =
  if b < 0 || b >= num_blocks t then fail "Program.validate: %s: bad block %d" ctx b

let check_lr t ~ctx lr =
  if lr < 0 || lr >= num_lrs t then fail "Program.validate: %s: bad live range %d" ctx lr

(* Bank discipline: integer ALU classes touch only integer live ranges; fp
   ALU classes touch only fp live ranges; loads/stores have integer address
   sources but may move either bank as data/destination; control conditions
   may be of either bank (Alpha has fp branches). *)
let check_banks t ~ctx (i : Il.instr) =
  let bank lr = lr_bank t lr in
  let require b lr what =
    if bank lr <> b then
      fail "Program.validate: %s: %s %s has wrong bank" ctx what (lr_name t lr)
  in
  match i.op with
  | Int_multiply | Int_other ->
    List.iter (fun lr -> require Il.Bank_int lr "source") i.srcs;
    Option.iter (fun lr -> require Il.Bank_int lr "destination") i.dst
  | Fp_divide _ | Fp_other ->
    List.iter (fun lr -> require Il.Bank_fp lr "source") i.srcs;
    Option.iter (fun lr -> require Il.Bank_fp lr "destination") i.dst
  | Load -> List.iter (fun lr -> require Il.Bank_int lr "address source") i.srcs
  | Store -> (
    (* First source is data (either bank); the rest are addresses. *)
    match i.srcs with
    | [] -> ()
    | _data :: addrs -> List.iter (fun lr -> require Il.Bank_int lr "address source") addrs)
  | Control -> ()

let validate t =
  if num_blocks t = 0 then fail "Program.validate: no blocks";
  check_block_ref t ~ctx:"entry" t.entry;
  check_lr t ~ctx:"sp" t.sp;
  check_lr t ~ctx:"gp" t.gp;
  if lr_bank t t.sp <> Il.Bank_int then fail "Program.validate: sp not integer bank";
  if lr_bank t t.gp <> Il.Bank_int then fail "Program.validate: gp not integer bank";
  Array.iteri
    (fun i b ->
      if b.id <> i then fail "Program.validate: block %d has id %d" i b.id;
      let ctx = Printf.sprintf "block %d" i in
      Array.iter
        (fun instr ->
          List.iter (check_lr t ~ctx) (Il.lrs_of_instr instr);
          check_banks t ~ctx instr)
        b.instrs;
      (match b.term with
      | Il.Cond { src; model; _ } ->
        Option.iter (check_lr t ~ctx) src;
        Branch_model.validate model
      | Il.Fallthrough _ | Il.Jump _ | Il.Halt -> ());
      List.iter (check_block_ref t ~ctx) (Il.terminator_targets b.term))
    t.blocks

let pp fmt t =
  let names lr = lr_name t lr in
  Format.fprintf fmt "program %s (entry=%d)@." t.name t.entry;
  Array.iter
    (fun b ->
      Format.fprintf fmt "block %d:@." b.id;
      Array.iter (fun i -> Format.fprintf fmt "  %a@." (Il.pp_instr ~names) i) b.instrs;
      (match b.term with
      | Il.Fallthrough s -> Format.fprintf fmt "  fallthrough -> %d@." s
      | Il.Jump s -> Format.fprintf fmt "  jump -> %d@." s
      | Il.Cond { src; model; taken; not_taken } ->
        Format.fprintf fmt "  branch%s %s ? -> %d : %d@."
          (match src with Some lr -> " " ^ names lr | None -> "")
          (Branch_model.describe model) taken not_taken
      | Il.Halt -> Format.fprintf fmt "  halt@."))
    t.blocks

module Builder = struct
  type p = t

  type slot = Undefined | Defined of Il.instr array * Il.terminator

  type t = {
    b_name : string;
    mutable lr_infos : Il.lr_info list;  (* reversed *)
    mutable n_lrs : int;
    mutable slots : slot list;  (* reversed *)
    mutable n_blocks : int;
    b_sp : Il.lr;
    b_gp : Il.lr;
  }

  let create ~name =
    let sp_info = { Il.bank = Il.Bank_int; lr_name = "sp" } in
    let gp_info = { Il.bank = Il.Bank_int; lr_name = "gp" } in
    { b_name = name; lr_infos = [ gp_info; sp_info ]; n_lrs = 2; slots = []; n_blocks = 0;
      b_sp = 0; b_gp = 1 }

  let sp b = b.b_sp
  let gp b = b.b_gp

  let fresh_lr b ?name bank =
    let id = b.n_lrs in
    let lr_name = match name with Some n -> n | None -> Printf.sprintf "v%d" id in
    b.lr_infos <- { Il.bank; lr_name } :: b.lr_infos;
    b.n_lrs <- id + 1;
    id

  let reserve_block b =
    let id = b.n_blocks in
    b.slots <- Undefined :: b.slots;
    b.n_blocks <- id + 1;
    id

  let define_block b id instrs term =
    if id < 0 || id >= b.n_blocks then invalid_arg "Builder.define_block: unknown id";
    let arr = Array.of_list (List.rev b.slots) in
    (match arr.(id) with
    | Defined _ -> invalid_arg "Builder.define_block: already defined"
    | Undefined -> ());
    arr.(id) <- Defined (Array.of_list instrs, term);
    b.slots <- Array.to_list arr |> List.rev

  let add_block b instrs term =
    let id = reserve_block b in
    define_block b id instrs term;
    id

  let finish b ~entry =
    let slots = Array.of_list (List.rev b.slots) in
    let blocks =
      Array.mapi
        (fun id slot ->
          match slot with
          | Undefined -> invalid_arg (Printf.sprintf "Builder.finish: block %d undefined" id)
          | Defined (instrs, term) -> { id; instrs; term })
        slots
    in
    let p =
      { name = b.b_name; blocks; entry; lrs = Array.of_list (List.rev b.lr_infos);
        sp = b.b_sp; gp = b.b_gp }
    in
    validate p;
    p
end
