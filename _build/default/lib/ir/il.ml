type lr = int

type bank = Bank_int | Bank_fp

type lr_info = {
  bank : bank;
  lr_name : string;
}

type instr = {
  op : Mcsim_isa.Op_class.t;
  srcs : lr list;
  dst : lr option;
  mem : Mem_stream.t option;
}

let instr ~op ~srcs ?dst ?mem () =
  if List.length srcs > 2 then invalid_arg "Il.instr: more than two sources";
  (match (op, dst) with
  | (Mcsim_isa.Op_class.Store | Mcsim_isa.Op_class.Control), Some _ ->
    invalid_arg "Il.instr: store/control with destination"
  | Mcsim_isa.Op_class.Load, None -> invalid_arg "Il.instr: load without destination"
  | _, (Some _ | None) -> ());
  (match (Mcsim_isa.Op_class.is_memory op, mem) with
  | true, None -> invalid_arg "Il.instr: memory op without stream"
  | false, Some _ -> invalid_arg "Il.instr: stream on non-memory op"
  | true, Some _ | false, None -> ());
  Option.iter Mem_stream.validate mem;
  { op; srcs; dst; mem }

type terminator =
  | Fallthrough of int
  | Jump of int
  | Cond of {
      src : lr option;
      model : Branch_model.t;
      taken : int;
      not_taken : int;
    }
  | Halt

let terminator_targets = function
  | Fallthrough b | Jump b -> [ b ]
  | Cond { taken; not_taken; _ } -> [ taken; not_taken ]
  | Halt -> []

let lrs_of_instr i = i.srcs @ Option.to_list i.dst
let lrs_read i = i.srcs
let lrs_written i = Option.to_list i.dst

let pp_instr ~names fmt i =
  let dst = match i.dst with Some d -> names d ^ " <- " | None -> "" in
  let srcs = String.concat ", " (List.map names i.srcs) in
  Format.fprintf fmt "%s%s %s" dst (Mcsim_isa.Op_class.to_string i.op) srcs;
  match i.mem with
  | Some m -> Format.fprintf fmt " [%s]" (Mem_stream.describe m)
  | None -> ()
