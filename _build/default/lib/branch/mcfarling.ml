type config = {
  bimodal_bits : int;
  global_bits : int;
  choice_bits : int;
  history_bits : int;
}

let default_config = { bimodal_bits = 12; global_bits = 12; choice_bits = 12; history_bits = 12 }

(* Two-bit saturating counters stored as ints 0..3; >=2 means taken (for
   direction tables) or "use global" (for the choice table). *)
type t = {
  config : config;
  bimodal : int array;
  global : int array;
  choice : int array;
  mutable history : int;
  mutable n_predictions : int;
  mutable n_mispredictions : int;
}

let create ?(config = default_config) () =
  let table bits = Array.make (1 lsl bits) 1 in
  { config;
    bimodal = table config.bimodal_bits;
    global = table config.global_bits;
    choice = table config.choice_bits;
    history = 0;
    n_predictions = 0;
    n_mispredictions = 0 }

type token = {
  t_bimodal_ix : int;
  t_global_ix : int;
  t_choice_ix : int;
  t_pred_bimodal : bool;
  t_pred_global : bool;
  t_prediction : bool;
}

let mask bits v = v land ((1 lsl bits) - 1)

let predict t ~pc =
  let c = t.config in
  let bimodal_ix = mask c.bimodal_bits pc in
  let global_ix = mask c.global_bits (pc lxor t.history) in
  let choice_ix = mask c.choice_bits pc in
  let pred_bimodal = t.bimodal.(bimodal_ix) >= 2 in
  let pred_global = t.global.(global_ix) >= 2 in
  let use_global = t.choice.(choice_ix) >= 2 in
  let prediction = if use_global then pred_global else pred_bimodal in
  ( prediction,
    { t_bimodal_ix = bimodal_ix; t_global_ix = global_ix; t_choice_ix = choice_ix;
      t_pred_bimodal = pred_bimodal; t_pred_global = pred_global; t_prediction = prediction } )

let note_outcome t ~taken =
  t.history <- mask t.config.history_bits ((t.history lsl 1) lor if taken then 1 else 0)

let bump table ix up = table.(ix) <- (if up then min 3 (table.(ix) + 1) else max 0 (table.(ix) - 1))

let train t tok ~taken =
  t.n_predictions <- t.n_predictions + 1;
  if tok.t_prediction <> taken then t.n_mispredictions <- t.n_mispredictions + 1;
  bump t.bimodal tok.t_bimodal_ix taken;
  bump t.global tok.t_global_ix taken;
  (* The selector trains only when the two component predictions differ,
     moving toward whichever component was right (McFarling's rule). *)
  if tok.t_pred_bimodal <> tok.t_pred_global then
    bump t.choice tok.t_choice_ix (tok.t_pred_global = taken)

let predictions t = t.n_predictions
let mispredictions t = t.n_mispredictions

let accuracy t =
  if t.n_predictions = 0 then 1.0
  else 1.0 -. (float_of_int t.n_mispredictions /. float_of_int t.n_predictions)

let reset_stats t =
  t.n_predictions <- 0;
  t.n_mispredictions <- 0
