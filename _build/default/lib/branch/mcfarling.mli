(** McFarling's combining branch predictor (DEC WRL TN-36, 1993), as used
    by the paper (§4.1): a bimodal predictor, a global-history (gshare)
    predictor, and a selector choosing between them per branch.

    Prediction and training are deliberately decoupled: {!predict} is made
    when the instruction is inserted into a dispatch queue and returns a
    {!token} capturing the prediction-time table state; {!train} applies
    the counter updates only when the branch executes. The paper's
    footnote 2 (and the compress anomaly in Table 2) hinge on this lag —
    with a larger dispatch queue, more predictions are made from counters
    that do not yet reflect immediately preceding branches.

    The global history register itself is updated at prediction time with
    the {e actual} outcome (trace-driven simulation resumes down the
    correct path after a misprediction, so the history is repaired
    perfectly by the redirect). *)

type config = {
  bimodal_bits : int;  (** log2 bimodal table entries *)
  global_bits : int;  (** log2 gshare table entries *)
  choice_bits : int;  (** log2 selector table entries *)
  history_bits : int;  (** global history register width *)
}

val default_config : config
(** 4K-entry tables, 12 bits of global history. *)

type t

val create : ?config:config -> unit -> t

type token
(** Prediction-time snapshot needed to train the right entries later. *)

val predict : t -> pc:int -> bool * token

val note_outcome : t -> taken:bool -> unit
(** Shift the actual outcome into the global history register. Call once
    per conditional branch, at prediction time, after {!predict}. *)

val train : t -> token -> taken:bool -> unit
(** Update the bimodal, gshare and selector counters for the branch that
    produced [token]. Call when the branch executes. *)

val predictions : t -> int
val mispredictions : t -> int
(** Counted by comparing {!train}'s [taken] with the token's prediction. *)

val accuracy : t -> float
(** 1.0 when nothing trained yet. *)

val reset_stats : t -> unit
