lib/branch/mcfarling.mli:
