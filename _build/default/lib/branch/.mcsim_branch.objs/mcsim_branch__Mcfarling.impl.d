lib/branch/mcfarling.ml: Array
