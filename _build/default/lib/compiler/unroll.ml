module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Branch_model = Mcsim_ir.Branch_model
module Mem_stream = Mcsim_ir.Mem_stream

(* Iteration-local live ranges of a self-loop body: defined in the body
   and not read before their first definition (not loop-carried). *)
let iteration_local prog (instrs : Il.instr array) cond_src =
  let n_lrs = Program.num_lrs prog in
  let defined = Array.make n_lrs false in
  let carried = Array.make n_lrs false in
  let defined_anywhere = Array.make n_lrs false in
  Array.iter
    (fun i -> List.iter (fun lr -> defined_anywhere.(lr) <- true) (Il.lrs_written i))
    instrs;
  Array.iter
    (fun i ->
      List.iter
        (fun lr -> if defined_anywhere.(lr) && not defined.(lr) then carried.(lr) <- true)
        (Il.lrs_read i);
      List.iter (fun lr -> defined.(lr) <- true) (Il.lrs_written i))
    instrs;
  (* The back-edge condition is read after the body: if it is defined in
     the body it is a normal def-before-use value (renameable); reading
     it in the terminator does not make it loop-carried. *)
  ignore cond_src;
  fun lr ->
    defined_anywhere.(lr)
    && (not carried.(lr))
    && lr <> prog.Program.sp
    && lr <> prog.Program.gp

let split_stream ~factor ~k = function
  | Mem_stream.Stride { base; stride; count } when count >= factor ->
    Mem_stream.Stride
      { base = base + (k * stride); stride = stride * factor; count = max 1 (count / factor) }
  | (Mem_stream.Stride _ | Mem_stream.Fixed _ | Mem_stream.Uniform _ | Mem_stream.Mixed _) as s
    -> s

let unroll ?(factor = 2) ?(max_body = 32) prog =
  if factor < 1 then invalid_arg "Unroll.unroll: factor < 1";
  if factor = 1 then prog
  else begin
    let new_infos = ref [] in
    let n = ref (Program.num_lrs prog) in
    let fresh lr k =
      let id = !n in
      incr n;
      new_infos :=
        { Il.bank = Program.lr_bank prog lr;
          lr_name = Printf.sprintf "%s.u%d" (Program.lr_name prog lr) k }
        :: !new_infos;
      id
    in
    let rewrite_block (b : Program.block) =
      match b.Program.term with
      | Il.Cond ({ model = Branch_model.Loop { trip }; taken; src; _ } as cond)
        when taken = b.Program.id
             && Array.length b.Program.instrs > 0
             && Array.length b.Program.instrs <= max_body
             && trip >= 2 * factor ->
        let local = iteration_local prog b.Program.instrs src in
        (* Fresh names per replica, lazily so only locals are duplicated.
           The LAST replica keeps the original names: blocks downstream of
           the loop then read the final iteration's values, preserving the
           original dataflow. *)
        let renamings =
          Array.init factor (fun k ->
              let tbl = Hashtbl.create 8 in
              fun lr ->
                if k = factor - 1 || not (local lr) then lr
                else
                  match Hashtbl.find_opt tbl lr with
                  | Some x -> x
                  | None ->
                    let x = fresh lr k in
                    Hashtbl.add tbl lr x;
                    x)
        in
        let copy k (i : Il.instr) =
          let s = renamings.(k) in
          { Il.op = i.Il.op;
            srcs = List.map s i.Il.srcs;
            dst = Option.map s i.Il.dst;
            mem = Option.map (split_stream ~factor ~k) i.Il.mem }
        in
        let body =
          List.concat_map
            (fun k -> Array.to_list (Array.map (copy k) b.Program.instrs))
            (List.init factor Fun.id)
        in
        let src' = src in
        let trip' = (trip + factor - 1) / factor in
        { b with
          Program.instrs = Array.of_list body;
          term = Il.Cond { cond with src = src'; model = Branch_model.Loop { trip = trip' } }
        }
      | Il.Cond _ | Il.Fallthrough _ | Il.Jump _ | Il.Halt -> b
    in
    let blocks = Array.map rewrite_block prog.Program.blocks in
    let prog' =
      { prog with
        Program.blocks;
        lrs = Array.append prog.Program.lrs (Array.of_list (List.rev !new_infos)) }
    in
    Program.validate prog';
    prog'
  end

let unrolled_blocks before after =
  let ids = ref [] in
  Array.iteri
    (fun i (b : Program.block) ->
      if
        Array.length after.Program.blocks.(i).Program.instrs > Array.length b.Program.instrs
      then ids := i :: !ids)
    before.Program.blocks;
  List.rev !ids
