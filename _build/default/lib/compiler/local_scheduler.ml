module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Profile = Mcsim_ir.Profile

let block_order prog profile =
  let ids = List.init (Program.num_blocks prog) (fun i -> i) in
  let size b = Array.length prog.Program.blocks.(b).Program.instrs in
  let cmp a b =
    let ca = Profile.count profile a and cb = Profile.count profile b in
    if ca <> cb then compare cb ca
    else
      let sa = size a and sb = size b in
      if sa <> sb then compare sb sa else compare a b
  in
  List.sort cmp ids

(* The operands of the "instruction" at (block, index). Index =
   [Array.length instrs] designates the block's conditional terminator. *)
let operands prog (b, k) =
  let blk = prog.Program.blocks.(b) in
  if k < Array.length blk.Program.instrs then
    let i = blk.Program.instrs.(k) in
    (Il.lrs_read i, Il.lrs_written i)
  else
    match blk.Program.term with
    | Il.Cond { src = Some lr; _ } -> ([ lr ], [])
    | Il.Cond { src = None; _ } | Il.Fallthrough _ | Il.Jump _ | Il.Halt -> ([], [])

type ctx = {
  prog : Program.t;
  profile : Profile.t;
  live : Liveness.t;
  part : Partition.t;
  n_clusters : int;
  counted : bool array array;  (* per (block, slot): contribution recorded *)
  weights : float array;  (* profile-weighted instructions bound per cluster *)
  mutable order : Il.lr list;  (* reverse assignment order *)
}

(* Clusters an instruction is pinned to under the current (partial)
   assignment: [None] when an operand is still undecided, [Some []] when
   the instruction is free to go to either cluster (neutral for balance),
   [Some [c]] single-distributed to [c], [Some [0; 1]] dual. *)
let distribution_of ctx (reads, writes) =
  let placement lr =
    if ctx.part.Partition.global_candidate.(lr) then Some `Global
    else
      match ctx.part.Partition.choice.(lr) with
      | Partition.Cluster c -> Some (`Local c)
      | Partition.Unconstrained -> None
  in
  if not (List.for_all (fun lr -> placement lr <> None) (reads @ writes)) then None
  else begin
    let dst_placement = match writes with [] -> None | lr :: _ -> placement lr in
    let readable_in c =
      List.for_all
        (fun lr ->
          match placement lr with
          | Some (`Local c') -> c = c'
          | Some `Global | None -> true)
        reads
    in
    let single c =
      readable_in c
      && match dst_placement with
         | None -> true
         | Some (`Local c') -> c = c'
         | Some `Global -> false
    in
    let singles = List.filter single (List.init ctx.n_clusters Fun.id) in
    match singles with
    | [] -> Some (List.init ctx.n_clusters Fun.id)  (* multi-distributed *)
    | [ c ] -> Some [ c ]
    | _ :: _ :: _ -> Some []  (* distributable anywhere: balance-neutral *)
  end

(* Record the balance contribution of every site of [lr] whose
   distribution has just become fully determined. *)
let update_balance ctx lr =
  let sites = Liveness.def_sites ctx.live lr @ Liveness.use_sites ctx.live lr in
  List.iter
    (fun ((b, k) as site) ->
      if not ctx.counted.(b).(k) then
        match distribution_of ctx (operands ctx.prog site) with
        | Some clusters ->
          ctx.counted.(b).(k) <- true;
          let w = 1.0 +. Profile.count ctx.profile b in
          List.iter (fun c -> ctx.weights.(c) <- ctx.weights.(c) +. w) clusters
        | None -> ())
    sites

(* Would assigning [lr] to [c] let the instruction at [site] be
   distributed to [c] alone? Unassigned operands are treated
   optimistically; a global-candidate destination forces dual. *)
let singleable_with ctx site lr c =
  let reads, writes = operands ctx.prog site in
  let ok_operand ~is_dst o =
    if o = lr then true
    else if ctx.part.Partition.global_candidate.(o) then not is_dst
    else
      match ctx.part.Partition.choice.(o) with
      | Partition.Cluster c' -> c' = c
      | Partition.Unconstrained -> true
  in
  List.for_all (fun o -> ok_operand ~is_dst:false o) reads
  && List.for_all (fun o -> ok_operand ~is_dst:true o) writes

let majority_preference ctx lr =
  let sites = Liveness.def_sites ctx.live lr @ Liveness.use_sites ctx.live lr in
  let votes = Array.make ctx.n_clusters 0.0 in
  List.iter
    (fun ((b, _) as site) ->
      let w = 1.0 +. Profile.count ctx.profile b in
      let singleables =
        List.filter (singleable_with ctx site lr) (List.init ctx.n_clusters Fun.id)
      in
      (* A site votes only when exactly one cluster keeps it single. *)
      match singleables with
      | [ c ] -> votes.(c) <- votes.(c) +. w
      | [] | _ :: _ :: _ -> ())
    sites;
  let best = ref (-1) and best_v = ref 0.0 and tie = ref false in
  Array.iteri
    (fun c v ->
      if v > !best_v then begin best := c; best_v := v; tie := false end
      else if v = !best_v && v > 0.0 then tie := true)
    votes;
  if !best >= 0 && not !tie then Some !best else None

let assign ctx lr c =
  ctx.part.Partition.choice.(lr) <- Partition.Cluster c;
  ctx.order <- lr :: ctx.order;
  update_balance ctx lr

(* Decide the cluster for [lr], first written by the instruction in block
   [b]: if the estimated run-time distribution is unbalanced by more than
   [imbalance_threshold] instructions (measured at this block's execution
   frequency), take the under-subscribed cluster; otherwise follow the
   majority preference of the live range's readers and writers. *)
let under_subscribed ctx =
  let best = ref 0 in
  Array.iteri (fun c w -> if w < ctx.weights.(!best) then best := c) ctx.weights;
  !best

let choose_cluster ctx ~imbalance_threshold b lr =
  let w = 1.0 +. Profile.count ctx.profile b in
  let lo = Array.fold_left min ctx.weights.(0) ctx.weights in
  let hi = Array.fold_left max ctx.weights.(0) ctx.weights in
  let imbalance = (hi -. lo) /. w in
  if imbalance > float_of_int imbalance_threshold then assign ctx lr (under_subscribed ctx)
  else
    match majority_preference ctx lr with
    | Some c -> assign ctx lr c
    | None -> assign ctx lr (under_subscribed ctx)

let partition_with_order ?(clusters = 2) ?(imbalance_threshold = 2) ?(window = 0) prog
    profile =
  ignore window;
  let live = Liveness.analyse prog in
  let part = Partition.none ~clusters prog in
  let counted =
    Array.map
      (fun (b : Program.block) -> Array.make (Array.length b.Program.instrs + 1) false)
      prog.Program.blocks
  in
  let ctx =
    { prog; profile; live; part; n_clusters = clusters; counted;
      weights = Array.make clusters 0.0; order = [] }
  in
  let unassigned lr =
    (not part.Partition.global_candidate.(lr))
    && part.Partition.choice.(lr) = Partition.Unconstrained
  in
  (* In-order traversal of each block (most-frequent block first). At each
     instruction: a write to an unassigned live range picks its cluster —
     except for pure constant definitions (no register sources), which
     carry no placement information; and a read of an unassigned live
     range that has no definition inside the current block (an inherited
     value) also picks its cluster. This is the traversal that yields the
     paper's Figure-6 order A, B, G, H, C, D, E. *)
  List.iter
    (fun b ->
      let blk = prog.Program.blocks.(b) in
      let defined_in_block = Hashtbl.create 16 in
      Array.iter
        (fun i -> List.iter (fun lr -> Hashtbl.replace defined_in_block lr ()) (Il.lrs_written i))
        blk.Program.instrs;
      let n = Array.length blk.Program.instrs in
      for k = 0 to n do
        let reads, writes = operands prog (b, k) in
        if reads <> [] then
          List.iter
            (fun lr -> if unassigned lr then choose_cluster ctx ~imbalance_threshold b lr)
            writes;
        List.iter
          (fun lr ->
            if unassigned lr && not (Hashtbl.mem defined_in_block lr) then
              choose_cluster ctx ~imbalance_threshold b lr)
          reads
      done)
    (block_order prog profile);
  (* Live ranges never written in any block (or only in unreachable code
     the traversal missed): round-robin them for determinism. *)
  let next = ref 0 in
  for lr = 0 to Partition.num_lrs part - 1 do
    if unassigned lr then begin
      assign ctx lr (!next mod clusters);
      incr next
    end
  done;
  (part, List.rev ctx.order)

let partition ?clusters ?imbalance_threshold ?window prog profile =
  fst (partition_with_order ?clusters ?imbalance_threshold ?window prog profile)
