module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Profile = Mcsim_ir.Profile
module Mem_stream = Mcsim_ir.Mem_stream
module Reg = Mcsim_isa.Reg

type result = {
  prog : Program.t;
  partition : Partition.t;
  reg_of : Reg.t option array;
  spilled_lrs : Il.lr list;
  cross_cluster : Il.lr list;
  rounds : int;
}

let reserved r = Reg.is_zero r || Reg.equal r Reg.sp || Reg.equal r Reg.gp

let filter_cluster ?(clusters = 2) cluster regs =
  match cluster with
  | Partition.Unconstrained -> regs
  | Partition.Cluster c -> List.filter (fun r -> Reg.index r mod clusters = c) regs

let int_colors ?clusters ~cluster () =
  List.init 32 Reg.int_reg
  |> List.filter (fun r -> not (reserved r))
  |> filter_cluster ?clusters cluster

let fp_colors ?clusters ~cluster () =
  List.init 32 Reg.fp_reg
  |> List.filter (fun r -> not (reserved r))
  |> filter_cluster ?clusters cluster

let colors_for prog ~clusters cluster lr =
  match Program.lr_bank prog lr with
  | Il.Bank_int -> int_colors ~clusters ~cluster ()
  | Il.Bank_fp -> fp_colors ~clusters ~cluster ()

(* ------------------------------------------------------------------ *)
(* One round of optimistic coloring. Returns either a complete coloring
   or the list of live ranges that must be spilled to memory.           *)
(* ------------------------------------------------------------------ *)

type round_outcome = {
  ro_reg_of : Reg.t option array;
  ro_memory_spills : Il.lr list;
  ro_cross_cluster : Il.lr list;
}

let spill_cost prog live profile lr =
  let sites = Liveness.def_sites live lr @ Liveness.use_sites live lr in
  let weight (b, _) =
    match profile with Some p -> 1.0 +. Profile.count p b | None -> 1.0
  in
  let total = List.fold_left (fun acc s -> acc +. weight s) 0.0 sites in
  ignore prog;
  total

let color_round prog partition profile =
  let live = Liveness.analyse prog in
  let n = Program.num_lrs prog in
  let colorable lr =
    not partition.Partition.global_candidate.(lr)
  in
  (* Simplify: repeatedly remove a node with degree < available colors;
     when stuck, optimistically remove the cheapest spill candidate. *)
  let removed = Array.make n false in
  let cur_degree = Array.make n 0 in
  for lr = 0 to n - 1 do
    cur_degree.(lr) <- Liveness.degree live lr
  done;
  let clusters = partition.Partition.clusters in
  let avail lr =
    List.length (colors_for prog ~clusters (Partition.cluster_of partition lr) lr)
  in
  let stack = ref [] in
  let remaining = ref (List.filter colorable (List.init n (fun i -> i))) in
  let remove lr =
    removed.(lr) <- true;
    List.iter
      (fun o -> if not removed.(o) then cur_degree.(o) <- cur_degree.(o) - 1)
      (Liveness.neighbours live lr);
    stack := lr :: !stack;
    remaining := List.filter (fun o -> o <> lr) !remaining
  in
  while !remaining <> [] do
    match List.find_opt (fun lr -> cur_degree.(lr) < avail lr) !remaining with
    | Some lr -> remove lr
    | None ->
      (* Optimistic spill candidate: minimal cost/degree ratio. *)
      let best =
        List.fold_left
          (fun acc lr ->
            let ratio =
              spill_cost prog live profile lr /. float_of_int (max 1 cur_degree.(lr))
            in
            match acc with
            | Some (_, r) when r <= ratio -> acc
            | Some _ | None -> Some (lr, ratio))
          None !remaining
      in
      (match best with Some (lr, _) -> remove lr | None -> assert false)
  done;
  (* Select. *)
  let reg_of = Array.make n None in
  reg_of.(prog.Program.sp) <- Some Reg.sp;
  reg_of.(prog.Program.gp) <- Some Reg.gp;
  let memory_spills = ref [] in
  let cross_cluster = ref [] in
  List.iter
    (fun lr ->
      let neighbour_regs =
        List.filter_map (fun o -> reg_of.(o)) (Liveness.neighbours live lr)
      in
      let pick colors =
        List.find_opt (fun c -> not (List.exists (Reg.equal c) neighbour_regs)) colors
      in
      match pick (colors_for prog ~clusters (Partition.cluster_of partition lr) lr) with
      | Some c -> reg_of.(lr) <- Some c
      | None -> (
        (* Paper §3.4: spill first to a register of another cluster,
           then to memory. *)
        match Partition.cluster_of partition lr with
        | Partition.Cluster c -> (
          let others =
            List.filter (fun c' -> c' <> c) (List.init clusters Fun.id)
          in
          let found =
            List.find_map
              (fun c' ->
                match pick (colors_for prog ~clusters (Partition.Cluster c') lr) with
                | Some reg -> Some (c', reg)
                | None -> None)
              others
          in
          match found with
          | Some (c', reg) ->
            partition.Partition.choice.(lr) <- Partition.Cluster c';
            reg_of.(lr) <- Some reg;
            cross_cluster := lr :: !cross_cluster
          | None -> memory_spills := lr :: !memory_spills)
        | Partition.Unconstrained -> memory_spills := lr :: !memory_spills))
    !stack;
  { ro_reg_of = reg_of; ro_memory_spills = List.rev !memory_spills;
    ro_cross_cluster = List.rev !cross_cluster }

(* ------------------------------------------------------------------ *)
(* Spill-code rewriting                                                 *)
(* ------------------------------------------------------------------ *)

(* Rewrites [prog], replacing each access to a spilled live range by a
   fresh temporary loaded from / stored to the live range's stack slot.
   Returns the new program plus the partition extended to the temps. *)
let insert_spill_code ~spill_base ~slot_of prog partition spills =
  let is_spilled lr = List.mem lr spills in
  let new_infos = ref [] in
  let new_choices = ref [] in
  let n = ref (Program.num_lrs prog) in
  let fresh_temp lr =
    let id = !n in
    incr n;
    let bank = Program.lr_bank prog lr in
    new_infos :=
      { Il.bank; lr_name = Printf.sprintf "spill%d_of_%s" id (Program.lr_name prog lr) }
      :: !new_infos;
    (* The temp lives where the original was headed; short ranges color
       easily. Unconstrained originals yield unconstrained temps. *)
    new_choices := partition.Partition.choice.(lr) :: !new_choices;
    id
  in
  let slot_stream lr = Mem_stream.Fixed { addr = spill_base + (8 * slot_of lr) } in
  let rewrite_instr (i : Il.instr) =
    let loads = ref [] in
    let loaded = Hashtbl.create 4 in
    let src_of lr =
      if not (is_spilled lr) then lr
      else
        match Hashtbl.find_opt loaded lr with
        | Some t -> t
        | None ->
          let t = fresh_temp lr in
          Hashtbl.add loaded lr t;
          loads :=
            Il.instr ~op:Mcsim_isa.Op_class.Load ~srcs:[ prog.Program.sp ] ~dst:t
              ~mem:(slot_stream lr) ()
            :: !loads;
          t
    in
    let srcs = List.map src_of i.Il.srcs in
    let stores = ref [] in
    let dst =
      match i.Il.dst with
      | Some d when is_spilled d ->
        let t = fresh_temp d in
        stores :=
          [ Il.instr ~op:Mcsim_isa.Op_class.Store ~srcs:[ t; prog.Program.sp ]
              ~mem:(slot_stream d) () ];
        Some t
      | (Some _ | None) as d -> d
    in
    let core = { i with Il.srcs; dst } in
    (List.rev !loads, core, !stores)
  in
  let blocks =
    Array.map
      (fun (b : Program.block) ->
        let out = ref [] in
        Array.iter
          (fun i ->
            let loads, core, stores = rewrite_instr i in
            out := List.rev_append stores (core :: List.rev_append loads !out))
          b.Program.instrs;
        (* A spilled live range used by the conditional terminator needs a
           load at the end of the block. *)
        let term =
          match b.Program.term with
          | Il.Cond ({ src = Some lr; _ } as c) when is_spilled lr ->
            let t = fresh_temp lr in
            out :=
              Il.instr ~op:Mcsim_isa.Op_class.Load ~srcs:[ prog.Program.sp ] ~dst:t
                ~mem:(slot_stream lr) ()
              :: !out;
            Il.Cond { c with src = Some t }
          | (Il.Cond _ | Il.Fallthrough _ | Il.Jump _ | Il.Halt) as t -> t
        in
        { b with Program.instrs = Array.of_list (List.rev !out); term })
      prog.Program.blocks
  in
  let prog' =
    { prog with
      Program.blocks;
      lrs = Array.append prog.Program.lrs (Array.of_list (List.rev !new_infos)) }
  in
  Program.validate prog';
  let partition' =
    { Partition.clusters = partition.Partition.clusters;
      choice =
        Array.append partition.Partition.choice (Array.of_list (List.rev !new_choices));
      global_candidate =
        Array.append partition.Partition.global_candidate
          (Array.make (List.length !new_choices) false) }
  in
  (prog', partition')

(* ------------------------------------------------------------------ *)

let allocate ?(spill_base = 0x0F00_0000) ?profile prog partition =
  if Array.length partition.Partition.choice <> Program.num_lrs prog then
    invalid_arg "Regalloc.allocate: partition size mismatch";
  let partition =
    { Partition.clusters = partition.Partition.clusters;
      choice = Array.copy partition.Partition.choice;
      global_candidate = Array.copy partition.Partition.global_candidate }
  in
  let slot_table : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let next_slot = ref 0 in
  let slot_of_name name =
    match Hashtbl.find_opt slot_table name with
    | Some s -> s
    | None ->
      let s = !next_slot in
      incr next_slot;
      Hashtbl.add slot_table name s;
      s
  in
  let rec go prog partition all_spilled all_cross round =
    if round > 10 then failwith "Regalloc.allocate: did not converge";
    let outcome = color_round prog partition profile in
    let all_cross = all_cross @ outcome.ro_cross_cluster in
    match outcome.ro_memory_spills with
    | [] ->
      { prog; partition; reg_of = outcome.ro_reg_of; spilled_lrs = all_spilled;
        cross_cluster = all_cross; rounds = round }
    | spills ->
      (* Slot identity keyed by live-range name so re-spills of renumbered
         temps stay distinct. *)
      let slot_of lr = slot_of_name (Program.lr_name prog lr) in
      let prog', partition' =
        insert_spill_code ~spill_base ~slot_of prog partition spills
      in
      go prog' partition' (all_spilled @ spills) all_cross (round + 1)
  in
  go prog partition [] [] 1

(* ------------------------------------------------------------------ *)

let check result =
  let prog = result.prog in
  let live = Liveness.analyse prog in
  let fail fmt = Printf.ksprintf failwith fmt in
  let name = Program.lr_name prog in
  (* Every live range mentioned in code has a register of its bank. *)
  let check_lr lr =
    match result.reg_of.(lr) with
    | None -> fail "Regalloc.check: %s has no register but appears in code" (name lr)
    | Some r ->
      let bank_ok =
        match Program.lr_bank prog lr with
        | Il.Bank_int -> Reg.is_int r
        | Il.Bank_fp -> Reg.is_fp r
      in
      if not bank_ok then fail "Regalloc.check: %s got wrong-bank register" (name lr);
      if (not result.partition.Partition.global_candidate.(lr)) && reserved r then
        fail "Regalloc.check: %s got reserved register %s" (name lr) (Reg.to_string r);
      (match Partition.cluster_of result.partition lr with
      | Partition.Cluster c ->
        if Reg.index r mod result.partition.Partition.clusters <> c then
          fail "Regalloc.check: %s constrained to C%d got %s" (name lr) c (Reg.to_string r)
      | Partition.Unconstrained -> ())
  in
  Array.iter
    (fun (b : Program.block) ->
      Array.iter (fun i -> List.iter check_lr (Il.lrs_of_instr i)) b.Program.instrs;
      match b.Program.term with
      | Il.Cond { src = Some lr; _ } -> check_lr lr
      | Il.Cond { src = None; _ } | Il.Fallthrough _ | Il.Jump _ | Il.Halt -> ())
    prog.Program.blocks;
  (* Interfering same-bank live ranges never share a register. *)
  let n = Program.num_lrs prog in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Liveness.interferes live a b then
        match (result.reg_of.(a), result.reg_of.(b)) with
        | Some ra, Some rb when Reg.equal ra rb ->
          fail "Regalloc.check: interfering %s and %s share %s" (name a) (name b)
            (Reg.to_string ra)
        | (Some _ | None), (Some _ | None) -> ()
    done
  done
