(** The end-to-end compilation pipeline (paper §3.1):

    optimized IL in ⇒ (2) prepass list scheduling ⇒ (3/4) live-range
    partitioning ⇒ (5) cluster-constrained graph-coloring register
    allocation (with spilling) ⇒ (6) lowering to machine code.

    Step 1 (classical optimization) is assumed done by the producer of the
    IL — the synthetic workload generators emit already-optimized code,
    mirroring how the paper starts from compiled binaries. *)

type scheduler =
  | Sched_none  (** native binary: cluster-oblivious allocation *)
  | Sched_local of { imbalance_threshold : int; window : int }
      (** the paper's local scheduler *)
  | Sched_round_robin
  | Sched_random of int  (** seed *)

val default_local : scheduler
(** [Sched_local { imbalance_threshold = 2; window = 0 }]. *)

val scheduler_name : scheduler -> string

type compiled = {
  mach : Mach_prog.t;
  alloc : Regalloc.result;
  scheduler : scheduler;
}

val compile :
  ?list_schedule:bool ->
  ?clusters:int ->
  ?profile:Mcsim_ir.Profile.t ->
  scheduler:scheduler ->
  Mcsim_ir.Program.t ->
  compiled
(** [list_schedule] defaults to [true]. [clusters] (default 2) sets the
    target cluster count for the partitioners and the register
    allocator's residue-class register assignment. [profile] is required
    by [Sched_local] (@raise Invalid_argument if missing) and otherwise
    only weights spill costs. *)

val dual_distribution_count :
  Mcsim_cluster.Assignment.t -> Mach_prog.t -> int * int
(** Static (single, dual) distribution counts of a machine program under
    an assignment — a quick quality metric for partitions. *)
