type scheduler =
  | Sched_none
  | Sched_local of { imbalance_threshold : int; window : int }
  | Sched_round_robin
  | Sched_random of int

let default_local = Sched_local { imbalance_threshold = 2; window = 0 }

let scheduler_name = function
  | Sched_none -> "none"
  | Sched_local _ -> "local"
  | Sched_round_robin -> "round_robin"
  | Sched_random _ -> "random"

type compiled = {
  mach : Mach_prog.t;
  alloc : Regalloc.result;
  scheduler : scheduler;
}

let compile ?(list_schedule = true) ?(clusters = 2) ?profile ~scheduler prog =
  let prog = if list_schedule then List_scheduler.schedule prog else prog in
  let partition =
    match scheduler with
    | Sched_none -> Partition.none ~clusters prog
    | Sched_round_robin -> Partition.round_robin ~clusters prog
    | Sched_random seed -> Partition.random ~clusters ~seed prog
    | Sched_local { imbalance_threshold; window } -> (
      match profile with
      | None -> invalid_arg "Pipeline.compile: the local scheduler needs a profile"
      | Some p -> Local_scheduler.partition ~clusters ~imbalance_threshold ~window prog p)
  in
  let alloc = Regalloc.allocate ?profile prog partition in
  let mach = Lowering.lower alloc in
  { mach; alloc; scheduler }

let dual_distribution_count assignment (mach : Mach_prog.t) =
  let single = ref 0 and dual = ref 0 in
  let count (i : Mcsim_isa.Instr.t) =
    match Mcsim_cluster.Distribution.plan assignment i with
    | Mcsim_cluster.Distribution.Single _ -> incr single
    | Mcsim_cluster.Distribution.Multi _ -> incr dual
  in
  Array.iter
    (fun (b : Mach_prog.block) ->
      Array.iter (fun m -> count m.Mach_prog.mi) b.Mach_prog.instrs;
      match b.Mach_prog.term with
      | Mach_prog.Mt_jump _ ->
        count (Mcsim_isa.Instr.make ~op:Mcsim_isa.Op_class.Control ~srcs:[] ~dst:None)
      | Mach_prog.Mt_cond { src; _ } ->
        count
          (Mcsim_isa.Instr.make ~op:Mcsim_isa.Op_class.Control ~srcs:(Option.to_list src)
             ~dst:None)
      | Mach_prog.Mt_fallthrough _ | Mach_prog.Mt_halt -> ())
    mach.Mach_prog.blocks;
  (!single, !dual)
