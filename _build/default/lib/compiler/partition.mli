(** Live-range partitions: the result of step 3 and 4 of the paper's code
    generation methodology (§3.1) — which live ranges are global-register
    candidates, and to which cluster each local-register candidate is
    assigned.

    The [Unconstrained] assignment reproduces the {e native} binary: the
    register allocator picks registers with no knowledge of clusters (the
    "none" column of Table 2). *)

type cluster_choice = Unconstrained | Cluster of int

type t = {
  clusters : int;  (** number of clusters being partitioned across *)
  choice : cluster_choice array;  (** per live range *)
  global_candidate : bool array;  (** per live range *)
}

val num_lrs : t -> int

val none : ?clusters:int -> Mcsim_ir.Program.t -> t
(** Everything unconstrained; sp/gp global candidates. The native
    binary's partition. [clusters] defaults to 2. *)

val round_robin : ?clusters:int -> Mcsim_ir.Program.t -> t
(** Cycle live ranges (in id order) through the clusters, per bank;
    sp/gp global. A naive balance-only baseline. *)

val random : ?clusters:int -> seed:int -> Mcsim_ir.Program.t -> t
(** Independent uniform cluster per live range; sp/gp global. *)

val cluster_of : t -> Mcsim_ir.Il.lr -> cluster_choice

val counts : t -> int * int * int * int
(** (cluster-0, cluster-1, unconstrained, global-candidate) live ranges. *)

val pp : names:(Mcsim_ir.Il.lr -> string) -> Format.formatter -> t -> unit
