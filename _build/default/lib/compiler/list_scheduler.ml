module Il = Mcsim_ir.Il
module Op_class = Mcsim_isa.Op_class

(* Dependence edges i -> j (i must precede j) for a block. *)
let dependence_edges instrs =
  let n = Array.length instrs in
  let edges = ref [] in
  for j = 0 to n - 1 do
    let rj = Il.lrs_read instrs.(j) and wj = Il.lrs_written instrs.(j) in
    let mem_j = Op_class.is_memory instrs.(j).Il.op in
    for i = 0 to j - 1 do
      let ri = Il.lrs_read instrs.(i) and wi = Il.lrs_written instrs.(i) in
      let mem_i = Op_class.is_memory instrs.(i).Il.op in
      let overlap a b = List.exists (fun x -> List.mem x b) a in
      let raw = overlap wi rj in
      let war = overlap ri wj in
      let waw = overlap wi wj in
      let mem = mem_i && mem_j in
      if raw || war || waw || mem then edges := (i, j) :: !edges
    done
  done;
  !edges

let schedule_block instrs =
  let n = Array.length instrs in
  if n <= 1 then Array.copy instrs
  else begin
    let edges = dependence_edges instrs in
    let succs = Array.make n [] in
    let pred_count = Array.make n 0 in
    List.iter
      (fun (i, j) ->
        succs.(i) <- j :: succs.(i);
        pred_count.(j) <- pred_count.(j) + 1)
      edges;
    (* Critical-path height: latency-weighted longest path to the exit. *)
    let height = Array.make n 0 in
    for i = n - 1 downto 0 do
      let lat = Op_class.latency instrs.(i).Il.op in
      height.(i) <-
        List.fold_left (fun acc j -> max acc (lat + height.(j))) lat succs.(i)
    done;
    let remaining = Array.copy pred_count in
    let scheduled = ref [] in
    let ready = ref (List.filter (fun i -> remaining.(i) = 0) (List.init n (fun i -> i))) in
    for _ = 1 to n do
      (* Pick the ready instruction with the greatest height; break ties
         by original position (stability). *)
      let best =
        List.fold_left
          (fun acc i ->
            match acc with
            | Some b when height.(b) > height.(i) || (height.(b) = height.(i) && b < i) ->
              acc
            | Some _ | None -> Some i)
          None !ready
      in
      match best with
      | None -> assert false
      | Some i ->
        ready := List.filter (fun x -> x <> i) !ready;
        scheduled := i :: !scheduled;
        List.iter
          (fun j ->
            remaining.(j) <- remaining.(j) - 1;
            if remaining.(j) = 0 then ready := j :: !ready)
          succs.(i)
    done;
    let order = Array.of_list (List.rev !scheduled) in
    Array.map (fun i -> instrs.(i)) order
  end

let schedule prog =
  let blocks =
    Array.map
      (fun (b : Mcsim_ir.Program.block) ->
        { b with Mcsim_ir.Program.instrs = schedule_block b.Mcsim_ir.Program.instrs })
      prog.Mcsim_ir.Program.blocks
  in
  let prog' = { prog with Mcsim_ir.Program.blocks } in
  Mcsim_ir.Program.validate prog';
  prog'

let respects_dependences before after =
  let n = Array.length before in
  if Array.length after <> n then false
  else begin
    (* Identify each instruction by physical identity. *)
    let pos_after i =
      let rec find j = if j = n then None else if after.(j) == before.(i) then Some j else find (j + 1) in
      find 0
    in
    let positions = Array.init n pos_after in
    Array.for_all Option.is_some positions
    && List.for_all
         (fun (i, j) ->
           match (positions.(i), positions.(j)) with
           | Some pi, Some pj -> pi < pj
           | _ -> false)
         (dependence_edges before)
  end
