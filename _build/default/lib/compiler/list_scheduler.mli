(** Prepass code scheduling (paper §3.1 step 2, §3.3).

    A classic per-basic-block list scheduler: instructions are reordered
    by critical-path height (functional-unit latencies from Table 1) under
    the block's dependence DAG — read-after-write, write-after-read and
    write-after-write dependences on live ranges, plus conservative
    ordering edges among memory operations (no alias analysis, as suits
    the paper's binary-level methodology). The balance-estimating
    partitioner then runs over the scheduled order, which is why the paper
    mandates prepass scheduling. *)

val schedule_block : Mcsim_ir.Il.instr array -> Mcsim_ir.Il.instr array
(** Pure reordering; the result is a permutation of the input that
    respects every dependence. *)

val schedule : Mcsim_ir.Program.t -> Mcsim_ir.Program.t
(** [schedule_block] applied to every block; terminators unchanged. *)

val respects_dependences : Mcsim_ir.Il.instr array -> Mcsim_ir.Il.instr array -> bool
(** [respects_dependences before after]: [after] is a permutation of
    [before] preserving RAW/WAR/WAW and memory order (test oracle). *)
