module Instr = Mcsim_isa.Instr
module Op = Mcsim_isa.Op_class
module Reg = Mcsim_isa.Reg
module Branch_model = Mcsim_ir.Branch_model
module Mem_stream = Mcsim_ir.Mem_stream

(* ------------------------------ printing --------------------------- *)

(* Shortest decimal representation that parses back to the same float. *)
let float_str x =
  let try_fmt fmt = let s = Printf.sprintf fmt x in if float_of_string s = x then Some s else None in
  match try_fmt "%g" with
  | Some s -> s
  | None -> (
    match try_fmt "%.12g" with
    | Some s -> s
    | None -> Printf.sprintf "%.17g" x)

let print_model = function
  | Branch_model.Taken_prob p -> Printf.sprintf "bernoulli(%s)" (float_str p)
  | Branch_model.Loop { trip } -> Printf.sprintf "loop(%d)" trip
  | Branch_model.Pattern a ->
    Printf.sprintf "pattern(%s)"
      (String.concat "" (List.map (fun b -> if b then "T" else "N") (Array.to_list a)))
  | Branch_model.Correlated { p_repeat; p_taken_init } ->
    Printf.sprintf "correlated(%s,%s)" (float_str p_repeat) (float_str p_taken_init)

let print_stream = function
  | Mem_stream.Fixed { addr } -> Printf.sprintf "[fixed 0x%x]" addr
  | Mem_stream.Stride { base; stride; count } ->
    Printf.sprintf "[stride 0x%x +%d x%d]" base stride count
  | Mem_stream.Uniform { base; size } -> Printf.sprintf "[uniform 0x%x %d]" base size
  | Mem_stream.Mixed { hot_base; hot_size; cold_base; cold_size; p_hot } ->
    Printf.sprintf "[mixed 0x%x %d 0x%x %d %s]" hot_base hot_size cold_base cold_size (float_str p_hot)

let print_minstr (m : Mach_prog.minstr) =
  let i = m.Mach_prog.mi in
  let srcs = String.concat ", " (List.map Reg.to_string i.Instr.srcs) in
  let core =
    match i.Instr.dst with
    | Some d ->
      Printf.sprintf "%s <- %s%s" (Reg.to_string d) (Op.to_string i.Instr.op)
        (if srcs = "" then "" else " " ^ srcs)
    | None ->
      Printf.sprintf "%s%s" (Op.to_string i.Instr.op) (if srcs = "" then "" else " " ^ srcs)
  in
  match m.Mach_prog.mi_mem with
  | Some s -> core ^ " " ^ print_stream s
  | None -> core

let print_term = function
  | Mach_prog.Mt_fallthrough n -> Printf.sprintf "fallthrough -> %d" n
  | Mach_prog.Mt_jump n -> Printf.sprintf "jump -> %d" n
  | Mach_prog.Mt_cond { src; model; taken; not_taken } ->
    Printf.sprintf "cond%s %s -> %d, %d"
      (match src with Some r -> " " ^ Reg.to_string r | None -> "")
      (print_model model) taken not_taken
  | Mach_prog.Mt_halt -> "halt"

let print (m : Mach_prog.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program %S entry %d\n" m.Mach_prog.name m.Mach_prog.entry);
  Array.iteri
    (fun i (b : Mach_prog.block) ->
      Buffer.add_string buf (Printf.sprintf "\nblock %d:\n" i);
      Array.iter
        (fun mi -> Buffer.add_string buf ("  " ^ print_minstr mi ^ "\n"))
        b.Mach_prog.instrs;
      Buffer.add_string buf ("  " ^ print_term b.Mach_prog.term ^ "\n"))
    m.Mach_prog.blocks;
  Buffer.contents buf

(* ------------------------------ parsing ---------------------------- *)

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let parse_reg line s =
  let bad () = fail line "bad register %S" s in
  if String.length s < 2 then bad ();
  let n = try int_of_string (String.sub s 1 (String.length s - 1)) with _ -> bad () in
  match s.[0] with
  | 'r' -> (try Reg.int_reg n with Invalid_argument _ -> bad ())
  | 'f' -> (try Reg.fp_reg n with Invalid_argument _ -> bad ())
  | _ -> bad ()

let parse_op line s =
  match s with
  | "int_multiply" -> Op.Int_multiply
  | "int_other" -> Op.Int_other
  | "fp_divide32" -> Op.Fp_divide { bits64 = false }
  | "fp_divide64" -> Op.Fp_divide { bits64 = true }
  | "fp_other" -> Op.Fp_other
  | "load" -> Op.Load
  | "store" -> Op.Store
  | "control" -> Op.Control
  | _ -> fail line "unknown opcode %S" s

(* "bernoulli(0.5)" / "loop(8)" / "pattern(TN)" / "correlated(0.7,0.5)" *)
let parse_model line s =
  match String.index_opt s '(' with
  | None -> fail line "bad branch model %S" s
  | Some i ->
    if s.[String.length s - 1] <> ')' then fail line "bad branch model %S" s;
    let head = String.sub s 0 i in
    let args = String.sub s (i + 1) (String.length s - i - 2) in
    let num x = try float_of_string x with _ -> fail line "bad number %S in model" x in
    (match head with
    | "bernoulli" -> Branch_model.Taken_prob (num args)
    | "loop" -> (
      match int_of_string_opt args with
      | Some trip -> Branch_model.Loop { trip }
      | None -> fail line "bad trip %S" args)
    | "pattern" ->
      if args = "" then fail line "empty pattern";
      Branch_model.Pattern
        (Array.init (String.length args) (fun k ->
             match args.[k] with
             | 'T' -> true
             | 'N' -> false
             | c -> fail line "bad pattern char %C" c))
    | "correlated" -> (
      match String.split_on_char ',' args with
      | [ a; b ] -> Branch_model.Correlated { p_repeat = num a; p_taken_init = num b }
      | _ -> fail line "correlated wants two arguments")
    | _ -> fail line "unknown model %S" head)

(* tokens after "[": e.g. "fixed 0x10" / "stride 0x10 +8 x64" ... *)
let parse_stream line s =
  let s = String.trim s in
  if String.length s < 2 || s.[0] <> '[' || s.[String.length s - 1] <> ']' then
    fail line "bad memory stream %S" s;
  let body = String.sub s 1 (String.length s - 2) in
  let toks = String.split_on_char ' ' body |> List.filter (fun t -> t <> "") in
  let int_tok t = try int_of_string t with _ -> fail line "bad integer %S" t in
  let num t = try float_of_string t with _ -> fail line "bad number %S" t in
  match toks with
  | [ "fixed"; a ] -> Mem_stream.Fixed { addr = int_tok a }
  | [ "stride"; base; step; count ] ->
    if String.length step < 2 || step.[0] <> '+' then fail line "bad stride step %S" step;
    if String.length count < 2 || count.[0] <> 'x' then fail line "bad stride count %S" count;
    Mem_stream.Stride
      { base = int_tok base;
        stride = int_tok (String.sub step 1 (String.length step - 1));
        count = int_tok (String.sub count 1 (String.length count - 1)) }
  | [ "uniform"; base; size ] -> Mem_stream.Uniform { base = int_tok base; size = int_tok size }
  | [ "mixed"; hb; hs; cb; cs; p ] ->
    Mem_stream.Mixed
      { hot_base = int_tok hb; hot_size = int_tok hs; cold_base = int_tok cb;
        cold_size = int_tok cs; p_hot = num p }
  | _ -> fail line "unknown memory stream %S" s

let split_stream_suffix line l =
  match String.index_opt l '[' with
  | None -> (l, None)
  | Some i ->
    (String.trim (String.sub l 0 i), Some (parse_stream line (String.sub l i (String.length l - i))))

let parse_srcs line s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun t -> t <> "")
  |> List.map (parse_reg line)

let parse_instr lineno l =
  let core, mem = split_stream_suffix lineno l in
  let dst, rest =
    match Str.bounded_split (Str.regexp_string "<-") core 2 with
    | [ d; rest ] -> (Some (parse_reg lineno (String.trim d)), String.trim rest)
    | [ rest ] -> (None, String.trim rest)
    | _ -> fail lineno "bad instruction %S" l
  in
  let op, srcs =
    match String.index_opt rest ' ' with
    | None -> (parse_op lineno rest, [])
    | Some i ->
      ( parse_op lineno (String.sub rest 0 i),
        parse_srcs lineno (String.sub rest (i + 1) (String.length rest - i - 1)) )
  in
  { Mach_prog.mi = Instr.make ~op ~srcs ~dst; mi_mem = mem }

let parse_term lineno l =
  let toks = String.split_on_char ' ' l |> List.filter (fun t -> t <> "") in
  let target t = match int_of_string_opt t with Some n -> n | None -> fail lineno "bad target %S" t in
  match toks with
  | [ "halt" ] -> Mach_prog.Mt_halt
  | [ "fallthrough"; "->"; n ] -> Mach_prog.Mt_fallthrough (target n)
  | [ "jump"; "->"; n ] -> Mach_prog.Mt_jump (target n)
  | "cond" :: rest -> (
    (* cond [reg] model -> taken, not_taken *)
    let src, rest =
      match rest with
      | r :: more when String.length r > 0 && (r.[0] = 'r' || r.[0] = 'f') ->
        (Some (parse_reg lineno r), more)
      | _ -> (None, rest)
    in
    match rest with
    | [ model; "->"; t; nt ] ->
      let t = String.trim t in
      let t = if String.length t > 0 && t.[String.length t - 1] = ',' then String.sub t 0 (String.length t - 1) else t in
      Mach_prog.Mt_cond
        { src; model = parse_model lineno model; taken = target t; not_taken = target nt }
    | _ -> fail lineno "bad cond terminator %S" l)
  | _ -> fail lineno "bad terminator %S" l

let is_term_line l =
  List.exists
    (fun p -> String.length l >= String.length p && String.sub l 0 (String.length p) = p)
    [ "halt"; "fallthrough"; "jump"; "cond" ]

let parse text =
  try
    let lines = String.split_on_char '\n' text in
    let name = ref "" and entry = ref 0 in
    let blocks = ref [] in
    (* (id, rev instrs, term option) *)
    let current : (int * Mach_prog.minstr list * Mach_prog.mterm option) option ref =
      ref None
    in
    let close lineno =
      match !current with
      | None -> ()
      | Some (id, instrs, Some term) ->
        blocks := (id, { Mach_prog.instrs = Array.of_list (List.rev instrs); term }) :: !blocks;
        current := None
      | Some (id, _, None) -> fail lineno "block %d has no terminator" id
    in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let l = String.trim raw in
        if l = "" then ()
        else if String.length l >= 8 && String.sub l 0 8 = "program " then begin
          match Str.bounded_split (Str.regexp " +") l 4 with
          | [ "program"; quoted; "entry"; e ] ->
            name := Scanf.sscanf quoted "%S" Fun.id;
            entry := (match int_of_string_opt e with Some n -> n | None -> fail lineno "bad entry")
          | _ -> fail lineno "bad program header %S" l
        end
        else if String.length l >= 6 && String.sub l 0 6 = "block " then begin
          close lineno;
          match Str.bounded_split (Str.regexp "[ :]+") l 3 with
          | [ "block"; n ] | [ "block"; n; _ ] -> (
            match int_of_string_opt n with
            | Some id -> current := Some (id, [], None)
            | None -> fail lineno "bad block id %S" n)
          | _ -> fail lineno "bad block header %S" l
        end
        else begin
          match !current with
          | None -> fail lineno "instruction outside a block: %S" l
          | Some (id, instrs, None) ->
            if is_term_line l then current := Some (id, instrs, Some (parse_term lineno l))
            else current := Some (id, parse_instr lineno l :: instrs, None)
          | Some (id, _, Some _) -> fail lineno "content after the terminator of block %d" id
        end)
      lines;
    close (List.length lines);
    let listed = List.rev !blocks in
    let n = List.length listed in
    let arr = Array.make n { Mach_prog.instrs = [||]; term = Mach_prog.Mt_halt } in
    List.iteri
      (fun expect (id, b) ->
        if id <> expect then fail 0 "blocks must be consecutive from 0 (got %d)" id;
        arr.(id) <- b)
      listed;
    Ok (Mach_prog.make ~name:!name ~entry:!entry arr)
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg
  | Scanf.Scan_failure msg -> Error msg

(* ------------------------------ equality --------------------------- *)

let equal_minstr (a : Mach_prog.minstr) (b : Mach_prog.minstr) =
  a.Mach_prog.mi = b.Mach_prog.mi && a.Mach_prog.mi_mem = b.Mach_prog.mi_mem

let equal (a : Mach_prog.t) (b : Mach_prog.t) =
  a.Mach_prog.name = b.Mach_prog.name
  && a.Mach_prog.entry = b.Mach_prog.entry
  && Array.length a.Mach_prog.blocks = Array.length b.Mach_prog.blocks
  && Array.for_all2
       (fun (x : Mach_prog.block) (y : Mach_prog.block) ->
         x.Mach_prog.term = y.Mach_prog.term
         && Array.length x.Mach_prog.instrs = Array.length y.Mach_prog.instrs
         && Array.for_all2 equal_minstr x.Mach_prog.instrs y.Mach_prog.instrs)
       a.Mach_prog.blocks b.Mach_prog.blocks
  && a.Mach_prog.block_pc = b.Mach_prog.block_pc
  && a.Mach_prog.term_pc = b.Mach_prog.term_pc
