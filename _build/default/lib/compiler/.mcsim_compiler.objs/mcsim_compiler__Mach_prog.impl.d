lib/compiler/mach_prog.ml: Array Format List Mcsim_ir Mcsim_isa
