lib/compiler/mach_text.mli: Mach_prog
