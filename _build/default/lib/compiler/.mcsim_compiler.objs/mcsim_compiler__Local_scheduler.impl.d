lib/compiler/local_scheduler.ml: Array Fun Hashtbl List Liveness Mcsim_ir Partition
