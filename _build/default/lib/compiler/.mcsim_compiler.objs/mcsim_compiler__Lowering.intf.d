lib/compiler/lowering.mli: Mach_prog Regalloc
