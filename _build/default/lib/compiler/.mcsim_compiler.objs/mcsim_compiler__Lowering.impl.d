lib/compiler/lowering.ml: Array List Mach_prog Mcsim_ir Mcsim_isa Option Printf Regalloc
