lib/compiler/regalloc.mli: Mcsim_ir Mcsim_isa Partition
