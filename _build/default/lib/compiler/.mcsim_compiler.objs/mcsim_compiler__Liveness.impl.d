lib/compiler/liveness.ml: Array List Mcsim_ir
