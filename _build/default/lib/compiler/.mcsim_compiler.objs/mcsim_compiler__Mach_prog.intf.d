lib/compiler/mach_prog.mli: Format Mcsim_ir Mcsim_isa
