lib/compiler/pipeline.mli: Mach_prog Mcsim_cluster Mcsim_ir Regalloc
