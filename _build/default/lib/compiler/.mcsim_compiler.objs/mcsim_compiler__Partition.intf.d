lib/compiler/partition.mli: Format Mcsim_ir
