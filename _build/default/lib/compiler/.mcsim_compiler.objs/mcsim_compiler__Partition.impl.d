lib/compiler/partition.ml: Array Format Mcsim_ir Mcsim_util Printf
