lib/compiler/pipeline.ml: Array List_scheduler Local_scheduler Lowering Mach_prog Mcsim_cluster Mcsim_isa Option Partition Regalloc
