lib/compiler/local_scheduler.mli: Mcsim_ir Partition
