lib/compiler/unroll.mli: Mcsim_ir
