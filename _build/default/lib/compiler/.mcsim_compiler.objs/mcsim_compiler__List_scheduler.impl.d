lib/compiler/list_scheduler.ml: Array List Mcsim_ir Mcsim_isa Option
