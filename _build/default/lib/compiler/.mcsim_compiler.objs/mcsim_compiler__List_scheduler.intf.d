lib/compiler/list_scheduler.mli: Mcsim_ir
