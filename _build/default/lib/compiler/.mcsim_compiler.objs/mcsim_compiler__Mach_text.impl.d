lib/compiler/mach_text.ml: Array Buffer Fun List Mach_prog Mcsim_ir Mcsim_isa Printf Scanf Str String
