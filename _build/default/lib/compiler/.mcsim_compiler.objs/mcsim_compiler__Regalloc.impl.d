lib/compiler/regalloc.ml: Array Fun Hashtbl List Liveness Mcsim_ir Mcsim_isa Partition Printf
