lib/compiler/unroll.ml: Array Fun Hashtbl List Mcsim_ir Option Printf
