lib/compiler/liveness.mli: Mcsim_ir
