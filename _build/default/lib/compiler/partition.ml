module Program = Mcsim_ir.Program

type cluster_choice = Unconstrained | Cluster of int

type t = {
  clusters : int;
  choice : cluster_choice array;
  global_candidate : bool array;
}

let num_lrs t = Array.length t.choice

let base ?(clusters = 2) prog =
  if clusters < 1 then invalid_arg "Partition: clusters < 1";
  let n = Program.num_lrs prog in
  let global_candidate = Array.make n false in
  global_candidate.(prog.Program.sp) <- true;
  global_candidate.(prog.Program.gp) <- true;
  { clusters; choice = Array.make n Unconstrained; global_candidate }

let none ?clusters prog = base ?clusters prog

let round_robin ?clusters prog =
  let t = base ?clusters prog in
  let next = [| 0; 0 |] in
  for lr = 0 to num_lrs t - 1 do
    if not t.global_candidate.(lr) then begin
      let bank_ix = match Program.lr_bank prog lr with Mcsim_ir.Il.Bank_int -> 0 | Mcsim_ir.Il.Bank_fp -> 1 in
      t.choice.(lr) <- Cluster (next.(bank_ix) mod t.clusters);
      next.(bank_ix) <- next.(bank_ix) + 1
    end
  done;
  t

let random ?clusters ~seed prog =
  let t = base ?clusters prog in
  let rng = Mcsim_util.Rng.create seed in
  for lr = 0 to num_lrs t - 1 do
    if not t.global_candidate.(lr) then
      t.choice.(lr) <- Cluster (Mcsim_util.Rng.int rng t.clusters)
  done;
  t

let cluster_of t lr = t.choice.(lr)

let counts t =
  let c0 = ref 0 and c1 = ref 0 and u = ref 0 and g = ref 0 in
  Array.iteri
    (fun lr choice ->
      if t.global_candidate.(lr) then incr g
      else
        match choice with
        | Cluster 0 -> incr c0
        | Cluster _ -> incr c1
        | Unconstrained -> incr u)
    t.choice;
  (!c0, !c1, !u, !g)

let pp ~names fmt t =
  Array.iteri
    (fun lr choice ->
      let what =
        if t.global_candidate.(lr) then "global"
        else
          match choice with
          | Unconstrained -> "unconstrained"
          | Cluster c -> Printf.sprintf "C%d" c
      in
      Format.fprintf fmt "%s: %s@." (names lr) what)
    t.choice
