type minstr = {
  mi : Mcsim_isa.Instr.t;
  mi_mem : Mcsim_ir.Mem_stream.t option;
}

type mterm =
  | Mt_fallthrough of int
  | Mt_jump of int
  | Mt_cond of {
      src : Mcsim_isa.Reg.t option;
      model : Mcsim_ir.Branch_model.t;
      taken : int;
      not_taken : int;
    }
  | Mt_halt

type block = {
  instrs : minstr array;
  term : mterm;
}

type t = {
  name : string;
  blocks : block array;
  entry : int;
  block_pc : int array;
  term_pc : int array;
}

let term_slots = function
  | Mt_jump _ | Mt_cond _ -> 1
  | Mt_fallthrough _ | Mt_halt -> 0

let term_targets = function
  | Mt_fallthrough b | Mt_jump b -> [ b ]
  | Mt_cond { taken; not_taken; _ } -> [ taken; not_taken ]
  | Mt_halt -> []

let make ~name ~entry blocks =
  let n = Array.length blocks in
  if n = 0 then invalid_arg "Mach_prog.make: no blocks";
  if entry < 0 || entry >= n then invalid_arg "Mach_prog.make: bad entry";
  Array.iter
    (fun b ->
      List.iter
        (fun t -> if t < 0 || t >= n then invalid_arg "Mach_prog.make: bad target")
        (term_targets b.term))
    blocks;
  let block_pc = Array.make n 0 in
  let term_pc = Array.make n (-1) in
  let pc = ref 0 in
  Array.iteri
    (fun i b ->
      block_pc.(i) <- !pc;
      if term_slots b.term = 1 then term_pc.(i) <- !pc + Array.length b.instrs;
      pc := !pc + Array.length b.instrs + term_slots b.term)
    blocks;
  { name; blocks; entry; block_pc; term_pc }

let num_blocks t = Array.length t.blocks

let static_instrs t =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs + term_slots b.term) 0 t.blocks

let pc_of_slot t ~block ~index = t.block_pc.(block) + index

let pp fmt t =
  Format.fprintf fmt "machine program %s (entry=%d)@." t.name t.entry;
  Array.iteri
    (fun i b ->
      Format.fprintf fmt "block %d (pc=%d):@." i t.block_pc.(i);
      Array.iter
        (fun m ->
          Format.fprintf fmt "  %s" (Mcsim_isa.Instr.to_string m.mi);
          (match m.mi_mem with
          | Some s -> Format.fprintf fmt " [%s]" (Mcsim_ir.Mem_stream.describe s)
          | None -> ());
          Format.fprintf fmt "@.")
        b.instrs;
      match b.term with
      | Mt_fallthrough s -> Format.fprintf fmt "  fallthrough -> %d@." s
      | Mt_jump s -> Format.fprintf fmt "  jump -> %d@." s
      | Mt_cond { src; model; taken; not_taken } ->
        Format.fprintf fmt "  branch%s %s ? -> %d : %d@."
          (match src with Some r -> " " ^ Mcsim_isa.Reg.to_string r | None -> "")
          (Mcsim_ir.Branch_model.describe model)
          taken not_taken
      | Mt_halt -> Format.fprintf fmt "  halt@.")
    t.blocks
