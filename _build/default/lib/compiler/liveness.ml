module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program

type t = {
  prog : Program.t;
  live_in : bool array array;  (* block -> lr -> live *)
  live_out : bool array array;
  adj : bool array;  (* n_lrs * n_lrs interference matrix *)
  n_lrs : int;
  defs : (int * int) list array;  (* lr -> (block, index) *)
  uses : (int * int) list array;
}

let block_term_uses (b : Program.block) =
  match b.Program.term with
  | Il.Cond { src = Some lr; _ } -> [ lr ]
  | Il.Cond { src = None; _ } | Il.Fallthrough _ | Il.Jump _ | Il.Halt -> []

let analyse prog =
  let n_blocks = Program.num_blocks prog in
  let n_lrs = Program.num_lrs prog in
  let live_in = Array.init n_blocks (fun _ -> Array.make n_lrs false) in
  let live_out = Array.init n_blocks (fun _ -> Array.make n_lrs false) in
  let use = Array.init n_blocks (fun _ -> Array.make n_lrs false) in
  let def = Array.init n_blocks (fun _ -> Array.make n_lrs false) in
  let defs = Array.make n_lrs [] in
  let uses = Array.make n_lrs [] in
  (* Per-block upward-exposed uses and defs, plus def/use site lists. *)
  Array.iter
    (fun (b : Program.block) ->
      let i = b.Program.id in
       Array.iteri
         (fun k (instr : Il.instr) ->
           List.iter
             (fun lr ->
               uses.(lr) <- (i, k) :: uses.(lr);
               if not def.(i).(lr) then use.(i).(lr) <- true)
             (Il.lrs_read instr);
           List.iter
             (fun lr ->
               defs.(lr) <- (i, k) :: defs.(lr);
               def.(i).(lr) <- true)
             (Il.lrs_written instr))
         b.Program.instrs;
       List.iter
         (fun lr ->
           uses.(lr) <- (i, Array.length b.Program.instrs) :: uses.(lr);
           if not def.(i).(lr) then use.(i).(lr) <- true)
         (block_term_uses b))
    prog.Program.blocks;
  (* Backward dataflow to fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n_blocks - 1 downto 0 do
      let out = live_out.(i) in
      List.iter
        (fun s ->
          let sin = live_in.(s) in
          for lr = 0 to n_lrs - 1 do
            if sin.(lr) && not out.(lr) then begin
              out.(lr) <- true;
              changed := true
            end
          done)
        (Program.successors prog i);
      for lr = 0 to n_lrs - 1 do
        let v = use.(i).(lr) || (out.(lr) && not def.(i).(lr)) in
        if v && not live_in.(i).(lr) then begin
          live_in.(i).(lr) <- true;
          changed := true
        end
      done
    done
  done;
  (* Interference: walk each block backwards. sp/gp are excluded (they get
     dedicated global registers), as are cross-bank pairs. *)
  let adj = Array.make (n_lrs * n_lrs) false in
  let excluded lr = lr = prog.Program.sp || lr = prog.Program.gp in
  let add_edge a b =
    if
      a <> b
      && (not (excluded a))
      && (not (excluded b))
      && Program.lr_bank prog a = Program.lr_bank prog b
    then begin
      adj.((a * n_lrs) + b) <- true;
      adj.((b * n_lrs) + a) <- true
    end
  in
  Array.iter
    (fun (b : Program.block) ->
      let i = b.Program.id in
      let live = Array.copy live_out.(i) in
      List.iter (fun lr -> live.(lr) <- true) (block_term_uses b);
      for k = Array.length b.Program.instrs - 1 downto 0 do
        let instr = b.Program.instrs.(k) in
        List.iter
          (fun d ->
            for o = 0 to n_lrs - 1 do
              if live.(o) then add_edge d o
            done;
            live.(d) <- false)
          (Il.lrs_written instr);
        List.iter (fun s -> live.(s) <- true) (Il.lrs_read instr)
      done)
    prog.Program.blocks;
  { prog; live_in; live_out; adj; n_lrs;
    defs = Array.map List.rev defs; uses = Array.map List.rev uses }

let set_to_list a =
  let acc = ref [] in
  Array.iteri (fun lr v -> if v then acc := lr :: !acc) a;
  List.rev !acc

let live_in t b = set_to_list t.live_in.(b)
let live_out t b = set_to_list t.live_out.(b)

let interferes t a b = t.adj.((a * t.n_lrs) + b)

let neighbours t lr =
  let acc = ref [] in
  for o = t.n_lrs - 1 downto 0 do
    if t.adj.((lr * t.n_lrs) + o) then acc := o :: !acc
  done;
  !acc

let degree t lr =
  let d = ref 0 in
  for o = 0 to t.n_lrs - 1 do
    if t.adj.((lr * t.n_lrs) + o) then incr d
  done;
  !d

let def_sites t lr = t.defs.(lr)
let use_sites t lr = t.uses.(lr)
let use_count t lr = List.length t.defs.(lr) + List.length t.uses.(lr)
