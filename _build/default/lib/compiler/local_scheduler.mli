(** The {e local scheduler} — the paper's live-range partitioning
    algorithm (§3.5).

    Basic blocks are visited in decreasing order of their profiled
    execution estimate (ties broken by static instruction count, larger
    first). Within a block the instructions are traversed bottom-up, in
    order; the first time an instruction is encountered that {e writes} a
    not-yet-assigned local-register-candidate live range, a cluster is
    chosen for that live range:

    - if the estimated run-time instruction distribution in the vicinity
      of the instruction is {e unbalanced} (the clusters' distribution
      counts differ by more than a compile-time constant), the
      under-subscribed cluster is chosen;
    - otherwise the cluster preferred by the majority of the instructions
      that read or write the live range is chosen, where an instruction
      prefers cluster [c] if assigning the live range to [c] would let it
      be distributed to [c] alone.

    Global-register candidates (sp/gp) are never partitioned. *)

val block_order : Mcsim_ir.Program.t -> Mcsim_ir.Profile.t -> int list
(** The visit order: execution estimate descending, then static size
    descending, then block id ascending. Includes unreachable blocks
    (estimate 0) last. *)

val partition :
  ?clusters:int ->
  ?imbalance_threshold:int ->
  ?window:int ->
  Mcsim_ir.Program.t ->
  Mcsim_ir.Profile.t ->
  Partition.t
(** [imbalance_threshold] (default 2) is the paper's compile-time
    constant, in dynamic instructions at the current block's execution
    frequency: the running profile-weighted distribution estimate is kept
    as live ranges are assigned, and when the clusters' counts differ by
    more than the threshold (normalized to the deciding block's execution
    count) the under-subscribed cluster wins. [clusters] (default 2)
    selects the number of clusters to partition across. [window] is
    accepted for compatibility and ignored. *)

val partition_with_order :
  ?clusters:int ->
  ?imbalance_threshold:int ->
  ?window:int ->
  Mcsim_ir.Program.t ->
  Mcsim_ir.Profile.t ->
  Partition.t * Mcsim_ir.Il.lr list
(** Also returns the live ranges in the order their clusters were decided
    (the order the paper walks through for Figure 6). *)
