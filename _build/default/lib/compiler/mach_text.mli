(** A plain-text assembly-like format for machine programs, with a parser
    — so compiled benchmarks can be saved, inspected, diffed, and reloaded
    without re-running the compilation pipeline.

    Example:

    {v
    program "kernel" entry 1

    block 0:
      halt
    block 1:
      r2 <- int_other r2, r4
      f0 <- load r30 [stride 0x10000 +8 x4096]
      store f0, r30 [fixed 0x2000]
      cond r2 loop(100) -> 1, 0
    v}

    Terminators: [fallthrough -> n], [jump -> n],
    [cond <reg?> <model> -> taken, not_taken], [halt].
    Branch models: [loop(T)], [bernoulli(P)], [pattern(TNTN)],
    [correlated(P_REPEAT, P_INIT)].
    Memory streams: [[fixed 0xA]], [[stride 0xBASE +S xCOUNT]],
    [[uniform 0xBASE SIZE]], [[mixed 0xHOT HSIZE 0xCOLD CSIZE P]]. *)

val print : Mach_prog.t -> string

val parse : string -> (Mach_prog.t, string) result
(** Parse the format produced by {!print}. The error string carries a
    line number and description. *)

val equal : Mach_prog.t -> Mach_prog.t -> bool
(** Structural equality (layout included) — the round-trip oracle. *)
