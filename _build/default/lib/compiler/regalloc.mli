(** Graph-coloring register allocation (paper §3.4, after Briggs et al.).

    Optimistic (Briggs-style) coloring over the live-range interference
    graph, with the multicluster twist: a live range partitioned to
    cluster [c] may only take architectural registers assigned to [c]
    (the even/odd convention of §4), and when no such register is free
    the allocator first tries a register of the {e other} cluster
    (updating the partition — a "cross-cluster spill") and only then
    spills the live range to memory, exactly the order the paper
    describes. Unconstrained live ranges (the native binary) color from
    the full register set.

    Global-register candidates are not colored: the stack-pointer live
    range gets [r30] and the global-pointer live range gets [r29].

    Memory spills rewrite the program: every use is preceded by a load
    from the live range's stack slot and every definition is followed by
    a store, through fresh short live ranges; the allocator then reruns
    on the rewritten program until no spills remain. *)

type result = {
  prog : Mcsim_ir.Program.t;  (** rewritten program (spill code included) *)
  partition : Partition.t;
      (** final partition, covering spill temporaries, with cross-cluster
          spills applied *)
  reg_of : Mcsim_isa.Reg.t option array;
      (** per live range of [prog]; [None] exactly for memory-spilled live
          ranges (which no longer appear in [prog]'s code) *)
  spilled_lrs : Mcsim_ir.Il.lr list;  (** spilled to memory, any round *)
  cross_cluster : Mcsim_ir.Il.lr list;  (** recolored into the other cluster *)
  rounds : int;  (** coloring rounds (1 = no spilling needed) *)
}

val allocate :
  ?spill_base:int ->
  ?profile:Mcsim_ir.Profile.t ->
  Mcsim_ir.Program.t ->
  Partition.t ->
  result
(** [spill_base] (default [0x0F00_0000]) is where spill slots live; each
    slot is 8 bytes, addressed sp-relative in the generated code.
    [profile] weights spill costs by block execution estimates (static
    use counts otherwise).
    @raise Failure if coloring does not converge (more spill slots than
    live ranges — cannot happen for well-formed inputs). *)

val int_colors :
  ?clusters:int -> cluster:Partition.cluster_choice -> unit -> Mcsim_isa.Reg.t list
(** The integer registers available to a live range with the given
    constraint: r0–r28 (r29/r30 are the dedicated gp/sp, r31 is zero),
    filtered to the cluster's residue class modulo [clusters] (default 2 —
    the paper's even/odd convention) when constrained. *)

val fp_colors :
  ?clusters:int -> cluster:Partition.cluster_choice -> unit -> Mcsim_isa.Reg.t list
(** f0–f30, filtered likewise. *)

val check : result -> unit
(** Internal consistency: every live range appearing in [prog] has a
    register of its own bank; interfering live ranges (same bank) never
    share a register; constrained live ranges hold registers of their
    cluster's parity. @raise Failure on violation (used by tests). *)
