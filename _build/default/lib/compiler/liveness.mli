(** Live-range dataflow analysis and interference graph construction.

    Standard backward liveness over the CFG, at live-range (virtual
    register) granularity — the abstraction the paper's partitioner and
    register allocator work on (§3, citing Aho et al.). Two live ranges
    interfere when one is defined at a point where the other is live (and
    they are not the same). The stack- and global-pointer live ranges are
    treated as live everywhere, but are excluded from the interference
    graph: they are allocated dedicated global registers, never colored.

    Conditional-branch condition live ranges count as block-level uses. *)

type t

val analyse : Mcsim_ir.Program.t -> t

val live_in : t -> int -> Mcsim_ir.Il.lr list
(** Live ranges live at entry to a block. *)

val live_out : t -> int -> Mcsim_ir.Il.lr list

val interferes : t -> Mcsim_ir.Il.lr -> Mcsim_ir.Il.lr -> bool

val neighbours : t -> Mcsim_ir.Il.lr -> Mcsim_ir.Il.lr list
(** Interference-graph neighbours (same bank only — integer and fp live
    ranges are colored from disjoint register banks and never interfere). *)

val degree : t -> Mcsim_ir.Il.lr -> int

val def_sites : t -> Mcsim_ir.Il.lr -> (int * int) list
(** [(block, instr_index)] pairs where the live range is written. *)

val use_sites : t -> Mcsim_ir.Il.lr -> (int * int) list
(** [(block, instr_index)] pairs where it is read; a use by a block's
    conditional terminator is reported with index [Array.length instrs]. *)

val use_count : t -> Mcsim_ir.Il.lr -> int
(** Static defs + uses (spill-cost numerator). *)
