(** Loop unrolling for multicluster scheduling — the paper's §6 proposal:

    "Loop unrolling ... could also be used to generate a code schedule in
    which multiple iterations of a loop were interleaved, with each
    iteration scheduled to use a separate cluster. To further increase
    the performance ... schemes could be devised to decrease the amount
    of interaction between the iterations ... One such scheme is to
    duplicate the code that calculates addresses."

    The transformation targets self-loop blocks driven by a
    {!Mcsim_ir.Branch_model.Loop} back-edge. The body is replicated
    [factor] times inside the block and the trip count divided
    accordingly. Live ranges that are {e iteration-local} (defined in the
    body before any use) get fresh copies per replica, so the replicas
    form independent strands the live-range partitioner can put on
    different clusters; {e loop-carried} live ranges (read before they
    are written) are left shared, preserving the real recurrences.
    Strided address streams are split per replica ([base + k·stride],
    stride multiplied by the factor) — the "duplicated address
    calculation" of the paper, so replicas sweep interleaved elements
    rather than re-walking the same ones. *)

val unroll : ?factor:int -> ?max_body:int -> Mcsim_ir.Program.t -> Mcsim_ir.Program.t
(** [unroll ~factor p] (default factor 2) rewrites every self-loop block
    whose body has at most [max_body] (default 32) instructions and whose
    trip count is at least [2 * factor]. Residual iterations are folded
    into the rounded-up trip count (a timing-level approximation: the
    simulated instruction mix is preserved, trip counts shift by at most
    one). The result passes {!Mcsim_ir.Program.validate}.
    @raise Invalid_argument if [factor < 1]. *)

val unrolled_blocks : Mcsim_ir.Program.t -> Mcsim_ir.Program.t -> int list
(** Blocks whose body grew between the original and unrolled program
    (diagnostic for tests/reports). *)
