(** Register-allocated machine programs — the output of the compilation
    pipeline and the input of the trace walker.

    A machine program mirrors the IL program's CFG but its instructions
    name architectural registers. Program counters are assigned by a
    straight-line layout of the blocks (one word per instruction slot;
    [Jump]/[Cond] terminators occupy a slot, [Fallthrough]/[Halt] do
    not). *)

type minstr = {
  mi : Mcsim_isa.Instr.t;
  mi_mem : Mcsim_ir.Mem_stream.t option;  (** present iff memory class *)
}

type mterm =
  | Mt_fallthrough of int
  | Mt_jump of int
  | Mt_cond of {
      src : Mcsim_isa.Reg.t option;
      model : Mcsim_ir.Branch_model.t;
      taken : int;
      not_taken : int;
    }
  | Mt_halt

type block = {
  instrs : minstr array;
  term : mterm;
}

type t = {
  name : string;
  blocks : block array;
  entry : int;
  block_pc : int array;  (** pc of each block's first slot *)
  term_pc : int array;  (** pc of the terminator's slot, or -1 *)
}

val make : name:string -> entry:int -> block array -> t
(** Computes the layout. @raise Invalid_argument on bad targets. *)

val num_blocks : t -> int
val static_instrs : t -> int
(** Total instruction slots (terminators included). *)

val pc_of_slot : t -> block:int -> index:int -> int
(** pc of the [index]-th body instruction of [block]. *)

val pp : Format.formatter -> t -> unit
