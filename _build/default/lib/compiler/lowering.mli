(** Lowering: IL program + register assignment → machine program
    (paper §3.1 step 6 — after spilling and allocation the machine-level
    instructions are final).

    Every live range must have a register ({!Regalloc.result.reg_of});
    memory-spilled ranges were already rewritten away by the allocator. *)

val lower : Regalloc.result -> Mach_prog.t
(** @raise Failure if a live range appearing in the code has no
    register. *)
