module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Instr = Mcsim_isa.Instr

let lower (r : Regalloc.result) =
  let prog = r.Regalloc.prog in
  let reg_of lr =
    match r.Regalloc.reg_of.(lr) with
    | Some reg -> reg
    | None ->
      failwith
        (Printf.sprintf "Lowering.lower: live range %s has no register"
           (Program.lr_name prog lr))
  in
  let lower_instr (i : Il.instr) =
    { Mach_prog.mi =
        Instr.make ~op:i.Il.op ~srcs:(List.map reg_of i.Il.srcs)
          ~dst:(Option.map reg_of i.Il.dst);
      mi_mem = i.Il.mem }
  in
  let lower_block (b : Program.block) =
    let term =
      match b.Program.term with
      | Il.Fallthrough s -> Mach_prog.Mt_fallthrough s
      | Il.Jump s -> Mach_prog.Mt_jump s
      | Il.Cond { src; model; taken; not_taken } ->
        Mach_prog.Mt_cond { src = Option.map reg_of src; model; taken; not_taken }
      | Il.Halt -> Mach_prog.Mt_halt
    in
    { Mach_prog.instrs = Array.map lower_instr b.Program.instrs; term }
  in
  Mach_prog.make ~name:prog.Program.name ~entry:prog.Program.entry
    (Array.map lower_block prog.Program.blocks)
