module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Branch_model = Mcsim_ir.Branch_model
module Mem_stream = Mcsim_ir.Mem_stream
module Op_class = Mcsim_isa.Op_class
module Rng = Mcsim_util.Rng
module Builder = Mcsim_ir.Program.Builder

type op_mix = {
  w_int_other : float;
  w_int_multiply : float;
  w_fp_other : float;
  w_fp_divide : float;
  w_load : float;
  w_store : float;
}

let validate_mix m =
  let ws = [ m.w_int_other; m.w_int_multiply; m.w_fp_other; m.w_fp_divide; m.w_load; m.w_store ] in
  if List.exists (fun w -> w < 0.0) ws then invalid_arg "Synth: negative mix weight";
  if List.fold_left ( +. ) 0.0 ws <= 0.0 then invalid_arg "Synth: all-zero mix"

type mem_kind =
  | Stack_slots of { slots : int }
  | Array_sweep of { arrays : int; stride : int; array_bytes : int }
  | Table_random of { table_bytes : int }
  | Hot_cold of { hot_bytes : int; cold_bytes : int; p_hot : float }

type branch_style =
  | Biased of float
  | Patterned
  | Data_dependent of float

type params = {
  name : string;
  seed : int;
  n_segments : int;
  p_diamond : float;
  p_inner_loop : float;
  inner_trip_min : int;
  inner_trip_max : int;
  outer_trip : int;
  block_min : int;
  block_max : int;
  int_pool : int;
  fp_pool : int;
  n_communities : int;
  p_cross_community : float;
  mix : op_mix;
  chain_bias : float;
  fp64_div_frac : float;
  mem_fp_frac : float;
  sp_base_frac : float;
  mem_kinds : (float * mem_kind) list;
  branch_style : branch_style;
}

let validate p =
  validate_mix p.mix;
  if p.n_segments < 1 then invalid_arg "Synth: n_segments < 1";
  if p.outer_trip < 1 then invalid_arg "Synth: outer_trip < 1";
  if p.block_min < 1 || p.block_max < p.block_min then invalid_arg "Synth: bad block sizes";
  if p.int_pool < 2 then invalid_arg "Synth: int_pool < 2";
  if p.fp_pool < 0 then invalid_arg "Synth: fp_pool < 0";
  if p.inner_trip_min < 1 || p.inner_trip_max < p.inner_trip_min then
    invalid_arg "Synth: bad inner trips";
  let frac f = f < 0.0 || f > 1.0 in
  if frac p.p_diamond || frac p.p_inner_loop || frac p.chain_bias || frac p.fp64_div_frac
     || frac p.mem_fp_frac || frac p.sp_base_frac || frac p.p_cross_community
  then invalid_arg "Synth: fraction out of [0,1]";
  if p.n_communities < 1 then invalid_arg "Synth: n_communities < 1";
  if p.int_pool < 2 * p.n_communities then
    invalid_arg "Synth: int_pool too small for the community count";
  if p.mem_kinds = [] then invalid_arg "Synth: no mem kinds";
  if List.exists (fun (w, _) -> w < 0.0) p.mem_kinds then invalid_arg "Synth: negative mem weight"

(* ------------------------------------------------------------------ *)

type gen = {
  p : params;
  rng : Rng.t;
  b : Builder.t;
  int_lrs : Il.lr array;
  fp_lrs : Il.lr array;
  mutable community : int;  (* data-flow community of the current segment *)
  mutable recent_int : Il.lr;
  mutable recent_fp : Il.lr option;
  next_int_dst : int array;  (* per-community round-robin cursors *)
  next_fp_dst : int array;
  mutable region_base : int;  (* bump allocator for memory regions *)
  mutable stack_next : int;
  mutable sweep_round_robin : int;
  (* Instantiated region models are shared by the instructions that pick
     the same kind, as benchmark code shares its data structures. *)
  mutable regions : (mem_kind * Mem_stream.t list) list;
}

let region_align = 1 lsl 16

let alloc_region g bytes =
  let base = g.region_base in
  let size = (bytes + region_align - 1) / region_align * region_align in
  g.region_base <- base + size;
  base

let streams_of_kind g kind =
  match List.assoc_opt kind g.regions with
  | Some s -> s
  | None ->
    let streams =
      match kind with
      | Stack_slots { slots } ->
        List.init slots (fun i -> Mem_stream.Fixed { addr = 0x1000 + (8 * (g.stack_next + i)) })
        |> fun l ->
        g.stack_next <- g.stack_next + slots;
        l
      | Array_sweep { arrays; stride; array_bytes } ->
        List.init arrays (fun _ ->
            let base = alloc_region g array_bytes in
            Mem_stream.Stride { base; stride; count = max 1 (array_bytes / max 1 stride) })
      | Table_random { table_bytes } ->
        let base = alloc_region g table_bytes in
        [ Mem_stream.Uniform { base; size = table_bytes } ]
      | Hot_cold { hot_bytes; cold_bytes; p_hot } ->
        let hot_base = alloc_region g hot_bytes in
        let cold_base = alloc_region g cold_bytes in
        [ Mem_stream.Mixed { hot_base; hot_size = hot_bytes; cold_base; cold_size = cold_bytes;
                             p_hot } ]
    in
    g.regions <- (kind, streams) :: g.regions;
    streams

let pick_stream g =
  let weights = Array.of_list (List.map fst g.p.mem_kinds) in
  let kinds = Array.of_list (List.map snd g.p.mem_kinds) in
  let kind = kinds.(Rng.weighted_index g.rng weights) in
  let streams = streams_of_kind g kind in
  match kind with
  | Array_sweep _ ->
    (* Sweeps visit their arrays round-robin so each static load tends to
       stream one array, as compiled loops do. *)
    let n = List.length streams in
    let i = g.sweep_round_robin mod n in
    g.sweep_round_robin <- g.sweep_round_robin + 1;
    List.nth streams i
  | Stack_slots _ | Table_random _ | Hot_cold _ ->
    List.nth streams (Rng.int g.rng (List.length streams))

(* ------------------------------------------------------------------ *)
(* Operand selection                                                   *)
(* ------------------------------------------------------------------ *)

(* Community slice of a pool: segment data-flow locality. Pools too small
   to split act as a single community. *)
let slice g a =
  let n = g.p.n_communities in
  let len = Array.length a in
  if len < 2 * n then (0, len)
  else begin
    let k = g.community mod n in
    (k * len / n, (((k + 1) * len / n) - (k * len / n)))
  end

let pick_in_community g a =
  if Array.length a >= 2 * g.p.n_communities && Rng.bernoulli g.rng g.p.p_cross_community
  then Rng.pick g.rng a
  else begin
    let base, len = slice g a in
    a.(base + Rng.int g.rng len)
  end

let src_int g =
  if Rng.bernoulli g.rng g.p.chain_bias then g.recent_int
  else pick_in_community g g.int_lrs

let src_fp g =
  match g.recent_fp with
  | Some r when Rng.bernoulli g.rng g.p.chain_bias -> r
  | Some _ | None -> pick_in_community g g.fp_lrs

let dst_in_community g a cursors =
  let base, len = slice g a in
  let k = g.community mod Array.length cursors in
  let lr = a.(base + (cursors.(k) mod len)) in
  cursors.(k) <- cursors.(k) + 1;
  lr

let dst_int g =
  let lr = dst_in_community g g.int_lrs g.next_int_dst in
  g.recent_int <- lr;
  lr

let dst_fp g =
  let lr = dst_in_community g g.fp_lrs g.next_fp_dst in
  g.recent_fp <- Some lr;
  lr

let addr_base g =
  if Rng.bernoulli g.rng g.p.sp_base_frac then
    if Rng.bool g.rng then Builder.sp g.b else Builder.gp g.b
  else src_int g

(* ------------------------------------------------------------------ *)
(* Instruction generation                                              *)
(* ------------------------------------------------------------------ *)

let gen_instr g =
  let m = g.p.mix in
  let has_fp = Array.length g.fp_lrs > 0 in
  let weights =
    [| m.w_int_other; m.w_int_multiply;
       (if has_fp then m.w_fp_other else 0.0);
       (if has_fp then m.w_fp_divide else 0.0);
       m.w_load; m.w_store |]
  in
  match Rng.weighted_index g.rng weights with
  | 0 ->
    let s1 = src_int g and s2 = src_int g in
    Il.instr ~op:Op_class.Int_other ~srcs:[ s1; s2 ] ~dst:(dst_int g) ()
  | 1 ->
    let s1 = src_int g and s2 = src_int g in
    Il.instr ~op:Op_class.Int_multiply ~srcs:[ s1; s2 ] ~dst:(dst_int g) ()
  | 2 ->
    let s1 = src_fp g and s2 = src_fp g in
    Il.instr ~op:Op_class.Fp_other ~srcs:[ s1; s2 ] ~dst:(dst_fp g) ()
  | 3 ->
    let s1 = src_fp g and s2 = src_fp g in
    let bits64 = Rng.bernoulli g.rng g.p.fp64_div_frac in
    Il.instr ~op:(Op_class.Fp_divide { bits64 }) ~srcs:[ s1; s2 ] ~dst:(dst_fp g) ()
  | 4 ->
    let base = addr_base g in
    let fp = has_fp && Rng.bernoulli g.rng g.p.mem_fp_frac in
    let dst = if fp then dst_fp g else dst_int g in
    Il.instr ~op:Op_class.Load ~srcs:[ base ] ~dst ~mem:(pick_stream g) ()
  | 5 ->
    let fp = has_fp && Rng.bernoulli g.rng g.p.mem_fp_frac in
    let data = if fp then src_fp g else src_int g in
    let base = addr_base g in
    Il.instr ~op:Op_class.Store ~srcs:[ data; base ] ~mem:(pick_stream g) ()
  | _ -> assert false

let gen_body g =
  (* Blocks start from their community's values, not from whatever the
     previously generated (= different-community) block left in the chain
     state; cross-community flow is controlled by [p_cross_community]
     alone. *)
  g.recent_int <- pick_in_community g g.int_lrs;
  if Array.length g.fp_lrs > 0 then g.recent_fp <- Some (pick_in_community g g.fp_lrs);
  let n = g.p.block_min + Rng.int g.rng (g.p.block_max - g.p.block_min + 1) in
  List.init n (fun _ -> gen_instr g)

let diamond_model g =
  match g.p.branch_style with
  | Biased p ->
    let jitter = Rng.float g.rng 0.1 -. 0.05 in
    Branch_model.Taken_prob (min 0.98 (max 0.02 (p +. jitter)))
  | Patterned ->
    let len = 2 + Rng.int g.rng 6 in
    Branch_model.Pattern (Array.init len (fun _ -> Rng.bool g.rng))
  | Data_dependent p_repeat ->
    Branch_model.Correlated { p_repeat; p_taken_init = 0.5 }

(* ------------------------------------------------------------------ *)
(* Program assembly                                                    *)
(* ------------------------------------------------------------------ *)

(* Each segment generator receives the block id it must branch to when
   finished and returns the id of its first block. Blocks are built in
   reverse segment order so "next" ids already exist. *)

let gen_straight g ~next =
  Builder.add_block g.b (gen_body g) (Il.Fallthrough next)

let gen_diamond g ~next =
  let then_blk = Builder.add_block g.b (gen_body g) (Il.Jump next) in
  let else_blk = Builder.add_block g.b (gen_body g) (Il.Fallthrough next) in
  let cond = src_int g in
  Builder.add_block g.b (gen_body g)
    (Il.Cond { src = Some cond; model = diamond_model g; taken = then_blk; not_taken = else_blk })

let gen_inner_loop g ~next =
  let trip =
    g.p.inner_trip_min + Rng.int g.rng (g.p.inner_trip_max - g.p.inner_trip_min + 1)
  in
  let body = Builder.reserve_block g.b in
  let cond = src_int g in
  Builder.define_block g.b body (gen_body g)
    (Il.Cond { src = Some cond; model = Branch_model.Loop { trip }; taken = body;
               not_taken = next });
  body

let gen_segment g ~next =
  let x = Rng.float g.rng 1.0 in
  if x < g.p.p_diamond then gen_diamond g ~next
  else if x < g.p.p_diamond +. g.p.p_inner_loop then gen_inner_loop g ~next
  else gen_straight g ~next

let generate p =
  validate p;
  let b = Builder.create ~name:p.name in
  let rng = Rng.create p.seed in
  let int_lrs =
    Array.init p.int_pool (fun i -> Builder.fresh_lr b ~name:(Printf.sprintf "i%d" i) Il.Bank_int)
  in
  let fp_lrs =
    Array.init p.fp_pool (fun i -> Builder.fresh_lr b ~name:(Printf.sprintf "f%d" i) Il.Bank_fp)
  in
  let g =
    { p; rng; b; int_lrs; fp_lrs; community = 0; recent_int = int_lrs.(0); recent_fp = None;
      next_int_dst = Array.make p.n_communities 0; next_fp_dst = Array.make p.n_communities 0;
      region_base = 0x0010_0000; stack_next = 0; sweep_round_robin = 0; regions = [] }
  in
  (* Exit, then segments back to front, then loop tail wiring. *)
  let exit_blk = Builder.add_block b [] Il.Halt in
  let header = Builder.reserve_block b in
  let tail =
    let cond = src_int g in
    Builder.add_block b (gen_body g)
      (Il.Cond { src = Some cond; model = Branch_model.Loop { trip = p.outer_trip };
                 taken = header; not_taken = exit_blk })
  in
  let first_inner =
    let rec build i next =
      if i = 0 then next
      else begin
        g.community <- i;
        build (i - 1) (gen_segment g ~next)
      end
    in
    build (p.n_segments - 1) tail
  in
  g.community <- 0;
  (* The header is the first segment. *)
  (let x = Rng.float g.rng 1.0 in
   let next = first_inner in
   if x < p.p_diamond then begin
     let then_blk = Builder.add_block b (gen_body g) (Il.Jump next) in
     let else_blk = Builder.add_block b (gen_body g) (Il.Fallthrough next) in
     let cond = src_int g in
     Builder.define_block b header (gen_body g)
       (Il.Cond { src = Some cond; model = diamond_model g; taken = then_blk;
                  not_taken = else_blk })
   end
   else Builder.define_block b header (gen_body g) (Il.Fallthrough next));
  (* Entry block: define every pool live range once (integer constants and
     fp loads), then enter the outer loop. *)
  let init_instrs =
    List.map (fun lr -> Il.instr ~op:Op_class.Int_other ~srcs:[] ~dst:lr ())
      (Array.to_list int_lrs)
    @ List.map (fun lr -> Il.instr ~op:Op_class.Fp_other ~srcs:[] ~dst:lr ())
        (Array.to_list fp_lrs)
  in
  let entry = Builder.add_block b init_instrs (Il.Jump header) in
  Builder.finish b ~entry
