(** Additional SPEC92-flavoured synthetic workloads, beyond the six the
    paper's Table 2 uses. These are not part of the reproduction — they
    widen the library's workload coverage for new experiments (and match
    the characters of four more SPEC92 members). *)

type benchmark = Espresso | Eqntott | Alvinn | Ear

val all : benchmark list
val name : benchmark -> string
val of_name : string -> benchmark option
val description : benchmark -> string
val params : benchmark -> Synth.params
val program : benchmark -> Mcsim_ir.Program.t
