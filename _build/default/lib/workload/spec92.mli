(** The six SPEC92 benchmarks of the paper's evaluation (Table 2), as
    synthetic stand-ins.

    Each preset parameterizes {!Synth.generate} with the published
    character of the benchmark — instruction mix, branch behaviour,
    working-set size and dependence structure — so that the {e relative}
    effects the paper reports (dual-cluster slowdowns, the benefit of the
    local scheduler, the compress and ora anomalies) can emerge from the
    model. Absolute cycle counts are not comparable to 1992 binaries and
    are not meant to be. *)

type benchmark = Compress | Doduc | Gcc1 | Ora | Su2cor | Tomcatv

val all : benchmark list
(** In the paper's Table-2 row order. *)

val name : benchmark -> string
val of_name : string -> benchmark option

val description : benchmark -> string
(** One line on what the real benchmark does and which traits the preset
    models. *)

val params : benchmark -> Synth.params

val program : benchmark -> Mcsim_ir.Program.t
(** [Synth.generate (params b)]. *)
