(** Parametric synthetic-program generator.

    Stands in for the paper's SPEC92 binaries: each benchmark is a
    deterministic (seeded) IL program whose instruction mix, dependence
    structure, control behaviour and memory locality are set by
    {!params}. The generated program is one big outer loop over a
    sequence of {e segments} — straight-line blocks, if-diamonds, and
    inner loops — operating on fixed pools of integer and floating-point
    live ranges, with loads and stores drawing addresses from region
    models that mimic the benchmark's working set. *)

type op_mix = {
  w_int_other : float;
  w_int_multiply : float;
  w_fp_other : float;
  w_fp_divide : float;
  w_load : float;
  w_store : float;
}
(** Relative weights of body-instruction classes (control flow comes from
    the block structure, not the mix). *)

val validate_mix : op_mix -> unit
(** @raise Invalid_argument on negative weights or all-zero mix. *)

type mem_kind =
  | Stack_slots of { slots : int }
      (** sp-relative scalar slots; hits after first touch *)
  | Array_sweep of { arrays : int; stride : int; array_bytes : int }
      (** streaming sweeps over large arrays (vector codes) *)
  | Table_random of { table_bytes : int }
      (** uniform random over a table (hashing) *)
  | Hot_cold of { hot_bytes : int; cold_bytes : int; p_hot : float }
      (** skewed accesses: small hot set, big cold set *)

type branch_style =
  | Biased of float  (** Bernoulli(p)-taken diamonds, p jittered per site *)
  | Patterned  (** short periodic patterns (global history predictable) *)
  | Data_dependent of float  (** correlated outcomes, repeat-prob given *)

type params = {
  name : string;
  seed : int;
  n_segments : int;
  p_diamond : float;  (** segment is an if-diamond *)
  p_inner_loop : float;  (** else: inner loop; remainder: straight block *)
  inner_trip_min : int;
  inner_trip_max : int;
  outer_trip : int;
  block_min : int;  (** body instructions per block *)
  block_max : int;
  int_pool : int;  (** integer live ranges (register-pressure knob) *)
  fp_pool : int;
  n_communities : int;
      (** data-flow communities: each segment's instructions draw their
          operands mostly from one slice of the pools, giving the program
          the clusterable dataflow structure real code has (independent
          strands); requires [int_pool >= 2 * n_communities] *)
  p_cross_community : float;
      (** probability an operand crosses community boundaries *)
  mix : op_mix;
  chain_bias : float;  (** P(source = most recent same-bank definition) *)
  fp64_div_frac : float;  (** fraction of fp divides that are 64-bit *)
  mem_fp_frac : float;  (** fraction of loads/stores moving fp data *)
  sp_base_frac : float;  (** fraction of memory ops based off sp/gp *)
  mem_kinds : (float * mem_kind) list;  (** weighted region models *)
  branch_style : branch_style;
}

val validate : params -> unit
(** @raise Invalid_argument on out-of-range fields. *)

val generate : params -> Mcsim_ir.Program.t
(** Deterministic in [params] (including [seed]). The result passes
    {!Mcsim_ir.Program.validate}; every pool live range is defined in the
    entry block before the outer loop. *)
