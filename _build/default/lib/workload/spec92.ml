type benchmark = Compress | Doduc | Gcc1 | Ora | Su2cor | Tomcatv

let all = [ Compress; Doduc; Gcc1; Ora; Su2cor; Tomcatv ]

let name = function
  | Compress -> "compress"
  | Doduc -> "doduc"
  | Gcc1 -> "gcc1"
  | Ora -> "ora"
  | Su2cor -> "su2cor"
  | Tomcatv -> "tomcatv"

let of_name = function
  | "compress" -> Some Compress
  | "doduc" -> Some Doduc
  | "gcc1" -> Some Gcc1
  | "ora" -> Some Ora
  | "su2cor" -> Some Su2cor
  | "tomcatv" -> Some Tomcatv
  | _ -> None

let description = function
  | Compress ->
    "LZW data compression (int): hash-table loads/stores over a large table, \
     weakly-predictable data-dependent branches, tight dependence chains"
  | Doduc ->
    "Monte-Carlo reactor simulation (fp): mixed fp arithmetic with frequent \
     mostly-biased branches and a modest working set"
  | Gcc1 ->
    "GNU C compiler (int): large static code footprint, short blocks, very \
     branchy, mixed-locality memory traffic"
  | Ora ->
    "Ray tracing through optical systems (fp): long serial fp chains with \
     frequent divides/square-roots, highly predictable control"
  | Su2cor ->
    "Quantum-physics Monte Carlo (fp, vectorizable): long blocks streaming \
     over large arrays inside deep loop nests"
  | Tomcatv ->
    "Vectorized mesh generation (fp): stencil sweeps over several large \
     arrays, very long blocks, near-perfectly-predictable loops"

let mix ~int_other ~int_multiply ~fp_other ~fp_divide ~load ~store =
  { Synth.w_int_other = int_other; w_int_multiply = int_multiply; w_fp_other = fp_other;
    w_fp_divide = fp_divide; w_load = load; w_store = store }

let params = function
  | Compress ->
    { Synth.name = "compress"; seed = 0xC0;
      n_segments = 10; p_diamond = 0.55; p_inner_loop = 0.15;
      inner_trip_min = 4; inner_trip_max = 12; outer_trip = 100_000;
      block_min = 4; block_max = 10;
      int_pool = 24; fp_pool = 0;
      n_communities = 2; p_cross_community = 0.12;
      mix = mix ~int_other:0.52 ~int_multiply:0.03 ~fp_other:0.0 ~fp_divide:0.0
              ~load:0.27 ~store:0.18;
      chain_bias = 0.6; fp64_div_frac = 0.0; mem_fp_frac = 0.0; sp_base_frac = 0.3;
      mem_kinds =
        [ (0.50, Synth.Hot_cold { hot_bytes = 16 * 1024; cold_bytes = 256 * 1024; p_hot = 0.75 });
          (0.20, Synth.Table_random { table_bytes = 96 * 1024 });
          (0.30, Synth.Stack_slots { slots = 16 }) ];
      branch_style = Synth.Data_dependent 0.72 }
  | Doduc ->
    { Synth.name = "doduc"; seed = 0xD0;
      n_segments = 14; p_diamond = 0.5; p_inner_loop = 0.2;
      inner_trip_min = 3; inner_trip_max = 10; outer_trip = 100_000;
      block_min = 5; block_max = 14;
      int_pool = 14; fp_pool = 26;
      n_communities = 2; p_cross_community = 0.10;
      mix = mix ~int_other:0.20 ~int_multiply:0.01 ~fp_other:0.42 ~fp_divide:0.02
              ~load:0.23 ~store:0.12;
      chain_bias = 0.55; fp64_div_frac = 0.5; mem_fp_frac = 0.8; sp_base_frac = 0.4;
      mem_kinds =
        [ (0.7, Synth.Hot_cold { hot_bytes = 24 * 1024; cold_bytes = 96 * 1024; p_hot = 0.85 });
          (0.3, Synth.Stack_slots { slots = 24 }) ];
      branch_style = Synth.Biased 0.82 }
  | Gcc1 ->
    { Synth.name = "gcc1"; seed = 0x6C;
      n_segments = 26; p_diamond = 0.65; p_inner_loop = 0.1;
      inner_trip_min = 2; inner_trip_max = 6; outer_trip = 100_000;
      block_min = 3; block_max = 8;
      int_pool = 26; fp_pool = 0;
      n_communities = 3; p_cross_community = 0.12;
      mix = mix ~int_other:0.55 ~int_multiply:0.02 ~fp_other:0.0 ~fp_divide:0.0
              ~load:0.28 ~store:0.15;
      chain_bias = 0.5; fp64_div_frac = 0.0; mem_fp_frac = 0.0; sp_base_frac = 0.35;
      mem_kinds =
        [ (0.55, Synth.Hot_cold { hot_bytes = 16 * 1024; cold_bytes = 384 * 1024; p_hot = 0.8 });
          (0.45, Synth.Stack_slots { slots = 32 }) ];
      branch_style = Synth.Data_dependent 0.6 }
  | Ora ->
    { Synth.name = "ora"; seed = 0x0A;
      n_segments = 8; p_diamond = 0.2; p_inner_loop = 0.15;
      inner_trip_min = 5; inner_trip_max = 20; outer_trip = 100_000;
      block_min = 6; block_max = 14;
      int_pool = 10; fp_pool = 18;
      n_communities = 2; p_cross_community = 0.2;
      mix = mix ~int_other:0.22 ~int_multiply:0.0 ~fp_other:0.52 ~fp_divide:0.18
              ~load:0.10 ~store:0.06;
      chain_bias = 0.7; fp64_div_frac = 0.8; mem_fp_frac = 0.85; sp_base_frac = 0.6;
      mem_kinds = [ (1.0, Synth.Stack_slots { slots = 24 }) ];
      branch_style = Synth.Biased 0.93 }
  | Su2cor ->
    { Synth.name = "su2cor"; seed = 0x52;
      n_segments = 10; p_diamond = 0.12; p_inner_loop = 0.45;
      inner_trip_min = 20; inner_trip_max = 80; outer_trip = 100_000;
      block_min = 10; block_max = 22;
      int_pool = 16; fp_pool = 32;
      n_communities = 2; p_cross_community = 0.08;
      mix = mix ~int_other:0.14 ~int_multiply:0.02 ~fp_other:0.42 ~fp_divide:0.01
              ~load:0.28 ~store:0.13;
      chain_bias = 0.45; fp64_div_frac = 0.7; mem_fp_frac = 0.9; sp_base_frac = 0.2;
      mem_kinds =
        [ (0.85, Synth.Array_sweep { arrays = 6; stride = 8; array_bytes = 512 * 1024 });
          (0.15, Synth.Stack_slots { slots = 16 }) ];
      branch_style = Synth.Biased 0.9 }
  | Tomcatv ->
    { Synth.name = "tomcatv"; seed = 0x71;
      n_segments = 8; p_diamond = 0.08; p_inner_loop = 0.55;
      inner_trip_min = 30; inner_trip_max = 120; outer_trip = 100_000;
      block_min = 14; block_max = 26;
      int_pool = 12; fp_pool = 28;
      n_communities = 2; p_cross_community = 0.13;
      mix = mix ~int_other:0.12 ~int_multiply:0.01 ~fp_other:0.46 ~fp_divide:0.01
              ~load:0.29 ~store:0.11;
      chain_bias = 0.5; fp64_div_frac = 0.7; mem_fp_frac = 0.92; sp_base_frac = 0.15;
      mem_kinds =
        [ (0.9, Synth.Array_sweep { arrays = 8; stride = 8; array_bytes = 256 * 1024 });
          (0.1, Synth.Stack_slots { slots = 12 }) ];
      branch_style = Synth.Biased 0.95 }

let program b = Synth.generate (params b)
