type benchmark = Espresso | Eqntott | Alvinn | Ear

let all = [ Espresso; Eqntott; Alvinn; Ear ]

let name = function
  | Espresso -> "espresso"
  | Eqntott -> "eqntott"
  | Alvinn -> "alvinn"
  | Ear -> "ear"

let of_name = function
  | "espresso" -> Some Espresso
  | "eqntott" -> Some Eqntott
  | "alvinn" -> Some Alvinn
  | "ear" -> Some Ear
  | _ -> None

let description = function
  | Espresso ->
    "Boolean-function minimization (int): bit-set sweeps over cube lists, \
     mixed-predictability branches, small hot working set"
  | Eqntott ->
    "Truth-table generation (int): dominated by a comparison sort - short \
     blocks, highly data-dependent branches, hot comparator code"
  | Alvinn ->
    "Neural-net training (fp, vectorizable): dense matrix-vector sweeps, \
     very predictable loops, long blocks of multiply-adds"
  | Ear ->
    "Human-ear model (fp): FFT-flavoured butterflies - strided fp loads with \
     moderate blocks and predictable control"

let mix ~int_other ~int_multiply ~fp_other ~fp_divide ~load ~store =
  { Synth.w_int_other = int_other; w_int_multiply = int_multiply; w_fp_other = fp_other;
    w_fp_divide = fp_divide; w_load = load; w_store = store }

let params = function
  | Espresso ->
    { Synth.name = "espresso"; seed = 0xE5;
      n_segments = 16; p_diamond = 0.5; p_inner_loop = 0.25;
      inner_trip_min = 4; inner_trip_max = 16; outer_trip = 100_000;
      block_min = 4; block_max = 9;
      int_pool = 24; fp_pool = 0;
      n_communities = 2; p_cross_community = 0.1;
      mix = mix ~int_other:0.58 ~int_multiply:0.01 ~fp_other:0.0 ~fp_divide:0.0
              ~load:0.27 ~store:0.14;
      chain_bias = 0.55; fp64_div_frac = 0.0; mem_fp_frac = 0.0; sp_base_frac = 0.3;
      mem_kinds =
        [ (0.7, Synth.Hot_cold { hot_bytes = 24 * 1024; cold_bytes = 128 * 1024; p_hot = 0.85 });
          (0.3, Synth.Stack_slots { slots = 24 }) ];
      branch_style = Synth.Patterned }
  | Eqntott ->
    { Synth.name = "eqntott"; seed = 0xE9;
      n_segments = 12; p_diamond = 0.7; p_inner_loop = 0.1;
      inner_trip_min = 2; inner_trip_max = 8; outer_trip = 100_000;
      block_min = 3; block_max = 6;
      int_pool = 20; fp_pool = 0;
      n_communities = 2; p_cross_community = 0.12;
      mix = mix ~int_other:0.6 ~int_multiply:0.0 ~fp_other:0.0 ~fp_divide:0.0
              ~load:0.3 ~store:0.1;
      chain_bias = 0.6; fp64_div_frac = 0.0; mem_fp_frac = 0.0; sp_base_frac = 0.25;
      mem_kinds =
        [ (0.8, Synth.Hot_cold { hot_bytes = 16 * 1024; cold_bytes = 256 * 1024; p_hot = 0.7 });
          (0.2, Synth.Stack_slots { slots = 16 }) ];
      branch_style = Synth.Data_dependent 0.55 }
  | Alvinn ->
    { Synth.name = "alvinn"; seed = 0xA1;
      n_segments = 6; p_diamond = 0.05; p_inner_loop = 0.6;
      inner_trip_min = 30; inner_trip_max = 120; outer_trip = 100_000;
      block_min = 12; block_max = 24;
      int_pool = 12; fp_pool = 30;
      n_communities = 2; p_cross_community = 0.06;
      mix = mix ~int_other:0.1 ~int_multiply:0.02 ~fp_other:0.5 ~fp_divide:0.0
              ~load:0.28 ~store:0.1;
      chain_bias = 0.45; fp64_div_frac = 0.0; mem_fp_frac = 0.95; sp_base_frac = 0.1;
      mem_kinds =
        [ (0.9, Synth.Array_sweep { arrays = 4; stride = 8; array_bytes = 384 * 1024 });
          (0.1, Synth.Stack_slots { slots = 8 }) ];
      branch_style = Synth.Biased 0.96 }
  | Ear ->
    { Synth.name = "ear"; seed = 0xEA;
      n_segments = 10; p_diamond = 0.15; p_inner_loop = 0.45;
      inner_trip_min = 8; inner_trip_max = 64; outer_trip = 100_000;
      block_min = 8; block_max = 16;
      int_pool = 14; fp_pool = 26;
      n_communities = 2; p_cross_community = 0.1;
      mix = mix ~int_other:0.16 ~int_multiply:0.02 ~fp_other:0.45 ~fp_divide:0.02
              ~load:0.25 ~store:0.1;
      chain_bias = 0.55; fp64_div_frac = 0.5; mem_fp_frac = 0.9; sp_base_frac = 0.2;
      mem_kinds =
        [ (0.8, Synth.Array_sweep { arrays = 6; stride = 16; array_bytes = 128 * 1024 });
          (0.2, Synth.Stack_slots { slots = 12 }) ];
      branch_style = Synth.Biased 0.9 }

let program b = Synth.generate (params b)
