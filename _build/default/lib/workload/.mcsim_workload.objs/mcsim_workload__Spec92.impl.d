lib/workload/spec92.ml: Synth
