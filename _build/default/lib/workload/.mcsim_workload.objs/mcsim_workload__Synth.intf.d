lib/workload/synth.mli: Mcsim_ir
