lib/workload/synth.ml: Array List Mcsim_ir Mcsim_isa Mcsim_util Printf
