lib/workload/extra.ml: Synth
