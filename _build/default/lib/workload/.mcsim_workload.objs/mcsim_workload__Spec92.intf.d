lib/workload/spec92.mli: Mcsim_ir Synth
