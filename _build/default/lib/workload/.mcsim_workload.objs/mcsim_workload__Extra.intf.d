lib/workload/extra.mli: Mcsim_ir Synth
