lib/cache/cache.mli:
