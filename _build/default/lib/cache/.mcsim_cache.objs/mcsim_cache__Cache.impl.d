lib/cache/cache.ml: Array Hashtbl Option
