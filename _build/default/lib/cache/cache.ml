type config = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  miss_latency : int;
  mshrs : int option;
}

let default_config =
  { size_bytes = 64 * 1024; assoc = 2; line_bytes = 32; miss_latency = 16; mshrs = None }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate_config c =
  if not (is_pow2 c.line_bytes) then invalid_arg "Cache: line_bytes not a power of two";
  if c.assoc < 1 then invalid_arg "Cache: assoc < 1";
  if c.miss_latency < 1 then invalid_arg "Cache: miss_latency < 1";
  (match c.mshrs with
  | Some n when n < 1 -> invalid_arg "Cache: mshrs < 1"
  | Some _ | None -> ());
  if c.size_bytes < c.line_bytes * c.assoc then invalid_arg "Cache: size too small";
  if c.size_bytes mod (c.line_bytes * c.assoc) <> 0 then
    invalid_arg "Cache: size not a multiple of assoc * line size";
  if not (is_pow2 (c.size_bytes / (c.line_bytes * c.assoc))) then
    invalid_arg "Cache: number of sets not a power of two"

type t = {
  cfg : config;
  num_sets : int;
  tags : int array;  (* num_sets * assoc; -1 = invalid *)
  last_use : int array;  (* LRU timestamps *)
  in_flight : (int, int) Hashtbl.t;  (* line number -> fill cycle *)
  mutable stamp : int;
  mutable last_cycle : int;
  mutable n_accesses : int;
  mutable n_hits : int;
  mutable n_primary : int;
  mutable n_secondary : int;
  mutable n_mshr_stalls : int;
}

let create cfg =
  validate_config cfg;
  let num_sets = cfg.size_bytes / (cfg.line_bytes * cfg.assoc) in
  { cfg; num_sets;
    tags = Array.make (num_sets * cfg.assoc) (-1);
    last_use = Array.make (num_sets * cfg.assoc) 0;
    in_flight = Hashtbl.create 64;
    stamp = 0; last_cycle = 0;
    n_accesses = 0; n_hits = 0; n_primary = 0; n_secondary = 0; n_mshr_stalls = 0 }

let config t = t.cfg

let line_of t addr = addr / t.cfg.line_bytes
let set_of t line = line land (t.num_sets - 1)
let tag_of t line = line / t.num_sets

(* Returns the way index of a hit, or None. *)
let find_way t set tag =
  let base = set * t.cfg.assoc in
  let rec go w =
    if w = t.cfg.assoc then None
    else if t.tags.(base + w) = tag then Some (base + w)
    else go (w + 1)
  in
  go 0

let touch t slot =
  t.stamp <- t.stamp + 1;
  t.last_use.(slot) <- t.stamp

let install t set tag =
  let base = set * t.cfg.assoc in
  (* Victim: invalid way if any, else least recently used. *)
  let victim = ref base in
  for w = 0 to t.cfg.assoc - 1 do
    let s = base + w in
    if t.tags.(s) = -1 && t.tags.(!victim) <> -1 then victim := s
    else if t.tags.(s) <> -1 && t.tags.(!victim) <> -1 && t.last_use.(s) < t.last_use.(!victim)
    then victim := s
  done;
  t.tags.(!victim) <- tag;
  touch t !victim

let access t ~cycle ~addr ~write:_ =
  if cycle < t.last_cycle then invalid_arg "Cache.access: cycle went backwards";
  t.last_cycle <- cycle;
  t.n_accesses <- t.n_accesses + 1;
  let line = line_of t addr in
  let set = set_of t line in
  let tag = tag_of t line in
  match Hashtbl.find_opt t.in_flight line with
  | Some fill when cycle < fill ->
    (* Secondary miss: merge into the outstanding fetch. *)
    t.n_secondary <- t.n_secondary + 1;
    fill
  | completed -> (
    (* Either nothing was in flight, or the fill finished: the line was
       installed at miss time, so a normal lookup decides (it may have
       been evicted again since). *)
    if Option.is_some completed then Hashtbl.remove t.in_flight line;
    match find_way t set tag with
    | Some slot ->
      t.n_hits <- t.n_hits + 1;
      touch t slot;
      cycle
    | None ->
      t.n_primary <- t.n_primary + 1;
      install t set tag;
      (* A conventional miss-handling file has a fixed number of MSHRs
         [Farkas & Jouppi, ISCA'94]: when all are busy the new miss waits
         for the earliest outstanding fill. The inverted MSHR ([mshrs] =
         None) never stalls. *)
      let start =
        match t.cfg.mshrs with
        | None -> cycle
        | Some n ->
          (* Drop completed fills, then wait for slots if still full. *)
          Hashtbl.iter
            (fun l fill -> if fill <= cycle then Hashtbl.remove t.in_flight l)
            (Hashtbl.copy t.in_flight);
          let rec wait cycle =
            if Hashtbl.length t.in_flight < n then cycle
            else begin
              let earliest =
                Hashtbl.fold (fun l fill acc ->
                    match acc with
                    | Some (_, f) when f <= fill -> acc
                    | _ -> Some (l, fill))
                  t.in_flight None
              in
              match earliest with
              | Some (l, fill) ->
                t.n_mshr_stalls <- t.n_mshr_stalls + 1;
                Hashtbl.remove t.in_flight l;
                wait (max cycle fill)
              | None -> cycle
            end
          in
          wait cycle
      in
      let fill = start + t.cfg.miss_latency in
      Hashtbl.replace t.in_flight line fill;
      fill)

let probe t ~addr =
  let line = line_of t addr in
  (match Hashtbl.find_opt t.in_flight line with
  | Some fill -> fill > t.last_cycle
  | None -> false)
  || find_way t (set_of t line) (tag_of t line) <> None

let accesses t = t.n_accesses
let hits t = t.n_hits
let primary_misses t = t.n_primary
let secondary_misses t = t.n_secondary

let miss_rate t =
  if t.n_accesses = 0 then 0.0
  else float_of_int (t.n_primary + t.n_secondary) /. float_of_int t.n_accesses

let mshr_stalls t = t.n_mshr_stalls

let reset_stats t =
  t.n_accesses <- 0;
  t.n_hits <- 0;
  t.n_primary <- 0;
  t.n_secondary <- 0;
  t.n_mshr_stalls <- 0
