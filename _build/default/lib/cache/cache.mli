(** Set-associative cache with non-blocking misses.

    Models the paper's memory system (§4.1): 64-Kbyte two-way
    set-associative instruction and data caches; the data cache uses an
    inverted MSHR [Farkas & Jouppi, ISCA'94], so there is {e no limit} on
    the number of in-flight misses; the memory interface below has a
    16-cycle fetch latency and unlimited bandwidth.

    The cache is driven by a cycle-stamped access stream. [access] returns
    the cycle at which the data is available: the access cycle itself for
    a hit, miss-latency later for a primary miss, and the primary miss's
    fill cycle for a secondary (merged) miss to an in-flight line. Lines
    are installed at fill time for LRU purposes; write misses allocate. *)

type config = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  miss_latency : int;
  mshrs : int option;
      (** [None] = the paper's inverted MSHR (no limit on in-flight
          misses); [Some n] = a conventional n-entry miss-handling file
          [Farkas & Jouppi, ISCA'94]: a primary miss arriving with all
          entries busy waits for the earliest outstanding fill *)
}

val default_config : config
(** 64 KB, 2-way, 32-byte lines, 16-cycle miss latency, inverted MSHR. *)

val validate_config : config -> unit
(** @raise Invalid_argument unless sizes are positive, powers of two where
    required, and consistent. *)

type t

val create : config -> t
val config : t -> config

val access : t -> cycle:int -> addr:int -> write:bool -> int
(** [access t ~cycle ~addr ~write] returns the ready cycle ([>= cycle]).
    Cycles must be non-decreasing across calls.
    @raise Invalid_argument if [cycle] goes backwards. *)

val probe : t -> addr:int -> bool
(** Would [addr] hit right now (resident or in flight)? No state change. *)

val accesses : t -> int
val hits : t -> int
val primary_misses : t -> int
val secondary_misses : t -> int
(** Merged into an in-flight line — no extra memory traffic. *)

val mshr_stalls : t -> int
(** Primary misses delayed by a full conventional MSHR file (always 0
    with the inverted MSHR). *)

val miss_rate : t -> float
(** (primary + secondary) / accesses; 0 when no accesses. *)

val reset_stats : t -> unit
