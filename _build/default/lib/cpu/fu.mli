(** One cluster's functional-unit and issue-slot state for a cycle-driven
    simulator: the Table-1 per-class issue budget plus occupancy of the
    unpipelined floating-point divider. *)

type t

val create : Mcsim_isa.Issue_rules.limits -> t

val new_cycle : t -> unit
(** Reset the per-cycle issue budget. *)

val can_issue : t -> cycle:int -> Mcsim_isa.Op_class.t -> bool
(** Budget allows the class this cycle, and (for fp divides) the divider
    is idle at [cycle]. *)

val issue : t -> cycle:int -> Mcsim_isa.Op_class.t -> unit
(** Consume a slot; occupies the divider for the divide latency.
    @raise Invalid_argument if [can_issue] is false. *)

val issued_this_cycle : t -> int

val total_issued : t -> int
val issued_of_class : t -> Mcsim_isa.Op_class.t -> int
(** Cumulative per-class issue counts ([Fp_divide] widths are pooled). *)

val clear_divider : t -> unit
(** Squash support: forget all divider occupancy. *)
