lib/cpu/fu.mli: Mcsim_isa
