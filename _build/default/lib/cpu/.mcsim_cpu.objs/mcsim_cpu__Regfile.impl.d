lib/cpu/regfile.ml: Array Mcsim_isa Mcsim_util
