lib/cpu/regfile.mli: Mcsim_isa
