lib/cpu/fu.ml: Array Hashtbl Mcsim_isa
