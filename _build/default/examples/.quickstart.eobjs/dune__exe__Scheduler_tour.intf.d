examples/scheduler_tour.mli:
