examples/four_clusters.ml: List Mcsim_cluster Mcsim_compiler Mcsim_timing Mcsim_trace Mcsim_workload Printf
