examples/quickstart.mli:
