examples/quickstart.ml: List Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_timing Mcsim_trace Mcsim_workload Printf
