examples/export_results.mli:
