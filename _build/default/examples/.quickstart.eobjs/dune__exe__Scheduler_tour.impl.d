examples/scheduler_tour.ml: Format List Mcsim Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_trace Mcsim_workload Printf
