examples/four_clusters.mli:
