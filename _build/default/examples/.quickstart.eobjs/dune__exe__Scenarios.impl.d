examples/scenarios.ml: Array List Mcsim Mcsim_cluster Mcsim_isa Printf String
