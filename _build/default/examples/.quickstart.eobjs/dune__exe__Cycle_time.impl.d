examples/cycle_time.ml: List Mcsim Mcsim_timing Mcsim_workload Printf
