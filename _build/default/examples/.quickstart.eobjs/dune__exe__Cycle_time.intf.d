examples/cycle_time.mli:
