examples/export_results.ml: In_channel List Mcsim Mcsim_cluster Mcsim_compiler Mcsim_trace Mcsim_workload Out_channel Printf String
