examples/custom_workload.ml: Format List Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_timing Mcsim_trace Printf
