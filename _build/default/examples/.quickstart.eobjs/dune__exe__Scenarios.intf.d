examples/scenarios.mli:
