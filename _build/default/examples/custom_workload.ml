(* Writing a workload by hand with the IL builder, then sweeping a design
   parameter (transfer-buffer size) of the dual-cluster machine.

   The kernel is a two-strand pointer-free reduction: strand A and strand
   B each accumulate over an array; every iteration ends with a
   cross-strand combine, so some inter-cluster traffic is unavoidable no
   matter how the live ranges are partitioned.

   Run with: dune exec examples/custom_workload.exe *)

module Il = Mcsim_ir.Il
module Builder = Mcsim_ir.Program.Builder
module Op = Mcsim_isa.Op_class
module Machine = Mcsim_cluster.Machine
module Pipeline = Mcsim_compiler.Pipeline

let build () =
  let b = Builder.create ~name:"two-strand-reduction" in
  let sp = Builder.sp b in
  let lr n = Builder.fresh_lr b ~name:n Il.Bank_int in
  let acc_a = lr "acc_a" and acc_b = lr "acc_b" in
  let x_a = lr "x_a" and x_b = lr "x_b" and combined = lr "combined" in
  let load dst base count =
    Il.instr ~op:Op.Load ~srcs:[ sp ] ~dst
      ~mem:(Mcsim_ir.Mem_stream.Stride { base; stride = 8; count }) ()
  in
  let add dst srcs = Il.instr ~op:Op.Int_other ~srcs ~dst () in
  let mul dst srcs = Il.instr ~op:Op.Int_multiply ~srcs ~dst () in
  let exit_blk = Builder.add_block b [] Il.Halt in
  let body = Builder.reserve_block b in
  Builder.define_block b body
    [ (* strand A: the arrays fit in the cache, so the kernel is
         compute-bound and the inter-cluster traffic is what matters *)
      load x_a 0x10000 512;
      add acc_a [ acc_a; x_a ];
      mul acc_a [ acc_a; x_a ];
      (* strand B *)
      load x_b 0x30000 512;
      add acc_b [ acc_b; x_b ];
      mul acc_b [ acc_b; x_b ];
      (* dense cross-strand combines: each one forwards a value between
         the clusters whichever way the strands are partitioned *)
      add combined [ acc_a; acc_b ];
      add combined [ combined; x_a ];
      add combined [ combined; x_b ];
      mul combined [ combined; acc_a ] ]
    (Il.Cond { src = Some combined; model = Mcsim_ir.Branch_model.Loop { trip = 4000 };
               taken = body; not_taken = exit_blk });
  let entry =
    Builder.add_block b
      [ add acc_a []; add acc_b []; add combined [] ]
      (Il.Jump body)
  in
  Builder.finish b ~entry

let () =
  let prog = build () in
  Format.printf "%a@." Mcsim_ir.Program.pp prog;
  let profile = Mcsim_trace.Walker.profile prog in
  let local = Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog in
  let trace = Mcsim_trace.Walker.trace ~max_instrs:25_000 local.Pipeline.mach in
  let single = Machine.run (Machine.single_cluster ()) trace in
  Printf.printf "single-cluster: %d cycles\n" single.Machine.cycles;
  print_endline "dual-cluster with shrinking transfer buffers (local scheduler):";
  List.iter
    (fun entries ->
      let cfg =
        { (Machine.dual_cluster ()) with
          Machine.operand_buffer_entries = entries; result_buffer_entries = entries }
      in
      let r = Machine.run cfg trace in
      Printf.printf "  %2d entries: %6d cycles (%+.1f%% vs single), %d replays\n" entries
        r.Machine.cycles
        (Mcsim_timing.Net_performance.speedup_pct ~single_cycles:single.Machine.cycles
           ~dual_cycles:r.Machine.cycles)
        r.Machine.replays)
    [ 1; 2; 4; 8; 16 ]
