(* The five execution scenarios of paper §2.1, replayed through the real
   dual-cluster machine — the runnable version of Figures 2-5.

   Run with: dune exec examples/scenarios.exe *)

module I = Mcsim_isa.Instr

let timeline_of (o : Mcsim.Scenario.outcome) =
  (* Re-run the scenario's kernel with a timeline attached. *)
  let producers =
    List.filteri (fun i _ -> i < 2) o.Mcsim.Scenario.instr.I.srcs
    |> List.map (fun dst -> I.make ~op:Mcsim_isa.Op_class.Int_other ~srcs:[] ~dst:(Some dst))
  in
  let instrs = producers @ [ o.Mcsim.Scenario.instr ] in
  let trace = Array.of_list (List.mapi (fun i instr -> I.dynamic ~seq:i ~pc:i instr) instrs) in
  let t, _ = Mcsim.Timeline.record (Mcsim_cluster.Machine.dual_cluster ()) trace in
  Mcsim.Timeline.render ~first_seq:(Array.length trace - 1) t

let () =
  print_endline "Dual-cluster execution scenarios (paper §2.1, Figures 2-5)";
  print_endline "Register assignment: even registers -> cluster 0, odd -> cluster 1,";
  print_endline "sp (r30) and gp (r29) global.\n";
  List.iter
    (fun o ->
      print_string (Mcsim.Scenario.render o);
      print_endline "  timeline (F fetch, D dispatch, I issue, o operand-fwd, r result-fwd,";
      print_endline "            s suspend, w wake, W writeback, R retire):";
      String.split_on_char '\n' (timeline_of o)
      |> List.iter (fun l -> if l <> "" then Printf.printf "    %s\n" l);
      print_newline ())
    (Mcsim.Scenario.all ());
  print_endline "Reading the timelines:";
  print_endline "- scenario 2: the slave issues first, writes the forwarded operand into the";
  print_endline "  master cluster's operand transfer buffer, and the master issues the very";
  print_endline "  next cycle (the paper's Figure 2).";
  print_endline "- scenario 3: the master issues first and the slave one cycle later for this";
  print_endline "  one-cycle add - its writeback picks the result out of the result transfer";
  print_endline "  buffer (Figure 3).";
  print_endline "- scenario 5: the slave issues once to forward the operand, suspends, and is";
  print_endline "  awakened by the master's result without consuming a second issue slot";
  print_endline "  (Figure 5)."
