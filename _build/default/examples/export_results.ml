(* Exporting results: run a reduced Table 2, write CSV and Markdown, save
   a compiled benchmark in the textual machine-program format, and read it
   back.

   Run with: dune exec examples/export_results.exe
   Files are written to the current directory: table2.csv, table2.md,
   compress.mcs *)

module Spec92 = Mcsim_workload.Spec92
module Pipeline = Mcsim_compiler.Pipeline
module Mach_text = Mcsim_compiler.Mach_text

let () =
  (* 1. A reduced Table 2 on two benchmarks. *)
  let rows =
    Mcsim.Table2.run ~max_instrs:30_000 ~benchmarks:[ Spec92.Gcc1; Spec92.Ora ] ()
  in
  Out_channel.with_open_text "table2.csv" (fun oc ->
      Out_channel.output_string oc (Mcsim.Report.table2_csv rows));
  Out_channel.with_open_text "table2.md" (fun oc ->
      Out_channel.output_string oc (Mcsim.Report.table2_markdown rows));
  Printf.printf "wrote table2.csv and table2.md (%d rows)\n" (List.length rows);
  print_string (Mcsim.Report.table2_markdown rows);

  (* 2. Save a compiled benchmark as text and reload it. *)
  let prog = Spec92.program Spec92.Compress in
  let profile = Mcsim_trace.Walker.profile prog in
  let c = Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog in
  let text = Mach_text.print c.Pipeline.mach in
  Out_channel.with_open_text "compress.mcs" (fun oc -> Out_channel.output_string oc text);
  Printf.printf "wrote compress.mcs (%d bytes, %d static instructions)\n"
    (String.length text)
    (Mcsim_compiler.Mach_prog.static_instrs c.Pipeline.mach);
  (match Mach_text.parse (In_channel.with_open_text "compress.mcs" In_channel.input_all) with
  | Error e -> failwith e
  | Ok m ->
    let trace = Mcsim_trace.Walker.trace ~max_instrs:20_000 m in
    let r = Mcsim_cluster.Machine.run (Mcsim_cluster.Machine.dual_cluster ()) trace in
    Printf.printf "reloaded and simulated: %d instructions in %d cycles (IPC %.2f)\n"
      r.Mcsim_cluster.Machine.retired r.Mcsim_cluster.Machine.cycles
      r.Mcsim_cluster.Machine.ipc);

  (* 3. An ablation as CSV. *)
  let sweep = Mcsim.Ablation.transfer_buffers ~max_instrs:10_000 Spec92.Gcc1 in
  print_newline ();
  print_string (Mcsim.Report.ablation_csv sweep)
