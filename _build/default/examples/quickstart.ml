(* Quickstart: build a small program, compile it twice (native and with
   the paper's local scheduler), and race the single-cluster machine
   against the dual-cluster machine.

   Run with: dune exec examples/quickstart.exe *)

module Synth = Mcsim_workload.Synth
module Pipeline = Mcsim_compiler.Pipeline
module Walker = Mcsim_trace.Walker
module Machine = Mcsim_cluster.Machine

let () =
  (* 1. A workload: a small integer kernel with two data-flow strands. *)
  let params =
    { Synth.name = "quickstart"; seed = 42;
      n_segments = 6; p_diamond = 0.4; p_inner_loop = 0.2;
      inner_trip_min = 4; inner_trip_max = 10; outer_trip = 5_000;
      block_min = 4; block_max = 8;
      int_pool = 16; fp_pool = 0;
      n_communities = 2; p_cross_community = 0.1;
      mix =
        { Synth.w_int_other = 0.6; w_int_multiply = 0.05; w_fp_other = 0.0; w_fp_divide = 0.0;
          w_load = 0.2; w_store = 0.15 };
      chain_bias = 0.5; fp64_div_frac = 0.0; mem_fp_frac = 0.0; sp_base_frac = 0.3;
      mem_kinds = [ (1.0, Synth.Stack_slots { slots = 16 }) ];
      branch_style = Synth.Biased 0.8 }
  in
  let prog = Synth.generate params in
  Printf.printf "program: %d blocks, %d live ranges, %d static instructions\n"
    (Mcsim_ir.Program.num_blocks prog)
    (Mcsim_ir.Program.num_lrs prog)
    (Mcsim_ir.Program.num_static_instrs prog);

  (* 2. Profile it (the paper's profiling run). *)
  let profile = Walker.profile prog in

  (* 3. Compile the native binary and the rescheduled binary. *)
  let native = Pipeline.compile ~profile ~scheduler:Pipeline.Sched_none prog in
  let local = Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog in

  (* 4. Same input (seed), three machine runs. *)
  let max_instrs = 40_000 in
  let native_trace = Walker.trace ~max_instrs native.Pipeline.mach in
  let local_trace = Walker.trace ~max_instrs local.Pipeline.mach in
  let single = Machine.run (Machine.single_cluster ()) native_trace in
  let dual_none = Machine.run (Machine.dual_cluster ()) native_trace in
  let dual_local = Machine.run (Machine.dual_cluster ()) local_trace in

  let pct dual =
    Mcsim_timing.Net_performance.speedup_pct ~single_cycles:single.Machine.cycles
      ~dual_cycles:dual.Machine.cycles
  in
  Printf.printf "single-cluster, native binary:       %7d cycles (IPC %.2f)\n"
    single.Machine.cycles single.Machine.ipc;
  Printf.printf "dual-cluster,   native binary:       %7d cycles (%+.1f%%, %d dual-distributed)\n"
    dual_none.Machine.cycles (pct dual_none) dual_none.Machine.dual_distributed;
  Printf.printf "dual-cluster,   local scheduler:     %7d cycles (%+.1f%%, %d dual-distributed)\n"
    dual_local.Machine.cycles (pct dual_local) dual_local.Machine.dual_distributed;

  (* 5. Fold in the clock: would the dual-cluster machine win end to end? *)
  List.iter
    (fun feature ->
      Printf.printf "net at %s: %+.1f%%\n"
        (Mcsim_timing.Palacharla.feature_to_string feature)
        (Mcsim_timing.Net_performance.net_speedup_pct ~single_cycles:single.Machine.cycles
           ~dual_cycles:dual_local.Machine.cycles ~feature))
    [ Mcsim_timing.Palacharla.F0_35; Mcsim_timing.Palacharla.F0_18 ]
