(* A tour of the static scheduling pipeline on the paper's own worked
   example (Figure 6), plus the same pipeline on a real benchmark.

   Run with: dune exec examples/scheduler_tour.exe *)

module Pipeline = Mcsim_compiler.Pipeline
module Partition = Mcsim_compiler.Partition

let () =
  (* Part 1: the Figure-6 walkthrough. *)
  let o = Mcsim.Figure6.run () in
  print_string (Mcsim.Figure6.render o);
  print_newline ();
  print_endline "The Figure-6 control flow graph:";
  Format.printf "%a@." Mcsim_ir.Program.pp o.Mcsim.Figure6.program;

  (* Part 2: the full pipeline on a benchmark, step by step. *)
  let prog = Mcsim_workload.Spec92.program Mcsim_workload.Spec92.Gcc1 in
  let profile = Mcsim_trace.Walker.profile prog in
  Printf.printf "gcc1: %d blocks, %d live ranges\n"
    (Mcsim_ir.Program.num_blocks prog) (Mcsim_ir.Program.num_lrs prog);
  List.iter
    (fun scheduler ->
      let c = Pipeline.compile ~profile ~scheduler prog in
      let c0, c1, u, g = Partition.counts c.Pipeline.alloc.Mcsim_compiler.Regalloc.partition in
      let asg = Mcsim_cluster.Assignment.create ~num_clusters:2 () in
      let s, d = Pipeline.dual_distribution_count asg c.Pipeline.mach in
      Printf.printf
        "%-12s live ranges C0/C1/unconstrained/global = %d/%d/%d/%d; static single/dual = \
         %d/%d; spills = %d\n"
        (Pipeline.scheduler_name scheduler)
        c0 c1 u g s d
        (List.length c.Pipeline.alloc.Mcsim_compiler.Regalloc.spilled_lrs))
    [ Pipeline.Sched_none; Pipeline.Sched_round_robin; Pipeline.Sched_random 7;
      Pipeline.default_local ]
