(* Beyond the paper's pair: the same program on one, two, and four
   clusters.

   The paper develops the multicluster mechanism for two clusters
   "without loss of generality". This example compiles gcc1 for each
   cluster count (the local scheduler balances N ways, the register
   allocator colors registers modulo N) and runs the matching machine:
   an 8-issue monolith, two 4-issue clusters, four 2-issue clusters --
   always the same total issue width, window capacity, and register
   count.

   Run with: dune exec examples/four_clusters.exe *)

module Machine = Mcsim_cluster.Machine
module Pipeline = Mcsim_compiler.Pipeline
module Palacharla = Mcsim_timing.Palacharla

let () =
  let prog = Mcsim_workload.Spec92.program Mcsim_workload.Spec92.Gcc1 in
  let profile = Mcsim_trace.Walker.profile prog in
  let max_instrs = 40_000 in
  let run clusters =
    let scheduler = if clusters = 1 then Pipeline.Sched_none else Pipeline.default_local in
    let c = Pipeline.compile ~clusters ~profile ~scheduler prog in
    let trace = Mcsim_trace.Walker.trace ~max_instrs c.Pipeline.mach in
    let cfg =
      match clusters with
      | 1 -> Machine.single_cluster ()
      | 2 -> Machine.dual_cluster ()
      | _ -> Machine.quad_cluster ()
    in
    (Machine.run cfg trace, c)
  in
  let r1, _ = run 1 in
  Printf.printf "gcc1, %d dynamic instructions:\n\n" max_instrs;
  Printf.printf "%-22s %8s %6s %12s %14s %12s\n" "machine" "cycles" "IPC" "multi-copies"
    "clock @0.18um" "net @0.18um";
  List.iter
    (fun clusters ->
      let r, _ = run clusters in
      let t =
        Palacharla.cycle_time (Palacharla.per_cluster_config ~clusters Palacharla.F0_18)
      in
      let t1 =
        Palacharla.cycle_time (Palacharla.per_cluster_config ~clusters:1 Palacharla.F0_18)
      in
      let net =
        100.0
        -. (100.0 *. float_of_int r.Machine.cycles *. t
            /. (float_of_int r1.Machine.cycles *. t1))
      in
      Printf.printf "%-22s %8d %6.2f %12d %11.0f ps %+11.1f%%\n"
        (match clusters with
        | 1 -> "1 x 8-issue (paper)"
        | 2 -> "2 x 4-issue (paper)"
        | _ -> "4 x 2-issue (ours)")
        r.Machine.cycles r.Machine.ipc r.Machine.dual_distributed t net)
    [ 1; 2; 4 ];
  print_newline ();
  print_endline "Narrower clusters clock faster (smaller windows, shorter bypasses) but";
  print_endline "multi-distribute more instructions; at 0.18um the integer benchmarks";
  print_endline "still come out ahead even at four clusters."
