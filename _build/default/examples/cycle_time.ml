(* The paper's §4.2/§5 argument: when does partitioning pay off?

   Runs a reduced Table 2 (two benchmarks, shorter traces, so it finishes
   in seconds) and folds in the Palacharla clock model at 0.35um and
   0.18um.

   Run with: dune exec examples/cycle_time.exe *)

module Palacharla = Mcsim_timing.Palacharla

let () =
  print_string (Mcsim.Cycle_time.break_even_example ());
  print_newline ();
  print_endline "Structure delays from the calibrated model (ps):";
  List.iter
    (fun feature ->
      List.iter
        (fun cfg_name_cfg ->
          let name, cfg = cfg_name_cfg in
          Printf.printf "  %s %-22s rename=%4.0f wakeup+select=%4.0f regfile=%4.0f bypass=%4.0f -> cycle %4.0f (%s)\n"
            (Palacharla.feature_to_string feature) name
            (Palacharla.rename_delay cfg) (Palacharla.wakeup_select_delay cfg)
            (Palacharla.regfile_delay cfg) (Palacharla.bypass_delay cfg)
            (Palacharla.cycle_time cfg) (Palacharla.critical_structure cfg))
        [ ("4-issue, 64-window", Palacharla.dual_cluster_config feature);
          ("8-issue, 128-window", Palacharla.single_cluster_config feature) ])
    [ Palacharla.F0_35; Palacharla.F0_18 ];
  print_newline ();
  print_endline "Net performance on two benchmarks (short traces):";
  let rows =
    Mcsim.Table2.run ~max_instrs:40_000
      ~benchmarks:[ Mcsim_workload.Spec92.Ora; Mcsim_workload.Spec92.Tomcatv ] ()
  in
  print_string (Mcsim.Cycle_time.render (Mcsim.Cycle_time.analyse rows));
  List.iter
    (fun (ok, what) -> Printf.printf "[%s] %s\n" (if ok then "ok" else "??") what)
    (Mcsim.Cycle_time.conclusion_holds (Mcsim.Cycle_time.analyse rows))
