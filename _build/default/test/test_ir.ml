(* Tests for Mcsim_ir: branch models, memory streams, IL, programs and
   profiles. *)

module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Profile = Mcsim_ir.Profile
module Branch_model = Mcsim_ir.Branch_model
module Mem_stream = Mcsim_ir.Mem_stream
module Op = Mcsim_isa.Op_class
module Rng = Mcsim_util.Rng
module Builder = Program.Builder

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ------------------------- branch models --------------------------- *)

let bm_loop () =
  let st = Branch_model.init (Branch_model.Loop { trip = 4 }) in
  let rng = Rng.create 1 in
  let outcomes = List.init 8 (fun _ -> Branch_model.next st rng) in
  check Alcotest.(list bool) "taken 3, not-taken 1, repeating"
    [ true; true; true; false; true; true; true; false ]
    outcomes

let bm_loop_trip1 () =
  let st = Branch_model.init (Branch_model.Loop { trip = 1 }) in
  let rng = Rng.create 1 in
  check Alcotest.bool "trip 1 never taken" false (Branch_model.next st rng)

let bm_pattern () =
  let st = Branch_model.init (Branch_model.Pattern [| true; false; false |]) in
  let rng = Rng.create 1 in
  let outcomes = List.init 6 (fun _ -> Branch_model.next st rng) in
  check Alcotest.(list bool) "periodic" [ true; false; false; true; false; false ] outcomes

let bm_taken_prob_extremes () =
  let rng = Rng.create 2 in
  let always = Branch_model.init (Branch_model.Taken_prob 1.0) in
  let never = Branch_model.init (Branch_model.Taken_prob 0.0) in
  for _ = 1 to 50 do
    check Alcotest.bool "always taken" true (Branch_model.next always rng);
    check Alcotest.bool "never taken" false (Branch_model.next never rng)
  done

let bm_correlated_repeats () =
  let st =
    Branch_model.init (Branch_model.Correlated { p_repeat = 1.0; p_taken_init = 1.0 })
  in
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    check Alcotest.bool "p_repeat 1.0 repeats forever" true (Branch_model.next st rng)
  done

let bm_reset () =
  let st = Branch_model.init (Branch_model.Loop { trip = 3 }) in
  let rng = Rng.create 4 in
  let first = List.init 5 (fun _ -> Branch_model.next st rng) in
  Branch_model.reset st;
  let second = List.init 5 (fun _ -> Branch_model.next st rng) in
  check Alcotest.(list bool) "reset restarts the pattern" first second

let bm_validate () =
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Branch_model: Taken_prob out of [0,1]") (fun () ->
      Branch_model.validate (Branch_model.Taken_prob 1.5));
  Alcotest.check_raises "trip 0" (Invalid_argument "Branch_model: Loop trip < 1") (fun () ->
      Branch_model.validate (Branch_model.Loop { trip = 0 }));
  Alcotest.check_raises "empty pattern" (Invalid_argument "Branch_model: empty Pattern")
    (fun () -> Branch_model.validate (Branch_model.Pattern [||]))

(* -------------------------- mem streams ---------------------------- *)

let ms_fixed () =
  let st = Mem_stream.init (Mem_stream.Fixed { addr = 4096 }) in
  let rng = Rng.create 1 in
  for _ = 1 to 5 do
    check Alcotest.int "fixed address" 4096 (Mem_stream.next st rng)
  done

let ms_stride_wraps () =
  let st = Mem_stream.init (Mem_stream.Stride { base = 100; stride = 8; count = 3 }) in
  let rng = Rng.create 1 in
  let addrs = List.init 7 (fun _ -> Mem_stream.next st rng) in
  check Alcotest.(list int) "wraps after count" [ 100; 108; 116; 100; 108; 116; 100 ] addrs

let ms_uniform_range () =
  let st = Mem_stream.init (Mem_stream.Uniform { base = 1000; size = 80 }) in
  let rng = Rng.create 2 in
  for _ = 1 to 1000 do
    let a = Mem_stream.next st rng in
    if a < 1000 || a >= 1080 then Alcotest.failf "out of region: %d" a;
    if a mod 8 <> 0 then Alcotest.failf "unaligned: %d" a
  done

let ms_mixed_regions () =
  let st =
    Mem_stream.init
      (Mem_stream.Mixed
         { hot_base = 0; hot_size = 64; cold_base = 10_000; cold_size = 64; p_hot = 0.5 })
  in
  let rng = Rng.create 3 in
  let hot = ref 0 and cold = ref 0 in
  for _ = 1 to 2000 do
    let a = Mem_stream.next st rng in
    if a < 64 then incr hot
    else if a >= 10_000 && a < 10_064 then incr cold
    else Alcotest.failf "outside both regions: %d" a
  done;
  check Alcotest.bool "both regions hit" true (!hot > 500 && !cold > 500)

let ms_reset () =
  let st = Mem_stream.init (Mem_stream.Stride { base = 0; stride = 4; count = 10 }) in
  let rng = Rng.create 4 in
  ignore (Mem_stream.next st rng);
  ignore (Mem_stream.next st rng);
  Mem_stream.reset st;
  check Alcotest.int "reset restarts stride" 0 (Mem_stream.next st rng)

let ms_validate () =
  Alcotest.check_raises "bad stride" (Invalid_argument "Mem_stream: bad Stride") (fun () ->
      Mem_stream.validate (Mem_stream.Stride { base = 0; stride = 8; count = 0 }));
  Alcotest.check_raises "bad uniform" (Invalid_argument "Mem_stream: bad Uniform") (fun () ->
      Mem_stream.validate (Mem_stream.Uniform { base = 0; size = 4 }))

(* ------------------------------ IL --------------------------------- *)

let il_shape_checks () =
  Alcotest.check_raises "load without stream"
    (Invalid_argument "Il.instr: memory op without stream") (fun () ->
      ignore (Il.instr ~op:Op.Load ~srcs:[ 0 ] ~dst:1 ()));
  Alcotest.check_raises "stream on alu"
    (Invalid_argument "Il.instr: stream on non-memory op") (fun () ->
      ignore
        (Il.instr ~op:Op.Int_other ~srcs:[ 0 ] ~dst:1
           ~mem:(Mem_stream.Fixed { addr = 0 }) ()))

let il_lr_lists () =
  let i = Il.instr ~op:Op.Int_other ~srcs:[ 3; 4 ] ~dst:5 () in
  check Alcotest.(list int) "reads" [ 3; 4 ] (Il.lrs_read i);
  check Alcotest.(list int) "writes" [ 5 ] (Il.lrs_written i);
  check Alcotest.(list int) "all" [ 3; 4; 5 ] (Il.lrs_of_instr i)

(* --------------------------- programs ------------------------------ *)

let tiny_program () =
  let b = Builder.create ~name:"tiny" in
  let x = Builder.fresh_lr b ~name:"x" Il.Bank_int in
  let y = Builder.fresh_lr b ~name:"y" Il.Bank_int in
  let blk1 = Builder.reserve_block b in
  let exit_blk = Builder.add_block b [] Il.Halt in
  Builder.define_block b blk1
    [ Il.instr ~op:Op.Int_other ~srcs:[] ~dst:x ();
      Il.instr ~op:Op.Int_other ~srcs:[ x ] ~dst:y () ]
    (Il.Cond
       { src = Some y; model = Branch_model.Loop { trip = 3 }; taken = blk1;
         not_taken = exit_blk });
  Builder.finish b ~entry:blk1

let prog_builder_basics () =
  let p = tiny_program () in
  check Alcotest.int "blocks" 2 (Program.num_blocks p);
  check Alcotest.int "lrs (sp, gp, x, y)" 4 (Program.num_lrs p);
  check Alcotest.string "lr name" "x" (Program.lr_name p 2);
  check Alcotest.int "static instrs (2 body + cond)" 3 (Program.num_static_instrs p)

let prog_builder_errors () =
  let b = Builder.create ~name:"bad" in
  let blk = Builder.reserve_block b in
  Alcotest.check_raises "undefined block"
    (Invalid_argument "Builder.finish: block 0 undefined") (fun () ->
      ignore (Builder.finish b ~entry:blk));
  Builder.define_block b blk [] Il.Halt;
  Alcotest.check_raises "double define"
    (Invalid_argument "Builder.define_block: already defined") (fun () ->
      Builder.define_block b blk [] Il.Halt)

let prog_validate_bank () =
  let b = Builder.create ~name:"bank" in
  let f = Builder.fresh_lr b ~name:"f" Il.Bank_fp in
  let g = Builder.fresh_lr b ~name:"g" Il.Bank_fp in
  (* An integer add over fp live ranges must be rejected. *)
  ignore (Builder.add_block b [ Il.instr ~op:Op.Int_other ~srcs:[ f ] ~dst:g () ] Il.Halt);
  (try
     ignore (Builder.finish b ~entry:0);
     Alcotest.fail "expected bank violation"
   with Invalid_argument msg ->
     check Alcotest.bool "mentions bank" true
       (String.length msg > 0
       && String.index_opt msg 'b' <> None))

let prog_validate_target () =
  let b = Builder.create ~name:"target" in
  ignore (Builder.add_block b [] (Il.Jump 7));
  try
    ignore (Builder.finish b ~entry:0);
    Alcotest.fail "expected bad target"
  with Invalid_argument _ -> ()

let prog_cfg_utils () =
  let p = tiny_program () in
  check Alcotest.(list int) "succ of 0" [ 0; 1 ] (Program.successors p 0);
  check Alcotest.(list int) "preds of 1" [ 0 ] (Program.preds p).(1);
  check Alcotest.(list int) "preds of 0 (self loop)" [ 0 ] (Program.preds p).(0);
  check Alcotest.(list int) "rpo" [ 0; 1 ] (Program.reverse_postorder p);
  check Alcotest.bool "all reachable" true (Array.for_all Fun.id (Program.reachable p))

let prog_layout () =
  let p = tiny_program () in
  let l = Program.layout p in
  check Alcotest.int "block 0 at pc 0" 0 l.Program.block_pc.(0);
  check Alcotest.int "block 0 has 3 slots" 3 l.Program.block_slots.(0);
  check Alcotest.int "terminator pc" 2 l.Program.term_pc.(0);
  check Alcotest.int "block 1 follows" 3 l.Program.block_pc.(1);
  check Alcotest.int "halt emits no slot" (-1) l.Program.term_pc.(1)

let profile_basics () =
  let pr = Profile.create ~num_blocks:3 in
  Profile.bump pr 1;
  Profile.bump pr 1;
  Profile.bump pr 2;
  check (Alcotest.float 1e-9) "count" 2.0 (Profile.count pr 1);
  check (Alcotest.float 1e-9) "total" 3.0 (Profile.total pr);
  check Alcotest.int "blocks" 3 (Profile.num_blocks pr);
  let pr2 = Profile.of_counts [| 5.0; 1.0 |] in
  check (Alcotest.float 1e-9) "of_counts" 5.0 (Profile.count pr2 0)

(* qcheck: on random synthetic programs, preds and successors agree. *)
let prog_edges_consistent =
  QCheck.Test.make ~name:"preds/successors are mutually consistent" ~count:30
    QCheck.(int_bound 1000)
    (fun seed ->
      let params =
        { Mcsim_workload.Synth.name = "edge"; seed;
          n_segments = 4; p_diamond = 0.5; p_inner_loop = 0.2;
          inner_trip_min = 2; inner_trip_max = 5; outer_trip = 10;
          block_min = 1; block_max = 3;
          int_pool = 6; fp_pool = 0; n_communities = 2; p_cross_community = 0.2;
          mix =
            { Mcsim_workload.Synth.w_int_other = 1.0; w_int_multiply = 0.0; w_fp_other = 0.0;
              w_fp_divide = 0.0; w_load = 0.0; w_store = 0.0 };
          chain_bias = 0.5; fp64_div_frac = 0.0; mem_fp_frac = 0.0; sp_base_frac = 0.0;
          mem_kinds = [ (1.0, Mcsim_workload.Synth.Stack_slots { slots = 4 }) ];
          branch_style = Mcsim_workload.Synth.Biased 0.5 }
      in
      let p = Mcsim_workload.Synth.generate params in
      let preds = Program.preds p in
      let ok = ref true in
      for b = 0 to Program.num_blocks p - 1 do
        List.iter
          (fun s -> if not (List.mem b preds.(s)) then ok := false)
          (Program.successors p b);
        List.iter
          (fun pr -> if not (List.mem b (Program.successors p pr)) then ok := false)
          preds.(b)
      done;
      !ok)

let suite =
  ( "ir",
    [ case "branch model: loop trip semantics" bm_loop;
      case "branch model: trip-1 loop" bm_loop_trip1;
      case "branch model: periodic pattern" bm_pattern;
      case "branch model: probability extremes" bm_taken_prob_extremes;
      case "branch model: fully correlated" bm_correlated_repeats;
      case "branch model: reset" bm_reset;
      case "branch model: validation" bm_validate;
      case "mem stream: fixed" ms_fixed;
      case "mem stream: stride wraps" ms_stride_wraps;
      case "mem stream: uniform range and alignment" ms_uniform_range;
      case "mem stream: mixed regions" ms_mixed_regions;
      case "mem stream: reset" ms_reset;
      case "mem stream: validation" ms_validate;
      case "il: shape checks" il_shape_checks;
      case "il: lr lists" il_lr_lists;
      case "program: builder basics" prog_builder_basics;
      case "program: builder errors" prog_builder_errors;
      case "program: bank validation" prog_validate_bank;
      case "program: target validation" prog_validate_target;
      case "program: cfg utilities" prog_cfg_utils;
      case "program: layout" prog_layout;
      case "profile: counts" profile_basics;
      QCheck_alcotest.to_alcotest prog_edges_consistent ] )
