(* Integration tests for the Mcsim facade: the scenario walkthroughs
   (Figures 2-5), Figure 6, Table 1, the experiment harness, and the
   reduced Table-2 shape. *)

module Machine = Mcsim_cluster.Machine
module Scenario = Mcsim.Scenario
module Spec92 = Mcsim_workload.Spec92

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* --------------------------- scenarios ----------------------------- *)

let scenario_classification () =
  List.iteri
    (fun i o ->
      check Alcotest.int "scenario number" (i + 1)
        (Mcsim_cluster.Distribution.scenario o.Scenario.plan))
    (Scenario.all ())

let scenario1_single_copy () =
  let o = Scenario.run 1 in
  check Alcotest.bool "single copy issued" true
    (Scenario.issue_cycle o Machine.Single_copy <> None);
  check Alcotest.bool "no slave" true (Scenario.issue_cycle o Machine.Slave_copy = None)

let scenario2_ordering () =
  (* Figure 2: the slave issues first, the master one cycle later. *)
  let o = Scenario.run 2 in
  let slave = Option.get (Scenario.issue_cycle o Machine.Slave_copy) in
  let master = Option.get (Scenario.issue_cycle o Machine.Master_copy) in
  check Alcotest.int "master issues the cycle after the slave" (slave + 1) master

let scenario3_ordering () =
  (* Figure 3: the master issues first; for a one-cycle add the slave
     issues exactly one cycle later. *)
  let o = Scenario.run 3 in
  let master = Option.get (Scenario.issue_cycle o Machine.Master_copy) in
  let slave = Option.get (Scenario.issue_cycle o Machine.Slave_copy) in
  check Alcotest.int "slave one cycle after master" (master + 1) slave;
  (* The slave writes the destination register. *)
  check Alcotest.bool "slave writeback present" true
    (List.mem_assoc Machine.Slave_copy (Scenario.writeback_cycles o))

let scenario4_both_write () =
  let o = Scenario.run 4 in
  let wbs = Scenario.writeback_cycles o in
  check Alcotest.bool "master writes its copy" true (List.mem_assoc Machine.Master_copy wbs);
  check Alcotest.bool "slave writes its copy" true (List.mem_assoc Machine.Slave_copy wbs)

let scenario5_suspend_wake () =
  let o = Scenario.run 5 in
  let has_suspend =
    List.exists (function Machine.Ev_suspend _ -> true | _ -> false) o.Scenario.events
  in
  let has_wakeup =
    List.exists (function Machine.Ev_wakeup _ -> true | _ -> false) o.Scenario.events
  in
  check Alcotest.bool "suspend observed" true has_suspend;
  check Alcotest.bool "wakeup observed" true has_wakeup;
  (* The slave issues once, before the master. *)
  let slave = Option.get (Scenario.issue_cycle o Machine.Slave_copy) in
  let master = Option.get (Scenario.issue_cycle o Machine.Master_copy) in
  check Alcotest.bool "slave first" true (slave < master)

let scenario_forward_events () =
  let o2 = Scenario.run 2 in
  check Alcotest.bool "operand forward event" true
    (List.exists
       (function Machine.Ev_operand_forward _ -> true | _ -> false)
       o2.Scenario.events);
  let o3 = Scenario.run 3 in
  check Alcotest.bool "result forward event" true
    (List.exists
       (function Machine.Ev_result_forward _ -> true | _ -> false)
       o3.Scenario.events)

let scenario_render_nonempty () =
  List.iter
    (fun o ->
      check Alcotest.bool "render has content" true
        (String.length (Scenario.render o) > 80))
    (Scenario.all ())

let scenario_bad_number () =
  Alcotest.check_raises "scenario 6" (Invalid_argument "Scenario.run: 6 (want 1-5)")
    (fun () -> ignore (Scenario.run 6))

(* ---------------------------- figure 6 ----------------------------- *)

let figure6_partition_sane () =
  let o = Mcsim.Figure6.run () in
  let prog = o.Mcsim.Figure6.program in
  (* S (the stack pointer) is never partitioned. *)
  check Alcotest.bool "sp is a global candidate" true
    o.Mcsim.Figure6.partition.Mcsim_compiler.Partition.global_candidate.(prog.Mcsim_ir.Program.sp)

let figure6_profile () =
  let prof = Mcsim.Figure6.profile () in
  check (Alcotest.float 1e-9) "block 4 estimate" 100.0 (Mcsim_ir.Profile.count prof 3)

(* ----------------------------- table 1 ----------------------------- *)

let table1_contents () =
  let s = Mcsim.Config.table1 () in
  List.iter
    (fun needle ->
      check Alcotest.bool ("table1 mentions " ^ needle) true
        (let re = Str.regexp_string needle in
         try ignore (Str.search_forward re s 0); true with Not_found -> false))
    [ "single"; "dual"; "8/16"; "latency" ]

(* ------------------------- experiment ------------------------------ *)

let experiment_consistency () =
  let prog = Spec92.program Spec92.Gcc1 in
  let c = Mcsim.Experiment.run_benchmark ~max_instrs:8_000 prog in
  check Alcotest.string "benchmark name" "gcc1" c.Mcsim.Experiment.benchmark;
  check Alcotest.int "trace length" 8_000 c.Mcsim.Experiment.trace_instrs;
  check Alcotest.int "single retires everything" 8_000
    c.Mcsim.Experiment.single.Machine.retired;
  List.iter
    (fun r ->
      check Alcotest.int "dual retires everything" 8_000
        r.Mcsim.Experiment.dual.Machine.retired;
      check Alcotest.bool "speedup finite" true (Float.is_finite r.Mcsim.Experiment.speedup_pct))
    c.Mcsim.Experiment.runs;
  check Alcotest.bool "none run present" true
    (Mcsim.Experiment.speedup_of c "none" <> None);
  check Alcotest.bool "local run present" true
    (Mcsim.Experiment.speedup_of c "local" <> None);
  check Alcotest.bool "unknown scheduler absent" true
    (Mcsim.Experiment.speedup_of c "zzz" = None)

let experiment_static_counts () =
  let prog = Spec92.program Spec92.Compress in
  let c = Mcsim.Experiment.run_benchmark ~max_instrs:5_000 prog in
  List.iter
    (fun r ->
      check Alcotest.bool "static counts positive" true
        (r.Mcsim.Experiment.static_single > 0 && r.Mcsim.Experiment.static_dual >= 0))
    c.Mcsim.Experiment.runs

(* -------------------------- table 2 shape -------------------------- *)

let table2_gcc1_shape () =
  (* One benchmark at a moderate trace length: the local scheduler must
     beat the native binary on the dual-cluster machine, and both must be
     slower than the single-cluster machine. *)
  let rows = Mcsim.Table2.run ~max_instrs:40_000 ~benchmarks:[ Spec92.Gcc1 ] () in
  match rows with
  | [ r ] ->
    check Alcotest.bool "none is a slowdown" true (r.Mcsim.Table2.none_pct < 0.0);
    check Alcotest.bool
      (Printf.sprintf "local (%.1f) beats none (%.1f)" r.Mcsim.Table2.local_pct
         r.Mcsim.Table2.none_pct)
      true
      (r.Mcsim.Table2.local_pct > r.Mcsim.Table2.none_pct)
  | _ -> Alcotest.fail "expected one row"

let table2_ora_inversion () =
  let rows = Mcsim.Table2.run ~max_instrs:40_000 ~benchmarks:[ Spec92.Ora ] () in
  match rows with
  | [ r ] ->
    check Alcotest.bool
      (Printf.sprintf "ora: local (%.1f) worse than none (%.1f)" r.Mcsim.Table2.local_pct
         r.Mcsim.Table2.none_pct)
      true
      (r.Mcsim.Table2.local_pct < r.Mcsim.Table2.none_pct)
  | _ -> Alcotest.fail "expected one row"

let table2_render () =
  let rows =
    [ { Mcsim.Table2.benchmark = "gcc1"; none_pct = -15.0; local_pct = -10.0;
        single_cycles = 100; none_cycles = 115; local_cycles = 110; none_replays = 0;
        local_replays = 0 } ]
  in
  let s = Mcsim.Table2.render rows in
  check Alcotest.bool "mentions the benchmark" true
    (try ignore (Str.search_forward (Str.regexp_string "gcc1") s 0); true
     with Not_found -> false);
  check Alcotest.bool "mentions the paper value" true
    (try ignore (Str.search_forward (Str.regexp_string "-15.0") s 0); true
     with Not_found -> false)

let table2_paper_values () =
  check Alcotest.int "six rows" 6 (List.length Mcsim.Table2.paper);
  check Alcotest.bool "compress local is the only positive" true
    (List.for_all
       (fun (n, _, local) -> if n = "compress" then local > 0.0 else local < 0.0)
       Mcsim.Table2.paper)

(* -------------------------- cycle time ----------------------------- *)

let cycle_time_analysis () =
  let rows =
    [ { Mcsim.Table2.benchmark = "x"; none_pct = -20.0; local_pct = -20.0;
        single_cycles = 1000; none_cycles = 1200; local_cycles = 1200; none_replays = 0;
        local_replays = 0 } ]
  in
  match Mcsim.Cycle_time.analyse rows with
  | [ n ] ->
    check Alcotest.bool "0.35um: 20% slowdown loses" true (n.Mcsim.Cycle_time.net_035_pct < 0.0);
    check Alcotest.bool "0.18um: 20% slowdown wins" true (n.Mcsim.Cycle_time.net_018_pct > 0.0)
  | _ -> Alcotest.fail "one row expected"

let cycle_time_break_even_text () =
  let s = Mcsim.Cycle_time.break_even_example () in
  check Alcotest.bool "mentions 20%" true
    (try ignore (Str.search_forward (Str.regexp_string "20%") s 0); true
     with Not_found -> false)

(* --------------------------- ablations ----------------------------- *)

let ablation_buffers () =
  let s = Mcsim.Ablation.transfer_buffers ~max_instrs:6_000 ~sizes:[ 4; 8 ] Spec92.Gcc1 in
  check Alcotest.int "two points" 2 (List.length s.Mcsim.Ablation.points);
  List.iter
    (fun p -> check Alcotest.bool "cycles positive" true (p.Mcsim.Ablation.dual_cycles > 0))
    s.Mcsim.Ablation.points;
  check Alcotest.bool "render nonempty" true (String.length (Mcsim.Ablation.render s) > 40)

let ablation_partitioners () =
  let s = Mcsim.Ablation.partitioners ~max_instrs:6_000 Spec92.Compress in
  check Alcotest.int "four partitioners" 4 (List.length s.Mcsim.Ablation.points)

let suite =
  ( "core",
    [ case "scenarios: classification 1-5" scenario_classification;
      case "scenario 1: single copy only" scenario1_single_copy;
      case "scenario 2: master after slave (Figure 2)" scenario2_ordering;
      case "scenario 3: slave after master (Figure 3)" scenario3_ordering;
      case "scenario 4: both copies written (Figure 4)" scenario4_both_write;
      case "scenario 5: suspend and wake (Figure 5)" scenario5_suspend_wake;
      case "scenarios: forwarding events" scenario_forward_events;
      case "scenarios: rendering" scenario_render_nonempty;
      case "scenarios: bad number" scenario_bad_number;
      case "figure 6: partition sanity" figure6_partition_sane;
      case "figure 6: profile estimates" figure6_profile;
      case "table 1: contents" table1_contents;
      case "experiment: consistency" experiment_consistency;
      case "experiment: static counts" experiment_static_counts;
      case "table 2: gcc1 shape" table2_gcc1_shape;
      case "table 2: ora inversion" table2_ora_inversion;
      case "table 2: rendering" table2_render;
      case "table 2: paper values" table2_paper_values;
      case "cycle time: analysis signs" cycle_time_analysis;
      case "cycle time: break-even text" cycle_time_break_even_text;
      case "ablation: transfer buffers" ablation_buffers;
      case "ablation: partitioners" ablation_partitioners ] )
