(* Tests for the textual machine-program format: round trips, hand-written
   sources, and error reporting. *)

module Mach_text = Mcsim_compiler.Mach_text
module Mach_prog = Mcsim_compiler.Mach_prog
module Pipeline = Mcsim_compiler.Pipeline
module Spec92 = Mcsim_workload.Spec92
module Synth = Mcsim_workload.Synth

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let compile b =
  let prog = Synth.generate { (Spec92.params b) with Synth.outer_trip = 10 } in
  let profile = Mcsim_trace.Walker.profile prog in
  (Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog).Pipeline.mach

let roundtrip_benchmarks () =
  List.iter
    (fun b ->
      let m = compile b in
      let text = Mach_text.print m in
      match Mach_text.parse text with
      | Error e -> Alcotest.failf "%s failed to parse: %s" (Spec92.name b) e
      | Ok m' ->
        check Alcotest.bool (Spec92.name b ^ " round trips") true (Mach_text.equal m m');
        check Alcotest.string (Spec92.name b ^ " print is a fixpoint") text
          (Mach_text.print m'))
    Spec92.all

let roundtrip_preserves_traces () =
  let m = compile Spec92.Compress in
  match Mach_text.parse (Mach_text.print m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    let ta = Mcsim_trace.Walker.trace ~seed:4 ~max_instrs:3_000 m in
    let tb = Mcsim_trace.Walker.trace ~seed:4 ~max_instrs:3_000 m' in
    check Alcotest.int "same trace length" (Array.length ta) (Array.length tb);
    Array.iteri
      (fun i d ->
        check Alcotest.int "same pc" d.Mcsim_isa.Instr.pc tb.(i).Mcsim_isa.Instr.pc;
        check Alcotest.(option int) "same address" d.Mcsim_isa.Instr.mem_addr
          tb.(i).Mcsim_isa.Instr.mem_addr)
      ta

let hand_written () =
  let src =
    {|program "kernel" entry 1

block 0:
  halt
block 1:
  r2 <- int_other r2, r4
  f0 <- load r30 [stride 0x10000 +8 x4096]
  store f0, r30 [fixed 0x2000]
  cond r2 loop(100) -> 1, 0
|}
  in
  match Mach_text.parse src with
  | Error e -> Alcotest.fail e
  | Ok m ->
    check Alcotest.string "name" "kernel" m.Mach_prog.name;
    check Alcotest.int "entry" 1 m.Mach_prog.entry;
    check Alcotest.int "blocks" 2 (Mach_prog.num_blocks m);
    check Alcotest.int "static instrs (3 body + cond)" 4 (Mach_prog.static_instrs m);
    (* And it runs. *)
    let tr = Mcsim_trace.Walker.trace ~max_instrs:500 m in
    let r = Mcsim_cluster.Machine.run (Mcsim_cluster.Machine.dual_cluster ()) tr in
    check Alcotest.int "trace runs" (Array.length tr) r.Mcsim_cluster.Machine.retired

let all_models_and_streams () =
  let src =
    {|program "models" entry 0
block 0:
  r0 <- load r30 [uniform 0x1000 4096]
  r2 <- load r30 [mixed 0x0 64 0x4000 8192 0.25]
  f2 <- fp_divide64 f0, f0
  cond bernoulli(0.25) -> 0, 1
block 1:
  r4 <- int_multiply r0, r2
  cond r4 pattern(TNT) -> 2, 0
block 2:
  control
  cond r4 correlated(0.7,0.5) -> 2, 3
block 3:
  halt
|}
  in
  match Mach_text.parse src with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let text = Mach_text.print m in
    (match Mach_text.parse text with
    | Error e -> Alcotest.fail ("reparse: " ^ e)
    | Ok m' -> check Alcotest.bool "round trips" true (Mach_text.equal m m'))

let parse_errors () =
  let bad src needle =
    match Mach_text.parse src with
    | Ok _ -> Alcotest.failf "expected a parse error (%s)" needle
    | Error e ->
      check Alcotest.bool
        (Printf.sprintf "error %S mentions %S" e needle)
        true
        (try ignore (Str.search_forward (Str.regexp_string needle) e 0); true
         with Not_found -> false)
  in
  bad "program \"x\" entry 0\nblock 0:\n  r9 <- blah r1\n  halt\n" "opcode";
  bad "program \"x\" entry 0\nblock 0:\n  r99 <- int_other r1\n  halt\n" "register";
  bad "program \"x\" entry 0\nblock 0:\n  r2 <- int_other r1\n" "terminator";
  bad "program \"x\" entry 0\n  r2 <- int_other r1\n" "outside";
  bad "program \"x\" entry 0\nblock 0:\n  jump -> 7\n" "target";
  bad "program \"x\" entry 0\nblock 5:\n  halt\n" "consecutive"

let suite =
  ( "format",
    [ case "round trips all six benchmarks" roundtrip_benchmarks;
      case "round trip preserves traces" roundtrip_preserves_traces;
      case "hand-written source" hand_written;
      case "all models and streams" all_models_and_streams;
      case "parse errors" parse_errors ] )
