(* Tests for Mcsim_cpu: the rename/scoreboard register file and the
   functional-unit tracker. *)

module Regfile = Mcsim_cpu.Regfile
module Fu = Mcsim_cpu.Fu
module Reg = Mcsim_isa.Reg
module Op = Mcsim_isa.Op_class
module Issue_rules = Mcsim_isa.Issue_rules

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* --------------------------- regfile ------------------------------- *)

let rf_initial_state () =
  let rf = Regfile.create ~num_phys:64 in
  check Alcotest.int "32 int free initially" 32 (Regfile.free_count rf Regfile.B_int);
  check Alcotest.int "32 fp free initially" 32 (Regfile.free_count rf Regfile.B_fp);
  let p = Regfile.lookup rf (Reg.int_reg 5) in
  check Alcotest.int "initial mapping ready at 0" 0 (Regfile.ready_at rf Regfile.B_int p)

let rf_rename_cycle () =
  let rf = Regfile.create ~num_phys:64 in
  let r5 = Reg.int_reg 5 in
  let old = Regfile.lookup rf r5 in
  let np, prev = Option.get (Regfile.rename rf r5) in
  check Alcotest.int "prev is the old mapping" old prev;
  check Alcotest.int "lookup follows rename" np (Regfile.lookup rf r5);
  check Alcotest.int "not ready until producer issues" max_int
    (Regfile.ready_at rf Regfile.B_int np);
  Regfile.set_ready rf Regfile.B_int np 7;
  check Alcotest.int "ready cycle set" 7 (Regfile.ready_at rf Regfile.B_int np);
  (* Retire: the previous mapping is released. *)
  Regfile.release rf Regfile.B_int prev;
  check Alcotest.int "free count restored" 32 (Regfile.free_count rf Regfile.B_int)

let rf_undo_rename () =
  let rf = Regfile.create ~num_phys:64 in
  let r2 = Reg.int_reg 2 in
  let old = Regfile.lookup rf r2 in
  let np, prev = Option.get (Regfile.rename rf r2) in
  Regfile.undo_rename rf r2 ~new_phys:np ~prev_phys:prev;
  check Alcotest.int "mapping restored" old (Regfile.lookup rf r2);
  check Alcotest.int "physical register freed" 32 (Regfile.free_count rf Regfile.B_int)

let rf_exhaustion () =
  let rf = Regfile.create ~num_phys:33 in
  (* One spare physical register per bank. *)
  let r0 = Reg.int_reg 0 in
  check Alcotest.bool "first rename ok" true (Regfile.rename rf r0 <> None);
  check Alcotest.(option (pair int int)) "second rename fails" None
    (Regfile.rename rf (Reg.int_reg 1))

let rf_banks_independent () =
  let rf = Regfile.create ~num_phys:34 in
  ignore (Option.get (Regfile.rename rf (Reg.int_reg 0)));
  ignore (Option.get (Regfile.rename rf (Reg.int_reg 1)));
  check Alcotest.int "int exhausted" 0 (Regfile.free_count rf Regfile.B_int);
  check Alcotest.int "fp untouched" 2 (Regfile.free_count rf Regfile.B_fp);
  check Alcotest.bool "fp rename still ok" true (Regfile.rename rf (Reg.fp_reg 0) <> None)

let rf_zero_rejected () =
  let rf = Regfile.create ~num_phys:64 in
  Alcotest.check_raises "lookup zero" (Invalid_argument "Regfile.lookup: zero register")
    (fun () -> ignore (Regfile.lookup rf Reg.zero_int));
  Alcotest.check_raises "rename zero" (Invalid_argument "Regfile.rename: zero register")
    (fun () -> ignore (Regfile.rename rf Reg.zero_fp))

let rf_bank_of_reg () =
  check Alcotest.bool "int reg" true (Regfile.bank_of_reg (Reg.int_reg 3) = Regfile.B_int);
  check Alcotest.bool "fp reg" true (Regfile.bank_of_reg (Reg.fp_reg 3) = Regfile.B_fp)

(* ------------------------------ fu --------------------------------- *)

let fu_budget_resets () =
  let fu = Fu.create Issue_rules.dual_per_cluster in
  Fu.new_cycle fu;
  for _ = 1 to 4 do Fu.issue fu ~cycle:0 Op.Int_other done;
  check Alcotest.bool "budget exhausted" false (Fu.can_issue fu ~cycle:0 Op.Int_other);
  Fu.new_cycle fu;
  check Alcotest.bool "new cycle restores budget" true (Fu.can_issue fu ~cycle:1 Op.Int_other);
  check Alcotest.int "cumulative count" 4 (Fu.total_issued fu);
  check Alcotest.int "per class" 4 (Fu.issued_of_class fu Op.Int_other)

let fu_divider_occupancy () =
  (* dual cluster: fp_divide cap 2 => two dividers. *)
  let fu = Fu.create Issue_rules.dual_per_cluster in
  Fu.new_cycle fu;
  Fu.issue fu ~cycle:0 (Op.Fp_divide { bits64 = false });
  Fu.issue fu ~cycle:0 (Op.Fp_divide { bits64 = false });
  Fu.new_cycle fu;
  check Alcotest.bool "both dividers busy next cycle" false
    (Fu.can_issue fu ~cycle:1 (Op.Fp_divide { bits64 = false }));
  check Alcotest.bool "still busy at 7" false
    (Fu.can_issue fu ~cycle:7 (Op.Fp_divide { bits64 = false }));
  check Alcotest.bool "free again at 8" true
    (Fu.can_issue fu ~cycle:8 (Op.Fp_divide { bits64 = false }))

let fu_divider_64bit () =
  let fu = Fu.create Issue_rules.single_cluster in
  Fu.new_cycle fu;
  Fu.issue fu ~cycle:0 (Op.Fp_divide { bits64 = true });
  Fu.new_cycle fu;
  (* Single cluster has four dividers; one busy leaves three. *)
  check Alcotest.bool "other dividers available" true
    (Fu.can_issue fu ~cycle:1 (Op.Fp_divide { bits64 = true }));
  Fu.issue fu ~cycle:1 (Op.Fp_divide { bits64 = true });
  Fu.issue fu ~cycle:1 (Op.Fp_divide { bits64 = true });
  Fu.issue fu ~cycle:1 (Op.Fp_divide { bits64 = true });
  Fu.new_cycle fu;
  check Alcotest.bool "all four busy" false
    (Fu.can_issue fu ~cycle:2 (Op.Fp_divide { bits64 = true }));
  check Alcotest.bool "first frees at 16" true
    (Fu.can_issue fu ~cycle:16 (Op.Fp_divide { bits64 = true }))

let fu_clear_divider () =
  let fu = Fu.create Issue_rules.dual_per_cluster in
  Fu.new_cycle fu;
  Fu.issue fu ~cycle:0 (Op.Fp_divide { bits64 = true });
  Fu.clear_divider fu;
  Fu.new_cycle fu;
  check Alcotest.bool "cleared divider is free" true
    (Fu.can_issue fu ~cycle:1 (Op.Fp_divide { bits64 = true }))

let fu_issue_over_budget_raises () =
  let fu = Fu.create Issue_rules.dual_per_cluster in
  Fu.new_cycle fu;
  for _ = 1 to 2 do Fu.issue fu ~cycle:0 Op.Load done;
  Alcotest.check_raises "over budget" (Invalid_argument "Fu.issue: cannot issue") (fun () ->
      Fu.issue fu ~cycle:0 Op.Store)

let fu_divide_widths_pooled () =
  let fu = Fu.create Issue_rules.single_cluster in
  Fu.new_cycle fu;
  Fu.issue fu ~cycle:0 (Op.Fp_divide { bits64 = false });
  Fu.issue fu ~cycle:0 (Op.Fp_divide { bits64 = true });
  check Alcotest.int "both widths counted together" 2
    (Fu.issued_of_class fu (Op.Fp_divide { bits64 = false }))

let suite =
  ( "cpu",
    [ case "regfile: initial state" rf_initial_state;
      case "regfile: rename/ready/release cycle" rf_rename_cycle;
      case "regfile: undo rename" rf_undo_rename;
      case "regfile: freelist exhaustion" rf_exhaustion;
      case "regfile: banks independent" rf_banks_independent;
      case "regfile: zero registers rejected" rf_zero_rejected;
      case "regfile: bank_of_reg" rf_bank_of_reg;
      case "fu: per-cycle budget" fu_budget_resets;
      case "fu: divider occupancy" fu_divider_occupancy;
      case "fu: 64-bit divides and divider count" fu_divider_64bit;
      case "fu: clear_divider" fu_clear_divider;
      case "fu: over budget raises" fu_issue_over_budget_raises;
      case "fu: divide widths pooled in stats" fu_divide_widths_pooled ] )
