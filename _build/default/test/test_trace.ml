(* Tests for Mcsim_trace: the profiling walk and the trace walker. *)

module Walker = Mcsim_trace.Walker
module Profile = Mcsim_ir.Profile
module Program = Mcsim_ir.Program
module Il = Mcsim_ir.Il
module Builder = Program.Builder
module Op = Mcsim_isa.Op_class
module Instr = Mcsim_isa.Instr
module Pipeline = Mcsim_compiler.Pipeline
module Mach_prog = Mcsim_compiler.Mach_prog
module Spec92 = Mcsim_workload.Spec92
module Synth = Mcsim_workload.Synth

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* A two-block loop with a known trip count. *)
let loop_program trip =
  let b = Builder.create ~name:"loop" in
  let x = Builder.fresh_lr b ~name:"x" Il.Bank_int in
  let body = Builder.reserve_block b in
  let exit_blk = Builder.add_block b [] Il.Halt in
  Builder.define_block b body
    [ Il.instr ~op:Op.Int_other ~srcs:[] ~dst:x ();
      Il.instr ~op:Op.Int_other ~srcs:[ x; x ] ~dst:x () ]
    (Il.Cond { src = Some x; model = Mcsim_ir.Branch_model.Loop { trip }; taken = body;
               not_taken = exit_blk });
  Builder.finish b ~entry:body

let compile prog =
  (Pipeline.compile ~scheduler:Pipeline.Sched_none prog).Pipeline.mach

let profile_counts_loop () =
  let p = loop_program 10 in
  let prof = Walker.profile p in
  check (Alcotest.float 1e-9) "body runs trip times" 10.0 (Profile.count prof 0);
  check (Alcotest.float 1e-9) "exit runs once" 1.0 (Profile.count prof 1)

let profile_max_blocks_caps () =
  let p = loop_program 1_000_000 in
  let prof = Walker.profile ~max_blocks:100 p in
  check (Alcotest.float 1e-9) "capped" 100.0 (Profile.total prof)

let trace_loop_contents () =
  let m = compile (loop_program 3) in
  let tr = Walker.trace m in
  (* 3 iterations x (2 body + 1 branch) = 9 dynamic instructions. *)
  check Alcotest.int "9 instructions" 9 (Array.length tr);
  let branches =
    Array.to_list tr |> List.filter (fun d -> d.Instr.branch <> None)
  in
  check Alcotest.int "3 branches" 3 (List.length branches);
  let takens =
    List.map (fun d -> (Option.get d.Instr.branch).Instr.taken) branches
  in
  check Alcotest.(list bool) "taken taken not-taken" [ true; true; false ] takens

let trace_seq_and_pc () =
  let m = compile (loop_program 3) in
  let tr = Walker.trace m in
  Array.iteri (fun i d -> check Alcotest.int "seq is the index" i d.Instr.seq) tr;
  (* Body pcs repeat every iteration; the branch sits at pc 2. *)
  check Alcotest.int "first pc" 0 tr.(0).Instr.pc;
  check Alcotest.int "branch pc" 2 tr.(2).Instr.pc;
  check Alcotest.int "second iteration restarts" 0 tr.(3).Instr.pc

let trace_max_instrs () =
  let m = compile (loop_program 1_000_000) in
  let tr = Walker.trace ~max_instrs:500 m in
  check Alcotest.int "capped at 500" 500 (Array.length tr)

let trace_deterministic () =
  let m = compile (Spec92.program Spec92.Compress) in
  let a = Walker.trace ~seed:5 ~max_instrs:2_000 m in
  let b = Walker.trace ~seed:5 ~max_instrs:2_000 m in
  check Alcotest.int "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i d ->
      check Alcotest.int "same pcs" d.Instr.pc b.(i).Instr.pc;
      check Alcotest.(option int) "same addresses" d.Instr.mem_addr b.(i).Instr.mem_addr)
    a

let trace_seed_changes_path () =
  let m = compile (Spec92.program Spec92.Compress) in
  let a = Walker.trace ~seed:5 ~max_instrs:2_000 m in
  let b = Walker.trace ~seed:6 ~max_instrs:2_000 m in
  let same = ref true in
  Array.iteri (fun i d -> if i < Array.length b && d.Instr.pc <> b.(i).Instr.pc then same := false) a;
  check Alcotest.bool "different seed, different path" false !same

(* The key methodology property: the native and rescheduled binaries of
   the same program follow the same dynamic path for the same seed. *)
let trace_same_path_across_binaries () =
  let prog = Spec92.program Spec92.Gcc1 in
  let profile = Walker.profile ~seed:9 prog in
  let native = (Pipeline.compile ~profile ~scheduler:Pipeline.Sched_none prog).Pipeline.mach in
  let local = (Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog).Pipeline.mach in
  let ta = Walker.trace ~seed:9 ~max_instrs:5_000 native in
  let tb = Walker.trace ~seed:9 ~max_instrs:5_000 local in
  let branch_dirs t =
    Array.to_list t
    |> List.filter_map (fun d ->
           match d.Instr.branch with
           | Some b when b.Instr.conditional -> Some b.Instr.taken
           | Some _ | None -> None)
  in
  let da = branch_dirs ta and db = branch_dirs tb in
  let n = min (List.length da) (List.length db) in
  let take k l = List.filteri (fun i _ -> i < k) l in
  check Alcotest.(list bool) "identical branch outcome sequence" (take n da) (take n db)

let trace_memory_payloads () =
  let m = compile (Spec92.program Spec92.Su2cor) in
  let tr = Walker.trace ~max_instrs:3_000 m in
  Array.iter
    (fun d ->
      let is_mem = Op.is_memory d.Instr.instr.Instr.op in
      check Alcotest.bool "address iff memory op" is_mem (d.Instr.mem_addr <> None))
    tr

let trace_halts_cleanly () =
  let m = compile (loop_program 2) in
  let tr = Walker.trace ~max_instrs:100 m in
  check Alcotest.int "stops at halt" 6 (Array.length tr)

let il_trace_length_consistent () =
  let p = loop_program 10 in
  (* 10 iterations x 3 slots + 0 exit slots. *)
  check Alcotest.int "Il trace length" 30 (Walker.il_trace_length p)

let profile_matches_trace_path =
  QCheck.Test.make ~name:"profile counts equal the traced block frequencies" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      let prog =
        Synth.generate
          { (Spec92.params Spec92.Doduc) with Synth.seed = seed + 1; outer_trip = 40 }
      in
      let prof_a = Walker.profile ~seed:3 prog in
      let prof_b = Walker.profile ~seed:3 prog in
      (* Same seed, same counts - the profile pass is deterministic. *)
      let ok = ref true in
      for b = 0 to Program.num_blocks prog - 1 do
        if Profile.count prof_a b <> Profile.count prof_b b then ok := false
      done;
      !ok)

let suite =
  ( "trace",
    [ case "profile: loop counts" profile_counts_loop;
      case "profile: max_blocks cap" profile_max_blocks_caps;
      case "trace: loop contents" trace_loop_contents;
      case "trace: seq and pc assignment" trace_seq_and_pc;
      case "trace: max_instrs cap" trace_max_instrs;
      case "trace: deterministic" trace_deterministic;
      case "trace: seed changes the path" trace_seed_changes_path;
      case "trace: native and rescheduled share the path" trace_same_path_across_binaries;
      case "trace: memory payloads" trace_memory_payloads;
      case "trace: halts cleanly" trace_halts_cleanly;
      case "trace: IL trace length" il_trace_length_consistent;
      QCheck_alcotest.to_alcotest profile_matches_trace_path ] )
