(* Tests for Mcsim_workload: the synthetic generator and the six
   benchmark presets. *)

module Synth = Mcsim_workload.Synth
module Spec92 = Mcsim_workload.Spec92
module Program = Mcsim_ir.Program
module Il = Mcsim_ir.Il
module Op = Mcsim_isa.Op_class

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let small b = { (Spec92.params b) with Synth.outer_trip = 10 }

let all_presets_validate () =
  List.iter
    (fun b ->
      let p = Spec92.program b in
      (* generate already validates; re-validate to be explicit. *)
      Program.validate p;
      check Alcotest.bool "has blocks" true (Program.num_blocks p > 2))
    Spec92.all

let preset_names_roundtrip () =
  List.iter
    (fun b ->
      check Alcotest.bool "of_name inverts name" true
        (Spec92.of_name (Spec92.name b) = Some b))
    Spec92.all;
  check Alcotest.bool "unknown name" true (Spec92.of_name "nonesuch" = None)

let preset_descriptions () =
  List.iter
    (fun b -> check Alcotest.bool "non-empty description" true
        (String.length (Spec92.description b) > 20))
    Spec92.all

let generation_deterministic () =
  let a = Spec92.program Spec92.Ora and b = Spec92.program Spec92.Ora in
  check Alcotest.int "same block count" (Program.num_blocks a) (Program.num_blocks b);
  check Alcotest.int "same static size" (Program.num_static_instrs a)
    (Program.num_static_instrs b)

let int_benchmarks_have_no_fp () =
  List.iter
    (fun b ->
      let p = Spec92.program b in
      Array.iter
        (fun (blk : Program.block) ->
          Array.iter
            (fun i ->
              check Alcotest.bool "no fp ops in integer code" false
                (Op.is_fp i.Il.op))
            blk.Program.instrs)
        p.Program.blocks)
    [ Spec92.Compress; Spec92.Gcc1 ]

let fp_benchmarks_have_fp () =
  List.iter
    (fun b ->
      let p = Spec92.program b in
      let has_fp = ref false in
      Array.iter
        (fun (blk : Program.block) ->
          Array.iter (fun i -> if Op.is_fp i.Il.op then has_fp := true) blk.Program.instrs)
        p.Program.blocks;
      check Alcotest.bool (Spec92.name b ^ " has fp") true !has_fp)
    [ Spec92.Doduc; Spec92.Ora; Spec92.Su2cor; Spec92.Tomcatv ]

let mix_fractions_respected () =
  (* In the dynamic trace of ora, divides should appear at roughly the
     parameterized weight among body instructions. *)
  let prog = Spec92.program Spec92.Ora in
  let m = (Mcsim_compiler.Pipeline.compile ~scheduler:Mcsim_compiler.Pipeline.Sched_none prog)
            .Mcsim_compiler.Pipeline.mach in
  let tr = Mcsim_trace.Walker.trace ~max_instrs:20_000 m in
  let divides = ref 0 and body = ref 0 in
  Array.iter
    (fun d ->
      match d.Mcsim_isa.Instr.instr.Mcsim_isa.Instr.op with
      | Op.Fp_divide _ ->
        incr divides;
        incr body
      | Op.Control -> ()
      | _ -> incr body)
    tr;
  let frac = float_of_int !divides /. float_of_int !body in
  check Alcotest.bool (Printf.sprintf "divide fraction %.3f in [0.08,0.25]" frac) true
    (frac > 0.08 && frac < 0.25)

let gcc_has_large_static_footprint () =
  let sizes =
    List.map (fun b -> (b, Program.num_static_instrs (Spec92.program b))) Spec92.all
  in
  let gcc = List.assoc Spec92.Gcc1 sizes in
  check Alcotest.bool "gcc1 is the biggest program" true
    (List.for_all (fun (b, s) -> b = Spec92.Gcc1 || s <= gcc) sizes)

let vector_codes_have_long_blocks () =
  List.iter
    (fun b ->
      let p = Spec92.program b in
      let sizes =
        Array.to_list p.Program.blocks
        |> List.map (fun (blk : Program.block) -> Array.length blk.Program.instrs)
        |> List.filter (fun n -> n > 0)
      in
      let avg = float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int (List.length sizes) in
      check Alcotest.bool (Spec92.name b ^ " long blocks") true (avg > 8.0))
    [ Spec92.Su2cor; Spec92.Tomcatv ]

let synth_validation_errors () =
  let base = small Spec92.Compress in
  let bad f = try ignore (Synth.generate (f base)); false with Invalid_argument _ -> true in
  check Alcotest.bool "zero segments" true (bad (fun p -> { p with Synth.n_segments = 0 }));
  check Alcotest.bool "block_max < block_min" true
    (bad (fun p -> { p with Synth.block_min = 5; block_max = 3 }));
  check Alcotest.bool "tiny pool vs communities" true
    (bad (fun p -> { p with Synth.int_pool = 3; n_communities = 2 }));
  check Alcotest.bool "bad fraction" true (bad (fun p -> { p with Synth.chain_bias = 1.5 }));
  check Alcotest.bool "empty mem kinds" true (bad (fun p -> { p with Synth.mem_kinds = [] }))

let mix_validation () =
  Alcotest.check_raises "all-zero mix" (Invalid_argument "Synth: all-zero mix") (fun () ->
      Synth.validate_mix
        { Synth.w_int_other = 0.0; w_int_multiply = 0.0; w_fp_other = 0.0; w_fp_divide = 0.0;
          w_load = 0.0; w_store = 0.0 })

let entry_defines_all_pools () =
  (* Every pool live range is written in the entry block, so no block can
     read an undefined value. *)
  let p = Spec92.program Spec92.Doduc in
  let entry = p.Program.blocks.(p.Program.entry) in
  let defined = Hashtbl.create 64 in
  Array.iter
    (fun i -> List.iter (fun lr -> Hashtbl.replace defined lr ()) (Il.lrs_written i))
    entry.Program.instrs;
  let live = Mcsim_compiler.Liveness.analyse p in
  List.iter
    (fun lr ->
      if lr <> p.Program.sp && lr <> p.Program.gp then
        check Alcotest.bool
          (Printf.sprintf "%s defined at entry" (Program.lr_name p lr))
          true (Hashtbl.mem defined lr))
    (Mcsim_compiler.Liveness.live_in live p.Program.entry |> List.filter (fun lr ->
         lr <> p.Program.sp && lr <> p.Program.gp))

let communities_limit_cross_traffic () =
  (* With p_cross_community = 0, an optimal 2-coloring exists; check the
     local scheduler finds a partition with markedly fewer dual
     distributions than round-robin. *)
  let params = { (small Spec92.Compress) with Synth.p_cross_community = 0.0 } in
  let prog = Synth.generate params in
  let profile = Mcsim_trace.Walker.profile prog in
  let asg = Mcsim_cluster.Assignment.create ~num_clusters:2 () in
  let duals scheduler =
    let c = Mcsim_compiler.Pipeline.compile ~profile ~scheduler prog in
    snd (Mcsim_compiler.Pipeline.dual_distribution_count asg c.Mcsim_compiler.Pipeline.mach)
  in
  let local = duals Mcsim_compiler.Pipeline.default_local in
  let rr = duals Mcsim_compiler.Pipeline.Sched_round_robin in
  check Alcotest.bool (Printf.sprintf "local %d < rr %d" local rr) true (local < rr)

let suite =
  ( "workload",
    [ case "presets validate" all_presets_validate;
      case "preset names roundtrip" preset_names_roundtrip;
      case "preset descriptions" preset_descriptions;
      case "generation is deterministic" generation_deterministic;
      case "integer benchmarks have no fp" int_benchmarks_have_no_fp;
      case "fp benchmarks have fp" fp_benchmarks_have_fp;
      case "ora divide fraction" mix_fractions_respected;
      case "gcc1 has the largest static footprint" gcc_has_large_static_footprint;
      case "vector codes have long blocks" vector_codes_have_long_blocks;
      case "generator validation errors" synth_validation_errors;
      case "mix validation" mix_validation;
      case "entry defines all pools" entry_defines_all_pools;
      case "communities limit cross traffic" communities_limit_cross_traffic ] )
