test/test_crossval.ml: Alcotest Array Hashtbl Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_trace Mcsim_workload Option Printf QCheck QCheck_alcotest
