test/test_golden.ml: Alcotest Format List Mcsim Mcsim_cluster Mcsim_timing Printf String
