test/test_reassign.ml: Alcotest Array List Mcsim Mcsim_cluster Mcsim_isa Str
