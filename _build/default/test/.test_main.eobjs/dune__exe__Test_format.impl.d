test/test_format.ml: Alcotest Array List Mcsim_cluster Mcsim_compiler Mcsim_isa Mcsim_trace Mcsim_workload Printf Str
