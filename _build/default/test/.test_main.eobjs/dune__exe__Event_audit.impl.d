test/event_audit.ml: Array Hashtbl List Mcsim_cluster Mcsim_isa Option Printf
