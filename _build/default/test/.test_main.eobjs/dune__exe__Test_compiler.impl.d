test/test_compiler.ml: Alcotest Array List Mcsim Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_trace Mcsim_util Mcsim_workload Printf QCheck QCheck_alcotest
