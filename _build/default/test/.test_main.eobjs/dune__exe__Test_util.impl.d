test/test_util.ml: Alcotest Array Fun List Mcsim_util Option QCheck QCheck_alcotest String
