test/test_cpu.ml: Alcotest Mcsim_cpu Mcsim_isa Option
