test/test_extensions.ml: Alcotest Array Event_audit List Mcsim Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_trace Str String
