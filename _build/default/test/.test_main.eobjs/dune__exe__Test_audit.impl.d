test/test_audit.ml: Alcotest Event_audit List Mcsim_cluster Mcsim_compiler Mcsim_trace Mcsim_workload QCheck QCheck_alcotest
