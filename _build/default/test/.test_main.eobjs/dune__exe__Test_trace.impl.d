test/test_trace.ml: Alcotest Array List Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_trace Mcsim_workload Option QCheck QCheck_alcotest
