test/test_timing.ml: Alcotest List Mcsim_timing
