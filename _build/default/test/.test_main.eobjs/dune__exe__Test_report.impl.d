test/test_report.ml: Alcotest Array List Mcsim Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_trace Mcsim_workload Str String
