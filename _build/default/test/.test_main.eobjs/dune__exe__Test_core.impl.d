test/test_core.ml: Alcotest Array Float List Mcsim Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_workload Option Printf Str String
