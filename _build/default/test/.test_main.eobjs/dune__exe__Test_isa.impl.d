test/test_isa.ml: Alcotest List Mcsim_isa
