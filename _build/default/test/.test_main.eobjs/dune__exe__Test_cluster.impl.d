test/test_cluster.ml: Alcotest Array Hashtbl List Mcsim_cluster Mcsim_compiler Mcsim_isa Mcsim_trace Mcsim_workload Option Printf QCheck QCheck_alcotest
