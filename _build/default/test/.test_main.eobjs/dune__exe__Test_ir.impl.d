test/test_ir.ml: Alcotest Array Fun List Mcsim_ir Mcsim_isa Mcsim_util Mcsim_workload QCheck QCheck_alcotest String
