test/test_workload.ml: Alcotest Array Hashtbl List Mcsim_cluster Mcsim_compiler Mcsim_ir Mcsim_isa Mcsim_trace Mcsim_workload Printf String
