test/test_branch_cache.ml: Alcotest List Mcsim_branch Mcsim_cache Mcsim_util Printf QCheck QCheck_alcotest Queue
