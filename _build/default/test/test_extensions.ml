(* Tests for the paper-§6 extensions: the loop unroller and the timeline
   renderer. *)

module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Builder = Program.Builder
module Op = Mcsim_isa.Op_class
module Unroll = Mcsim_compiler.Unroll
module Branch_model = Mcsim_ir.Branch_model
module Mem_stream = Mcsim_ir.Mem_stream
module Machine = Mcsim_cluster.Machine

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* A self-loop with an iteration-local temp, a loop-carried accumulator,
   and a strided load. *)
let loop_program ~trip =
  let b = Builder.create ~name:"unrolltest" in
  let sp = Builder.sp b in
  let acc = Builder.fresh_lr b ~name:"acc" Il.Bank_int in
  let t = Builder.fresh_lr b ~name:"t" Il.Bank_int in
  let exit_blk = Builder.add_block b [] Il.Halt in
  let body = Builder.reserve_block b in
  Builder.define_block b body
    [ Il.instr ~op:Op.Load ~srcs:[ sp ] ~dst:t
        ~mem:(Mem_stream.Stride { base = 0x1000; stride = 8; count = 64 }) ();
      Il.instr ~op:Op.Int_other ~srcs:[ t; t ] ~dst:t ();
      Il.instr ~op:Op.Int_other ~srcs:[ acc; t ] ~dst:acc () ]
    (Il.Cond { src = Some acc; model = Branch_model.Loop { trip }; taken = body;
               not_taken = exit_blk });
  let entry =
    Builder.add_block b
      [ Il.instr ~op:Op.Int_other ~srcs:[] ~dst:acc () ]
      (Il.Jump body)
  in
  Builder.finish b ~entry

let unroll_doubles_body () =
  let p = loop_program ~trip:20 in
  let p2 = Unroll.unroll ~factor:2 p in
  let body b = Array.length (b : Program.t).Program.blocks.(1).Program.instrs in
  check Alcotest.int "body doubled" (2 * body p) (body p2);
  check Alcotest.(list int) "the loop block was unrolled" [ 1 ] (Unroll.unrolled_blocks p p2)

let unroll_renames_locals_only () =
  let p = loop_program ~trip:20 in
  let p2 = Unroll.unroll ~factor:2 p in
  (* One fresh live range: t of the first replica (acc is carried and the
     last replica keeps original names). *)
  check Alcotest.int "one fresh live range" (Program.num_lrs p + 1) (Program.num_lrs p2);
  check Alcotest.string "named after its origin" "t.u0"
    (Program.lr_name p2 (Program.num_lrs p));
  (* The accumulator still threads through every replica. *)
  let accs =
    Array.to_list p2.Program.blocks.(1).Program.instrs
    |> List.filter (fun i -> List.mem 2 (Il.lrs_written i))
  in
  check Alcotest.int "acc written once per replica" 2 (List.length accs)

let unroll_halves_trip () =
  let p = loop_program ~trip:20 in
  let p2 = Unroll.unroll ~factor:2 p in
  match p2.Program.blocks.(1).Program.term with
  | Il.Cond { model = Branch_model.Loop { trip }; _ } -> check Alcotest.int "trip 10" 10 trip
  | _ -> Alcotest.fail "terminator changed shape"

let unroll_splits_strides () =
  let p = loop_program ~trip:20 in
  let p2 = Unroll.unroll ~factor:2 p in
  let strides =
    Array.to_list p2.Program.blocks.(1).Program.instrs
    |> List.filter_map (fun i -> i.Il.mem)
  in
  check Alcotest.bool "replica streams interleave" true
    (List.exists
       (function
         | Mem_stream.Stride { base = 0x1000; stride = 16; count = 32 } -> true
         | _ -> false)
       strides
    && List.exists
         (function
           | Mem_stream.Stride { base = 0x1008; stride = 16; count = 32 } -> true
           | _ -> false)
         strides)

let unroll_factor_one_identity () =
  let p = loop_program ~trip:20 in
  check Alcotest.bool "factor 1 is the identity" true (Unroll.unroll ~factor:1 p == p)

let unroll_short_trip_untouched () =
  let p = loop_program ~trip:3 in
  let p2 = Unroll.unroll ~factor:2 p in
  check Alcotest.(list int) "trip < 2*factor left alone" [] (Unroll.unrolled_blocks p p2)

let unroll_max_body_respected () =
  let p = loop_program ~trip:20 in
  let p2 = Unroll.unroll ~factor:2 ~max_body:2 p in
  check Alcotest.(list int) "body larger than max_body left alone" []
    (Unroll.unrolled_blocks p p2)

let unroll_bad_factor () =
  Alcotest.check_raises "factor 0" (Invalid_argument "Unroll.unroll: factor < 1") (fun () ->
      ignore (Unroll.unroll ~factor:0 (loop_program ~trip:20)))

let unroll_same_dynamic_work () =
  (* The unrolled program does the same per-iteration work: same body
     instruction count over the whole run (modulo the halved branches). *)
  let p = loop_program ~trip:40 in
  let p2 = Unroll.unroll ~factor:2 p in
  let body_instrs prog =
    let m =
      (Mcsim_compiler.Pipeline.compile ~scheduler:Mcsim_compiler.Pipeline.Sched_none prog)
        .Mcsim_compiler.Pipeline.mach
    in
    let tr = Mcsim_trace.Walker.trace m in
    Array.to_list tr
    |> List.filter (fun (d : Mcsim_isa.Instr.dynamic) ->
           d.Mcsim_isa.Instr.instr.Mcsim_isa.Instr.op <> Op.Control)
    |> List.length
  in
  check Alcotest.int "same non-control dynamic instructions" (body_instrs p) (body_instrs p2)

let unroll_machine_runs_clean () =
  let p = Unroll.unroll ~factor:4 (loop_program ~trip:64) in
  let profile = Mcsim_trace.Walker.profile p in
  let c = Mcsim_compiler.Pipeline.compile ~profile
            ~scheduler:Mcsim_compiler.Pipeline.default_local p in
  let trace = Mcsim_trace.Walker.trace ~max_instrs:2_000 c.Mcsim_compiler.Pipeline.mach in
  let _, errors = Event_audit.run_audited (Machine.dual_cluster ()) trace in
  check Alcotest.(list string) "audit clean on unrolled code" [] errors

(* --------------------------- timeline ------------------------------ *)

let mk seq op srcs dst =
  Mcsim_isa.Instr.dynamic ~seq ~pc:seq (Mcsim_isa.Instr.make ~op ~srcs ~dst)

let timeline_basic () =
  let r = Mcsim_isa.Reg.int_reg in
  let trace =
    [| mk 0 Op.Int_other [] (Some (r 2));
       mk 1 Op.Int_other [ r 2 ] (Some (r 4)) |]
  in
  let t, result = Mcsim.Timeline.record (Machine.single_cluster ()) trace in
  let s = Mcsim.Timeline.render t in
  check Alcotest.bool "mentions both instructions" true
    (let has n = String.split_on_char '\n' s |> List.exists (fun l ->
         String.length l > 2 && String.sub l 0 2 = "#" ^ string_of_int n) in
     has 0 && has 1);
  check Alcotest.bool "contains issue marks" true (String.contains s 'I');
  check Alcotest.bool "contains retire marks" true (String.contains s 'R');
  check Alcotest.int "run completed" 2 result.Machine.retired

let timeline_selection () =
  let r = Mcsim_isa.Reg.int_reg in
  let trace = Array.init 10 (fun i -> mk i Op.Int_other [] (Some (r (2 * (i mod 4))))) in
  let t, _ = Mcsim.Timeline.record (Machine.single_cluster ()) trace in
  let s = Mcsim.Timeline.render ~first_seq:9 ~last_seq:9 t in
  check Alcotest.bool "only the selected row" true
    (not (String.split_on_char '\n' s |> List.exists (fun l ->
              String.length l > 2 && String.sub l 0 2 = "#0")))

let timeline_empty () =
  check Alcotest.string "no events" "(no events)\n"
    (Mcsim.Timeline.render (Mcsim.Timeline.create ()))

let timeline_dual_marks () =
  let r = Mcsim_isa.Reg.int_reg in
  let trace =
    [| mk 0 Op.Int_other [] (Some (r 2)); mk 1 Op.Int_other [] (Some (r 1));
       mk 2 Op.Int_other [ r 2; r 1 ] (Some (r 4)) |]
  in
  let t, _ = Mcsim.Timeline.record (Machine.dual_cluster ()) trace in
  let s = Mcsim.Timeline.render t in
  check Alcotest.bool "master and slave rows present" true
    (let has sub =
       try ignore (Str.search_forward (Str.regexp_string sub) s 0); true
       with Not_found -> false
     in
     has "master" && has "slave")

let suite =
  ( "extensions",
    [ case "unroll: doubles the body" unroll_doubles_body;
      case "unroll: renames iteration-locals only" unroll_renames_locals_only;
      case "unroll: halves the trip count" unroll_halves_trip;
      case "unroll: splits strided streams" unroll_splits_strides;
      case "unroll: factor 1 is identity" unroll_factor_one_identity;
      case "unroll: short trips untouched" unroll_short_trip_untouched;
      case "unroll: max_body respected" unroll_max_body_respected;
      case "unroll: bad factor" unroll_bad_factor;
      case "unroll: preserves dynamic work" unroll_same_dynamic_work;
      case "unroll: audited machine run" unroll_machine_runs_clean;
      case "timeline: basic rendering" timeline_basic;
      case "timeline: row selection" timeline_selection;
      case "timeline: empty" timeline_empty;
      case "timeline: dual-distribution rows" timeline_dual_marks ] )
