(* A machine-event auditor: replays the event stream of a Machine.run and
   checks global pipeline invariants that must hold for ANY trace and ANY
   configuration. Used by the property tests in test_audit.ml.

   Invariants:
   - per instruction: fetch <= dispatch <= issue < writeback <= retire
     (for each copy; suspended slaves may wake between issue and
     writeback);
   - every retired instruction was dispatched, and every dispatched copy
     either retires or is squashed by a later replay;
   - per cycle and per cluster, issues never exceed the configured total
     issue width;
   - retires never exceed the retire width per cycle, and retire order is
     the trace order (within one run segment; replays rewind);
   - an operand forward implies a preceding slave issue; a wakeup implies
     a preceding suspend;
   - scenario numbers reported at dispatch are within 1..5. *)

module Machine = Mcsim_cluster.Machine

type audit = {
  mutable errors : string list;
  (* per (seq, role, cluster): a multi-distributed instruction has one
     slave copy per participating cluster *)
  issues : (int * Machine.role * int, int) Hashtbl.t;
  dispatches : (int * Machine.role * int, int) Hashtbl.t;
  writebacks : (int * Machine.role * int, int) Hashtbl.t;
  suspends : (int * int, int) Hashtbl.t;
  retires : (int, int) Hashtbl.t;
  issues_per_cycle : (int * int, int) Hashtbl.t;  (* (cycle, cluster) *)
  retires_per_cycle : (int, int) Hashtbl.t;
  mutable last_retired_seq : int;
  mutable replay_count : int;
}

let create () =
  { errors = [];
    issues = Hashtbl.create 256;
    dispatches = Hashtbl.create 256;
    writebacks = Hashtbl.create 256;
    suspends = Hashtbl.create 64;
    retires = Hashtbl.create 256;
    issues_per_cycle = Hashtbl.create 256;
    retires_per_cycle = Hashtbl.create 256;
    last_retired_seq = -1;
    replay_count = 0 }

let err a fmt = Printf.ksprintf (fun s -> a.errors <- s :: a.errors) fmt

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let on_event a = function
  | Machine.Ev_fetch _ -> ()
  | Machine.Ev_dispatch { cycle; seq; cluster; role; scenario } ->
    if scenario < 1 || scenario > 5 then err a "seq %d: scenario %d out of range" seq scenario;
    Hashtbl.replace a.dispatches (seq, role, cluster) cycle
  | Machine.Ev_issue { cycle; seq; cluster; role } ->
    (match Hashtbl.find_opt a.dispatches (seq, role, cluster) with
    | None -> err a "seq %d %s: issued without dispatch" seq (Machine.role_to_string role)
    | Some d when cycle <= d ->
      err a "seq %d %s: issued at %d, dispatched at %d" seq (Machine.role_to_string role)
        cycle d
    | Some _ -> ());
    if Hashtbl.mem a.issues (seq, role, cluster) then
      err a "seq %d %s C%d: double issue" seq (Machine.role_to_string role) cluster;
    Hashtbl.replace a.issues (seq, role, cluster) cycle;
    bump a.issues_per_cycle (cycle, cluster)
  | Machine.Ev_operand_forward { seq; from_cluster; _ } ->
    if not (Hashtbl.mem a.issues (seq, Machine.Slave_copy, from_cluster)) then
      err a "seq %d: operand forward without slave issue" seq
  | Machine.Ev_result_forward { seq; from_cluster; _ } ->
    if not (Hashtbl.mem a.issues (seq, Machine.Master_copy, from_cluster)) then
      err a "seq %d: result forward without master issue" seq
  | Machine.Ev_suspend { cycle; seq; cluster } -> Hashtbl.replace a.suspends (seq, cluster) cycle
  | Machine.Ev_wakeup { cycle; seq; cluster } -> (
    match Hashtbl.find_opt a.suspends (seq, cluster) with
    | None -> err a "seq %d: wakeup without suspend" seq
    | Some s when cycle < s -> err a "seq %d: woke at %d before suspend at %d" seq cycle s
    | Some _ -> ())
  | Machine.Ev_writeback { cycle; seq; cluster; role } -> (
    Hashtbl.replace a.writebacks (seq, role, cluster) cycle;
    match Hashtbl.find_opt a.issues (seq, role, cluster) with
    | None -> err a "seq %d %s: writeback without issue" seq (Machine.role_to_string role)
    | Some i when cycle <= i ->
      err a "seq %d %s: writeback at %d not after issue at %d" seq
        (Machine.role_to_string role) cycle i
    | Some _ -> ())
  | Machine.Ev_retire { cycle; seq } ->
    if seq <= a.last_retired_seq then
      err a "retire order violated: seq %d after %d" seq a.last_retired_seq;
    a.last_retired_seq <- seq;
    if Hashtbl.mem a.retires seq then err a "seq %d: double retire" seq;
    Hashtbl.replace a.retires seq cycle;
    bump a.retires_per_cycle cycle
  | Machine.Ev_replay { seq; _ } ->
    a.replay_count <- a.replay_count + 1;
    (* Everything from seq on will be refetched: clear its bookkeeping so
       re-execution does not look like double issue/retire. *)
    let clear tbl =
      Hashtbl.iter
        (fun ((s, _, _) as k) _ -> if s >= seq then Hashtbl.remove tbl k)
        (Hashtbl.copy tbl)
    in
    clear a.issues;
    clear a.dispatches;
    clear a.writebacks;
    Hashtbl.iter
      (fun ((s, _) as k) _ -> if s >= seq then Hashtbl.remove a.suspends k)
      (Hashtbl.copy a.suspends)

let finish a ~(cfg : Machine.config) ~trace_len =
  (* Width limits. *)
  Hashtbl.iter
    (fun (cycle, cluster) n ->
      if n > cfg.Machine.issue_limits.Mcsim_isa.Issue_rules.total then
        err a "cycle %d cluster %d: %d issues exceed the issue width" cycle cluster n)
    a.issues_per_cycle;
  Hashtbl.iter
    (fun cycle n ->
      if n > cfg.Machine.retire_width then
        err a "cycle %d: %d retires exceed the retire width" cycle n)
    a.retires_per_cycle;
  (* Completeness: every trace element retired exactly once. *)
  for seq = 0 to trace_len - 1 do
    if not (Hashtbl.mem a.retires seq) then err a "seq %d never retired" seq
  done;
  (* Retires follow the final writebacks of their copies. *)
  Hashtbl.iter
    (fun (seq, role, _) wb ->
      match Hashtbl.find_opt a.retires seq with
      | Some r when r < wb ->
        err a "seq %d retired at %d before %s writeback at %d" seq r
          (Machine.role_to_string role) wb
      | Some _ | None -> ())
    a.writebacks;
  List.rev a.errors

let run_audited cfg trace =
  let a = create () in
  let result = Machine.run ~on_event:(on_event a) cfg trace in
  let errors = finish a ~cfg ~trace_len:(Array.length trace) in
  (result, errors)
