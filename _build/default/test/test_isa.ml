(* Tests for Mcsim_isa: registers, opcode classes, instructions, and the
   Table-1 issue rules. *)

module Reg = Mcsim_isa.Reg
module Op = Mcsim_isa.Op_class
module Instr = Mcsim_isa.Instr
module Issue_rules = Mcsim_isa.Issue_rules

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ----------------------------- regs -------------------------------- *)

let reg_basics () =
  check Alcotest.int "num_int" 32 Reg.num_int;
  check Alcotest.int "num_fp" 32 Reg.num_fp;
  check Alcotest.string "r7" "r7" (Reg.to_string (Reg.int_reg 7));
  check Alcotest.string "f12" "f12" (Reg.to_string (Reg.fp_reg 12));
  check Alcotest.bool "sp is r30" true (Reg.equal Reg.sp (Reg.int_reg 30));
  check Alcotest.bool "gp is r29" true (Reg.equal Reg.gp (Reg.int_reg 29))

let reg_zero () =
  check Alcotest.bool "r31 zero" true (Reg.is_zero Reg.zero_int);
  check Alcotest.bool "f31 zero" true (Reg.is_zero Reg.zero_fp);
  check Alcotest.bool "r30 not zero" false (Reg.is_zero Reg.sp)

let reg_range_checks () =
  Alcotest.check_raises "int 32" (Invalid_argument "Reg.int_reg: 32") (fun () ->
      ignore (Reg.int_reg 32));
  Alcotest.check_raises "fp -1" (Invalid_argument "Reg.fp_reg: -1") (fun () ->
      ignore (Reg.fp_reg (-1)))

let reg_flat_roundtrip () =
  List.iter
    (fun r ->
      check Alcotest.bool "roundtrip" true (Reg.equal r (Reg.of_flat_index (Reg.flat_index r))))
    Reg.all;
  check Alcotest.int "all has 64" 64 (List.length Reg.all)

let reg_parity () =
  check Alcotest.int "r4 even" 0 (Reg.parity (Reg.int_reg 4));
  check Alcotest.int "f9 odd" 1 (Reg.parity (Reg.fp_reg 9))

let reg_banks () =
  check Alcotest.bool "int" true (Reg.is_int (Reg.int_reg 3));
  check Alcotest.bool "fp" true (Reg.is_fp (Reg.fp_reg 3));
  check Alcotest.bool "not equal across banks" false
    (Reg.equal (Reg.int_reg 3) (Reg.fp_reg 3));
  check Alcotest.int "compare orders banks" (-1)
    (compare (Reg.compare (Reg.int_reg 31) (Reg.fp_reg 0)) 0)

(* -------------------------- op classes ----------------------------- *)

let op_latencies () =
  (* The exact Table-1 latency row. *)
  check Alcotest.int "int multiply" 6 (Op.latency Op.Int_multiply);
  check Alcotest.int "int other" 1 (Op.latency Op.Int_other);
  check Alcotest.int "fp divide 32" 8 (Op.latency (Op.Fp_divide { bits64 = false }));
  check Alcotest.int "fp divide 64" 16 (Op.latency (Op.Fp_divide { bits64 = true }));
  check Alcotest.int "fp other" 3 (Op.latency Op.Fp_other);
  check Alcotest.int "load (delay slot)" 2 (Op.latency Op.Load);
  check Alcotest.int "store" 1 (Op.latency Op.Store);
  check Alcotest.int "control" 1 (Op.latency Op.Control)

let op_pipelining () =
  check Alcotest.bool "divider unpipelined" false
    (Op.is_pipelined (Op.Fp_divide { bits64 = false }));
  List.iter
    (fun op ->
      if not (Op.equal op (Op.Fp_divide { bits64 = false }))
         && not (Op.equal op (Op.Fp_divide { bits64 = true }))
      then check Alcotest.bool (Op.to_string op ^ " pipelined") true (Op.is_pipelined op))
    Op.all

let op_predicates () =
  check Alcotest.bool "fp_other is fp" true (Op.is_fp Op.Fp_other);
  check Alcotest.bool "load not fp" false (Op.is_fp Op.Load);
  check Alcotest.bool "load memory" true (Op.is_memory Op.Load);
  check Alcotest.bool "store memory" true (Op.is_memory Op.Store);
  check Alcotest.bool "control not memory" false (Op.is_memory Op.Control)

let op_equal () =
  check Alcotest.bool "divide widths differ" false
    (Op.equal (Op.Fp_divide { bits64 = false }) (Op.Fp_divide { bits64 = true }));
  check Alcotest.bool "same class equal" true (Op.equal Op.Load Op.Load)

(* --------------------------- instr --------------------------------- *)

let instr_shapes () =
  let r = Reg.int_reg in
  let i = Instr.make ~op:Op.Int_other ~srcs:[ r 1; r 2 ] ~dst:(Some (r 3)) in
  check Alcotest.int "regs count" 3 (List.length (Instr.regs i));
  Alcotest.check_raises "store with dst"
    (Invalid_argument "Instr.make: store/control with destination") (fun () ->
      ignore (Instr.make ~op:Op.Store ~srcs:[ r 1 ] ~dst:(Some (r 2))));
  Alcotest.check_raises "load without dst"
    (Invalid_argument "Instr.make: load without destination") (fun () ->
      ignore (Instr.make ~op:Op.Load ~srcs:[ r 1 ] ~dst:None));
  Alcotest.check_raises "three sources"
    (Invalid_argument "Instr.make: more than two sources") (fun () ->
      ignore (Instr.make ~op:Op.Int_other ~srcs:[ r 1; r 2; r 3 ] ~dst:None))

let instr_named_regs () =
  let i =
    Instr.make ~op:Op.Int_other ~srcs:[ Reg.zero_int; Reg.int_reg 2 ]
      ~dst:(Some Reg.zero_int)
  in
  check Alcotest.int "zeros dropped" 1 (List.length (Instr.named_regs i));
  check Alcotest.int "regs keeps zeros" 3 (List.length (Instr.regs i))

let instr_dynamic_payloads () =
  let load = Instr.make ~op:Op.Load ~srcs:[ Reg.sp ] ~dst:(Some (Reg.int_reg 1)) in
  let d = Instr.dynamic ~seq:0 ~pc:0 ~mem_addr:64 load in
  check Alcotest.(option int) "address kept" (Some 64) d.Instr.mem_addr;
  Alcotest.check_raises "memory op without address"
    (Invalid_argument "Instr.dynamic: memory op without address") (fun () ->
      ignore (Instr.dynamic ~seq:0 ~pc:0 load));
  let alu = Instr.make ~op:Op.Int_other ~srcs:[] ~dst:(Some (Reg.int_reg 1)) in
  Alcotest.check_raises "address on non-memory op"
    (Invalid_argument "Instr.dynamic: address on non-memory op") (fun () ->
      ignore (Instr.dynamic ~seq:0 ~pc:0 ~mem_addr:8 alu));
  let ctl = Instr.make ~op:Op.Control ~srcs:[] ~dst:None in
  Alcotest.check_raises "control without branch info"
    (Invalid_argument "Instr.dynamic: control op without branch info") (fun () ->
      ignore (Instr.dynamic ~seq:0 ~pc:0 ctl));
  let b = { Instr.conditional = true; taken = false; target = 9 } in
  let d2 = Instr.dynamic ~seq:1 ~pc:4 ~branch:b ctl in
  check Alcotest.bool "branch kept" true (d2.Instr.branch = Some b)

(* ------------------------- issue rules ----------------------------- *)

let rules_table1_data () =
  let s = Issue_rules.single_cluster in
  check Alcotest.int "single total" 8 s.Issue_rules.total;
  check Alcotest.int "single int mul" 8 s.Issue_rules.int_multiply;
  check Alcotest.int "single int other" 8 s.Issue_rules.int_other;
  check Alcotest.int "single fp all" 4 s.Issue_rules.fp_all;
  check Alcotest.int "single fp div" 4 s.Issue_rules.fp_divide;
  check Alcotest.int "single fp other" 4 s.Issue_rules.fp_other;
  check Alcotest.int "single memory" 4 s.Issue_rules.memory;
  check Alcotest.int "single control" 4 s.Issue_rules.control;
  let d = Issue_rules.dual_per_cluster in
  check Alcotest.int "dual total" 4 d.Issue_rules.total;
  check Alcotest.int "dual int mul" 4 d.Issue_rules.int_multiply;
  check Alcotest.int "dual fp all" 2 d.Issue_rules.fp_all;
  check Alcotest.int "dual memory" 2 d.Issue_rules.memory;
  check Alcotest.int "dual control" 2 d.Issue_rules.control

let rules_budget_total () =
  let b = Issue_rules.budget Issue_rules.dual_per_cluster in
  for _ = 1 to 4 do
    check Alcotest.bool "can issue int" true (Issue_rules.can_issue b Op.Int_other);
    Issue_rules.consume b Op.Int_other
  done;
  check Alcotest.bool "total exhausted" false (Issue_rules.can_issue b Op.Int_other);
  check Alcotest.int "issued" 4 (Issue_rules.issued b);
  Issue_rules.reset b;
  check Alcotest.bool "reset restores" true (Issue_rules.can_issue b Op.Int_other)

let rules_fp_shared_cap () =
  let b = Issue_rules.budget Issue_rules.single_cluster in
  (* fp_all = 4 is shared between divides and other fp. *)
  Issue_rules.consume b (Op.Fp_divide { bits64 = false });
  Issue_rules.consume b (Op.Fp_divide { bits64 = true });
  Issue_rules.consume b Op.Fp_other;
  Issue_rules.consume b Op.Fp_other;
  check Alcotest.bool "fp_all cap reached" false (Issue_rules.can_issue b Op.Fp_other);
  check Alcotest.bool "fp divide also capped" false
    (Issue_rules.can_issue b (Op.Fp_divide { bits64 = false }));
  check Alcotest.bool "int still allowed" true (Issue_rules.can_issue b Op.Int_other)

let rules_memory_cap () =
  let b = Issue_rules.budget Issue_rules.dual_per_cluster in
  Issue_rules.consume b Op.Load;
  Issue_rules.consume b Op.Store;
  check Alcotest.bool "memory cap is loads+stores" false (Issue_rules.can_issue b Op.Load)

let rules_over_budget_raises () =
  let b = Issue_rules.budget Issue_rules.dual_per_cluster in
  Issue_rules.consume b Op.Control;
  Issue_rules.consume b Op.Control;
  Alcotest.check_raises "consume over budget"
    (Invalid_argument "Issue_rules.consume: over budget") (fun () ->
      Issue_rules.consume b Op.Control)

let rules_scale () =
  let l = Issue_rules.scale Issue_rules.dual_per_cluster 2 in
  check Alcotest.int "scaled total" 8 l.Issue_rules.total;
  check Alcotest.int "scaled fp" 4 l.Issue_rules.fp_all;
  Alcotest.check_raises "scale by 0" (Invalid_argument "Issue_rules.scale") (fun () ->
      ignore (Issue_rules.scale Issue_rules.dual_per_cluster 0))

let rules_to_rows () =
  check Alcotest.(list string) "row cells"
    [ "8"; "8"; "8"; "4"; "4"; "4"; "4"; "4" ]
    (Issue_rules.to_rows Issue_rules.single_cluster)

let suite =
  ( "isa",
    [ case "reg: basics" reg_basics;
      case "reg: hardwired zeros" reg_zero;
      case "reg: range checks" reg_range_checks;
      case "reg: flat index roundtrip" reg_flat_roundtrip;
      case "reg: parity" reg_parity;
      case "reg: banks" reg_banks;
      case "op: Table-1 latencies" op_latencies;
      case "op: divider is the only unpipelined unit" op_pipelining;
      case "op: predicates" op_predicates;
      case "op: equality" op_equal;
      case "instr: shape validation" instr_shapes;
      case "instr: named_regs drops zeros" instr_named_regs;
      case "instr: dynamic payload validation" instr_dynamic_payloads;
      case "issue rules: Table-1 numbers" rules_table1_data;
      case "issue rules: total budget" rules_budget_total;
      case "issue rules: shared fp cap" rules_fp_shared_cap;
      case "issue rules: memory cap" rules_memory_cap;
      case "issue rules: over budget raises" rules_over_budget_raises;
      case "issue rules: scale" rules_scale;
      case "issue rules: table rows" rules_to_rows ] )
