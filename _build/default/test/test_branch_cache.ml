(* Tests for the McFarling predictor and the non-blocking cache. *)

module Mcfarling = Mcsim_branch.Mcfarling
module Cache = Mcsim_cache.Cache
module Rng = Mcsim_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* -------------------------- predictor ------------------------------ *)

(* Drive the predictor with immediate training (no lag). *)
let drive p outcomes ~pc =
  List.iter
    (fun taken ->
      let _, tok = Mcfarling.predict p ~pc in
      Mcfarling.note_outcome p ~taken;
      Mcfarling.train p tok ~taken)
    outcomes

let bp_biased_converges () =
  let p = Mcfarling.create () in
  drive p (List.init 200 (fun _ -> true)) ~pc:12;
  check Alcotest.bool "always-taken branch learned" true (Mcfarling.accuracy p > 0.95);
  let pred, _ = Mcfarling.predict p ~pc:12 in
  check Alcotest.bool "predicts taken" true pred

let bp_pattern_learned_by_history () =
  (* A branch alternating T N T N ... is hopeless for bimodal counters but
     trivially captured by the global-history predictor + selector. *)
  let p = Mcfarling.create () in
  let outcomes = List.init 2000 (fun i -> i mod 2 = 0) in
  drive p outcomes ~pc:40;
  check Alcotest.bool "alternating branch above 90%" true (Mcfarling.accuracy p > 0.90)

let bp_period4_pattern () =
  let p = Mcfarling.create () in
  let outcomes = List.init 4000 (fun i -> i mod 4 <> 3) in
  drive p outcomes ~pc:8;
  check Alcotest.bool "TTTN pattern above 90%" true (Mcfarling.accuracy p > 0.90)

let bp_training_lag_visible () =
  (* With deferred training (tokens trained late), the tables cannot adapt
     to a flip as fast as with immediate training. *)
  let flip_each = 8 in
  let outcomes = List.init 4000 (fun i -> i / flip_each mod 2 = 0) in
  let run lag =
    let p = Mcfarling.create () in
    let pending = Queue.create () in
    List.iter
      (fun taken ->
        let _, tok = Mcfarling.predict p ~pc:16 in
        Mcfarling.note_outcome p ~taken;
        Queue.push (tok, taken) pending;
        if Queue.length pending > lag then begin
          let tok, taken = Queue.pop pending in
          Mcfarling.train p tok ~taken
        end)
      outcomes;
    Mcfarling.accuracy p
  in
  let immediate = run 0 and lagged = run 6 in
  check Alcotest.bool
    (Printf.sprintf "lag hurts (%.3f vs %.3f)" immediate lagged)
    true (lagged < immediate)

let bp_stats () =
  let p = Mcfarling.create () in
  drive p [ true; true; false ] ~pc:4;
  check Alcotest.int "predictions" 3 (Mcfarling.predictions p);
  check Alcotest.bool "some mispredictions" true (Mcfarling.mispredictions p >= 1);
  Mcfarling.reset_stats p;
  check Alcotest.int "reset" 0 (Mcfarling.predictions p);
  check (Alcotest.float 1e-9) "accuracy on empty" 1.0 (Mcfarling.accuracy p)

let bp_distinct_pcs_independent () =
  let p = Mcfarling.create () in
  drive p (List.init 100 (fun _ -> true)) ~pc:100;
  drive p (List.init 100 (fun _ -> false)) ~pc:228;
  let pred_a, _ = Mcfarling.predict p ~pc:100 in
  let pred_b, _ = Mcfarling.predict p ~pc:228 in
  check Alcotest.bool "pc 100 taken" true pred_a;
  check Alcotest.bool "pc 228 not taken" false pred_b

(* ---------------------------- cache -------------------------------- *)

let small_config =
  { Cache.size_bytes = 1024; assoc = 2; line_bytes = 32; miss_latency = 16; mshrs = None }

let cache_hit_after_fill () =
  let c = Cache.create small_config in
  let r1 = Cache.access c ~cycle:0 ~addr:64 ~write:false in
  check Alcotest.int "primary miss fills at +16" 16 r1;
  let r2 = Cache.access c ~cycle:20 ~addr:64 ~write:false in
  check Alcotest.int "hit after fill" 20 r2;
  check Alcotest.int "one miss" 1 (Cache.primary_misses c);
  check Alcotest.int "one hit" 1 (Cache.hits c)

let cache_same_line_merges () =
  let c = Cache.create small_config in
  let r1 = Cache.access c ~cycle:0 ~addr:64 ~write:false in
  let r2 = Cache.access c ~cycle:3 ~addr:72 ~write:false in
  check Alcotest.int "secondary miss gets primary's fill cycle" r1 r2;
  check Alcotest.int "secondary count" 1 (Cache.secondary_misses c);
  check Alcotest.int "no extra primary" 1 (Cache.primary_misses c)

let cache_unlimited_outstanding () =
  (* The inverted MSHR means any number of distinct lines can be in
     flight simultaneously. *)
  let c = Cache.create small_config in
  for i = 0 to 19 do
    let r = Cache.access c ~cycle:0 ~addr:(i * 32) ~write:false in
    check Alcotest.int "all miss in parallel" 16 r
  done;
  check Alcotest.int "20 primaries" 20 (Cache.primary_misses c)

let cache_lru_eviction () =
  let c = Cache.create small_config in
  (* 16 sets; lines mapping to set 0: addresses k * 16 * 32. *)
  let line k = k * 16 * 32 in
  ignore (Cache.access c ~cycle:0 ~addr:(line 0) ~write:false);
  ignore (Cache.access c ~cycle:20 ~addr:(line 1) ~write:false);
  (* Touch line 0 so line 1 is the LRU way. *)
  ignore (Cache.access c ~cycle:40 ~addr:(line 0) ~write:false);
  (* A third line in the set evicts line 1. *)
  ignore (Cache.access c ~cycle:60 ~addr:(line 2) ~write:false);
  let r0 = Cache.access c ~cycle:100 ~addr:(line 0) ~write:false in
  check Alcotest.int "line 0 still resident" 100 r0;
  let r1 = Cache.access c ~cycle:120 ~addr:(line 1) ~write:false in
  check Alcotest.bool "line 1 was evicted" true (r1 > 120)

let cache_write_allocates () =
  let c = Cache.create small_config in
  ignore (Cache.access c ~cycle:0 ~addr:256 ~write:true);
  let r = Cache.access c ~cycle:20 ~addr:256 ~write:false in
  check Alcotest.int "read hits after write-allocate" 20 r

let cache_miss_rate () =
  let c = Cache.create small_config in
  ignore (Cache.access c ~cycle:0 ~addr:0 ~write:false);
  ignore (Cache.access c ~cycle:20 ~addr:0 ~write:false);
  ignore (Cache.access c ~cycle:30 ~addr:0 ~write:false);
  ignore (Cache.access c ~cycle:40 ~addr:4096 ~write:false);
  check (Alcotest.float 1e-9) "2 misses / 4 accesses" 0.5 (Cache.miss_rate c);
  Cache.reset_stats c;
  check Alcotest.int "stats reset" 0 (Cache.accesses c)

let cache_probe () =
  let c = Cache.create small_config in
  check Alcotest.bool "cold probe" false (Cache.probe c ~addr:64);
  ignore (Cache.access c ~cycle:0 ~addr:64 ~write:false);
  check Alcotest.bool "in-flight probe" true (Cache.probe c ~addr:64)

let cache_monotone_cycles () =
  let c = Cache.create small_config in
  ignore (Cache.access c ~cycle:10 ~addr:0 ~write:false);
  Alcotest.check_raises "cycle goes backwards"
    (Invalid_argument "Cache.access: cycle went backwards") (fun () ->
      ignore (Cache.access c ~cycle:5 ~addr:0 ~write:false))

let cache_config_validation () =
  let bad c = try Cache.validate_config c; false with Invalid_argument _ -> true in
  check Alcotest.bool "non-pow2 line" true
    (bad { small_config with Cache.line_bytes = 24 });
  check Alcotest.bool "zero assoc" true (bad { small_config with Cache.assoc = 0 });
  check Alcotest.bool "non-pow2 sets" true
    (bad { small_config with Cache.size_bytes = 1024 + 64 });
  check Alcotest.bool "default config valid" true
    (try Cache.validate_config Cache.default_config; true with Invalid_argument _ -> false)

let cache_default_is_paper () =
  let c = Cache.default_config in
  check Alcotest.int "64 KB" (64 * 1024) c.Cache.size_bytes;
  check Alcotest.int "2-way" 2 c.Cache.assoc;
  check Alcotest.int "16-cycle memory" 16 c.Cache.miss_latency

let cache_limited_mshrs () =
  (* With 2 MSHRs, a third concurrent primary miss waits for the earliest
     fill before starting its own 16-cycle fetch. *)
  let c = Cache.create { small_config with Cache.mshrs = Some 2 } in
  let r1 = Cache.access c ~cycle:0 ~addr:0 ~write:false in
  let r2 = Cache.access c ~cycle:1 ~addr:64 ~write:false in
  let r3 = Cache.access c ~cycle:2 ~addr:128 ~write:false in
  check Alcotest.int "first miss" 16 r1;
  check Alcotest.int "second miss" 17 r2;
  check Alcotest.int "third waits for the first fill" 32 r3;
  check Alcotest.int "one stall recorded" 1 (Cache.mshr_stalls c);
  (* Secondary misses never consume an MSHR. *)
  let r4 = Cache.access c ~cycle:3 ~addr:130 ~write:false in
  check Alcotest.int "merge still free" r3 r4

let cache_inverted_never_stalls () =
  let c = Cache.create small_config in
  for i = 0 to 63 do
    ignore (Cache.access c ~cycle:0 ~addr:(i * 32) ~write:false)
  done;
  check Alcotest.int "inverted MSHR: no stalls" 0 (Cache.mshr_stalls c)

let cache_mshr_frees_over_time () =
  let c = Cache.create { small_config with Cache.mshrs = Some 1 } in
  ignore (Cache.access c ~cycle:0 ~addr:0 ~write:false);
  (* The fill completed by cycle 20, so the next miss starts fresh. *)
  let r = Cache.access c ~cycle:20 ~addr:64 ~write:false in
  check Alcotest.int "no stall after the fill" 36 r;
  check Alcotest.int "no stalls counted" 0 (Cache.mshr_stalls c)

let cache_ready_never_early =
  QCheck.Test.make ~name:"cache ready cycle is never before the access" ~count:200
    QCheck.(pair (int_bound 4096) (int_bound 50))
    (fun (addr, gap) ->
      let c = Cache.create small_config in
      let r1 = Cache.access c ~cycle:0 ~addr ~write:false in
      let r2 = Cache.access c ~cycle:gap ~addr:(addr + 8) ~write:false in
      r1 >= 0 && r2 >= gap)

let suite =
  ( "branch+cache",
    [ case "predictor: biased branch converges" bp_biased_converges;
      case "predictor: alternating pattern via global history" bp_pattern_learned_by_history;
      case "predictor: period-4 pattern" bp_period4_pattern;
      case "predictor: training lag hurts" bp_training_lag_visible;
      case "predictor: statistics" bp_stats;
      case "predictor: distinct pcs are independent" bp_distinct_pcs_independent;
      case "cache: hit after fill" cache_hit_after_fill;
      case "cache: same-line miss merges" cache_same_line_merges;
      case "cache: unlimited outstanding misses" cache_unlimited_outstanding;
      case "cache: LRU eviction" cache_lru_eviction;
      case "cache: write allocates" cache_write_allocates;
      case "cache: miss rate and reset" cache_miss_rate;
      case "cache: probe" cache_probe;
      case "cache: cycles must be monotone" cache_monotone_cycles;
      case "cache: config validation" cache_config_validation;
      case "cache: paper default config" cache_default_is_paper;
      case "cache: limited MSHRs stall (ISCA'94)" cache_limited_mshrs;
      case "cache: inverted MSHR never stalls" cache_inverted_never_stalls;
      case "cache: MSHRs free over time" cache_mshr_frees_over_time;
      QCheck_alcotest.to_alcotest cache_ready_never_early ] )
