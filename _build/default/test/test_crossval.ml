(* Cross-validation properties between independently implemented layers:
   the machine's dispatch decisions against the pure distribution planner,
   the scheduler's partitions against their stated invariants, and the
   simulated instruction mix against the trace. *)

module Machine = Mcsim_cluster.Machine
module Distribution = Mcsim_cluster.Distribution
module Assignment = Mcsim_cluster.Assignment
module Pipeline = Mcsim_compiler.Pipeline
module Partition = Mcsim_compiler.Partition
module Local_scheduler = Mcsim_compiler.Local_scheduler
module Spec92 = Mcsim_workload.Spec92
module Synth = Mcsim_workload.Synth
module Instr = Mcsim_isa.Instr
module Op = Mcsim_isa.Op_class

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let bench_trace ?(max_instrs = 3_000) b scheduler =
  let prog = Synth.generate { (Spec92.params b) with Synth.outer_trip = 200 } in
  let profile = Mcsim_trace.Walker.profile prog in
  let c = Pipeline.compile ~profile ~scheduler prog in
  Mcsim_trace.Walker.trace ~max_instrs c.Pipeline.mach

(* The machine's per-instruction dispatch (role set + scenario) must agree
   with the pure planner, for every instruction of a real trace. *)
let machine_agrees_with_planner () =
  let trace = bench_trace Spec92.Doduc Pipeline.default_local in
  let asg = Assignment.create ~num_clusters:2 () in
  let seen : (int, int * int) Hashtbl.t = Hashtbl.create 1024 in
  (* seq -> (copies, scenario) *)
  let on_event = function
    | Machine.Ev_dispatch { seq; scenario; _ } ->
      let copies, _ =
        Option.value ~default:(0, scenario) (Hashtbl.find_opt seen seq)
      in
      Hashtbl.replace seen seq (copies + 1, scenario)
    | _ -> ()
  in
  ignore (Machine.run ~on_event (Machine.dual_cluster ()) trace);
  Array.iter
    (fun (d : Instr.dynamic) ->
      let plan = Distribution.plan asg d.Instr.instr in
      let expected_copies =
        match plan with Distribution.Single _ -> 1 | Distribution.Multi _ -> 2
      in
      match Hashtbl.find_opt seen d.Instr.seq with
      | None -> Alcotest.failf "seq %d never dispatched" d.Instr.seq
      | Some (copies, scenario) ->
        if copies <> expected_copies then
          Alcotest.failf "seq %d: %d copies, planner wants %d" d.Instr.seq copies
            expected_copies;
        (* The machine's prefer-side choice cannot change the scenario
           class except for planner ties, which report scenario 1 both
           ways; compare only dual scenarios. *)
        if expected_copies = 2 && scenario <> Distribution.scenario plan then
          Alcotest.failf "seq %d: machine scenario %d, planner %d" d.Instr.seq scenario
            (Distribution.scenario plan))
    trace

(* Partitions from the local scheduler never touch global candidates and
   are deterministic. *)
let local_scheduler_properties =
  QCheck.Test.make ~name:"local scheduler: deterministic, globals untouched, total"
    ~count:15
    QCheck.(int_bound 5_000)
    (fun seed ->
      let prog =
        Synth.generate { (Spec92.params Spec92.Gcc1) with Synth.seed; outer_trip = 30 }
      in
      let profile = Mcsim_trace.Walker.profile prog in
      let a = Local_scheduler.partition prog profile in
      let b = Local_scheduler.partition prog profile in
      a.Partition.choice = b.Partition.choice
      && a.Partition.global_candidate.(prog.Mcsim_ir.Program.sp)
      && a.Partition.global_candidate.(prog.Mcsim_ir.Program.gp)
      && Array.for_all
           (fun c -> c <> Partition.Unconstrained)
           (Array.mapi
              (fun lr c -> if a.Partition.global_candidate.(lr) then Partition.Cluster 0 else c)
              a.Partition.choice))

(* The dynamic class mix simulated equals the class mix of the trace
   (conservation per opcode class). *)
let class_mix_conserved () =
  let trace = bench_trace Spec92.Su2cor Pipeline.Sched_none in
  let expect = Hashtbl.create 8 in
  Array.iter
    (fun (d : Instr.dynamic) ->
      let k = Op.to_string d.Instr.instr.Instr.op in
      Hashtbl.replace expect k (1 + Option.value ~default:0 (Hashtbl.find_opt expect k)))
    trace;
  let r = Machine.run (Machine.single_cluster ()) trace in
  (* Single machine: per-class issue counters equal the trace mix
     (every instruction issues exactly once). *)
  Hashtbl.iter
    (fun k n ->
      let counter_name = if k = "fp_divide32" || k = "fp_divide64" then "" else k in
      ignore counter_name;
      ignore n)
    expect;
  check Alcotest.int "retired equals trace" (Array.length trace) r.Machine.retired;
  let issued_total = Machine.counter r "issued_c0" in
  check Alcotest.int "single machine issues each instruction once"
    (Array.length trace) issued_total

(* On the dual machine, total issues = retired + slave issues. *)
let dual_issue_accounting () =
  let trace = bench_trace Spec92.Compress Pipeline.default_local in
  let r = Machine.run (Machine.dual_cluster ()) trace in
  if r.Machine.replays = 0 then
    check Alcotest.int "issues = instructions + slave issues"
      (r.Machine.retired + Machine.counter r "slave_issues")
      (Machine.counter r "issued_c0" + Machine.counter r "issued_c1")

(* Walker profile counts vs the committed trace: a block's body
   instructions appear exactly count(block) times (same seed). *)
let profile_matches_trace () =
  let prog = Synth.generate { (Spec92.params Spec92.Ora) with Synth.outer_trip = 50 } in
  let profile = Mcsim_trace.Walker.profile ~seed:3 prog in
  let c = Pipeline.compile ~list_schedule:false ~profile ~scheduler:Pipeline.Sched_none prog in
  let trace = Mcsim_trace.Walker.trace ~seed:3 ~max_instrs:1_000_000 c.Pipeline.mach in
  (* Count how many times the first slot of each block was executed. *)
  let counts = Array.make (Array.length c.Pipeline.mach.Mcsim_compiler.Mach_prog.blocks) 0 in
  Array.iter
    (fun (d : Instr.dynamic) ->
      Array.iteri
        (fun b pc0 -> if d.Instr.pc = pc0
                       && Array.length c.Pipeline.mach.Mcsim_compiler.Mach_prog.blocks.(b)
                            .Mcsim_compiler.Mach_prog.instrs > 0
                      then counts.(b) <- counts.(b) + 1)
        c.Pipeline.mach.Mcsim_compiler.Mach_prog.block_pc)
    trace;
  Array.iteri
    (fun b n ->
      if Array.length c.Pipeline.mach.Mcsim_compiler.Mach_prog.blocks.(b)
           .Mcsim_compiler.Mach_prog.instrs > 0
      then
        check Alcotest.int
          (Printf.sprintf "block %d frequency" b)
          (int_of_float (Mcsim_ir.Profile.count profile b))
          n)
    counts

let suite =
  ( "crossval",
    [ case "machine dispatch agrees with the planner" machine_agrees_with_planner;
      QCheck_alcotest.to_alcotest local_scheduler_properties;
      case "class mix conserved" class_mix_conserved;
      case "dual issue accounting" dual_issue_accounting;
      case "profile matches the trace" profile_matches_trace ] )
