(* Golden-output tests: exact renderings of the deterministic artifacts.
   These pin the user-visible behaviour; update them deliberately when the
   model changes. *)

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let figure6_render () =
  let got = Mcsim.Figure6.render (Mcsim.Figure6.run ()) in
  let expected =
    "Figure 6: local-scheduler walkthrough\n\
     block visit order:      4 1 5 3 2   (paper: 4 1 5 3 2)\n\
     assignment order:       A B G H C D E   (paper: A B G H C D E)\n\
     clusters:               A=C0 B=C0 C=C0 D=C1 E=C1 G=C0 H=C1 (S is a global-register \
     candidate)\n"
  in
  check Alcotest.string "figure6 text" expected got

let table1_render () =
  let got = Mcsim.Config.table1 () in
  let expected =
    "#                    int mul  int other  fp all  fp div  fp other  ld/st  control\n\
     -------------------  -------  ---------  ------  ------  --------  -----  -------  \
     ---------\n\
     1 single, per cycle  8        8          4       4       4         4      4        \
     (total 8)\n\
     2 dual, per cluster  4        4          2       2       2         2      2        \
     (total 4)\n\
     latency in cycles    6        1          -       8/16    3         2*     1\n\
     * one load-delay slot: load-to-use latency is 2 cycles on a hit.\n\
     The fp divider is unpipelined (8-cycle 32-bit, 16-cycle 64-bit divides).\n"
  in
  check Alcotest.string "table1 text" expected got

let scenario2_events () =
  let o = Mcsim.Scenario.run 2 in
  let got =
    String.concat "; "
      (List.map
         (fun e -> Format.asprintf "%a" Mcsim_cluster.Machine.pp_event e)
         o.Mcsim.Scenario.events)
  in
  let expected =
    "[  16] fetch #2; [  17] dispatch #2 C0 master (scenario 2); \
     [  17] dispatch #2 C1 slave (scenario 2); [  19] issue #2 C1 slave; \
     [  20] operand #2 C1 -> operand buffer of C0; [  20] issue #2 C0 master; \
     [  21] writeback #2 C0 master; [  21] retire #2"
  in
  check Alcotest.string "scenario 2 event log" expected got

let scenario5_events () =
  let o = Mcsim.Scenario.run 5 in
  let got =
    String.concat "; "
      (List.map
         (fun e -> Format.asprintf "%a" Mcsim_cluster.Machine.pp_event e)
         o.Mcsim.Scenario.events)
  in
  let expected =
    "[  16] fetch #2; [  17] dispatch #2 C0 master (scenario 5); \
     [  17] dispatch #2 C1 slave (scenario 5); [  19] issue #2 C1 slave; \
     [  20] operand #2 C1 -> operand buffer of C0; [  20] suspend #2 C1; \
     [  20] issue #2 C0 master; [  21] writeback #2 C0 master; \
     [  21] result #2 C0 -> result buffer of C1; [  21] wakeup #2 C1; \
     [  22] writeback #2 C1 slave; [  22] retire #2"
  in
  check Alcotest.string "scenario 5 event log" expected got

let palacharla_numbers () =
  let module P = Mcsim_timing.Palacharla in
  check Alcotest.string "summary"
    "0.35um: 1248 -> 1484 (1.19x); 0.18um: 642 -> 1168 (1.82x)"
    (Printf.sprintf "0.35um: %.0f -> %.0f (%.2fx); 0.18um: %.0f -> %.0f (%.2fx)"
       (P.cycle_time (P.dual_cluster_config P.F0_35))
       (P.cycle_time (P.single_cluster_config P.F0_35))
       (P.eight_vs_four_ratio P.F0_35)
       (P.cycle_time (P.dual_cluster_config P.F0_18))
       (P.cycle_time (P.single_cluster_config P.F0_18))
       (P.eight_vs_four_ratio P.F0_18))

let suite =
  ( "golden",
    [ case "figure 6 rendering" figure6_render;
      case "table 1 rendering" table1_render;
      case "scenario 2 event log" scenario2_events;
      case "scenario 5 event log" scenario5_events;
      case "palacharla anchor numbers" palacharla_numbers ] )
