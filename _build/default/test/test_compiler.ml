(* Tests for Mcsim_compiler: liveness, the list scheduler, partitioners,
   the local scheduler, register allocation, and lowering. *)

module Il = Mcsim_ir.Il
module Program = Mcsim_ir.Program
module Profile = Mcsim_ir.Profile
module Builder = Program.Builder
module Op = Mcsim_isa.Op_class
module Reg = Mcsim_isa.Reg
module Liveness = Mcsim_compiler.Liveness
module List_scheduler = Mcsim_compiler.List_scheduler
module Partition = Mcsim_compiler.Partition
module Local_scheduler = Mcsim_compiler.Local_scheduler
module Regalloc = Mcsim_compiler.Regalloc
module Lowering = Mcsim_compiler.Lowering
module Mach_prog = Mcsim_compiler.Mach_prog
module Pipeline = Mcsim_compiler.Pipeline
module Synth = Mcsim_workload.Synth
module Spec92 = Mcsim_workload.Spec92

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* A diamond with a loop back-edge:
     b0: x <- const; y <- const
     b0 -> b1 (x used) or b2 (y used); both -> b3; b3 loops to b0 or halts. *)
let diamond_program () =
  let b = Builder.create ~name:"diamond" in
  let x = Builder.fresh_lr b ~name:"x" Il.Bank_int in
  let y = Builder.fresh_lr b ~name:"y" Il.Bank_int in
  let t = Builder.fresh_lr b ~name:"t" Il.Bank_int in
  let b0 = Builder.reserve_block b in
  let b1 = Builder.reserve_block b in
  let b2 = Builder.reserve_block b in
  let b3 = Builder.reserve_block b in
  let exit_blk = Builder.add_block b [] Il.Halt in
  Builder.define_block b b0
    [ Il.instr ~op:Op.Int_other ~srcs:[] ~dst:x ();
      Il.instr ~op:Op.Int_other ~srcs:[] ~dst:y () ]
    (Il.Cond { src = Some x; model = Mcsim_ir.Branch_model.Taken_prob 0.5; taken = b1;
               not_taken = b2 });
  Builder.define_block b b1
    [ Il.instr ~op:Op.Int_other ~srcs:[ x; x ] ~dst:t () ]
    (Il.Jump b3);
  Builder.define_block b b2
    [ Il.instr ~op:Op.Int_other ~srcs:[ y; y ] ~dst:t () ]
    (Il.Fallthrough b3);
  Builder.define_block b b3
    [ Il.instr ~op:Op.Int_other ~srcs:[ t; x ] ~dst:t () ]
    (Il.Cond { src = Some t; model = Mcsim_ir.Branch_model.Loop { trip = 4 }; taken = b0;
               not_taken = exit_blk });
  (Builder.finish b ~entry:b0, x, y, t)

(* --------------------------- liveness ------------------------------ *)

let live_sets () =
  let p, x, y, t = diamond_program () in
  let l = Liveness.analyse p in
  check Alcotest.bool "x live into b1" true (List.mem x (Liveness.live_in l 1));
  check Alcotest.bool "y live into b2" true (List.mem y (Liveness.live_in l 2));
  check Alcotest.bool "y not live into b1" false (List.mem y (Liveness.live_in l 1));
  check Alcotest.bool "t live into b3" true (List.mem t (Liveness.live_in l 3));
  (* x is redefined at the top of b0 before any later use, so the loop
     does not keep it live out of b3. *)
  check Alcotest.bool "x dead out of b3" false (List.mem x (Liveness.live_out l 3));
  check Alcotest.bool "x live into b3" true (List.mem x (Liveness.live_in l 3))

let live_interference () =
  let p, x, y, t = diamond_program () in
  let l = Liveness.analyse p in
  check Alcotest.bool "x and y interfere" true (Liveness.interferes l x y);
  check Alcotest.bool "x and t interfere (loop)" true (Liveness.interferes l x t);
  check Alcotest.bool "symmetric" true (Liveness.interferes l y x);
  check Alcotest.bool "no self edge" false (Liveness.interferes l x x)

let live_sites () =
  let p, x, _, t = diamond_program () in
  let l = Liveness.analyse p in
  check Alcotest.(list (pair int int)) "x defined once in b0" [ (0, 0) ]
    (Liveness.def_sites l x);
  check Alcotest.int "t has three defs" 3 (List.length (Liveness.def_sites l t));
  check Alcotest.bool "x used by b0 terminator" true
    (List.mem (0, 2) (Liveness.use_sites l x));
  check Alcotest.bool "use_count counts defs+uses" true (Liveness.use_count l x >= 4);
  ignore p

let live_sp_gp_excluded () =
  let p, x, _, _ = diamond_program () in
  let l = Liveness.analyse p in
  check Alcotest.bool "sp never interferes" false
    (Liveness.interferes l p.Program.sp x);
  check Alcotest.int "sp degree 0" 0 (Liveness.degree l p.Program.sp)

let live_cross_bank_never_interferes =
  QCheck.Test.make ~name:"interference is same-bank only" ~count:20
    QCheck.(int_bound 1000)
    (fun seed ->
      let prog = Synth.generate { (Spec92.params Spec92.Doduc) with Synth.seed; outer_trip = 5 } in
      let l = Liveness.analyse prog in
      let n = Program.num_lrs prog in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Liveness.interferes l a b && Program.lr_bank prog a <> Program.lr_bank prog b
          then ok := false
        done
      done;
      !ok)

(* ------------------------ list scheduler --------------------------- *)

let ls_respects_dependences () =
  let mk_instr srcs dst = Il.instr ~op:Op.Int_other ~srcs ?dst () in
  let block =
    [| mk_instr [] (Some 2); mk_instr [ 2 ] (Some 3); mk_instr [] (Some 4);
       mk_instr [ 3; 4 ] (Some 5) |]
  in
  let out = List_scheduler.schedule_block block in
  check Alcotest.bool "valid schedule" true (List_scheduler.respects_dependences block out)

let ls_hoists_long_latency () =
  (* A late independent multiply should be hoisted above short adds. *)
  let add srcs dst = Il.instr ~op:Op.Int_other ~srcs ~dst () in
  let block =
    [| add [] 2; add [ 2 ] 3;
       Il.instr ~op:Op.Int_multiply ~srcs:[] ~dst:4 ();
       add [ 3; 4 ] 5 |]
  in
  let out = List_scheduler.schedule_block block in
  check Alcotest.bool "multiply scheduled first" true
    (Op.equal out.(0).Il.op Op.Int_multiply);
  check Alcotest.bool "still valid" true (List_scheduler.respects_dependences block out)

let ls_keeps_memory_order () =
  let slot addr = Mcsim_ir.Mem_stream.Fixed { addr } in
  let block =
    [| Il.instr ~op:Op.Store ~srcs:[ 2; 0 ] ~mem:(slot 0) ();
       Il.instr ~op:Op.Load ~srcs:[ 0 ] ~dst:3 ~mem:(slot 0) ();
       Il.instr ~op:Op.Store ~srcs:[ 3; 0 ] ~mem:(slot 8) () |]
  in
  let out = List_scheduler.schedule_block block in
  let ops = Array.to_list (Array.map (fun i -> i.Il.op) out) in
  check Alcotest.bool "memory ops keep order" true
    (ops = [ Op.Store; Op.Load; Op.Store ])

let ls_whole_program_valid () =
  let p, _, _, _ = diamond_program () in
  let p' = List_scheduler.schedule p in
  check Alcotest.int "same shape" (Program.num_static_instrs p) (Program.num_static_instrs p')

let ls_random_blocks_valid =
  QCheck.Test.make ~name:"list scheduler respects dependences on random blocks" ~count:100
    QCheck.(pair (int_bound 10_000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Mcsim_util.Rng.create seed in
      let block =
        Array.init n (fun _ ->
            let nsrc = Mcsim_util.Rng.int rng 3 in
            let srcs = List.init nsrc (fun _ -> 2 + Mcsim_util.Rng.int rng 6) in
            let dst = if Mcsim_util.Rng.bool rng then Some (2 + Mcsim_util.Rng.int rng 6) else None in
            match dst with
            | Some d -> Il.instr ~op:Op.Int_other ~srcs ~dst:d ()
            | None -> Il.instr ~op:Op.Store ~srcs:(2 :: srcs |> List.filteri (fun i _ -> i < 2))
                        ~mem:(Mcsim_ir.Mem_stream.Fixed { addr = 0 }) ())
      in
      List_scheduler.respects_dependences block (List_scheduler.schedule_block block))

(* -------------------------- partitions ----------------------------- *)

let part_none () =
  let p, x, _, _ = diamond_program () in
  let t = Partition.none p in
  check Alcotest.bool "unconstrained" true (Partition.cluster_of t x = Partition.Unconstrained);
  check Alcotest.bool "sp global" true t.Partition.global_candidate.(p.Program.sp);
  let _, _, u, g = Partition.counts t in
  check Alcotest.int "two globals" 2 g;
  check Alcotest.int "rest unconstrained" (Program.num_lrs p - 2) u

let part_round_robin_balanced () =
  let prog = Synth.generate { (Spec92.params Spec92.Compress) with Synth.outer_trip = 5 } in
  let t = Partition.round_robin prog in
  let c0, c1, u, _ = Partition.counts t in
  check Alcotest.int "nothing unconstrained" 0 u;
  check Alcotest.bool "balanced within one" true (abs (c0 - c1) <= 1)

let part_random_deterministic () =
  let prog = Synth.generate { (Spec92.params Spec92.Compress) with Synth.outer_trip = 5 } in
  let a = Partition.random ~seed:3 prog and b = Partition.random ~seed:3 prog in
  check Alcotest.bool "same seed same partition" true (a.Partition.choice = b.Partition.choice)

(* ------------------------ local scheduler -------------------------- *)

let lsch_figure6_block_order () =
  let o = Mcsim.Figure6.run () in
  check Alcotest.(list int) "paper order 4 1 5 3 2" [ 4; 1; 5; 3; 2 ]
    o.Mcsim.Figure6.block_visit_order

let lsch_figure6_assignment_order () =
  let o = Mcsim.Figure6.run () in
  check Alcotest.(list string) "paper order A B G H C D E"
    [ "A"; "B"; "G"; "H"; "C"; "D"; "E" ]
    o.Mcsim.Figure6.assignment_order

let lsch_all_assigned () =
  let prog = Synth.generate { (Spec92.params Spec92.Gcc1) with Synth.outer_trip = 20 } in
  let profile = Mcsim_trace.Walker.profile prog in
  let t = Local_scheduler.partition prog profile in
  let _, _, u, _ = Partition.counts t in
  check Alcotest.int "no live range left unconstrained" 0 u

let lsch_balances_weighted_work () =
  let prog = Synth.generate { (Spec92.params Spec92.Compress) with Synth.outer_trip = 50 } in
  let profile = Mcsim_trace.Walker.profile prog in
  let t = Local_scheduler.partition prog profile in
  let c0, c1, _, _ = Partition.counts t in
  (* Not necessarily equal counts, but both clusters must be used. *)
  check Alcotest.bool "both clusters populated" true (c0 > 0 && c1 > 0)

let lsch_block_order_ties () =
  (* Equal estimates break ties by static size, then id. *)
  let b = Builder.create ~name:"ties" in
  let x = Builder.fresh_lr b ~name:"x" Il.Bank_int in
  let add = Il.instr ~op:Op.Int_other ~srcs:[] ~dst:x () in
  let b0 = Builder.add_block b [ add ] (Il.Fallthrough 1) in
  let b1 = Builder.add_block b [ add; add ] (Il.Fallthrough 2) in
  let b2 = Builder.add_block b [ add; add ] Il.Halt in
  ignore (b0, b1, b2);
  let p = Builder.finish b ~entry:0 in
  let profile = Profile.of_counts [| 5.0; 5.0; 5.0 |] in
  check Alcotest.(list int) "bigger blocks first, then id" [ 1; 2; 0 ]
    (Local_scheduler.block_order p profile)

(* ------------------------ register allocation ---------------------- *)

let ra_colors () =
  check Alcotest.int "29 unconstrained int colors" 29
    (List.length (Regalloc.int_colors ~cluster:Partition.Unconstrained ()));
  check Alcotest.int "15 cluster-0 int colors" 15
    (List.length (Regalloc.int_colors ~cluster:(Partition.Cluster 0) ()));
  check Alcotest.int "14 cluster-1 int colors" 14
    (List.length (Regalloc.int_colors ~cluster:(Partition.Cluster 1) ()));
  check Alcotest.int "31 unconstrained fp colors" 31
    (List.length (Regalloc.fp_colors ~cluster:Partition.Unconstrained ()));
  check Alcotest.int "8 cluster-0 int colors of 4" 8
    (List.length (Regalloc.int_colors ~clusters:4 ~cluster:(Partition.Cluster 0) ()));
  check Alcotest.bool "no reserved registers" true
    (List.for_all
       (fun r -> not (Reg.equal r Reg.sp || Reg.equal r Reg.gp || Reg.is_zero r))
       (Regalloc.int_colors ~cluster:Partition.Unconstrained ()))

let ra_simple_alloc () =
  let p, x, _, _ = diamond_program () in
  let r = Regalloc.allocate p (Partition.none p) in
  Regalloc.check r;
  check Alcotest.int "no spills" 0 (List.length r.Regalloc.spilled_lrs);
  check Alcotest.int "one round" 1 r.Regalloc.rounds;
  check Alcotest.bool "x got a register" true (r.Regalloc.reg_of.(x) <> None);
  check Alcotest.bool "sp got r30" true
    (r.Regalloc.reg_of.(p.Program.sp) = Some Reg.sp)

let ra_benchmarks_check () =
  List.iter
    (fun bench ->
      let prog = Synth.generate { (Spec92.params bench) with Synth.outer_trip = 10 } in
      let profile = Mcsim_trace.Walker.profile prog in
      List.iter
        (fun scheduler ->
          let c = Pipeline.compile ~profile ~scheduler prog in
          Regalloc.check c.Pipeline.alloc)
        [ Pipeline.Sched_none; Pipeline.default_local; Pipeline.Sched_round_robin ])
    [ Spec92.Compress; Spec92.Doduc ]

(* Build a program with far more simultaneously-live integer ranges than
   there are registers, forcing memory spills. *)
let high_pressure_program n =
  let b = Builder.create ~name:"pressure" in
  let lrs = List.init n (fun i -> Builder.fresh_lr b ~name:(Printf.sprintf "v%d" i) Il.Bank_int) in
  let defs = List.map (fun lr -> Il.instr ~op:Op.Int_other ~srcs:[] ~dst:lr ()) lrs in
  let sum = Builder.fresh_lr b ~name:"sum" Il.Bank_int in
  let first_use =
    match lrs with
    | a :: bb :: _ -> Il.instr ~op:Op.Int_other ~srcs:[ a; bb ] ~dst:sum ()
    | _ -> assert false
  in
  let uses =
    first_use
    :: List.map (fun lr -> Il.instr ~op:Op.Int_other ~srcs:[ sum; lr ] ~dst:sum ()) lrs
  in
  ignore (Builder.add_block b (defs @ uses) Il.Halt);
  Builder.finish b ~entry:0

let ra_spills_under_pressure () =
  let p = high_pressure_program 40 in
  let r = Regalloc.allocate p (Partition.none p) in
  Regalloc.check r;
  check Alcotest.bool "memory spills happened" true (r.Regalloc.spilled_lrs <> []);
  check Alcotest.bool "multiple rounds" true (r.Regalloc.rounds > 1);
  (* Spill code appears in the rewritten program. *)
  let has_loads =
    Array.exists
      (fun (blk : Program.block) ->
        Array.exists (fun i -> Op.equal i.Il.op Op.Load) blk.Program.instrs)
      r.Regalloc.prog.Program.blocks
  in
  check Alcotest.bool "loads inserted" true has_loads

let ra_cross_cluster_spill () =
  (* Constrain everything to cluster 0 (15 colors); 20 simultaneous live
     ranges overflow into cluster 1 before any memory spill. *)
  let p = high_pressure_program 20 in
  let part = Partition.none p in
  Array.iteri
    (fun lr _ ->
      if not part.Partition.global_candidate.(lr) then
        part.Partition.choice.(lr) <- Partition.Cluster 0)
    part.Partition.choice;
  let r = Regalloc.allocate p part in
  Regalloc.check r;
  check Alcotest.bool "cross-cluster spills used" true (r.Regalloc.cross_cluster <> []);
  check Alcotest.(list int) "no memory spills needed" [] r.Regalloc.spilled_lrs

let ra_partition_size_mismatch () =
  let p, _, _, _ = diamond_program () in
  let small =
    { Partition.clusters = 2; choice = [| Partition.Unconstrained |];
      global_candidate = [| false |] }
  in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Regalloc.allocate: partition size mismatch") (fun () ->
      ignore (Regalloc.allocate p small))

(* --------------------------- lowering ------------------------------ *)

let low_machine_program () =
  let p, _, _, _ = diamond_program () in
  let r = Regalloc.allocate p (Partition.none p) in
  let m = Lowering.lower r in
  check Alcotest.int "same block count" (Program.num_blocks p) (Mach_prog.num_blocks m);
  check Alcotest.int "same static size" (Program.num_static_instrs p)
    (Mach_prog.static_instrs m);
  (* Every lowered operand is an architectural register of the right bank. *)
  Array.iter
    (fun (blk : Mach_prog.block) ->
      Array.iter
        (fun mi ->
          List.iter
            (fun reg -> check Alcotest.bool "integer op, integer regs" true (Reg.is_int reg))
            (Mcsim_isa.Instr.regs mi.Mach_prog.mi))
        blk.Mach_prog.instrs)
    m.Mach_prog.blocks

let low_layout_pcs () =
  let p, _, _, _ = diamond_program () in
  let m = Lowering.lower (Regalloc.allocate p (Partition.none p)) in
  check Alcotest.int "entry at 0" 0 m.Mach_prog.block_pc.(0);
  check Alcotest.int "pc_of_slot" (m.Mach_prog.block_pc.(1) + 1)
    (Mach_prog.pc_of_slot m ~block:1 ~index:1)

(* --------------------------- pipeline ------------------------------ *)

let pipe_local_reduces_duals () =
  let prog = Synth.generate { (Spec92.params Spec92.Compress) with Synth.outer_trip = 50 } in
  let profile = Mcsim_trace.Walker.profile prog in
  let asg = Mcsim_cluster.Assignment.create ~num_clusters:2 () in
  let duals scheduler =
    let c = Pipeline.compile ~profile ~scheduler prog in
    snd (Pipeline.dual_distribution_count asg c.Pipeline.mach)
  in
  let d_none = duals Pipeline.Sched_none in
  let d_local = duals Pipeline.default_local in
  check Alcotest.bool
    (Printf.sprintf "local (%d) below none (%d)" d_local d_none)
    true (d_local < d_none)

let pipe_scheduler_names () =
  check Alcotest.string "none" "none" (Pipeline.scheduler_name Pipeline.Sched_none);
  check Alcotest.string "local" "local" (Pipeline.scheduler_name Pipeline.default_local);
  check Alcotest.string "rr" "round_robin" (Pipeline.scheduler_name Pipeline.Sched_round_robin)

let pipe_local_needs_profile () =
  let p, _, _, _ = diamond_program () in
  Alcotest.check_raises "missing profile"
    (Invalid_argument "Pipeline.compile: the local scheduler needs a profile") (fun () ->
      ignore (Pipeline.compile ~scheduler:Pipeline.default_local p))

let suite =
  ( "compiler",
    [ case "liveness: live sets" live_sets;
      case "liveness: interference" live_interference;
      case "liveness: def/use sites" live_sites;
      case "liveness: sp/gp excluded from the graph" live_sp_gp_excluded;
      QCheck_alcotest.to_alcotest live_cross_bank_never_interferes;
      case "list scheduler: respects dependences" ls_respects_dependences;
      case "list scheduler: hoists long latency ops" ls_hoists_long_latency;
      case "list scheduler: memory order kept" ls_keeps_memory_order;
      case "list scheduler: whole program" ls_whole_program_valid;
      QCheck_alcotest.to_alcotest ls_random_blocks_valid;
      case "partition: none" part_none;
      case "partition: round robin balanced" part_round_robin_balanced;
      case "partition: random deterministic" part_random_deterministic;
      case "local scheduler: Figure-6 block order" lsch_figure6_block_order;
      case "local scheduler: Figure-6 assignment order" lsch_figure6_assignment_order;
      case "local scheduler: assigns every live range" lsch_all_assigned;
      case "local scheduler: uses both clusters" lsch_balances_weighted_work;
      case "local scheduler: block-order tie breaking" lsch_block_order_ties;
      case "regalloc: color sets" ra_colors;
      case "regalloc: simple allocation" ra_simple_alloc;
      case "regalloc: benchmarks pass the checker" ra_benchmarks_check;
      case "regalloc: spills under pressure" ra_spills_under_pressure;
      case "regalloc: spill to the other cluster first" ra_cross_cluster_spill;
      case "regalloc: partition size mismatch" ra_partition_size_mismatch;
      case "lowering: machine program" low_machine_program;
      case "lowering: layout pcs" low_layout_pcs;
      case "pipeline: local scheduler reduces dual distribution" pipe_local_reduces_duals;
      case "pipeline: scheduler names" pipe_scheduler_names;
      case "pipeline: local requires a profile" pipe_local_needs_profile ] )
