(* Command-line front end for the multicluster simulator. *)

open Cmdliner

(* One positive-int parser for every count-like flag (-n, -j, ...): a
   malformed or non-positive value is a one-line usage error naming the
   flag, never an exception backtrace. *)
let pos_int ~what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let max_instrs_arg =
  let doc = "Committed-trace length per run." in
  Arg.(value & opt (pos_int ~what:"N") 60_000 & info [ "n"; "max-instrs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for branch outcomes and address streams." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Number of domains to fan independent simulations out over (default: the \
     number of cores). Results are identical for every value."
  in
  Arg.(value
       & opt (pos_int ~what:"JOBS") (Mcsim_util.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

(* A sampling policy as INTERVAL:WARMUP:DETAIL; the policy's offset seed
   is taken from --seed at the point of use. *)
let sample_conv =
  let parse s =
    match Mcsim_sampling.Sampling.policy_of_string s with
    | Ok p -> Ok p
    | Error m ->
      (* cmdliner already names the option; drop the library's prefix. *)
      let m =
        match String.index_opt m ':' with
        | Some i when String.length m > i + 2 && String.sub m 0 i = "Sampling" ->
          String.sub m (i + 2) (String.length m - i - 2)
        | _ -> m
      in
      Error (`Msg m)
  in
  Arg.conv
    (parse, fun fmt p -> Format.pp_print_string fmt (Mcsim_sampling.Sampling.policy_to_string p))

let sample_arg =
  let doc =
    "Sampled simulation: replace every detailed machine run with SMARTS-style \
     systematic interval sampling under policy $(docv) (instructions per sampling \
     unit : functionally-warmed detailed-warmup prefix : measured suffix, e.g. \
     25000:2000:2000). Cycle counts become extrapolations from the sampled mean CPI."
  in
  Arg.(value & opt (some sample_conv) None & info [ "sample" ] ~docv:"I:W:D" ~doc)

(* Expected library failures (cycle-limit guard, config and sampling
   validation, unreadable files, stale checkpoints) are user errors: one
   line on stderr and exit 1, never a backtrace. *)
let wrap = Mcsim.Cli_errors.wrap

module Json = Mcsim_obs.Json

let nonneg_int ~what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "%s must be a non-negative integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let retries_arg =
  let doc =
    "Retry each failed simulation unit up to $(docv) more times (with a deterministic \
     doubling backoff) before declaring it permanently failed."
  in
  Arg.(value & opt (nonneg_int ~what:"RETRIES") 0 & info [ "retries" ] ~docv:"N" ~doc)

let checkpoint_arg =
  let doc =
    "Durable checkpoint directory: record every completed simulation unit under \
     $(docv) and skip units already recorded there, so an interrupted run can be \
     finished by rerunning the same command or by $(b,mcsim resume) $(docv). The \
     directory is refused if it was written by a different configuration."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let trace_cache_arg =
  let doc =
    "Trace-store directory: cache the committed trace of every (benchmark, scheduler, \
     seed, trace length) under $(docv) in the flat binary format and memory-map it \
     back on later runs instead of regenerating it. Cached traces are byte-identical \
     to freshly generated ones, so all results are unchanged. Inspect the store with \
     $(b,mcsim trace-store) $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-cache" ] ~docv:"DIR" ~doc)

let metrics_out_arg =
  let doc =
    "Also write a JSON metrics snapshot (schema_version/kind/manifest/data, see the \
     Observability section of the README) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let result_cache_arg =
  let doc =
    "Result-store directory: the content-addressed global result cache (shared with \
     the $(b,mcsim serve) daemon). Completed units found under $(docv) are decoded \
     instead of recomputed — output is byte-identical — and fresh units are recorded \
     for every later sweep. Unlike --checkpoint the store is not tied to one sweep. \
     Inspect it with $(b,mcsim result-store) $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "result-cache" ] ~docv:"DIR" ~doc)

let engine_arg =
  let doc =
    "Detailed-model issue logic: $(b,wakeup) (dependence-driven, the default) or \
     $(b,scan) (the reference per-cycle queue scan). Results are identical either \
     way; the flag exists so a divergence can be bisected from the command line."
  in
  Arg.(value
       & opt (enum [ ("scan", `Scan); ("wakeup", `Wakeup) ]) `Wakeup
       & info [ "engine" ] ~docv:"ENGINE" ~doc)

let topology_conv =
  let parse s =
    match Mcsim_cluster.Interconnect.of_string s with
    | t -> Ok t
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv
    ( parse,
      fun fmt t -> Format.pp_print_string fmt (Mcsim_cluster.Interconnect.to_string t) )

let topology_arg =
  let doc =
    "Inter-cluster interconnect: $(b,p2p) (dedicated pairwise links, the default — \
     one-cycle transfers), $(b,ring) (neighbor links only, distance is paid in \
     extra transfer cycles), or $(b,xbar) (a shared crossbar, two cycles between \
     any two distinct clusters)."
  in
  Arg.(value
       & opt topology_conv Mcsim_cluster.Interconnect.Point_to_point
       & info [ "topology" ] ~docv:"TOPO" ~doc)

let clusters_arg =
  let doc =
    "Partition the same total resources into $(docv) clusters (1, 2, 4 or 8) wired \
     as --topology, instead of the stock single/dual machine pair; overrides \
     --machine."
  in
  Arg.(value
       & opt (some (pos_int ~what:"CLUSTERS")) None
       & info [ "clusters" ] ~docv:"N" ~doc)

let steering_conv =
  let parse s =
    match Mcsim_cluster.Steering.of_string s with
    | Ok p -> Ok p
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    ( parse,
      fun fmt p -> Format.pp_print_string fmt (Mcsim_cluster.Steering.to_string p) )

let steering_arg =
  let doc =
    "Dispatch-time steering policy: $(b,static) (follow the compile-time partition, \
     the default), $(b,modulo) (round-robin), $(b,dependence) (cluster owning the \
     producer of the first unready source), $(b,load) (least-loaded cluster), or \
     $(b,ineffectual) (predicted-dead results exiled to the last cluster). Dynamic \
     policies need a machine with at least two clusters."
  in
  Arg.(value
       & opt steering_conv Mcsim_cluster.Steering.Static
       & info [ "steering" ] ~docv:"POLICY" ~doc)

(* A dynamic policy on a machine with nowhere to steer to is a usage
   error, reported as a one-line message (not silently a no-op). *)
let check_steerable ~what ~steering ~n_clusters =
  Mcsim_cluster.Steering.require_clustered ~what steering ~clusters:n_clusters

(* --clusters overrides the single/dual selection; --topology applies
   either way (it is part of the machine config, hence of manifests and
   cache identities). Validation of the count itself lives in
   [Machine.config_for_clusters], whose [Invalid_argument] surfaces as a
   one-line error through [Cli_errors.wrap]. *)
let config_of ?(what = "run") ~machine ~clusters ~topology ~steering () =
  let base =
    match clusters with
    | Some n -> Mcsim_cluster.Machine.config_for_clusters ~topology n
    | None -> (
      match machine with
      | `Single -> Mcsim_cluster.Machine.single_cluster ()
      | `Dual -> Mcsim_cluster.Machine.dual_cluster ())
  in
  check_steerable ~what ~steering
    ~n_clusters:(Mcsim_cluster.Assignment.num_clusters base.Mcsim_cluster.Machine.assignment);
  { base with Mcsim_cluster.Machine.topology; steering }

(* Binaries are compiled for the cluster count they run on; without
   --clusters that is the historical default of 2 (the single-cluster
   machine runs the same native binary the dual machine does). *)
let compile_clusters = function Some n -> n | None -> 2

let machine_desc ~machine ~clusters ~topology ~steering =
  let steer =
    if Mcsim_cluster.Steering.is_dynamic steering then
      Printf.sprintf ", %s-steered" (Mcsim_cluster.Steering.to_string steering)
    else ""
  in
  match clusters with
  | Some n ->
    Printf.sprintf "%d-cluster (%s%s)" n
      (Mcsim_cluster.Interconnect.to_string topology)
      steer
  | None -> (
    match machine with
    | `Single -> "single-cluster"
    | `Dual -> "dual-cluster" ^ steer)

let bench_conv =
  let parse s =
    match Mcsim_workload.Spec92.of_name s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown benchmark %S" s))
  in
  Arg.conv (parse, fun fmt b -> Format.pp_print_string fmt (Mcsim_workload.Spec92.name b))

let benchmarks_arg =
  let doc = "Benchmarks to run (default: all six)." in
  Arg.(value & opt (list bench_conv) Mcsim_workload.Spec92.all & info [ "benchmarks" ] ~doc)

let bench_pos =
  Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCHMARK")

(* ------------------------------------------------------------------ *)

let table1_cmd =
  let run () = print_string (Mcsim.Config.table1 ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Print Table 1 (issue rules and latencies).")
    Term.(const run $ const ())

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a text table.")

let four_way_arg =
  Arg.(value & flag
       & info [ "four-way" ] ~doc:"Use the four-way-issue machine pair instead of eight-way.")

(* The body of the table2 command, shared with `mcsim resume`. *)
let table2_impl ~max_instrs ~seed ~benchmarks ~csv ~four_way ~clusters ~topology ~steering
    ~jobs ~sample ~engine ~metrics_out ~retries ~checkpoint ~trace_cache ~result_cache () =
  let t_start = Unix.gettimeofday () in
  if four_way && clusters <> None then
    failwith "table2: --four-way and --clusters are mutually exclusive";
  if clusters = Some 1 then check_steerable ~what:"table2" ~steering ~n_clusters:1;
  (* Steering applies to the clustered side of the pair; the single-cluster
     baseline has nowhere to steer and stays static. *)
  let single_config, dual_config =
    if four_way then
      (Some { (Mcsim_cluster.Machine.single_cluster_4 ()) with Mcsim_cluster.Machine.topology },
       Some
         { (Mcsim_cluster.Machine.dual_cluster_2x2 ()) with
           Mcsim_cluster.Machine.topology;
           steering })
    else
      match clusters with
      | Some n ->
        ( None,
          Some
            { (Mcsim_cluster.Machine.config_for_clusters ~topology n) with
              Mcsim_cluster.Machine.steering } )
      | None ->
        ( None,
          Some
            { (Mcsim_cluster.Machine.dual_cluster ()) with
              Mcsim_cluster.Machine.topology;
              steering } )
  in
  let sampling = Option.map (fun p -> { p with Mcsim_sampling.Sampling.seed }) sample in
  let report =
    Mcsim.Table2.run_report ~jobs ~max_instrs ~seed ~benchmarks ~engine ?sampling
      ?single_config ?dual_config ~retries ?checkpoint ?trace_cache ?result_cache ()
  in
  let rows = report.Mcsim.Table2.rows in
  List.iter
    (fun (b, msg) -> Printf.eprintf "[FAILED] %s: %s\n%!" b msg)
    report.Mcsim.Table2.failed;
  if csv then print_string (Mcsim.Report.table2_csv rows)
  else begin
    (match sampling with
    | Some p ->
      Printf.printf "(sampled: policy %s, cycle columns are extrapolations)\n"
        (Mcsim_sampling.Sampling.policy_to_string p)
    | None -> ());
    print_string (Mcsim.Table2.render rows);
    print_newline ();
    List.iter
      (fun (ok, what) -> Printf.printf "[%s] %s\n" (if ok then "ok" else "FAIL") what)
      (Mcsim.Table2.shape_holds rows)
  end;
  (match metrics_out with
  | None -> ()
  | Some path ->
    let cfg =
      match dual_config with
      | Some c -> c
      | None -> { (Mcsim_cluster.Machine.dual_cluster ()) with Mcsim_cluster.Machine.steering }
    in
    let manifest =
      Mcsim_obs.Manifest.make ~created_unix:(Unix.time ()) ~engine ~seed
        ~benchmark:(String.concat "," (List.map Mcsim_workload.Spec92.name benchmarks))
        ~trace_instrs:max_instrs ?sampling cfg
    in
    Mcsim_obs.Metrics.write_file path
      (Mcsim_obs.Metrics.snapshot ~manifest ~kind:"table2"
         ~wall_seconds:(Unix.gettimeofday () -. t_start)
         ~extra:[ ("table2", Mcsim.Report.table2_json rows) ]
         ()));
  if report.Mcsim.Table2.failed <> [] then
    failwith
      (Printf.sprintf "%d of %d benchmarks failed permanently%s"
         (List.length report.Mcsim.Table2.failed)
         (List.length benchmarks)
         (match checkpoint with
         | Some dir ->
           Printf.sprintf
             "; completed units are saved under %s — rerun or 'mcsim resume %s' to retry"
             dir dir
         | None -> "; rerun with --checkpoint DIR to make progress durable"))

let cluster_command_fields ~clusters ~topology ~steering =
  [ ("clusters", match clusters with Some n -> Json.Int n | None -> Json.Null);
    ("topology", Json.String (Mcsim_cluster.Interconnect.to_string topology));
    ("steering", Json.String (Mcsim_cluster.Steering.to_string steering)) ]

let table2_command_json ~max_instrs ~seed ~benchmarks ~csv ~four_way ~clusters ~topology
    ~steering ~sample ~engine ~metrics_out ~retries ~trace_cache ~result_cache =
  cluster_command_fields ~clusters ~topology ~steering
  @ [ ("command", Json.String "table2");
    ("benchmarks",
     Json.List (List.map (fun b -> Json.String (Mcsim_workload.Spec92.name b)) benchmarks));
    ("max_instrs", Json.Int max_instrs);
    ("seed", Json.Int seed);
    ("engine", Json.String (Mcsim_obs.Manifest.engine_name engine));
    ("sampling",
     match sample with
     | Some p -> Json.String (Mcsim_sampling.Sampling.policy_to_string p)
     | None -> Json.Null);
    ("csv", Json.Bool csv);
    ("four_way", Json.Bool four_way);
    ("metrics_out", match metrics_out with Some p -> Json.String p | None -> Json.Null);
    ("retries", Json.Int retries);
    ("trace_cache", match trace_cache with Some p -> Json.String p | None -> Json.Null);
    ("result_cache", match result_cache with Some p -> Json.String p | None -> Json.Null) ]

(* Record how to finish the sweep before starting it, so `mcsim resume
   DIR` works even if this process is killed immediately. When the
   directory already holds a command record, keep it until this
   invocation succeeds: a stale invocation refused by the identity
   check must not clobber the record the original sweep resumes from.
   On success the record is refreshed, so compatible reruns that change
   output flags (say, adding --metrics-out) resume with the new ones. *)
let with_command checkpoint command_json run =
  match checkpoint with
  | None -> run ()
  | Some dir ->
    let existing = Sys.file_exists (Filename.concat dir "command.json") in
    if not existing then Mcsim.Checkpoint.write_command ~dir (command_json ());
    let result = run () in
    if existing then Mcsim.Checkpoint.write_command ~dir (command_json ());
    result

let table2_cmd =
  let run max_instrs seed benchmarks csv four_way clusters topology steering jobs sample
      engine metrics_out retries checkpoint trace_cache result_cache =
    wrap @@ fun () ->
    with_command checkpoint (fun () ->
        table2_command_json ~max_instrs ~seed ~benchmarks ~csv ~four_way ~clusters
          ~topology ~steering ~sample ~engine ~metrics_out ~retries ~trace_cache
          ~result_cache)
    @@ fun () ->
    table2_impl ~max_instrs ~seed ~benchmarks ~csv ~four_way ~clusters ~topology ~steering
      ~jobs ~sample ~engine ~metrics_out ~retries ~checkpoint ~trace_cache ~result_cache
      ()
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Run the Table-2 experiment (none/local vs single-cluster).")
    Term.(const run $ max_instrs_arg $ seed_arg $ benchmarks_arg $ csv_arg $ four_way_arg
          $ clusters_arg $ topology_arg $ steering_arg $ jobs_arg $ sample_arg
          $ engine_arg $ metrics_out_arg $ retries_arg $ checkpoint_arg $ trace_cache_arg
          $ result_cache_arg)

let scenarios_cmd =
  let run () =
    List.iter
      (fun o -> print_string (Mcsim.Scenario.render o); print_newline ())
      (Mcsim.Scenario.all ())
  in
  Cmd.v (Cmd.info "scenarios" ~doc:"Replay the five execution scenarios (Figures 2-5).")
    Term.(const run $ const ())

let figure6_cmd =
  let run () = print_string (Mcsim.Figure6.render (Mcsim.Figure6.run ())) in
  Cmd.v (Cmd.info "figure6" ~doc:"Walk the local scheduler through the Figure-6 example.")
    Term.(const run $ const ())

let cycle_time_cmd =
  let run max_instrs seed benchmarks jobs =
    wrap @@ fun () ->
    print_string (Mcsim.Cycle_time.break_even_example ());
    print_newline ();
    let rows = Mcsim.Table2.run ~jobs ~max_instrs ~seed ~benchmarks () in
    let net = Mcsim.Cycle_time.analyse rows in
    print_string (Mcsim.Cycle_time.render net);
    List.iter
      (fun (ok, what) -> Printf.printf "[%s] %s\n" (if ok then "ok" else "FAIL") what)
      (Mcsim.Cycle_time.conclusion_holds net)
  in
  Cmd.v (Cmd.info "cycle-time" ~doc:"The net-performance analysis of paper sections 4.2 and 5.")
    Term.(const run $ max_instrs_arg $ seed_arg $ benchmarks_arg $ jobs_arg)

let workloads_cmd =
  let run () =
    List.iter
      (fun b ->
        let prog = Mcsim_workload.Spec92.program b in
        Printf.printf "%-9s %4d blocks %4d live ranges %5d static instrs\n  %s\n"
          (Mcsim_workload.Spec92.name b)
          (Mcsim_ir.Program.num_blocks prog)
          (Mcsim_ir.Program.num_lrs prog)
          (Mcsim_ir.Program.num_static_instrs prog)
          (Mcsim_workload.Spec92.description b))
      Mcsim_workload.Spec92.all
  in
  Cmd.v (Cmd.info "workloads" ~doc:"Describe the six SPEC92-like synthetic benchmarks.")
    Term.(const run $ const ())

(* Shared by the --scheduler option and `mcsim resume`'s command.json
   round-trip: the printed {!Mcsim_compiler.Pipeline.scheduler_name} of
   every accepted scheduler parses back to the same scheduler. *)
let scheduler_parse = function
  | "none" -> Ok Mcsim_compiler.Pipeline.Sched_none
  | "local" -> Ok Mcsim_compiler.Pipeline.default_local
  | "round-robin" | "rr" -> Ok Mcsim_compiler.Pipeline.Sched_round_robin
  | "random" -> Ok (Mcsim_compiler.Pipeline.Sched_random 7)
  | s -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))

let scheduler_of_string s =
  match scheduler_parse s with Ok x -> x | Error (`Msg m) -> failwith m

let scheduler_conv =
  Arg.conv
    ( scheduler_parse,
      fun fmt s -> Format.pp_print_string fmt (Mcsim_compiler.Pipeline.scheduler_name s) )

let machine_name = function `Single -> "single" | `Dual -> "dual"

let machine_of_string = function
  | "single" -> `Single
  | "dual" -> `Dual
  | s -> failwith (Printf.sprintf "unknown machine %S" s)

(* Generate the benchmark's committed trace in the flat binary form —
   or, with --trace-cache, memory-map it from the store (generating and
   saving it on the first run). Shared by run and sample. *)
let flat_trace ~trace_cache ~bench ~scheduler ~clusters ~seed ~max_instrs () =
  let walk () =
    let prog = Mcsim_workload.Spec92.program bench in
    let profile = Mcsim_trace.Walker.profile ~seed prog in
    let c = Mcsim_compiler.Pipeline.compile ~clusters ~profile ~scheduler prog in
    Mcsim_trace.Walker.trace_flat ~seed ~max_instrs c.Mcsim_compiler.Pipeline.mach
  in
  match trace_cache with
  | None -> walk ()
  | Some dir ->
    let store = Mcsim.Trace_store.open_ ~dir in
    let key =
      { Mcsim.Trace_store.benchmark = Mcsim_workload.Spec92.name bench;
        scheduler = Mcsim.Experiment.scheduler_ident_n ~clusters scheduler;
        seed;
        max_instrs }
    in
    fst (Mcsim.Trace_store.load_or_build store key walk)

(* The body of the run command, shared with `mcsim resume`. With a
   checkpoint the single simulation is one durable unit; --profile
   bypasses the cache (profiling counters cannot be reconstructed from a
   stored result). *)
let run_impl ~bench ~machine ~clusters ~topology ~steering ~scheduler ~max_instrs ~seed
    ~engine ~prof ~metrics_out ~retries ~checkpoint ~trace_cache ~result_cache () =
  let t_start = Unix.gettimeofday () in
  let cfg = config_of ~what:"run" ~machine ~clusters ~topology ~steering () in
  let cclusters = compile_clusters clusters in
  let manifest =
    Mcsim_obs.Manifest.make ~engine ~seed
      ~benchmark:(Mcsim_workload.Spec92.name bench)
      ~scheduler:(Mcsim_compiler.Pipeline.scheduler_name scheduler)
      ~trace_instrs:max_instrs cfg
  in
  let store =
    match checkpoint with
    | Some dir when not prof ->
      Some
        (Mcsim.Checkpoint.open_ ~dir ~kind:"run" ~manifest
           ~extra:[ ("machine", Json.String (machine_name machine)) ]
           ())
    | Some _ | None -> None
  in
  (* The global result cache; --profile bypasses it like the checkpoint
     (profiling counters cannot be reconstructed from a stored result). *)
  let rstore =
    match result_cache with
    | Some dir when not prof -> Some (Mcsim.Result_store.open_ ~dir)
    | Some _ | None -> None
  in
  let decode_unit d =
    match
      ( Option.bind (Json.member "result" d) Mcsim_obs.Metrics.result_of_json,
        Option.bind (Json.member "trace_instrs" d) Json.get_int )
    with
    | Some r, Some n -> Some (r, n)
    | _ -> None
  in
  let cached =
    match
      Option.bind store (fun st -> Option.bind (Mcsim.Checkpoint.find st "run") decode_unit)
    with
    | Some _ as hit -> hit
    | None ->
      Option.bind rstore (fun st ->
          Option.bind (Mcsim.Result_store.find st ~manifest ~key:"run") decode_unit)
  in
  let r, trace_instrs, counters =
    match cached with
    | Some (r, n) -> (r, n, None)
    | None ->
      let run_once () =
        let trace =
          flat_trace ~trace_cache ~bench ~scheduler ~clusters:cclusters ~seed ~max_instrs
            ()
        in
        let n = Mcsim_isa.Flat_trace.length trace in
        let counters =
          if prof then Some (Mcsim_cluster.Machine.profile_counters ()) else None
        in
        (match counters with
        | Some p -> Mcsim_util.Profile_counters.alloc_start p
        | None -> ());
        let r = Mcsim_cluster.Machine.run_flat ~engine ?profile:counters cfg trace in
        (match counters with
        | Some p -> Mcsim_util.Profile_counters.alloc_stop p
        | None -> ());
        let fields =
          [ ("result", Mcsim_obs.Metrics.result_json r); ("trace_instrs", Json.Int n) ]
        in
        Option.iter (fun st -> Mcsim.Checkpoint.record st ~key:"run" fields) store;
        Option.iter
          (fun st -> Mcsim.Result_store.record st ~manifest ~key:"run" fields)
          rstore;
        (r, n, counters)
      in
      (match Mcsim_util.Pool.parallel_map ~retries ~jobs:1 run_once [ () ] with
      | [ out ] -> out
      | _ -> assert false)
  in
  Printf.printf "%s on the %s machine, %s scheduler:%s\n"
    (Mcsim_workload.Spec92.name bench)
    (machine_desc ~machine ~clusters ~topology ~steering)
    (Mcsim_compiler.Pipeline.scheduler_name scheduler)
    (if Option.is_some cached then " (from cache)" else "");
  Printf.printf "  %d instructions in %d cycles (IPC %.2f)\n" r.Mcsim_cluster.Machine.retired
    r.Mcsim_cluster.Machine.cycles r.Mcsim_cluster.Machine.ipc;
  Printf.printf "  branch accuracy %.3f, d-cache miss rate %.3f, i-cache miss rate %.4f\n"
    r.Mcsim_cluster.Machine.branch_accuracy r.Mcsim_cluster.Machine.dcache_miss_rate
    r.Mcsim_cluster.Machine.icache_miss_rate;
  Printf.printf "  %d single- and %d dual-distributed, %d replays\n"
    r.Mcsim_cluster.Machine.single_distributed r.Mcsim_cluster.Machine.dual_distributed
    r.Mcsim_cluster.Machine.replays;
  print_endline "  counters:";
  List.iter
    (fun (k, v) -> Printf.printf "    %-28s %d\n" k v)
    r.Mcsim_cluster.Machine.counters;
  (match counters with
  | Some p ->
    Printf.printf "  profile (%s engine):\n"
      (match engine with `Scan -> "scan" | `Wakeup -> "wakeup");
    print_string (Mcsim_util.Profile_counters.render ~instrs:trace_instrs p)
  | None -> ());
  match metrics_out with
  | None -> ()
  | Some path ->
    let manifest =
      Mcsim_obs.Manifest.make ~created_unix:(Unix.time ()) ~engine ~seed
        ~benchmark:(Mcsim_workload.Spec92.name bench)
        ~scheduler:(Mcsim_compiler.Pipeline.scheduler_name scheduler)
        ~trace_instrs cfg
    in
    Mcsim_obs.Metrics.write_file path
      (Mcsim_obs.Metrics.snapshot ~manifest ~kind:"run" ~result:r ?profile:counters
         ~wall_seconds:(Unix.gettimeofday () -. t_start)
         ())

let run_command_json ~bench ~machine ~clusters ~topology ~steering ~scheduler ~max_instrs
    ~seed ~engine ~prof ~metrics_out ~retries ~trace_cache ~result_cache =
  cluster_command_fields ~clusters ~topology ~steering
  @ [ ("command", Json.String "run");
    ("benchmark", Json.String (Mcsim_workload.Spec92.name bench));
    ("machine", Json.String (machine_name machine));
    ("scheduler", Json.String (Mcsim_compiler.Pipeline.scheduler_name scheduler));
    ("max_instrs", Json.Int max_instrs);
    ("seed", Json.Int seed);
    ("engine", Json.String (Mcsim_obs.Manifest.engine_name engine));
    ("profile", Json.Bool prof);
    ("metrics_out", match metrics_out with Some p -> Json.String p | None -> Json.Null);
    ("retries", Json.Int retries);
    ("trace_cache", match trace_cache with Some p -> Json.String p | None -> Json.Null);
    ("result_cache", match result_cache with Some p -> Json.String p | None -> Json.Null) ]

let run_entry bench machine clusters topology steering scheduler max_instrs seed engine
    prof metrics_out retries checkpoint trace_cache result_cache =
  wrap @@ fun () ->
  with_command checkpoint (fun () ->
      run_command_json ~bench ~machine ~clusters ~topology ~steering ~scheduler
        ~max_instrs ~seed ~engine ~prof ~metrics_out ~retries ~trace_cache ~result_cache)
  @@ fun () ->
  run_impl ~bench ~machine ~clusters ~topology ~steering ~scheduler ~max_instrs ~seed
    ~engine ~prof ~metrics_out ~retries ~checkpoint ~trace_cache ~result_cache ()

let run_cmd =
  let machine_arg =
    Arg.(value & opt (enum [ ("single", `Single); ("dual", `Dual) ]) `Dual
         & info [ "machine" ] ~doc:"Machine to run on: single or dual.")
  in
  let scheduler_arg =
    Arg.(value & opt scheduler_conv Mcsim_compiler.Pipeline.default_local
         & info [ "scheduler" ] ~doc:"none, local, round-robin, or random.")
  in
  let profile_arg =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Report per-stage visit/work counters and minor-heap allocation \
                   for the simulation.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one benchmark and dump all counters.")
    Term.(const run_entry $ bench_pos $ machine_arg $ clusters_arg $ topology_arg
          $ steering_arg $ scheduler_arg $ max_instrs_arg $ seed_arg $ engine_arg
          $ profile_arg $ metrics_out_arg $ retries_arg $ checkpoint_arg $ trace_cache_arg
          $ result_cache_arg)

(* The body of the sample command, shared with `mcsim resume`. The
   sampled estimate is one durable unit; --full always recomputes the
   trace and the detailed run (only the estimate is cached). *)
let sample_impl ~bench ~machine ~clusters ~topology ~steering ~scheduler ~max_instrs
    ~seed ~sample ~full ~csv ~engine ~metrics_out ~retries ~checkpoint ~trace_cache
    ~result_cache () =
  let t_start = Unix.gettimeofday () in
  let policy =
    match sample with
    | Some p -> { p with Mcsim_sampling.Sampling.seed }
    | None -> { Mcsim_sampling.Sampling.default_policy with seed }
  in
  let cfg = config_of ~what:"sample" ~machine ~clusters ~topology ~steering () in
  let cclusters = compile_clusters clusters in
  let manifest =
    Mcsim_obs.Manifest.make ~engine ~seed
      ~benchmark:(Mcsim_workload.Spec92.name bench)
      ~scheduler:(Mcsim_compiler.Pipeline.scheduler_name scheduler)
      ~trace_instrs:max_instrs ~sampling:policy cfg
  in
  let store =
    Option.map
      (fun dir ->
        Mcsim.Checkpoint.open_ ~dir ~kind:"sample" ~manifest
          ~extra:[ ("machine", Json.String (machine_name machine)) ]
          ())
      checkpoint
  in
  let rstore = Option.map (fun dir -> Mcsim.Result_store.open_ ~dir) result_cache in
  let decode_unit d =
    match
      ( Option.bind (Json.member "result" d) Mcsim_obs.Metrics.result_of_json,
        Json.member "sampling" d )
    with
    | Some machine, Some sj ->
      Mcsim_obs.Metrics.sampling_of_json ~seed:policy.Mcsim_sampling.Sampling.seed
        ~machine sj
    | _ -> None
  in
  let cached =
    match
      Option.bind store (fun st ->
          Option.bind (Mcsim.Checkpoint.find st "sample") decode_unit)
    with
    | Some _ as hit -> hit
    | None ->
      Option.bind rstore (fun st ->
          Option.bind (Mcsim.Result_store.find st ~manifest ~key:"sample") decode_unit)
  in
  let make_trace =
    flat_trace ~trace_cache ~bench ~scheduler ~clusters:cclusters ~seed ~max_instrs
  in
  let s =
    match cached with
    | Some s -> s
    | None -> (
      let run_once () =
        let s = Mcsim_sampling.Sampling.run_flat ~engine ~policy cfg (make_trace ()) in
        let fields =
          [ ("sampling", Mcsim_obs.Metrics.sampling_json s);
            ("result", Mcsim_obs.Metrics.result_json s.Mcsim_sampling.Sampling.machine) ]
        in
        Option.iter (fun st -> Mcsim.Checkpoint.record st ~key:"sample" fields) store;
        Option.iter
          (fun st -> Mcsim.Result_store.record st ~manifest ~key:"sample" fields)
          rstore;
        s
      in
      match Mcsim_util.Pool.parallel_map ~retries ~jobs:1 run_once [ () ] with
      | [ s ] -> s
      | _ -> assert false)
  in
  (match metrics_out with
  | None -> ()
  | Some path ->
    let manifest =
      Mcsim_obs.Manifest.make ~created_unix:(Unix.time ()) ~engine ~seed
        ~benchmark:(Mcsim_workload.Spec92.name bench)
        ~scheduler:(Mcsim_compiler.Pipeline.scheduler_name scheduler)
        ~trace_instrs:s.Mcsim_sampling.Sampling.trace_instrs ~sampling:policy cfg
    in
    Mcsim_obs.Metrics.write_file path
      (Mcsim_obs.Metrics.snapshot ~manifest ~kind:"sample" ~sampling:s
         ~wall_seconds:(Unix.gettimeofday () -. t_start)
         ()));
  if csv then print_string (Mcsim.Report.sampling_csv s)
  else begin
    Printf.printf "%s on the %s machine, %s scheduler:%s\n"
      (Mcsim_workload.Spec92.name bench)
      (machine_desc ~machine ~clusters ~topology ~steering)
      (Mcsim_compiler.Pipeline.scheduler_name scheduler)
      (if Option.is_some cached then " (from cache)" else "");
    print_string (Mcsim_sampling.Sampling.render s);
    if full then begin
      let r = Mcsim_cluster.Machine.run_flat ~engine cfg (make_trace ()) in
      let err =
        Float.abs (s.Mcsim_sampling.Sampling.mean_ipc -. r.Mcsim_cluster.Machine.ipc)
        /. r.Mcsim_cluster.Machine.ipc
      in
      Printf.printf "  full run: IPC %.4f in %d cycles; sampling error %.2f%%%s\n"
        r.Mcsim_cluster.Machine.ipc r.Mcsim_cluster.Machine.cycles (100.0 *. err)
        (if err <= Mcsim_sampling.Sampling.ci_rel s then " (within the CI)" else "")
    end
  end

let sample_command_json ~bench ~machine ~clusters ~topology ~steering ~scheduler
    ~max_instrs ~seed ~sample ~full ~csv ~engine ~metrics_out ~retries ~trace_cache
    ~result_cache =
  cluster_command_fields ~clusters ~topology ~steering
  @ [ ("command", Json.String "sample");
    ("benchmark", Json.String (Mcsim_workload.Spec92.name bench));
    ("machine", Json.String (machine_name machine));
    ("scheduler", Json.String (Mcsim_compiler.Pipeline.scheduler_name scheduler));
    ("max_instrs", Json.Int max_instrs);
    ("seed", Json.Int seed);
    ("sampling",
     match sample with
     | Some p -> Json.String (Mcsim_sampling.Sampling.policy_to_string p)
     | None -> Json.Null);
    ("full", Json.Bool full);
    ("csv", Json.Bool csv);
    ("engine", Json.String (Mcsim_obs.Manifest.engine_name engine));
    ("metrics_out", match metrics_out with Some p -> Json.String p | None -> Json.Null);
    ("retries", Json.Int retries);
    ("trace_cache", match trace_cache with Some p -> Json.String p | None -> Json.Null);
    ("result_cache", match result_cache with Some p -> Json.String p | None -> Json.Null) ]

let sample_entry bench machine clusters topology steering scheduler max_instrs seed
    sample full csv engine metrics_out retries checkpoint trace_cache result_cache =
  wrap @@ fun () ->
  with_command checkpoint (fun () ->
      sample_command_json ~bench ~machine ~clusters ~topology ~steering ~scheduler
        ~max_instrs ~seed ~sample ~full ~csv ~engine ~metrics_out ~retries ~trace_cache
        ~result_cache)
  @@ fun () ->
  sample_impl ~bench ~machine ~clusters ~topology ~steering ~scheduler ~max_instrs ~seed
    ~sample ~full ~csv ~engine ~metrics_out ~retries ~checkpoint ~trace_cache
    ~result_cache ()

let sample_cmd =
  let machine_arg =
    Arg.(value & opt (enum [ ("single", `Single); ("dual", `Dual) ]) `Dual
         & info [ "machine" ] ~doc:"Machine to run on: single or dual.")
  in
  let scheduler_arg =
    Arg.(value & opt scheduler_conv Mcsim_compiler.Pipeline.default_local
         & info [ "scheduler" ] ~doc:"none, local, round-robin, or random.")
  in
  let full_arg =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Also run the full detailed simulation and report the sampling error.")
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Sampled simulation of one benchmark (optionally vs the full detailed run).")
    Term.(const sample_entry $ bench_pos $ machine_arg $ clusters_arg $ topology_arg
          $ steering_arg $ scheduler_arg $ max_instrs_arg $ seed_arg $ sample_arg
          $ full_arg $ csv_arg $ engine_arg $ metrics_out_arg $ retries_arg
          $ checkpoint_arg $ trace_cache_arg $ result_cache_arg)

(* `mcsim resume DIR`: reread the command.json written by a previous
   --checkpoint invocation and re-dispatch the same command against the
   same directory. Completed units load from disk; only missing ones
   recompute, so the output is byte-identical to an uninterrupted run. *)
let resume_cmd =
  let dir_pos =
    Arg.(required & pos 0 (some dir) None
         & info [] ~docv:"DIR" ~doc:"Checkpoint directory of an interrupted run.")
  in
  let resume_retries_arg =
    Arg.(value & opt (some (nonneg_int ~what:"RETRIES")) None
         & info [ "retries" ] ~docv:"N"
             ~doc:"Override the recorded per-unit retry budget for this resume.")
  in
  let resume dir retries_override =
    wrap @@ fun () ->
    let fields = Mcsim.Checkpoint.read_command ~dir in
    let str k =
      match List.assoc_opt k fields with
      | Some (Json.String s) -> s
      | _ -> failwith (Printf.sprintf "checkpoint %s: command.json lacks %S" dir k)
    in
    let str_opt k =
      match List.assoc_opt k fields with Some (Json.String s) -> Some s | _ -> None
    in
    let int k =
      match List.assoc_opt k fields with
      | Some (Json.Int n) -> n
      | _ -> failwith (Printf.sprintf "checkpoint %s: command.json lacks %S" dir k)
    in
    let flag k =
      match List.assoc_opt k fields with Some (Json.Bool b) -> b | _ -> false
    in
    let bench k =
      let s = str k in
      match Mcsim_workload.Spec92.of_name s with
      | Some b -> b
      | None -> failwith (Printf.sprintf "checkpoint %s: unknown benchmark %S" dir s)
    in
    let engine () =
      match str "engine" with
      | "scan" -> `Scan
      | "wakeup" -> `Wakeup
      | s -> failwith (Printf.sprintf "checkpoint %s: unknown engine %S" dir s)
    in
    let seed = lazy (int "seed") in
    let sampling k =
      match str_opt k with
      | None -> None
      | Some s -> (
        match Mcsim_sampling.Sampling.policy_of_string ~seed:(Lazy.force seed) s with
        | Ok p -> Some p
        | Error e -> failwith (Printf.sprintf "checkpoint %s: bad sampling %S: %s" dir s e))
    in
    let retries =
      match retries_override with Some n -> n | None -> int "retries"
    in
    let metrics_out = str_opt "metrics_out" in
    let trace_cache = str_opt "trace_cache" in
    (* Absent in command.json written before the result store existed. *)
    let result_cache = str_opt "result_cache" in
    (* Likewise absent before the machine grew beyond two clusters. *)
    let clusters =
      match List.assoc_opt "clusters" fields with Some (Json.Int n) -> Some n | _ -> None
    in
    let topology =
      match str_opt "topology" with
      | None -> Mcsim_cluster.Interconnect.Point_to_point
      | Some s -> Mcsim_cluster.Interconnect.of_string s
    in
    (* Absent before dispatch-time steering existed; absent = static. *)
    let steering =
      match str_opt "steering" with
      | None -> Mcsim_cluster.Steering.Static
      | Some s -> (
        match Mcsim_cluster.Steering.of_string s with
        | Ok p -> p
        | Error e -> failwith (Printf.sprintf "checkpoint %s: %s" dir e))
    in
    let checkpoint = Some dir in
    match str "command" with
    | "table2" ->
      let benchmarks =
        match List.assoc_opt "benchmarks" fields with
        | Some (Json.List l) ->
          List.map
            (function
              | Json.String s -> (
                match Mcsim_workload.Spec92.of_name s with
                | Some b -> b
                | None ->
                  failwith (Printf.sprintf "checkpoint %s: unknown benchmark %S" dir s))
              | _ -> failwith (Printf.sprintf "checkpoint %s: bad benchmarks list" dir))
            l
        | _ -> failwith (Printf.sprintf "checkpoint %s: command.json lacks %S" dir "benchmarks")
      in
      table2_impl ~max_instrs:(int "max_instrs") ~seed:(Lazy.force seed) ~benchmarks
        ~csv:(flag "csv") ~four_way:(flag "four_way") ~clusters ~topology ~steering
        ~jobs:(Mcsim_util.Pool.default_jobs ())
        ~sample:(sampling "sampling") ~engine:(engine ()) ~metrics_out ~retries
        ~checkpoint ~trace_cache ~result_cache ()
    | "run" ->
      run_impl ~bench:(bench "benchmark") ~machine:(machine_of_string (str "machine"))
        ~clusters ~topology ~steering ~scheduler:(scheduler_of_string (str "scheduler"))
        ~max_instrs:(int "max_instrs") ~seed:(Lazy.force seed) ~engine:(engine ())
        ~prof:(flag "profile") ~metrics_out ~retries ~checkpoint ~trace_cache
        ~result_cache ()
    | "sample" ->
      sample_impl ~bench:(bench "benchmark") ~machine:(machine_of_string (str "machine"))
        ~clusters ~topology ~steering ~scheduler:(scheduler_of_string (str "scheduler"))
        ~max_instrs:(int "max_instrs") ~seed:(Lazy.force seed)
        ~sample:(sampling "sampling") ~full:(flag "full") ~csv:(flag "csv")
        ~engine:(engine ()) ~metrics_out ~retries ~checkpoint ~trace_cache ~result_cache
        ()
    | c ->
      failwith
        (Printf.sprintf "checkpoint %s: cannot resume command %S (only table2, run, sample)"
           dir c)
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Finish an interrupted --checkpoint run (table2, run or sample): completed \
             units are loaded from the directory, only missing ones recompute.")
    Term.(const resume $ dir_pos $ resume_retries_arg)

(* `mcsim trace-store DIR`: inspect a --trace-cache directory. Each
   entry is validated (header + payload digest), so a corrupt file shows
   up here as invalid — the simulator itself would silently regenerate
   it. *)
let prune_keep_latest_arg =
  Arg.(value & opt (some (nonneg_int ~what:"N")) None
       & info [ "prune-keep-latest" ] ~docv:"N"
           ~doc:"Before listing, delete all but the $(docv) most recently used entries \
                 — the knob that bounds on-disk cache growth.")

let trace_store_cmd =
  let dir_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR"
             ~doc:"Trace-store directory (as passed to --trace-cache).")
  in
  let run dir prune =
    wrap @@ fun () ->
    if not (Sys.file_exists dir) then
      failwith (Printf.sprintf "trace store %s: no such directory" dir);
    let store = Mcsim.Trace_store.open_ ~dir in
    (match prune with
    | None -> ()
    | Some n ->
      let removed = Mcsim.Trace_store.prune_keep_latest store n in
      List.iter (Printf.printf "pruned %s\n") removed);
    let entries = Mcsim.Trace_store.entries store in
    if entries = [] then Printf.printf "%s: no cached traces\n" dir
    else begin
      let rows =
        List.map
          (fun e ->
            [ e.Mcsim.Trace_store.e_file;
              (if e.Mcsim.Trace_store.e_valid then
                 string_of_int e.Mcsim.Trace_store.e_instrs
               else "-");
              string_of_int e.Mcsim.Trace_store.e_bytes;
              (if e.Mcsim.Trace_store.e_valid then "ok" else "INVALID") ])
          entries
      in
      print_string
        (Mcsim_util.Text_table.render
           ~aligns:[| Mcsim_util.Text_table.Left; Right; Right; Left |]
           ([ "file"; "instrs"; "bytes"; "status" ] :: rows));
      let total_instrs =
        List.fold_left (fun a e -> a + e.Mcsim.Trace_store.e_instrs) 0 entries
      in
      let total_bytes =
        List.fold_left (fun a e -> a + e.Mcsim.Trace_store.e_bytes) 0 entries
      in
      let invalid =
        List.length (List.filter (fun e -> not e.Mcsim.Trace_store.e_valid) entries)
      in
      Printf.printf "%d trace%s, %d instructions, %d bytes%s\n" (List.length entries)
        (if List.length entries = 1 then "" else "s")
        total_instrs total_bytes
        (if invalid = 0 then ""
         else Printf.sprintf " (%d invalid — will be regenerated on use)" invalid)
    end
  in
  Cmd.v
    (Cmd.info "trace-store"
       ~doc:"List and validate the cached binary traces in a --trace-cache directory.")
    Term.(const run $ dir_pos $ prune_keep_latest_arg)

(* `mcsim result-store DIR`: inspect a --result-cache / serve-daemon
   result-store directory. Entries that do not decode as unit snapshots
   list as INVALID — the cache itself treats them as misses. *)
let result_store_cmd =
  let dir_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR"
             ~doc:"Result-store directory (as passed to --result-cache or mcsim serve).")
  in
  let run dir prune =
    wrap @@ fun () ->
    if not (Sys.file_exists dir) then
      failwith (Printf.sprintf "result store %s: no such directory" dir);
    let store = Mcsim.Result_store.open_ ~dir in
    (match prune with
    | None -> ()
    | Some n ->
      let removed = Mcsim.Result_store.prune_keep_latest store n in
      List.iter (Printf.printf "pruned %s\n") removed);
    let entries = Mcsim.Result_store.entries store in
    if entries = [] then Printf.printf "%s: no cached results\n" dir
    else begin
      let rows =
        List.map
          (fun e ->
            [ e.Mcsim.Result_store.e_file;
              e.Mcsim.Result_store.e_digest;
              e.Mcsim.Result_store.e_kind;
              e.Mcsim.Result_store.e_benchmark;
              string_of_int e.Mcsim.Result_store.e_bytes;
              (if e.Mcsim.Result_store.e_valid then "ok" else "INVALID") ])
          entries
      in
      print_string
        (Mcsim_util.Text_table.render
           ~aligns:[| Mcsim_util.Text_table.Left; Left; Left; Left; Right; Left |]
           ([ "file"; "digest"; "kind"; "benchmark"; "bytes"; "status" ] :: rows));
      let total_bytes =
        List.fold_left (fun a e -> a + e.Mcsim.Result_store.e_bytes) 0 entries
      in
      let invalid =
        List.length (List.filter (fun e -> not e.Mcsim.Result_store.e_valid) entries)
      in
      Printf.printf "%d result%s, %d bytes%s\n" (List.length entries)
        (if List.length entries = 1 then "" else "s")
        total_bytes
        (if invalid = 0 then ""
         else Printf.sprintf " (%d invalid — treated as misses)" invalid)
    end
  in
  Cmd.v
    (Cmd.info "result-store"
       ~doc:"List and validate the cached unit results in a --result-cache directory.")
    Term.(const run $ dir_pos $ prune_keep_latest_arg)

let trace_cmd =
  let machine_arg =
    Arg.(value & opt (enum [ ("single", `Single); ("dual", `Dual) ]) `Dual
         & info [ "machine" ] ~doc:"Machine to run on: single or dual.")
  in
  let scheduler_arg =
    Arg.(value & opt scheduler_conv Mcsim_compiler.Pipeline.default_local
         & info [ "scheduler" ] ~doc:"none, local, round-robin, or random.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Output file (default: $(b,BENCHMARK.trace.json)).")
  in
  let timeline_arg =
    Arg.(value & flag
         & info [ "timeline" ]
             ~doc:"Also print the ASCII pipeline timeline of the same run.")
  in
  let counter_period_arg =
    Arg.(value & opt (pos_int ~what:"PERIOD") 8
         & info [ "counter-period" ] ~docv:"PERIOD"
             ~doc:"Cycle stride between occupancy counter samples.")
  in
  let run bench machine scheduler max_instrs seed engine out timeline counter_period =
    wrap @@ fun () ->
    let prog = Mcsim_workload.Spec92.program bench in
    let profile = Mcsim_trace.Walker.profile ~seed prog in
    let c = Mcsim_compiler.Pipeline.compile ~profile ~scheduler prog in
    let trace = Mcsim_trace.Walker.trace ~seed ~max_instrs c.Mcsim_compiler.Pipeline.mach in
    let cfg =
      match machine with
      | `Single -> Mcsim_cluster.Machine.single_cluster ()
      | `Dual -> Mcsim_cluster.Machine.dual_cluster ()
    in
    let tx = Mcsim_obs.Trace_export.create ~counter_period cfg in
    let tl = Mcsim.Timeline.create () in
    let on_event e =
      Mcsim_obs.Trace_export.observer tx e;
      if timeline then Mcsim.Timeline.observer tl e
    in
    let r =
      Mcsim_cluster.Machine.run ~engine ~on_event
        ~on_occupancy:(Mcsim_obs.Trace_export.occupancy_observer tx)
        ~occupancy_period:counter_period cfg trace
    in
    let manifest =
      Mcsim_obs.Manifest.make ~created_unix:(Unix.time ()) ~engine ~seed
        ~benchmark:(Mcsim_workload.Spec92.name bench)
        ~scheduler:(Mcsim_compiler.Pipeline.scheduler_name scheduler)
        ~trace_instrs:(Array.length trace) cfg
    in
    let path =
      match out with
      | Some p -> p
      | None -> Mcsim_workload.Spec92.name bench ^ ".trace.json"
    in
    Mcsim_obs.Trace_export.write_file ~manifest path tx;
    Printf.printf "wrote %s: %d instructions in %d cycles (IPC %.2f)\n" path
      r.Mcsim_cluster.Machine.retired r.Mcsim_cluster.Machine.cycles
      r.Mcsim_cluster.Machine.ipc;
    print_endline "open it at https://ui.perfetto.dev or chrome://tracing";
    if timeline then begin
      print_newline ();
      print_string (Mcsim.Timeline.render tl)
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one benchmark and write a Chrome-trace (Perfetto) JSON of the pipeline.")
    Term.(const run $ bench_pos $ machine_arg $ scheduler_arg $ max_instrs_arg $ seed_arg
          $ engine_arg $ out_arg $ timeline_arg $ counter_period_arg)

let clusters_cmd =
  let run max_instrs seed benchmarks jobs metrics_out =
    wrap @@ fun () ->
    let t_start = Unix.gettimeofday () in
    let rows = Mcsim.Cluster_count.run ~jobs ~max_instrs ~seed ~benchmarks () in
    print_string (Mcsim.Cluster_count.render rows);
    match metrics_out with
    | None -> ()
    | Some path ->
      let manifest =
        Mcsim_obs.Manifest.make ~created_unix:(Unix.time ()) ~seed
          ~benchmark:(String.concat "," (List.map Mcsim_workload.Spec92.name benchmarks))
          ~trace_instrs:max_instrs
          (Mcsim.Cluster_count.config_for 1)
      in
      Mcsim_obs.Metrics.write_file path
        (Mcsim_obs.Metrics.snapshot ~manifest ~kind:"clusters"
           ~wall_seconds:(Unix.gettimeofday () -. t_start)
           ~extra:[ ("clusters", Mcsim.Cluster_count.rows_json rows) ]
           ())
  in
  Cmd.v
    (Cmd.info "clusters"
       ~doc:"Cluster-count x interconnect-topology scaling: 1/2/4/8 clusters, each \
             multi-cluster point wired p2p, ring and xbar.")
    Term.(const run $ max_instrs_arg $ seed_arg $ benchmarks_arg $ jobs_arg
          $ metrics_out_arg)

(* `mcsim steer`: the scheduler x steering x cluster-count matrix. Every
   policy (including static, the baseline) runs at 2/4/8 clusters under
   both the no-effort and the local compile-time schedulers. *)
let steer_cmd =
  let run max_instrs seed benchmarks topology csv jobs retries checkpoint metrics_out =
    wrap @@ fun () ->
    let t_start = Unix.gettimeofday () in
    let rows =
      Mcsim.Steer.run ~jobs ~max_instrs ~seed ~benchmarks ~topology ~retries ?checkpoint ()
    in
    if csv then print_string (Mcsim.Steer.csv rows)
    else print_string (Mcsim.Steer.render rows);
    match metrics_out with
    | None -> ()
    | Some path ->
      let manifest =
        Mcsim_obs.Manifest.make ~created_unix:(Unix.time ()) ~seed
          ~benchmark:(String.concat "," (List.map Mcsim_workload.Spec92.name benchmarks))
          ~trace_instrs:max_instrs
          (Mcsim_cluster.Machine.config_for_clusters ~topology 2)
      in
      Mcsim_obs.Metrics.write_file path
        (Mcsim_obs.Metrics.snapshot ~manifest ~kind:"steer"
           ~wall_seconds:(Unix.gettimeofday () -. t_start)
           ~extra:[ ("steer", Mcsim.Steer.rows_json rows) ]
           ())
  in
  Cmd.v
    (Cmd.info "steer"
       ~doc:"Compile-time scheduler x dispatch-time steering policy x cluster-count \
             matrix: every steering policy at 2/4/8 clusters, against code compiled \
             with no partitioning effort and with the paper's local scheduler.")
    Term.(const run $ max_instrs_arg $ seed_arg $ benchmarks_arg $ topology_arg $ csv_arg
          $ jobs_arg $ retries_arg $ checkpoint_arg $ metrics_out_arg)

let reassign_cmd =
  let run jobs =
    wrap @@ fun () -> print_string (Mcsim.Reassign.render (Mcsim.Reassign.run ~jobs ()))
  in
  Cmd.v
    (Cmd.info "reassign"
       ~doc:"Demonstrate dynamic register reassignment (paper section 6).")
    Term.(const run $ jobs_arg)

let ablate_cmd =
  let sweep_arg =
    Arg.(required
         & pos 0
             (some
                (enum
                   [ ("buffers", `Buffers); ("threshold", `Threshold);
                     ("partitioners", `Partitioners); ("globals", `Globals); ("dq", `Dq);
                     ("unroll", `Unroll); ("queues", `Queues); ("memory", `Memory); ("mshrs", `Mshrs) ]))
             None
         & info [] ~docv:"SWEEP")
  in
  let bench_pos1 =
    Arg.(required & pos 1 (some bench_conv) None & info [] ~docv:"BENCHMARK")
  in
  let run sweep bench max_instrs jobs =
    wrap @@ fun () ->
    let s =
      match sweep with
      | `Buffers -> Mcsim.Ablation.transfer_buffers ~jobs ~max_instrs bench
      | `Threshold -> Mcsim.Ablation.imbalance_threshold ~jobs ~max_instrs bench
      | `Partitioners -> Mcsim.Ablation.partitioners ~jobs ~max_instrs bench
      | `Globals -> Mcsim.Ablation.global_registers ~jobs ~max_instrs bench
      | `Dq -> Mcsim.Ablation.dispatch_queue_split ~jobs ~max_instrs bench
      | `Unroll -> Mcsim.Ablation.unrolling ~jobs ~max_instrs bench
      | `Queues -> Mcsim.Ablation.queue_organization ~jobs ~max_instrs bench
      | `Memory -> Mcsim.Ablation.memory_latency ~jobs ~max_instrs bench
      | `Mshrs -> Mcsim.Ablation.mshr_entries ~jobs ~max_instrs bench
    in
    print_string (Mcsim.Ablation.render s)
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Design-space sweeps: buffers, threshold, partitioners, globals, dq, unroll.")
    Term.(const run $ sweep_arg $ bench_pos1 $ max_instrs_arg $ jobs_arg)

let compile_cmd =
  let scheduler_arg =
    Arg.(value & opt scheduler_conv Mcsim_compiler.Pipeline.default_local
         & info [ "scheduler" ] ~doc:"none, local, round-robin, or random.")
  in
  let run bench scheduler seed =
    wrap @@ fun () ->
    let prog = Mcsim_workload.Spec92.program bench in
    let profile = Mcsim_trace.Walker.profile ~seed prog in
    let c = Mcsim_compiler.Pipeline.compile ~profile ~scheduler prog in
    print_string (Mcsim_compiler.Mach_text.print c.Mcsim_compiler.Pipeline.mach)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile a benchmark and print the machine program in textual form.")
    Term.(const run $ bench_pos $ scheduler_arg $ seed_arg)

let simulate_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"A machine program in the textual format (see the compile command).")
  in
  let machine_arg =
    Arg.(value & opt (enum [ ("single", `Single); ("dual", `Dual) ]) `Dual
         & info [ "machine" ] ~doc:"Machine to run on.")
  in
  let run file machine max_instrs seed =
    wrap @@ fun () ->
    let text = In_channel.with_open_text file In_channel.input_all in
    match Mcsim_compiler.Mach_text.parse text with
    | Error e ->
      prerr_endline ("parse error: " ^ e);
      exit 1
    | Ok m ->
      let trace = Mcsim_trace.Walker.trace ~seed ~max_instrs m in
      let cfg =
        match machine with
        | `Single -> Mcsim_cluster.Machine.single_cluster ()
        | `Dual -> Mcsim_cluster.Machine.dual_cluster ()
      in
      let r = Mcsim_cluster.Machine.run cfg trace in
      Printf.printf "%s: %d instructions, %d cycles (IPC %.2f), %d dual-distributed, %d replays\n"
        m.Mcsim_compiler.Mach_prog.name r.Mcsim_cluster.Machine.retired
        r.Mcsim_cluster.Machine.cycles r.Mcsim_cluster.Machine.ipc
        r.Mcsim_cluster.Machine.dual_distributed r.Mcsim_cluster.Machine.replays
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Parse a textual machine program and run it.")
    Term.(const run $ file_arg $ machine_arg $ max_instrs_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* The sweep service: `mcsim serve` and `mcsim submit`.                 *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"SOCKET"
           ~doc:"Unix-domain socket path of the sweep service (as passed to \
                 $(b,mcsim serve)).")

let serve_cmd =
  let socket_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SOCKET" ~doc:"Unix-domain socket path to listen on.")
  in
  let stop_arg =
    Arg.(value & flag
         & info [ "stop" ]
             ~doc:"Ask the server listening on $(i,SOCKET) to shut down, instead of \
                   starting one.")
  in
  let run socket stop jobs retries result_cache trace_cache =
    wrap @@ fun () ->
    if stop then begin
      let c = Mcsim_serve.Client.connect ~socket_path:socket in
      Fun.protect
        ~finally:(fun () -> Mcsim_serve.Client.close c)
        (fun () -> Mcsim_serve.Client.stop_server c);
      print_endline "server stopping"
    end
    else
      Mcsim_serve.Server.run
        { (Mcsim_serve.Server.default ~socket_path:socket) with
          jobs;
          retries;
          result_cache;
          trace_cache;
          log = Some (fun s -> Printf.printf "[serve] %s\n%!" s) }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-lived sweep service on a Unix-domain socket: submitted sweeps are \
             split into units, answered from the shared result cache when possible, \
             and identical in-flight units from concurrent clients are computed once \
             (see $(b,mcsim submit)).")
    Term.(const run $ socket_pos $ stop_arg $ jobs_arg $ retries_arg $ result_cache_arg
          $ trace_cache_arg)

let progress_on_unit ~index ~total ~label ~source ~data:_ =
  Printf.eprintf "  unit %d/%d %s: %s\n%!" (index + 1) total label source

let served_line (s : Mcsim_serve.Protocol.served) =
  Printf.sprintf "served %d unit(s): %d cached, %d computed, %d coalesced"
    s.Mcsim_serve.Protocol.s_units s.Mcsim_serve.Protocol.s_cached
    s.Mcsim_serve.Protocol.s_computed s.Mcsim_serve.Protocol.s_coalesced

let with_client socket f =
  let c = Mcsim_serve.Client.connect ~socket_path:socket in
  Fun.protect ~finally:(fun () -> Mcsim_serve.Client.close c) (fun () -> f c)

let submit_table2_cmd =
  let run socket max_instrs seed benchmarks csv four_way clusters topology steering sample
      engine metrics_out =
    wrap @@ fun () ->
    let t_start = Unix.gettimeofday () in
    let sampling = Option.map (fun p -> { p with Mcsim_sampling.Sampling.seed }) sample in
    let sweep =
      Mcsim_serve.Protocol.Table2
        { benchmarks; max_instrs; seed; engine; sampling; four_way; clusters; topology;
          steering }
    in
    with_client socket @@ fun c ->
    let result, served = Mcsim_serve.Client.submit ~on_unit:progress_on_unit c sweep in
    let rows =
      match Mcsim_serve.Client.rows_of_result result with
      | Some rows -> rows
      | None -> failwith "malformed table2 result from server"
    in
    if csv then print_string (Mcsim.Report.table2_csv rows)
    else begin
      print_string (Mcsim.Table2.render rows);
      print_newline ()
    end;
    prerr_endline (served_line served);
    match metrics_out with
    | None -> ()
    | Some path ->
      let cfg =
        if four_way then
          { (Mcsim_cluster.Machine.dual_cluster_2x2 ()) with
            Mcsim_cluster.Machine.topology; steering }
        else
          match clusters with
          | Some n ->
            { (Mcsim_cluster.Machine.config_for_clusters ~topology n) with
              Mcsim_cluster.Machine.steering }
          | None ->
            { (Mcsim_cluster.Machine.dual_cluster ()) with
              Mcsim_cluster.Machine.topology; steering }
      in
      let manifest =
        Mcsim_obs.Manifest.make ~created_unix:(Unix.time ()) ~engine ~seed
          ~benchmark:(String.concat "," (List.map Mcsim_workload.Spec92.name benchmarks))
          ~trace_instrs:max_instrs ?sampling cfg
      in
      Mcsim_obs.Metrics.write_file path
        (Mcsim_obs.Metrics.snapshot ~manifest ~kind:"table2"
           ~wall_seconds:(Unix.gettimeofday () -. t_start)
           ~extra:[ ("table2", Mcsim.Report.table2_json rows) ]
           ())
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Submit a Table-2 sweep to the service (one unit per row).")
    Term.(const run $ socket_arg $ max_instrs_arg $ seed_arg $ benchmarks_arg $ csv_arg
          $ four_way_arg $ clusters_arg $ topology_arg $ steering_arg $ sample_arg
          $ engine_arg $ metrics_out_arg)

let submit_machine_arg =
  Arg.(value & opt (enum [ ("single", `Single); ("dual", `Dual) ]) `Dual
       & info [ "machine" ] ~doc:"Machine to run on: single or dual.")

let submit_scheduler_arg =
  Arg.(value & opt scheduler_conv Mcsim_compiler.Pipeline.default_local
       & info [ "scheduler" ] ~doc:"none, local, round-robin, or random.")

let submit_run_cmd =
  let run socket bench machine clusters topology steering scheduler max_instrs seed engine
      =
    wrap @@ fun () ->
    let sweep =
      Mcsim_serve.Protocol.Run
        { bench; machine; scheduler; max_instrs; seed; engine; clusters; topology;
          steering }
    in
    with_client socket @@ fun c ->
    let result, served = Mcsim_serve.Client.submit ~on_unit:progress_on_unit c sweep in
    (match
       ( Option.bind (Json.member "result" result) Mcsim_obs.Metrics.result_of_json,
         Option.bind (Json.member "trace_instrs" result) Json.get_int )
     with
    | Some r, Some n ->
      Printf.printf "%s on the %s machine, %s scheduler (served):\n"
        (Mcsim_workload.Spec92.name bench)
        (machine_desc ~machine ~clusters ~topology ~steering)
        (Mcsim_compiler.Pipeline.scheduler_name scheduler);
      Printf.printf "  %d instructions in %d cycles (IPC %.2f), %d replays\n" n
        r.Mcsim_cluster.Machine.cycles r.Mcsim_cluster.Machine.ipc
        r.Mcsim_cluster.Machine.replays
    | _ -> failwith "malformed run result from server");
    prerr_endline (served_line served)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Submit one detailed run to the service.")
    Term.(const run $ socket_arg $ bench_pos $ submit_machine_arg $ clusters_arg
          $ topology_arg $ steering_arg $ submit_scheduler_arg $ max_instrs_arg $ seed_arg
          $ engine_arg)

let submit_sample_cmd =
  let run socket bench machine clusters topology steering scheduler max_instrs seed sample
      engine =
    wrap @@ fun () ->
    let policy =
      match sample with
      | Some p -> { p with Mcsim_sampling.Sampling.seed }
      | None -> { Mcsim_sampling.Sampling.default_policy with seed }
    in
    let sweep =
      Mcsim_serve.Protocol.Sample
        { bench; machine; scheduler; max_instrs; seed; engine; policy; clusters; topology;
          steering }
    in
    with_client socket @@ fun c ->
    let result, served = Mcsim_serve.Client.submit ~on_unit:progress_on_unit c sweep in
    (match
       ( Option.bind (Json.member "result" result) Mcsim_obs.Metrics.result_of_json,
         Json.member "sampling" result )
     with
    | Some machine_r, Some sj -> (
      match
        Mcsim_obs.Metrics.sampling_of_json ~seed:policy.Mcsim_sampling.Sampling.seed
          ~machine:machine_r sj
      with
      | Some s -> print_string (Mcsim_sampling.Sampling.render s)
      | None -> failwith "malformed sample result from server")
    | _ -> failwith "malformed sample result from server");
    prerr_endline (served_line served)
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Submit one sampled estimate to the service.")
    Term.(const run $ socket_arg $ bench_pos $ submit_machine_arg $ clusters_arg
          $ topology_arg $ steering_arg $ submit_scheduler_arg $ max_instrs_arg $ seed_arg
          $ sample_arg $ engine_arg)

let submit_stats_cmd =
  let run socket =
    wrap @@ fun () ->
    with_client socket @@ fun c ->
    print_endline (Json.to_string (Mcsim_serve.Client.stats c))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Print the server's counters (requests, cache hits, coalesced units, ...) \
             as a metrics snapshot.")
    Term.(const run $ socket_arg)

let submit_cmd =
  Cmd.group
    (Cmd.info "submit" ~doc:"Submit sweeps to a running mcsim serve daemon.")
    [ submit_table2_cmd; submit_run_cmd; submit_sample_cmd; submit_stats_cmd ]

let () =
  let doc = "Multicluster architecture simulator (Farkas, Chow, Jouppi & Vranesic, MICRO-30)." in
  let info = Cmd.info "mcsim" ~version:Mcsim_obs.Manifest.mcsim_version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ table1_cmd; table2_cmd; scenarios_cmd; figure6_cmd; cycle_time_cmd; workloads_cmd;
            run_cmd; sample_cmd; resume_cmd; trace_cmd; trace_store_cmd; result_store_cmd;
            serve_cmd; submit_cmd; ablate_cmd; reassign_cmd; clusters_cmd; steer_cmd;
            compile_cmd; simulate_cmd ]))
