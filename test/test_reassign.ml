(* Tests for dynamic register reassignment (Machine.run_phased) and the
   demonstration experiment. *)

module Machine = Mcsim_cluster.Machine
module Assignment = Mcsim_cluster.Assignment
module Reg = Mcsim_isa.Reg
module Op = Mcsim_isa.Op_class
module Instr = Mcsim_isa.Instr

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let mk seq op srcs dst =
  Instr.dynamic ~seq ~pc:(seq mod 8) (Instr.make ~op ~srcs ~dst)

let simple_trace n = Array.init n (fun i -> mk i Op.Int_other [] (Some (Reg.int_reg (2 * (i mod 5)))))

let moved_registers () =
  let a = Assignment.create ~num_clusters:2 () in
  check Alcotest.int "same assignment moves nothing" 0
    (List.length (Machine.moved_registers a a));
  let b = Assignment.create ~num_clusters:2 ~globals:[ Reg.sp; Reg.gp; Reg.int_reg 4 ] () in
  (* r4 goes from Local 0 to Global. *)
  check Alcotest.(list string) "r4 moved" [ "r4" ]
    (List.map Reg.to_string (Machine.moved_registers a b))

let phased_single_phase_equals_run () =
  let cfg = Machine.dual_cluster () in
  let trace = simple_trace 300 in
  let a = Machine.run cfg trace in
  let b = Machine.run_phased cfg [ (cfg.Machine.assignment, trace) ] in
  check Alcotest.int "identical cycles" a.Machine.cycles b.Machine.cycles

let phased_counts_all_phases () =
  let cfg = Machine.dual_cluster () in
  let t1 = simple_trace 200 and t2 = simple_trace 150 in
  let r = Machine.run_phased cfg [ (cfg.Machine.assignment, t1); (cfg.Machine.assignment, t2) ] in
  check Alcotest.int "both phases retired" 350 r.Machine.retired;
  check Alcotest.int "no reassignment for identical assignments" 0
    (Machine.counter r "reassignments")

let phased_pays_overhead () =
  let cfg = Machine.dual_cluster () in
  let asg2 = Assignment.create ~num_clusters:2 ~globals:[ Reg.sp; Reg.gp; Reg.int_reg 0 ] () in
  let t1 = simple_trace 200 and t2 = simple_trace 200 in
  let same =
    Machine.run_phased cfg [ (cfg.Machine.assignment, t1); (cfg.Machine.assignment, t2) ]
  in
  let switched = Machine.run_phased cfg [ (cfg.Machine.assignment, t1); (asg2, t2) ] in
  check Alcotest.int "one reassignment" 1 (Machine.counter switched "reassignments");
  check Alcotest.bool "registers copied" true
    (Machine.counter switched "reassigned_registers" >= 1);
  check Alcotest.bool "switch costs cycles" true
    (switched.Machine.cycles >= same.Machine.cycles);
  check Alcotest.int "all instructions still retire" 400 switched.Machine.retired

let moved_registers_symmetric () =
  let a = Assignment.create ~num_clusters:2 () in
  let b = Assignment.create ~num_clusters:2 ~globals:[ Reg.sp; Reg.gp; Reg.int_reg 4 ] () in
  let names asg asg' = List.sort compare (List.map Reg.to_string (Machine.moved_registers asg asg')) in
  check Alcotest.(list string) "a->b and b->a move the same registers" (names a b) (names b a)

(* Two structurally equal assignment values are as free to switch
   between as reusing the same value: nothing moves, nothing stalls. *)
let phased_equal_assignments_free () =
  let cfg = Machine.dual_cluster () in
  let twin = Assignment.create ~num_clusters:2 () in
  check Alcotest.int "twin assignment moves nothing" 0
    (List.length (Machine.moved_registers cfg.Machine.assignment twin));
  let t1 = simple_trace 200 and t2 = simple_trace 150 in
  let same =
    Machine.run_phased cfg [ (cfg.Machine.assignment, t1); (cfg.Machine.assignment, t2) ]
  in
  let twinned = Machine.run_phased cfg [ (cfg.Machine.assignment, t1); (twin, t2) ] in
  check Alcotest.int "no resync cost" same.Machine.cycles twinned.Machine.cycles;
  check Alcotest.int "no registers copied" 0 (Machine.counter twinned "reassigned_registers")

(* The worst-case reassignment: the second phase inverts the parity
   mapping, so every local register changes clusters. *)
let phased_all_registers_moved () =
  let cfg = Machine.dual_cluster () in
  let base = cfg.Machine.assignment in
  let inverted =
    Assignment.custom ~num_clusters:2 (fun r ->
        match Assignment.placement base r with
        | Assignment.Local c -> Assignment.Local (1 - c)
        | Assignment.Global -> Assignment.Global)
  in
  let moved = List.length (Machine.moved_registers base inverted) in
  check Alcotest.bool "every local register moves" true
    (moved > (Reg.num_int + Reg.num_fp) / 2);
  let t1 = simple_trace 200 and t2 = simple_trace 200 in
  let same = Machine.run_phased cfg [ (base, t1); (base, t2) ] in
  let flipped = Machine.run_phased cfg [ (base, t1); (inverted, t2) ] in
  check Alcotest.int "all moved registers copied" moved
    (Machine.counter flipped "reassigned_registers");
  check Alcotest.bool "worst case costs more than no switch" true
    (flipped.Machine.cycles > same.Machine.cycles);
  check Alcotest.int "all instructions still retire" 400 flipped.Machine.retired

let phased_cluster_count_fixed () =
  let cfg = Machine.dual_cluster () in
  Alcotest.check_raises "cannot change cluster count"
    (Invalid_argument "Machine.load_phase: cluster count cannot change") (fun () ->
      ignore (Machine.run_phased cfg [ (Assignment.single, simple_trace 10) ]))

let demo_reduces_duals () =
  let o = Mcsim.Reassign.run ~phase_iterations:500 () in
  check Alcotest.bool "dual distribution collapses" true
    (o.Mcsim.Reassign.phased_result.Machine.dual_distributed * 100
     < o.Mcsim.Reassign.static_result.Machine.dual_distributed);
  check Alcotest.bool "cycles improve" true (Mcsim.Reassign.improvement_pct o > 0.0);
  check Alcotest.bool "distinct shared registers" true
    (not (Reg.equal o.Mcsim.Reassign.shared_a o.Mcsim.Reassign.shared_b))

let demo_render () =
  let o = Mcsim.Reassign.run ~phase_iterations:200 () in
  check Alcotest.bool "render mentions improvement" true
    (try
       ignore (Str.search_forward (Str.regexp_string "improvement") (Mcsim.Reassign.render o) 0);
       true
     with Not_found -> false)

let suite =
  ( "reassign",
    [ case "moved registers" moved_registers;
      case "moved registers are symmetric" moved_registers_symmetric;
      case "single phase equals plain run" phased_single_phase_equals_run;
      case "phases accumulate" phased_counts_all_phases;
      case "equal assignments switch for free" phased_equal_assignments_free;
      case "all registers moved (inverted parity)" phased_all_registers_moved;
      case "reassignment pays its overhead" phased_pays_overhead;
      case "cluster count is fixed" phased_cluster_count_fixed;
      case "demo: duals collapse and cycles improve" demo_reduces_duals;
      case "demo: rendering" demo_render ] )
