let () =
  Alcotest.run "mcsim"
    [ Test_util.suite;
      Test_isa.suite;
      Test_ir.suite;
      Test_branch_cache.suite;
      Test_cpu.suite;
      Test_cluster.suite;
      Test_steering.suite;
      Test_compiler.suite;
      Test_trace.suite;
      Test_workload.suite;
      Test_timing.suite;
      Test_core.suite;
      Test_audit.suite;
      Test_engine.suite;
      Test_extensions.suite;
      Test_reassign.suite;
      Test_sampling.suite;
      Test_format.suite;
      Test_report.suite;
      Test_golden.suite;
      Test_obs.suite;
      Test_crossval.suite;
      Test_parallel.suite;
      Test_durable.suite;
      Test_trace_store.suite;
      Test_serve.suite ]
