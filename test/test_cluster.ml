(* Tests for Mcsim_cluster: register-to-cluster assignment, instruction
   distribution, transfer buffers, and the machine model itself. *)

module Assignment = Mcsim_cluster.Assignment
module Distribution = Mcsim_cluster.Distribution
module Transfer_buffer = Mcsim_cluster.Transfer_buffer
module Machine = Mcsim_cluster.Machine
module Reg = Mcsim_isa.Reg
module Op = Mcsim_isa.Op_class
module Instr = Mcsim_isa.Instr

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let dual_asg = Assignment.create ~num_clusters:2 ()

(* -------------------------- assignment ----------------------------- *)

let asg_even_odd () =
  check Alcotest.bool "r4 local to 0" true
    (Assignment.placement dual_asg (Reg.int_reg 4) = Assignment.Local 0);
  check Alcotest.bool "f7 local to 1" true
    (Assignment.placement dual_asg (Reg.fp_reg 7) = Assignment.Local 1);
  check Alcotest.bool "sp global" true (Assignment.placement dual_asg Reg.sp = Assignment.Global);
  check Alcotest.bool "gp global" true (Assignment.placement dual_asg Reg.gp = Assignment.Global);
  check Alcotest.bool "zero reported global" true
    (Assignment.placement dual_asg Reg.zero_int = Assignment.Global)

let asg_clusters_of () =
  check Alcotest.(list int) "local" [ 0 ] (Assignment.clusters_of dual_asg (Reg.int_reg 2));
  check Alcotest.(list int) "global" [ 0; 1 ] (Assignment.clusters_of dual_asg Reg.sp);
  check Alcotest.bool "readable_in local" true
    (Assignment.readable_in dual_asg (Reg.int_reg 2) 0);
  check Alcotest.bool "not readable elsewhere" false
    (Assignment.readable_in dual_asg (Reg.int_reg 2) 1)

let asg_locals_globals () =
  let locals0 = Assignment.locals_of dual_asg 0 in
  (* Even int regs 0..28 (15 of them) + even fp regs 0..30 (16). *)
  check Alcotest.int "cluster 0 locals" 31 (List.length locals0);
  check Alcotest.int "globals" 2 (List.length (Assignment.globals dual_asg));
  check Alcotest.bool "sp among globals" true
    (List.exists (Reg.equal Reg.sp) (Assignment.globals dual_asg))

let asg_single () =
  check Alcotest.int "single has one cluster" 1 (Assignment.num_clusters Assignment.single);
  List.iter
    (fun r ->
      if not (Reg.is_zero r) then
        check Alcotest.bool "everything local to 0" true
          (Assignment.placement Assignment.single r = Assignment.Local 0))
    Reg.all

let asg_custom_validation () =
  Alcotest.check_raises "out-of-range cluster"
    (Invalid_argument "Assignment: Local cluster out of range") (fun () ->
      ignore (Assignment.custom ~num_clusters:2 (fun _ -> Assignment.Local 5)));
  Alcotest.check_raises "zero clusters" (Invalid_argument "Assignment: num_clusters < 1")
    (fun () -> ignore (Assignment.create ~num_clusters:0 ()))

(* ------------------------- distribution ---------------------------- *)

let plan i = Distribution.plan dual_asg i
let r = Reg.int_reg

let dist_scenario1 () =
  let p = plan (Instr.make ~op:Op.Int_other ~srcs:[ r 2; r 4 ] ~dst:(Some (r 6))) in
  check Alcotest.int "scenario 1" 1 (Distribution.scenario p);
  match p with
  | Distribution.Single { cluster } -> check Alcotest.int "cluster 0" 0 cluster
  | Distribution.Multi _ -> Alcotest.fail "expected single"

let dist_scenario2 () =
  let p = plan (Instr.make ~op:Op.Int_other ~srcs:[ r 4; r 1 ] ~dst:(Some (r 2))) in
  check Alcotest.int "scenario 2" 2 (Distribution.scenario p);
  match p with
  | Distribution.Multi { master; slaves = [ sl ]; master_writes_reg } ->
    check Alcotest.int "master has the majority" 0 master;
    check Alcotest.int "slave other side" 1 sl.Distribution.s_cluster;
    check Alcotest.(list string) "r1 forwarded" [ "r1" ]
      (List.map Reg.to_string sl.Distribution.s_forward_srcs);
    check Alcotest.bool "master writes" true master_writes_reg;
    check Alcotest.bool "no result forward" false sl.Distribution.s_receives_result
  | Distribution.Multi _ | Distribution.Single _ -> Alcotest.fail "expected one slave"

let dist_scenario3 () =
  let p = plan (Instr.make ~op:Op.Int_other ~srcs:[ r 0; r 2 ] ~dst:(Some (r 1))) in
  check Alcotest.int "scenario 3" 3 (Distribution.scenario p);
  match p with
  | Distribution.Multi { master; slaves = [ sl ]; master_writes_reg } ->
    check Alcotest.int "master where the sources live" 0 master;
    check Alcotest.bool "slave writes" true sl.Distribution.s_receives_result;
    check Alcotest.bool "master does not write" false master_writes_reg;
    check Alcotest.(list string) "nothing forwarded" []
      (List.map Reg.to_string sl.Distribution.s_forward_srcs)
  | Distribution.Multi _ | Distribution.Single _ -> Alcotest.fail "expected one slave"

let dist_scenario4 () =
  let p = plan (Instr.make ~op:Op.Int_other ~srcs:[ r 0; r 2 ] ~dst:(Some Reg.sp)) in
  check Alcotest.int "scenario 4" 4 (Distribution.scenario p);
  match p with
  | Distribution.Multi { master_writes_reg; slaves = [ sl ]; _ } ->
    check Alcotest.bool "both write the global" true
      (master_writes_reg && sl.Distribution.s_receives_result);
    check Alcotest.(list string) "nothing forwarded" []
      (List.map Reg.to_string sl.Distribution.s_forward_srcs)
  | Distribution.Multi _ | Distribution.Single _ -> Alcotest.fail "expected one slave"

let dist_scenario5 () =
  let p = plan (Instr.make ~op:Op.Int_other ~srcs:[ r 2; r 1 ] ~dst:(Some Reg.gp)) in
  check Alcotest.int "scenario 5" 5 (Distribution.scenario p);
  match p with
  | Distribution.Multi { slaves = [ sl ]; _ } ->
    check Alcotest.bool "operand forwarded" true (sl.Distribution.s_forward_srcs <> []);
    check Alcotest.bool "result forwarded" true sl.Distribution.s_receives_result
  | Distribution.Multi _ | Distribution.Single _ -> Alcotest.fail "expected one slave"

let dist_all_odd_single_c1 () =
  match plan (Instr.make ~op:Op.Int_other ~srcs:[ r 1; r 3 ] ~dst:(Some (r 5))) with
  | Distribution.Single { cluster } -> check Alcotest.int "cluster 1" 1 cluster
  | Distribution.Multi _ -> Alcotest.fail "expected single"

let dist_store_split () =
  (* Store data on one cluster, address base on the other: dual with an
     operand forward and no destination. *)
  match plan (Instr.make ~op:Op.Store ~srcs:[ r 2; r 1 ] ~dst:None) with
  | Distribution.Multi { slaves = [ sl ]; master_writes_reg; _ } ->
    check Alcotest.bool "forwarded" true (sl.Distribution.s_forward_srcs <> []);
    check Alcotest.bool "no writes" true
      ((not master_writes_reg) && not sl.Distribution.s_receives_result)
  | Distribution.Multi _ | Distribution.Single _ -> Alcotest.fail "expected one slave"

let dist_zero_regs_ignored () =
  match plan (Instr.make ~op:Op.Int_other ~srcs:[ Reg.zero_int; r 2 ] ~dst:(Some (r 4))) with
  | Distribution.Single { cluster } -> check Alcotest.int "zeros do not pin" 0 cluster
  | Distribution.Multi _ -> Alcotest.fail "expected single"

let dist_zero_dst_is_no_dst () =
  match plan (Instr.make ~op:Op.Int_other ~srcs:[ r 2 ] ~dst:(Some Reg.zero_int)) with
  | Distribution.Single { cluster } -> check Alcotest.int "src cluster" 0 cluster
  | Distribution.Multi _ -> Alcotest.fail "expected single"

let dist_global_only_prefers () =
  let i = Instr.make ~op:Op.Store ~srcs:[ Reg.sp; Reg.gp ] ~dst:None in
  (match Distribution.plan dual_asg ~prefer:1 i with
  | Distribution.Single { cluster } -> check Alcotest.int "prefer wins ties" 1 cluster
  | Distribution.Multi _ -> Alcotest.fail "expected single");
  match Distribution.plan dual_asg ~prefer:0 i with
  | Distribution.Single { cluster } -> check Alcotest.int "prefer 0" 0 cluster
  | Distribution.Multi _ -> Alcotest.fail "expected single"

let dist_single_machine_always_single () =
  let i = Instr.make ~op:Op.Int_other ~srcs:[ r 1; r 2 ] ~dst:(Some (r 3)) in
  match Distribution.plan Assignment.single i with
  | Distribution.Single { cluster } -> check Alcotest.int "cluster 0" 0 cluster
  | Distribution.Multi _ -> Alcotest.fail "expected single"

let arb_instr =
  let open QCheck.Gen in
  let reg = map Reg.int_reg (int_bound 31) in
  let gen =
    let* nsrc = int_bound 2 in
    let* srcs = list_repeat nsrc reg in
    let* dst = opt reg in
    let op = match dst with Some _ -> Op.Int_other | None -> Op.Control in
    let dst = match op with Op.Control -> None | _ -> dst in
    return (Instr.make ~op ~srcs ~dst)
  in
  QCheck.make gen

let dist_plan_invariants =
  QCheck.Test.make ~name:"distribution plans are well-formed" ~count:500 arb_instr
    (fun i ->
      match plan i with
      | Distribution.Single { cluster } ->
        (cluster = 0 || cluster = 1)
        && List.for_all
             (fun s -> Reg.is_zero s || Assignment.readable_in dual_asg s cluster)
             i.Instr.srcs
      | Distribution.Multi { master; slaves; _ } ->
        slaves <> []
        && List.for_all
             (fun sl ->
               sl.Distribution.s_cluster <> master
               && List.for_all
                    (fun f -> List.exists (Reg.equal f) i.Instr.srcs)
                    sl.Distribution.s_forward_srcs
               && List.for_all
                    (fun f -> not (Assignment.readable_in dual_asg f master))
                    sl.Distribution.s_forward_srcs)
             slaves
        && Distribution.scenario (plan i) >= 2
        && Distribution.scenario (plan i) <= 5)

(* ------------------------ transfer buffer -------------------------- *)

let tb_alloc_free () =
  let t = Transfer_buffer.create ~entries:2 in
  check Alcotest.int "2 available" 2 (Transfer_buffer.available t ~cycle:0);
  let a = Transfer_buffer.alloc t ~cycle:0 in
  let b = Transfer_buffer.alloc t ~cycle:0 in
  check Alcotest.bool "full" false (Transfer_buffer.can_alloc t ~cycle:0);
  Alcotest.check_raises "alloc when full" (Invalid_argument "Transfer_buffer.alloc: full")
    (fun () -> ignore (Transfer_buffer.alloc t ~cycle:0));
  Transfer_buffer.free t ~cycle:5 a;
  check Alcotest.bool "not reusable same cycle" false (Transfer_buffer.can_alloc t ~cycle:5);
  check Alcotest.bool "reusable next cycle" true (Transfer_buffer.can_alloc t ~cycle:6);
  Transfer_buffer.free t ~cycle:6 b;
  check Alcotest.int "high water" 2 (Transfer_buffer.high_water t);
  check Alcotest.int "allocations" 2 (Transfer_buffer.allocations t)

let tb_errors () =
  let t = Transfer_buffer.create ~entries:1 in
  Alcotest.check_raises "free unused" (Invalid_argument "Transfer_buffer.free: not in use")
    (fun () -> Transfer_buffer.free t ~cycle:0 0);
  Alcotest.check_raises "free bad id" (Invalid_argument "Transfer_buffer.free: bad entry")
    (fun () -> Transfer_buffer.free t ~cycle:0 5)

let tb_clear () =
  let t = Transfer_buffer.create ~entries:2 in
  ignore (Transfer_buffer.alloc t ~cycle:0);
  ignore (Transfer_buffer.alloc t ~cycle:0);
  Transfer_buffer.clear t;
  check Alcotest.int "all usable immediately" 2 (Transfer_buffer.available t ~cycle:0)

(* ---------------------------- machine ------------------------------ *)

let mk ?(seq = 0) ?(pc = 0) ?mem_addr ?branch op srcs dst =
  Instr.dynamic ~seq ~pc ?mem_addr ?branch (Instr.make ~op ~srcs ~dst)

(* The microbenchmarks pin every instruction into one i-cache line so the
   measured latencies are not dominated by cold instruction fetches. *)
let indep n =
  Array.init n (fun i -> mk ~seq:i ~pc:(i mod 8) Op.Int_other [] (Some (r (i mod 8 * 2))))

let chain n =
  Array.init n (fun i ->
      mk ~seq:i ~pc:(i mod 8) Op.Int_other (if i = 0 then [] else [ r 2 ]) (Some (r 2)))

let run_single = Machine.run (Machine.single_cluster ())
let run_dual = Machine.run (Machine.dual_cluster ())

let m_empty_trace () =
  let res = run_single [||] in
  check Alcotest.int "no cycles" 0 res.Machine.cycles;
  check Alcotest.int "nothing retired" 0 res.Machine.retired

let m_single_instruction () =
  let res = run_single (indep 1) in
  check Alcotest.int "one retired" 1 res.Machine.retired;
  check Alcotest.bool "a few cycles" true (res.Machine.cycles > 0 && res.Machine.cycles < 40)

let m_all_retired () =
  let res = run_single (indep 500) in
  check Alcotest.int "all retired" 500 res.Machine.retired;
  let res2 = run_dual (indep 500) in
  check Alcotest.int "dual retires all too" 500 res2.Machine.retired

let m_serial_chain_rate () =
  (* A dependent 1-cycle chain issues one instruction per cycle. *)
  let n = 400 in
  let res = run_single (chain n) in
  check Alcotest.bool
    (Printf.sprintf "chain of %d takes about %d cycles (got %d)" n n res.Machine.cycles)
    true
    (res.Machine.cycles >= n && res.Machine.cycles < n + 40)

let m_parallel_throughput () =
  (* Independent adds sustain close to the 8-wide issue limit. *)
  let n = 800 in
  let res = run_single (indep n) in
  check Alcotest.bool (Printf.sprintf "IPC near 8 (cycles=%d)" res.Machine.cycles) true
    (res.Machine.cycles < (n / 8) + 60)

let m_multiply_latency () =
  let n = 50 in
  let trace =
    Array.init n (fun i ->
        mk ~seq:i ~pc:(i mod 8) Op.Int_multiply (if i = 0 then [] else [ r 2 ]) (Some (r 2)))
  in
  let res = run_single trace in
  (* 6-cycle latency per link in the chain. *)
  check Alcotest.bool (Printf.sprintf "6 cycles per multiply (got %d)" res.Machine.cycles)
    true
    (res.Machine.cycles >= 6 * (n - 1) && res.Machine.cycles < (6 * n) + 60)

let m_load_miss_latency () =
  (* Two dependent cold loads: each pays the 16-cycle memory latency. *)
  let trace =
    [| mk ~seq:0 ~pc:0 ~mem_addr:0 Op.Load [ Reg.sp ] (Some (r 2));
       mk ~seq:1 ~pc:1 ~mem_addr:4096 Op.Load [ r 2 ] (Some (r 4));
       mk ~seq:2 ~pc:2 Op.Int_other [ r 4 ] (Some (r 6)) |]
  in
  let res = run_single trace in
  check Alcotest.bool (Printf.sprintf "two serial misses (got %d)" res.Machine.cycles) true
    (res.Machine.cycles > 34)

let m_mispredict_redirect () =
  (* A branch whose direction alternates every time with a cold predictor
     must cause some mispredicted fetches and fetch stalls. *)
  let n = 300 in
  let trace =
    Array.init n (fun i ->
        if i mod 3 = 2 then
          mk ~seq:i ~pc:(i mod 30) Op.Control [ r 2 ]
            ~branch:{ Instr.conditional = true; taken = i mod 2 = 0; target = 0 }
            None
        else mk ~seq:i ~pc:(i mod 30) Op.Int_other [] (Some (r (2 * (i mod 5)))))
  in
  let res = run_single trace in
  check Alcotest.bool "mispredictions occurred" true
    (Machine.counter res "mispredicted_fetches" > 0);
  check Alcotest.bool "fetch stalled" true (Machine.counter res "fetch_stall_cycles" > 0);
  check Alcotest.int "all retired regardless" n res.Machine.retired

let m_biased_branch_learned () =
  let n = 600 in
  let trace =
    Array.init n (fun i ->
        if i mod 3 = 2 then
          mk ~seq:i ~pc:(i mod 30) Op.Control [ r 2 ]
            ~branch:{ Instr.conditional = true; taken = true; target = 0 }
            None
        else mk ~seq:i ~pc:(i mod 30) Op.Int_other [] (Some (r (2 * (i mod 5)))))
  in
  let res = run_single trace in
  check Alcotest.bool
    (Printf.sprintf "accuracy high (%.3f)" res.Machine.branch_accuracy)
    true
    (res.Machine.branch_accuracy > 0.9)

let m_retire_in_order_and_width () =
  let retires = Hashtbl.create 64 in
  let last_seq = ref (-1) in
  let ok_order = ref true in
  let on_event = function
    | Machine.Ev_retire { cycle; seq } ->
      if seq <= !last_seq then ok_order := false;
      last_seq := seq;
      Hashtbl.replace retires cycle (1 + Option.value ~default:0 (Hashtbl.find_opt retires cycle))
    | _ -> ()
  in
  ignore (Machine.run ~on_event (Machine.single_cluster ()) (indep 300));
  check Alcotest.bool "retired in program order" true !ok_order;
  Hashtbl.iter
    (fun _ n -> if n > 8 then Alcotest.failf "retired %d in one cycle" n)
    retires

let m_dual_as_single_equivalent () =
  (* A dual-machine configuration with every register on cluster 0 and the
     single-cluster resources is the single-cluster machine. *)
  let cfg =
    { (Machine.dual_cluster ()) with
      Machine.assignment = Assignment.single;
      dq_entries = 128;
      phys_per_bank = 128;
      issue_limits = Mcsim_isa.Issue_rules.single_cluster }
  in
  let trace = chain 300 in
  let a = Machine.run cfg trace in
  let b = run_single trace in
  check Alcotest.int "same cycle count" b.Machine.cycles a.Machine.cycles;
  check Alcotest.int "no dual distribution" 0 a.Machine.dual_distributed

let m_distribution_counters () =
  let trace =
    [| mk ~seq:0 ~pc:0 Op.Int_other [] (Some (r 2));
       mk ~seq:1 ~pc:1 Op.Int_other [] (Some (r 1));
       (* single: all on cluster 0 *)
       mk ~seq:2 ~pc:2 Op.Int_other [ r 2; r 2 ] (Some (r 4));
       (* dual, scenario 2: r1 forwarded *)
       mk ~seq:3 ~pc:3 Op.Int_other [ r 2; r 1 ] (Some (r 6));
       (* dual, scenario 4: global destination *)
       mk ~seq:4 ~pc:4 Op.Int_other [ r 2; r 4 ] (Some Reg.sp) |]
  in
  let res = run_dual trace in
  check Alcotest.int "three single" 3 res.Machine.single_distributed;
  check Alcotest.int "two dual" 2 res.Machine.dual_distributed;
  check Alcotest.int "scenario 2 count" 1 (Machine.counter res "scenario_2");
  check Alcotest.int "scenario 4 count" 1 (Machine.counter res "scenario_4");
  check Alcotest.int "slave issues" 2 (Machine.counter res "slave_issues")

let m_replay_under_tiny_buffers () =
  (* Starve the operand buffers: chains that keep crossing clusters with a
     single operand entry per cluster. The machine must replay rather
     than deadlock, and still retire everything. *)
  let n = 400 in
  let trace =
    Array.init n (fun i ->
        (* alternate destinations across clusters so every instruction
           forwards its source from the other side *)
        let dst = if i mod 2 = 0 then r 2 else r 1 in
        let src = if i = 0 then [] else [ (if i mod 2 = 0 then r 1 else r 2) ] in
        mk ~seq:i ~pc:(i mod 8) Op.Int_other src (Some dst))
  in
  let cfg =
    { (Machine.dual_cluster ()) with
      Machine.operand_buffer_entries = 1;
      result_buffer_entries = 1 }
  in
  let res = Machine.run cfg trace in
  check Alcotest.int "all retired despite pressure" n res.Machine.retired

let m_zero_dst_never_stalls_phys () =
  let n = 500 in
  let trace =
    Array.init n (fun i -> mk ~seq:i ~pc:(i mod 8) Op.Int_other [] (Some Reg.zero_int))
  in
  let res = run_single trace in
  check Alcotest.int "no phys stalls" 0 (Machine.counter res "stall_phys");
  check Alcotest.int "all retired" n res.Machine.retired

let m_split_queues_run () =
  let cfg = { (Machine.dual_cluster ()) with Machine.queue_split = Machine.Per_class } in
  let n = 400 in
  let trace =
    Array.init n (fun i ->
        match i mod 3 with
        | 0 -> mk ~seq:i ~pc:(i mod 8) Op.Int_other [] (Some (r 2))
        | 1 ->
          mk ~seq:i ~pc:(i mod 8) Op.Load [ Reg.sp ] (Some (r 4)) ~mem_addr:(8 * (i mod 64))
        | _ ->
          Instr.dynamic ~seq:i ~pc:(i mod 8)
            (Instr.make ~op:Op.Fp_other ~srcs:[] ~dst:(Some (Reg.fp_reg 2))))
  in
  let res = Machine.run cfg trace in
  check Alcotest.int "all retired with split queues" n res.Machine.retired

let m_split_queue_fragmentation () =
  (* An all-fp burst fills the small fp queue of a Per_class machine and
     stalls dispatch; the unified machine absorbs it. *)
  let trace =
    Array.init 400 (fun i ->
        Instr.dynamic ~seq:i ~pc:(i mod 8)
          (Instr.make ~op:Op.Fp_other ~srcs:[ Reg.fp_reg 0 ] ~dst:(Some (Reg.fp_reg 0))))
  in
  let unified = Machine.run (Machine.dual_cluster ()) trace in
  let split =
    Machine.run { (Machine.dual_cluster ()) with Machine.queue_split = Machine.Per_class }
      trace
  in
  check Alcotest.int "both retire" unified.Machine.retired split.Machine.retired;
  check Alcotest.bool "split machine cannot be faster here" true
    (split.Machine.cycles >= unified.Machine.cycles)

let m_determinism () =
  let trace = indep 400 in
  let a = run_dual trace and b = run_dual trace in
  check Alcotest.int "same cycles" a.Machine.cycles b.Machine.cycles;
  check Alcotest.(list (pair string int)) "same counters" a.Machine.counters b.Machine.counters

let m_validate_config () =
  let bad f =
    try
      Machine.validate_config (f (Machine.dual_cluster ()));
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "dq 0" true (bad (fun c -> { c with Machine.dq_entries = 0 }));
  check Alcotest.bool "phys 16" true (bad (fun c -> { c with Machine.phys_per_bank = 16 }));
  check Alcotest.bool "buffer 0" true
    (bad (fun c -> { c with Machine.operand_buffer_entries = 0 }));
  check Alcotest.bool "default ok" true
    (try Machine.validate_config (Machine.dual_cluster ()); true
     with Invalid_argument _ -> false)

let m_conservation =
  QCheck.Test.make ~name:"machine retires the whole trace (random programs)" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let params =
        { Mcsim_workload.Synth.name = "rand"; seed;
          n_segments = 5; p_diamond = 0.4; p_inner_loop = 0.2;
          inner_trip_min = 2; inner_trip_max = 6; outer_trip = 500;
          block_min = 2; block_max = 6;
          int_pool = 12; fp_pool = 8; n_communities = 2; p_cross_community = 0.2;
          mix =
            { Mcsim_workload.Synth.w_int_other = 0.4; w_int_multiply = 0.05;
              w_fp_other = 0.2; w_fp_divide = 0.03; w_load = 0.2; w_store = 0.12 };
          chain_bias = 0.6; fp64_div_frac = 0.5; mem_fp_frac = 0.5; sp_base_frac = 0.4;
          mem_kinds =
            [ (0.5, Mcsim_workload.Synth.Stack_slots { slots = 8 });
              (0.5, Mcsim_workload.Synth.Table_random { table_bytes = 32 * 1024 }) ];
          branch_style = Mcsim_workload.Synth.Data_dependent 0.6 }
      in
      let prog = Mcsim_workload.Synth.generate params in
      let profile = Mcsim_trace.Walker.profile prog in
      let c =
        Mcsim_compiler.Pipeline.compile ~profile
          ~scheduler:Mcsim_compiler.Pipeline.default_local prog
      in
      let trace = Mcsim_trace.Walker.trace ~max_instrs:3_000 c.Mcsim_compiler.Pipeline.mach in
      let rs = run_single trace and rd = run_dual trace in
      rs.Machine.retired = Array.length trace
      && rd.Machine.retired = Array.length trace
      && rd.Machine.single_distributed + rd.Machine.dual_distributed
         >= rd.Machine.retired)

(* -------------------------- interconnect --------------------------- *)

module Interconnect = Mcsim_cluster.Interconnect

let ic_string_round_trip () =
  List.iter
    (fun t ->
      check Alcotest.bool
        (Interconnect.to_string t ^ " round-trips")
        true
        (Interconnect.of_string (Interconnect.to_string t) = t))
    Interconnect.all;
  check Alcotest.bool "long spellings accepted" true
    (Interconnect.of_string "point-to-point" = Interconnect.Point_to_point
    && Interconnect.of_string "crossbar" = Interconnect.Crossbar);
  check Alcotest.bool "unknown rejected" true
    (try
       ignore (Interconnect.of_string "mesh");
       false
     with Invalid_argument _ -> true)

let ic_hop_properties () =
  List.iter
    (fun t ->
      List.iter
        (fun clusters ->
          for src = 0 to clusters - 1 do
            for dst = 0 to clusters - 1 do
              let h = Interconnect.hop_latency t ~clusters ~src ~dst in
              check Alcotest.bool "at least one cycle" true (h >= 1);
              check Alcotest.int "symmetric"
                (Interconnect.hop_latency t ~clusters ~src:dst ~dst:src)
                h;
              if src = dst then check Alcotest.int "local write-back" 1 h;
              check Alcotest.bool "below the worst case" true
                (h <= Interconnect.max_hop t ~clusters);
              check Alcotest.int "matrix agrees" h
                (Interconnect.matrix t ~clusters).((src * clusters) + dst)
            done
          done)
        [ 1; 2; 4; 8 ])
    Interconnect.all

let ic_known_latencies () =
  (* The paper's machine: every dual transfer is one cycle on p2p/ring. *)
  check Alcotest.int "dual p2p" 1
    (Interconnect.hop_latency Interconnect.Point_to_point ~clusters:2 ~src:0 ~dst:1);
  check Alcotest.int "dual ring" 1
    (Interconnect.hop_latency Interconnect.Ring ~clusters:2 ~src:0 ~dst:1);
  check Alcotest.int "xbar arbitrates even at two" 2
    (Interconnect.hop_latency Interconnect.Crossbar ~clusters:2 ~src:0 ~dst:1);
  (* Ring distance is minimal around the ring. *)
  check Alcotest.int "ring of 8: neighbors" 1
    (Interconnect.hop_latency Interconnect.Ring ~clusters:8 ~src:0 ~dst:7);
  check Alcotest.int "ring of 8: diameter" 4
    (Interconnect.hop_latency Interconnect.Ring ~clusters:8 ~src:0 ~dst:4);
  check Alcotest.int "ring of 4: diameter" 2
    (Interconnect.hop_latency Interconnect.Ring ~clusters:4 ~src:1 ~dst:3)

let ic_out_of_range () =
  check Alcotest.bool "bad cluster index rejected" true
    (try
       ignore (Interconnect.hop_latency Interconnect.Ring ~clusters:4 ~src:0 ~dst:4);
       false
     with Invalid_argument _ -> true)

(* --------------------------- steering ------------------------------ *)

(* Regression for the dual-era steering bias: the dispatch preference
   used to be a comparison of clusters 0 and 1 only, so on a
   four-cluster machine steering-free work could never be steered at
   idle clusters 2 and 3. Load clusters 0 and 1 with dependent multiply
   chains, then dispatch instructions with no sources and no effective
   destination: the argmin steering must spread them over clusters 2
   and 3 (this fails on the old two-way preference, which parks them
   all on cluster 0/1). *)
let m_steering_uses_all_clusters () =
  let chain_len = 12 in
  let fillers = 8 in
  let n = (2 * chain_len) + fillers in
  let trace =
    Array.init n (fun i ->
        if i < 2 * chain_len then
          (* r 8 is local to cluster 0, r 9 to cluster 1 (mod-4 parity). *)
          let reg = r (8 + (i mod 2)) in
          mk ~seq:i ~pc:(i mod 8) Op.Int_multiply (if i < 2 then [] else [ reg ]) (Some reg)
        else mk ~seq:i ~pc:(i mod 8) Op.Int_other [] (Some Reg.zero_int))
  in
  let filler_clusters = ref [] in
  let on_event = function
    | Machine.Ev_dispatch { seq; cluster; _ } when seq >= 2 * chain_len ->
      filler_clusters := cluster :: !filler_clusters
    | _ -> ()
  in
  let res = Machine.run ~on_event (Machine.quad_cluster ()) trace in
  check Alcotest.int "all retired" n res.Machine.retired;
  check Alcotest.int "every filler dispatched" fillers (List.length !filler_clusters);
  check Alcotest.bool "cluster 2 used" true (List.mem 2 !filler_clusters);
  check Alcotest.bool "cluster 3 used" true (List.mem 3 !filler_clusters);
  check Alcotest.bool "loaded clusters avoided" true
    (List.for_all (fun c -> c >= 2) !filler_clusters)

let suite =
  ( "cluster",
    [ case "assignment: even/odd with sp+gp global" asg_even_odd;
      case "assignment: clusters_of / readable_in" asg_clusters_of;
      case "assignment: locals and globals lists" asg_locals_globals;
      case "assignment: single" asg_single;
      case "assignment: custom validation" asg_custom_validation;
      case "distribution: scenario 1" dist_scenario1;
      case "distribution: scenario 2 (operand forward)" dist_scenario2;
      case "distribution: scenario 3 (result forward)" dist_scenario3;
      case "distribution: scenario 4 (global destination)" dist_scenario4;
      case "distribution: scenario 5 (operand + global)" dist_scenario5;
      case "distribution: all-odd goes to cluster 1" dist_all_odd_single_c1;
      case "distribution: split store dual-distributes" dist_store_split;
      case "distribution: zero registers ignored" dist_zero_regs_ignored;
      case "distribution: zero destination is no destination" dist_zero_dst_is_no_dst;
      case "distribution: global-only instructions follow prefer" dist_global_only_prefers;
      case "distribution: single machine always single" dist_single_machine_always_single;
      QCheck_alcotest.to_alcotest dist_plan_invariants;
      case "transfer buffer: alloc/free/next-cycle reuse" tb_alloc_free;
      case "transfer buffer: errors" tb_errors;
      case "transfer buffer: clear" tb_clear;
      case "machine: empty trace" m_empty_trace;
      case "machine: one instruction" m_single_instruction;
      case "machine: everything retires" m_all_retired;
      case "machine: serial chain rate" m_serial_chain_rate;
      case "machine: parallel throughput near issue width" m_parallel_throughput;
      case "machine: multiply latency chain" m_multiply_latency;
      case "machine: load miss latency" m_load_miss_latency;
      case "machine: mispredict redirects fetch" m_mispredict_redirect;
      case "machine: biased branch learned" m_biased_branch_learned;
      case "machine: retire order and width" m_retire_in_order_and_width;
      case "machine: dual config degenerates to single" m_dual_as_single_equivalent;
      case "machine: distribution counters" m_distribution_counters;
      case "machine: replays instead of deadlock under tiny buffers"
        m_replay_under_tiny_buffers;
      case "machine: zero destinations need no registers" m_zero_dst_never_stalls_phys;
      case "machine: split queues run" m_split_queues_run;
      case "machine: split-queue fragmentation" m_split_queue_fragmentation;
      case "machine: determinism" m_determinism;
      case "machine: config validation" m_validate_config;
      case "interconnect: to_string/of_string round-trip" ic_string_round_trip;
      case "interconnect: hop latency properties" ic_hop_properties;
      case "interconnect: known latencies" ic_known_latencies;
      case "interconnect: cluster index range" ic_out_of_range;
      case "machine: steering reaches clusters 2 and 3" m_steering_uses_all_clusters;
      QCheck_alcotest.to_alcotest m_conservation ] )
