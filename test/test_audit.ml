(* Property tests: the event auditor's pipeline invariants hold on random
   workloads, machine configurations, and failure-injection settings. *)

module Machine = Mcsim_cluster.Machine
module Synth = Mcsim_workload.Synth
module Spec92 = Mcsim_workload.Spec92

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let random_program seed =
  Synth.generate
    { Synth.name = "audit"; seed;
      n_segments = 4 + (seed mod 4); p_diamond = 0.4; p_inner_loop = 0.25;
      inner_trip_min = 2; inner_trip_max = 8; outer_trip = 300;
      block_min = 2; block_max = 8;
      int_pool = 12; fp_pool = 10; n_communities = 2;
      p_cross_community = float_of_int (seed mod 5) /. 10.0;
      mix =
        { Synth.w_int_other = 0.35; w_int_multiply = 0.05; w_fp_other = 0.2;
          w_fp_divide = 0.05; w_load = 0.2; w_store = 0.15 };
      chain_bias = 0.5; fp64_div_frac = 0.5; mem_fp_frac = 0.5; sp_base_frac = 0.3;
      mem_kinds =
        [ (0.6, Synth.Stack_slots { slots = 8 });
          (0.4, Synth.Table_random { table_bytes = 16 * 1024 }) ];
      branch_style = Synth.Data_dependent 0.6 }

let trace_of seed scheduler =
  let prog = random_program seed in
  let profile = Mcsim_trace.Walker.profile prog in
  let c = Mcsim_compiler.Pipeline.compile ~profile ~scheduler prog in
  Mcsim_trace.Walker.trace ~max_instrs:2_500 c.Mcsim_compiler.Pipeline.mach

let assert_clean cfg trace =
  let _, errors = Event_audit.run_audited cfg trace in
  match errors with
  | [] -> true
  | e :: _ ->
    QCheck.Test.fail_reportf "audit failed (%d errors), first: %s" (List.length errors) e

let audit_single =
  QCheck.Test.make ~name:"pipeline invariants hold on the single-cluster machine" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed -> assert_clean (Machine.single_cluster ()) (trace_of seed Mcsim_compiler.Pipeline.Sched_none))

let audit_dual_none =
  QCheck.Test.make ~name:"pipeline invariants hold on the dual machine (native)" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed -> assert_clean (Machine.dual_cluster ()) (trace_of seed Mcsim_compiler.Pipeline.Sched_none))

let audit_dual_local =
  QCheck.Test.make ~name:"pipeline invariants hold on the dual machine (local)" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      assert_clean (Machine.dual_cluster ()) (trace_of seed Mcsim_compiler.Pipeline.default_local))

let audit_starved_buffers =
  QCheck.Test.make
    ~name:"pipeline invariants hold under starved transfer buffers (replays)" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let cfg =
        { (Machine.dual_cluster ()) with
          Machine.operand_buffer_entries = 1;
          result_buffer_entries = 1;
          replay_threshold = 4 }
      in
      assert_clean cfg (trace_of seed Mcsim_compiler.Pipeline.Sched_round_robin))

let audit_tiny_queues =
  QCheck.Test.make ~name:"pipeline invariants hold with tiny dispatch queues" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let cfg = { (Machine.dual_cluster ()) with Machine.dq_entries = 4 } in
      assert_clean cfg (trace_of seed (Mcsim_compiler.Pipeline.Sched_random 3)))

let audit_tight_registers =
  QCheck.Test.make ~name:"pipeline invariants hold with minimal physical registers" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let cfg = { (Machine.dual_cluster ()) with Machine.phys_per_bank = 34 } in
      assert_clean cfg (trace_of seed Mcsim_compiler.Pipeline.default_local))

let audit_split_queues =
  QCheck.Test.make ~name:"pipeline invariants hold with per-class dispatch queues" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let cfg = { (Machine.dual_cluster ()) with Machine.queue_split = Machine.Per_class } in
      assert_clean cfg (trace_of seed Mcsim_compiler.Pipeline.default_local))

let quad_trace seed =
  let prog = random_program seed in
  let profile = Mcsim_trace.Walker.profile prog in
  let c =
    Mcsim_compiler.Pipeline.compile ~clusters:4 ~profile
      ~scheduler:Mcsim_compiler.Pipeline.default_local prog
  in
  Mcsim_trace.Walker.trace ~max_instrs:2_500 c.Mcsim_compiler.Pipeline.mach

let octa_trace seed =
  let prog = random_program seed in
  let profile = Mcsim_trace.Walker.profile prog in
  let c =
    Mcsim_compiler.Pipeline.compile ~clusters:8 ~profile
      ~scheduler:Mcsim_compiler.Pipeline.default_local prog
  in
  Mcsim_trace.Walker.trace ~max_instrs:2_500 c.Mcsim_compiler.Pipeline.mach

let audit_quad_cluster =
  QCheck.Test.make ~name:"pipeline invariants hold on the four-cluster machine" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed -> assert_clean (Machine.quad_cluster ()) (quad_trace seed))

let audit_octa_cluster =
  QCheck.Test.make ~name:"pipeline invariants hold on the eight-cluster machine" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed -> assert_clean (Machine.octa_cluster ()) (octa_trace seed))

let audit_quad_native =
  QCheck.Test.make ~name:"four-cluster machine survives cluster-oblivious binaries" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed -> assert_clean (Machine.quad_cluster ()) (trace_of seed Mcsim_compiler.Pipeline.Sched_none))

let audit_benchmarks () =
  (* One audited run per real benchmark preset on the dual machine. *)
  List.iter
    (fun b ->
      let prog = Spec92.program b in
      let profile = Mcsim_trace.Walker.profile prog in
      let c =
        Mcsim_compiler.Pipeline.compile ~profile
          ~scheduler:Mcsim_compiler.Pipeline.default_local prog
      in
      let trace = Mcsim_trace.Walker.trace ~max_instrs:4_000 c.Mcsim_compiler.Pipeline.mach in
      let _, errors = Event_audit.run_audited (Machine.dual_cluster ()) trace in
      check Alcotest.(list string) (Spec92.name b ^ " audit clean") [] errors)
    Spec92.all

let suite =
  ( "audit",
    [ QCheck_alcotest.to_alcotest audit_single;
      QCheck_alcotest.to_alcotest audit_dual_none;
      QCheck_alcotest.to_alcotest audit_dual_local;
      QCheck_alcotest.to_alcotest audit_starved_buffers;
      QCheck_alcotest.to_alcotest audit_tiny_queues;
      QCheck_alcotest.to_alcotest audit_tight_registers;
      QCheck_alcotest.to_alcotest audit_split_queues;
      QCheck_alcotest.to_alcotest audit_quad_cluster;
      QCheck_alcotest.to_alcotest audit_octa_cluster;
      QCheck_alcotest.to_alcotest audit_quad_native;
      case "audit: all six benchmarks" audit_benchmarks ] )
