(* Tests for the flat binary trace representation and the on-disk trace
   store: encode/decode round-trips, O(1) sub views, the store's
   hit/miss/corruption behaviour, key invalidation, and the safety
   invariant that simulating a cached (memory-mapped) trace is
   indistinguishable from simulating the freshly walked one — on every
   stock machine configuration. *)

module Flat_trace = Mcsim_isa.Flat_trace
module Instr = Mcsim_isa.Instr
module Op = Mcsim_isa.Op_class
module Reg = Mcsim_isa.Reg
module Walker = Mcsim_trace.Walker
module Pipeline = Mcsim_compiler.Pipeline
module Spec92 = Mcsim_workload.Spec92
module Machine = Mcsim_cluster.Machine
module Trace_store = Mcsim.Trace_store
module Experiment = Mcsim.Experiment

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let temp_dir () = Filename.temp_dir "mcsim-test-tracestore" ""

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let bench_trace ?(bench = Spec92.Compress) ?(scheduler = Pipeline.default_local)
    ?(seed = 1) ?(max_instrs = 5_000) () =
  let prog = Spec92.program bench in
  let profile = Walker.profile ~seed prog in
  let c = Pipeline.compile ~profile ~scheduler prog in
  Walker.trace_flat ~seed ~max_instrs c.Pipeline.mach

let dyn_equal (a : Instr.dynamic) (b : Instr.dynamic) =
  a.Instr.seq = b.Instr.seq && a.Instr.pc = b.Instr.pc
  && a.Instr.instr = b.Instr.instr
  && a.Instr.mem_addr = b.Instr.mem_addr
  && a.Instr.branch = b.Instr.branch

let check_traces_equal what (a : Instr.dynamic array) (b : Instr.dynamic array) =
  check Alcotest.int (what ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i da ->
      if not (dyn_equal da b.(i)) then
        Alcotest.failf "%s: instruction %d differs" what i)
    a

(* --------------------------- flat trace ----------------------------- *)

let flat_roundtrip () =
  let flat = bench_trace () in
  let dyn = Flat_trace.to_dynamic_array flat in
  check Alcotest.int "non-trivial" 5_000 (Array.length dyn);
  let back = Flat_trace.of_dynamic_array dyn in
  check_traces_equal "roundtrip" dyn (Flat_trace.to_dynamic_array back)

let flat_accessors_match_records () =
  let flat = bench_trace () in
  let dyn = Flat_trace.to_dynamic_array flat in
  Array.iteri
    (fun i d ->
      check Alcotest.int "pc" d.Instr.pc (Flat_trace.pc flat i);
      check Alcotest.bool "load" (d.Instr.instr.Instr.op = Op.Load)
        (Flat_trace.is_load flat i);
      check Alcotest.bool "store" (d.Instr.instr.Instr.op = Op.Store)
        (Flat_trace.is_store flat i);
      check Alcotest.bool "memory" (Option.is_some d.Instr.mem_addr)
        (Flat_trace.is_memory flat i);
      (match d.Instr.mem_addr with
      | Some a -> check Alcotest.int "mem addr" a (Flat_trace.mem_addr flat i)
      | None -> ());
      check Alcotest.bool "branch" (Option.is_some d.Instr.branch)
        (Flat_trace.has_branch flat i);
      (match d.Instr.branch with
      | Some b ->
        check Alcotest.bool "cond" b.Instr.conditional (Flat_trace.is_cond_branch flat i);
        check Alcotest.bool "taken" b.Instr.taken (Flat_trace.branch_taken flat i);
        check Alcotest.int "target" b.Instr.target (Flat_trace.branch_target flat i)
      | None -> ());
      check Alcotest.bool "instr" true (d.Instr.instr = Flat_trace.instr flat i))
    dyn

let flat_instr_interned () =
  let flat = bench_trace () in
  let n = Flat_trace.length flat in
  (* The same pc decodes to the physically same Instr.t every time — the
     identity the machine's plan memo keys on. *)
  let tbl = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let pc = Flat_trace.pc flat i in
    let ins = Flat_trace.instr flat i in
    match Hashtbl.find_opt tbl pc with
    | None -> Hashtbl.add tbl pc ins
    | Some prev ->
      if not (prev == ins) then Alcotest.failf "pc %d decoded to a fresh instr" pc
  done

let flat_sub_view () =
  let flat = bench_trace () in
  let dyn = Flat_trace.to_dynamic_array flat in
  let pos = 1_234 and len = 800 in
  let sub = Flat_trace.sub flat ~pos ~len in
  check Alcotest.int "sub length" len (Flat_trace.length sub);
  let expected =
    Array.mapi
      (fun i d -> { d with Instr.seq = i })
      (Array.sub dyn pos len)
  in
  check_traces_equal "sub re-based" expected (Flat_trace.to_dynamic_array sub);
  (* Views share the intern table with the parent. *)
  check Alcotest.bool "interned across views" true
    (Flat_trace.instr sub 0 == Flat_trace.instr flat pos)

(* The intern table is built eagerly at construction and never written
   afterwards, so several domains may decode the same trace at once —
   Experiment's sweeps simulate one trace on many domains. This would be
   an intermittent crash with a lazily-populated table. *)
let flat_decode_parallel_safe () =
  let flat = bench_trace () in
  let expected = Flat_trace.to_dynamic_array (bench_trace ()) in
  let worker () = Flat_trace.to_dynamic_array flat in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter
    (fun d -> check_traces_equal "parallel decode" expected (Domain.join d))
    domains

let builder_validates () =
  let b = Flat_trace.Builder.create () in
  let add = Instr.make ~op:Op.Int_other ~srcs:[ Reg.int_reg 1 ] ~dst:(Some (Reg.int_reg 2)) in
  Alcotest.check_raises "mem_addr on non-memory"
    (Invalid_argument "Flat_trace: address on non-memory op") (fun () ->
      Flat_trace.Builder.emit b ~pc:0 ~mem_addr:4 add);
  Alcotest.check_raises "branch on non-control"
    (Invalid_argument "Flat_trace: branch info on non-control op") (fun () ->
      Flat_trace.Builder.emit b ~pc:0
        ~branch:{ Instr.conditional = true; taken = true; target = 3 }
        add);
  let load = Instr.make ~op:Op.Load ~srcs:[ Reg.int_reg 1 ] ~dst:(Some (Reg.int_reg 2)) in
  Alcotest.check_raises "load without mem_addr"
    (Invalid_argument "Flat_trace: memory op without address") (fun () ->
      Flat_trace.Builder.emit b ~pc:0 load);
  check Alcotest.int "nothing emitted" 0 (Flat_trace.Builder.length b)

(* ----------------------------- store -------------------------------- *)

let key ?(benchmark = "compress") ?(scheduler = "local:2:0") ?(seed = 1)
    ?(max_instrs = 5_000) () =
  { Trace_store.benchmark; scheduler; seed; max_instrs }

let store_miss_then_hit () =
  with_dir @@ fun dir ->
  let store = Trace_store.open_ ~dir in
  let k = key () in
  check Alcotest.bool "initially absent" true (Trace_store.find store k = None);
  let builds = ref 0 in
  let build () = incr builds; bench_trace () in
  let t1, s1 = Trace_store.load_or_build store k build in
  check Alcotest.bool "first is a miss" true (s1 = `Miss);
  let t2, s2 = Trace_store.load_or_build store k build in
  check Alcotest.bool "second is a hit" true (s2 = `Hit);
  check Alcotest.int "built exactly once" 1 !builds;
  check_traces_equal "cached equals built"
    (Flat_trace.to_dynamic_array t1)
    (Flat_trace.to_dynamic_array t2)

let store_corrupt_recomputes () =
  with_dir @@ fun dir ->
  let store = Trace_store.open_ ~dir in
  let k = key () in
  let _ = Trace_store.load_or_build store k (fun () -> bench_trace ()) in
  let file = Trace_store.path store k in
  (* Flip one payload byte: the digest check must reject the file. *)
  let fd = Unix.openfile file [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 100 Unix.SEEK_SET);
  ignore (Unix.write_substring fd "\xff" 0 1);
  Unix.close fd;
  check Alcotest.bool "corrupt file reads as absent" true
    (Trace_store.find store k = None);
  let t, s = Trace_store.load_or_build store k (fun () -> bench_trace ()) in
  check Alcotest.bool "corruption forces a rebuild" true (s = `Miss);
  (* The rebuild overwrote the damaged file. *)
  check Alcotest.bool "store repaired" true (Trace_store.find store k <> None);
  check_traces_equal "rebuilt trace intact"
    (Flat_trace.to_dynamic_array (bench_trace ()))
    (Flat_trace.to_dynamic_array t)

let store_truncated_recomputes () =
  with_dir @@ fun dir ->
  let store = Trace_store.open_ ~dir in
  let k = key () in
  let _ = Trace_store.load_or_build store k (fun () -> bench_trace ()) in
  let file = Trace_store.path store k in
  let size = (Unix.stat file).Unix.st_size in
  let fd = Unix.openfile file [ Unix.O_RDWR ] 0 in
  Unix.ftruncate fd (size - 1);
  Unix.close fd;
  check Alcotest.bool "truncated file reads as absent" true
    (Trace_store.find store k = None)

(* The file name only carries a 32-bit digest prefix of the key, but the
   full key is stored in the file and compared on load: a digest-prefix
   collision (simulated here by copying a valid file onto another key's
   path) must read as a miss, never as the wrong trace. *)
let store_wrong_key_is_a_miss () =
  with_dir @@ fun dir ->
  let store = Trace_store.open_ ~dir in
  let k1 = key () and k2 = key ~seed:2 () in
  let _ = Trace_store.load_or_build store k1 (fun () -> bench_trace ()) in
  let read file =
    In_channel.with_open_bin file In_channel.input_all
  in
  Out_channel.with_open_bin (Trace_store.path store k2) (fun oc ->
      Out_channel.output_string oc (read (Trace_store.path store k1)));
  check Alcotest.bool "other key's bytes read as a miss" true
    (Trace_store.find store k2 = None);
  check Alcotest.bool "own key still hits" true (Trace_store.find store k1 <> None)

let store_key_invalidation () =
  with_dir @@ fun dir ->
  let store = Trace_store.open_ ~dir in
  let k = key () in
  let _ = Trace_store.load_or_build store k (fun () -> bench_trace ()) in
  (* A different seed, budget, scheduler or benchmark is a different
     file — never a false hit. *)
  List.iter
    (fun (what, k') ->
      check Alcotest.bool (what ^ " changes the path") true
        (Trace_store.path store k <> Trace_store.path store k');
      check Alcotest.bool (what ^ " misses") true (Trace_store.find store k' = None))
    [ ("seed", key ~seed:2 ());
      ("max_instrs", key ~max_instrs:6_000 ());
      ("scheduler", key ~scheduler:"none" ());
      ("benchmark", key ~benchmark:"ora" ()) ];
  check Alcotest.bool "original still hits" true (Trace_store.find store k <> None)

let store_entries_listing () =
  with_dir @@ fun dir ->
  let store = Trace_store.open_ ~dir in
  check Alcotest.int "empty store" 0 (List.length (Trace_store.entries store));
  let k1 = key () and k2 = key ~seed:2 () in
  let _ = Trace_store.load_or_build store k1 (fun () -> bench_trace ()) in
  let _ = Trace_store.load_or_build store k2 (fun () -> bench_trace ~seed:2 ()) in
  let entries = Trace_store.entries store in
  check Alcotest.int "two entries" 2 (List.length entries);
  (* Same header + payload size; the key trailer lengths happen to match
     too (seed 1 vs seed 2 are both one digit). *)
  let expect_bytes = 32 + (16 * 5_000) + String.length (Trace_store.key_string k1) in
  List.iter
    (fun e ->
      check Alcotest.bool "valid" true e.Trace_store.e_valid;
      check Alcotest.int "instrs" 5_000 e.Trace_store.e_instrs;
      check Alcotest.int "bytes" expect_bytes e.Trace_store.e_bytes)
    entries;
  (* Damage one: it lists as invalid but stays listed. *)
  let file = Filename.concat dir (List.hd entries).Trace_store.e_file in
  let fd = Unix.openfile file [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 40 Unix.SEEK_SET);
  ignore (Unix.write_substring fd "\x01" 0 1);
  Unix.close fd;
  let entries' = Trace_store.entries store in
  check Alcotest.int "still two entries" 2 (List.length entries');
  check Alcotest.int "one invalid" 1
    (List.length (List.filter (fun e -> not e.Trace_store.e_valid) entries'))

let scheduler_idents_distinct () =
  let idents =
    List.map Experiment.scheduler_ident
      [ Pipeline.Sched_none; Pipeline.default_local;
        Pipeline.Sched_local { imbalance_threshold = 3; window = 4 };
        Pipeline.Sched_round_robin; Pipeline.Sched_random 7; Pipeline.Sched_random 8 ]
  in
  check Alcotest.int "all distinct" (List.length idents)
    (List.length (List.sort_uniq String.compare idents))

(* ------------------------ cached == fresh ---------------------------- *)

let results_equal what (a : Machine.result) (b : Machine.result) =
  check Alcotest.int (what ^ ": cycles") a.Machine.cycles b.Machine.cycles;
  check Alcotest.int (what ^ ": retired") a.Machine.retired b.Machine.retired;
  check Alcotest.int (what ^ ": replays") a.Machine.replays b.Machine.replays;
  check
    Alcotest.(list (pair string int))
    (what ^ ": counters") a.Machine.counters b.Machine.counters

(* QCheck: for random (seed, budget), reloading the trace through the
   store is invisible — same instructions, and the machine takes the
   same cycles over the mapped copy as over the fresh walk. *)
let cached_replay_equals_fresh_walk =
  QCheck.Test.make ~name:"cached replay equals fresh walk" ~count:8
    QCheck.(pair (int_bound 1000) (int_bound 3_000))
    (fun (seed_off, n_off) ->
      let seed = 1 + seed_off and max_instrs = 1_000 + n_off in
      with_dir @@ fun dir ->
      let store = Trace_store.open_ ~dir in
      let k = key ~seed ~max_instrs () in
      let fresh = bench_trace ~seed ~max_instrs () in
      let first, s1 = Trace_store.load_or_build store k (fun () -> fresh) in
      let cached, s2 =
        Trace_store.load_or_build store k (fun () -> Alcotest.fail "unexpected rebuild")
      in
      check Alcotest.bool "miss then hit" true (s1 = `Miss && s2 = `Hit);
      check_traces_equal "instructions"
        (Flat_trace.to_dynamic_array first)
        (Flat_trace.to_dynamic_array cached);
      let cfg = Machine.dual_cluster () in
      results_equal "simulation" (Machine.run_flat cfg fresh) (Machine.run_flat cfg cached);
      true)

(* The plan memo and the flat fast path must be invisible on every stock
   configuration: the record-array wrapper (which converts and re-interns)
   and the native flat run of a store-reloaded trace all agree. *)
let stock_configs_cached_equals_fresh () =
  with_dir @@ fun dir ->
  let store = Trace_store.open_ ~dir in
  let k = key ~max_instrs:4_000 () in
  let fresh = bench_trace ~max_instrs:4_000 () in
  let _ = Trace_store.load_or_build store k (fun () -> fresh) in
  let cached =
    match Trace_store.find store k with Some t -> t | None -> Alcotest.fail "no hit"
  in
  let dyn = Flat_trace.to_dynamic_array fresh in
  List.iter
    (fun (name, cfg) ->
      let r_fresh = Machine.run_flat cfg fresh in
      results_equal (name ^ " cached") r_fresh (Machine.run_flat cfg cached);
      results_equal (name ^ " records") r_fresh (Machine.run cfg dyn))
    [ ("single_cluster", Machine.single_cluster ());
      ("dual_cluster", Machine.dual_cluster ());
      ("quad_cluster", Machine.quad_cluster ());
      ("single_cluster_4", Machine.single_cluster_4 ());
      ("dual_cluster_2x2", Machine.dual_cluster_2x2 ()) ]

(* A pc reused by two different static instructions (possible in
   hand-built traces, not in walker output) must not confuse the plan
   memo, which keys on instruction identity, not pc alone. *)
let plan_memo_survives_pc_collision () =
  let mk op srcs dst = Instr.make ~op ~srcs ~dst in
  let a = mk Op.Int_other [ Reg.int_reg 1 ] (Some (Reg.int_reg 2)) in
  let b = mk Op.Int_multiply [ Reg.int_reg 3; Reg.int_reg 4 ] (Some (Reg.int_reg 5)) in
  let dyn =
    Array.init 40 (fun i ->
        { Instr.seq = i; pc = 7; instr = (if i mod 2 = 0 then a else b);
          mem_addr = None; branch = None })
  in
  let cfg = Machine.dual_cluster () in
  let r = Machine.run cfg dyn in
  check Alcotest.int "all retired" 40 r.Machine.retired;
  results_equal "deterministic" r (Machine.run cfg dyn)

let suite =
  ( "trace_store",
    [ case "flat trace round-trips through dynamic records" flat_roundtrip;
      case "flat accessors match the record fields" flat_accessors_match_records;
      case "instruction decode is interned per pc" flat_instr_interned;
      case "sub is an O(1) re-based view" flat_sub_view;
      case "decoding is safe across concurrent domains" flat_decode_parallel_safe;
      case "builder validates like Instr.dynamic" builder_validates;
      case "load_or_build: miss builds, hit maps" store_miss_then_hit;
      case "corrupt payload is detected and rebuilt" store_corrupt_recomputes;
      case "truncated file reads as absent" store_truncated_recomputes;
      case "a colliding file under another key misses" store_wrong_key_is_a_miss;
      case "seed/budget/scheduler/benchmark changes never false-hit"
        store_key_invalidation;
      case "entries lists and validates the store" store_entries_listing;
      case "scheduler idents separate tuned variants" scheduler_idents_distinct;
      QCheck_alcotest.to_alcotest cached_replay_equals_fresh_walk;
      case "stock configs: cached == fresh == records" stock_configs_cached_equals_fresh;
      case "plan memo keys on instruction identity, not pc"
        plan_memo_survives_pc_collision ] )
