(* Differential tests for the two issue engines: the dependence-driven
   wakeup engine must produce results bit-identical to the reference
   per-cycle scan engine — same cycles, same IPC, same counters, same
   event stream — on every configuration and workload. Also unit tests
   for the event-wheel and vector primitives the wakeup engine is built
   on. *)

module Machine = Mcsim_cluster.Machine
module Sampling = Mcsim_sampling.Sampling
module Spec92 = Mcsim_workload.Spec92
module Walker = Mcsim_trace.Walker
module Pipeline = Mcsim_compiler.Pipeline
module Vec = Mcsim_util.Vec
module Bucket_queue = Mcsim_util.Bucket_queue

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ----------------- engine equivalence: helpers --------------------- *)

(* Human-readable first divergence, for failure messages. *)
let explain_diff (a : Machine.result) (b : Machine.result) =
  if a.Machine.cycles <> b.Machine.cycles then
    Printf.sprintf "cycles: scan %d, wakeup %d" a.Machine.cycles b.Machine.cycles
  else if a.Machine.ipc <> b.Machine.ipc then
    Printf.sprintf "ipc: scan %f, wakeup %f" a.Machine.ipc b.Machine.ipc
  else begin
    let rec first_counter_diff xs ys =
      match (xs, ys) with
      | [], [] -> "results differ outside cycles/ipc/counters"
      | (k, v) :: xs', (k', v') :: ys' ->
        if k <> k' then Printf.sprintf "counter sets differ: %s vs %s" k k'
        else if v <> v' then Printf.sprintf "counter %s: scan %d, wakeup %d" k v v'
        else first_counter_diff xs' ys'
      | (k, _) :: _, [] | [], (k, _) :: _ ->
        Printf.sprintf "counter %s present in one engine only" k
    in
    first_counter_diff a.Machine.counters b.Machine.counters
  end

let assert_engines_agree ?(msg = "engines agree") cfg trace =
  let scan = Machine.run ~engine:`Scan cfg trace in
  let wake = Machine.run ~engine:`Wakeup cfg trace in
  if scan <> wake then
    Alcotest.failf "%s: %s" msg (explain_diff scan wake);
  check Alcotest.bool msg true true

(* ----------------- engine equivalence: property -------------------- *)

let qcheck_engines_agree cfg_of seed =
  let trace = Test_audit.trace_of seed Pipeline.default_local in
  let cfg = cfg_of () in
  let scan = Machine.run ~engine:`Scan cfg trace in
  let wake = Machine.run ~engine:`Wakeup cfg trace in
  if scan <> wake then
    QCheck.Test.fail_reportf "engines diverge (seed %d): %s" seed (explain_diff scan wake);
  true

let equiv_dual_unified =
  QCheck.Test.make ~name:"scan = wakeup on random workloads (dual, unified queue)" ~count:8
    QCheck.(int_bound 10_000)
    (qcheck_engines_agree Machine.dual_cluster)

let equiv_dual_split =
  QCheck.Test.make ~name:"scan = wakeup on random workloads (dual, per-class queues)"
    ~count:8
    QCheck.(int_bound 10_000)
    (qcheck_engines_agree (fun () ->
         { (Machine.dual_cluster ()) with Machine.queue_split = Machine.Per_class }))

let equiv_starved_buffers =
  QCheck.Test.make ~name:"scan = wakeup under starved transfer buffers (replays)" ~count:6
    QCheck.(int_bound 10_000)
    (qcheck_engines_agree (fun () ->
         { (Machine.dual_cluster ()) with
           Machine.operand_buffer_entries = 1;
           result_buffer_entries = 1;
           replay_threshold = 4 }))

let equiv_tiny_queues =
  QCheck.Test.make ~name:"scan = wakeup with tiny dispatch queues" ~count:6
    QCheck.(int_bound 10_000)
    (qcheck_engines_agree (fun () ->
         { (Machine.dual_cluster ()) with Machine.dq_entries = 4 }))

(* Multi-hop interconnects: ring and crossbar are the only topologies
   whose hop latency exceeds one cycle, so these are the configurations
   where the hop-threaded transfer timing can diverge between engines. *)
let qcheck_engines_agree_n ~clusters ~topology seed =
  let trace =
    if clusters > 4 then Test_audit.octa_trace seed else Test_audit.quad_trace seed
  in
  let cfg = Machine.config_for_clusters ~topology clusters in
  let scan = Machine.run ~engine:`Scan cfg trace in
  let wake = Machine.run ~engine:`Wakeup cfg trace in
  if scan <> wake then
    QCheck.Test.fail_reportf "engines diverge (%d clusters, %s, seed %d): %s" clusters
      (Mcsim_cluster.Interconnect.to_string topology)
      seed (explain_diff scan wake);
  true

let equiv_quad_ring =
  QCheck.Test.make ~name:"scan = wakeup on the four-cluster ring" ~count:6
    QCheck.(int_bound 10_000)
    (qcheck_engines_agree_n ~clusters:4 ~topology:Mcsim_cluster.Interconnect.Ring)

let equiv_octa_ring =
  QCheck.Test.make ~name:"scan = wakeup on the eight-cluster ring" ~count:6
    QCheck.(int_bound 10_000)
    (qcheck_engines_agree_n ~clusters:8 ~topology:Mcsim_cluster.Interconnect.Ring)

let equiv_octa_xbar =
  QCheck.Test.make ~name:"scan = wakeup on the eight-cluster crossbar" ~count:6
    QCheck.(int_bound 10_000)
    (qcheck_engines_agree_n ~clusters:8 ~topology:Mcsim_cluster.Interconnect.Crossbar)

(* ----------------- engine equivalence: stock configs ---------------- *)

(* Every stock configuration, both queue-split modes, on a fixed
   workload: the five machines of the paper's evaluation. *)
let stock_configs () =
  let both name cfg_of =
    [ (name ^ "/unified", (fun () -> { (cfg_of ()) with Machine.queue_split = Machine.Unified }));
      (name ^ "/per-class",
       fun () -> { (cfg_of ()) with Machine.queue_split = Machine.Per_class }) ]
  in
  both "single_cluster" Machine.single_cluster
  @ both "dual_cluster" Machine.dual_cluster
  @ both "quad_cluster" Machine.quad_cluster
  @ both "octa_cluster" Machine.octa_cluster
  @ both "single_cluster_4" Machine.single_cluster_4
  @ both "dual_cluster_2x2" Machine.dual_cluster_2x2

(* A binary scheduled for the machine it runs on: the trace's register
   assignment must match the config's cluster count. *)
let trace_for ~dual ~quad ~octa cfg =
  match Mcsim_cluster.Assignment.num_clusters cfg.Machine.assignment with
  | n when n > 4 -> octa
  | n when n > 2 -> quad
  | _ -> dual

let equiv_stock_configs () =
  let dual = Test_audit.trace_of 42 Pipeline.default_local in
  let quad = Test_audit.quad_trace 42 in
  let octa = Test_audit.octa_trace 42 in
  List.iter
    (fun (name, cfg_of) ->
      let cfg = cfg_of () in
      assert_engines_agree ~msg:name cfg (trace_for ~dual ~quad ~octa cfg))
    (stock_configs ())

let equiv_benchmarks () =
  (* One real-benchmark preset per run on the dual machine. *)
  List.iter
    (fun b ->
      let prog = Spec92.program b in
      let profile = Walker.profile prog in
      let c = Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog in
      let trace = Walker.trace ~max_instrs:6_000 c.Pipeline.mach in
      assert_engines_agree ~msg:(Spec92.name b) (Machine.dual_cluster ()) trace)
    Spec92.all

(* ----------------- engine equivalence: event streams ---------------- *)

let event_t = Alcotest.testable Machine.pp_event ( = )

let events_of engine cfg trace =
  let evs = ref [] in
  let (_ : Machine.result) = Machine.run ~engine ~on_event:(fun e -> evs := e :: !evs) cfg trace in
  List.rev !evs

let equiv_event_stream () =
  let trace = Test_audit.trace_of 7 Pipeline.default_local in
  let cfg = Machine.dual_cluster () in
  let scan_evs = events_of `Scan cfg trace in
  let wake_evs = events_of `Wakeup cfg trace in
  check Alcotest.bool "some events" true (List.length scan_evs > 0);
  check (Alcotest.list event_t) "identical event streams" scan_evs wake_evs

(* ----------------- engine equivalence: sampled runs ----------------- *)

let equiv_sampled () =
  let prog = Spec92.program Spec92.Compress in
  let profile = Walker.profile prog in
  let c = Pipeline.compile ~profile ~scheduler:Pipeline.default_local prog in
  let trace = Walker.trace ~max_instrs:60_000 c.Pipeline.mach in
  let policy = { Sampling.interval = 10_000; warmup = 1_000; detail = 1_000; seed = 3 } in
  let scan = Sampling.run ~engine:`Scan ~policy (Machine.dual_cluster ()) trace in
  let wake = Sampling.run ~engine:`Wakeup ~policy (Machine.dual_cluster ()) trace in
  check (Alcotest.float 0.0) "mean ipc" scan.Sampling.mean_ipc wake.Sampling.mean_ipc;
  check Alcotest.int "est cycles" scan.Sampling.est_cycles wake.Sampling.est_cycles;
  if scan.Sampling.machine <> wake.Sampling.machine then
    Alcotest.failf "sampled machine results diverge: %s"
      (explain_diff scan.Sampling.machine wake.Sampling.machine)

(* ------------------- record pooling invariants ---------------------- *)

(* Random workloads across every stock configuration, both queue splits,
   both engines: the pooled copy/group records must leave cycles, IPC and
   every counter bit-identical between the engines (each exercises a
   different recycle path through the pools). *)
let qcheck_pooled_stock seed =
  let dual = Test_audit.trace_of seed Pipeline.default_local in
  let quad = Test_audit.quad_trace seed in
  let octa = Test_audit.octa_trace seed in
  List.iter
    (fun (name, cfg_of) ->
      let cfg = cfg_of () in
      let trace = trace_for ~dual ~quad ~octa cfg in
      let scan = Machine.run ~engine:`Scan cfg trace in
      let wake = Machine.run ~engine:`Wakeup cfg trace in
      if scan <> wake then
        QCheck.Test.fail_reportf "pooled engines diverge (%s, seed %d): %s" name seed
          (explain_diff scan wake))
    (stock_configs ());
  true

let equiv_pooled_stock =
  QCheck.Test.make ~name:"pooled records: scan = wakeup on random workloads, stock configs"
    ~count:4
    QCheck.(int_bound 10_000)
    qcheck_pooled_stock

(* Driving one machine state over the same trace repeatedly must reach a
   fixed point in the pools: after the first run the built populations
   stop growing (records are recycled, not re-allocated), and a drained
   pipeline leaves no live group (live copies are at most squash-limbo
   residue awaiting its flush watermark). *)
let pool_fixed_point ~cfg ~seed () =
  let trace = Test_audit.trace_of seed Pipeline.default_local in
  let flat = Mcsim_isa.Flat_trace.of_dynamic_array trace in
  let len = Mcsim_isa.Flat_trace.length flat in
  let st = Machine.init_state cfg in
  let built_after () =
    let (_ : Machine.interval) =
      Machine.run_interval_flat st flat ~lo:0 ~hi:len ~measure_from:0
    in
    let copy_live, copy_built, group_live, group_built = Machine.pool_stats st in
    check Alcotest.int "drained: no live group" 0 group_live;
    check Alcotest.bool "live copies are limbo residue only" true (copy_live <= copy_built);
    (copy_built, group_built)
  in
  let _ = built_after () in
  let c2, g2 = built_after () in
  let c3, g3 = built_after () in
  check Alcotest.int "copy pool at fixed point" c2 c3;
  check Alcotest.int "group pool at fixed point" g2 g3;
  (* Recycling actually happened: the trace dispatches far more copies
     than the pool ever built. *)
  check Alcotest.bool "built well below dispatched" true (c3 < len)

let pool_fixed_point_steady = pool_fixed_point ~cfg:(Machine.dual_cluster ()) ~seed:11

(* Starved transfer buffers force replays every few hundred instructions:
   the squash path must return records through limbo without leaking or
   double-freeing (Slab.free raises on a double free). *)
let pool_fixed_point_squash =
  pool_fixed_point
    ~cfg:
      { (Machine.dual_cluster ()) with
        Machine.operand_buffer_entries = 1;
        result_buffer_entries = 1;
        replay_threshold = 4 }
    ~seed:17

(* Snapshots every cycle cross-check the running cluster waiting totals
   against a full queue rescan (an assert inside the snapshot), through
   dispatch, issue, squash and replay, on both engines. *)
let waiting_totals_cross_check () =
  let trace = Test_audit.trace_of 23 Pipeline.default_local in
  let cfg =
    { (Machine.dual_cluster ()) with
      Machine.operand_buffer_entries = 2;
      result_buffer_entries = 2;
      replay_threshold = 4 }
  in
  List.iter
    (fun engine ->
      let snaps = ref 0 in
      let (_ : Machine.result) =
        Machine.run ~engine ~on_occupancy:(fun _ -> incr snaps) ~occupancy_period:1 cfg trace
      in
      check Alcotest.bool "snapshots taken" true (!snaps > 0))
    [ `Scan; `Wakeup ]

(* ------------------------- Vec unit tests --------------------------- *)

let vec_basics () =
  let v = Vec.create () in
  check Alcotest.bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * 3)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 0" 0 (Vec.get v 0);
  check Alcotest.int "get 99" 297 (Vec.get v 99);
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  check Alcotest.int "filtered length" 50 (Vec.length v);
  (* Order preserved: 0, 6, 12, ... *)
  check (Alcotest.list Alcotest.int) "filtered prefix" [ 0; 6; 12 ]
    (List.filteri (fun i _ -> i < 3) (Vec.to_list v));
  Vec.clear v;
  check Alcotest.bool "cleared" true (Vec.is_empty v)

let vec_sort () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 5; 1; 4; 1; 3; 9; 2 ];
  Vec.sort ~cmp:compare v;
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (Vec.to_list v)

(* --------------------- Bucket_queue unit tests ---------------------- *)

let wheel_ordering () =
  let q = Bucket_queue.create ~capacity:8 () in
  List.iter (fun (k, x) -> Bucket_queue.add q ~key:k x) [ (5, "e"); (1, "a"); (3, "c") ];
  check Alcotest.int "length" 3 (Bucket_queue.length q);
  let out = ref [] in
  Bucket_queue.drain_upto q ~key:10 (fun x -> out := x :: !out);
  check (Alcotest.list Alcotest.string) "key order" [ "a"; "c"; "e" ] (List.rev !out);
  check Alcotest.bool "drained" true (Bucket_queue.is_empty q);
  check Alcotest.int "floor advanced" 11 (Bucket_queue.floor q)

let wheel_same_cycle_batch () =
  let q = Bucket_queue.create ~capacity:4 () in
  List.iter (fun x -> Bucket_queue.add q ~key:2 x) [ 10; 11; 12 ];
  Bucket_queue.add q ~key:1 0;
  let out = ref [] in
  Bucket_queue.drain_upto q ~key:2 (fun x -> out := x :: !out);
  (* Same-key entries come out in insertion order. *)
  check (Alcotest.list Alcotest.int) "batch order" [ 0; 10; 11; 12 ] (List.rev !out)

let wheel_wraparound () =
  let q = Bucket_queue.create ~capacity:4 () in
  (* Fill one revolution, drain it, then schedule past the ring seam:
     slot reuse must not resurface drained entries or misorder keys. *)
  List.iter (fun k -> Bucket_queue.add q ~key:k k) [ 0; 1; 2; 3 ];
  let out = ref [] in
  Bucket_queue.drain_upto q ~key:3 (fun x -> out := x :: !out);
  check (Alcotest.list Alcotest.int) "first revolution" [ 0; 1; 2; 3 ] (List.rev !out);
  List.iter (fun k -> Bucket_queue.add q ~key:k k) [ 7; 5; 6; 4 ];
  let out = ref [] in
  Bucket_queue.drain_upto q ~key:7 (fun x -> out := x :: !out);
  check (Alcotest.list Alcotest.int) "second revolution" [ 4; 5; 6; 7 ] (List.rev !out)

let wheel_grow () =
  let q = Bucket_queue.create ~capacity:4 () in
  Bucket_queue.add q ~key:2 "near";
  (* A key more than one revolution ahead forces the ring to grow while
     entries are pending. *)
  Bucket_queue.add q ~key:100 "far";
  check Alcotest.int "both pending" 2 (Bucket_queue.length q);
  let out = ref [] in
  Bucket_queue.drain_upto q ~key:200 (fun x -> out := x :: !out);
  check (Alcotest.list Alcotest.string) "grow preserves order" [ "near"; "far" ] (List.rev !out)

let wheel_add_during_drain () =
  let q = Bucket_queue.create ~capacity:8 () in
  Bucket_queue.add q ~key:1 1;
  let out = ref [] in
  Bucket_queue.drain_upto q ~key:3 (fun x ->
      out := x :: !out;
      (* Scheduling follow-up events above the drain bound is legal and
         they surface on the next drain. *)
      if x = 1 then Bucket_queue.add q ~key:5 50);
  check (Alcotest.list Alcotest.int) "first drain" [ 1 ] (List.rev !out);
  check Alcotest.int "follow-up pending" 1 (Bucket_queue.length q);
  let out = ref [] in
  Bucket_queue.drain_upto q ~key:5 (fun x -> out := x :: !out);
  check (Alcotest.list Alcotest.int) "second drain" [ 50 ] (List.rev !out)

let wheel_floor_discipline () =
  let q = Bucket_queue.create ~capacity:4 () in
  (* Empty drain jumps the floor without touching buckets. *)
  Bucket_queue.drain_upto q ~key:41 (fun _ -> assert false);
  check Alcotest.int "floor after empty drain" 42 (Bucket_queue.floor q);
  (* Adding below the floor is a scheduling bug and must be loud. *)
  check Alcotest.bool "below-floor add rejected" true
    (try
       Bucket_queue.add q ~key:7 ();
       false
     with Invalid_argument _ -> true)

let suite =
  ( "engine",
    [ QCheck_alcotest.to_alcotest equiv_dual_unified;
      QCheck_alcotest.to_alcotest equiv_dual_split;
      QCheck_alcotest.to_alcotest equiv_starved_buffers;
      QCheck_alcotest.to_alcotest equiv_tiny_queues;
      QCheck_alcotest.to_alcotest equiv_quad_ring;
      QCheck_alcotest.to_alcotest equiv_octa_ring;
      QCheck_alcotest.to_alcotest equiv_octa_xbar;
      case "scan = wakeup on all stock configs, both queue splits" equiv_stock_configs;
      case "scan = wakeup on all six benchmarks" equiv_benchmarks;
      case "scan = wakeup event streams" equiv_event_stream;
      case "scan = wakeup under sampled simulation" equiv_sampled;
      QCheck_alcotest.to_alcotest equiv_pooled_stock;
      case "pools reach a fixed point (steady state)" pool_fixed_point_steady;
      case "pools reach a fixed point under replays (squash recycling)" pool_fixed_point_squash;
      case "running waiting totals agree with queue rescan" waiting_totals_cross_check;
      case "Vec: push/get/filter/clear" vec_basics;
      case "Vec: insertion sort" vec_sort;
      case "Bucket_queue: key ordering" wheel_ordering;
      case "Bucket_queue: same-cycle batching" wheel_same_cycle_batch;
      case "Bucket_queue: ring wraparound" wheel_wraparound;
      case "Bucket_queue: grow with pending entries" wheel_grow;
      case "Bucket_queue: add during drain" wheel_add_during_drain;
      case "Bucket_queue: floor discipline" wheel_floor_discipline ] )
