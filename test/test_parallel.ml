(* Tests for Mcsim_util.Pool and the determinism guarantee of the
   parallel experiment fan-out: results must be bit-for-bit identical
   for every jobs value. *)

module Pool = Mcsim_util.Pool
module Spec92 = Mcsim_workload.Spec92

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ---------------------------- pool --------------------------------- *)

let pool_empty () =
  check (Alcotest.list Alcotest.int) "empty" [] (Pool.parallel_map ~jobs:4 (fun x -> x) []);
  check (Alcotest.list Alcotest.int) "singleton" [ 9 ]
    (Pool.parallel_map ~jobs:4 (fun x -> x * 3) [ 3 ])

let pool_order () =
  let xs = List.init 100 (fun i -> i) in
  check (Alcotest.list Alcotest.int) "order preserved"
    (List.map (fun x -> x * x) xs)
    (Pool.parallel_map ~jobs:7 (fun x -> x * x) xs)

let pool_serial_degenerate () =
  let xs = [ 1; 2; 3 ] in
  check (Alcotest.list Alcotest.int) "jobs=1 is List.map" (List.map succ xs)
    (Pool.parallel_map ~jobs:1 succ xs)

let pool_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.parallel_map: jobs < 1") (fun () ->
      ignore (Pool.parallel_map ~jobs:0 succ [ 1 ]))

exception Boom of int

let pool_exception_propagates () =
  (* The worker exception must surface on the caller, and it must be the
     one from the smallest failing index. *)
  match
    Pool.parallel_map ~jobs:4
      (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
      (List.init 20 (fun i -> i + 1))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x -> check Alcotest.int "smallest failing index wins" 3 x

let pool_matches_list_map =
  QCheck.Test.make ~name:"parallel_map agrees with List.map for any jobs" ~count:50
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (jobs, xs) ->
      Pool.parallel_map ~jobs (fun x -> (x * 31) lxor 5) xs
      = List.map (fun x -> (x * 31) lxor 5) xs)

(* ----------------------- fan-out determinism ------------------------ *)

let row_eq (a : Mcsim.Table2.row) (b : Mcsim.Table2.row) =
  a.Mcsim.Table2.benchmark = b.Mcsim.Table2.benchmark
  && a.Mcsim.Table2.none_pct = b.Mcsim.Table2.none_pct
  && a.Mcsim.Table2.local_pct = b.Mcsim.Table2.local_pct
  && a.Mcsim.Table2.single_cycles = b.Mcsim.Table2.single_cycles
  && a.Mcsim.Table2.none_cycles = b.Mcsim.Table2.none_cycles
  && a.Mcsim.Table2.local_cycles = b.Mcsim.Table2.local_cycles
  && a.Mcsim.Table2.none_replays = b.Mcsim.Table2.none_replays
  && a.Mcsim.Table2.local_replays = b.Mcsim.Table2.local_replays

let table2_jobs_invariant () =
  (* Short traces keep this affordable; every benchmark and both machine
     configs are still exercised. *)
  let serial = Mcsim.Table2.run ~jobs:1 ~max_instrs:6_000 () in
  List.iter
    (fun jobs ->
      let par = Mcsim.Table2.run ~jobs ~max_instrs:6_000 () in
      check Alcotest.int (Printf.sprintf "row count, jobs=%d" jobs)
        (List.length serial) (List.length par);
      List.iter2
        (fun a b ->
          if not (row_eq a b) then
            Alcotest.failf "jobs=%d changed row %s" jobs a.Mcsim.Table2.benchmark)
        serial par)
    [ 2; 4; 8 ]

let experiment_jobs_invariant () =
  let run jobs =
    Mcsim.Experiment.run_many ~jobs ~max_instrs:5_000
      [ Spec92.program Spec92.Compress; Spec92.program Spec92.Ora ]
  in
  let serial = run 1 and par = run 4 in
  List.iter2
    (fun (a : Mcsim.Experiment.comparison) (b : Mcsim.Experiment.comparison) ->
      check Alcotest.string "benchmark" a.Mcsim.Experiment.benchmark
        b.Mcsim.Experiment.benchmark;
      check Alcotest.int "trace length" a.Mcsim.Experiment.trace_instrs
        b.Mcsim.Experiment.trace_instrs;
      check Alcotest.int "single cycles"
        a.Mcsim.Experiment.single.Mcsim_cluster.Machine.cycles
        b.Mcsim.Experiment.single.Mcsim_cluster.Machine.cycles;
      List.iter2
        (fun (ra : Mcsim.Experiment.run) (rb : Mcsim.Experiment.run) ->
          check Alcotest.string "scheduler" ra.Mcsim.Experiment.scheduler
            rb.Mcsim.Experiment.scheduler;
          check Alcotest.int "dual cycles"
            ra.Mcsim.Experiment.dual.Mcsim_cluster.Machine.cycles
            rb.Mcsim.Experiment.dual.Mcsim_cluster.Machine.cycles;
          check Alcotest.int "replays"
            ra.Mcsim.Experiment.dual.Mcsim_cluster.Machine.replays
            rb.Mcsim.Experiment.dual.Mcsim_cluster.Machine.replays;
          check (Alcotest.float 0.0) "speedup" ra.Mcsim.Experiment.speedup_pct
            rb.Mcsim.Experiment.speedup_pct;
          check Alcotest.int "spills" ra.Mcsim.Experiment.spills rb.Mcsim.Experiment.spills)
        a.Mcsim.Experiment.runs b.Mcsim.Experiment.runs)
    serial par

let ablation_ctx_reuse () =
  (* A shared context must give the same sweep as a fresh one. *)
  let bench = Spec92.Compress in
  let fresh = Mcsim.Ablation.transfer_buffers ~jobs:1 ~max_instrs:4_000 bench in
  let ctx = Mcsim.Ablation.make_ctx ~max_instrs:4_000 bench in
  let shared = Mcsim.Ablation.transfer_buffers ~jobs:2 ~ctx bench in
  let unroll = Mcsim.Ablation.unrolling ~jobs:2 ~ctx bench in
  check Alcotest.bool "ctx sweep equals fresh sweep" true (fresh = shared);
  check Alcotest.int "unrolling has all points" 3
    (List.length unroll.Mcsim.Ablation.points)

let suite =
  ( "parallel",
    [ case "parallel_map: empty and singleton" pool_empty;
      case "parallel_map: preserves order" pool_order;
      case "parallel_map: jobs=1 degenerates to map" pool_serial_degenerate;
      case "parallel_map: rejects jobs=0" pool_invalid_jobs;
      case "parallel_map: propagates the first exception" pool_exception_propagates;
      QCheck_alcotest.to_alcotest pool_matches_list_map;
      case "Table2.run is jobs-invariant" table2_jobs_invariant;
      case "Experiment.run_many is jobs-invariant" experiment_jobs_invariant;
      case "Ablation context reuse is transparent" ablation_ctx_reuse ] )
